#!/usr/bin/env python3
"""Bench-regression gate: diff fresh BENCH_*.json against committed baselines.

Reads google-benchmark JSON files produced by scripts/bench_json.sh and
compares each benchmark's p50 real_time against the committed baseline in
bench/baselines/.  Two gates:

  1. Regression: a benchmark whose p50 grew by more than the threshold
     (default 15%, override with AIDB_BENCH_REGRESSION_THRESHOLD=0.15 or
     --threshold) fails the run.  Benchmarks without a baseline entry are
     reported but do not fail (they are new); baseline entries without a
     fresh counterpart fail (a benchmark silently disappeared).  Benchmarks
     listed in REQUIRED_GATES must additionally be present in BOTH the
     baseline and the fresh results — a gated benchmark that vanishes from
     either side is a hard failure with a named report line, never a silent
     pass.  TIGHT_THRESHOLDS narrows the budget per benchmark (the
     short-statement p50 gate is 10%).

  2. Speedup: paired <name>_Volcano / <name>_Vectorized entries in the same
     file must show the vectorized engine ahead by at least the required
     ratio (default 5x for the gated pairs, override with
     AIDB_BENCH_SPEEDUP_MIN or --speedup-min).  Only the acceptance pair
     (BM_ScanFilterAgg) is gated; other pairs are reported for visibility.

  3. Reader isolation: in BENCH_service.json, BM_ServiceMixedReadWrite's
     reader_p95_us with concurrent writers must stay within a bounded factor
     (default 10x, override with AIDB_BENCH_READER_P95_MULT or
     --reader-p95-mult) of the writer-free run.  MVCC snapshot reads take no
     lock any writer holds; a regression to reader-blocking (writers
     serializing readers behind whole transactions) shows up as an
     orders-of-magnitude jump, while CPU scheduling noise stays well under
     the bound.

  4. Self-monitoring overhead: in BENCH_observability.json, the p50 of
     BM_ExecuteSelfMonitorOn (KPI sampler + span collector both live) must
     stay within 2% of BM_ExecuteSelfMonitorOff (override with
     AIDB_BENCH_SELF_MONITOR_OVERHEAD or --self-monitor-overhead).  The
     sampler-only and spans-only legs are reported for attribution but not
     gated individually — the bound is on the total always-on price.

Usage:
  scripts/bench_compare.py BENCH_vectorized.json BENCH_service.json
  scripts/bench_compare.py              # all BENCH_*.json in the repo root
  scripts/bench_compare.py --update     # rewrite baselines from fresh results

Exit status: 0 all gates pass, 1 any gate fails, 2 usage/IO error.
"""

import argparse
import glob
import json
import os
import shutil
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE_DIR = os.path.join(REPO_ROOT, "bench", "baselines")

# Volcano/Vectorized pairs that must meet the speedup gate (ROADMAP item 1:
# >= 5x on the 1M-row scan+filter+aggregate).  Grouped/join pairs materialize
# per-row keys in both engines, so they are reported but not gated.
GATED_SPEEDUP_PAIRS = ("BM_ScanFilterAgg",)

# Benchmarks whose presence is load-bearing: each listed name must appear in
# BOTH the committed baseline and the fresh results of the named file (any
# /arg variant counts).  A missing entry is a hard failure with its own
# report line — a gated benchmark that silently vanishes (renamed, filtered
# out, crashed before registering) would otherwise pass every gate it was
# supposed to enforce.
REQUIRED_GATES = {
    "BENCH_vectorized.json": ("BM_ScanFilterAgg_Volcano",
                              "BM_ScanFilterAgg_Vectorized"),
    "BENCH_service.json": ("BM_ServiceMixedReadWrite",
                           "BM_ServiceShortStatement"),
    "BENCH_observability.json": ("BM_ExecuteSelfMonitorOff",
                                 "BM_ExecuteSelfMonitorOn",
                                 "BM_SelfMonitorOverhead"),
    "BENCH_monitoring.json": ("BM_ForecastPredict",
                              "BM_Diagnose"),
    "BENCH_storage.json": ("BM_LsmFlushThroughput",
                           "BM_LsmColdPointReads",
                           "BM_LsmCompactionPolicy",
                           "BM_LsmTunerMeasured"),
}

# Per-benchmark p50 regression limits tighter than the global threshold,
# keyed by the name's head (text before the first '/').  The short-statement
# benchmark exists to bound the per-statement MVCC tax, so it gets a 10%
# budget instead of the general 15%.
TIGHT_THRESHOLDS = {
    "BM_ServiceShortStatement": 0.10,
}


def load_benchmarks(path):
    """Returns {benchmark name: p50 real_time} for one google-benchmark JSON.

    Prefers *_median aggregates (present when --benchmark_repetitions is
    used); otherwise the per-benchmark real_time is the only point estimate
    available and stands in for the p50.
    """
    with open(path) as f:
        doc = json.load(f)
    medians = {}
    singles = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name", "")
        run_type = b.get("run_type", "iteration")
        time = b.get("real_time")
        if time is None:
            continue
        if run_type == "aggregate":
            if b.get("aggregate_name") == "median":
                medians[name.replace("_median", "")] = float(time)
        else:
            singles[name] = float(time)
    merged = dict(singles)
    merged.update(medians)
    return merged


def base_name(bench_name):
    """BM_Foo_Volcano/real_time -> (BM_Foo, 'Volcano') or (name, None)."""
    head = bench_name.split("/")[0]
    for leg in ("Volcano", "Vectorized"):
        suffix = "_" + leg
        if head.endswith(suffix):
            return head[: -len(suffix)], leg
    return head, None


def check_regressions(fresh, baseline, threshold, label):
    failures = []
    for name, base_time in sorted(baseline.items()):
        if name not in fresh:
            failures.append(f"{label}: {name} present in baseline but missing "
                            f"from fresh results")
            continue
        new_time = fresh[name]
        if base_time <= 0:
            continue
        limit = TIGHT_THRESHOLDS.get(name.split("/")[0], threshold)
        delta = (new_time - base_time) / base_time
        status = "FAIL" if delta > limit else "ok"
        print(f"  [{status}] {name}: {base_time:.3f} -> {new_time:.3f} "
              f"({delta * 100:+.1f}%, limit +{limit * 100:.0f}%)")
        if delta > limit:
            failures.append(f"{label}: {name} regressed {delta * 100:+.1f}% "
                            f"(limit +{limit * 100:.0f}%)")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"  [new ] {name}: {fresh[name]:.3f} (no baseline entry)")
    return failures


def check_required_gates(fresh, baseline, label):
    """Hard-fails when a gated benchmark is absent from either side.

    `baseline` is None when no baseline file exists at all — which is itself
    a failure for a file that carries required gates.
    """
    failures = []

    def present(names, req):
        return any(n == req or n.startswith(req + "/") for n in names)

    for req in REQUIRED_GATES.get(label, ()):
        for side, names in (("baseline", baseline), ("fresh results", fresh)):
            if names is None or not present(names, req):
                print(f"  [FAIL] required gate {req}: missing from {side}")
                failures.append(f"{label}: required gated benchmark {req} "
                                f"missing from {side}")
    return failures


def check_speedups(fresh, speedup_min, label):
    """Pairs <base>_Volcano with <base>_Vectorized and checks gated ratios."""
    volcano, vectorized = {}, {}
    for name, time in fresh.items():
        base, leg = base_name(name)
        if leg == "Volcano":
            volcano[base] = time
        elif leg == "Vectorized":
            vectorized[base] = time
    failures = []
    for base in sorted(set(volcano) & set(vectorized)):
        if vectorized[base] <= 0:
            continue
        ratio = volcano[base] / vectorized[base]
        gated = base in GATED_SPEEDUP_PAIRS
        status = "ok"
        if gated and ratio < speedup_min:
            status = "FAIL"
        gate_note = f"gate >= {speedup_min:.1f}x" if gated else "ungated"
        print(f"  [{status:4}] {base}: volcano/vectorized = {ratio:.2f}x "
              f"({gate_note})")
        if status == "FAIL":
            failures.append(f"{label}: {base} speedup {ratio:.2f}x below the "
                            f"required {speedup_min:.1f}x")
    return failures


def check_reader_isolation(path, mult, label):
    """Gate 3: reader p95 under concurrent writers vs the writer-free run.

    Reads the raw google-benchmark JSON (the reader_p95_us user counter is
    not part of load_benchmarks' real_time view).  Quietly returns when the
    benchmark is absent (non-service files).
    """
    with open(path) as f:
        doc = json.load(f)
    baseline_p95 = None
    loaded = {}  # writer count -> p95
    for b in doc.get("benchmarks", []):
        name = b.get("name", "")
        if not name.startswith("BM_ServiceMixedReadWrite/"):
            continue
        if b.get("run_type") == "aggregate":
            continue
        p95 = b.get("reader_p95_us")
        writers = b.get("writers")
        if p95 is None or writers is None:
            continue
        if int(writers) == 0:
            baseline_p95 = float(p95)
        else:
            loaded[int(writers)] = float(p95)
    if baseline_p95 is None and not loaded:
        return []
    failures = []
    if baseline_p95 is None or baseline_p95 <= 0:
        failures.append(f"{label}: BM_ServiceMixedReadWrite writer-free run "
                        f"missing or degenerate; cannot gate reader isolation")
        return failures
    for writers, p95 in sorted(loaded.items()):
        ratio = p95 / baseline_p95
        status = "FAIL" if ratio > mult else "ok"
        print(f"  [{status:4}] reader p95 with {writers} writers: "
              f"{baseline_p95:.1f}us -> {p95:.1f}us ({ratio:.2f}x, "
              f"gate <= {mult:.1f}x)")
        if ratio > mult:
            failures.append(f"{label}: reader p95 with {writers} writers grew "
                            f"{ratio:.2f}x over the writer-free run "
                            f"(limit {mult:.1f}x) — readers are blocking "
                            f"behind writers")
    if not loaded:
        failures.append(f"{label}: BM_ServiceMixedReadWrite has no "
                        f"with-writers run to gate")
    return failures


def check_self_monitor_overhead(path, limit, label):
    """Gate 4: total self-monitoring overhead vs the all-off loop.

    Reads the raw google-benchmark JSON for BM_SelfMonitorOverhead's
    overhead_pct user counter: the median over per-pair ratios of
    monitoring-off vs monitoring-on block minima, where the two blocks of a
    pair run back to back under the same ambient machine state (the
    BM_Execute* matrix legs run minutes apart and carry drift, so they are
    reported but not gated).  Quietly returns when the benchmark is absent
    (files other than BENCH_observability.json); check_required_gates
    separately guarantees it cannot vanish from the observability file.
    """
    with open(path) as f:
        doc = json.load(f)
    overhead_pct = off = on = None
    found = False
    for b in doc.get("benchmarks", []):
        if not b.get("name", "").startswith("BM_SelfMonitorOverhead"):
            continue
        if b.get("run_type") == "aggregate":
            continue
        found = True
        overhead_pct = b.get("overhead_pct")
        off = b.get("p50_off_us")
        on = b.get("p50_on_us")
    if not found:
        return []
    if overhead_pct is None:
        return [f"{label}: BM_SelfMonitorOverhead is missing its "
                f"overhead_pct counter; cannot gate"]
    overhead = float(overhead_pct) / 100.0
    status = "FAIL" if overhead > limit else "ok"
    ctx = ""
    if off is not None and on is not None:
        ctx = f" (p50 {float(off):.1f}us -> {float(on):.1f}us)"
    print(f"  [{status:4}] self-monitor overhead, paired block-min median: "
          f"{overhead * 100:+.2f}%{ctx}, gate <= +{limit * 100:.0f}%")
    if overhead > limit:
        failures = [f"{label}: self-monitoring overhead "
                    f"{overhead * 100:+.2f}% exceeds the "
                    f"{limit * 100:.0f}% budget (sampler + spans on)"]
        return failures
    return []


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="fresh BENCH_*.json files (default: repo root glob)")
    parser.add_argument("--baseline-dir", default=DEFAULT_BASELINE_DIR)
    parser.add_argument("--threshold",
                        type=float,
                        default=float(os.environ.get(
                            "AIDB_BENCH_REGRESSION_THRESHOLD", "0.15")),
                        help="max allowed fractional p50 growth (default 0.15)")
    parser.add_argument("--speedup-min",
                        type=float,
                        default=float(os.environ.get(
                            "AIDB_BENCH_SPEEDUP_MIN", "5.0")),
                        help="required volcano/vectorized ratio for gated pairs")
    parser.add_argument("--reader-p95-mult",
                        type=float,
                        default=float(os.environ.get(
                            "AIDB_BENCH_READER_P95_MULT", "10.0")),
                        help="max reader p95 growth factor with writers on "
                             "(default 10.0)")
    parser.add_argument("--self-monitor-overhead",
                        type=float,
                        default=float(os.environ.get(
                            "AIDB_BENCH_SELF_MONITOR_OVERHEAD", "0.02")),
                        help="max fractional p50 overhead of sampler+spans "
                             "over the all-off loop (default 0.02)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baselines from the fresh results and exit")
    args = parser.parse_args()

    files = args.files or sorted(glob.glob(os.path.join(REPO_ROOT,
                                                        "BENCH_*.json")))
    if not files:
        print("error: no BENCH_*.json files found; run scripts/bench_json.sh "
              "first", file=sys.stderr)
        return 2

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for path in files:
            load_benchmarks(path)  # validate JSON before committing it
            dest = os.path.join(args.baseline_dir, os.path.basename(path))
            shutil.copyfile(path, dest)
            print(f"baseline updated: {dest}")
        return 0

    failures = []
    for path in files:
        label = os.path.basename(path)
        try:
            fresh = load_benchmarks(path)
        except (OSError, ValueError) as e:
            print(f"error: cannot read {path}: {e}", file=sys.stderr)
            return 2
        print(f"== {label}")

        baseline_path = os.path.join(args.baseline_dir, label)
        baseline = None
        if os.path.exists(baseline_path):
            baseline = load_benchmarks(baseline_path)
            failures += check_regressions(fresh, baseline, args.threshold,
                                          label)
        else:
            print(f"  (no baseline at {baseline_path}; regression check "
                  f"skipped)")
        failures += check_required_gates(fresh, baseline, label)
        failures += check_speedups(fresh, args.speedup_min, label)
        failures += check_reader_isolation(path, args.reader_p95_mult, label)
        failures += check_self_monitor_overhead(path,
                                                args.self_monitor_overhead,
                                                label)

    if failures:
        print("\nbench gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nbench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
