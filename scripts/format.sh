#!/usr/bin/env bash
# Formats every tracked C++ source with the repo's .clang-format.
#   scripts/format.sh          rewrite files in place
#   scripts/format.sh --check  fail (non-zero) if anything is misformatted
set -euo pipefail
cd "$(dirname "$0")/.."

mapfile -t files < <(git ls-files '*.cc' '*.h' '*.cpp')

if [[ "${1:-}" == "--check" ]]; then
  clang-format --dry-run --Werror "${files[@]}"
else
  clang-format -i "${files[@]}"
fi
