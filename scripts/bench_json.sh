#!/usr/bin/env bash
# Runs benchmark binaries and captures machine-readable results as
# BENCH_<name>.json in the repo root (google-benchmark JSON format, the
# input EXPERIMENTS.md rows are derived from).
#   scripts/bench_json.sh                   run the default benches (wal, observability, service, vectorized, monitoring, storage)
#   scripts/bench_json.sh wal parallel_exec run the named benches
#   BUILD_DIR=out scripts/bench_json.sh     use a non-default build tree
# pipefail is load-bearing: the bench binary feeds a JSON post-processing
# pipeline below, and without it a crashed/failed benchmark would be masked
# by the (successful) downstream stage and produce a plausible-looking file.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
MIN_TIME="${MIN_TIME:-0.05}"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found — build first: cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

benches=("$@")
[[ ${#benches[@]} -eq 0 ]] && benches=(wal observability service vectorized monitoring storage)

for name in "${benches[@]}"; do
  bin="$BUILD_DIR/bench/bench_$name"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (available: $(ls "$BUILD_DIR/bench" | tr '\n' ' '))" >&2
    exit 1
  fi
  out="BENCH_$name.json"
  echo "== bench_$name -> $out"
  # The console stream pipes into a summarising stage; pipefail (set above)
  # propagates a nonzero bench exit through it instead of reporting the
  # pipeline's last command.
  "$bin" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
         --benchmark_out="$out" --benchmark_out_format=json \
    | python3 -c "import json,sys; d=json.load(sys.stdin); print('   %d benchmarks' % len(d.get('benchmarks',[])))"
  # A bench that died mid-write leaves a truncated file; reject it here
  # rather than letting a half-written JSON green-wash the comparison step.
  python3 -m json.tool "$out" >/dev/null \
    || { echo "error: $out is not valid JSON" >&2; exit 1; }
done
echo "done"
