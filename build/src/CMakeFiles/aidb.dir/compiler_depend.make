# Empty compiler generated dependencies file for aidb.
# This may be replaced when dependencies are built.
