
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/advisor/index/index_advisor.cc" "src/CMakeFiles/aidb.dir/advisor/index/index_advisor.cc.o" "gcc" "src/CMakeFiles/aidb.dir/advisor/index/index_advisor.cc.o.d"
  "/root/repo/src/advisor/knob/knob_env.cc" "src/CMakeFiles/aidb.dir/advisor/knob/knob_env.cc.o" "gcc" "src/CMakeFiles/aidb.dir/advisor/knob/knob_env.cc.o.d"
  "/root/repo/src/advisor/knob/knob_tuner.cc" "src/CMakeFiles/aidb.dir/advisor/knob/knob_tuner.cc.o" "gcc" "src/CMakeFiles/aidb.dir/advisor/knob/knob_tuner.cc.o.d"
  "/root/repo/src/advisor/partition/partition_advisor.cc" "src/CMakeFiles/aidb.dir/advisor/partition/partition_advisor.cc.o" "gcc" "src/CMakeFiles/aidb.dir/advisor/partition/partition_advisor.cc.o.d"
  "/root/repo/src/advisor/rewrite/rewriter.cc" "src/CMakeFiles/aidb.dir/advisor/rewrite/rewriter.cc.o" "gcc" "src/CMakeFiles/aidb.dir/advisor/rewrite/rewriter.cc.o.d"
  "/root/repo/src/advisor/view/view_advisor.cc" "src/CMakeFiles/aidb.dir/advisor/view/view_advisor.cc.o" "gcc" "src/CMakeFiles/aidb.dir/advisor/view/view_advisor.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/aidb.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/aidb.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/stats.cc" "src/CMakeFiles/aidb.dir/catalog/stats.cc.o" "gcc" "src/CMakeFiles/aidb.dir/catalog/stats.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/aidb.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/aidb.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/aidb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/aidb.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/aidb.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/aidb.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/db4ai/governance/active_clean.cc" "src/CMakeFiles/aidb.dir/db4ai/governance/active_clean.cc.o" "gcc" "src/CMakeFiles/aidb.dir/db4ai/governance/active_clean.cc.o.d"
  "/root/repo/src/db4ai/governance/crowd_labeling.cc" "src/CMakeFiles/aidb.dir/db4ai/governance/crowd_labeling.cc.o" "gcc" "src/CMakeFiles/aidb.dir/db4ai/governance/crowd_labeling.cc.o.d"
  "/root/repo/src/db4ai/governance/discovery_graph.cc" "src/CMakeFiles/aidb.dir/db4ai/governance/discovery_graph.cc.o" "gcc" "src/CMakeFiles/aidb.dir/db4ai/governance/discovery_graph.cc.o.d"
  "/root/repo/src/db4ai/governance/lineage.cc" "src/CMakeFiles/aidb.dir/db4ai/governance/lineage.cc.o" "gcc" "src/CMakeFiles/aidb.dir/db4ai/governance/lineage.cc.o.d"
  "/root/repo/src/db4ai/inference/inference.cc" "src/CMakeFiles/aidb.dir/db4ai/inference/inference.cc.o" "gcc" "src/CMakeFiles/aidb.dir/db4ai/inference/inference.cc.o.d"
  "/root/repo/src/db4ai/model_registry.cc" "src/CMakeFiles/aidb.dir/db4ai/model_registry.cc.o" "gcc" "src/CMakeFiles/aidb.dir/db4ai/model_registry.cc.o.d"
  "/root/repo/src/db4ai/training/checkpoint_trainer.cc" "src/CMakeFiles/aidb.dir/db4ai/training/checkpoint_trainer.cc.o" "gcc" "src/CMakeFiles/aidb.dir/db4ai/training/checkpoint_trainer.cc.o.d"
  "/root/repo/src/db4ai/training/feature_selection.cc" "src/CMakeFiles/aidb.dir/db4ai/training/feature_selection.cc.o" "gcc" "src/CMakeFiles/aidb.dir/db4ai/training/feature_selection.cc.o.d"
  "/root/repo/src/db4ai/training/model_manager.cc" "src/CMakeFiles/aidb.dir/db4ai/training/model_manager.cc.o" "gcc" "src/CMakeFiles/aidb.dir/db4ai/training/model_manager.cc.o.d"
  "/root/repo/src/db4ai/training/model_selection.cc" "src/CMakeFiles/aidb.dir/db4ai/training/model_selection.cc.o" "gcc" "src/CMakeFiles/aidb.dir/db4ai/training/model_selection.cc.o.d"
  "/root/repo/src/db4ai/training/parallel_trainer.cc" "src/CMakeFiles/aidb.dir/db4ai/training/parallel_trainer.cc.o" "gcc" "src/CMakeFiles/aidb.dir/db4ai/training/parallel_trainer.cc.o.d"
  "/root/repo/src/design/learned_index/alex.cc" "src/CMakeFiles/aidb.dir/design/learned_index/alex.cc.o" "gcc" "src/CMakeFiles/aidb.dir/design/learned_index/alex.cc.o.d"
  "/root/repo/src/design/learned_index/rmi.cc" "src/CMakeFiles/aidb.dir/design/learned_index/rmi.cc.o" "gcc" "src/CMakeFiles/aidb.dir/design/learned_index/rmi.cc.o.d"
  "/root/repo/src/design/lsm_tuner/lsm_tuner.cc" "src/CMakeFiles/aidb.dir/design/lsm_tuner/lsm_tuner.cc.o" "gcc" "src/CMakeFiles/aidb.dir/design/lsm_tuner/lsm_tuner.cc.o.d"
  "/root/repo/src/design/txn_sched/learned_scheduler.cc" "src/CMakeFiles/aidb.dir/design/txn_sched/learned_scheduler.cc.o" "gcc" "src/CMakeFiles/aidb.dir/design/txn_sched/learned_scheduler.cc.o.d"
  "/root/repo/src/exec/database.cc" "src/CMakeFiles/aidb.dir/exec/database.cc.o" "gcc" "src/CMakeFiles/aidb.dir/exec/database.cc.o.d"
  "/root/repo/src/exec/expr.cc" "src/CMakeFiles/aidb.dir/exec/expr.cc.o" "gcc" "src/CMakeFiles/aidb.dir/exec/expr.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/CMakeFiles/aidb.dir/exec/operator.cc.o" "gcc" "src/CMakeFiles/aidb.dir/exec/operator.cc.o.d"
  "/root/repo/src/exec/planner.cc" "src/CMakeFiles/aidb.dir/exec/planner.cc.o" "gcc" "src/CMakeFiles/aidb.dir/exec/planner.cc.o.d"
  "/root/repo/src/learned/cardinality/learned_estimator.cc" "src/CMakeFiles/aidb.dir/learned/cardinality/learned_estimator.cc.o" "gcc" "src/CMakeFiles/aidb.dir/learned/cardinality/learned_estimator.cc.o.d"
  "/root/repo/src/learned/joinorder/learned_joinorder.cc" "src/CMakeFiles/aidb.dir/learned/joinorder/learned_joinorder.cc.o" "gcc" "src/CMakeFiles/aidb.dir/learned/joinorder/learned_joinorder.cc.o.d"
  "/root/repo/src/learned/optimizer/neo_optimizer.cc" "src/CMakeFiles/aidb.dir/learned/optimizer/neo_optimizer.cc.o" "gcc" "src/CMakeFiles/aidb.dir/learned/optimizer/neo_optimizer.cc.o.d"
  "/root/repo/src/ml/bandit.cc" "src/CMakeFiles/aidb.dir/ml/bandit.cc.o" "gcc" "src/CMakeFiles/aidb.dir/ml/bandit.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/CMakeFiles/aidb.dir/ml/dataset.cc.o" "gcc" "src/CMakeFiles/aidb.dir/ml/dataset.cc.o.d"
  "/root/repo/src/ml/dawid_skene.cc" "src/CMakeFiles/aidb.dir/ml/dawid_skene.cc.o" "gcc" "src/CMakeFiles/aidb.dir/ml/dawid_skene.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/CMakeFiles/aidb.dir/ml/kmeans.cc.o" "gcc" "src/CMakeFiles/aidb.dir/ml/kmeans.cc.o.d"
  "/root/repo/src/ml/linear.cc" "src/CMakeFiles/aidb.dir/ml/linear.cc.o" "gcc" "src/CMakeFiles/aidb.dir/ml/linear.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/CMakeFiles/aidb.dir/ml/matrix.cc.o" "gcc" "src/CMakeFiles/aidb.dir/ml/matrix.cc.o.d"
  "/root/repo/src/ml/mcts.cc" "src/CMakeFiles/aidb.dir/ml/mcts.cc.o" "gcc" "src/CMakeFiles/aidb.dir/ml/mcts.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/CMakeFiles/aidb.dir/ml/mlp.cc.o" "gcc" "src/CMakeFiles/aidb.dir/ml/mlp.cc.o.d"
  "/root/repo/src/ml/qlearning.cc" "src/CMakeFiles/aidb.dir/ml/qlearning.cc.o" "gcc" "src/CMakeFiles/aidb.dir/ml/qlearning.cc.o.d"
  "/root/repo/src/ml/tree.cc" "src/CMakeFiles/aidb.dir/ml/tree.cc.o" "gcc" "src/CMakeFiles/aidb.dir/ml/tree.cc.o.d"
  "/root/repo/src/monitor/activity.cc" "src/CMakeFiles/aidb.dir/monitor/activity.cc.o" "gcc" "src/CMakeFiles/aidb.dir/monitor/activity.cc.o.d"
  "/root/repo/src/monitor/diagnose.cc" "src/CMakeFiles/aidb.dir/monitor/diagnose.cc.o" "gcc" "src/CMakeFiles/aidb.dir/monitor/diagnose.cc.o.d"
  "/root/repo/src/monitor/forecast.cc" "src/CMakeFiles/aidb.dir/monitor/forecast.cc.o" "gcc" "src/CMakeFiles/aidb.dir/monitor/forecast.cc.o.d"
  "/root/repo/src/monitor/perf_pred.cc" "src/CMakeFiles/aidb.dir/monitor/perf_pred.cc.o" "gcc" "src/CMakeFiles/aidb.dir/monitor/perf_pred.cc.o.d"
  "/root/repo/src/optimizer/cardinality.cc" "src/CMakeFiles/aidb.dir/optimizer/cardinality.cc.o" "gcc" "src/CMakeFiles/aidb.dir/optimizer/cardinality.cc.o.d"
  "/root/repo/src/optimizer/query_graph.cc" "src/CMakeFiles/aidb.dir/optimizer/query_graph.cc.o" "gcc" "src/CMakeFiles/aidb.dir/optimizer/query_graph.cc.o.d"
  "/root/repo/src/security/access_control.cc" "src/CMakeFiles/aidb.dir/security/access_control.cc.o" "gcc" "src/CMakeFiles/aidb.dir/security/access_control.cc.o.d"
  "/root/repo/src/security/discovery.cc" "src/CMakeFiles/aidb.dir/security/discovery.cc.o" "gcc" "src/CMakeFiles/aidb.dir/security/discovery.cc.o.d"
  "/root/repo/src/security/injection.cc" "src/CMakeFiles/aidb.dir/security/injection.cc.o" "gcc" "src/CMakeFiles/aidb.dir/security/injection.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/aidb.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/aidb.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/aidb.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/aidb.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/aidb.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/aidb.dir/sql/parser.cc.o.d"
  "/root/repo/src/storage/btree.cc" "src/CMakeFiles/aidb.dir/storage/btree.cc.o" "gcc" "src/CMakeFiles/aidb.dir/storage/btree.cc.o.d"
  "/root/repo/src/storage/lsm.cc" "src/CMakeFiles/aidb.dir/storage/lsm.cc.o" "gcc" "src/CMakeFiles/aidb.dir/storage/lsm.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/aidb.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/aidb.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/CMakeFiles/aidb.dir/storage/value.cc.o" "gcc" "src/CMakeFiles/aidb.dir/storage/value.cc.o.d"
  "/root/repo/src/txn/lock_manager.cc" "src/CMakeFiles/aidb.dir/txn/lock_manager.cc.o" "gcc" "src/CMakeFiles/aidb.dir/txn/lock_manager.cc.o.d"
  "/root/repo/src/txn/simulator.cc" "src/CMakeFiles/aidb.dir/txn/simulator.cc.o" "gcc" "src/CMakeFiles/aidb.dir/txn/simulator.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/aidb.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/aidb.dir/workload/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
