file(REMOVE_RECURSE
  "libaidb.a"
)
