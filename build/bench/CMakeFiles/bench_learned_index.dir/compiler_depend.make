# Empty compiler generated dependencies file for bench_learned_index.
# This may be replaced when dependencies are built.
