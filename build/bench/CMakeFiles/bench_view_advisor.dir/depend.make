# Empty dependencies file for bench_view_advisor.
# This may be replaced when dependencies are built.
