file(REMOVE_RECURSE
  "CMakeFiles/bench_view_advisor.dir/bench_view_advisor.cc.o"
  "CMakeFiles/bench_view_advisor.dir/bench_view_advisor.cc.o.d"
  "bench_view_advisor"
  "bench_view_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_view_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
