# Empty dependencies file for bench_sql_rewrite.
# This may be replaced when dependencies are built.
