file(REMOVE_RECURSE
  "CMakeFiles/bench_sql_rewrite.dir/bench_sql_rewrite.cc.o"
  "CMakeFiles/bench_sql_rewrite.dir/bench_sql_rewrite.cc.o.d"
  "bench_sql_rewrite"
  "bench_sql_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sql_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
