file(REMOVE_RECURSE
  "CMakeFiles/bench_monitoring.dir/bench_monitoring.cc.o"
  "CMakeFiles/bench_monitoring.dir/bench_monitoring.cc.o.d"
  "bench_monitoring"
  "bench_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
