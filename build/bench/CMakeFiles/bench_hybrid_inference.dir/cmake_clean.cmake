file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_inference.dir/bench_hybrid_inference.cc.o"
  "CMakeFiles/bench_hybrid_inference.dir/bench_hybrid_inference.cc.o.d"
  "bench_hybrid_inference"
  "bench_hybrid_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
