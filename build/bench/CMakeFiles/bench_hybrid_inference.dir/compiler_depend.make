# Empty compiler generated dependencies file for bench_hybrid_inference.
# This may be replaced when dependencies are built.
