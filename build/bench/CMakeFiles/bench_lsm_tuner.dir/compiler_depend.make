# Empty compiler generated dependencies file for bench_lsm_tuner.
# This may be replaced when dependencies are built.
