file(REMOVE_RECURSE
  "CMakeFiles/bench_lsm_tuner.dir/bench_lsm_tuner.cc.o"
  "CMakeFiles/bench_lsm_tuner.dir/bench_lsm_tuner.cc.o.d"
  "bench_lsm_tuner"
  "bench_lsm_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lsm_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
