# Empty compiler generated dependencies file for bench_e2e_optimizer.
# This may be replaced when dependencies are built.
