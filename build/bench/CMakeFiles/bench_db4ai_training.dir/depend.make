# Empty dependencies file for bench_db4ai_training.
# This may be replaced when dependencies are built.
