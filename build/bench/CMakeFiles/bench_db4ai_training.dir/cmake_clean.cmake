file(REMOVE_RECURSE
  "CMakeFiles/bench_db4ai_training.dir/bench_db4ai_training.cc.o"
  "CMakeFiles/bench_db4ai_training.dir/bench_db4ai_training.cc.o.d"
  "bench_db4ai_training"
  "bench_db4ai_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_db4ai_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
