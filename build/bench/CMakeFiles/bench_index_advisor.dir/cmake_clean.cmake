file(REMOVE_RECURSE
  "CMakeFiles/bench_index_advisor.dir/bench_index_advisor.cc.o"
  "CMakeFiles/bench_index_advisor.dir/bench_index_advisor.cc.o.d"
  "bench_index_advisor"
  "bench_index_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
