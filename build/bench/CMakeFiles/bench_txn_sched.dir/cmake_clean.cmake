file(REMOVE_RECURSE
  "CMakeFiles/bench_txn_sched.dir/bench_txn_sched.cc.o"
  "CMakeFiles/bench_txn_sched.dir/bench_txn_sched.cc.o.d"
  "bench_txn_sched"
  "bench_txn_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_txn_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
