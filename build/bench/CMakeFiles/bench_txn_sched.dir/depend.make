# Empty dependencies file for bench_txn_sched.
# This may be replaced when dependencies are built.
