# Empty compiler generated dependencies file for bench_knob_tuning.
# This may be replaced when dependencies are built.
