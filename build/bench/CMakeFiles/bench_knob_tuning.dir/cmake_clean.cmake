file(REMOVE_RECURSE
  "CMakeFiles/bench_knob_tuning.dir/bench_knob_tuning.cc.o"
  "CMakeFiles/bench_knob_tuning.dir/bench_knob_tuning.cc.o.d"
  "bench_knob_tuning"
  "bench_knob_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_knob_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
