# Empty compiler generated dependencies file for aidb_tests.
# This may be replaced when dependencies are built.
