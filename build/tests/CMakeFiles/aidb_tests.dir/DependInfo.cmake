
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/advisor_test.cc" "tests/CMakeFiles/aidb_tests.dir/advisor_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/advisor_test.cc.o.d"
  "/root/repo/tests/checkpoint_test.cc" "tests/CMakeFiles/aidb_tests.dir/checkpoint_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/checkpoint_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/aidb_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/db4ai_test.cc" "tests/CMakeFiles/aidb_tests.dir/db4ai_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/db4ai_test.cc.o.d"
  "/root/repo/tests/design_test.cc" "tests/CMakeFiles/aidb_tests.dir/design_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/design_test.cc.o.d"
  "/root/repo/tests/engine_edge_test.cc" "tests/CMakeFiles/aidb_tests.dir/engine_edge_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/engine_edge_test.cc.o.d"
  "/root/repo/tests/exec_test.cc" "tests/CMakeFiles/aidb_tests.dir/exec_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/exec_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/aidb_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/learned_test.cc" "tests/CMakeFiles/aidb_tests.dir/learned_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/learned_test.cc.o.d"
  "/root/repo/tests/misc_test.cc" "tests/CMakeFiles/aidb_tests.dir/misc_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/misc_test.cc.o.d"
  "/root/repo/tests/ml_test.cc" "tests/CMakeFiles/aidb_tests.dir/ml_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/ml_test.cc.o.d"
  "/root/repo/tests/monitor_test.cc" "tests/CMakeFiles/aidb_tests.dir/monitor_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/monitor_test.cc.o.d"
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/aidb_tests.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/optimizer_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/aidb_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/security_test.cc" "tests/CMakeFiles/aidb_tests.dir/security_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/security_test.cc.o.d"
  "/root/repo/tests/sql_features_test.cc" "tests/CMakeFiles/aidb_tests.dir/sql_features_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/sql_features_test.cc.o.d"
  "/root/repo/tests/sql_test.cc" "tests/CMakeFiles/aidb_tests.dir/sql_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/sql_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/aidb_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/txn_test.cc" "tests/CMakeFiles/aidb_tests.dir/txn_test.cc.o" "gcc" "tests/CMakeFiles/aidb_tests.dir/txn_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aidb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
