file(REMOVE_RECURSE
  "CMakeFiles/example_hospital_ml_pipeline.dir/hospital_ml_pipeline.cpp.o"
  "CMakeFiles/example_hospital_ml_pipeline.dir/hospital_ml_pipeline.cpp.o.d"
  "example_hospital_ml_pipeline"
  "example_hospital_ml_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hospital_ml_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
