# Empty dependencies file for example_hospital_ml_pipeline.
# This may be replaced when dependencies are built.
