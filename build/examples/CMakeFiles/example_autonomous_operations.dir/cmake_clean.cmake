file(REMOVE_RECURSE
  "CMakeFiles/example_autonomous_operations.dir/autonomous_operations.cpp.o"
  "CMakeFiles/example_autonomous_operations.dir/autonomous_operations.cpp.o.d"
  "example_autonomous_operations"
  "example_autonomous_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_autonomous_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
