# Empty dependencies file for example_autonomous_operations.
# This may be replaced when dependencies are built.
