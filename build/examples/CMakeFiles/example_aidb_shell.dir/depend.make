# Empty dependencies file for example_aidb_shell.
# This may be replaced when dependencies are built.
