file(REMOVE_RECURSE
  "CMakeFiles/example_aidb_shell.dir/aidb_shell.cpp.o"
  "CMakeFiles/example_aidb_shell.dir/aidb_shell.cpp.o.d"
  "example_aidb_shell"
  "example_aidb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_aidb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
