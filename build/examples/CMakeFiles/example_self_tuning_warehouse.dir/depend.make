# Empty dependencies file for example_self_tuning_warehouse.
# This may be replaced when dependencies are built.
