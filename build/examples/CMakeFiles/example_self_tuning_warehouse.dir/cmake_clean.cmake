file(REMOVE_RECURSE
  "CMakeFiles/example_self_tuning_warehouse.dir/self_tuning_warehouse.cpp.o"
  "CMakeFiles/example_self_tuning_warehouse.dir/self_tuning_warehouse.cpp.o.d"
  "example_self_tuning_warehouse"
  "example_self_tuning_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_self_tuning_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
