#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/database.h"
#include "server/classifier.h"
#include "server/session.h"

namespace aidb::server {

struct ServiceOptions {
  /// Executor worker threads (the service's concurrency, independent of the
  /// intra-query morsel pool).
  size_t workers = 4;
  /// Bound on queued-but-not-running statements; submissions past it are
  /// shed immediately with Status::Overloaded.
  size_t queue_capacity = 64;
  /// Workers that refuse heavy-lane work, so cheap statements always have
  /// capacity. Clamped to workers - 1.
  size_t cheap_reserve = 1;
  /// Default per-statement deadline applied when the session has none set;
  /// 0 disables.
  double default_timeout_ms = 0.0;
  /// Queue-wait bound: a statement still queued this long past its
  /// enqueue is shed with Status::Timeout before execution. 0 disables.
  double max_queue_wait_ms = 0.0;
  /// Use the cheap/heavy classifier for lane selection (off = everything is
  /// one FIFO lane).
  bool classify = true;
  /// Fit the classifier from the database's query log at startup.
  bool warm_classifier_from_log = true;
  /// Per-lane end-to-end p95 latency targets for the SLO tracker (0 = lane
  /// untracked). A cheap lane in breach feeds live pressure back into the
  /// admission classifier (SetCheapLanePressure), and both lanes publish
  /// slo.<lane>.p95_us / target_us / breach gauges.
  double cheap_p95_target_ms = 0.0;
  double heavy_p95_target_ms = 0.0;
  /// Rolling statements per lane the p95 is computed over.
  size_t slo_window = 256;
};

/// \brief Concurrent in-process SQL service: sessions, admission control,
/// per-statement deadlines and a cheap/heavy scheduler over one Database.
///
/// Concurrency model: the Database's read paths (planning + SELECT
/// execution) are thread-safe against each other but not against writes, so
/// the service holds a shared lock for plain SELECT / PREPARE / EXECUTE-of-
/// SELECT / DEALLOCATE and an exclusive lock for everything that mutates
/// engine state (DML, DDL, ANALYZE, CREATE MODEL), for EXPLAIN ANALYZE and
/// engine-tracing runs (they write the shared trace buffer), and for any
/// statement touching an aidb_* system view (refresh replaces the backing
/// table).
///
/// Overload never crashes and never hangs: a full queue sheds with
/// Status::Overloaded at submit; a statement whose deadline passes while
/// queued is shed with Status::Timeout; a running statement past its
/// deadline is cancelled at the next morsel boundary and surfaces
/// Status::Timeout.
class Service {
 public:
  Service(Database* db, ServiceOptions opts = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Opens a session seeded from the database's current global settings.
  std::shared_ptr<Session> OpenSession();
  Status CloseSession(uint64_t session_id);
  SessionManager& sessions() { return sessions_; }

  /// Enqueues `sql` for the session; the future resolves to the result or a
  /// typed error (Overloaded / Timeout / Cancelled / statement error). On
  /// immediate shedding the future is already resolved.
  std::future<Result<QueryResult>> Submit(uint64_t session_id, std::string sql);

  /// Submit + wait.
  Result<QueryResult> Execute(uint64_t session_id, const std::string& sql);

  /// Blocks until no statement is queued or running.
  void Drain();

  const QueryClassifier& classifier() const { return classifier_; }
  size_t queue_depth() const;
  uint64_t shed_overloaded() const {
    return shed_overloaded_.load(std::memory_order_relaxed);
  }
  uint64_t shed_timeout() const {
    return shed_timeout_.load(std::memory_order_relaxed);
  }
  uint64_t executed() const { return executed_.load(std::memory_order_relaxed); }

  /// Rolling end-to-end p95 of a lane (0 before any completion), and whether
  /// the lane currently misses its target. SLO-tracker observability hooks.
  double LaneP95Ms(QueryClass k) const;
  bool LaneBreaching(QueryClass k) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    std::shared_ptr<Session> session;
    std::string sql;
    SqlFacts facts;
    uint64_t digest = 0;
    QueryClass klass = QueryClass::kCheap;
    Clock::time_point enqueued{};
    Clock::time_point deadline{};  ///< time_point::max() = none
    bool has_deadline = false;
    std::shared_ptr<std::atomic<bool>> cancel;
    std::promise<Result<QueryResult>> promise;
    /// End-to-end trace identity, minted at admission when spans are on.
    uint64_t trace_id = 0;
    uint64_t root_span = 0;
    double admitted_us = 0.0;  ///< collector clock at admission
  };

  void WorkerLoop(size_t worker_index);
  void ReaperLoop();
  void RunJob(Job& job);
  /// True when the statement can run under the shared (reader) lock.
  bool SharedEligible(const Job& job) const;
  void RegisterSessionsView();
  /// Records one completed statement's end-to-end latency into its lane's
  /// SLO window; refreshes the p95 gauges and the classifier pressure.
  void RecordLaneLatency(QueryClass k, double ms);
  /// Records the root `request` span of a finished (or shed) job.
  void RecordRequestSpan(const Job& job, const char* outcome);

  Database* db_;
  ServiceOptions opts_;
  SessionManager sessions_;
  QueryClassifier classifier_;

  /// Serializes engine writers against readers (see class comment).
  std::shared_mutex db_mu_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drain_cv_;
  std::deque<std::shared_ptr<Job>> cheap_queue_;
  std::deque<std::shared_ptr<Job>> heavy_queue_;
  size_t running_jobs_ = 0;
  bool stopping_ = false;

  /// Live cancel flags + deadlines for the reaper (queued and running).
  struct DeadlineEntry {
    std::shared_ptr<std::atomic<bool>> cancel;
    Clock::time_point deadline;
  };
  std::mutex reaper_mu_;
  std::vector<DeadlineEntry> deadlines_;

  std::vector<std::thread> workers_;
  std::thread reaper_;

  std::atomic<uint64_t> shed_overloaded_{0};
  std::atomic<uint64_t> shed_timeout_{0};
  std::atomic<uint64_t> executed_{0};
  bool view_registered_ = false;

  /// Per-lane rolling latency window for the SLO tracker ([0]=cheap,
  /// [1]=heavy).
  struct LaneSlo {
    mutable std::mutex mu;
    std::deque<double> window_ms;
    double p95_ms = 0.0;
    uint64_t records = 0;
    bool breaching = false;
  };
  LaneSlo slo_[2];
};

}  // namespace aidb::server
