#include "server/plan_cache.h"

namespace aidb::server {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvString(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

uint64_t KnobFingerprint(const exec::PlannerOptions& opts) {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, opts.use_indexes ? 1 : 0);
  h = FnvMix(h, static_cast<uint64_t>(opts.index_selectivity_threshold * 1e6));
  h = FnvMix(h, opts.use_card_feedback ? 1 : 0);
  h = FnvMix(h, opts.dop);
  h = FnvMix(h, opts.parallel_threshold_rows);
  h = FnvMix(h, opts.vectorized ? 1 : 0);
  // Pointer identity of the pluggable components: a learned estimator or a
  // different executor pool yields different plans from the same SQL.
  h = FnvMix(h, reinterpret_cast<uintptr_t>(opts.estimator));
  h = FnvMix(h, reinterpret_cast<uintptr_t>(opts.enumerator));
  h = FnvMix(h, reinterpret_cast<uintptr_t>(opts.exec_pool));
  return h;
}

PlanCache::PlanCache(size_t capacity, size_t shards)
    : capacity_(capacity == 0 ? 1 : capacity),
      shards_(shards == 0 ? 1 : shards) {
  per_shard_cap_ = (capacity_ + shards_.size() - 1) / shards_.size();
  if (per_shard_cap_ == 0) per_shard_cap_ = 1;
}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  return shards_[FnvString(kFnvOffset, key) % shards_.size()];
}

std::optional<CachedPlan> PlanCache::Acquire(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  CachedPlan entry = std::move(*it->second);
  shard.lru.erase(it->second);
  shard.index.erase(it);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

void PlanCache::Release(CachedPlan entry) {
  Shard& shard = ShardFor(entry.key);
  std::lock_guard<std::mutex> lock(shard.mu);
  // A same-key entry may have been rebuilt and released while this one was
  // checked out; keep the incumbent (it is at least as fresh).
  if (shard.index.count(entry.key) > 0) return;
  shard.lru.push_front(std::move(entry));
  shard.index[shard.lru.front().key] = shard.lru.begin();
  while (shard.lru.size() > per_shard_cap_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.index.clear();
    shard.lru.clear();
  }
}

size_t PlanCache::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.lru.size();
  }
  return n;
}

}  // namespace aidb::server
