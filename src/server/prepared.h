#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace aidb::server {

/// \brief Named prepared-statement templates (PREPARE/EXECUTE/DEALLOCATE).
///
/// Values are shared_ptr-to-const: an EXECUTE that raced a concurrent
/// DEALLOCATE keeps its template alive for the statement it already started,
/// instead of dangling. One store can be database-global (bare Database
/// usage, the fuzzer) or per-session (the server gives each session its own,
/// matching the Postgres scoping rule).
class PreparedStore {
 public:
  /// Registers a template. AlreadyExists when the name is taken — re-PREPARE
  /// requires an explicit DEALLOCATE, so a raced double-PREPARE is loud.
  Status Put(std::shared_ptr<const sql::PrepareStatement> stmt);

  /// The template for `name`, or NotFound.
  Result<std::shared_ptr<const sql::PrepareStatement>> Get(
      const std::string& name) const;

  /// Removes `name` (NotFound when absent).
  Status Remove(const std::string& name);

  /// Registered template names, sorted (for aidb_sessions observability).
  std::vector<std::string> Names() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const sql::PrepareStatement>>
      map_;
};

}  // namespace aidb::server
