#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "monitor/perf_pred.h"
#include "monitor/query_log.h"

namespace aidb::server {

/// Admission-time cost class of a statement. Cheap statements go to the
/// latency-sensitive lane; heavy ones queue behind other heavy work so a
/// burst of analytics cannot starve point lookups.
enum class QueryClass { kCheap, kHeavy };

/// Cheap syntactic facts about a statement, extractable from the raw SQL
/// text without planning it. Used for cold-start classification before any
/// execution of that statement shape has been observed.
struct SqlFacts {
  bool is_select = false;
  bool has_join = false;
  bool has_group_by = false;
  bool has_aggregate = false;
  bool has_order_by = false;
  bool has_limit = false;
};

/// Scans the raw SQL (case-insensitive keyword search) for the facts above.
SqlFacts ExtractSqlFacts(const std::string& sql);

/// Stable digest of a statement's normalized text; the classifier's key.
/// Statements differing only in whitespace/case of keywords share a digest.
uint64_t SqlShapeDigest(const std::string& sql);

/// \brief Learned cheap-vs-heavy classifier for admission scheduling.
///
/// Per-digest EWMA of observed execution cost (operator work units) with a
/// threshold adapted to the global cost distribution. Unknown digests fall
/// back to a syntactic prior, optionally sharpened by the PR-4 graph perf
/// predictor warm-started from the engine query log: the predictor maps a
/// demand sketch derived from the syntactic facts to an expected latency,
/// which is compared against the observed latency scale of the log.
class QueryClassifier {
 public:
  struct Options {
    double ewma_alpha = 0.25;   ///< weight of the newest observation
    /// Heavy if cost > ratio * geometric mean of all observed costs.
    double heavy_ratio = 4.0;
    double min_heavy_cost = 64; ///< floor so tiny workloads don't flag heavy
  };

  QueryClassifier() : QueryClassifier(Options()) {}
  explicit QueryClassifier(const Options& opts) : opts_(opts) {}

  /// Records the observed cost of one completed statement.
  void Record(uint64_t digest, double cost);

  /// Classifies a statement: EWMA when the digest has been seen, syntactic
  /// prior (+ perf-predictor estimate when warmed) otherwise.
  QueryClass Classify(uint64_t digest, const SqlFacts& facts) const;

  /// Seeds per-digest EWMAs from the query log and fits the graph perf
  /// predictor on it (monitor::FitFromQueryLog). Returns the number of log
  /// entries absorbed into EWMAs.
  size_t WarmFromQueryLog(const std::vector<monitor::QueryLogEntry>& entries);

  /// Current heavy threshold (test/observability hook).
  double HeavyThreshold() const;
  size_t known_digests() const;

  /// Live SLO signal from the service's per-lane p95 tracker: while the
  /// cheap lane misses its latency target, the heavy threshold halves so
  /// borderline statements divert to the heavy lane instead of crowding
  /// latency-sensitive work.
  void SetCheapLanePressure(bool on) {
    cheap_pressure_.store(on, std::memory_order_relaxed);
  }
  bool cheap_lane_pressure() const {
    return cheap_pressure_.load(std::memory_order_relaxed);
  }

 private:
  double HeavyThresholdLocked() const;

  std::atomic<bool> cheap_pressure_{false};
  Options opts_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, double> ewma_;
  double total_log_cost_ = 0.0;  ///< sum of log1p(cost): geometric-mean basis
  uint64_t samples_ = 0;
  bool predictor_warm_ = false;
  double warm_latency_scale_ = 0.0;  ///< mean solo latency seen during warmup
  monitor::GraphPerfPredictor predictor_;
};

}  // namespace aidb::server
