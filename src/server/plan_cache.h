#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/planner.h"

namespace aidb::server {

/// \brief One cached physical plan plus everything needed to decide whether
/// it is still valid.
///
/// The plan's operators hold raw Table*/BTree* pointers into the catalog, so
/// validity is tracked as (table name, DDL epoch) pairs recorded at build
/// time: any later CREATE/DROP TABLE, CREATE/DROP INDEX or ANALYZE touching
/// a referenced table bumps that table's epoch and strands the entry. Plans
/// built with cardinality feedback additionally record the feedback
/// generation (CardinalityFeedback::epoch()).
///
/// The QueryGraph inside `plan` is scrubbed before caching: its
/// local_predicates / edge conditions point into the statement AST, which
/// dies with the statement.
struct CachedPlan {
  std::string key;
  exec::PhysicalPlan plan;
  std::vector<std::pair<std::string, uint64_t>> deps;  ///< (table, ddl epoch)
  uint64_t feedback_epoch = 0;
  bool used_feedback = false;
};

/// \brief Sharded LRU cache of physical plans, keyed by normalized SQL +
/// bound arguments + planner-knob fingerprint.
///
/// Plans are exclusive resources (operators carry execution state), so
/// lookup is CHECK-OUT semantics: Acquire removes the entry and hands it to
/// the caller; Release checks it back in at the MRU position after the
/// statement finishes. Two sessions hitting the same key concurrently cost
/// one of them a re-plan — correct, and far cheaper than making every
/// operator tree shareable.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 256, size_t shards = 8);

  /// Checks out the plan under `key`, or nullopt on miss. Hit/miss counters
  /// update here; a checked-out entry does not count against capacity.
  std::optional<CachedPlan> Acquire(const std::string& key);

  /// Checks a plan in at the MRU position of its shard, evicting from the
  /// LRU end past capacity. Also the insert path for newly built plans.
  void Release(CachedPlan entry);

  /// Drops every cached entry (bulk invalidation: DROP of unknown scope,
  /// model retrain). Checked-out entries are unaffected — their staleness is
  /// caught by the epoch check on next Acquire because they re-enter through
  /// Release with their original deps.
  void Clear();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::list<CachedPlan> lru;  ///< front = MRU
    std::unordered_map<std::string, std::list<CachedPlan>::iterator> index;
  };

  Shard& ShardFor(const std::string& key);

  size_t capacity_;
  size_t per_shard_cap_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

/// FNV-1a fingerprint of every planner knob that changes plan shape. Two
/// sessions with different knobs must never share cache entries, so the
/// fingerprint is part of the cache key.
uint64_t KnobFingerprint(const exec::PlannerOptions& opts);

}  // namespace aidb::server
