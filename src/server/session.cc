#include "server/session.h"

namespace aidb::server {

Session::Session(uint64_t id, ExecSettings base_settings)
    : id_(id), settings_(base_settings) {
  settings_.session_id = id_;
  settings_.cancel = nullptr;
  settings_.prepared = nullptr;  // filled per snapshot
}

ExecSettings Session::SnapshotSettings() const {
  std::lock_guard<std::mutex> lock(mu_);
  ExecSettings s = settings_;
  s.prepared = &prepared_;
  return s;
}

void Session::set_dop(size_t dop) {
  std::lock_guard<std::mutex> lock(mu_);
  settings_.planner.dop = dop == 0 ? 1 : dop;
}

size_t Session::dop() const {
  std::lock_guard<std::mutex> lock(mu_);
  return settings_.planner.dop;
}

void Session::set_vectorized(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  settings_.planner.vectorized = on;
}

bool Session::vectorized() const {
  std::lock_guard<std::mutex> lock(mu_);
  return settings_.planner.vectorized;
}

void Session::set_use_indexes(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  settings_.planner.use_indexes = on;
}

void Session::set_use_card_feedback(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  settings_.planner.use_card_feedback = on;
}

void Session::set_statement_timeout_ms(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  statement_timeout_ms_ = ms < 0.0 ? 0.0 : ms;
}

double Session::statement_timeout_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return statement_timeout_ms_;
}

std::string Session::StateName() const {
  if (closed.load(std::memory_order_relaxed)) return "closed";
  if (running.load(std::memory_order_relaxed) > 0) return "running";
  if (queued.load(std::memory_order_relaxed) > 0) return "queued";
  return "idle";
}

std::shared_ptr<Session> SessionManager::Open(const ExecSettings& base) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_id_++;
  auto session = std::make_shared<Session>(id, base);
  sessions_.emplace(id, session);
  return session;
}

std::shared_ptr<Session> SessionManager::Get(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

Status SessionManager::Close(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("session " + std::to_string(id));
  }
  it->second->closed.store(true, std::memory_order_relaxed);
  sessions_.erase(it);
  return Status::OK();
}

std::vector<std::shared_ptr<Session>> SessionManager::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Session>> out;
  out.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) out.push_back(s);
  return out;
}

size_t SessionManager::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace aidb::server
