#include "server/classifier.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "monitor/feedback.h"
#include "sql/lexer.h"

namespace aidb::server {

namespace {

std::string UpperCopy(const std::string& s) {
  std::string out(s.size(), '\0');
  std::transform(s.begin(), s.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

}  // namespace

SqlFacts ExtractSqlFacts(const std::string& sql) {
  SqlFacts f;
  std::string u = UpperCopy(sql);
  // Leading keyword, skipping whitespace and a possible EXPLAIN prefix.
  size_t i = u.find_first_not_of(" \t\r\n");
  std::string head = i == std::string::npos ? "" : u.substr(i, 16);
  f.is_select = head.rfind("SELECT", 0) == 0 || head.rfind("EXPLAIN", 0) == 0;
  f.has_join = Contains(u, " JOIN ");
  f.has_group_by = Contains(u, "GROUP BY");
  f.has_order_by = Contains(u, "ORDER BY");
  f.has_limit = Contains(u, " LIMIT ");
  f.has_aggregate = Contains(u, "COUNT(") || Contains(u, "SUM(") ||
                    Contains(u, "AVG(") || Contains(u, "MIN(") ||
                    Contains(u, "MAX(") || Contains(u, "COUNT (") ||
                    Contains(u, "SUM (") || Contains(u, "AVG (");
  return f;
}

uint64_t SqlShapeDigest(const std::string& sql) {
  std::string norm = sql;
  if (auto r = sql::NormalizeSql(sql); r.ok()) norm = r.ValueOrDie();
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : norm) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

void QueryClassifier::Record(uint64_t digest, double cost) {
  if (cost < 0.0) cost = 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = ewma_.emplace(digest, cost);
  if (!inserted) {
    it->second = opts_.ewma_alpha * cost + (1.0 - opts_.ewma_alpha) * it->second;
  }
  total_log_cost_ += std::log1p(cost);
  ++samples_;
}

double QueryClassifier::HeavyThresholdLocked() const {
  if (samples_ == 0) return opts_.min_heavy_cost;
  // Geometric mean: workload cost distributions are heavy-tailed, and an
  // arithmetic mean over them is dominated by the heavy queries themselves —
  // which would reclassify them as "normal". The log-domain mean keeps the
  // threshold anchored to the typical statement.
  double geo = std::expm1(total_log_cost_ / static_cast<double>(samples_));
  // Under cheap-lane SLO pressure the ratio halves: statements near the
  // boundary stop competing with the latency-sensitive lane until its p95
  // recovers.
  const double ratio = cheap_pressure_.load(std::memory_order_relaxed)
                           ? opts_.heavy_ratio * 0.5
                           : opts_.heavy_ratio;
  return std::max(opts_.min_heavy_cost, ratio * geo);
}

double QueryClassifier::HeavyThreshold() const {
  std::lock_guard<std::mutex> lock(mu_);
  return HeavyThresholdLocked();
}

size_t QueryClassifier::known_digests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_.size();
}

QueryClass QueryClassifier::Classify(uint64_t digest,
                                     const SqlFacts& facts) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ewma_.find(digest);
  if (it != ewma_.end()) {
    return it->second > HeavyThresholdLocked() ? QueryClass::kHeavy
                                               : QueryClass::kCheap;
  }
  // Cold start. Writes and DDL are "heavy" by construction: writes hold row
  // locks and append to the WAL, DDL takes the exclusive engine lock —
  // keeping both off the cheap lane protects point lookups from queueing
  // behind them.
  if (!facts.is_select) return QueryClass::kHeavy;
  if (predictor_warm_ && warm_latency_scale_ > 0.0) {
    // Sketch the unseen query's demand vector from syntax alone and ask the
    // warm-started perf predictor for a solo-latency estimate, on the same
    // scale as the log it was fitted to.
    monitor::WorkloadMix probe;
    monitor::ConcurrentQuery q;
    q.demand = {facts.has_join ? 0.6 : 0.2,
                facts.has_order_by || facts.has_group_by ? 0.5 : 0.2,
                facts.has_aggregate ? 0.5 : 0.1, facts.has_join ? 0.4 : 0.05};
    q.solo_latency = warm_latency_scale_;
    probe.queries.push_back(std::move(q));
    double est = predictor_.Predict(probe);
    if (est > opts_.heavy_ratio * warm_latency_scale_) return QueryClass::kHeavy;
  }
  if (facts.has_join || facts.has_group_by || facts.has_aggregate) {
    return QueryClass::kHeavy;
  }
  return QueryClass::kCheap;
}

size_t QueryClassifier::WarmFromQueryLog(
    const std::vector<monitor::QueryLogEntry>& entries) {
  // Everything under one lock: Classify() reads predictor_ concurrently, and
  // MLP fitting must not race with prediction.
  std::lock_guard<std::mutex> lock(mu_);
  size_t absorbed = 0;
  double latency_sum = 0.0;
  size_t latency_n = 0;
  for (const auto& e : entries) {
    // Only SELECTs train the threshold: DDL/DML log zero operator work and
    // would drag the typical-cost estimate toward 0, flagging every real
    // scan as heavy. (Writes are routed to the heavy lane by kind anyway.)
    if (!e.ok || e.kind != "select") continue;
    uint64_t digest = SqlShapeDigest(e.sql);
    double cost = static_cast<double>(e.work);
    auto [it, inserted] = ewma_.emplace(digest, cost);
    if (!inserted) {
      it->second =
          opts_.ewma_alpha * cost + (1.0 - opts_.ewma_alpha) * it->second;
    }
    total_log_cost_ += std::log1p(cost);
    ++samples_;
    ++absorbed;
    double solo = e.latency_us > 0.0 ? e.latency_us
                                     : static_cast<double>(e.work) + 1.0;
    latency_sum += solo;
    ++latency_n;
  }
  monitor::FitFromQueryLog(&predictor_, entries, /*mix_size=*/3);
  if (latency_n > 0) {
    warm_latency_scale_ = latency_sum / static_cast<double>(latency_n);
    predictor_warm_ = true;
  }
  return absorbed;
}

}  // namespace aidb::server
