#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/database.h"
#include "server/prepared.h"

namespace aidb::server {

/// \brief One client connection's isolated execution context.
///
/// A session owns a private copy of the planner knobs (dop, index usage,
/// cardinality feedback, ...), a private prepared-statement namespace and a
/// statement timeout. Changing a session knob NEVER mutates Database-global
/// state: the service snapshots the session's settings into an ExecSettings
/// at admission, so a knob change mid-flight affects only later statements.
class Session {
 public:
  Session(uint64_t id, ExecSettings base_settings);

  uint64_t id() const { return id_; }

  /// Snapshot of this session's settings for one statement. The cancel
  /// pointer is left null — the service wires the per-statement flag in.
  ExecSettings SnapshotSettings() const;

  // --- knobs (all session-local) --------------------------------------
  void set_dop(size_t dop);
  size_t dop() const;
  void set_vectorized(bool on);
  bool vectorized() const;
  void set_use_indexes(bool on);
  void set_use_card_feedback(bool on);
  /// 0 disables the per-statement deadline.
  void set_statement_timeout_ms(double ms);
  double statement_timeout_ms() const;

  PreparedStore* prepared() { return &prepared_; }

  /// Open transaction id (0 = autocommit). The service threads a pointer to
  /// this slot into every statement's ExecSettings, so BEGIN/COMMIT/ROLLBACK
  /// scope transactions to the session that issued them.
  std::atomic<uint64_t> txn{0};

  // --- accounting (written by the service) ----------------------------
  std::atomic<uint64_t> statements{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> queued{0};   ///< currently waiting for a worker
  std::atomic<uint64_t> running{0};  ///< currently executing
  std::atomic<bool> closed{false};

  /// "idle", "queued", "running", or "closed" — for the aidb_sessions view.
  std::string StateName() const;

 private:
  const uint64_t id_;
  mutable std::mutex mu_;
  ExecSettings settings_;  ///< planner knobs + session id (guarded)
  double statement_timeout_ms_ = 0.0;
  /// Internally synchronized, so handing out a non-const pointer from a
  /// const snapshot is safe.
  mutable PreparedStore prepared_;
};

/// \brief Registry of live sessions. Thread-safe; sessions are shared_ptr so
/// an in-flight statement keeps its session alive across a concurrent close.
class SessionManager {
 public:
  /// Opens a session whose knobs start from `base` (typically the database's
  /// current global defaults).
  std::shared_ptr<Session> Open(const ExecSettings& base);
  std::shared_ptr<Session> Get(uint64_t id) const;
  /// Marks the session closed and drops it from the registry. In-flight
  /// statements finish; new submissions are rejected by the service.
  Status Close(uint64_t id);
  std::vector<std::shared_ptr<Session>> List() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, std::shared_ptr<Session>> sessions_;
};

}  // namespace aidb::server
