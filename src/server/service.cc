#include "server/service.h"

#include <algorithm>
#include <cctype>
#include <vector>

#include "monitor/span.h"
#include "storage/schema.h"

namespace aidb::server {

namespace {

/// The n-th bare keyword of the statement (0-based), uppercased; empty when
/// the statement runs out of leading keywords first.
std::string KeywordAt(const std::string& sql, size_t n) {
  size_t i = 0;
  std::string word;
  for (size_t k = 0; k <= n; ++k) {
    word.clear();
    while (i < sql.size() &&
           std::isspace(static_cast<unsigned char>(sql[i]))) {
      ++i;
    }
    while (i < sql.size() &&
           std::isalpha(static_cast<unsigned char>(sql[i]))) {
      word.push_back(static_cast<char>(
          std::toupper(static_cast<unsigned char>(sql[i]))));
      ++i;
    }
    if (word.empty()) return word;
  }
  return word;
}

/// First bare keyword of the statement, uppercased.
std::string HeadKeyword(const std::string& sql) { return KeywordAt(sql, 0); }

bool MentionsSystemView(const std::string& sql) {
  std::string u(sql.size(), '\0');
  std::transform(sql.begin(), sql.end(), u.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return u.find("aidb_") != std::string::npos;
}

}  // namespace

Service::Service(Database* db, ServiceOptions opts)
    : db_(db), opts_(opts) {
  if (opts_.workers == 0) opts_.workers = 1;
  if (opts_.queue_capacity == 0) opts_.queue_capacity = 1;
  opts_.cheap_reserve = std::min(opts_.cheap_reserve, opts_.workers - 1);
  if (opts_.warm_classifier_from_log) {
    classifier_.WarmFromQueryLog(db_->query_log().Entries());
  }
  RegisterSessionsView();
  workers_.reserve(opts_.workers);
  for (size_t i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  reaper_ = std::thread([this] { ReaperLoop(); });
}

Service::~Service() {
  std::vector<std::shared_ptr<Job>> orphans;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
    for (auto& q : {&cheap_queue_, &heavy_queue_}) {
      for (auto& job : *q) orphans.push_back(std::move(job));
      q->clear();
    }
  }
  queue_cv_.notify_all();
  for (auto& job : orphans) {
    job->session->queued.fetch_sub(1, std::memory_order_relaxed);
    job->promise.set_value(Status::Cancelled("service shutting down"));
  }
  for (auto& w : workers_) w.join();
  if (reaper_.joinable()) reaper_.join();
  if (view_registered_) {
    Status st = db_->catalog().UnregisterSystemView("aidb_sessions");
    (void)st;
  }
}

void Service::RegisterSessionsView() {
  Schema schema({{"id", ValueType::kInt},
                 {"state", ValueType::kString},
                 {"queued", ValueType::kInt},
                 {"running", ValueType::kInt},
                 {"statements", ValueType::kInt},
                 {"errors", ValueType::kInt},
                 {"cache_hits", ValueType::kInt},
                 {"dop", ValueType::kInt},
                 {"vectorized", ValueType::kInt},
                 {"timeout_ms", ValueType::kDouble}});
  Status st = db_->catalog().RegisterSystemView(
      "aidb_sessions", std::move(schema),
      [this](const std::function<void(Tuple)>& emit) {
        auto all = sessions_.List();
        std::sort(all.begin(), all.end(),
                  [](const auto& a, const auto& b) { return a->id() < b->id(); });
        for (const auto& s : all) {
          emit({Value(static_cast<int64_t>(s->id())), Value(s->StateName()),
                Value(static_cast<int64_t>(
                    s->queued.load(std::memory_order_relaxed))),
                Value(static_cast<int64_t>(
                    s->running.load(std::memory_order_relaxed))),
                Value(static_cast<int64_t>(
                    s->statements.load(std::memory_order_relaxed))),
                Value(static_cast<int64_t>(
                    s->errors.load(std::memory_order_relaxed))),
                Value(static_cast<int64_t>(
                    s->cache_hits.load(std::memory_order_relaxed))),
                Value(static_cast<int64_t>(s->dop())),
                Value(static_cast<int64_t>(s->vectorized() ? 1 : 0)),
                Value(s->statement_timeout_ms())});
        }
      });
  view_registered_ = st.ok();
}

std::shared_ptr<Session> Service::OpenSession() {
  return sessions_.Open(db_->SnapshotSettings());
}

Status Service::CloseSession(uint64_t session_id) {
  return sessions_.Close(session_id);
}

std::future<Result<QueryResult>> Service::Submit(uint64_t session_id,
                                                 std::string sql) {
  auto job = std::make_shared<Job>();
  job->promise = std::promise<Result<QueryResult>>();
  std::future<Result<QueryResult>> fut = job->promise.get_future();

  job->session = sessions_.Get(session_id);
  if (!job->session || job->session->closed.load(std::memory_order_relaxed)) {
    job->promise.set_value(
        Status::NotFound("session " + std::to_string(session_id)));
    return fut;
  }

  job->sql = std::move(sql);
  job->facts = ExtractSqlFacts(job->sql);
  job->digest = SqlShapeDigest(job->sql);
  job->klass = opts_.classify ? classifier_.Classify(job->digest, job->facts)
                              : QueryClass::kCheap;
  job->enqueued = Clock::now();
  double timeout_ms = job->session->statement_timeout_ms();
  if (timeout_ms <= 0.0) timeout_ms = opts_.default_timeout_ms;
  if (timeout_ms > 0.0) {
    job->has_deadline = true;
    job->deadline = job->enqueued + std::chrono::microseconds(
                                        static_cast<int64_t>(timeout_ms * 1e3));
  } else {
    job->deadline = Clock::time_point::max();
  }
  job->cancel = std::make_shared<std::atomic<bool>>(false);
  if (db_->spans_enabled()) {
    // Admission mints the request's trace identity; every engine-side span
    // of this statement (parse/plan/operators/commit/wal_flush) hangs off
    // the root span recorded when the request finishes.
    job->trace_id = db_->spans().NextId();
    job->root_span = db_->spans().NextId();
    job->admitted_us = db_->spans().NowUs();
  }

  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      job->promise.set_value(Status::Cancelled("service shutting down"));
      return fut;
    }
    if (cheap_queue_.size() + heavy_queue_.size() >= opts_.queue_capacity) {
      shed_overloaded_.fetch_add(1, std::memory_order_relaxed);
      db_->metrics().GetCounter("service.shed_overloaded")->Add();
      RecordRequestSpan(*job, "shed_overloaded");
      job->promise.set_value(Status::Overloaded(
          "admission queue full (" + std::to_string(opts_.queue_capacity) +
          " queued); retry later"));
      return fut;
    }
    job->session->queued.fetch_add(1, std::memory_order_relaxed);
    (job->klass == QueryClass::kHeavy ? heavy_queue_ : cheap_queue_)
        .push_back(job);
  }
  if (job->has_deadline) {
    std::lock_guard<std::mutex> lock(reaper_mu_);
    deadlines_.push_back({job->cancel, job->deadline});
  }
  // notify_all, not notify_one: a single notify can land on a cheap-reserved
  // worker that refuses heavy-lane work; it would swallow the wakeup and the
  // job would sit queued with every general worker asleep.
  queue_cv_.notify_all();
  return fut;
}

Result<QueryResult> Service::Execute(uint64_t session_id,
                                     const std::string& sql) {
  return Submit(session_id, sql).get();
}

size_t Service::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return cheap_queue_.size() + heavy_queue_.size();
}

void Service::Drain() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  drain_cv_.wait(lock, [this] {
    return cheap_queue_.empty() && heavy_queue_.empty() && running_jobs_ == 0;
  });
}

bool Service::SharedEligible(const Job& job) const {
  // Tracing funnels every statement's trace through one shared buffer.
  if (db_->tracing_enabled()) return false;
  // System-view statements rebuild the view's backing table at refresh.
  if (MentionsSystemView(job.sql)) return false;
  std::string head = HeadKeyword(job.sql);
  if (head == "SELECT") return true;
  if (head == "PREPARE" || head == "DEALLOCATE") return true;  // store-local
  // DML and transaction control run concurrently with readers and with each
  // other: MVCC snapshots isolate readers, per-index latches cover index
  // maintenance, the WAL is thread-safe, and the engine's checkpoint fence
  // gives snapshots a consistent cut. Readers never block behind writers.
  if (head == "INSERT" || head == "UPDATE" || head == "DELETE") return true;
  if (head == "BEGIN" || head == "COMMIT" || head == "ROLLBACK") return true;
  if (head == "EXECUTE") {
    // Shared only when the template body is itself a plain SELECT. A missing
    // template is shared-safe too: it errors without touching engine state.
    // (Session store only: Submit-path statements never see the DB-global
    // fallback store.)
    auto tmpl = job.session->prepared()->Get(
        [&] {
          // EXECUTE <name> [...]: second keyword-ish token is the name.
          size_t i = 0;
          const std::string& s = job.sql;
          while (i < s.size() &&
                 std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
          }
          while (i < s.size() &&
                 std::isalpha(static_cast<unsigned char>(s[i]))) {
            ++i;
          }
          while (i < s.size() &&
                 std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
          }
          size_t start = i;
          while (i < s.size() &&
                 (std::isalnum(static_cast<unsigned char>(s[i])) ||
                  s[i] == '_')) {
            ++i;
          }
          return s.substr(start, i - start);
        }());
    if (!tmpl.ok()) return true;
    const sql::PrepareStatement& p = *tmpl.ValueOrDie();
    if (MentionsSystemView(p.body_text)) return false;
    switch (p.body->kind()) {
      case sql::StatementKind::kSelect: {
        const auto& sel = static_cast<const sql::SelectStatement&>(*p.body);
        return !sel.explain && !sel.explain_analyze;
      }
      case sql::StatementKind::kInsert:
      case sql::StatementKind::kUpdate:
      case sql::StatementKind::kDelete:
        return true;  // same footing as direct DML
      default:
        return false;  // DDL-class templates keep the exclusive lane
    }
  }
  if (head == "EXPLAIN") {
    // EXPLAIN ANALYZE executes the statement under tracing and funnels
    // per-operator timings through the shared trace buffer — exclusive
    // lane. Plain EXPLAIN returns the rendered plan before execution ever
    // starts (no trace writes, no engine state), so it is as shared-safe
    // as the SELECT it wraps; the second keyword tells them apart.
    return KeywordAt(job.sql, 1) != "ANALYZE";
  }
  return false;
}

void Service::WorkerLoop(size_t worker_index) {
  const bool cheap_only = worker_index < opts_.cheap_reserve;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] {
        if (stopping_) return true;
        if (!cheap_queue_.empty()) return true;
        return !cheap_only && !heavy_queue_.empty();
      });
      if (stopping_ && cheap_queue_.empty() &&
          (cheap_only || heavy_queue_.empty())) {
        return;
      }
      if (!cheap_queue_.empty() &&
          (cheap_only || heavy_queue_.empty() ||
           cheap_queue_.front()->enqueued <= heavy_queue_.front()->enqueued)) {
        job = std::move(cheap_queue_.front());
        cheap_queue_.pop_front();
      } else if (!cheap_only && !heavy_queue_.empty()) {
        job = std::move(heavy_queue_.front());
        heavy_queue_.pop_front();
      } else {
        continue;
      }
      ++running_jobs_;
    }
    job->session->queued.fetch_sub(1, std::memory_order_relaxed);
    job->session->running.fetch_add(1, std::memory_order_relaxed);

    RunJob(*job);

    job->session->running.fetch_sub(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --running_jobs_;
    }
    drain_cv_.notify_all();
    // More work may remain; notify_all for the same lane-affinity reason as
    // in Submit (a lone wakeup may hit a worker that refuses the lane).
    queue_cv_.notify_all();
  }
}

void Service::RunJob(Job& job) {
  Clock::time_point now = Clock::now();
  bool deadline_passed = job.has_deadline && now >= job.deadline;
  bool wait_exceeded =
      opts_.max_queue_wait_ms > 0.0 &&
      std::chrono::duration<double, std::milli>(now - job.enqueued).count() >
          opts_.max_queue_wait_ms;
  if (deadline_passed || wait_exceeded ||
      job.cancel->load(std::memory_order_relaxed)) {
    shed_timeout_.fetch_add(1, std::memory_order_relaxed);
    db_->metrics().GetCounter("service.shed_timeout")->Add();
    job.session->errors.fetch_add(1, std::memory_order_relaxed);
    RecordRequestSpan(job, "shed_timeout");
    job.promise.set_value(Status::Timeout(
        deadline_passed || job.cancel->load(std::memory_order_relaxed)
            ? "statement deadline exceeded while queued"
            : "queue wait bound exceeded"));
    return;
  }

  if (job.trace_id != 0) {
    monitor::Span qs;
    qs.trace_id = job.trace_id;
    qs.span_id = db_->spans().NextId();
    qs.parent_id = job.root_span;
    qs.name = "queue_wait";
    qs.session_id = job.session->id();
    qs.start_us = job.admitted_us;
    qs.dur_us = db_->spans().NowUs() - job.admitted_us;
    db_->spans().Record(std::move(qs));
  }

  ExecSettings settings = job.session->SnapshotSettings();
  settings.cancel = job.cancel.get();
  settings.txn_slot = &job.session->txn;
  settings.trace_id = job.trace_id;
  settings.parent_span = job.root_span;

  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    if (SharedEligible(job)) {
      std::shared_lock<std::shared_mutex> lock(db_mu_);
      return db_->Execute(job.sql, settings);
    }
    std::unique_lock<std::shared_mutex> lock(db_mu_);
    return db_->Execute(job.sql, settings);
  }();
  executed_.fetch_add(1, std::memory_order_relaxed);

  // A cancellation caused by the deadline surfaces as Timeout, so callers
  // can tell "too slow" from "explicitly cancelled".
  if (!result.ok() && result.status().code() == StatusCode::kCancelled &&
      job.has_deadline && Clock::now() >= job.deadline) {
    result = Status::Timeout(
        "statement deadline exceeded (cancelled at morsel boundary)");
    shed_timeout_.fetch_add(1, std::memory_order_relaxed);
    db_->metrics().GetCounter("service.shed_timeout")->Add();
  }

  job.session->statements.fetch_add(1, std::memory_order_relaxed);
  if (result.ok()) {
    const QueryResult& r = result.ValueOrDie();
    if (r.plan_cache_hit) {
      job.session->cache_hits.fetch_add(1, std::memory_order_relaxed);
    }
    // Only reads feed the cost model (writes are heavy-lane by kind, and
    // their zero operator work would skew the typical-cost estimate).
    if (job.facts.is_select) {
      classifier_.Record(job.digest, static_cast<double>(r.operator_work));
    }
  } else {
    job.session->errors.fetch_add(1, std::memory_order_relaxed);
  }
  RecordLaneLatency(job.klass, std::chrono::duration<double, std::milli>(
                                   Clock::now() - job.enqueued)
                                   .count());
  RecordRequestSpan(job, result.ok() ? "ok" : "error");
  job.promise.set_value(std::move(result));
}

void Service::RecordRequestSpan(const Job& job, const char* outcome) {
  if (job.trace_id == 0) return;
  monitor::Span s;
  s.trace_id = job.trace_id;
  s.span_id = job.root_span;
  s.parent_id = 0;
  s.name = "request";
  s.session_id = job.session ? job.session->id() : 0;
  s.start_us = job.admitted_us;
  s.dur_us = db_->spans().NowUs() - job.admitted_us;
  s.detail = std::string(job.klass == QueryClass::kHeavy ? "heavy" : "cheap") +
             ":" + outcome;
  db_->spans().Record(std::move(s));
}

void Service::RecordLaneLatency(QueryClass k, double ms) {
  const double target_ms = k == QueryClass::kHeavy ? opts_.heavy_p95_target_ms
                                                   : opts_.cheap_p95_target_ms;
  if (target_ms <= 0.0) return;  // lane untracked
  LaneSlo& lane = slo_[k == QueryClass::kHeavy ? 1 : 0];
  double p95_ms = 0.0;
  bool breaching = false;
  {
    std::lock_guard<std::mutex> lock(lane.mu);
    lane.window_ms.push_back(ms);
    while (lane.window_ms.size() > opts_.slo_window) lane.window_ms.pop_front();
    ++lane.records;
    // The p95 recompute is amortized (every 8th record after warm-up) so the
    // cheap lane's fast path doesn't pay an O(window) selection per
    // statement; the gauges lag by at most 8 statements.
    if (lane.records <= 8 || lane.records % 8 == 0) {
      std::vector<double> v(lane.window_ms.begin(), lane.window_ms.end());
      size_t idx = (v.size() * 95) / 100;
      if (idx >= v.size()) idx = v.size() - 1;
      std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(idx),
                       v.end());
      lane.p95_ms = v[idx];
      lane.breaching = lane.p95_ms > target_ms;
    }
    p95_ms = lane.p95_ms;
    breaching = lane.breaching;
  }
  const char* name = k == QueryClass::kHeavy ? "heavy" : "cheap";
  auto& m = db_->metrics();
  m.GetGauge(std::string("slo.") + name + ".p95_us")
      ->Set(static_cast<int64_t>(p95_ms * 1e3));
  m.GetGauge(std::string("slo.") + name + ".target_us")
      ->Set(static_cast<int64_t>(target_ms * 1e3));
  m.GetGauge(std::string("slo.") + name + ".breach")->Set(breaching ? 1 : 0);
  if (k == QueryClass::kCheap) classifier_.SetCheapLanePressure(breaching);
}

double Service::LaneP95Ms(QueryClass k) const {
  const LaneSlo& lane = slo_[k == QueryClass::kHeavy ? 1 : 0];
  std::lock_guard<std::mutex> lock(lane.mu);
  return lane.p95_ms;
}

bool Service::LaneBreaching(QueryClass k) const {
  const LaneSlo& lane = slo_[k == QueryClass::kHeavy ? 1 : 0];
  std::lock_guard<std::mutex> lock(lane.mu);
  return lane.breaching;
}

void Service::ReaperLoop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (stopping_) return;
    }
    {
      std::lock_guard<std::mutex> lock(reaper_mu_);
      Clock::time_point now = Clock::now();
      for (auto& entry : deadlines_) {
        if (now >= entry.deadline) {
          entry.cancel->store(true, std::memory_order_relaxed);
        }
      }
      // Drop entries nobody else references (job finished) or already fired.
      deadlines_.erase(
          std::remove_if(deadlines_.begin(), deadlines_.end(),
                         [](const DeadlineEntry& e) {
                           return e.cancel.use_count() == 1 ||
                                  e.cancel->load(std::memory_order_relaxed);
                         }),
          deadlines_.end());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace aidb::server
