#include "server/prepared.h"

#include <algorithm>

namespace aidb::server {

Status PreparedStore::Put(std::shared_ptr<const sql::PrepareStatement> stmt) {
  if (!stmt || stmt->name.empty()) {
    return Status::InvalidArgument("prepared statement needs a name");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = map_.emplace(stmt->name, std::move(stmt));
  if (!inserted) {
    return Status::AlreadyExists("prepared statement " + it->first +
                                 " (DEALLOCATE it first)");
  }
  return Status::OK();
}

Result<std::shared_ptr<const sql::PrepareStatement>> PreparedStore::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(name);
  if (it == map_.end()) return Status::NotFound("prepared statement " + name);
  return it->second;
}

Status PreparedStore::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.erase(name) == 0) {
    return Status::NotFound("prepared statement " + name);
  }
  return Status::OK();
}

std::vector<std::string> PreparedStore::Names() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(map_.size());
    for (const auto& [name, stmt] : map_) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t PreparedStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace aidb::server
