#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace aidb {

/// \brief Value-or-status holder, the return type for fallible producers.
///
/// Usage:
/// \code
///   Result<Plan> r = optimizer.Optimize(query);
///   if (!r.ok()) return r.status();
///   Plan plan = std::move(r).ValueOrDie();
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from non-OK status (failure). Passing an OK status is a bug.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value, or `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the unwrapped value of a `Result` expression to `lhs`, or
/// propagates its error status.
#define AIDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie();

#define AIDB_ASSIGN_OR_RETURN(lhs, expr) \
  AIDB_ASSIGN_OR_RETURN_IMPL(AIDB_CONCAT_(_res_, __LINE__), lhs, expr)

#define AIDB_CONCAT_(a, b) AIDB_CONCAT_IMPL_(a, b)
#define AIDB_CONCAT_IMPL_(a, b) a##b

}  // namespace aidb
