#include "common/thread_pool.h"

#include <atomic>

namespace aidb {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  std::atomic<size_t> next{0};
  size_t shards = std::min(n, workers_.size());
  for (size_t s = 0; s < shards; ++s) {
    Submit([&next, n, &fn] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
    });
  }
  Wait();
}

void TaskGroup::Spawn(std::function<void()> fn) {
  if (pool_ == nullptr) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    fn();
    // Notify while holding the lock: the waiter cannot wake (and destroy
    // *this) until this scope releases mu_, after notify_all returns.
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace aidb
