#include "common/thread_pool.h"

#include <atomic>

namespace aidb {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (tasks_metric_) tasks_metric_->Add();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (parallel_fors_metric_) parallel_fors_metric_->Add();
  // Completion is tracked per call, never via the pool-global in_flight_
  // counter: waiting on Wait() here would block on unrelated tasks from
  // concurrent callers, and a nested call from a worker thread would wait
  // for itself (the worker is an in-flight task) and deadlock.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    std::function<void(size_t)> fn;
    size_t n = 0;
  };
  auto state = std::make_shared<State>();
  state->fn = fn;  // copied: helpers may outlive the caller's frame
  state->n = n;
  auto run = [](const std::shared_ptr<State>& s) {
    size_t finished = 0;
    for (size_t i = s->next.fetch_add(1); i < s->n; i = s->next.fetch_add(1)) {
      s->fn(i);
      ++finished;
    }
    if (finished != 0 && s->done.fetch_add(finished) + finished == s->n) {
      // Lock before notify so the waiter can't check the predicate, miss the
      // signal, and sleep forever between our fetch_add and notify.
      std::lock_guard<std::mutex> lock(s->mu);
      s->cv.notify_all();
    }
  };
  // The caller claims indexes too, so helpers that never get scheduled (pool
  // saturated, or this is a worker thread) are harmless stragglers rather
  // than required participants.
  size_t helpers = std::min(n - 1, workers_.size());
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state, run] { run(state); });
  }
  run(state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done.load() == state->n; });
}

void TaskGroup::Spawn(std::function<void()> fn) {
  if (pool_ == nullptr) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    fn();
    // Notify while holding the lock: the waiter cannot wake (and destroy
    // *this) until this scope releases mu_, after notify_all returns.
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace aidb
