#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace aidb {

/// \brief Streaming mean/variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Sample container with quantile queries; used for latency and
/// q-error distributions in the benchmark harness.
class Samples {
 public:
  void Add(double x) {
    data_.push_back(x);
    sorted_ = false;
  }

  size_t count() const { return data_.size(); }

  double Mean() const {
    if (data_.empty()) return 0.0;
    double s = 0.0;
    for (double x : data_) s += x;
    return s / static_cast<double>(data_.size());
  }

  /// Quantile in [0,1] with linear interpolation. Returns 0 when empty.
  double Quantile(double q) {
    if (data_.empty()) return 0.0;
    EnsureSorted();
    double pos = q * static_cast<double>(data_.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, data_.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return data_[lo] * (1.0 - frac) + data_[hi] * frac;
  }

  double Median() { return Quantile(0.5); }
  double Max() { return data_.empty() ? 0.0 : (EnsureSorted(), data_.back()); }
  double Min() { return data_.empty() ? 0.0 : (EnsureSorted(), data_.front()); }

  const std::vector<double>& data() const { return data_; }

 private:
  void EnsureSorted() {
    if (!sorted_) {
      std::sort(data_.begin(), data_.end());
      sorted_ = true;
    }
  }

  std::vector<double> data_;
  bool sorted_ = false;
};

/// Q-error between a cardinality estimate and the truth: max(est/true,
/// true/est) with both clamped to >= 1 (the standard learned-cardinality
/// metric).
inline double QError(double estimate, double truth) {
  double e = std::max(estimate, 1.0);
  double t = std::max(truth, 1.0);
  return std::max(e / t, t / e);
}

}  // namespace aidb
