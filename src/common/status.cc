#include "common/status.h"

namespace aidb {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kNotImplemented: return "NotImplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kPermissionDenied: return "PermissionDenied";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kOverloaded: return "Overloaded";
    case StatusCode::kTimeout: return "Timeout";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace aidb
