#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace aidb {

/// \brief Deterministic, fast PRNG (xorshift128+) used everywhere the engine
/// needs randomness, so experiments are reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    // SplitMix64 seeding to avoid poor states from small seeds.
    uint64_t z = seed + 0x9E3779B97F4A7C15ULL;
    auto next = [&z]() {
      z += 0x9E3779B97F4A7C15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
      return x ^ (x >> 31);
    };
    s_[0] = next();
    s_[1] = next();
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box–Muller.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  /// Bernoulli trial with probability p of true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

 private:
  uint64_t s_[2];
};

/// \brief Zipfian sampler over {0, ..., n-1} with exponent `theta`.
///
/// Uses the precomputed-CDF method; O(n) setup, O(log n) sample. Skewed key
/// and access distributions in workload generators all come from here.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  /// Draws one rank (0 is the hottest item).
  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace aidb
