#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "monitor/metrics.h"

namespace aidb {

/// \brief Fixed-size worker pool used by parallel model training and
/// model-selection search (the DB4AI "hardware acceleration" substrate).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Meters Submit (pool.tasks) and ParallelFor (pool.parallel_fors) into the
  /// engine registry; null (the default) disables. Pointers are cached, so
  /// the registry must outlive the pool.
  void set_metrics(monitor::MetricsRegistry* metrics) {
    tasks_metric_ = metrics ? metrics->GetCounter("pool.tasks") : nullptr;
    parallel_fors_metric_ =
        metrics ? metrics->GetCounter("pool.parallel_fors") : nullptr;
  }

  /// Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  /// Completion is scoped to this call (not the pool-global queue), so
  /// concurrent ParallelFor calls don't block on each other's tasks, and a
  /// nested call from inside a worker task is safe: the calling thread
  /// participates in the index claim loop, so progress never depends on a
  /// free worker.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool stop_ = false;
  monitor::Counter* tasks_metric_ = nullptr;
  monitor::Counter* parallel_fors_metric_ = nullptr;
};

/// \brief Completion tracking for one batch of tasks on a shared ThreadPool.
///
/// ThreadPool::Wait() drains *every* queued task, so two concurrent queries
/// sharing the executor pool would block on each other's work. A TaskGroup
/// waits only on its own spawns. Built with a null pool it runs each task
/// inline on the calling thread, which is the serial fallback the parallel
/// operators rely on when no pool is configured.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules fn on the pool (inline when the pool is null). Tasks must not
  /// throw.
  void Spawn(std::function<void()> fn);

  /// Blocks until every spawned task has finished.
  void Wait();

 private:
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;
};

}  // namespace aidb
