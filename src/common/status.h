#pragma once

#include <string>
#include <utility>

namespace aidb {

/// Error categories used across the engine. Mirrors the coarse-grained
/// code sets of Arrow/RocksDB style status objects.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kInternal,
  kAborted,        ///< e.g. transaction aborted by deadlock avoidance
  kPermissionDenied,
  kParseError,
  kCancelled,   ///< query cancelled at a morsel/row boundary
  kOverloaded,  ///< shed by admission control (queue full) — retry later
  kTimeout,     ///< statement deadline exceeded (queue wait + execution)
};

/// \brief Lightweight status object for fallible operations.
///
/// The engine does not throw exceptions across public API boundaries;
/// every operation that can fail returns `Status` (or `Result<T>`).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad knob".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Propagates a non-OK status to the caller (RocksDB/Arrow idiom).
#define AIDB_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::aidb::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

}  // namespace aidb
