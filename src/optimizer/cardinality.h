#pragma once

#include <string>

#include "catalog/catalog.h"
#include "sql/ast.h"

namespace aidb {

/// \brief Interface for selectivity estimation. The classical implementation
/// uses per-column histograms with the attribute-value-independence (AVI)
/// assumption; the learned implementation (learned/cardinality) regresses on
/// query features. Both plug into the same optimizer.
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  /// Selectivity in [0,1] of a single-relation predicate conjunct over
  /// `table` (catalog name). `pred` is of the form col op literal (or a
  /// boolean combination thereof).
  virtual double PredicateSelectivity(const std::string& table,
                                      const sql::Expr& pred) const = 0;

  /// Selectivity of the equi-join table_a.col_a = table_b.col_b.
  virtual double JoinSelectivity(const std::string& table_a,
                                 const std::string& col_a,
                                 const std::string& table_b,
                                 const std::string& col_b) const = 0;

  /// Joint selectivity of a set of single-relation conjuncts. The default
  /// multiplies per-conjunct selectivities (the AVI assumption); learned
  /// estimators override this to capture cross-column correlation — which is
  /// precisely where the survey says deep models win.
  virtual double ConjunctionSelectivity(
      const std::string& table, const std::vector<const sql::Expr*>& conjuncts) const {
    double sel = 1.0;
    for (const sql::Expr* c : conjuncts) sel *= PredicateSelectivity(table, *c);
    return sel;
  }

  virtual std::string name() const = 0;
};

/// \brief Textbook estimator: equi-depth histograms per column, independence
/// across predicates, 1/max(ndv) for joins. This is the baseline the learned
/// estimator is measured against in E6.
class HistogramEstimator : public CardinalityEstimator {
 public:
  explicit HistogramEstimator(const Catalog* catalog) : catalog_(catalog) {}

  double PredicateSelectivity(const std::string& table,
                              const sql::Expr& pred) const override;
  double JoinSelectivity(const std::string& table_a, const std::string& col_a,
                         const std::string& table_b,
                         const std::string& col_b) const override;
  std::string name() const override { return "histogram"; }

 private:
  const Catalog* catalog_;
};

/// Default selectivities used when statistics are missing (classic System R
/// magic constants).
struct DefaultSelectivity {
  static constexpr double kEquality = 0.005;
  static constexpr double kRange = 0.33;
  static constexpr double kJoin = 0.1;
};

}  // namespace aidb
