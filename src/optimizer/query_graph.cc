#include "optimizer/query_graph.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace aidb {

std::string JoinPlan::ToString(const QueryGraph& g) const {
  if (IsLeaf()) return g.rels[static_cast<size_t>(rel)].name;
  return "(" + left->ToString(g) + " ⋈ " + right->ToString(g) + ")";
}

double JoinCostModel::JoinRows(uint64_t mask_a, uint64_t mask_b, double rows_a,
                               double rows_b) const {
  double sel = 1.0;
  bool crossed = false;
  for (const auto& e : graph_->edges) {
    uint64_t l = 1ULL << e.left_rel, r = 1ULL << e.right_rel;
    bool crosses = ((mask_a & l) && (mask_b & r)) || ((mask_a & r) && (mask_b & l));
    if (crosses) {
      sel *= e.selectivity;
      crossed = true;
    }
  }
  double rows = rows_a * rows_b * (crossed ? sel : 1.0);
  return std::max(rows, 1.0);
}

bool JoinCostModel::Connected(uint64_t mask_a, uint64_t mask_b) const {
  for (const auto& e : graph_->edges) {
    uint64_t l = 1ULL << e.left_rel, r = 1ULL << e.right_rel;
    if (((mask_a & l) && (mask_b & r)) || ((mask_a & r) && (mask_b & l))) return true;
  }
  return false;
}

std::unique_ptr<JoinPlan> JoinCostModel::MakeLeaf(size_t rel) const {
  auto p = std::make_unique<JoinPlan>();
  p->rel = static_cast<int>(rel);
  p->mask = 1ULL << rel;
  p->rows = LeafRows(rel);
  p->cost = 0.0;  // scans are charged uniformly; C_out counts joins only
  return p;
}

std::unique_ptr<JoinPlan> JoinCostModel::MakeJoin(std::unique_ptr<JoinPlan> a,
                                                  std::unique_ptr<JoinPlan> b) const {
  auto p = std::make_unique<JoinPlan>();
  p->mask = a->mask | b->mask;
  p->rows = JoinRows(a->mask, b->mask, a->rows, b->rows);
  p->cost = a->cost + b->cost + p->rows;
  p->left = std::move(a);
  p->right = std::move(b);
  return p;
}

namespace {

/// Deep copy (DP memo keeps owning plans).
std::unique_ptr<JoinPlan> Clone(const JoinPlan& p) {
  auto out = std::make_unique<JoinPlan>();
  out->rel = p.rel;
  out->mask = p.mask;
  out->rows = p.rows;
  out->cost = p.cost;
  if (p.left) out->left = Clone(*p.left);
  if (p.right) out->right = Clone(*p.right);
  return out;
}

}  // namespace

std::unique_ptr<JoinPlan> DpJoinEnumerator::Enumerate(const JoinCostModel& model) {
  const QueryGraph& g = model.graph();
  size_t n = g.rels.size();
  if (n == 0) return nullptr;
  std::unordered_map<uint64_t, std::unique_ptr<JoinPlan>> best;
  for (size_t i = 0; i < n; ++i) best[1ULL << i] = model.MakeLeaf(i);

  uint64_t all = g.AllMask();
  // Enumerate subsets in increasing popcount order via plain iteration:
  // any subset's proper sub-splits are smaller numbers, so iterate masks
  // ascending and split each into (sub, mask^sub).
  for (uint64_t mask = 1; mask <= all; ++mask) {
    if ((mask & all) != mask) continue;
    if ((mask & (mask - 1)) == 0) continue;  // singleton handled
    std::unique_ptr<JoinPlan> best_plan;
    // First pass considers only connected splits; a second pass permits
    // cross products when the subgraph is disconnected.
    for (bool allow_cross : {false, true}) {
      for (uint64_t sub = (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask) {
        uint64_t rest = mask ^ sub;
        if (sub > rest) continue;  // symmetric split: visit once
        auto li = best.find(sub);
        auto ri = best.find(rest);
        if (li == best.end() || ri == best.end()) continue;
        if (!allow_cross && !model.Connected(sub, rest)) continue;
        auto joined = model.MakeJoin(Clone(*li->second), Clone(*ri->second));
        if (!best_plan || joined->cost < best_plan->cost) best_plan = std::move(joined);
      }
      if (best_plan) break;
    }
    if (best_plan) best[mask] = std::move(best_plan);
  }
  auto it = best.find(all);
  if (it == best.end()) {
    // Disconnected graph: fall back to greedy (handles cross products).
    GreedyJoinEnumerator greedy;
    return greedy.Enumerate(model);
  }
  return std::move(it->second);
}

std::unique_ptr<JoinPlan> GreedyJoinEnumerator::Enumerate(const JoinCostModel& model) {
  const QueryGraph& g = model.graph();
  size_t n = g.rels.size();
  if (n == 0) return nullptr;
  std::vector<std::unique_ptr<JoinPlan>> parts;
  parts.reserve(n);
  for (size_t i = 0; i < n; ++i) parts.push_back(model.MakeLeaf(i));

  while (parts.size() > 1) {
    double best_rows = std::numeric_limits<double>::max();
    size_t bi = 0, bj = 1;
    bool found_connected = false;
    for (size_t i = 0; i < parts.size(); ++i) {
      for (size_t j = i + 1; j < parts.size(); ++j) {
        bool conn = model.Connected(parts[i]->mask, parts[j]->mask);
        if (found_connected && !conn) continue;
        double rows =
            model.JoinRows(parts[i]->mask, parts[j]->mask, parts[i]->rows, parts[j]->rows);
        if ((conn && !found_connected) || rows < best_rows) {
          best_rows = rows;
          bi = i;
          bj = j;
          found_connected = found_connected || conn;
        }
      }
    }
    auto joined = model.MakeJoin(std::move(parts[bi]), std::move(parts[bj]));
    parts.erase(parts.begin() + static_cast<long>(bj));
    parts.erase(parts.begin() + static_cast<long>(bi));
    parts.push_back(std::move(joined));
  }
  return std::move(parts[0]);
}

}  // namespace aidb
