#include "optimizer/cardinality.h"

#include <algorithm>

namespace aidb {

namespace {

/// Extracts (column, op, literal) if pred is a simple comparison; supports
/// literal-on-left by flipping the operator.
struct SimplePred {
  std::string column;
  sql::OpType op;
  double literal;
};

bool ExtractSimple(const sql::Expr& pred, SimplePred* out) {
  using K = sql::Expr::Kind;
  if (pred.kind != K::kBinary) return false;
  const sql::Expr* col = nullptr;
  const sql::Expr* lit = nullptr;
  bool flipped = false;
  if (pred.lhs->kind == K::kColumnRef && pred.rhs->kind == K::kLiteral) {
    col = pred.lhs.get();
    lit = pred.rhs.get();
  } else if (pred.rhs->kind == K::kColumnRef && pred.lhs->kind == K::kLiteral) {
    col = pred.rhs.get();
    lit = pred.lhs.get();
    flipped = true;
  } else {
    return false;
  }
  if (lit->literal.is_null()) return false;
  sql::OpType op = pred.op;
  if (flipped) {
    switch (op) {
      case sql::OpType::kLt: op = sql::OpType::kGt; break;
      case sql::OpType::kLe: op = sql::OpType::kGe; break;
      case sql::OpType::kGt: op = sql::OpType::kLt; break;
      case sql::OpType::kGe: op = sql::OpType::kLe; break;
      default: break;
    }
  }
  out->column = col->column;
  out->op = op;
  out->literal = lit->literal.AsFeature();
  return true;
}

}  // namespace

double HistogramEstimator::PredicateSelectivity(const std::string& table,
                                                const sql::Expr& pred) const {
  using K = sql::Expr::Kind;
  if (pred.kind == K::kBinary && pred.op == sql::OpType::kAnd) {
    // AVI assumption: multiply conjunct selectivities.
    return PredicateSelectivity(table, *pred.lhs) *
           PredicateSelectivity(table, *pred.rhs);
  }
  if (pred.kind == K::kBinary && pred.op == sql::OpType::kOr) {
    double a = PredicateSelectivity(table, *pred.lhs);
    double b = PredicateSelectivity(table, *pred.rhs);
    return std::min(1.0, a + b - a * b);
  }
  if (pred.kind == K::kUnary && pred.op == sql::OpType::kNot) {
    return 1.0 - PredicateSelectivity(table, *pred.lhs);
  }
  SimplePred sp;
  if (!ExtractSimple(pred, &sp)) {
    return DefaultSelectivity::kRange;  // opaque predicate
  }
  const ColumnStats* stats = catalog_->GetStats(table, sp.column);
  if (stats == nullptr) {
    switch (sp.op) {
      case sql::OpType::kEq: return DefaultSelectivity::kEquality;
      case sql::OpType::kNe: return 1.0 - DefaultSelectivity::kEquality;
      default: return DefaultSelectivity::kRange;
    }
  }
  const Histogram& h = stats->histogram;
  switch (sp.op) {
    case sql::OpType::kEq: return h.EstimateEq(sp.literal);
    case sql::OpType::kNe: return 1.0 - h.EstimateEq(sp.literal);
    case sql::OpType::kLt: return h.EstimateLt(sp.literal);
    case sql::OpType::kLe: return h.EstimateLe(sp.literal);
    case sql::OpType::kGt: return h.EstimateGt(sp.literal);
    case sql::OpType::kGe: return h.EstimateGe(sp.literal);
    default: return DefaultSelectivity::kRange;
  }
}

double HistogramEstimator::JoinSelectivity(const std::string& table_a,
                                           const std::string& col_a,
                                           const std::string& table_b,
                                           const std::string& col_b) const {
  const ColumnStats* sa = catalog_->GetStats(table_a, col_a);
  const ColumnStats* sb = catalog_->GetStats(table_b, col_b);
  if (sa == nullptr || sb == nullptr) return DefaultSelectivity::kJoin;
  size_t da = std::max<size_t>(1, sa->histogram.distinct_estimate());
  size_t db = std::max<size_t>(1, sb->histogram.distinct_estimate());
  return 1.0 / static_cast<double>(std::max(da, db));
}

}  // namespace aidb
