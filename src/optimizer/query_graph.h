#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sql/ast.h"

namespace aidb {

/// One base relation in a query, with its pushed-down local predicates.
struct RelationInfo {
  std::string table;  ///< catalog table name
  std::string name;   ///< effective (aliased) name used in the query
  double base_rows = 0.0;
  double local_selectivity = 1.0;  ///< combined selectivity of local predicates
  std::vector<const sql::Expr*> local_predicates;

  /// Column-pruning mask for vectorized scans (empty = materialize every
  /// column). Slot c is 1 iff table column c is referenced anywhere in the
  /// statement — select items (star marks all), WHERE, GROUP BY, HAVING,
  /// ORDER BY, join conditions. Unreferenced columns are carried as all-NULL
  /// placeholder columns, which is safe precisely because nothing downstream
  /// can read them: every expression, scalar error twin and join key lookup
  /// resolves to a referenced column, and rows only reach the result through
  /// those expressions. Over-approximating (marking too much) is always
  /// safe; the mask is a pure optimization.
  std::vector<uint8_t> used_columns;

  double EffectiveRows() const { return base_rows * local_selectivity; }
};

/// Equi-join edge between two relations.
struct JoinEdgeInfo {
  size_t left_rel = 0, right_rel = 0;  ///< indices into QueryGraph::rels
  std::string left_column, right_column;
  double selectivity = 0.1;
  const sql::Expr* condition = nullptr;
};

/// \brief Join-graph abstraction every join-order enumerator (classical DP,
/// greedy, RL, MCTS, Neo-lite) operates on.
struct QueryGraph {
  std::vector<RelationInfo> rels;
  std::vector<JoinEdgeInfo> edges;

  uint64_t AllMask() const { return (1ULL << rels.size()) - 1; }
};

/// \brief Binary join tree with estimated rows/cost annotations.
struct JoinPlan {
  int rel = -1;  ///< leaf: relation index; internal: -1
  std::unique_ptr<JoinPlan> left, right;
  uint64_t mask = 0;     ///< set of relations covered
  double rows = 0.0;     ///< estimated output cardinality
  double cost = 0.0;     ///< cumulative C_out cost

  bool IsLeaf() const { return rel >= 0; }
  std::string ToString(const QueryGraph& g) const;
};

/// \brief Cardinality/cost arithmetic over a QueryGraph (C_out model: a
/// plan's cost is the sum of all intermediate result sizes).
class JoinCostModel {
 public:
  explicit JoinCostModel(const QueryGraph* graph) : graph_(graph) {}

  double LeafRows(size_t rel) const { return graph_->rels[rel].EffectiveRows(); }

  /// Estimated output rows of joining plan sets A and B: |A| * |B| * product
  /// of the selectivities of every edge crossing the cut.
  double JoinRows(uint64_t mask_a, uint64_t mask_b, double rows_a,
                  double rows_b) const;

  /// True if at least one join edge crosses the cut (avoids cross products
  /// when the graph is connected).
  bool Connected(uint64_t mask_a, uint64_t mask_b) const;

  /// Builds a leaf plan node.
  std::unique_ptr<JoinPlan> MakeLeaf(size_t rel) const;
  /// Joins two plans, computing rows and C_out cost.
  std::unique_ptr<JoinPlan> MakeJoin(std::unique_ptr<JoinPlan> a,
                                     std::unique_ptr<JoinPlan> b) const;

  const QueryGraph& graph() const { return *graph_; }

 private:
  const QueryGraph* graph_;
};

/// \brief Strategy interface for join-order selection; implementations
/// include Selinger DP, greedy, RL (learned/joinorder) and MCTS.
class JoinOrderEnumerator {
 public:
  virtual ~JoinOrderEnumerator() = default;
  virtual std::unique_ptr<JoinPlan> Enumerate(const JoinCostModel& model) = 0;
  virtual std::string name() const = 0;
};

/// Selinger-style dynamic programming over connected subsets (bushy).
/// Optimal under the cost model; exponential in relation count.
class DpJoinEnumerator : public JoinOrderEnumerator {
 public:
  std::unique_ptr<JoinPlan> Enumerate(const JoinCostModel& model) override;
  std::string name() const override { return "dp"; }
};

/// Greedy min-intermediate-size enumerator (classic heuristic baseline).
class GreedyJoinEnumerator : public JoinOrderEnumerator {
 public:
  std::unique_ptr<JoinPlan> Enumerate(const JoinCostModel& model) override;
  std::string name() const override { return "greedy"; }
};

}  // namespace aidb
