#pragma once

#include <set>
#include <string>
#include <vector>

#include "exec/database.h"
#include "workload/generator.h"

namespace aidb::advisor {

/// A candidate secondary index.
struct IndexCandidate {
  std::string table;
  std::string column;

  bool operator==(const IndexCandidate& o) const {
    return table == o.table && column == o.column;
  }
};

/// \brief What-if cost model for index selection.
///
/// Extracts, per query and per table, the most selective indexable predicate
/// (col op literal over an INT column) using catalog histograms; a chosen
/// index on that column turns the full scan into an index scan of
/// rows * selectivity. The same model serves every advisor so comparisons
/// isolate the *search strategy* — which is the survey's point.
class IndexWhatIfModel {
 public:
  IndexWhatIfModel(const Database* db,
                   const std::vector<workload::GeneratedQuery>* queries);

  /// Candidate indexes mined from the workload's predicates.
  const std::vector<IndexCandidate>& candidates() const { return candidates_; }

  /// Estimated total workload scan cost (rows touched) with `chosen` indexes
  /// (indices into candidates()).
  double WorkloadCost(const std::set<size_t>& chosen) const;

  /// How often candidate i's column appears in predicates (for the frequency
  /// baseline).
  size_t PredicateFrequency(size_t candidate) const { return freq_[candidate]; }

 private:
  struct TableAccess {
    double full_rows;             ///< table cardinality
    std::vector<std::pair<size_t, double>> usable;  ///< (candidate, selectivity)
  };
  // Per query, per referenced table.
  std::vector<std::vector<TableAccess>> accesses_;
  std::vector<IndexCandidate> candidates_;
  std::vector<size_t> freq_;
};

/// \brief Strategy interface for index selection under a budget of k indexes.
class IndexAdvisor {
 public:
  virtual ~IndexAdvisor() = default;
  virtual std::set<size_t> Recommend(const IndexWhatIfModel& model,
                                     size_t budget) = 0;
  virtual std::string name() const = 0;
};

/// Picks the columns most frequently referenced in predicates (the naive
/// DBA rule of thumb).
class FrequencyIndexAdvisor : public IndexAdvisor {
 public:
  std::set<size_t> Recommend(const IndexWhatIfModel& model, size_t budget) override;
  std::string name() const override { return "frequency"; }
};

/// Classic greedy what-if advisor: repeatedly adds the index with the
/// largest marginal cost reduction.
class GreedyIndexAdvisor : public IndexAdvisor {
 public:
  std::set<size_t> Recommend(const IndexWhatIfModel& model, size_t budget) override;
  std::string name() const override { return "greedy_whatif"; }
};

/// Exact optimum by exhaustive enumeration (small candidate sets only).
class ExhaustiveIndexAdvisor : public IndexAdvisor {
 public:
  std::set<size_t> Recommend(const IndexWhatIfModel& model, size_t budget) override;
  std::string name() const override { return "exhaustive"; }
};

/// \brief Sadri-style RL index advisor: MDP whose state is the chosen index
/// set, actions add one candidate, episode reward is the negative workload
/// cost. Q-learning with episode restarts.
class RlIndexAdvisor : public IndexAdvisor {
 public:
  struct Options {
    size_t episodes = 400;
    uint64_t seed = 42;
  };
  RlIndexAdvisor() : RlIndexAdvisor(Options()) {}
  explicit RlIndexAdvisor(const Options& opts) : opts_(opts) {}

  std::set<size_t> Recommend(const IndexWhatIfModel& model, size_t budget) override;
  std::string name() const override { return "rl_mdp"; }

 private:
  Options opts_;
};

}  // namespace aidb::advisor
