#include "advisor/index/index_advisor.h"

#include <algorithm>
#include <limits>

#include "exec/planner.h"
#include "ml/qlearning.h"
#include "optimizer/cardinality.h"

namespace aidb::advisor {

IndexWhatIfModel::IndexWhatIfModel(
    const Database* db, const std::vector<workload::GeneratedQuery>* queries) {
  HistogramEstimator est(&db->catalog());

  auto candidate_id = [&](const std::string& table,
                          const std::string& column) -> size_t {
    IndexCandidate c{table, column};
    for (size_t i = 0; i < candidates_.size(); ++i) {
      if (candidates_[i] == c) return i;
    }
    candidates_.push_back(c);
    freq_.push_back(0);
    return candidates_.size() - 1;
  };

  for (const auto& gq : *queries) {
    std::vector<TableAccess> per_table;
    // Map effective name -> catalog table for this query.
    std::vector<std::pair<std::string, std::string>> rels;  // (eff, table)
    for (const auto& f : gq.stmt->from) rels.emplace_back(f.EffectiveName(), f.table);
    for (const auto& j : gq.stmt->joins)
      rels.emplace_back(j.table.EffectiveName(), j.table.table);

    std::vector<const sql::Expr*> conjuncts;
    exec::SplitConjuncts(gq.stmt->where.get(), &conjuncts);

    for (const auto& [eff, table] : rels) {
      auto table_res = db->catalog().GetTable(table);
      if (!table_res.ok()) continue;
      const Table* t = table_res.ValueOrDie();
      TableAccess access;
      access.full_rows = static_cast<double>(t->NumRows());
      for (const sql::Expr* c : conjuncts) {
        // Indexable: col op literal where col belongs to this relation and is
        // an INT column.
        if (c->kind != sql::Expr::Kind::kBinary) continue;
        const sql::Expr* colref = nullptr;
        if (c->lhs->kind == sql::Expr::Kind::kColumnRef &&
            c->rhs->kind == sql::Expr::Kind::kLiteral) {
          colref = c->lhs.get();
        } else if (c->rhs->kind == sql::Expr::Kind::kColumnRef &&
                   c->lhs->kind == sql::Expr::Kind::kLiteral) {
          colref = c->rhs.get();
        } else {
          continue;
        }
        if (!colref->table.empty() && colref->table != eff) continue;
        int ci = t->schema().IndexOf(colref->column);
        if (ci < 0) continue;
        if (colref->table.empty()) {
          // Unqualified: only attribute if unique across relations; the
          // generator always qualifies, so skip ambiguity handling.
        }
        if (t->schema().column(static_cast<size_t>(ci)).type != ValueType::kInt)
          continue;
        double sel = est.PredicateSelectivity(table, *c);
        size_t cid = candidate_id(table, colref->column);
        ++freq_[cid];
        access.usable.emplace_back(cid, sel);
      }
      per_table.push_back(std::move(access));
    }
    accesses_.push_back(std::move(per_table));
  }
}

double IndexWhatIfModel::WorkloadCost(const std::set<size_t>& chosen) const {
  double total = 0.0;
  for (const auto& per_table : accesses_) {
    for (const auto& access : per_table) {
      double best = access.full_rows;  // seq scan
      for (const auto& [cid, sel] : access.usable) {
        if (chosen.count(cid)) {
          // Index scan: rows*sel plus a per-probe overhead factor.
          best = std::min(best, access.full_rows * sel + 10.0);
        }
      }
      total += best;
    }
  }
  // Maintenance charge per chosen index (writes, space).
  total += 50.0 * static_cast<double>(chosen.size());
  return total;
}

std::set<size_t> FrequencyIndexAdvisor::Recommend(const IndexWhatIfModel& model,
                                                  size_t budget) {
  std::vector<std::pair<size_t, size_t>> by_freq;  // (freq, candidate)
  for (size_t i = 0; i < model.candidates().size(); ++i)
    by_freq.emplace_back(model.PredicateFrequency(i), i);
  std::sort(by_freq.rbegin(), by_freq.rend());
  std::set<size_t> chosen;
  for (size_t i = 0; i < by_freq.size() && chosen.size() < budget; ++i)
    chosen.insert(by_freq[i].second);
  return chosen;
}

std::set<size_t> GreedyIndexAdvisor::Recommend(const IndexWhatIfModel& model,
                                               size_t budget) {
  std::set<size_t> chosen;
  double cur_cost = model.WorkloadCost(chosen);
  while (chosen.size() < budget) {
    double best_cost = cur_cost;
    int best = -1;
    for (size_t i = 0; i < model.candidates().size(); ++i) {
      if (chosen.count(i)) continue;
      auto trial = chosen;
      trial.insert(i);
      double cost = model.WorkloadCost(trial);
      if (cost < best_cost) {
        best_cost = cost;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;  // no improving index
    chosen.insert(static_cast<size_t>(best));
    cur_cost = best_cost;
  }
  return chosen;
}

std::set<size_t> ExhaustiveIndexAdvisor::Recommend(const IndexWhatIfModel& model,
                                                   size_t budget) {
  size_t n = model.candidates().size();
  std::set<size_t> best;
  double best_cost = model.WorkloadCost(best);
  // Enumerate all subsets up to `budget` (n is small in experiments).
  for (uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    if (static_cast<size_t>(__builtin_popcountll(mask)) > budget) continue;
    std::set<size_t> s;
    for (size_t i = 0; i < n; ++i)
      if (mask & (1ULL << i)) s.insert(i);
    double cost = model.WorkloadCost(s);
    if (cost < best_cost) {
      best_cost = cost;
      best = std::move(s);
    }
  }
  return best;
}

std::set<size_t> RlIndexAdvisor::Recommend(const IndexWhatIfModel& model,
                                           size_t budget) {
  size_t n = model.candidates().size();
  if (n == 0) return {};
  // Actions: add candidate i, or stop (action n).
  ml::QLearner::Options qopts;
  qopts.epsilon = 0.4;
  qopts.epsilon_decay = 0.995;
  qopts.alpha = 0.3;
  qopts.seed = opts_.seed;
  ml::QLearner q(n + 1, qopts);

  double base_cost = model.WorkloadCost({});
  std::set<size_t> best;
  double best_cost = base_cost;

  auto state_of = [](uint64_t mask) { return ml::HashCombine(0xfeed, mask); };

  for (size_t ep = 0; ep < opts_.episodes; ++ep) {
    std::set<size_t> chosen;
    uint64_t mask = 0;
    double prev_cost = base_cost;
    for (size_t step = 0; step <= budget; ++step) {
      uint64_t state = state_of(mask);
      size_t action = q.SelectAction(state);
      if (action == n || chosen.size() >= budget) {
        q.Update(state, action, 0.0, state, /*terminal=*/true);
        break;
      }
      if (chosen.count(action)) {
        // Re-adding is wasted; small penalty, stay in place.
        q.Update(state, action, -0.05, state);
        continue;
      }
      chosen.insert(action);
      uint64_t next_mask = mask | (1ULL << action);
      double cost = model.WorkloadCost(chosen);
      // Reward: normalized marginal cost reduction.
      double reward = (prev_cost - cost) / std::max(base_cost, 1.0);
      q.Update(state, action, reward, state_of(next_mask),
               chosen.size() >= budget);
      mask = next_mask;
      prev_cost = cost;
      if (cost < best_cost) {
        best_cost = cost;
        best = chosen;
      }
    }
    q.EndEpisode();
  }
  return best;
}

}  // namespace aidb::advisor
