#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace aidb::advisor {

/// Number of tunable knobs in the simulated engine.
inline constexpr size_t kNumKnobs = 9;

/// A configuration: each knob normalized to [0, 1].
using KnobConfig = std::array<double, kNumKnobs>;

/// Knob identities (modeled on documented PostgreSQL semantics, plus the
/// engine's own morsel-parallelism knob).
enum KnobId : size_t {
  kBufferPool = 0,      ///< shared_buffers: hit-rate saturation + swap cliff
  kWorkMem = 1,         ///< work_mem: sort/hash spill cliff, per-connection
  kMaxConnections = 2,  ///< admission: throughput then thrashing
  kIoConcurrency = 3,   ///< effective_io_concurrency
  kWalSync = 4,         ///< synchronous_commit (continuous relaxation)
  kCheckpointInterval = 5,
  kVacuumAggressiveness = 6,
  kParallelWorkers = 7,
  kExecDop = 8,  ///< morsel-driven executor degree of parallelism
};

const char* KnobName(size_t knob);

/// Maps the normalized `exec_dop` knob to the concrete Database::SetDop
/// value in [1, max_dop] — the bridge between tuner output and the engine's
/// session knob.
size_t DopFromKnob(double normalized, size_t max_dop = 8);

/// Maps the normalized `wal_sync` knob to the concrete group-commit interval
/// Database::SetWalFlushInterval takes: log-scale over [1, 1024] with 1.0
/// (fully synchronous commit) -> 1 record and 0.0 -> 1024 records. Inverse
/// orientation matches the simulated surface, where wal_sync = 1 is the
/// safest/slowest setting.
size_t WalFlushIntervalFromKnob(double normalized);

/// Maps the normalized `checkpoint_interval` knob to a concrete
/// `checkpoint_every_n_records` value: log-scale over [16, 4096] WAL records
/// (never 0 — the tuner may not disable checkpointing entirely).
size_t CheckpointEveryNFromKnob(double normalized);

/// Maps the normalized `parallel_workers` knob to the server::Service worker
/// count in [1, max_workers] — the bridge between the tuner and the serving
/// layer's inter-query concurrency (distinct from the intra-query morsel
/// dop, which kExecDop drives).
size_t ServiceWorkersFromKnob(double normalized, size_t max_workers = 16);

/// Maps the normalized `max_connections` knob to the server::Service
/// admission-queue capacity: log-scale over [8, 512] queued statements, so
/// the tuner trades shed rate against queueing latency the way a real
/// max_connections knob trades rejects against thrashing.
size_t AdmissionQueueFromKnob(double normalized);

/// Maps the normalized `buffer_pool` knob to the engine query-log ring
/// capacity: log-scale over [64, 8192] entries. The log is the memory the
/// self-monitoring layer charges against the shared buffer budget, so a
/// bigger pool buys deeper diagnosis history.
size_t QueryLogCapacityFromKnob(double normalized);

/// Maps the normalized `vacuum` (background-maintenance aggressiveness) knob
/// to the KPI sampler interval: log-scale over [10ms, 1000ms], with 1.0 (most
/// aggressive housekeeping) -> 10ms and 0.0 -> 1s.
double KpiSampleIntervalMsFromKnob(double normalized);

/// Workload mix the environment responds to.
struct WorkloadProfile {
  double read_fraction = 0.5;      ///< reads vs writes
  double analytic_fraction = 0.2;  ///< big scans/sorts vs point ops
  double concurrency_demand = 0.5; ///< offered parallel clients (normalized)
  std::string name = "hybrid";

  static WorkloadProfile Oltp();
  static WorkloadProfile Olap();
  static WorkloadProfile Hybrid();
};

/// \brief Analytic knob-response surface standing in for a real DBMS.
///
/// Substitution (see DESIGN.md): knob tuners treat the DBMS as a black box
/// `config -> throughput`; this surface reproduces the qualitative features
/// that make tuning hard — interactions (work_mem x connections memory
/// overcommit), saturation (buffer pool), cliffs (spills, thrashing) and
/// workload dependence — with optional measurement noise.
class KnobEnvironment {
 public:
  explicit KnobEnvironment(const WorkloadProfile& workload, double noise = 0.0,
                           uint64_t seed = 42)
      : workload_(workload), noise_(noise), rng_(seed) {}
  virtual ~KnobEnvironment() = default;

  /// Measured throughput (higher is better). Counts one evaluation.
  virtual double Evaluate(const KnobConfig& config);

  /// Noise-free surface value (for regret computation in benchmarks).
  virtual double TrueThroughput(const KnobConfig& config) const;

  /// Default (shipped) configuration.
  static KnobConfig DefaultConfig();

  size_t evaluations() const { return evaluations_; }
  void ResetCounter() { evaluations_ = 0; }
  const WorkloadProfile& workload() const { return workload_; }

  /// Best throughput found by dense random probing (approximate optimum for
  /// normalizing experiment results).
  double ApproxOptimum(size_t probes = 20000, uint64_t seed = 7) const;

 private:
  WorkloadProfile workload_;
  double noise_;
  Rng rng_;
  size_t evaluations_ = 0;
};

}  // namespace aidb::advisor
