#include "advisor/knob/knob_tuner.h"

#include <algorithm>

namespace aidb::advisor {

namespace {

void Record(TuningResult* r, const KnobConfig& c, double perf) {
  ++r->evaluations;
  if (perf > r->best_throughput) {
    r->best_throughput = perf;
    r->best_config = c;
  }
  r->trajectory.push_back(r->best_throughput);
}

KnobConfig LevelsToConfig(const std::array<size_t, kNumKnobs>& levels, size_t grid) {
  KnobConfig c;
  for (size_t i = 0; i < kNumKnobs; ++i) {
    c[i] = grid > 1 ? static_cast<double>(levels[i]) / static_cast<double>(grid - 1)
                    : 0.5;
  }
  return c;
}

}  // namespace

TuningResult DefaultConfigTuner::Tune(KnobEnvironment* env, size_t budget) {
  TuningResult r;
  KnobConfig c = KnobEnvironment::DefaultConfig();
  for (size_t i = 0; i < std::max<size_t>(budget, 1); ++i) {
    Record(&r, c, env->Evaluate(c));
  }
  return r;
}

TuningResult RandomSearchTuner::Tune(KnobEnvironment* env, size_t budget) {
  TuningResult r;
  Rng rng(seed_);
  for (size_t i = 0; i < budget; ++i) {
    KnobConfig c;
    for (double& v : c) v = rng.NextDouble();
    Record(&r, c, env->Evaluate(c));
  }
  return r;
}

TuningResult CoordinateDescentTuner::Tune(KnobEnvironment* env, size_t budget) {
  TuningResult r;
  KnobConfig cur = KnobEnvironment::DefaultConfig();
  Record(&r, cur, env->Evaluate(cur));
  size_t knob = 0;
  while (r.evaluations < budget) {
    KnobConfig best_c = cur;
    double best_p = -1.0;
    for (size_t s = 0; s < steps_ && r.evaluations < budget; ++s) {
      KnobConfig c = cur;
      c[knob] = steps_ > 1 ? static_cast<double>(s) / static_cast<double>(steps_ - 1)
                           : 0.5;
      double p = env->Evaluate(c);
      Record(&r, c, p);
      if (p > best_p) {
        best_p = p;
        best_c = c;
      }
    }
    cur = best_c;
    knob = (knob + 1) % kNumKnobs;
  }
  return r;
}

uint64_t RlKnobTuner::StateOf(const std::array<size_t, kNumKnobs>& levels,
                              uint64_t workload_tag) const {
  // Coarse state aggregation (3 buckets per knob): tabular Q-values then
  // generalize across nearby configurations, standing in for the actor
  // network's generalization in CDBTune.
  uint64_t h = workload_tag * 1000003 + 17;
  for (size_t l : levels) h = ml::HashCombine(h, l * 3 / opts_.grid);
  return h;
}

TuningResult RlKnobTuner::Tune(KnobEnvironment* env, size_t budget) {
  TuningResult r;
  const size_t num_actions = 2 * kNumKnobs;
  ml::QLearner::Options qopts = opts_.q;
  qopts.seed = opts_.seed;
  ml::QLearner q(num_actions, qopts);
  Rng rng(opts_.seed ^ 0x1234);

  // Episodes start from the shipped defaults and, after the first, restart
  // from the best configuration found so far with one knob perturbed —
  // CDBTune's "tune from the current config" loop, not random restarts.
  std::array<size_t, kNumKnobs> levels{};
  std::array<size_t, kNumKnobs> best_levels{};
  double best_perf = -1.0;
  {
    KnobConfig def = KnobEnvironment::DefaultConfig();
    for (size_t i = 0; i < kNumKnobs; ++i) {
      best_levels[i] = static_cast<size_t>(
          def[i] * static_cast<double>(opts_.grid - 1) + 0.5);
    }
  }
  auto reset = [&] {
    levels = best_levels;
    size_t knob = rng.Uniform(kNumKnobs);
    levels[knob] = rng.Uniform(opts_.grid);
  };
  double prev_perf = env->Evaluate(LevelsToConfig(levels, opts_.grid));
  Record(&r, LevelsToConfig(levels, opts_.grid), prev_perf);
  best_perf = prev_perf;
  best_levels = levels;

  size_t step_in_episode = 0;
  while (r.evaluations < budget) {
    uint64_t state = StateOf(levels, 0);
    size_t action = q.SelectAction(state);
    size_t knob = action / 2;
    bool inc = action % 2 == 0;
    auto next_levels = levels;
    if (inc && next_levels[knob] + 1 < opts_.grid) ++next_levels[knob];
    if (!inc && next_levels[knob] > 0) --next_levels[knob];

    KnobConfig c = LevelsToConfig(next_levels, opts_.grid);
    double perf = env->Evaluate(c);
    Record(&r, c, perf);
    if (perf > best_perf) {
      best_perf = perf;
      best_levels = next_levels;
    }
    // CDBTune-style reward: normalized performance delta.
    double reward = (perf - prev_perf) / std::max(prev_perf, 1.0);
    q.Update(state, action, reward, StateOf(next_levels, 0));
    levels = next_levels;
    prev_perf = perf;

    if (++step_in_episode >= opts_.episode_len) {
      step_in_episode = 0;
      q.EndEpisode();
      reset();
      if (r.evaluations < budget) {
        prev_perf = env->Evaluate(LevelsToConfig(levels, opts_.grid));
        Record(&r, LevelsToConfig(levels, opts_.grid), prev_perf);
        if (prev_perf > best_perf) {
          best_perf = prev_perf;
          best_levels = levels;
        }
      }
    }
  }
  return r;
}

uint64_t QueryAwareKnobTuner::WorkloadTag(const WorkloadProfile& w) {
  // Coarse featurization of the query mix (QTune's query2vec, reduced).
  auto bucket = [](double x) { return static_cast<uint64_t>(x * 4.999); };
  return 1 + bucket(w.read_fraction) * 25 + bucket(w.analytic_fraction) * 5 +
         bucket(w.concurrency_demand);
}

void QueryAwareKnobTuner::Pretrain(const std::vector<WorkloadProfile>& mixes,
                                   size_t budget_per_mix, double noise,
                                   uint64_t seed) {
  if (!shared_q_) {
    ml::QLearner::Options qopts = opts_.q;
    qopts.seed = opts_.seed;
    shared_q_ = std::make_unique<ml::QLearner>(2 * kNumKnobs, qopts);
  }
  for (size_t i = 0; i < mixes.size(); ++i) {
    KnobEnvironment env(mixes[i], noise, seed + i);
    TuneInternal(&env, budget_per_mix);
  }
}

TuningResult QueryAwareKnobTuner::Tune(KnobEnvironment* env, size_t budget) {
  if (!shared_q_) {
    ml::QLearner::Options qopts = opts_.q;
    qopts.seed = opts_.seed;
    shared_q_ = std::make_unique<ml::QLearner>(2 * kNumKnobs, qopts);
  }
  return TuneInternal(env, budget);
}

TuningResult QueryAwareKnobTuner::TuneInternal(KnobEnvironment* env,
                                               size_t budget) {
  TuningResult r;
  ml::QLearner& q = *shared_q_;
  Rng rng(opts_.seed ^ 0x9876);
  uint64_t tag = WorkloadTag(env->workload());

  std::array<size_t, kNumKnobs> levels{};
  auto state_of = [&](const std::array<size_t, kNumKnobs>& lv) {
    uint64_t h = tag * 1000003 + 17;
    for (size_t l : lv) h = ml::HashCombine(h, l * 3 / opts_.grid);
    return h;
  };
  auto remember = [&](double perf) {
    auto it = best_by_tag_.find(tag);
    if (it == best_by_tag_.end() || perf > it->second.first) {
      best_by_tag_[tag] = {perf, levels};
    }
  };
  auto reset = [&] {
    auto it = best_by_tag_.find(tag);
    if (it != best_by_tag_.end() && rng.Bernoulli(0.8)) {
      // Warm start: resume from the best configuration known for this
      // workload signature, with a small perturbation to keep exploring.
      levels = it->second.second;
    } else {
      KnobConfig def = KnobEnvironment::DefaultConfig();
      for (size_t i = 0; i < kNumKnobs; ++i) {
        levels[i] = static_cast<size_t>(def[i] * static_cast<double>(opts_.grid - 1) + 0.5);
      }
    }
    size_t knob = rng.Uniform(kNumKnobs);
    levels[knob] = rng.Uniform(opts_.grid);
  };
  reset();
  double prev_perf = env->Evaluate(LevelsToConfig(levels, opts_.grid));
  Record(&r, LevelsToConfig(levels, opts_.grid), prev_perf);
  remember(prev_perf);

  size_t step_in_episode = 0;
  while (r.evaluations < budget) {
    uint64_t state = state_of(levels);
    size_t action = q.SelectAction(state);
    size_t knob = action / 2;
    bool inc = action % 2 == 0;
    auto next_levels = levels;
    if (inc && next_levels[knob] + 1 < opts_.grid) ++next_levels[knob];
    if (!inc && next_levels[knob] > 0) --next_levels[knob];

    KnobConfig c = LevelsToConfig(next_levels, opts_.grid);
    double perf = env->Evaluate(c);
    Record(&r, c, perf);
    double reward = (perf - prev_perf) / std::max(prev_perf, 1.0);
    q.Update(state, action, reward, state_of(next_levels));
    levels = next_levels;
    prev_perf = perf;
    remember(perf);

    if (++step_in_episode >= opts_.episode_len) {
      step_in_episode = 0;
      q.EndEpisode();
      reset();
      if (r.evaluations < budget) {
        prev_perf = env->Evaluate(LevelsToConfig(levels, opts_.grid));
        Record(&r, LevelsToConfig(levels, opts_.grid), prev_perf);
        remember(prev_perf);
      }
    }
  }
  return r;
}

}  // namespace aidb::advisor
