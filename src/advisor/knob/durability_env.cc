#include "advisor/knob/durability_env.h"

#include <algorithm>
#include <filesystem>
#include <string>

#include "exec/database.h"

namespace aidb::advisor {

double DurabilityKnobEnvironment::DurabilityScore(const KnobConfig& c) const {
  size_t flush_interval = WalFlushIntervalFromKnob(c[kWalSync]);
  size_t ckpt_every = CheckpointEveryNFromKnob(c[kCheckpointInterval]);

  std::error_code ec;
  std::filesystem::remove_all(options_.scratch_dir, ec);

  DurabilityOptions opts;
  opts.wal_flush_interval = flush_interval;
  opts.checkpoint_every_n_records = ckpt_every;
  opts.sync = false;  // counters only; physical fsync latency is modeled
  auto db_or = Database::Open(options_.scratch_dir, opts);
  if (!db_or.ok()) return 0.0;
  auto db = std::move(db_or).ValueOrDie();

  if (!db->Execute("CREATE TABLE knob_w (k INT, v STRING)").ok()) return 0.0;
  for (size_t s = 0; s < options_.statements; ++s) {
    std::string sql = "INSERT INTO knob_w VALUES ";
    for (size_t r = 0; r < options_.rows_per_statement; ++r) {
      if (r > 0) sql += ", ";
      size_t k = s * options_.rows_per_statement + r;
      sql += "(" + std::to_string(k) + ", 'row" + std::to_string(k) + "')";
    }
    if (!db->Execute(sql).ok()) return 0.0;
  }

  DurabilityStats stats = db->durability_stats();
  db.reset();
  std::filesystem::remove_all(options_.scratch_dir, ec);

  double cost = static_cast<double>(stats.wal.records_appended) +
                options_.fsync_cost * static_cast<double>(stats.wal.fsyncs) +
                options_.byte_cost * static_cast<double>(stats.wal.bytes_written) +
                options_.checkpoint_cost *
                    static_cast<double>(stats.checkpoints_written);
  if (cost <= 0.0) return 0.0;
  double throughput = static_cast<double>(options_.statements) / cost;

  // Group commit leaves up to (interval - 1) committed records unflushed;
  // checkpoint spacing sets the expected redo length after a crash. Both are
  // derived from measured counters so the tradeoff is real, not assumed.
  double lag = static_cast<double>(flush_interval - 1);
  double segments = static_cast<double>(stats.checkpoints_written) + 1.0;
  double redo = static_cast<double>(stats.wal.records_appended) / segments / 2.0;
  return throughput / (1.0 + options_.lag_weight * lag) /
         (1.0 + options_.redo_weight * redo);
}

double DurabilityKnobEnvironment::TrueThroughput(const KnobConfig& c) const {
  // Neutralize the two durability knobs in the analytic surface, then scale
  // by the measured durability factor normalized to the default config.
  KnobConfig analytic = c;
  analytic[kWalSync] = 1.0;
  analytic[kCheckpointInterval] = 0.7;
  double base = KnobEnvironment::TrueThroughput(analytic);

  KnobConfig defaults = DefaultConfig();
  double ref = DurabilityScore(defaults);
  if (ref <= 0.0) return base;
  return base * (DurabilityScore(c) / ref);
}

void ApplyDurabilityKnobs(Database* db, const KnobConfig& config) {
  if (db == nullptr || !db->durable()) return;
  db->SetWalFlushInterval(WalFlushIntervalFromKnob(config[kWalSync]));
  db->SetCheckpointEveryN(CheckpointEveryNFromKnob(config[kCheckpointInterval]));
}

void ApplyMonitorKnobs(Database* db, const KnobConfig& config) {
  if (db == nullptr) return;
  db->SetQueryLogCapacity(QueryLogCapacityFromKnob(config[kBufferPool]));
  if (db->kpi_sampler_running()) {
    db->StopKpiSampler();
    db->StartKpiSampler(KpiSampleIntervalMsFromKnob(config[kVacuumAggressiveness]));
  }
}

}  // namespace aidb::advisor
