#include "advisor/knob/storage_env.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <tuple>

#include "common/rng.h"
#include "exec/database.h"
#include "storage/engine/lsm_engine.h"

namespace aidb::advisor {

namespace {

/// Rows per multi-row INSERT in the build phase. Batching is what lets a
/// test-sized statement budget reach a key space *larger than the memtable
/// lattice* (512..16384) — without it every candidate design holds the whole
/// table warm until the final forced flush and measures the same wa=ra=1.0,
/// and the "measured" tuner would be climbing nothing but the memory term.
constexpr size_t kInsertBatch = 64;

/// Workload volumes after scaling down to env.max_ops *statements*
/// (a batched insert counts as one), shape preserved.
struct ScaledWorkload {
  size_t rows = 0;     ///< distinct keys, built with kInsertBatch-row inserts
  size_t updates = 0;  ///< point updates after the build (cold-slot churn)
  size_t reads = 0;    ///< indexed point reads
};

ScaledWorkload Scale(const design::LsmWorkload& w, const StorageEnvOptions& env) {
  const size_t orig_rows = std::min(w.key_space, w.num_writes);
  const size_t orig_updates = w.num_writes - orig_rows;
  const size_t insert_stmts = (orig_rows + kInsertBatch - 1) / kInsertBatch;
  const size_t stmts = insert_stmts + orig_updates + w.num_point_reads;
  const double s =
      stmts > env.max_ops ? static_cast<double>(env.max_ops) /
                                static_cast<double>(stmts)
                          : 1.0;
  ScaledWorkload sw;
  sw.rows = std::max<size_t>(
      kInsertBatch, static_cast<size_t>(static_cast<double>(orig_rows) * s));
  sw.updates =
      orig_updates == 0
          ? 0
          : std::max<size_t>(32, static_cast<size_t>(
                                     static_cast<double>(orig_updates) * s));
  sw.reads = std::max<size_t>(
      16, static_cast<size_t>(static_cast<double>(w.num_point_reads) * s));
  return sw;
}

/// Workload-weighted score over the measured amplifications. The memory
/// term (normalized to the lattice extremes, same role as the analytic
/// model's 0.1 * MemoryCost) keeps "max memtable, max bloom" from being a
/// free lunch.
double Score(const design::LsmWorkload& w, const LsmOptions& opts,
             double write_amp, double read_amp) {
  const double wf = w.WriteFraction();
  const double mem = static_cast<double>(opts.memtable_capacity) / 16384.0 +
                     static_cast<double>(opts.bloom_bits_per_key) / 16.0;
  return wf * write_amp + (1.0 - wf) * read_amp + 0.1 * mem;
}

}  // namespace

Result<MeasuredLsmDesign> MeasureLsmDesign(const design::LsmWorkload& workload,
                                           const LsmOptions& opts,
                                           const StorageEnvOptions& env) {
  if (workload.num_writes + workload.num_point_reads == 0) {
    return Status::InvalidArgument("storage env: empty workload");
  }
  const ScaledWorkload sw = Scale(workload, env);
  std::filesystem::remove_all(env.scratch_dir);

  DurabilityOptions dopts;
  dopts.lsm = true;
  dopts.lsm_design = opts;
  dopts.sync = false;              // counters, not wall clock, are the signal
  dopts.wal_flush_interval = 64;   // keep the WAL off the critical path
  dopts.checkpoint_every_n_records = 0;
  AIDB_ASSIGN_OR_RETURN(auto db, Database::Open(env.scratch_dir, dopts));

  auto run = [&](const std::string& sql) -> Status {
    auto r = db->Execute(sql);
    if (!r.ok()) return r.status();
    return Status::OK();
  };
  AIDB_RETURN_NOT_OK(run("CREATE TABLE kv (k INT, v DOUBLE)"));
  AIDB_RETURN_NOT_OK(run("CREATE INDEX kv_k ON kv(k)"));

  Rng rng(env.seed * 0x9E3779B97F4A7C15ULL + 1);
  const size_t flush_every = std::max<size_t>(1, env.flush_every);
  // Build phase: batched sequential inserts grow the key space past the
  // memtable lattice (slot order tracks key order, so zone maps stay tight).
  // Small-memtable designs flush mid-build; big ones hold everything warm —
  // the first axis the measurement discriminates.
  size_t write_stmts = 0, inserted = 0;
  auto maybe_flush = [&]() -> Status {
    if (++write_stmts % flush_every == 0) {
      return db->FlushColdStorage(/*force=*/false);
    }
    return Status::OK();
  };
  while (inserted < sw.rows) {
    const size_t n = std::min(kInsertBatch, sw.rows - inserted);
    std::string sql = "INSERT INTO kv VALUES ";
    for (size_t j = 0; j < n; ++j) {
      const size_t k = inserted + j;
      sql += (j == 0 ? "(" : ", (") + std::to_string(k) + ", " +
             std::to_string(k % 97) + ".5)";
    }
    AIDB_RETURN_NOT_OK(run(sql));
    inserted += n;
    AIDB_RETURN_NOT_OK(maybe_flush());
  }
  // Churn phase: point updates materialize cold slots, which later re-freeze
  // into overlapping runs; that overlap is what blooms and the compaction
  // policy get measured on.
  for (size_t i = 0; i < sw.updates; ++i) {
    AIDB_RETURN_NOT_OK(run("UPDATE kv SET v = " +
                           std::to_string(rng.Uniform(1000)) +
                           ".25 WHERE k = " +
                           std::to_string(rng.Uniform(sw.rows))));
    AIDB_RETURN_NOT_OK(maybe_flush());
  }
  // Everything cold before the read phase: reads measure the persisted
  // layout the writes produced, not the residual memtable.
  AIDB_RETURN_NOT_OK(db->FlushColdStorage(/*force=*/true));

  // Read phase: indexed point lookups; a hit resolves its slot through the
  // cold tier (runs probed until found), a key-space miss never reaches a
  // slot and stays free — the same hit/miss asymmetry the analytic model
  // encodes. Read amplification comes from this phase's counter delta
  // alone: the churn phase's update scans also probe the cold tier (by the
  // thousands) at ~1 run per probe, and folding them in would drown the
  // point-read signal the bloom/compaction knobs act on.
  const LsmStats pre_reads = db->lsm_engine()->StatsSnapshot();
  for (size_t j = 0; j < sw.reads; ++j) {
    const bool hit = rng.NextDouble() < workload.read_hit_fraction;
    const uint64_t key = hit ? rng.Uniform(sw.rows)
                             : sw.rows + rng.Uniform(std::max<size_t>(1, sw.rows));
    AIDB_RETURN_NOT_OK(
        run("SELECT v FROM kv WHERE k = " + std::to_string(key)));
  }

  MeasuredLsmDesign m;
  m.options = opts;
  m.stats = db->lsm_engine()->StatsSnapshot();
  m.write_amp = m.stats.WriteAmplification();
  const uint64_t read_gets = m.stats.gets - pre_reads.gets;
  m.read_amp = read_gets == 0
                   ? 0.0
                   : static_cast<double>(m.stats.runs_probed -
                                         pre_reads.runs_probed) /
                         static_cast<double>(read_gets);
  m.cost = Score(workload, opts, m.write_amp, m.read_amp);
  db.reset();
  std::filesystem::remove_all(env.scratch_dir);
  return m;
}

Result<MeasuredTuneResult> TuneLsmOnMeasured(const design::LsmWorkload& workload,
                                             const StorageEnvOptions& env,
                                             const LsmOptions& start) {
  // Same discrete lattice as the analytic LsmDesignTuner, so the two tuners
  // are comparable point by point.
  const std::vector<size_t> memtables{512, 1024, 2048, 4096, 8192, 16384};
  const std::vector<size_t> ratios{2, 3, 4, 6, 8, 10, 16};
  const std::vector<size_t> blooms{0, 2, 4, 6, 8, 10, 12, 16};
  constexpr size_t kMaxEvaluations = 48;

  MeasuredTuneResult r;
  // Memoize measured designs: the climb revisits neighbors, and every
  // evaluation is a full workload replay.
  std::map<std::tuple<size_t, size_t, size_t, bool>, MeasuredLsmDesign> seen;
  auto measure = [&](const LsmOptions& o) -> Result<MeasuredLsmDesign> {
    auto key = std::make_tuple(o.memtable_capacity, o.size_ratio,
                               o.bloom_bits_per_key, o.leveling);
    auto it = seen.find(key);
    if (it != seen.end()) return it->second;
    AIDB_ASSIGN_OR_RETURN(MeasuredLsmDesign m, MeasureLsmDesign(workload, o, env));
    ++r.evaluations;
    seen.emplace(key, m);
    return m;
  };

  AIDB_ASSIGN_OR_RETURN(r.start, measure(start));
  r.best = r.start;

  bool improved = true;
  while (improved && r.evaluations < kMaxEvaluations) {
    improved = false;
    MeasuredLsmDesign round_best = r.best;
    auto consider = [&](const LsmOptions& cand) -> Status {
      if (r.evaluations >= kMaxEvaluations) return Status::OK();
      AIDB_ASSIGN_OR_RETURN(MeasuredLsmDesign m, measure(cand));
      if (m.cost < round_best.cost) round_best = m;
      return Status::OK();
    };
    auto neighbors = [&](const std::vector<size_t>& lattice, size_t cur,
                         auto setter) -> Status {
      for (size_t i = 0; i < lattice.size(); ++i) {
        if (lattice[i] == cur) {
          if (i > 0) AIDB_RETURN_NOT_OK(consider(setter(lattice[i - 1])));
          if (i + 1 < lattice.size()) {
            AIDB_RETURN_NOT_OK(consider(setter(lattice[i + 1])));
          }
          return Status::OK();
        }
      }
      return consider(setter(lattice[lattice.size() / 2]));  // snap on
    };
    AIDB_RETURN_NOT_OK(neighbors(memtables, r.best.options.memtable_capacity,
                                 [&](size_t v) {
                                   LsmOptions o = r.best.options;
                                   o.memtable_capacity = v;
                                   return o;
                                 }));
    AIDB_RETURN_NOT_OK(neighbors(ratios, r.best.options.size_ratio, [&](size_t v) {
      LsmOptions o = r.best.options;
      o.size_ratio = v;
      return o;
    }));
    AIDB_RETURN_NOT_OK(
        neighbors(blooms, r.best.options.bloom_bits_per_key, [&](size_t v) {
          LsmOptions o = r.best.options;
          o.bloom_bits_per_key = v;
          return o;
        }));
    {
      LsmOptions o = r.best.options;
      o.leveling = !o.leveling;
      AIDB_RETURN_NOT_OK(consider(o));
    }
    if (round_best.cost < r.best.cost - 1e-12) {
      r.best = round_best;
      improved = true;
      ++r.steps;
    }
  }
  r.model_cost = design::LsmCostModel().TotalCost(r.best.options, workload);
  return r;
}

}  // namespace aidb::advisor
