#include "advisor/knob/knob_env.h"

#include <algorithm>
#include <cmath>

namespace aidb::advisor {

const char* KnobName(size_t knob) {
  switch (knob) {
    case kBufferPool: return "buffer_pool";
    case kWorkMem: return "work_mem";
    case kMaxConnections: return "max_connections";
    case kIoConcurrency: return "io_concurrency";
    case kWalSync: return "wal_sync";
    case kCheckpointInterval: return "checkpoint_interval";
    case kVacuumAggressiveness: return "vacuum";
    case kParallelWorkers: return "parallel_workers";
    case kExecDop: return "exec_dop";
  }
  return "?";
}

size_t DopFromKnob(double normalized, size_t max_dop) {
  if (max_dop <= 1) return 1;
  double c = std::clamp(normalized, 0.0, 1.0);
  return 1 + static_cast<size_t>(std::lround(c * static_cast<double>(max_dop - 1)));
}

size_t WalFlushIntervalFromKnob(double normalized) {
  double c = std::clamp(normalized, 0.0, 1.0);
  // 2^((1-c)*10): c=1 -> 1 record (synchronous), c=0 -> 1024 records.
  return size_t{1} << static_cast<unsigned>(std::lround((1.0 - c) * 10.0));
}

size_t CheckpointEveryNFromKnob(double normalized) {
  double c = std::clamp(normalized, 0.0, 1.0);
  // 16 * 256^c: log-scale over [16, 4096] records.
  return static_cast<size_t>(std::llround(16.0 * std::pow(256.0, c)));
}

size_t ServiceWorkersFromKnob(double normalized, size_t max_workers) {
  if (max_workers <= 1) return 1;
  double c = std::clamp(normalized, 0.0, 1.0);
  return 1 + static_cast<size_t>(
                 std::lround(c * static_cast<double>(max_workers - 1)));
}

size_t AdmissionQueueFromKnob(double normalized) {
  double c = std::clamp(normalized, 0.0, 1.0);
  // 8 * 64^c: log-scale over [8, 512] queued statements.
  return static_cast<size_t>(std::llround(8.0 * std::pow(64.0, c)));
}

size_t QueryLogCapacityFromKnob(double normalized) {
  double c = std::clamp(normalized, 0.0, 1.0);
  // 64 * 128^c: log-scale over [64, 8192] entries.
  return static_cast<size_t>(std::llround(64.0 * std::pow(128.0, c)));
}

double KpiSampleIntervalMsFromKnob(double normalized) {
  double c = std::clamp(normalized, 0.0, 1.0);
  // 1000 / 100^c: log-scale over [1000ms, 10ms]; aggressive -> frequent.
  return 1000.0 / std::pow(100.0, c);
}

WorkloadProfile WorkloadProfile::Oltp() {
  return {0.6, 0.05, 0.9, "oltp"};
}
WorkloadProfile WorkloadProfile::Olap() {
  return {0.95, 0.9, 0.2, "olap"};
}
WorkloadProfile WorkloadProfile::Hybrid() {
  return {0.75, 0.4, 0.5, "hybrid"};
}

double KnobEnvironment::TrueThroughput(const KnobConfig& c) const {
  const WorkloadProfile& w = workload_;
  auto clamp01 = [](double x) { return std::clamp(x, 0.0, 1.0); };

  // --- Memory model: buffer pool and per-connection work_mem share a fixed
  // physical budget; overcommit causes a swap cliff.
  double connections = 0.1 + 0.9 * c[kMaxConnections];  // fraction of max clients
  double mem_used = 0.55 * c[kBufferPool] + 0.9 * c[kWorkMem] * connections;
  double swap_penalty = mem_used > 0.8 ? std::exp(-10.0 * (mem_used - 0.8)) : 1.0;

  // --- Buffer pool: saturating read hit-rate benefit.
  double hit_rate = 1.0 - std::exp(-4.0 * c[kBufferPool]);
  double read_speed = 0.3 + 0.7 * hit_rate +
                      0.25 * c[kIoConcurrency] * (1.0 - hit_rate);

  // --- work_mem: analytic operators spill below a workload-dependent need.
  double mem_need = 0.15 + 0.55 * w.analytic_fraction;
  double spill = c[kWorkMem] >= mem_need
                     ? 1.0
                     : 0.3 + 0.7 * std::pow(c[kWorkMem] / mem_need, 1.5);

  // --- Parallel workers: helps analytics, real OLTP coordination overhead.
  double parallel_gain =
      1.0 + 0.8 * w.analytic_fraction * std::sqrt(c[kParallelWorkers]) -
      0.35 * (1.0 - w.analytic_fraction) * c[kParallelWorkers];

  // --- Executor dop (morsel-driven scans): near-linear analytic speedup
  // that saturates, minus worker-pool pressure when many clients compete.
  double morsel_gain = 1.0 + 0.9 * w.analytic_fraction * std::sqrt(c[kExecDop]) -
                       0.15 * w.concurrency_demand * c[kExecDop];

  // --- Connections: throughput peaks sharply at offered demand, then
  // thrashes (context switching, lock convoys).
  double demand = w.concurrency_demand;
  double conn_util = connections >= demand
                         ? 1.0 - 2.5 * (connections - demand)
                         : 0.2 + 0.8 * connections / demand;
  conn_util = clamp01(conn_util) * 0.85 + 0.15;

  // --- Writes: WAL sync costs writers; checkpoints smooth write stalls.
  double write_fraction = 1.0 - w.read_fraction;
  double wal_cost = 1.0 - 0.45 * c[kWalSync] * write_fraction;
  double checkpoint = 1.0 - 0.5 * write_fraction *
                                std::fabs(c[kCheckpointInterval] - 0.7);

  // --- Vacuum: mid-range optimum (too little bloats, too much steals CPU).
  double vacuum = 1.0 - 0.5 * std::pow(c[kVacuumAggressiveness] - 0.5, 2) * 4.0 *
                            (0.5 + 0.5 * write_fraction);

  double read_term = w.read_fraction * read_speed * spill * parallel_gain * morsel_gain;
  double write_term = write_fraction * (0.5 + 0.5 * c[kIoConcurrency]) * wal_cost;
  double base = 1000.0 * (read_term + write_term);
  return base * conn_util * swap_penalty * checkpoint * vacuum;
}

double KnobEnvironment::Evaluate(const KnobConfig& config) {
  ++evaluations_;
  double t = TrueThroughput(config);
  if (noise_ > 0) t *= 1.0 + rng_.Gaussian(0.0, noise_);
  return std::max(t, 0.0);
}

KnobConfig KnobEnvironment::DefaultConfig() {
  // Conservative shipped defaults (small memory, sync on, low parallelism,
  // serial executor).
  return {0.15, 0.1, 0.5, 0.2, 1.0, 0.5, 0.5, 0.1, 0.0};
}

double KnobEnvironment::ApproxOptimum(size_t probes, uint64_t seed) const {
  Rng rng(seed);
  double best = 0.0;
  for (size_t i = 0; i < probes; ++i) {
    KnobConfig c;
    for (double& v : c) v = rng.NextDouble();
    best = std::max(best, TrueThroughput(c));
  }
  return best;
}

}  // namespace aidb::advisor
