#pragma once

#include <map>
#include <memory>
#include <string>

#include "advisor/knob/knob_env.h"
#include "ml/qlearning.h"

namespace aidb::advisor {

/// Result of a tuning session.
struct TuningResult {
  KnobConfig best_config{};
  double best_throughput = 0.0;
  size_t evaluations = 0;
  std::vector<double> trajectory;  ///< best-so-far after each evaluation
};

/// \brief Strategy interface for automatic knob tuning. Implementations:
/// CDBTune-style RL, QTune-style query-aware RL, random search, grid/manual
/// heuristic — exactly the lineup the survey's configuration section covers.
class KnobTuner {
 public:
  virtual ~KnobTuner() = default;
  /// Tunes with at most `budget` environment evaluations.
  virtual TuningResult Tune(KnobEnvironment* env, size_t budget) = 0;
  virtual std::string name() const = 0;
};

/// Keeps the shipped defaults (the "no DBA" floor).
class DefaultConfigTuner : public KnobTuner {
 public:
  TuningResult Tune(KnobEnvironment* env, size_t budget) override;
  std::string name() const override { return "default"; }
};

/// Uniform random search (the classic black-box baseline).
class RandomSearchTuner : public KnobTuner {
 public:
  explicit RandomSearchTuner(uint64_t seed = 42) : seed_(seed) {}
  TuningResult Tune(KnobEnvironment* env, size_t budget) override;
  std::string name() const override { return "random"; }

 private:
  uint64_t seed_;
};

/// Coordinate-descent "manual DBA" heuristic: sweeps one knob at a time.
class CoordinateDescentTuner : public KnobTuner {
 public:
  explicit CoordinateDescentTuner(size_t steps_per_knob = 5)
      : steps_(steps_per_knob) {}
  TuningResult Tune(KnobEnvironment* env, size_t budget) override;
  std::string name() const override { return "coordinate"; }

 private:
  size_t steps_;
};

/// \brief CDBTune-style deep-RL tuner, reduced to tabular Q-learning over a
/// discretized configuration lattice.
///
/// State: current config discretized to `grid` levels per knob (hashed).
/// Actions: {increase, decrease} x knob by one level. Reward: throughput
/// delta, as in CDBTune's performance-difference reward shaping.
class RlKnobTuner : public KnobTuner {
 public:
  struct Options {
    size_t grid = 9;           ///< levels per knob
    size_t episode_len = 24;   ///< steps before restarting from best-so-far
    ml::QLearner::Options q;
    uint64_t seed = 42;

    Options() {
      q.epsilon = 0.35;
      q.epsilon_decay = 0.9;
      q.min_epsilon = 0.08;
      q.alpha = 0.3;
    }
  };

  RlKnobTuner() : RlKnobTuner(Options()) {}
  explicit RlKnobTuner(const Options& opts) : opts_(opts) {}
  TuningResult Tune(KnobEnvironment* env, size_t budget) override;
  std::string name() const override { return "rl_cdbtune"; }

 protected:
  uint64_t StateOf(const std::array<size_t, kNumKnobs>& levels,
                   uint64_t workload_tag) const;

  Options opts_;
};

/// \brief QTune-style query-aware tuner: like RlKnobTuner but the RL state
/// also encodes the workload profile features, so one agent generalizes
/// across workload mixes and warm-starts tuning of a new mix.
class QueryAwareKnobTuner : public KnobTuner {
 public:
  using Options = RlKnobTuner::Options;
  QueryAwareKnobTuner() : QueryAwareKnobTuner(Options()) {}
  explicit QueryAwareKnobTuner(const Options& opts) : opts_(opts) {}

  TuningResult Tune(KnobEnvironment* env, size_t budget) override;
  /// Pre-trains on other workload mixes; subsequent Tune() calls reuse the
  /// learned Q-table (this is QTune's query-feature transfer claim).
  void Pretrain(const std::vector<WorkloadProfile>& mixes, size_t budget_per_mix,
                double noise, uint64_t seed);
  std::string name() const override { return "rl_qtune"; }

 private:
  TuningResult TuneInternal(KnobEnvironment* env, size_t budget);
  static uint64_t WorkloadTag(const WorkloadProfile& w);

  Options opts_;
  std::unique_ptr<ml::QLearner> shared_q_;
  /// Best (throughput, levels) seen per workload tag — episodes warm-start
  /// here, which is the transfer QTune gets from query featurization.
  std::map<uint64_t, std::pair<double, std::array<size_t, kNumKnobs>>> best_by_tag_;
};

}  // namespace aidb::advisor
