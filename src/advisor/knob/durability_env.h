#pragma once

#include <cstdint>
#include <string>

#include "advisor/knob/knob_env.h"

namespace aidb {
class Database;
}

namespace aidb::advisor {

/// \brief Knob environment backed by the real durability subsystem.
///
/// Unlike the analytic KnobEnvironment surface, this environment measures the
/// `wal_sync` (group-commit interval) and `checkpoint_interval` knobs by
/// running an actual insert workload through Database::Open's WAL. The score
/// is computed from deterministic counters (records, fsyncs, bytes,
/// checkpoints — wall-clock free, so tuners see a reproducible surface):
///
///   score = statements / modeled_cost  x  durability-lag penalty
///
/// where modeled_cost charges each fsync and checkpoint their dominant I/O
/// cost and the penalty discounts configurations that would lose more
/// committed-but-unflushed records on a crash. The tradeoff gives the
/// surface an interior optimum: interval 1 drowns in fsyncs, interval 1024
/// risks a thousand-record durability lag.
///
/// The remaining seven knobs fall through to the analytic surface so tuners
/// can optimize the full 9-dimensional config against a hybrid environment.
struct DurabilityEnvOptions {
  /// Scratch directory recreated for every evaluation.
  std::string scratch_dir = "aidb_knob_env_scratch";
  /// INSERT statements per evaluation (each logs one txn: insert + commit).
  size_t statements = 256;
  /// Rows per INSERT statement.
  size_t rows_per_statement = 4;
  /// Cost model weights (arbitrary units; records cost 1 each).
  double fsync_cost = 30.0;
  double checkpoint_cost = 80.0;
  double byte_cost = 0.002;
  /// Linear penalty per record of potential durability lag.
  double lag_weight = 0.01;
  /// Penalty per record of expected redo work at crash (checkpoint spacing).
  double redo_weight = 0.002;
};

class DurabilityKnobEnvironment : public KnobEnvironment {
 public:
  explicit DurabilityKnobEnvironment(const WorkloadProfile& workload,
                                     DurabilityEnvOptions options = {},
                                     double noise = 0.0, uint64_t seed = 42)
      : KnobEnvironment(workload, noise, seed), options_(std::move(options)) {}

  /// Runs the WAL workload at the config's flush/checkpoint settings and
  /// combines the measured counters with the analytic surface for the other
  /// knobs. Deterministic for a fixed config.
  double TrueThroughput(const KnobConfig& config) const override;

  /// The durability-only factor of the score (analytic knobs held at
  /// default) — what bench_wal sweeps to show the knob response.
  double DurabilityScore(const KnobConfig& config) const;

  const DurabilityEnvOptions& options() const { return options_; }

 private:
  DurabilityEnvOptions options_;
};

/// Pushes the tuner-chosen durability knobs into a live database:
/// `wal_sync` -> SetWalFlushInterval, `checkpoint_interval` ->
/// SetCheckpointEveryN. No-op on a non-durable database.
void ApplyDurabilityKnobs(Database* db, const KnobConfig& config);

/// Pushes the tuner-chosen self-monitoring knobs into a live database:
/// `buffer_pool` -> SetQueryLogCapacity (the log rides the buffer budget)
/// and, when the KPI sampler is running, `vacuum` -> its sample interval
/// (the sampler restarts at the new cadence).
void ApplyMonitorKnobs(Database* db, const KnobConfig& config);

}  // namespace aidb::advisor
