#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "design/lsm_tuner/lsm_tuner.h"
#include "storage/lsm.h"

namespace aidb::advisor {

/// \brief Measured tuning environment for the *real* LSM storage engine.
///
/// The analytic LsmCostModel (design/lsm_tuner) predicts write/read
/// amplification from closed-form I/O algebra. This environment instead
/// *runs* a scaled replica of the workload through Database::Open with
/// DurabilityOptions::lsm and the candidate design, forcing cold flushes at
/// a fixed cadence, and reads the engine's own deterministic counters
/// (LsmStats: entries written/rewritten, runs probed per cold get, bloom
/// negatives, zone prunes). No wall clock anywhere — the same design always
/// measures the same cost, which is what lets a tuner hill-climb on it and
/// what makes the analytic model checkable against reality (EXPERIMENTS.md
/// E10b).
struct StorageEnvOptions {
  /// Scratch directory recreated for every evaluation.
  std::string scratch_dir = "aidb_storage_env_scratch";
  uint64_t seed = 42;
  /// Cap on replayed *statements* — the build phase inserts in 64-row
  /// batches, so the key space reaches past the memtable lattice on a
  /// test-sized budget. The workload's shape (write fraction, update mix,
  /// hit rate) is preserved while its volume is scaled down.
  size_t max_ops = 2048;
  /// Forced FlushColdStorage cadence, in write statements.
  size_t flush_every = 128;
};

/// One measured evaluation of an LSM design point.
struct MeasuredLsmDesign {
  LsmOptions options;
  LsmStats stats;          ///< raw engine counters after the replay
  double write_amp = 0.0;  ///< entries rewritten per entry ingested
  double read_amp = 0.0;   ///< runs probed per read-phase cold access
  double cost = 0.0;       ///< workload-weighted score (lower is better)
};

/// Replays the scaled workload under `opts` and returns the measured
/// amplification + cost. Deterministic for fixed (workload, opts, env).
Result<MeasuredLsmDesign> MeasureLsmDesign(const design::LsmWorkload& workload,
                                           const LsmOptions& opts,
                                           const StorageEnvOptions& env = {});

/// Outcome of a measured hill-climb over the design lattice.
struct MeasuredTuneResult {
  MeasuredLsmDesign start;   ///< the starting design, measured
  MeasuredLsmDesign best;    ///< the chosen design, measured
  size_t evaluations = 0;    ///< workload replays spent
  size_t steps = 0;          ///< accepted moves
  double model_cost = 0.0;   ///< analytic TotalCost at `best` (validation)
};

/// Hill-climbs the same discrete lattice as LsmDesignTuner — memtable
/// budget, size ratio, bloom bits, leveling/tiering — but scores each move
/// with MeasureLsmDesign instead of the analytic model: the learned tuner of
/// the storage tentpole, grounded in the engine's real counters. The
/// analytic model's cost at the chosen design is reported alongside as the
/// validation baseline.
Result<MeasuredTuneResult> TuneLsmOnMeasured(const design::LsmWorkload& workload,
                                             const StorageEnvOptions& env = {},
                                             const LsmOptions& start = {});

}  // namespace aidb::advisor
