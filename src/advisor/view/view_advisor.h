#pragma once

#include <set>
#include <string>
#include <vector>

#include "exec/database.h"
#include "workload/generator.h"

namespace aidb::advisor {

/// A materialized-view candidate: a join+aggregation signature shared by a
/// set of workload queries.
struct ViewCandidate {
  uint64_t signature = 0;   ///< hash of join pattern + agg shape
  std::string description;
  double space = 0.0;       ///< materialization size (rows)
  double build_cost = 0.0;  ///< one-time cost to materialize
  std::vector<size_t> matching_queries;
  std::vector<double> per_query_saving;  ///< parallel to matching_queries
};

/// \brief What-if model for materialized view selection (space-for-time):
/// mines candidates from repeated join signatures in the workload, estimates
/// per-query savings from answering out of the view, and charges space.
class ViewWhatIfModel {
 public:
  ViewWhatIfModel(const Database* db,
                  const std::vector<workload::GeneratedQuery>* queries);

  const std::vector<ViewCandidate>& candidates() const { return candidates_; }

  /// Total workload cost with the chosen views materialized (each query uses
  /// its single best applicable view). Views over budget are invalid: returns
  /// +inf so search treats them as infeasible.
  double WorkloadCost(const std::set<size_t>& chosen, double space_budget) const;
  double TotalSpace(const std::set<size_t>& chosen) const;
  double BaseCost() const { return base_cost_; }
  size_t num_queries() const { return query_costs_.size(); }

 private:
  std::vector<ViewCandidate> candidates_;
  std::vector<double> query_costs_;  ///< cost without views
  double base_cost_ = 0.0;
};

/// \brief Strategy interface for view selection under a space budget.
class ViewAdvisor {
 public:
  virtual ~ViewAdvisor() = default;
  virtual std::set<size_t> Recommend(const ViewWhatIfModel& model,
                                     double space_budget) = 0;
  virtual std::string name() const = 0;
};

/// Materializes the most frequently matching signatures first (naive DBA).
class FrequencyViewAdvisor : public ViewAdvisor {
 public:
  std::set<size_t> Recommend(const ViewWhatIfModel& model,
                             double space_budget) override;
  std::string name() const override { return "frequency"; }
};

/// Greedy benefit-per-space (classic knapsack heuristic).
class GreedyViewAdvisor : public ViewAdvisor {
 public:
  std::set<size_t> Recommend(const ViewWhatIfModel& model,
                             double space_budget) override;
  std::string name() const override { return "greedy"; }
};

/// \brief Han-style RL view advisor: episodes build a view set under the
/// budget; Q-learning learns which additions pay off jointly (greedy's blind
/// spot: overlapping candidates).
class RlViewAdvisor : public ViewAdvisor {
 public:
  struct Options {
    size_t episodes = 500;
    uint64_t seed = 42;
  };
  RlViewAdvisor() : RlViewAdvisor(Options()) {}
  explicit RlViewAdvisor(const Options& opts) : opts_(opts) {}
  std::set<size_t> Recommend(const ViewWhatIfModel& model,
                             double space_budget) override;
  std::string name() const override { return "rl_drl"; }

 private:
  Options opts_;
};

}  // namespace aidb::advisor
