#include "advisor/view/view_advisor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "ml/qlearning.h"
#include "optimizer/cardinality.h"

namespace aidb::advisor {

ViewWhatIfModel::ViewWhatIfModel(
    const Database* db, const std::vector<workload::GeneratedQuery>* queries) {
  // Signature: the set of joined relations + aggregation flag. Queries with
  // the same signature can share one materialized join/aggregate.
  std::map<uint64_t, size_t> sig_to_candidate;

  for (size_t qi = 0; qi < queries->size(); ++qi) {
    const auto& gq = (*queries)[qi];
    // Query cost estimate: product of join sizes approximated by fact rows x
    // join count + scan costs.
    double cost = 0.0;
    uint64_t sig = 1469598103934665603ULL;
    bool has_join = false;
    std::string desc;
    double view_rows = 0.0;

    auto add_rel = [&](const std::string& table) {
      auto t = db->catalog().GetTable(table);
      double rows = t.ok() ? static_cast<double>(t.ValueOrDie()->NumRows()) : 1000.0;
      cost += rows;
      view_rows = std::max(view_rows, rows);
      sig = (sig ^ std::hash<std::string>{}(table)) * 1099511628211ULL;
      if (!desc.empty()) desc += "+";
      desc += table;
    };
    for (const auto& f : gq.stmt->from) add_rel(f.table);
    for (const auto& j : gq.stmt->joins) {
      add_rel(j.table.table);
      has_join = true;
      cost += 0.3 * view_rows;  // join probe work
    }
    bool agg = false;
    for (const auto& item : gq.stmt->items) {
      if (item.expr && item.expr->kind == sql::Expr::Kind::kAggregate) agg = true;
    }
    sig = (sig ^ (agg ? 0x9e37ULL : 0x79b9ULL)) * 1099511628211ULL;

    query_costs_.push_back(cost);
    base_cost_ += cost;
    if (!has_join) continue;  // single-table queries don't get MV candidates

    size_t cid;
    auto it = sig_to_candidate.find(sig);
    if (it == sig_to_candidate.end()) {
      ViewCandidate cand;
      cand.signature = sig;
      cand.description = desc + (agg ? " [agg]" : "");
      // Aggregated views are small; join views carry fact-side rows.
      cand.space = agg ? view_rows * 0.05 : view_rows * 0.6;
      cand.build_cost = cost;
      cid = candidates_.size();
      sig_to_candidate[sig] = cid;
      candidates_.push_back(std::move(cand));
    } else {
      cid = it->second;
    }
    // Savings: answering from the view costs a scan of the view.
    double probe_cost = agg ? candidates_[cid].space : candidates_[cid].space * 0.5;
    double saving = std::max(0.0, cost - probe_cost);
    candidates_[cid].matching_queries.push_back(qi);
    candidates_[cid].per_query_saving.push_back(saving);
  }
}

double ViewWhatIfModel::TotalSpace(const std::set<size_t>& chosen) const {
  double s = 0.0;
  for (size_t i : chosen) s += candidates_[i].space;
  return s;
}

double ViewWhatIfModel::WorkloadCost(const std::set<size_t>& chosen,
                                     double space_budget) const {
  if (TotalSpace(chosen) > space_budget) {
    return std::numeric_limits<double>::infinity();
  }
  // Best saving per query across chosen views.
  std::vector<double> best_saving(query_costs_.size(), 0.0);
  for (size_t i : chosen) {
    const ViewCandidate& c = candidates_[i];
    for (size_t k = 0; k < c.matching_queries.size(); ++k) {
      size_t q = c.matching_queries[k];
      best_saving[q] = std::max(best_saving[q], c.per_query_saving[k]);
    }
  }
  double total = 0.0;
  for (size_t q = 0; q < query_costs_.size(); ++q)
    total += query_costs_[q] - best_saving[q];
  // Maintenance: proportional to total space.
  total += 0.01 * TotalSpace(chosen);
  return total;
}

std::set<size_t> FrequencyViewAdvisor::Recommend(const ViewWhatIfModel& model,
                                                 double space_budget) {
  std::vector<std::pair<size_t, size_t>> by_freq;
  for (size_t i = 0; i < model.candidates().size(); ++i)
    by_freq.emplace_back(model.candidates()[i].matching_queries.size(), i);
  std::sort(by_freq.rbegin(), by_freq.rend());
  std::set<size_t> chosen;
  double space = 0.0;
  for (auto& [f, i] : by_freq) {
    if (space + model.candidates()[i].space > space_budget) continue;
    chosen.insert(i);
    space += model.candidates()[i].space;
  }
  return chosen;
}

std::set<size_t> GreedyViewAdvisor::Recommend(const ViewWhatIfModel& model,
                                              double space_budget) {
  std::set<size_t> chosen;
  double cur = model.WorkloadCost(chosen, space_budget);
  for (;;) {
    int best = -1;
    double best_ratio = 0.0;
    for (size_t i = 0; i < model.candidates().size(); ++i) {
      if (chosen.count(i)) continue;
      auto trial = chosen;
      trial.insert(i);
      double cost = model.WorkloadCost(trial, space_budget);
      if (std::isinf(cost)) continue;
      double ratio = (cur - cost) / std::max(1.0, model.candidates()[i].space);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    chosen.insert(static_cast<size_t>(best));
    cur = model.WorkloadCost(chosen, space_budget);
  }
  return chosen;
}

std::set<size_t> RlViewAdvisor::Recommend(const ViewWhatIfModel& model,
                                          double space_budget) {
  size_t n = model.candidates().size();
  if (n == 0) return {};
  ml::QLearner::Options qopts;
  qopts.epsilon = 0.4;
  qopts.epsilon_decay = 0.993;
  qopts.alpha = 0.3;
  qopts.seed = opts_.seed;
  ml::QLearner q(n + 1, qopts);  // action n = stop

  double base = model.WorkloadCost({}, space_budget);
  std::set<size_t> best;
  double best_cost = base;
  // Expert-demonstration bootstrap (as in DRL view advisors): seed the best
  // set with the greedy solution so exploration only has to improve on it.
  {
    GreedyViewAdvisor greedy;
    auto seed_set = greedy.Recommend(model, space_budget);
    double seed_cost = model.WorkloadCost(seed_set, space_budget);
    if (seed_cost < best_cost) {
      best_cost = seed_cost;
      best = std::move(seed_set);
    }
  }
  auto state_of = [](uint64_t mask) { return ml::HashCombine(0x5eed, mask); };

  for (size_t ep = 0; ep < opts_.episodes; ++ep) {
    std::set<size_t> chosen;
    uint64_t mask = 0;
    double prev = base;
    for (size_t step = 0; step < n; ++step) {
      uint64_t state = state_of(mask);
      size_t action = q.SelectAction(state);
      if (action == n) {
        q.Update(state, action, 0.0, state, true);
        break;
      }
      if (chosen.count(action)) {
        q.Update(state, action, -0.02, state);
        continue;
      }
      auto trial = chosen;
      trial.insert(action);
      double cost = model.WorkloadCost(trial, space_budget);
      if (std::isinf(cost)) {  // over budget: forbidden
        q.Update(state, action, -0.2, state, true);
        break;
      }
      double reward = (prev - cost) / std::max(base, 1.0);
      chosen = std::move(trial);
      uint64_t next_mask = mask | (1ULL << action);
      q.Update(state, action, reward, state_of(next_mask));
      mask = next_mask;
      prev = cost;
      if (cost < best_cost) {
        best_cost = cost;
        best = chosen;
      }
    }
    q.EndEpisode();
  }
  return best;
}

}  // namespace aidb::advisor
