#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sql/ast.h"

namespace aidb::advisor {

/// Rewrite rules over predicate expressions. Rules interact: one rule's
/// output is another's trigger (DeMorgan exposes comparisons for NOT-
/// elimination; folding exposes ranges for merging; merging exposes
/// contradictions) — which is exactly why application *order* matters and a
/// learned ordering beats a fixed pass (survey §2.1 "SQL rewriter").
enum class RewriteRule : int {
  kConstantFold = 0,   ///< 1 + 2 -> 3; 3 < 5 -> TRUE
  kDoubleNegation,     ///< NOT NOT x -> x
  kDeMorgan,           ///< NOT (a AND b) -> NOT a OR NOT b
  kNotComparison,      ///< NOT (a < b) -> a >= b
  kBoolAbsorb,         ///< x AND TRUE -> x; x OR TRUE -> TRUE; duals
  kRangeMerge,         ///< col > 3 AND col > 7 -> col > 7
  kContradiction,      ///< col > 7 AND col < 3 -> FALSE
  kTautology,          ///< col = col -> TRUE; x OR NOT x stays (not handled)
  kNumRules,
};

const char* RuleName(RewriteRule rule);
inline constexpr size_t kNumRewriteRules = static_cast<size_t>(RewriteRule::kNumRules);

/// Applies `rule` exhaustively over the tree; sets *changed if anything fired.
std::unique_ptr<sql::Expr> ApplyRewriteRule(const sql::Expr& expr, RewriteRule rule,
                                            bool* changed);

/// Evaluation-cost proxy for a predicate: node count, with a large discount
/// when the predicate folded to a constant (the scan can be skipped or the
/// filter dropped entirely).
double ExpressionCost(const sql::Expr& expr);

size_t CountNodes(const sql::Expr& expr);

/// Result of a rewrite session.
struct RewriteResult {
  std::unique_ptr<sql::Expr> expr;
  double cost = 0.0;
  std::vector<RewriteRule> applied;
};

/// \brief Strategy interface for choosing the rule-application order.
class Rewriter {
 public:
  virtual ~Rewriter() = default;
  virtual RewriteResult Rewrite(const sql::Expr& expr) = 0;
  virtual std::string name() const = 0;
};

/// Classic heuristic rewriter: one pass applying every rule once in a fixed
/// (enum) order — the "top-down fixed order" baseline the survey critiques.
class FixedOrderRewriter : public Rewriter {
 public:
  /// `passes` > 1 gives the baseline extra chances (still a fixed order).
  explicit FixedOrderRewriter(size_t passes = 1) : passes_(passes) {}
  RewriteResult Rewrite(const sql::Expr& expr) override;
  std::string name() const override {
    return passes_ == 1 ? "fixed_order" : "fixed_order_x" + std::to_string(passes_);
  }

 private:
  size_t passes_;
};

/// \brief Learned rewriter: MCTS over rule-application sequences, as the
/// survey's "judiciously select the appropriate rules and apply the rules in
/// a good order" with Monte-Carlo search standing in for the policy model.
class MctsRewriter : public Rewriter {
 public:
  struct Options {
    size_t iterations = 300;
    size_t max_depth = 10;  ///< max rules applied in sequence
    uint64_t seed = 42;
  };
  MctsRewriter() : MctsRewriter(Options()) {}
  explicit MctsRewriter(const Options& opts) : opts_(opts) {}
  RewriteResult Rewrite(const sql::Expr& expr) override;
  std::string name() const override { return "mcts"; }

 private:
  Options opts_;
};

/// Generates predicate expressions with planted redundancies whose full
/// simplification requires a specific rule chain (workload for E4).
std::unique_ptr<sql::Expr> GenerateRedundantPredicate(Rng* rng, size_t depth = 3);

}  // namespace aidb::advisor
