#include "advisor/rewrite/rewriter.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "ml/mcts.h"

namespace aidb::advisor {

using sql::Expr;
using sql::OpType;

const char* RuleName(RewriteRule rule) {
  switch (rule) {
    case RewriteRule::kConstantFold: return "constant_fold";
    case RewriteRule::kDoubleNegation: return "double_negation";
    case RewriteRule::kDeMorgan: return "de_morgan";
    case RewriteRule::kNotComparison: return "not_comparison";
    case RewriteRule::kBoolAbsorb: return "bool_absorb";
    case RewriteRule::kRangeMerge: return "range_merge";
    case RewriteRule::kContradiction: return "contradiction";
    case RewriteRule::kTautology: return "tautology";
    case RewriteRule::kNumRules: break;
  }
  return "?";
}

namespace {

bool IsLiteral(const Expr& e) { return e.kind == Expr::Kind::kLiteral; }
bool IsTrue(const Expr& e) {
  return IsLiteral(e) && !e.literal.is_null() && e.literal.AsFeature() != 0.0;
}
bool IsFalse(const Expr& e) {
  return IsLiteral(e) && !e.literal.is_null() && e.literal.AsFeature() == 0.0;
}

std::unique_ptr<Expr> True() {
  return Expr::MakeLiteral(Value(static_cast<int64_t>(1)));
}
std::unique_ptr<Expr> False() {
  return Expr::MakeLiteral(Value(static_cast<int64_t>(0)));
}

bool IsComparison(OpType op) {
  switch (op) {
    case OpType::kEq: case OpType::kNe: case OpType::kLt:
    case OpType::kLe: case OpType::kGt: case OpType::kGe:
      return true;
    default:
      return false;
  }
}

OpType NegateComparison(OpType op) {
  switch (op) {
    case OpType::kEq: return OpType::kNe;
    case OpType::kNe: return OpType::kEq;
    case OpType::kLt: return OpType::kGe;
    case OpType::kLe: return OpType::kGt;
    case OpType::kGt: return OpType::kLe;
    case OpType::kGe: return OpType::kLt;
    default: return op;
  }
}

/// col-op-literal pattern match.
bool MatchColLit(const Expr& e, std::string* col, OpType* op, double* lit) {
  if (e.kind != Expr::Kind::kBinary || !IsComparison(e.op)) return false;
  if (e.lhs->kind == Expr::Kind::kColumnRef && IsLiteral(*e.rhs) &&
      !e.rhs->literal.is_null()) {
    *col = (e.lhs->table.empty() ? "" : e.lhs->table + ".") + e.lhs->column;
    *op = e.op;
    *lit = e.rhs->literal.AsFeature();
    return true;
  }
  return false;
}

/// Lower/upper bound implied by a col-op-lit predicate (closed bounds,
/// +-inf when unbounded). Equality gives both.
void BoundsOf(OpType op, double lit, double* lo, double* hi) {
  *lo = -1e300;
  *hi = 1e300;
  switch (op) {
    case OpType::kEq: *lo = *hi = lit; break;
    case OpType::kLt: *hi = lit - 1e-9; break;
    case OpType::kLe: *hi = lit; break;
    case OpType::kGt: *lo = lit + 1e-9; break;
    case OpType::kGe: *lo = lit; break;
    default: break;
  }
}

using RuleFn = std::unique_ptr<Expr> (*)(const Expr&, bool*);

std::unique_ptr<Expr> Recurse(const Expr& e, RuleFn fn, bool* changed) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->literal = e.literal;
  out->table = e.table;
  out->column = e.column;
  out->op = e.op;
  out->agg = e.agg;
  out->model = e.model;
  if (e.lhs) out->lhs = fn(*e.lhs, changed);
  if (e.rhs) out->rhs = fn(*e.rhs, changed);
  for (const auto& a : e.args) out->args.push_back(fn(*a, changed));
  return out;
}

std::unique_ptr<Expr> FoldRule(const Expr& e, bool* changed) {
  if (e.kind == Expr::Kind::kBinary && IsLiteral(*e.lhs) && IsLiteral(*e.rhs) &&
      !e.lhs->literal.is_null() && !e.rhs->literal.is_null() &&
      e.op != OpType::kAnd && e.op != OpType::kOr) {
    double a = e.lhs->literal.AsFeature(), b = e.rhs->literal.AsFeature();
    *changed = true;
    switch (e.op) {
      case OpType::kAdd: return Expr::MakeLiteral(Value(a + b));
      case OpType::kSub: return Expr::MakeLiteral(Value(a - b));
      case OpType::kMul: return Expr::MakeLiteral(Value(a * b));
      case OpType::kDiv:
        if (b == 0) { *changed = false; break; }
        return Expr::MakeLiteral(Value(a / b));
      case OpType::kEq: return a == b ? True() : False();
      case OpType::kNe: return a != b ? True() : False();
      case OpType::kLt: return a < b ? True() : False();
      case OpType::kLe: return a <= b ? True() : False();
      case OpType::kGt: return a > b ? True() : False();
      case OpType::kGe: return a >= b ? True() : False();
      default: *changed = false; break;
    }
  }
  if (e.kind == Expr::Kind::kUnary && e.op == OpType::kNot && IsLiteral(*e.lhs) &&
      !e.lhs->literal.is_null()) {
    *changed = true;
    return IsTrue(*e.lhs) ? False() : True();
  }
  return Recurse(e, &FoldRule, changed);
}

std::unique_ptr<Expr> DoubleNegationRule(const Expr& e, bool* changed) {
  if (e.kind == Expr::Kind::kUnary && e.op == OpType::kNot &&
      e.lhs->kind == Expr::Kind::kUnary && e.lhs->op == OpType::kNot) {
    *changed = true;
    return DoubleNegationRule(*e.lhs->lhs, changed);
  }
  return Recurse(e, &DoubleNegationRule, changed);
}

std::unique_ptr<Expr> DeMorganRule(const Expr& e, bool* changed) {
  if (e.kind == Expr::Kind::kUnary && e.op == OpType::kNot &&
      e.lhs->kind == Expr::Kind::kBinary &&
      (e.lhs->op == OpType::kAnd || e.lhs->op == OpType::kOr)) {
    *changed = true;
    OpType dual = e.lhs->op == OpType::kAnd ? OpType::kOr : OpType::kAnd;
    return Expr::MakeBinary(dual,
                            DeMorganRule(*Expr::MakeUnary(OpType::kNot,
                                                          e.lhs->lhs->Clone()),
                                         changed),
                            DeMorganRule(*Expr::MakeUnary(OpType::kNot,
                                                          e.lhs->rhs->Clone()),
                                         changed));
  }
  return Recurse(e, &DeMorganRule, changed);
}

std::unique_ptr<Expr> NotComparisonRule(const Expr& e, bool* changed) {
  if (e.kind == Expr::Kind::kUnary && e.op == OpType::kNot &&
      e.lhs->kind == Expr::Kind::kBinary && IsComparison(e.lhs->op)) {
    *changed = true;
    return Expr::MakeBinary(NegateComparison(e.lhs->op),
                            NotComparisonRule(*e.lhs->lhs, changed),
                            NotComparisonRule(*e.lhs->rhs, changed));
  }
  return Recurse(e, &NotComparisonRule, changed);
}

std::unique_ptr<Expr> BoolAbsorbRule(const Expr& e, bool* changed) {
  if (e.kind == Expr::Kind::kBinary &&
      (e.op == OpType::kAnd || e.op == OpType::kOr)) {
    auto l = BoolAbsorbRule(*e.lhs, changed);
    auto r = BoolAbsorbRule(*e.rhs, changed);
    if (e.op == OpType::kAnd) {
      if (IsTrue(*l)) { *changed = true; return r; }
      if (IsTrue(*r)) { *changed = true; return l; }
      if (IsFalse(*l) || IsFalse(*r)) { *changed = true; return False(); }
    } else {
      if (IsFalse(*l)) { *changed = true; return r; }
      if (IsFalse(*r)) { *changed = true; return l; }
      if (IsTrue(*l) || IsTrue(*r)) { *changed = true; return True(); }
    }
    return Expr::MakeBinary(e.op, std::move(l), std::move(r));
  }
  return Recurse(e, &BoolAbsorbRule, changed);
}

std::unique_ptr<Expr> RangeMergeRule(const Expr& e, bool* changed) {
  if (e.kind == Expr::Kind::kBinary && e.op == OpType::kAnd) {
    std::string cl, cr;
    OpType ol, orr;
    double ll, lr;
    if (MatchColLit(*e.lhs, &cl, &ol, &ll) && MatchColLit(*e.rhs, &cr, &orr, &lr) &&
        cl == cr) {
      // Same-direction comparisons merge to the tighter literal.
      bool l_lower = ol == OpType::kGt || ol == OpType::kGe;
      bool r_lower = orr == OpType::kGt || orr == OpType::kGe;
      bool l_upper = ol == OpType::kLt || ol == OpType::kLe;
      bool r_upper = orr == OpType::kLt || orr == OpType::kLe;
      if (l_lower && r_lower) {
        *changed = true;
        return ll >= lr ? e.lhs->Clone() : e.rhs->Clone();
      }
      if (l_upper && r_upper) {
        *changed = true;
        return ll <= lr ? e.lhs->Clone() : e.rhs->Clone();
      }
    }
  }
  return Recurse(e, &RangeMergeRule, changed);
}

std::unique_ptr<Expr> ContradictionRule(const Expr& e, bool* changed) {
  if (e.kind == Expr::Kind::kBinary && e.op == OpType::kAnd) {
    std::string cl, cr;
    OpType ol, orr;
    double ll, lr;
    if (MatchColLit(*e.lhs, &cl, &ol, &ll) && MatchColLit(*e.rhs, &cr, &orr, &lr) &&
        cl == cr) {
      double lo1, hi1, lo2, hi2;
      BoundsOf(ol, ll, &lo1, &hi1);
      BoundsOf(orr, lr, &lo2, &hi2);
      if (std::max(lo1, lo2) > std::min(hi1, hi2)) {
        *changed = true;
        return False();
      }
    }
  }
  return Recurse(e, &ContradictionRule, changed);
}

std::unique_ptr<Expr> TautologyRule(const Expr& e, bool* changed) {
  if (e.kind == Expr::Kind::kBinary && IsComparison(e.op) &&
      e.lhs->kind == Expr::Kind::kColumnRef &&
      e.rhs->kind == Expr::Kind::kColumnRef && e.lhs->table == e.rhs->table &&
      e.lhs->column == e.rhs->column) {
    *changed = true;
    switch (e.op) {
      case OpType::kEq: case OpType::kLe: case OpType::kGe: return True();
      default: return False();
    }
  }
  return Recurse(e, &TautologyRule, changed);
}

}  // namespace

std::unique_ptr<Expr> ApplyRewriteRule(const Expr& expr, RewriteRule rule,
                                       bool* changed) {
  bool local = false;
  std::unique_ptr<Expr> out;
  switch (rule) {
    case RewriteRule::kConstantFold: out = FoldRule(expr, &local); break;
    case RewriteRule::kDoubleNegation: out = DoubleNegationRule(expr, &local); break;
    case RewriteRule::kDeMorgan: out = DeMorganRule(expr, &local); break;
    case RewriteRule::kNotComparison: out = NotComparisonRule(expr, &local); break;
    case RewriteRule::kBoolAbsorb: out = BoolAbsorbRule(expr, &local); break;
    case RewriteRule::kRangeMerge: out = RangeMergeRule(expr, &local); break;
    case RewriteRule::kContradiction: out = ContradictionRule(expr, &local); break;
    case RewriteRule::kTautology: out = TautologyRule(expr, &local); break;
    case RewriteRule::kNumRules: out = expr.Clone(); break;
  }
  if (changed) *changed = local;
  return out;
}

size_t CountNodes(const Expr& e) {
  size_t n = 1;
  if (e.lhs) n += CountNodes(*e.lhs);
  if (e.rhs) n += CountNodes(*e.rhs);
  for (const auto& a : e.args) n += CountNodes(*a);
  return n;
}

double ExpressionCost(const Expr& e) {
  if (IsFalse(e)) return 0.1;  // whole scan can be skipped
  if (IsTrue(e)) return 0.5;   // filter dropped
  return static_cast<double>(CountNodes(e));
}

RewriteResult FixedOrderRewriter::Rewrite(const Expr& expr) {
  RewriteResult r;
  r.expr = expr.Clone();
  for (size_t pass = 0; pass < passes_; ++pass) {
    for (size_t i = 0; i < kNumRewriteRules; ++i) {
      bool changed = false;
      auto next = ApplyRewriteRule(*r.expr, static_cast<RewriteRule>(i), &changed);
      if (changed) {
        r.expr = std::move(next);
        r.applied.push_back(static_cast<RewriteRule>(i));
      }
    }
  }
  r.cost = ExpressionCost(*r.expr);
  return r;
}

namespace {

/// MCTS environment over rule sequences. States index a growing vector of
/// expression snapshots.
class RewriteEnv : public ml::MctsEnv {
 public:
  RewriteEnv(const Expr& root, size_t max_depth) : max_depth_(max_depth) {
    exprs_.push_back(root.Clone());
    depths_.push_back(0);
    base_cost_ = ExpressionCost(root);
  }

  State Root() const override { return 0; }

  std::vector<int> Actions(State s) override {
    if (depths_[s] >= max_depth_) return {};
    std::vector<int> out;
    for (size_t i = 0; i < kNumRewriteRules; ++i) out.push_back(static_cast<int>(i));
    return out;
  }

  State Step(State s, int action) override {
    bool changed = false;
    auto next =
        ApplyRewriteRule(*exprs_[s], static_cast<RewriteRule>(action), &changed);
    if (!changed) {
      // No-op transitions burn depth so rollouts terminate.
      exprs_.push_back(exprs_[s]->Clone());
    } else {
      exprs_.push_back(std::move(next));
    }
    depths_.push_back(depths_[s] + 1);
    return exprs_.size() - 1;
  }

  double TerminalReward(State s) override {
    double cost = ExpressionCost(*exprs_[s]);
    // Normalize: 1 when fully collapsed, ->0 as cost approaches base.
    return std::max(0.0, 1.0 - cost / std::max(base_cost_, 1.0));
  }

  const Expr& ExprAt(State s) const { return *exprs_[s]; }

 private:
  size_t max_depth_;
  std::vector<std::unique_ptr<Expr>> exprs_;
  std::vector<size_t> depths_;
  double base_cost_;
};

}  // namespace

RewriteResult MctsRewriter::Rewrite(const Expr& expr) {
  RewriteEnv env(expr, opts_.max_depth);
  ml::Mcts::Options mopts;
  mopts.iterations = opts_.iterations;
  mopts.seed = opts_.seed;
  ml::Mcts mcts(&env, mopts);
  double reward = 0.0;
  std::vector<int> actions = mcts.Search(&reward);

  RewriteResult r;
  r.expr = expr.Clone();
  for (int a : actions) {
    bool changed = false;
    auto next = ApplyRewriteRule(*r.expr, static_cast<RewriteRule>(a), &changed);
    if (changed) {
      r.expr = std::move(next);
      r.applied.push_back(static_cast<RewriteRule>(a));
    }
  }
  r.cost = ExpressionCost(*r.expr);
  return r;
}

std::unique_ptr<Expr> GenerateRedundantPredicate(Rng* rng, size_t depth) {
  // Leaves: col-op-lit over a small column set with planted contradictions /
  // redundant ranges / constant arithmetic.
  auto col = [&](const char* name) { return Expr::MakeColumn("", name); };
  auto lit = [&](double v) { return Expr::MakeLiteral(Value(v)); };
  const char* names[] = {"x", "y", "z"};

  std::function<std::unique_ptr<Expr>(size_t)> gen =
      [&](size_t d) -> std::unique_ptr<Expr> {
    if (d == 0) {
      switch (rng->Uniform(4)) {
        case 0: {  // contradiction seed: c > a AND c < b with a >= b
          double a = 50 + static_cast<double>(rng->Uniform(40));
          double b = static_cast<double>(rng->Uniform(40));
          const char* n = names[rng->Uniform(3)];
          return Expr::MakeBinary(
              OpType::kAnd, Expr::MakeBinary(OpType::kGt, col(n), lit(a)),
              Expr::MakeBinary(OpType::kLt, col(n), lit(b)));
        }
        case 1: {  // redundant range: c > a AND c > b
          double a = static_cast<double>(rng->Uniform(100));
          double b = static_cast<double>(rng->Uniform(100));
          const char* n = names[rng->Uniform(3)];
          return Expr::MakeBinary(
              OpType::kAnd, Expr::MakeBinary(OpType::kGt, col(n), lit(a)),
              Expr::MakeBinary(OpType::kGe, col(n), lit(b)));
        }
        case 2: {  // constant arithmetic comparison
          double a = static_cast<double>(rng->Uniform(10));
          double b = static_cast<double>(rng->Uniform(10));
          return Expr::MakeBinary(
              rng->Bernoulli(0.5) ? OpType::kLt : OpType::kGe,
              Expr::MakeBinary(OpType::kAdd, lit(a), lit(b)),
              lit(static_cast<double>(rng->Uniform(25))));
        }
        default: {  // plain predicate
          const char* n = names[rng->Uniform(3)];
          return Expr::MakeBinary(rng->Bernoulli(0.5) ? OpType::kLe : OpType::kGt,
                                  col(n),
                                  lit(static_cast<double>(rng->Uniform(100))));
        }
      }
    }
    auto l = gen(d - 1);
    auto r = gen(d - 1);
    auto node = Expr::MakeBinary(rng->Bernoulli(0.7) ? OpType::kAnd : OpType::kOr,
                                 std::move(l), std::move(r));
    // Wrap in NOT sometimes so DeMorgan/NOT-elimination are required before
    // the range rules can see the comparisons.
    if (rng->Bernoulli(0.4)) {
      node = Expr::MakeUnary(OpType::kNot, std::move(node));
    }
    if (rng->Bernoulli(0.2)) {
      node = Expr::MakeUnary(OpType::kNot,
                             Expr::MakeUnary(OpType::kNot, std::move(node)));
    }
    return node;
  };
  return gen(depth);
}

}  // namespace aidb::advisor
