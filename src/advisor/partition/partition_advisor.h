#pragma once

#include <string>
#include <vector>

#include "common/rng.h"

namespace aidb::advisor {

/// One table in the partitioning problem.
struct PartitionTable {
  std::string name;
  size_t num_columns = 4;
  double rows = 1e6;
  /// Per-column equality-filter frequency in the workload (normalized).
  std::vector<double> eq_filter_freq;
  /// Per-column value skew in [0,1): 0 uniform (balanced shards), near 1
  /// hot-key imbalance.
  std::vector<double> skew;
};

/// Join between two tables on specific columns, with workload frequency.
struct PartitionJoin {
  size_t table_a, table_b;
  size_t col_a, col_b;
  double freq = 1.0;
};

/// Problem instance: tables + join workload on a simulated shared-nothing
/// cluster of `num_nodes`.
struct PartitionProblem {
  std::vector<PartitionTable> tables;
  std::vector<PartitionJoin> joins;
  size_t num_nodes = 4;
};

/// Partition-key assignment: one column index per table.
using PartitionAssignment = std::vector<size_t>;

/// \brief Analytic cost of an assignment on the simulated cluster:
///  - equality filters on the partition key touch 1 node, others all nodes;
///  - co-partitioned joins are local, otherwise a full shuffle;
///  - skewed partition keys pay a load-imbalance factor.
/// This is the environment the Hilprecht-style RL advisor learns against.
class PartitionCostModel {
 public:
  explicit PartitionCostModel(const PartitionProblem* problem) : p_(problem) {}

  double Cost(const PartitionAssignment& assign) const;
  const PartitionProblem& problem() const { return *p_; }

 private:
  const PartitionProblem* p_;
};

/// Generates random partitioning problem instances.
PartitionProblem GeneratePartitionProblem(size_t num_tables, size_t num_nodes,
                                          uint64_t seed);

/// \brief Strategy interface for choosing partition keys.
class PartitionAdvisor {
 public:
  virtual ~PartitionAdvisor() = default;
  virtual PartitionAssignment Recommend(const PartitionCostModel& model) = 0;
  virtual std::string name() const = 0;
};

/// Classic heuristic: partition each table on its most-filtered column
/// (ignores joins and skew — the failure mode the survey calls out).
class FrequencyPartitionAdvisor : public PartitionAdvisor {
 public:
  PartitionAssignment Recommend(const PartitionCostModel& model) override;
  std::string name() const override { return "most_filtered"; }
};

/// Exhaustive optimum (small instances).
class ExhaustivePartitionAdvisor : public PartitionAdvisor {
 public:
  PartitionAssignment Recommend(const PartitionCostModel& model) override;
  std::string name() const override { return "exhaustive"; }
};

/// \brief Hilprecht-style RL advisor: episodes assign keys table-by-table,
/// Q-learning over (table, partial assignment) states with cost-delta reward.
class RlPartitionAdvisor : public PartitionAdvisor {
 public:
  struct Options {
    size_t episodes = 600;
    uint64_t seed = 42;
  };
  RlPartitionAdvisor() : RlPartitionAdvisor(Options()) {}
  explicit RlPartitionAdvisor(const Options& opts) : opts_(opts) {}
  PartitionAssignment Recommend(const PartitionCostModel& model) override;
  std::string name() const override { return "rl"; }

 private:
  Options opts_;
};

}  // namespace aidb::advisor
