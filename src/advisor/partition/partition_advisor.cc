#include "advisor/partition/partition_advisor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ml/qlearning.h"

namespace aidb::advisor {

double PartitionCostModel::Cost(const PartitionAssignment& assign) const {
  const PartitionProblem& p = *p_;
  double n = static_cast<double>(p.num_nodes);
  double cost = 0.0;

  for (size_t t = 0; t < p.tables.size(); ++t) {
    const PartitionTable& table = p.tables[t];
    size_t key = assign[t];
    // Load imbalance on the partition key: a skewed key concentrates rows on
    // one shard, so per-node work scales by the imbalance factor.
    double imbalance = 1.0 + 3.0 * table.skew[key];
    for (size_t c = 0; c < table.num_columns; ++c) {
      double freq = table.eq_filter_freq[c];
      // Equality filter on the partition key: routed to a single shard;
      // otherwise scatter-gather over all nodes.
      double nodes_touched = (c == key) ? 1.0 : n;
      cost += freq * nodes_touched * (table.rows / n) * imbalance * 1e-3;
    }
  }
  for (const auto& j : p.joins) {
    bool co_partitioned = assign[j.table_a] == j.col_a && assign[j.table_b] == j.col_b;
    double small = std::min(p.tables[j.table_a].rows, p.tables[j.table_b].rows);
    // Local join vs full repartition shuffle of the smaller side.
    double shuffle = co_partitioned ? 0.0 : small * 2.0;
    double local = small / n;
    cost += j.freq * (local + shuffle) * 1e-3;
  }
  return cost;
}

PartitionProblem GeneratePartitionProblem(size_t num_tables, size_t num_nodes,
                                          uint64_t seed) {
  Rng rng(seed);
  PartitionProblem p;
  p.num_nodes = num_nodes;
  for (size_t t = 0; t < num_tables; ++t) {
    PartitionTable table;
    table.name = "t" + std::to_string(t);
    table.num_columns = 4;
    table.rows = std::pow(10.0, 4 + rng.NextDouble() * 2);
    for (size_t c = 0; c < table.num_columns; ++c) {
      table.eq_filter_freq.push_back(rng.NextDouble());
      table.skew.push_back(rng.Bernoulli(0.4) ? rng.UniformDouble(0.5, 0.95)
                                              : rng.UniformDouble(0.0, 0.2));
    }
    // Make the most-filtered column skewed half the time — this is the trap
    // the frequency heuristic falls into.
    size_t hottest = 0;
    for (size_t c = 1; c < table.num_columns; ++c)
      if (table.eq_filter_freq[c] > table.eq_filter_freq[hottest]) hottest = c;
    if (rng.Bernoulli(0.5)) table.skew[hottest] = rng.UniformDouble(0.6, 0.95);
    p.tables.push_back(std::move(table));
  }
  // Join chain + random extra joins.
  for (size_t t = 0; t + 1 < num_tables; ++t) {
    PartitionJoin j;
    j.table_a = t;
    j.table_b = t + 1;
    j.col_a = rng.Uniform(4);
    j.col_b = rng.Uniform(4);
    j.freq = rng.UniformDouble(0.5, 3.0);
    p.joins.push_back(j);
  }
  return p;
}

PartitionAssignment FrequencyPartitionAdvisor::Recommend(
    const PartitionCostModel& model) {
  PartitionAssignment assign;
  for (const auto& table : model.problem().tables) {
    size_t best = 0;
    for (size_t c = 1; c < table.num_columns; ++c)
      if (table.eq_filter_freq[c] > table.eq_filter_freq[best]) best = c;
    assign.push_back(best);
  }
  return assign;
}

PartitionAssignment ExhaustivePartitionAdvisor::Recommend(
    const PartitionCostModel& model) {
  const auto& tables = model.problem().tables;
  PartitionAssignment cur(tables.size(), 0), best(tables.size(), 0);
  double best_cost = std::numeric_limits<double>::max();
  // Odometer enumeration over all assignments.
  for (;;) {
    double cost = model.Cost(cur);
    if (cost < best_cost) {
      best_cost = cost;
      best = cur;
    }
    size_t i = 0;
    for (; i < cur.size(); ++i) {
      if (++cur[i] < tables[i].num_columns) break;
      cur[i] = 0;
    }
    if (i == cur.size()) break;
  }
  return best;
}

PartitionAssignment RlPartitionAdvisor::Recommend(const PartitionCostModel& model) {
  const auto& tables = model.problem().tables;
  size_t max_cols = 0;
  for (const auto& t : tables) max_cols = std::max(max_cols, t.num_columns);

  ml::QLearner::Options qopts;
  qopts.epsilon = 0.4;
  qopts.epsilon_decay = 0.995;
  qopts.alpha = 0.3;
  qopts.seed = opts_.seed;
  ml::QLearner q(max_cols, qopts);

  PartitionAssignment best(tables.size(), 0);
  double best_cost = model.Cost(best);

  for (size_t ep = 0; ep < opts_.episodes; ++ep) {
    PartitionAssignment assign;
    uint64_t state = 0xfade0001;  // root
    std::vector<std::pair<uint64_t, size_t>> path;
    for (size_t t = 0; t < tables.size(); ++t) {
      size_t action = q.SelectAction(state);
      if (action >= tables[t].num_columns) action = action % tables[t].num_columns;
      assign.push_back(action);
      path.emplace_back(state, action);
      state = ml::HashCombine(state, action + 1);
    }
    double cost = model.Cost(assign);
    if (cost < best_cost) {
      best_cost = cost;
      best = assign;
    }
    // Terminal reward shared along the trajectory (episodic return).
    double reward = 1.0 / (1.0 + cost);
    for (size_t i = path.size(); i-- > 0;) {
      uint64_t next = i + 1 < path.size() ? path[i + 1].first : 0;
      q.Update(path[i].first, path[i].second, i + 1 == path.size() ? reward : 0.0,
               next, i + 1 == path.size());
    }
    q.EndEpisode();
  }
  return best;
}

}  // namespace aidb::advisor
