#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "txn/lock_manager.h"

namespace aidb::txn {

/// One transaction in the simulated OLTP workload.
struct TxnSpec {
  TxnId id = 0;
  std::vector<std::pair<KeyId, LockMode>> accesses;
  double duration = 1.0;  ///< virtual time units the locks are held
  double arrival = 0.0;
};

/// Generates hotspot OLTP transactions: keys drawn Zipfian over a keyspace,
/// a fraction of accesses are writes.
struct TxnWorkloadOptions {
  size_t num_txns = 2000;
  size_t keyspace = 10000;
  double zipf_theta = 0.9;       ///< key skew (hotspot contention driver)
  size_t accesses_per_txn = 8;
  double write_fraction = 0.5;
  double mean_duration = 1.0;
  double arrival_rate = 4.0;     ///< txns per virtual time unit
  uint64_t seed = 42;
};

std::vector<TxnSpec> GenerateTxnWorkload(const TxnWorkloadOptions& opts);

/// \brief Scheduler strategy: picks which queued transaction to admit next.
/// Implementations: FIFO (baseline) and the learned conflict-aware scheduler
/// in design/txn_sched.
class TxnScheduler {
 public:
  virtual ~TxnScheduler() = default;

  /// Chooses an index into `queue` to dispatch, or -1 to leave the slot idle
  /// this round. `running` lists in-flight transactions.
  virtual int PickNext(const std::deque<TxnSpec>& queue,
                       const std::vector<TxnSpec>& running,
                       const LockManager& locks) = 0;

  /// Outcome feedback for online learners: dispatched txn either committed
  /// or aborted on lock conflict.
  virtual void OnOutcome(const TxnSpec& /*txn*/,
                         const std::vector<TxnSpec>& /*running*/,
                         bool /*aborted*/) {}

  virtual std::string name() const = 0;
};

/// Admit in arrival order (classic baseline).
class FifoScheduler : public TxnScheduler {
 public:
  int PickNext(const std::deque<TxnSpec>& queue,
               const std::vector<TxnSpec>& /*running*/,
               const LockManager& /*locks*/) override {
    return queue.empty() ? -1 : 0;
  }
  std::string name() const override { return "fifo"; }
};

/// Results of one simulated run.
struct TxnSimResult {
  size_t committed = 0;
  size_t aborted = 0;  ///< abort events (aborted txns retry until they commit)
  double makespan = 0.0;
  double Throughput() const { return makespan > 0 ? committed / makespan : 0.0; }
  double AbortRate() const {
    size_t attempts = committed + aborted;
    return attempts ? static_cast<double>(aborted) / attempts : 0.0;
  }
};

/// \brief Discrete-event OLTP simulator: admits transactions from an arrival
/// queue into `concurrency` slots under conservative 2PL; lock conflicts
/// abort and requeue. The scheduler controls admission order — the lever the
/// learned transaction-management experiment (E11) exercises.
class TxnSimulator {
 public:
  struct Options {
    size_t concurrency = 8;
    /// Dispatch attempts per slot round; each failed attempt is an abort
    /// (wasted lock-acquisition work), so schedulers that skip doomed
    /// transactions save real work.
    size_t max_attempts_per_round = 8;
    size_t max_events = 2000000;  ///< runaway guard
    /// Meters the run's lock table (lock.acquires / lock.denials /
    /// lock.releases). Not owned; nullptr = unmetered.
    monitor::MetricsRegistry* metrics = nullptr;
  };

  TxnSimResult Run(std::vector<TxnSpec> txns, TxnScheduler* scheduler) {
    return Run(std::move(txns), scheduler, Options());
  }
  TxnSimResult Run(std::vector<TxnSpec> txns, TxnScheduler* scheduler,
                   const Options& opts);
};

}  // namespace aidb::txn
