#include "txn/transaction_manager.h"

#include <algorithm>

#include "storage/table.h"

namespace aidb::txn {

void TransactionManager::set_metrics(monitor::MetricsRegistry* metrics) {
  begins_ = metrics != nullptr ? metrics->GetCounter("txn.begins") : nullptr;
  commits_ = metrics != nullptr ? metrics->GetCounter("txn.commits") : nullptr;
  aborts_ = metrics != nullptr ? metrics->GetCounter("txn.aborts") : nullptr;
  conflicts_ =
      metrics != nullptr ? metrics->GetCounter("txn.conflicts") : nullptr;
  versions_retired_ =
      metrics != nullptr ? metrics->GetCounter("mvcc.versions_retired")
                         : nullptr;
  versions_freed_ =
      metrics != nullptr ? metrics->GetCounter("mvcc.versions_freed") : nullptr;
  read_pins_ =
      metrics != nullptr ? metrics->GetCounter("mvcc.read_pins") : nullptr;
  read_pin_overflows_ =
      metrics != nullptr ? metrics->GetCounter("mvcc.read_pin_overflows")
                         : nullptr;
  active_gauge_ = metrics != nullptr ? metrics->GetGauge("txn.active") : nullptr;
  std::lock_guard<std::mutex> lock(lock_mu_);
  locks_.set_metrics(metrics);
}

TxnId TransactionManager::Begin() {
  TxnId t = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  ActiveTxn at;
  // read_ts is fixed under mu_ so it can never trail a vacuum that already
  // computed a higher watermark (WatermarkTs also holds mu_ for active_).
  at.read_ts = last_commit_ts();
  // seq_cst RMW: continues the release sequence on next_serial_, so a serial
  // drawn at or after a Retire fence implies visibility of that unlink.
  at.serial = next_serial_.fetch_add(1, std::memory_order_seq_cst);
  active_.emplace(t, std::move(at));
  if (begins_ != nullptr) begins_->Add();
  if (active_gauge_ != nullptr) {
    active_gauge_->Set(static_cast<int64_t>(active_.size()));
  }
  return t;
}

bool TransactionManager::IsActive(TxnId t) const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.count(t) != 0;
}

Snapshot TransactionManager::SnapshotFor(TxnId t) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(t);
  if (it == active_.end()) return Snapshot{last_commit_ts(), kInvalidTxnId};
  return Snapshot{it->second.read_ts, t};
}

bool TransactionManager::TryRowLock(TxnId t, KeyId key) {
  std::lock_guard<std::mutex> lock(lock_mu_);
  return locks_.TryLock(t, key, LockMode::kExclusive);
}

void TransactionManager::RecordWrite(TxnId t, TxnWrite w) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(t);
  if (it != active_.end()) it->second.undo.push_back(std::move(w));
}

size_t TransactionManager::UndoSize(TxnId t) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(t);
  return it != active_.end() ? it->second.undo.size() : 0;
}

std::vector<TxnWrite> TransactionManager::TakeUndoFrom(TxnId t, size_t mark) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TxnWrite> out;
  auto it = active_.find(t);
  if (it == active_.end()) return out;
  auto& undo = it->second.undo;
  if (mark >= undo.size()) return out;
  out.assign(undo.rbegin(), undo.rend() - static_cast<ptrdiff_t>(mark));
  undo.resize(mark);
  return out;
}

std::vector<TxnWrite> TransactionManager::TakeUndoAll(TxnId t) {
  return TakeUndoFrom(t, 0);
}

Result<uint64_t> TransactionManager::Commit(
    TxnId t, const std::function<Status(uint64_t)>& wal_hook) {
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  ActiveTxn* at = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = active_.find(t);
    if (it == active_.end()) {
      return Status::NotFound("transaction " + std::to_string(t) +
                              " is not active");
    }
    at = &it->second;  // node-based map: stable across inserts by others
  }
  uint64_t cts = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (wal_hook) {
    // Durability first: if the commit record cannot be appended, nothing has
    // been stamped and the caller rolls the transaction back intact.
    AIDB_RETURN_NOT_OK(wal_hook(cts));
  }
  for (const TxnWrite& w : at->undo) {
    w.table->StampCommit(w, cts);
  }
  // Publish: snapshots taken from here on see every stamp above. seq_cst, not
  // just release: the epoch-pin validate loop and WatermarkTs reason about a
  // single total order over this clock's stores and loads.
  last_commit_ts_.store(cts, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(lock_mu_);
    locks_.ReleaseAll(t);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.erase(t);
    if (active_gauge_ != nullptr) {
      active_gauge_->Set(static_cast<int64_t>(active_.size()));
    }
  }
  if (commits_ != nullptr) commits_->Add();
  return cts;
}

void TransactionManager::PinId(TxnId t) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(t);
  if (it != active_.end()) it->second.pinned = true;
}

void TransactionManager::NoteOpsLogged(TxnId t) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(t);
  if (it != active_.end()) {
    it->second.pinned = true;
    it->second.ops_logged = true;
  }
}

bool TransactionManager::OpsLogged(TxnId t) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(t);
  return it != active_.end() && it->second.ops_logged;
}

void TransactionManager::Forget(TxnId t) {
  {
    std::lock_guard<std::mutex> lock(lock_mu_);
    locks_.ReleaseAll(t);
  }
  bool recycle = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = active_.find(t);
    if (it != active_.end()) {
      recycle = !it->second.pinned;
      active_.erase(it);
    }
    if (active_gauge_ != nullptr) {
      active_gauge_->Set(static_cast<int64_t>(active_.size()));
    }
  }
  if (recycle) {
    // Return the id if nothing was allocated after it. Failure just wastes
    // one id (safe: nothing references it) — but in serial histories the
    // exchange always succeeds, so statements that never reached the WAL
    // leave no gap in the committed id sequence.
    TxnId expected = t + 1;
    next_txn_id_.compare_exchange_strong(expected, t,
                                         std::memory_order_relaxed);
  }
}

std::vector<TxnId> TransactionManager::TxnsTouching(uint64_t table_uid) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TxnId> out;
  for (const auto& [id, at] : active_) {
    for (const TxnWrite& w : at.undo) {
      if (w.table_uid == table_uid) {
        out.push_back(id);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// Each thread probes from its own shard so unrelated pinners touch disjoint
/// cache lines; shards are assigned round-robin at first pin per thread.
size_t PinProbeStart() {
  static std::atomic<size_t> next_shard{0};
  thread_local size_t shard =
      next_shard.fetch_add(1, std::memory_order_relaxed);
  constexpr size_t kShards = TransactionManager::kReadSlots /
                             TransactionManager::kReadSlotsPerShard;
  return (shard % kShards) * TransactionManager::kReadSlotsPerShard;
}

}  // namespace

TransactionManager::PinnedRead TransactionManager::PinLatestRead() {
  PinnedRead pin;
  const size_t start = PinProbeStart();
  for (size_t probe = 0; probe < kReadSlots; ++probe) {
    const size_t idx = (start + probe) % kReadSlots;
    ReadSlot& s = read_slots_[idx];
    uint64_t expect = kSlotFree;
    if (!s.serial.compare_exchange_strong(expect, kSlotClaiming,
                                          std::memory_order_seq_cst)) {
      continue;  // taken; probe the next slot
    }
    // Slot claimed. kSlotClaiming blocks FreeRetired until the real serial
    // lands, so the fence scan can never miss this pinner's serial.
    pin.slot = static_cast<int32_t>(idx);
    pin.serial = next_serial_.fetch_add(1, std::memory_order_seq_cst);
    s.serial.store(pin.serial, std::memory_order_seq_cst);
    // Hazard-pointer publish of the read_ts: store a candidate, re-check the
    // commit clock, repeat until they agree. WatermarkTs loads the clock
    // before scanning slots, so once a candidate survives the re-check, any
    // vacuum that could compute a higher watermark has already seen it.
    uint64_t ts = last_commit_ts_.load(std::memory_order_seq_cst);
    for (;;) {
      s.ts.store(ts, std::memory_order_seq_cst);
      uint64_t now = last_commit_ts_.load(std::memory_order_seq_cst);
      if (now == ts) break;
      ts = now;
    }
    pin.read_ts = ts;
    if (read_pins_ != nullptr) read_pins_->Add();
    return pin;
  }
  // Every slot taken (more than kReadSlots concurrent pinners): fall back to
  // the mutex-guarded overflow map — correctness never depends on a free slot.
  std::lock_guard<std::mutex> lock(mu_);
  pin.slot = -1;
  pin.read_ts = last_commit_ts();
  pin.serial = next_serial_.fetch_add(1, std::memory_order_seq_cst);
  overflow_reads_.emplace(pin.serial, pin.read_ts);
  if (read_pins_ != nullptr) read_pins_->Add();
  if (read_pin_overflows_ != nullptr) read_pin_overflows_->Add();
  return pin;
}

void TransactionManager::Unpin(const PinnedRead& pin) {
  if (pin.slot >= 0) {
    ReadSlot& s = read_slots_[static_cast<size_t>(pin.slot)];
    s.ts.store(kSlotFree, std::memory_order_seq_cst);
    // serial is the claim token: releasing it LAST keeps the ts reset above
    // ordered before any re-claim of this slot.
    s.serial.store(kSlotFree, std::memory_order_seq_cst);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  overflow_reads_.erase(pin.serial);
}

uint64_t TransactionManager::WatermarkTs() const {
  // Clock FIRST, then the slot scan (all seq_cst). If a pinner validated a
  // read_ts R below the value loaded here, its slot store of R precedes this
  // scan in the seq_cst order, so the scan sees R; otherwise the pinner's
  // validated read_ts is at or above the loaded value. Either way the result
  // never exceeds any pinned read_ts.
  uint64_t wm = last_commit_ts_.load(std::memory_order_seq_cst);
  for (const ReadSlot& s : read_slots_) {
    wm = std::min(wm, s.ts.load(std::memory_order_seq_cst));  // free = ~0
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, at] : active_) {
    wm = std::min(wm, at.read_ts);
  }
  for (const auto& [serial, ts] : overflow_reads_) {
    wm = std::min(wm, ts);
  }
  return wm;
}

uint64_t TransactionManager::MinActiveSerialLocked() const {
  uint64_t min_serial = next_serial_.load(std::memory_order_seq_cst);
  for (const ReadSlot& s : read_slots_) {
    // kSlotClaiming (0) undercuts every fence, deferring all frees to a later
    // round; the claim window is a handful of instructions, so this never
    // starves reclamation. kSlotFree (~0) is a no-op in the min.
    min_serial = std::min(min_serial, s.serial.load(std::memory_order_seq_cst));
  }
  if (!overflow_reads_.empty()) {
    min_serial = std::min(min_serial, overflow_reads_.begin()->first);
  }
  for (const auto& [id, at] : active_) {
    min_serial = std::min(min_serial, at.serial);
  }
  return min_serial;
}

void TransactionManager::Retire(aidb::Version* v) {
  // fetch_add(0): an RMW, not a plain load, so it heads a release sequence on
  // next_serial_ — any reader whose serial RMW comes later in that sequence
  // synchronizes with it and therefore sees the unlink stores the retiring
  // thread performed just before this call. Readers with serials below the
  // fence are instead held in FreeRetired by their slot/txn registration.
  uint64_t fence = next_serial_.fetch_add(0, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(mu_);
  retired_.push_back({v, fence, {}});
  if (versions_retired_ != nullptr) versions_retired_->Add();
}

void TransactionManager::RetireDisposal(std::function<void()> dispose) {
  // Same fence protocol as Retire: the RMW publishes whatever unlink/unmap
  // stores preceded this call to every later-registered reader.
  uint64_t fence = next_serial_.fetch_add(0, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(mu_);
  retired_.push_back({nullptr, fence, std::move(dispose)});
}

size_t TransactionManager::FreeRetired() {
  std::vector<Retired> to_free;
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t min_serial = MinActiveSerialLocked();
    while (!retired_.empty() && retired_.front().fence <= min_serial) {
      to_free.push_back(std::move(retired_.front()));
      retired_.pop_front();
    }
  }
  size_t versions = 0;
  for (Retired& r : to_free) {
    if (r.dispose) r.dispose();
    if (r.v != nullptr) {
      delete r.v;
      ++versions;
    }
  }
  if (versions_freed_ != nullptr && versions != 0) {
    versions_freed_->Add(versions);
  }
  return to_free.size();
}

size_t TransactionManager::RetiredCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_.size();
}

size_t TransactionManager::NumActive() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.size();
}

bool TransactionManager::HasActiveWriters() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, at] : active_) {
    if (!at.undo.empty()) return true;
  }
  return false;
}

std::vector<TxnInfo> TransactionManager::ListActive() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TxnInfo> out;
  out.reserve(active_.size());
  for (const auto& [id, at] : active_) {
    out.push_back({id, at.read_ts, at.undo.size()});
  }
  std::sort(out.begin(), out.end(),
            [](const TxnInfo& a, const TxnInfo& b) { return a.id < b.id; });
  return out;
}

}  // namespace aidb::txn
