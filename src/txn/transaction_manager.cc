#include "txn/transaction_manager.h"

#include <algorithm>

#include "storage/table.h"

namespace aidb::txn {

void TransactionManager::set_metrics(monitor::MetricsRegistry* metrics) {
  begins_ = metrics != nullptr ? metrics->GetCounter("txn.begins") : nullptr;
  commits_ = metrics != nullptr ? metrics->GetCounter("txn.commits") : nullptr;
  aborts_ = metrics != nullptr ? metrics->GetCounter("txn.aborts") : nullptr;
  conflicts_ =
      metrics != nullptr ? metrics->GetCounter("txn.conflicts") : nullptr;
  versions_retired_ =
      metrics != nullptr ? metrics->GetCounter("mvcc.versions_retired")
                         : nullptr;
  versions_freed_ =
      metrics != nullptr ? metrics->GetCounter("mvcc.versions_freed") : nullptr;
  active_gauge_ = metrics != nullptr ? metrics->GetGauge("txn.active") : nullptr;
  std::lock_guard<std::mutex> lock(lock_mu_);
  locks_.set_metrics(metrics);
}

TxnId TransactionManager::Begin() {
  TxnId t = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  ActiveTxn at;
  // read_ts is fixed under mu_ so it can never trail a vacuum that already
  // computed a higher watermark (WatermarkTs also holds mu_).
  at.read_ts = last_commit_ts();
  at.serial = next_serial_++;
  active_.emplace(t, std::move(at));
  if (begins_ != nullptr) begins_->Add();
  if (active_gauge_ != nullptr) {
    active_gauge_->Set(static_cast<int64_t>(active_.size()));
  }
  return t;
}

bool TransactionManager::IsActive(TxnId t) const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.count(t) != 0;
}

Snapshot TransactionManager::SnapshotFor(TxnId t) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(t);
  if (it == active_.end()) return Snapshot{last_commit_ts(), kInvalidTxnId};
  return Snapshot{it->second.read_ts, t};
}

bool TransactionManager::TryRowLock(TxnId t, KeyId key) {
  std::lock_guard<std::mutex> lock(lock_mu_);
  return locks_.TryLock(t, key, LockMode::kExclusive);
}

void TransactionManager::RecordWrite(TxnId t, TxnWrite w) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(t);
  if (it != active_.end()) it->second.undo.push_back(std::move(w));
}

size_t TransactionManager::UndoSize(TxnId t) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(t);
  return it != active_.end() ? it->second.undo.size() : 0;
}

std::vector<TxnWrite> TransactionManager::TakeUndoFrom(TxnId t, size_t mark) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TxnWrite> out;
  auto it = active_.find(t);
  if (it == active_.end()) return out;
  auto& undo = it->second.undo;
  if (mark >= undo.size()) return out;
  out.assign(undo.rbegin(), undo.rend() - static_cast<ptrdiff_t>(mark));
  undo.resize(mark);
  return out;
}

std::vector<TxnWrite> TransactionManager::TakeUndoAll(TxnId t) {
  return TakeUndoFrom(t, 0);
}

Result<uint64_t> TransactionManager::Commit(
    TxnId t, const std::function<Status(uint64_t)>& wal_hook) {
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  ActiveTxn* at = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = active_.find(t);
    if (it == active_.end()) {
      return Status::NotFound("transaction " + std::to_string(t) +
                              " is not active");
    }
    at = &it->second;  // node-based map: stable across inserts by others
  }
  uint64_t cts = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (wal_hook) {
    // Durability first: if the commit record cannot be appended, nothing has
    // been stamped and the caller rolls the transaction back intact.
    AIDB_RETURN_NOT_OK(wal_hook(cts));
  }
  for (const TxnWrite& w : at->undo) {
    w.table->StampCommit(w, cts);
  }
  // Publish: snapshots taken from here on see every stamp above.
  last_commit_ts_.store(cts, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(lock_mu_);
    locks_.ReleaseAll(t);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.erase(t);
    if (active_gauge_ != nullptr) {
      active_gauge_->Set(static_cast<int64_t>(active_.size()));
    }
  }
  if (commits_ != nullptr) commits_->Add();
  return cts;
}

void TransactionManager::PinId(TxnId t) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(t);
  if (it != active_.end()) it->second.pinned = true;
}

void TransactionManager::NoteOpsLogged(TxnId t) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(t);
  if (it != active_.end()) {
    it->second.pinned = true;
    it->second.ops_logged = true;
  }
}

bool TransactionManager::OpsLogged(TxnId t) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(t);
  return it != active_.end() && it->second.ops_logged;
}

void TransactionManager::Forget(TxnId t) {
  {
    std::lock_guard<std::mutex> lock(lock_mu_);
    locks_.ReleaseAll(t);
  }
  bool recycle = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = active_.find(t);
    if (it != active_.end()) {
      recycle = !it->second.pinned;
      active_.erase(it);
    }
    if (active_gauge_ != nullptr) {
      active_gauge_->Set(static_cast<int64_t>(active_.size()));
    }
  }
  if (recycle) {
    // Return the id if nothing was allocated after it. Failure just wastes
    // one id (safe: nothing references it) — but in serial histories the
    // exchange always succeeds, so statements that never reached the WAL
    // leave no gap in the committed id sequence.
    TxnId expected = t + 1;
    next_txn_id_.compare_exchange_strong(expected, t,
                                         std::memory_order_relaxed);
  }
}

std::vector<TxnId> TransactionManager::TxnsTouching(uint64_t table_uid) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TxnId> out;
  for (const auto& [id, at] : active_) {
    for (const TxnWrite& w : at.undo) {
      if (w.table_uid == table_uid) {
        out.push_back(id);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t TransactionManager::BeginRead(uint64_t read_ts) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t serial = next_serial_++;
  active_reads_.emplace(serial, read_ts);
  return serial;
}

uint64_t TransactionManager::BeginLatestRead(uint64_t* read_ts) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t ts = last_commit_ts();
  if (read_ts != nullptr) *read_ts = ts;
  uint64_t serial = next_serial_++;
  active_reads_.emplace(serial, ts);
  return serial;
}

void TransactionManager::EndRead(uint64_t serial) {
  std::lock_guard<std::mutex> lock(mu_);
  active_reads_.erase(serial);
}

uint64_t TransactionManager::WatermarkTs() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t wm = last_commit_ts();
  for (const auto& [id, at] : active_) {
    wm = std::min(wm, at.read_ts);
  }
  for (const auto& [serial, ts] : active_reads_) {
    wm = std::min(wm, ts);
  }
  return wm;
}

uint64_t TransactionManager::MinActiveSerial() const {
  uint64_t min_serial = next_serial_;
  if (!active_reads_.empty()) {
    min_serial = std::min(min_serial, active_reads_.begin()->first);
  }
  for (const auto& [id, at] : active_) {
    min_serial = std::min(min_serial, at.serial);
  }
  return min_serial;
}

void TransactionManager::Retire(aidb::Version* v) {
  std::lock_guard<std::mutex> lock(mu_);
  retired_.push_back({v, next_serial_});
  if (versions_retired_ != nullptr) versions_retired_->Add();
}

size_t TransactionManager::FreeRetired() {
  std::vector<aidb::Version*> to_free;
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t min_serial = MinActiveSerial();
    while (!retired_.empty() && retired_.front().fence <= min_serial) {
      to_free.push_back(retired_.front().v);
      retired_.pop_front();
    }
  }
  for (aidb::Version* v : to_free) delete v;
  if (versions_freed_ != nullptr && !to_free.empty()) {
    versions_freed_->Add(to_free.size());
  }
  return to_free.size();
}

size_t TransactionManager::RetiredCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_.size();
}

size_t TransactionManager::NumActive() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.size();
}

bool TransactionManager::HasActiveWriters() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, at] : active_) {
    if (!at.undo.empty()) return true;
  }
  return false;
}

std::vector<TxnInfo> TransactionManager::ListActive() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TxnInfo> out;
  out.reserve(active_.size());
  for (const auto& [id, at] : active_) {
    out.push_back({id, at.read_ts, at.undo.size()});
  }
  std::sort(out.begin(), out.end(),
            [](const TxnInfo& a, const TxnInfo& b) { return a.id < b.id; });
  return out;
}

}  // namespace aidb::txn
