#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "monitor/metrics.h"
#include "txn/lock_manager.h"
#include "txn/types.h"

namespace aidb::txn {

/// Hash of (table uid, row id) into the lock-manager key space. A collision
/// only ever causes a spurious first-committer-wins abort, never a missed
/// conflict (the timestamp checks in Table::UpdateTxn/DeleteTxn are the
/// ground truth; the lock is the fast no-wait gate).
inline KeyId RowLockKey(uint64_t table_uid, uint64_t row) {
  uint64_t h = table_uid * 0x9e3779b97f4a7c15ull;
  h ^= row + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// One row of the `aidb_transactions` system view.
struct TxnInfo {
  TxnId id = kInvalidTxnId;
  uint64_t read_ts = 0;
  size_t writes = 0;
};

/// \brief MVCC transaction manager: monotonic begin/commit timestamps,
/// snapshot handout, per-transaction undo logs, first-committer-wins row
/// locks, and serial-fenced garbage reclamation of unlinked versions.
///
/// Timestamp protocol: the commit clock starts at kBootstrapTs; every commit
/// takes the next tick under commit_mu_, stamps its undo log, appends its
/// WAL commit record (still under commit_mu_, so WAL commit order equals
/// commit-timestamp order), and only then release-publishes last_commit_ts_.
/// A snapshot's read_ts is an acquire load of last_commit_ts_, which
/// guarantees every version stamp of every commit at or before read_ts is
/// visible to the snapshot holder.
///
/// Reclamation: rollback and vacuum unlink version nodes from chains that
/// lock-free readers may still be walking. Unlinked nodes are retired with a
/// fence = the current read-serial counter; they are freed only once every
/// reader registered before the fence has finished (MinActiveSerial() >
/// fence). Every statement execution registers a read serial around its
/// chain-walking window.
class TransactionManager {
 public:
  TransactionManager() = default;
  ~TransactionManager() {
    for (const Retired& r : retired_) delete r.v;
  }

  /// Wires txn.* counters/gauges; also forwards to the wrapped LockManager.
  /// Pointers are cached — the registry must outlive this object.
  void set_metrics(monitor::MetricsRegistry* metrics);

  // --- Transaction id allocation -------------------------------------------
  // One allocator for every statement (recovery seeds it): WAL records are
  // tagged with these ids, and recovery's replay keying depends on them
  // being unique across the log.

  void SeedNextTxnId(TxnId next) {
    next_txn_id_.store(next, std::memory_order_relaxed);
  }
  TxnId next_txn_id() const {
    return next_txn_id_.load(std::memory_order_relaxed);
  }
  /// Hands out an id without registering an active transaction — for
  /// statements that log + commit atomically outside the MVCC write path
  /// (DDL, model training).
  TxnId AllocateTxnId() {
    return next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- Lifecycle -----------------------------------------------------------

  /// Starts a transaction: allocates its id and fixes its snapshot at the
  /// current last_commit_ts.
  TxnId Begin();

  bool IsActive(TxnId t) const;
  /// The transaction's snapshot; a latest-committed snapshot when `t` is not
  /// active (kInvalidTxnId included).
  Snapshot SnapshotFor(TxnId t) const;
  Snapshot LatestSnapshot() const {
    return Snapshot{last_commit_ts(), kInvalidTxnId};
  }
  uint64_t last_commit_ts() const {
    return last_commit_ts_.load(std::memory_order_acquire);
  }

  // --- Writes --------------------------------------------------------------

  /// No-wait exclusive row lock (re-entrant). False → write-write conflict;
  /// the caller aborts the transaction.
  bool TryRowLock(TxnId t, KeyId key);

  /// Appends an undo entry to the transaction's log.
  void RecordWrite(TxnId t, TxnWrite w);

  /// Current undo-log length — the statement-rollback high-water mark.
  size_t UndoSize(TxnId t) const;

  /// Removes and returns undo entries from `mark` on, newest first
  /// (statement-level rollback; the transaction stays active).
  std::vector<TxnWrite> TakeUndoFrom(TxnId t, size_t mark);

  /// Removes and returns the whole undo log, newest first. The transaction
  /// stays registered until Forget() so its snapshot keeps protecting the
  /// versions being rolled back.
  std::vector<TxnWrite> TakeUndoAll(TxnId t);

  // --- Commit / abort ------------------------------------------------------

  /// Commits `t`: allocates the commit timestamp, stamps every undo entry's
  /// versions, runs `wal_hook(cts)` (nullable) before publishing — all under
  /// the commit lock — then publishes last_commit_ts, releases row locks and
  /// forgets the transaction. Returns the commit timestamp.
  ///
  /// If `wal_hook` fails nothing has been stamped yet: the error is returned
  /// and the transaction is left active for the caller to roll back.
  Result<uint64_t> Commit(TxnId t,
                          const std::function<Status(uint64_t)>& wal_hook);

  /// Marks `t`'s id as referenced by a durable WAL record (a DDL commit
  /// logged under it, or an abort record). Forget() then retires the id
  /// permanently instead of recycling it.
  void PinId(TxnId t);

  /// Records that kTxnOp records were appended under `t` (also pins the id).
  /// An abort must then log kTxnAbort so recovery discards those ops.
  void NoteOpsLogged(TxnId t);
  bool OpsLogged(TxnId t) const;

  /// Releases row locks and erases transaction state. The caller must have
  /// undone (or committed) every write first. If no WAL record ever
  /// referenced the id (not pinned) and it is still the most recently
  /// allocated one, the id is recycled: statements that neither log nor
  /// abort durably consume no id, which keeps committed WAL ids dense in
  /// serial histories (recovery and the crash-recovery oracle count
  /// committed statements as max-id).
  void Forget(TxnId t);

  /// Ids of active transactions whose undo log touches `table_uid` (DDL uses
  /// this to roll back writers of a table it is about to drop/reindex).
  std::vector<TxnId> TxnsTouching(uint64_t table_uid) const;

  // --- Read registration & garbage collection ------------------------------

  /// Registers a chain-walking window; `read_ts` caps what vacuum may
  /// reclaim while the window is open. Returns the serial to pass EndRead.
  /// `read_ts` must already be watermark-protected — i.e. the read_ts of a
  /// still-active transaction. For latest-committed reads use
  /// BeginLatestRead, which fixes the timestamp under the registry lock
  /// (fixing it earlier would race a concurrent commit + vacuum).
  uint64_t BeginRead(uint64_t read_ts);
  /// Atomically picks read_ts = last_commit_ts and registers it.
  uint64_t BeginLatestRead(uint64_t* read_ts);
  void EndRead(uint64_t serial);

  /// Oldest read_ts any live snapshot (open transaction or registered read)
  /// may use; last_commit_ts when none are live. Versions dead at or before
  /// the watermark are unreachable.
  uint64_t WatermarkTs() const;

  /// Takes ownership of an unlinked version node; it is freed by a later
  /// FreeRetired() once all possible concurrent walkers have drained.
  void Retire(aidb::Version* v);

  /// Frees retired nodes whose fence has drained. Returns the number freed.
  size_t FreeRetired();

  size_t RetiredCount() const;
  size_t NumActive() const;
  /// True while any active transaction has undo entries (checkpoints defer:
  /// a fuzzy snapshot must not split a transaction's ops from its commit).
  bool HasActiveWriters() const;
  std::vector<TxnInfo> ListActive() const;

  /// Metric hooks for the abort paths the manager itself cannot see
  /// (the Database orchestrates rollback because index unwind needs the
  /// catalog).
  void NoteConflict() {
    if (conflicts_ != nullptr) conflicts_->Add();
  }
  void NoteAbort() {
    if (aborts_ != nullptr) aborts_->Add();
  }

 private:
  uint64_t MinActiveSerial() const;  // callers hold mu_

  mutable std::mutex mu_;  ///< active txns, read registry, retire list
  std::mutex commit_mu_;   ///< serializes commit stamping + WAL commit append
  std::mutex lock_mu_;     ///< LockManager is not internally synchronized
  LockManager locks_;

  std::atomic<uint64_t> clock_{kBootstrapTs};
  std::atomic<uint64_t> last_commit_ts_{kBootstrapTs};
  std::atomic<TxnId> next_txn_id_{1};

  struct ActiveTxn {
    uint64_t read_ts = 0;
    uint64_t serial = 0;  ///< read-serial held for the txn's whole lifetime
    bool pinned = false;      ///< a WAL record references this id; no recycle
    bool ops_logged = false;  ///< unresolved kTxnOp records exist in the WAL
    std::vector<TxnWrite> undo;
  };
  std::unordered_map<TxnId, ActiveTxn> active_;

  uint64_t next_serial_ = 1;
  std::map<uint64_t, uint64_t> active_reads_;  ///< serial -> read_ts

  struct Retired {
    aidb::Version* v;
    uint64_t fence;
  };
  std::deque<Retired> retired_;

  monitor::Counter* begins_ = nullptr;
  monitor::Counter* commits_ = nullptr;
  monitor::Counter* aborts_ = nullptr;
  monitor::Counter* conflicts_ = nullptr;
  monitor::Counter* versions_retired_ = nullptr;
  monitor::Counter* versions_freed_ = nullptr;
  monitor::Gauge* active_gauge_ = nullptr;
};

}  // namespace aidb::txn
