#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "monitor/metrics.h"
#include "txn/lock_manager.h"
#include "txn/types.h"

namespace aidb::txn {

/// Hash of (table uid, row id) into the lock-manager key space. A collision
/// only ever causes a spurious first-committer-wins abort, never a missed
/// conflict (the timestamp checks in Table::UpdateTxn/DeleteTxn are the
/// ground truth; the lock is the fast no-wait gate).
inline KeyId RowLockKey(uint64_t table_uid, uint64_t row) {
  uint64_t h = table_uid * 0x9e3779b97f4a7c15ull;
  h ^= row + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

/// One row of the `aidb_transactions` system view.
struct TxnInfo {
  TxnId id = kInvalidTxnId;
  uint64_t read_ts = 0;
  size_t writes = 0;
};

/// \brief MVCC transaction manager: monotonic begin/commit timestamps,
/// snapshot handout, per-transaction undo logs, first-committer-wins row
/// locks, and serial-fenced garbage reclamation of unlinked versions.
///
/// Timestamp protocol: the commit clock starts at kBootstrapTs; every commit
/// takes the next tick under commit_mu_, stamps its undo log, appends its
/// WAL commit record (still under commit_mu_, so WAL commit order equals
/// commit-timestamp order), and only then publishes last_commit_ts_ (a
/// seq_cst store — the epoch-slot watermark proof below needs the clock's
/// loads and stores in the single total order). A snapshot's read_ts is a
/// load of last_commit_ts_, which guarantees every version stamp of every
/// commit at or before read_ts is visible to the snapshot holder.
///
/// Read registration: autocommit readers pin a latest-committed snapshot
/// through a fixed array of cache-line-sized epoch slots — claim one slot
/// with a single CAS, publish the read_ts with a hazard-pointer validate
/// loop against the commit clock, release with two plain stores. No mutex
/// is taken anywhere on that path. WatermarkTs() loads the clock FIRST and
/// then scans the slots (all seq_cst): if a reader validated a read_ts R
/// below the loaded clock value, its slot store of R is already ordered
/// before the scan, so the scan sees it; otherwise the reader's validated
/// read_ts is at or above the loaded clock — either way the watermark never
/// exceeds a pinned reader's read_ts. A full ring (more than kReadSlots
/// concurrent pinners) falls back to the mutex-guarded overflow map, which
/// is the pre-epoch registration path.
///
/// Reclamation: rollback and vacuum unlink version nodes from chains that
/// lock-free readers may still be walking. Unlinked nodes are retired with a
/// fence drawn from next_serial_ by a seq_cst RMW; they are freed only once
/// every reader registered before the fence has finished. A reader whose
/// serial is at or above the fence performed its serial RMW after the
/// fence's RMW in the release sequence on next_serial_, so the unlink stores
/// (sequenced before Retire) are visible to its chain walk — it can never
/// reach a retired node. A reader below the fence is still published in its
/// slot (the slot is claimed, with serial 0 as a claim-in-progress sentinel
/// that conservatively blocks all frees, before the serial is drawn), so
/// FreeRetired's slot scan blocks the free.
class TransactionManager {
 public:
  /// Epoch-slot capacity: pinners beyond this fall back to the mutex path.
  static constexpr size_t kReadSlots = 64;
  /// Slots per shard: a pinner probes its shard first, then the whole ring,
  /// so unrelated threads rarely contend on one cache line.
  static constexpr size_t kReadSlotsPerShard = 4;
  static constexpr uint64_t kSlotFree = ~0ull;     ///< min-scans skip it
  static constexpr uint64_t kSlotClaiming = 0;     ///< blocks every free

  /// A registered latest-committed read window (see PinLatestRead). POD so
  /// the RAII wrapper below stays trivially movable.
  struct PinnedRead {
    uint64_t read_ts = 0;
    uint64_t serial = 0;
    int32_t slot = -1;  ///< epoch slot index; -1 = overflow map entry
  };

  TransactionManager() = default;
  ~TransactionManager() {
    for (const Retired& r : retired_) {
      if (r.dispose) r.dispose();
      delete r.v;
    }
  }

  /// Wires txn.* counters/gauges; also forwards to the wrapped LockManager.
  /// Pointers are cached — the registry must outlive this object.
  void set_metrics(monitor::MetricsRegistry* metrics);

  // --- Transaction id allocation -------------------------------------------
  // One allocator for every statement (recovery seeds it): WAL records are
  // tagged with these ids, and recovery's replay keying depends on them
  // being unique across the log.

  void SeedNextTxnId(TxnId next) {
    next_txn_id_.store(next, std::memory_order_relaxed);
  }
  TxnId next_txn_id() const {
    return next_txn_id_.load(std::memory_order_relaxed);
  }
  /// Hands out an id without registering an active transaction — for
  /// statements that log + commit atomically outside the MVCC write path
  /// (DDL, model training).
  TxnId AllocateTxnId() {
    return next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- Lifecycle -----------------------------------------------------------

  /// Starts a transaction: allocates its id and fixes its snapshot at the
  /// current last_commit_ts.
  TxnId Begin();

  bool IsActive(TxnId t) const;
  /// The transaction's snapshot; a latest-committed snapshot when `t` is not
  /// active (kInvalidTxnId included). Note an inactive-txn fallback snapshot
  /// is NOT watermark-registered — executor read paths must instead pin one
  /// via PinLatestRead/ReadPin, or run inside an active transaction.
  Snapshot SnapshotFor(TxnId t) const;
  uint64_t last_commit_ts() const {
    return last_commit_ts_.load(std::memory_order_acquire);
  }

  // --- Writes --------------------------------------------------------------

  /// No-wait exclusive row lock (re-entrant). False → write-write conflict;
  /// the caller aborts the transaction.
  bool TryRowLock(TxnId t, KeyId key);

  /// Appends an undo entry to the transaction's log.
  void RecordWrite(TxnId t, TxnWrite w);

  /// Current undo-log length — the statement-rollback high-water mark.
  size_t UndoSize(TxnId t) const;

  /// Removes and returns undo entries from `mark` on, newest first
  /// (statement-level rollback; the transaction stays active).
  std::vector<TxnWrite> TakeUndoFrom(TxnId t, size_t mark);

  /// Removes and returns the whole undo log, newest first. The transaction
  /// stays registered until Forget() so its snapshot keeps protecting the
  /// versions being rolled back.
  std::vector<TxnWrite> TakeUndoAll(TxnId t);

  // --- Commit / abort ------------------------------------------------------

  /// Commits `t`: allocates the commit timestamp, stamps every undo entry's
  /// versions, runs `wal_hook(cts)` (nullable) before publishing — all under
  /// the commit lock — then publishes last_commit_ts, releases row locks and
  /// forgets the transaction. Returns the commit timestamp.
  ///
  /// If `wal_hook` fails nothing has been stamped yet: the error is returned
  /// and the transaction is left active for the caller to roll back.
  Result<uint64_t> Commit(TxnId t,
                          const std::function<Status(uint64_t)>& wal_hook);

  /// Marks `t`'s id as referenced by a durable WAL record (a DDL commit
  /// logged under it, or an abort record). Forget() then retires the id
  /// permanently instead of recycling it.
  void PinId(TxnId t);

  /// Records that kTxnOp records were appended under `t` (also pins the id).
  /// An abort must then log kTxnAbort so recovery discards those ops.
  void NoteOpsLogged(TxnId t);
  bool OpsLogged(TxnId t) const;

  /// Releases row locks and erases transaction state. The caller must have
  /// undone (or committed) every write first. If no WAL record ever
  /// referenced the id (not pinned) and it is still the most recently
  /// allocated one, the id is recycled: statements that neither log nor
  /// abort durably consume no id, which keeps committed WAL ids dense in
  /// serial histories (recovery and the crash-recovery oracle count
  /// committed statements as max-id).
  void Forget(TxnId t);

  /// Ids of active transactions whose undo log touches `table_uid` (DDL uses
  /// this to roll back writers of a table it is about to drop/reindex).
  std::vector<TxnId> TxnsTouching(uint64_t table_uid) const;

  // --- Read registration & garbage collection ------------------------------

  /// Registers a latest-committed read window without taking any mutex
  /// (epoch slot claim + hazard-pointer read_ts publish; mutex overflow only
  /// when all kReadSlots are taken). The returned pin's read_ts caps what
  /// vacuum may reclaim, and its serial blocks FreeRetired, until Unpin.
  /// Prefer the ReadPin RAII wrapper.
  PinnedRead PinLatestRead();
  void Unpin(const PinnedRead& pin);

  /// Oldest read_ts any live snapshot (open transaction or pinned read) may
  /// use; last_commit_ts when none are live. Versions dead at or before the
  /// watermark are unreachable.
  uint64_t WatermarkTs() const;

  /// Takes ownership of an unlinked version node; it is freed by a later
  /// FreeRetired() once all possible concurrent walkers have drained. Must
  /// be called by the unlinking thread (the fence RMW is what publishes the
  /// unlink stores to later-registered readers).
  void Retire(aidb::Version* v);

  /// Defers an arbitrary disposal until every reader registered before the
  /// fence has drained — the same guarantee Retire() gives version nodes.
  /// The storage engine uses this to drop decoded cold-tier runs that
  /// lock-free readers may still hold ColdVersion pointers into.
  void RetireDisposal(std::function<void()> dispose);

  /// Frees retired nodes whose fence has drained. Returns the number freed.
  size_t FreeRetired();

  size_t RetiredCount() const;
  size_t NumActive() const;
  /// True while any active transaction has undo entries (checkpoints defer:
  /// a fuzzy snapshot must not split a transaction's ops from its commit).
  bool HasActiveWriters() const;
  std::vector<TxnInfo> ListActive() const;

  /// Metric hooks for the abort paths the manager itself cannot see
  /// (the Database orchestrates rollback because index unwind needs the
  /// catalog).
  void NoteConflict() {
    if (conflicts_ != nullptr) conflicts_->Add();
  }
  void NoteAbort() {
    if (aborts_ != nullptr) aborts_->Add();
  }

 private:
  uint64_t MinActiveSerialLocked() const;  // callers hold mu_

  /// One epoch read slot. `serial` doubles as the claim token: kSlotFree =
  /// unclaimed, kSlotClaiming = claimed but serial not yet drawn (blocks all
  /// frees), else the pinner's read serial. `ts` is the published read_ts
  /// (kSlotFree until the validate loop lands). One cache line per slot so
  /// concurrent pinners never false-share.
  struct alignas(64) ReadSlot {
    std::atomic<uint64_t> serial{kSlotFree};
    std::atomic<uint64_t> ts{kSlotFree};
  };

  mutable std::mutex mu_;  ///< active txns, overflow reads, retire list
  std::mutex commit_mu_;   ///< serializes commit stamping + WAL commit append
  std::mutex lock_mu_;     ///< LockManager is not internally synchronized
  LockManager locks_;

  std::atomic<uint64_t> clock_{kBootstrapTs};
  std::atomic<uint64_t> last_commit_ts_{kBootstrapTs};
  std::atomic<TxnId> next_txn_id_{1};

  struct ActiveTxn {
    uint64_t read_ts = 0;
    uint64_t serial = 0;  ///< read-serial held for the txn's whole lifetime
    bool pinned = false;      ///< a WAL record references this id; no recycle
    bool ops_logged = false;  ///< unresolved kTxnOp records exist in the WAL
    std::vector<TxnWrite> undo;
  };
  std::unordered_map<TxnId, ActiveTxn> active_;

  /// Read-serial allocator. Atomic (not mu_-guarded) because epoch pinners
  /// draw serials lock-free; Retire's fence RMW on the same atomic is what
  /// gives later pinners visibility of the unlinks (see class comment).
  std::atomic<uint64_t> next_serial_{1};
  std::array<ReadSlot, kReadSlots> read_slots_;
  std::map<uint64_t, uint64_t> overflow_reads_;  ///< serial -> read_ts

  struct Retired {
    aidb::Version* v;  ///< nullptr for pure-disposal entries
    uint64_t fence;
    std::function<void()> dispose;  ///< runs (once) when the fence drains
  };
  std::deque<Retired> retired_;

  monitor::Counter* begins_ = nullptr;
  monitor::Counter* commits_ = nullptr;
  monitor::Counter* aborts_ = nullptr;
  monitor::Counter* conflicts_ = nullptr;
  monitor::Counter* versions_retired_ = nullptr;
  monitor::Counter* versions_freed_ = nullptr;
  monitor::Counter* read_pins_ = nullptr;
  monitor::Counter* read_pin_overflows_ = nullptr;
  monitor::Gauge* active_gauge_ = nullptr;
};

/// RAII wrapper over PinLatestRead/Unpin: pins a registered latest-committed
/// snapshot for exactly the scope's lifetime. This is the ONLY sanctioned way
/// to obtain a latest-committed snapshot for executor read paths — a
/// fabricated Snapshot{last_commit_ts(), kInvalidTxnId} is not watermark-
/// registered, so a concurrent vacuum could reclaim versions mid-walk.
class ReadPin {
 public:
  ReadPin() = default;
  explicit ReadPin(TransactionManager* tm)
      : tm_(tm), pin_(tm->PinLatestRead()) {}
  ~ReadPin() {
    if (tm_ != nullptr) tm_->Unpin(pin_);
  }
  ReadPin(const ReadPin&) = delete;
  ReadPin& operator=(const ReadPin&) = delete;
  ReadPin(ReadPin&& o) noexcept : tm_(o.tm_), pin_(o.pin_) { o.tm_ = nullptr; }
  ReadPin& operator=(ReadPin&& o) noexcept {
    if (this != &o) {
      if (tm_ != nullptr) tm_->Unpin(pin_);
      tm_ = o.tm_;
      pin_ = o.pin_;
      o.tm_ = nullptr;
    }
    return *this;
  }

  uint64_t read_ts() const { return pin_.read_ts; }
  Snapshot snapshot() const { return Snapshot{pin_.read_ts, kInvalidTxnId}; }

 private:
  TransactionManager* tm_ = nullptr;
  TransactionManager::PinnedRead pin_;
};

}  // namespace aidb::txn
