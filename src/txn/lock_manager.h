#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "monitor/metrics.h"
#include "txn/types.h"

namespace aidb::txn {

/// \brief No-wait lock table: a conflicting request fails immediately and the
/// caller aborts (conservative 2PL keeps the simulator deadlock-free).
class LockManager {
 public:
  /// Attempts to acquire `key` in `mode` for `txn`. Re-entrant; a shared
  /// holder can upgrade only when it is the sole holder.
  bool TryLock(TxnId txn, KeyId key, LockMode mode);

  /// Releases every lock held by `txn`.
  void ReleaseAll(TxnId txn);

  /// True if `txn` could acquire all `keys` in the given modes right now.
  bool WouldGrantAll(TxnId txn,
                     const std::vector<std::pair<KeyId, LockMode>>& keys) const;

  size_t NumLockedKeys() const { return table_.size(); }

  /// Meters grants/denials/releases (lock.acquires, lock.denials,
  /// lock.releases) into the engine registry; null (the default) disables.
  /// Pointers are cached, so the registry must outlive this object.
  void set_metrics(monitor::MetricsRegistry* metrics) {
    acquires_metric_ = metrics ? metrics->GetCounter("lock.acquires") : nullptr;
    denials_metric_ = metrics ? metrics->GetCounter("lock.denials") : nullptr;
    releases_metric_ = metrics ? metrics->GetCounter("lock.releases") : nullptr;
  }

 private:
  bool TryLockImpl(TxnId txn, KeyId key, LockMode mode);

  struct LockState {
    TxnId exclusive_holder = 0;  ///< 0: none
    std::unordered_set<TxnId> shared_holders;
  };

  std::unordered_map<KeyId, LockState> table_;
  std::unordered_map<TxnId, std::vector<KeyId>> held_;
  monitor::Counter* acquires_metric_ = nullptr;
  monitor::Counter* denials_metric_ = nullptr;
  monitor::Counter* releases_metric_ = nullptr;
};

}  // namespace aidb::txn
