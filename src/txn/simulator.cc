#include "txn/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_set>

namespace aidb::txn {

std::vector<TxnSpec> GenerateTxnWorkload(const TxnWorkloadOptions& opts) {
  Rng rng(opts.seed);
  ZipfGenerator zipf(opts.keyspace, opts.zipf_theta, opts.seed ^ 0xabcdef);
  std::vector<TxnSpec> txns;
  txns.reserve(opts.num_txns);
  double t = 0.0;
  for (size_t i = 0; i < opts.num_txns; ++i) {
    TxnSpec txn;
    txn.id = i + 1;
    for (size_t a = 0; a < opts.accesses_per_txn; ++a) {
      KeyId key = zipf.Next();
      LockMode mode = rng.Bernoulli(opts.write_fraction) ? LockMode::kExclusive
                                                         : LockMode::kShared;
      txn.accesses.emplace_back(key, mode);
    }
    // Exponential-ish durations and inter-arrivals.
    txn.duration = -opts.mean_duration * std::log(1.0 - rng.NextDouble() + 1e-12);
    t += -std::log(1.0 - rng.NextDouble() + 1e-12) / opts.arrival_rate;
    txn.arrival = t;
    txns.push_back(std::move(txn));
  }
  return txns;
}

TxnSimResult TxnSimulator::Run(std::vector<TxnSpec> txns, TxnScheduler* scheduler,
                               const Options& opts) {
  std::sort(txns.begin(), txns.end(),
            [](const TxnSpec& a, const TxnSpec& b) { return a.arrival < b.arrival; });

  TxnSimResult result;
  LockManager locks;
  if (opts.metrics != nullptr) locks.set_metrics(opts.metrics);
  double now = 0.0;
  size_t next_arrival = 0;
  std::deque<TxnSpec> queue;
  struct Running {
    TxnSpec spec;
    double finish;
  };
  std::vector<Running> running;
  size_t events = 0;

  auto running_specs = [&running]() {
    std::vector<TxnSpec> out;
    out.reserve(running.size());
    for (const auto& r : running) out.push_back(r.spec);
    return out;
  };

  while ((next_arrival < txns.size() || !queue.empty() || !running.empty()) &&
         events < opts.max_events) {
    ++events;
    // Admit arrivals up to `now`.
    while (next_arrival < txns.size() && txns[next_arrival].arrival <= now) {
      queue.push_back(txns[next_arrival++]);
    }

    // Fill free slots. Each slot round keeps attempting scheduler picks
    // until one dispatches or every queued transaction has been tried once
    // — so a conflict-aware scheduler that *skips* doomed transactions pays
    // no aborts, while FIFO aborts its way down the queue.
    while (running.size() < opts.concurrency && !queue.empty()) {
      std::vector<TxnSpec> specs = running_specs();
      std::unordered_set<TxnId> attempted;
      bool dispatched = false;
      while (attempted.size() < std::min(queue.size(), opts.max_attempts_per_round)) {
        int pick = scheduler->PickNext(queue, specs, locks);
        if (pick < 0 || static_cast<size_t>(pick) >= queue.size()) break;
        TxnSpec txn = queue[static_cast<size_t>(pick)];
        if (attempted.count(txn.id)) break;  // scheduler is cycling
        queue.erase(queue.begin() + pick);

        // Conservative 2PL: all locks at admission.
        bool ok = true;
        for (const auto& [key, mode] : txn.accesses) {
          if (!locks.TryLock(txn.id, key, mode)) {
            ok = false;
            break;
          }
        }
        if (ok) {
          running.push_back({txn, now + txn.duration});
          scheduler->OnOutcome(txn, specs, /*aborted=*/false);
          dispatched = true;
          break;
        }
        locks.ReleaseAll(txn.id);
        ++result.aborted;
        scheduler->OnOutcome(txn, specs, /*aborted=*/true);
        attempted.insert(txn.id);
        queue.push_back(txn);  // retry later
      }
      if (!dispatched) break;  // nothing admissible: advance time
    }

    // Advance virtual time to the next event.
    double next_time = std::numeric_limits<double>::max();
    if (next_arrival < txns.size()) next_time = txns[next_arrival].arrival;
    for (const auto& r : running) next_time = std::min(next_time, r.finish);
    if (next_time == std::numeric_limits<double>::max()) {
      // Queue non-empty but nothing running/arriving: nudge time forward so
      // retries re-attempt.
      next_time = now + 0.1;
    }
    now = std::max(now, next_time);

    // Complete finished transactions.
    for (size_t i = 0; i < running.size();) {
      if (running[i].finish <= now) {
        locks.ReleaseAll(running[i].spec.id);
        ++result.committed;
        running.erase(running.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
  }
  result.makespan = now;
  return result;
}

}  // namespace aidb::txn
