#include "txn/lock_manager.h"

#include <cassert>

namespace aidb::txn {

bool LockManager::TryLock(TxnId txn, KeyId key, LockMode mode) {
  bool granted = TryLockImpl(txn, key, mode);
  if (acquires_metric_) (granted ? acquires_metric_ : denials_metric_)->Add();
  return granted;
}

bool LockManager::TryLockImpl(TxnId txn, KeyId key, LockMode mode) {
  // TxnId 0 aliases LockState's "no exclusive holder" encoding; granting it
  // a lock would make the key look free to every exclusive requester.
  assert(txn != kInvalidTxnId && "TxnId 0 is the reserved no-txn sentinel");
  LockState& state = table_[key];
  if (mode == LockMode::kShared) {
    if (state.exclusive_holder != 0 && state.exclusive_holder != txn) return false;
    if (state.exclusive_holder == txn) return true;  // X implies S
    if (state.shared_holders.insert(txn).second) held_[txn].push_back(key);
    return true;
  }
  // Exclusive.
  if (state.exclusive_holder == txn) return true;
  if (state.exclusive_holder != 0) return false;
  // Upgrade allowed only if txn is the sole shared holder.
  if (!state.shared_holders.empty()) {
    if (state.shared_holders.size() != 1 || !state.shared_holders.count(txn)) {
      return false;
    }
    state.shared_holders.clear();
    state.exclusive_holder = txn;
    return true;  // key already recorded in held_
  }
  state.exclusive_holder = txn;
  held_[txn].push_back(key);
  return true;
}

void LockManager::ReleaseAll(TxnId txn) {
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  if (releases_metric_) releases_metric_->Add(it->second.size());
  for (KeyId key : it->second) {
    auto st = table_.find(key);
    if (st == table_.end()) continue;
    if (st->second.exclusive_holder == txn) st->second.exclusive_holder = 0;
    st->second.shared_holders.erase(txn);
    if (st->second.exclusive_holder == 0 && st->second.shared_holders.empty()) {
      table_.erase(st);
    }
  }
  held_.erase(it);
}

bool LockManager::WouldGrantAll(
    TxnId txn, const std::vector<std::pair<KeyId, LockMode>>& keys) const {
  for (const auto& [key, mode] : keys) {
    auto it = table_.find(key);
    if (it == table_.end()) continue;
    const LockState& s = it->second;
    if (mode == LockMode::kShared) {
      if (s.exclusive_holder != 0 && s.exclusive_holder != txn) return false;
    } else {
      if (s.exclusive_holder != 0 && s.exclusive_holder != txn) return false;
      for (TxnId holder : s.shared_holders) {
        if (holder != txn) return false;
      }
    }
  }
  return true;
}

}  // namespace aidb::txn
