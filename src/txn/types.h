#pragma once

#include <cstdint>

namespace aidb::txn {

/// Transaction identity, shared by the lock manager / OLTP simulator and the
/// storage WAL: every durable COMMIT record is stamped with the TxnId of the
/// statement-level transaction it closes, so recovery replays whole
/// transactions or nothing.
using TxnId = uint64_t;
using KeyId = uint64_t;

enum class LockMode { kShared, kExclusive };

}  // namespace aidb::txn
