#pragma once

#include <cstdint>
#include <string>

namespace aidb {
class Table;
struct Version;
}  // namespace aidb

namespace aidb::txn {

/// Transaction identity, shared by the lock manager / OLTP simulator and the
/// storage WAL: every durable COMMIT record is stamped with the TxnId of the
/// transaction it closes, so recovery replays whole transactions or nothing.
///
/// TxnId 0 is a reserved sentinel meaning "no transaction": the lock table
/// encodes "no exclusive holder" as holder == 0, and recovery's
/// next_txn_id - 1 arithmetic assumes real transactions start at 1. Passing
/// txn 0 to LockManager::TryLock is a caller bug (asserted in debug builds) —
/// it would alias the no-holder encoding and grant phantom exclusive locks.
using TxnId = uint64_t;
constexpr TxnId kInvalidTxnId = 0;

using KeyId = uint64_t;

enum class LockMode { kShared, kExclusive };

// ---------------------------------------------------------------------------
// MVCC timestamps.
//
// Version begin/end stamps live in one uint64 space split by the top bit:
//
//   [0, kMaxCommitTs]          committed timestamps (the monotonic clock)
//   kTxnMarkerBit | txn_id     "uncommitted, owned by txn_id"
//   kAbortedTs / kInfinityTs   all-ones: "never begun" / "never ends"
//
// Putting markers numerically ABOVE every committed timestamp lets the
// visibility rule use plain <= comparisons: `ts <= read_ts` is simultaneously
// "committed" and "within my snapshot", because read_ts never exceeds
// kMaxCommitTs while markers always do.
// ---------------------------------------------------------------------------

constexpr uint64_t kTxnMarkerBit = 1ull << 63;
/// Largest commit timestamp; also the read_ts of a "latest committed state"
/// snapshot.
constexpr uint64_t kMaxCommitTs = kTxnMarkerBit - 1;
/// begin_ts of a rolled-back version: never begun for anyone. (Equals
/// MarkerFor(kMaxCommitTs), a txn id the monotonic allocator can never reach.)
constexpr uint64_t kAbortedTs = ~0ull;
/// end_ts of a live version: never ended for anyone.
constexpr uint64_t kInfinityTs = ~0ull;
/// Commit timestamp of non-transactional writes (recovery replay, snapshot
/// restore, direct Table-API tests). The transaction-manager clock starts at
/// kBootstrapTs so real commits always stamp > kBootstrapTs.
constexpr uint64_t kBootstrapTs = 1;

/// The in-progress stamp a transaction writes into versions it owns.
inline constexpr uint64_t MarkerFor(TxnId txn) { return kTxnMarkerBit | txn; }
inline constexpr bool IsMarker(uint64_t ts) {
  return (ts & kTxnMarkerBit) != 0;
}

/// \brief A point-in-time read view: everything committed at or before
/// read_ts, plus (when txn != 0) the transaction's own uncommitted writes.
///
/// The default-constructed snapshot reads "latest committed state", which is
/// exactly the pre-MVCC behaviour — non-transactional callers (recovery,
/// tests, internal scans) never have to know snapshots exist.
struct Snapshot {
  uint64_t read_ts = kMaxCommitTs;
  TxnId txn = kInvalidTxnId;

  /// Visibility rule: a version [begin_ts, end_ts) is visible iff it has
  /// begun for this snapshot and has not ended for it. Own-marker stamps
  /// count as begun/ended (read-your-own-writes / don't-read-your-own
  /// -deletes).
  bool Sees(uint64_t begin_ts, uint64_t end_ts) const {
    bool begun = begin_ts <= read_ts ||
                 (txn != kInvalidTxnId && begin_ts == MarkerFor(txn));
    if (!begun) return false;
    bool ended = end_ts <= read_ts ||
                 (txn != kInvalidTxnId && end_ts == MarkerFor(txn));
    return !ended;
  }
};

/// \brief One undo-log entry: enough to commit-stamp or roll back a single
/// version created (or ended) by a transaction.
///
/// `version` points at the version the write produced (insert/update) or
/// ended (delete); Table::StampCommit / Table::UndoWrite interpret it per
/// kind. `table_name`/`table_uid` let the Database unwind secondary-index
/// entries and let DDL find transactions touching a dropped table.
struct TxnWrite {
  enum class Kind { kInsert, kUpdate, kDelete };

  aidb::Table* table = nullptr;
  uint64_t table_uid = 0;
  std::string table_name;
  uint64_t row = 0;  ///< RowId (slot number)
  Kind kind = Kind::kInsert;
  aidb::Version* version = nullptr;
};

}  // namespace aidb::txn
