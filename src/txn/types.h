#pragma once

#include <cstdint>

namespace aidb::txn {

/// Transaction identity, shared by the lock manager / OLTP simulator and the
/// storage WAL: every durable COMMIT record is stamped with the TxnId of the
/// statement-level transaction it closes, so recovery replays whole
/// transactions or nothing.
///
/// TxnId 0 is a reserved sentinel meaning "no transaction": the lock table
/// encodes "no exclusive holder" as holder == 0, and recovery's
/// next_txn_id - 1 arithmetic assumes real transactions start at 1. Passing
/// txn 0 to LockManager::TryLock is a caller bug (asserted in debug builds) —
/// it would alias the no-holder encoding and grant phantom exclusive locks.
using TxnId = uint64_t;
constexpr TxnId kInvalidTxnId = 0;

using KeyId = uint64_t;

enum class LockMode { kShared, kExclusive };

}  // namespace aidb::txn
