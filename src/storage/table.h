#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/schema.h"
#include "txn/types.h"

namespace aidb {

/// \brief One tuple version in a slot's newest-first version chain.
///
/// `data` is immutable after the version is published; only the timestamp
/// atomics and the chain link change afterwards (commit stamping, rollback,
/// GC unlinking). Readers therefore never need a lock: they walk `head ->
/// older -> ...` through atomic loads and apply txn::Snapshot::Sees to the
/// stamps they find.
struct Version {
  Tuple data;
  std::atomic<uint64_t> begin_ts;
  std::atomic<uint64_t> end_ts;
  std::atomic<Version*> older{nullptr};

  Version(Tuple d, uint64_t b, uint64_t e)
      : data(std::move(d)), begin_ts(b), end_ts(e) {}
};

/// \brief Read-side contract of a disk-resident cold tier attached beneath a
/// table (the LSM storage engine's per-table state implements it).
///
/// A paged slot's head holds a sentinel instead of a version chain; readers
/// resolve the slot through ColdVersion and writers re-home it through
/// MaterializeCold. Pointers returned by ColdVersion stay valid for as long
/// as the caller's read registration (pin or active transaction): the
/// backing decoded runs are disposed through the TransactionManager's
/// serial-fenced retire list, exactly like unlinked warm versions.
class ColdTier {
 public:
  /// Comparison shapes the zone maps can refute (the fused vectorized
  /// filters; they never error, so pruning preserves first-error parity).
  enum class Cmp { kEq, kLt, kLe, kGt, kGe };

  virtual ~ColdTier() = default;

  /// Newest persisted version of a paged slot (nullptr only transiently,
  /// while a concurrent materialize+compact cycle races the caller — re-load
  /// the slot head and retry).
  virtual const Version* ColdVersion(RowId id) = 0;

  /// Fresh heap copy of the paged slot's version for a writer about to
  /// mutate the slot; ownership passes to the caller. nullptr under the same
  /// transient race as ColdVersion.
  virtual Version* MaterializeCold(RowId id) = 0;

  /// Bookkeeping after a successful materialize CAS (the persisted entry is
  /// now shadowed; the next compaction drops it).
  virtual void NoteMaterialized(RowId id) = 0;

  /// Zone-map check: may any paged row with slot in [begin, end) satisfy
  /// `column <cmp> lit`? Conservative — returns true whenever a block's
  /// bounds cannot refute the predicate (or the column is non-numeric).
  virtual bool ColdRangeMayMatch(RowId begin, RowId end, size_t col, Cmp op,
                                 double lit) = 0;
};

/// \brief Multi-versioned slotted in-memory row store (MVCC).
///
/// Rows live in insertion slots; a slot holds a newest-first chain of
/// `Version` nodes stamped with [begin_ts, end_ts) validity intervals (see
/// txn/types.h for the timestamp space). RowIds are slot numbers and stay
/// stable for indexes; a "deleted" row is a version whose end_ts committed,
/// and a slot that never had a committed version reads as dead.
///
/// Concurrency model:
///  - Readers are lock-free: slot lookup goes through a fixed segment
///    directory (segments are never reallocated, so no pointer ever moves),
///    `num_slots_` is release-published after the slot's head version is in
///    place, and chain walks are acquire loads. Version nodes unlinked by
///    rollback or GC are handed to a retire callback and must outlive any
///    concurrent walker (the TransactionManager's serial-fenced retire list).
///  - Writers (transactional and bootstrap alike) serialize on `write_mu_`.
///    Commit stamping (StampCommit) intentionally does NOT take `write_mu_`:
///    it only flips timestamp atomics on versions the committing transaction
///    owns, and the TransactionManager's commit lock already serializes
///    commits against each other.
///
/// The legacy non-transactional API (Insert/Update/Delete/IsLive/RowAt/
/// ForEach/ScanRange) is preserved with "latest committed state" semantics:
/// bootstrap writes stamp txn::kBootstrapTs, so recovery replay, snapshot
/// restore and direct-API tests behave exactly as the single-version store
/// did.
class Table {
 public:
  static constexpr size_t kRowsPerPage = 64;
  /// Granularity of the per-morsel write metadata: equals one segment-
  /// directory base unit (so segment k holds exactly 1<<k morsels) and the
  /// vectorized engine's batch size (vec_ops.cc statically asserts the
  /// match, and the column cache stamps its mirrors per morsel).
  static constexpr size_t kMorselRows = 1024;

  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)), uid_(NextUid()) {}
  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Process-unique identity, distinct across DROP/CREATE cycles even when a
  /// new table reuses the name (or the heap address) of a dead one. Caches
  /// keyed by uid can never alias stale data onto a recreated table.
  uint64_t uid() const { return uid_; }

  /// Data-change counter: bumped whenever the committed-visible contents can
  /// have changed (bootstrap writes, commit stamping, rollback slot
  /// reclamation). Version-stamped derived structures (the vectorized
  /// engine's column cache) compare it to detect staleness.
  uint64_t data_version() const {
    return data_version_.load(std::memory_order_acquire);
  }

  // --- Non-transactional (bootstrap) writes --------------------------------
  // Stamped txn::kBootstrapTs, i.e. committed-for-everyone immediately.
  // Recovery replay, snapshot restore and tests use these.

  /// Appends a row; validates arity and types (NULL always allowed).
  Result<RowId> Insert(Tuple row);
  Status Delete(RowId id);
  Status Update(RowId id, Tuple row);

  /// Appends an already-dead slot. Snapshot restore uses this to reproduce
  /// the exact slot layout (RowIds are slot numbers, and WAL records replayed
  /// on top of a snapshot address rows by RowId), without retaining the dead
  /// tuple's bytes.
  RowId AppendTombstone();

  /// Places a committed row at exactly slot `id`, padding any gap below it
  /// with tombstones. Recovery replays inserts in commit order, which can
  /// differ from the execution order that assigned the slots when
  /// transactions interleaved — the recorded id, not append order, is
  /// authoritative (later update/delete records address it). Gap slots are
  /// either filled by a not-yet-replayed commit or stay dead, exactly
  /// mirroring aborted-insert holes in the pre-crash table. Errors if the
  /// slot is already occupied.
  Status InsertAtSlot(RowId id, Tuple row);

  /// Arity/type check without inserting. Multi-row INSERT validates every
  /// row up front so a bad row cannot leave a statement half-applied.
  Status ValidateRow(const Tuple& row) const;

  // --- Transactional writes ------------------------------------------------
  // Callers hold the row lock (TransactionManager::TryRowLock) before
  // Update/Delete; on success `*undo` describes how to commit-stamp or roll
  // the write back and must be recorded in the transaction's undo log.
  // A Status::kAborted return is a first-committer-wins write-write conflict:
  // the whole transaction must roll back.

  Result<RowId> InsertTxn(Tuple row, txn::TxnId t, txn::TxnWrite* undo);
  Status UpdateTxn(RowId id, Tuple row, const txn::Snapshot& snap,
                   txn::TxnWrite* undo);
  Status DeleteTxn(RowId id, const txn::Snapshot& snap, txn::TxnWrite* undo);

  /// Stamps one undo entry's version(s) with commit timestamp `cts`. Called
  /// under the TransactionManager's commit lock; does not take write_mu_.
  void StampCommit(const txn::TxnWrite& w, uint64_t cts);

  /// Reverses one undo entry (newest-first order across the transaction's
  /// log). Unlinked version nodes go to `retire` — the caller must keep them
  /// alive until no concurrent chain walker can still reference them.
  void UndoWrite(const txn::TxnWrite& w,
                 const std::function<void(Version*)>& retire);

  // --- Reads ---------------------------------------------------------------

  /// Fetches the latest committed row.
  Result<Tuple> Get(RowId id) const;

  /// True if the slot has a version visible to the latest-committed snapshot.
  bool IsLive(RowId id) const {
    return VisibleVersion(id, txn::Snapshot{}) != nullptr;
  }
  bool IsVisible(RowId id, const txn::Snapshot& snap) const {
    return VisibleVersion(id, snap) != nullptr;
  }

  /// The snapshot-visible tuple of a slot, or nullptr when no version is
  /// visible. The pointee stays valid for the duration of the reader's
  /// retire-list registration (or, for non-concurrent callers, until the
  /// next write to the table).
  const Tuple* VisibleAt(RowId id, const txn::Snapshot& snap) const {
    const Version* v = VisibleVersion(id, snap);
    return v != nullptr ? &v->data : nullptr;
  }

  /// Direct slot access for scans; caller must check IsLive first (returns
  /// an empty tuple for dead slots).
  const Tuple& RowAt(RowId id) const {
    const Version* v = VisibleVersion(id, txn::Snapshot{});
    if (v != nullptr) return v->data;
    static const Tuple kDead;
    return kDead;
  }

  /// Number of committed live rows (approximate while transactions are in
  /// flight; exact when quiescent). Cost modeling / planner input.
  size_t NumRows() const {
    int64_t n = live_count_.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<size_t>(n) : 0;
  }
  /// Number of slots, including tombstones (scan upper bound).
  size_t NumSlots() const { return num_slots_.load(std::memory_order_acquire); }
  /// Logical pages occupied (for cost modeling).
  size_t NumPages() const {
    return (NumSlots() + kRowsPerPage - 1) / kRowsPerPage;
  }

  /// Invokes fn(id, row) for every row visible to `snap`.
  template <typename Fn>
  void ForEachVisible(const txn::Snapshot& snap, Fn&& fn) const {
    ScanRangeVisible(0, NumSlots(), snap, std::forward<Fn>(fn));
  }

  /// Invokes fn(id, row) for every latest-committed live row.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    ForEachVisible(txn::Snapshot{}, std::forward<Fn>(fn));
  }

  /// Invokes fn(id, row) for rows visible to `snap` with id in [begin, end)
  /// — the morsel primitive of the parallel executor. Concurrent calls over
  /// any ranges are safe, including against concurrent committers.
  template <typename Fn>
  void ScanRangeVisible(RowId begin, RowId end, const txn::Snapshot& snap,
                        Fn&& fn) const {
    RowId limit = std::min<RowId>(end, NumSlots());
    for (RowId id = begin; id < limit; ++id) {
      const Version* v = VisibleVersion(id, snap);
      if (v != nullptr) fn(id, v->data);
    }
  }

  /// Latest-committed ScanRangeVisible.
  template <typename Fn>
  void ScanRange(RowId begin, RowId end, Fn&& fn) const {
    ScanRangeVisible(begin, end, txn::Snapshot{}, std::forward<Fn>(fn));
  }

  // --- MVCC bookkeeping ----------------------------------------------------

  /// Undo entries written but not yet committed or rolled back.
  uint64_t uncommitted_writes() const {
    return uncommitted_writes_.load(std::memory_order_acquire);
  }
  /// Largest commit timestamp ever stamped into this table.
  uint64_t max_commit_ts() const {
    return max_commit_ts_.load(std::memory_order_acquire);
  }
  /// True when the latest-committed state *is* the state `snap` sees: no
  /// in-flight writes and nothing committed after snap.read_ts. Gates the
  /// column-cache mirror, which always materializes latest-committed data.
  bool QuiescentFor(const txn::Snapshot& snap) const {
    return uncommitted_writes() == 0 && max_commit_ts() <= snap.read_ts;
  }

  // --- Per-morsel write metadata -------------------------------------------
  // kMorselRows-slot morsels carry their own change counter, max commit
  // timestamp, and in-flight write count, so the vectorized scan can keep
  // using cached mirrors for the untouched morsels of a non-quiescent table
  // and fall back to chain walks only where writes actually landed.

  size_t NumMorsels() const {
    return (NumSlots() + kMorselRows - 1) / kMorselRows;
  }
  /// Change counter of morsel `m`: bumped whenever the morsel's committed-
  /// visible contents or slot layout can have changed (slot allocation,
  /// bootstrap writes, commit stamping, rollback). Vacuum never bumps it.
  uint64_t MorselVersion(size_t m) const {
    return MorselAt(m)->version.load(std::memory_order_acquire);
  }
  /// QuiescentFor at morsel granularity: no in-flight write touches morsel
  /// `m` and nothing committed into it after snap.read_ts.
  bool MorselQuiescentFor(size_t m, const txn::Snapshot& snap) const {
    const MorselMeta* mm = MorselAt(m);
    return mm->uncommitted.load(std::memory_order_acquire) == 0 &&
           mm->max_commit_ts.load(std::memory_order_acquire) <= snap.read_ts;
  }

  /// Unlinks version nodes no snapshot at or after `watermark` can see
  /// (including aborted leftovers), handing each to `retire`. Returns the
  /// number of versions unlinked. Safe against concurrent readers; excludes
  /// writers via write_mu_.
  size_t Vacuum(uint64_t watermark,
                const std::function<void(Version*)>& retire);

  /// Total version nodes currently reachable (observability; O(slots)).
  size_t CountVersions() const;

  // --- Cold tier (pluggable storage engine) --------------------------------
  // A storage engine attaches per-table cold-tier state here; frozen slots
  // are then paged out (head -> sentinel) and read back through the
  // ColdTier. With no tier attached every method below is a cheap no-op
  // path and the table behaves exactly as the pure in-memory row store.

  /// Installs (or, with nullptr, removes) the cold tier. The caller owns the
  /// tier object and must keep it alive while any reader can observe a
  /// paged slot.
  void SetColdTier(ColdTier* cold) {
    cold_.store(cold, std::memory_order_release);
  }
  ColdTier* cold_tier() const { return cold_.load(std::memory_order_acquire); }

  /// True when the slot's head is the paged sentinel.
  bool IsPaged(RowId id) const;

  /// Slots currently paged out (approximate under concurrency).
  size_t PagedCount() const {
    int64_t n = paged_count_.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<size_t>(n) : 0;
  }
  /// Paged slots inside morsel `m` — the quick gate for zone-map pruning.
  uint32_t MorselPagedCount(size_t m) const {
    return MorselAt(m)->paged.load(std::memory_order_acquire);
  }

  /// Every slot in [begin, end) is dead or paged — no warm version exists,
  /// so the cold tier's zone maps fully describe the range's visible rows.
  bool RangeAllColdOrDead(RowId begin, RowId end) const;

  /// Appends every frozen slot (id, untagged head) to `out` — the flush
  /// candidates. Lock-free snapshot; PageOutIfFrozen revalidates per slot.
  void CollectFrozen(std::vector<std::pair<RowId, Version*>>* out) const;

  /// Pages slot `id` out: CASes the frozen head Tag(v) to the sentinel and
  /// hands `v` to `retire` (concurrent readers may still hold it). False
  /// when the head changed since CollectFrozen — the slot is skipped and its
  /// persisted entry simply shadows nothing.
  bool PageOutIfFrozen(RowId id, Version* v,
                       const std::function<void(Version*)>& retire);

 private:
  // Fixed segment directory: segment k holds (kSegBase << k) slots, so 22
  // segments cover ~4.3B rows while slot addresses never move (readers keep
  // raw Slot pointers across growth).
  static constexpr size_t kSegBaseLog2 = 10;
  static constexpr size_t kSegBase = 1ull << kSegBaseLog2;
  static constexpr size_t kNumSegments = 22;
  static_assert(kMorselRows == kSegBase,
                "morsels must tile segments exactly (1<<k morsels each)");

  /// `head` carries a low-bit "frozen" tag (see table.cc): a tagged head is
  /// a slot whose sole version is committed at or below a past vacuum
  /// watermark with an open end_ts — visible to every snapshot with a single
  /// load, no chain walk. Writers clear the tag (under write_mu_) before any
  /// timestamp mutation.
  struct Slot {
    std::atomic<Version*> head{nullptr};
  };

  struct MorselMeta {
    std::atomic<uint64_t> version{0};
    std::atomic<uint64_t> max_commit_ts{0};
    std::atomic<uint64_t> uncommitted{0};
    std::atomic<uint32_t> paged{0};  ///< slots of this morsel in the cold tier
  };

  static uint64_t NextUid();

  static size_t SegmentOf(RowId id) {
    return 63 - static_cast<size_t>(
                    __builtin_clzll((id >> kSegBaseLog2) + 1));
  }
  static RowId SegmentBase(size_t k) {
    return ((RowId{1} << k) - 1) << kSegBaseLog2;
  }

  Slot* SlotFor(RowId id) const {
    size_t k = SegmentOf(id);
    return segments_[k].load(std::memory_order_acquire) + (id - SegmentBase(k));
  }

  /// Metadata of morsel `m` (allocated with its segment; segment k's array
  /// holds its 1<<k morsels).
  MorselMeta* MorselAt(size_t m) const {
    RowId first = static_cast<RowId>(m) * kMorselRows;
    size_t k = SegmentOf(first);
    return morsel_meta_[k].load(std::memory_order_acquire) +
           (m - (SegmentBase(k) >> kSegBaseLog2));
  }
  MorselMeta* MorselFor(RowId id) const { return MorselAt(id >> kSegBaseLog2); }
  void BumpMorselVersion(RowId id) {
    MorselFor(id)->version.fetch_add(1, std::memory_order_release);
  }
  void NoteMorselCommitTs(RowId id, uint64_t cts) {
    std::atomic<uint64_t>& mc = MorselFor(id)->max_commit_ts;
    uint64_t cur = mc.load(std::memory_order_relaxed);
    while (cur < cts &&
           !mc.compare_exchange_weak(cur, cts, std::memory_order_release,
                                     std::memory_order_relaxed)) {
    }
  }

  /// Appends a slot whose head is `head` (may be null for tombstone slots,
  /// or frozen-tagged for born-frozen bootstrap rows). Caller holds
  /// write_mu_; publication is the release store of num_slots_.
  Result<RowId> AllocateSlot(Version* head);

  /// Loads a slot head for a writer, clearing the frozen tag first (under
  /// write_mu_) so no timestamp mutation ever happens behind a tagged head.
  /// A paged slot is materialized from the cold tier back into a warm
  /// version before the writer proceeds.
  Version* LoadHeadForWrite(Slot* s, RowId id);

  const Version* VisibleVersion(RowId id, const txn::Snapshot& snap) const;

  void BumpDataVersion() {
    data_version_.fetch_add(1, std::memory_order_release);
  }
  void NoteCommitTs(uint64_t cts) {
    uint64_t cur = max_commit_ts_.load(std::memory_order_relaxed);
    while (cur < cts && !max_commit_ts_.compare_exchange_weak(
                            cur, cts, std::memory_order_release,
                            std::memory_order_relaxed)) {
    }
  }

  std::string name_;
  Schema schema_;
  uint64_t uid_;
  std::atomic<uint64_t> data_version_{0};

  mutable std::mutex write_mu_;
  std::array<std::atomic<Slot*>, kNumSegments> segments_{};
  std::array<std::atomic<MorselMeta*>, kNumSegments> morsel_meta_{};
  std::atomic<size_t> num_slots_{0};
  std::atomic<int64_t> live_count_{0};
  std::atomic<uint64_t> uncommitted_writes_{0};
  std::atomic<uint64_t> max_commit_ts_{0};
  std::atomic<ColdTier*> cold_{nullptr};
  std::atomic<int64_t> paged_count_{0};
};

}  // namespace aidb
