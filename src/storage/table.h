#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/schema.h"

namespace aidb {

/// \brief Slotted in-memory row store.
///
/// Rows live in insertion slots; deletes tombstone the slot so RowIds stay
/// stable for indexes. The table tracks logical "page" counts (rows per page
/// is fixed) so the optimizer's cost model can charge I/O the way a disk-
/// based engine would.
class Table {
 public:
  static constexpr size_t kRowsPerPage = 64;

  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)), uid_(NextUid()) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Process-unique identity, distinct across DROP/CREATE cycles even when a
  /// new table reuses the name (or the heap address) of a dead one. Caches
  /// keyed by uid can never alias stale data onto a recreated table.
  uint64_t uid() const { return uid_; }

  /// Data-change counter: bumped by every successful Insert/Delete/Update and
  /// by AppendTombstone. Version-stamped derived structures (the vectorized
  /// engine's column cache) compare it to detect staleness. Atomic so
  /// concurrent readers may poll it; mutators themselves still require
  /// external exclusion (the service's writer lock), like every other
  /// Table mutation.
  uint64_t data_version() const {
    return data_version_.load(std::memory_order_acquire);
  }

  /// Appends a row; validates arity and types (NULL always allowed).
  Result<RowId> Insert(Tuple row);

  /// Arity/type check without inserting. Multi-row INSERT validates every
  /// row up front so a bad row cannot leave a statement half-applied.
  Status ValidateRow(const Tuple& row) const;

  /// Fetches a live row.
  Result<Tuple> Get(RowId id) const;
  /// True if the slot exists and is not deleted.
  bool IsLive(RowId id) const {
    return id < rows_.size() && !deleted_[id];
  }

  Status Delete(RowId id);
  Status Update(RowId id, Tuple row);

  /// Appends an already-dead slot. Snapshot restore uses this to reproduce
  /// the exact slot layout (RowIds are slot numbers, and WAL records replayed
  /// on top of a snapshot address rows by RowId), without retaining the dead
  /// tuple's bytes.
  RowId AppendTombstone() {
    rows_.emplace_back();
    deleted_.push_back(true);
    BumpDataVersion();
    return rows_.size() - 1;
  }

  /// Number of live rows.
  size_t NumRows() const { return live_count_; }
  /// Number of slots, including tombstones (scan upper bound).
  size_t NumSlots() const { return rows_.size(); }
  /// Logical pages occupied (for cost modeling).
  size_t NumPages() const { return (rows_.size() + kRowsPerPage - 1) / kRowsPerPage; }

  /// Direct slot access for scans; caller must check IsLive.
  const Tuple& RowAt(RowId id) const { return rows_[id]; }

  /// Invokes fn(id, row) for every live row.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (RowId id = 0; id < rows_.size(); ++id) {
      if (!deleted_[id]) fn(id, rows_[id]);
    }
  }

  /// Invokes fn(id, row) for live rows with id in [begin, end) — the morsel
  /// primitive of the parallel executor. Concurrent calls over any ranges
  /// are safe as long as no writer is active (reads only).
  template <typename Fn>
  void ScanRange(RowId begin, RowId end, Fn&& fn) const {
    RowId limit = std::min<RowId>(end, rows_.size());
    for (RowId id = begin; id < limit; ++id) {
      if (!deleted_[id]) fn(id, rows_[id]);
    }
  }

 private:
  static uint64_t NextUid();
  void BumpDataVersion() {
    data_version_.fetch_add(1, std::memory_order_release);
  }

  std::string name_;
  Schema schema_;
  uint64_t uid_;
  std::atomic<uint64_t> data_version_{0};
  std::vector<Tuple> rows_;
  std::vector<bool> deleted_;
  size_t live_count_ = 0;
};

}  // namespace aidb
