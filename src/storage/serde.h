#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace aidb::serde {

/// CRC-32 (IEEE 802.3 polynomial, reflected). Frames every WAL record and
/// trails every snapshot so recovery can tell a torn or corrupted tail from
/// a clean one.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// --- Append-style writers --------------------------------------------------
///
/// All multi-byte integers are stored in the host's native byte order: the
/// durability files are a single-machine format (documented in DESIGN.md §6),
/// not a wire protocol.

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void PutI64(std::string* out, int64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void PutDouble(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// \brief Bounds-checked cursor over an encoded byte range.
///
/// Every Read* returns false (and leaves the output untouched) once the
/// cursor would run past the end; the caller turns that into a truncation
/// error. A Reader never throws and never reads out of bounds, which is what
/// lets recovery treat arbitrary garbage tails as data.
class Reader {
 public:
  Reader(const char* data, size_t size) : p_(data), end_(data + size), begin_(data) {}
  explicit Reader(const std::string& s) : Reader(s.data(), s.size()) {}

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  size_t offset() const { return static_cast<size_t>(p_ - begin_); }

  bool ReadU8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadI64(int64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadDouble(double* v) { return ReadRaw(v, sizeof(*v)); }

  bool ReadString(std::string* s) {
    uint32_t n = 0;
    if (!ReadU32(&n) || remaining() < n) return false;
    s->assign(p_, n);
    p_ += n;
    return true;
  }

  /// Borrows `n` raw bytes without copying; nullptr when short.
  const char* Skip(size_t n) {
    if (remaining() < n) return nullptr;
    const char* at = p_;
    p_ += n;
    return at;
  }

 private:
  bool ReadRaw(void* v, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(v, p_, n);
    p_ += n;
    return true;
  }

  const char* p_;
  const char* end_;
  const char* begin_;
};

}  // namespace aidb::serde
