#include "storage/btree.h"

#include <algorithm>
#include <cassert>

namespace aidb {

struct BTree::Node {
  bool leaf = true;
  std::vector<int64_t> keys;
  std::vector<uint64_t> values;   // leaf only, parallel to keys
  std::vector<Node*> children;    // internal only, keys.size()+1 entries
  Node* next = nullptr;           // leaf chain

  ~Node() {
    for (Node* c : children) delete c;
  }
};

BTree::BTree() : root_(new Node()) {}
BTree::~BTree() { delete root_; }

namespace {

/// Finds the child slot for `key` in an internal node.
size_t ChildSlot(const std::vector<int64_t>& keys, int64_t key) {
  return static_cast<size_t>(
      std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
}

}  // namespace

void BTree::Insert(int64_t key, uint64_t value) {
  // Descend, remembering the path for splits.
  std::vector<Node*> path;
  Node* cur = root_;
  while (!cur->leaf) {
    path.push_back(cur);
    cur = cur->children[ChildSlot(cur->keys, key)];
  }
  size_t pos = static_cast<size_t>(
      std::upper_bound(cur->keys.begin(), cur->keys.end(), key) - cur->keys.begin());
  cur->keys.insert(cur->keys.begin() + pos, key);
  cur->values.insert(cur->values.begin() + pos, value);
  ++size_;

  // Split up the path while overfull.
  while (cur->keys.size() > kFanout) {
    size_t mid = cur->keys.size() / 2;
    Node* right = new Node();
    right->leaf = cur->leaf;
    int64_t sep;
    if (cur->leaf) {
      sep = cur->keys[mid];
      right->keys.assign(cur->keys.begin() + mid, cur->keys.end());
      right->values.assign(cur->values.begin() + mid, cur->values.end());
      cur->keys.resize(mid);
      cur->values.resize(mid);
      right->next = cur->next;
      cur->next = right;
    } else {
      sep = cur->keys[mid];
      right->keys.assign(cur->keys.begin() + mid + 1, cur->keys.end());
      right->children.assign(cur->children.begin() + mid + 1, cur->children.end());
      cur->keys.resize(mid);
      cur->children.resize(mid + 1);
    }
    if (path.empty()) {
      Node* new_root = new Node();
      new_root->leaf = false;
      new_root->keys.push_back(sep);
      new_root->children.push_back(cur);
      new_root->children.push_back(right);
      root_ = new_root;
      ++height_;
      return;
    }
    Node* parent = path.back();
    path.pop_back();
    size_t slot = ChildSlot(parent->keys, sep);
    // Duplicate separators: place right after cur's slot. Find cur's slot
    // explicitly to be safe with duplicate keys.
    for (size_t i = 0; i < parent->children.size(); ++i) {
      if (parent->children[i] == cur) {
        slot = i;
        break;
      }
    }
    parent->keys.insert(parent->keys.begin() + slot, sep);
    parent->children.insert(parent->children.begin() + slot + 1, right);
    cur = parent;
  }
}

std::vector<uint64_t> BTree::Find(int64_t key) const {
  std::vector<uint64_t> out;
  RangeVisit(key, key, [&](int64_t, uint64_t v) {
    out.push_back(v);
    return true;
  });
  return out;
}

bool BTree::Contains(int64_t key) const {
  bool found = false;
  RangeVisit(key, key, [&](int64_t, uint64_t) {
    found = true;
    return false;
  });
  return found;
}

std::vector<uint64_t> BTree::RangeScan(int64_t lo, int64_t hi) const {
  std::vector<uint64_t> out;
  RangeVisit(lo, hi, [&](int64_t, uint64_t v) {
    out.push_back(v);
    return true;
  });
  return out;
}

void BTree::RangeVisit(int64_t lo, int64_t hi,
                       const std::function<bool(int64_t, uint64_t)>& fn) const {
  if (lo > hi) return;
  const Node* cur = root_;
  while (!cur->leaf) {
    // lower_bound-style descent so duplicates of lo to the left are found.
    size_t slot = static_cast<size_t>(
        std::lower_bound(cur->keys.begin(), cur->keys.end(), lo) - cur->keys.begin());
    cur = cur->children[slot];
  }
  for (; cur != nullptr; cur = cur->next) {
    size_t start = static_cast<size_t>(
        std::lower_bound(cur->keys.begin(), cur->keys.end(), lo) - cur->keys.begin());
    for (size_t i = start; i < cur->keys.size(); ++i) {
      if (cur->keys[i] > hi) return;
      if (!fn(cur->keys[i], cur->values[i])) return;
    }
  }
}

size_t BTree::MemoryBytes() const {
  size_t bytes = 0;
  // Walk the tree iteratively.
  std::vector<const Node*> stack{root_};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    bytes += sizeof(Node) + n->keys.capacity() * sizeof(int64_t) +
             n->values.capacity() * sizeof(uint64_t) +
             n->children.capacity() * sizeof(Node*);
    for (const Node* c : n->children) stack.push_back(c);
  }
  return bytes;
}

void BTree::BulkLoad(const std::vector<std::pair<int64_t, uint64_t>>& sorted) {
  assert(size_ == 0);
  if (sorted.empty()) return;
  // Build packed leaves.
  std::vector<Node*> level;
  const size_t kLeafFill = kFanout;
  for (size_t start = 0; start < sorted.size(); start += kLeafFill) {
    Node* leaf = new Node();
    size_t end = std::min(start + kLeafFill, sorted.size());
    for (size_t i = start; i < end; ++i) {
      leaf->keys.push_back(sorted[i].first);
      leaf->values.push_back(sorted[i].second);
    }
    if (!level.empty()) level.back()->next = leaf;
    level.push_back(leaf);
  }
  size_ = sorted.size();
  height_ = 1;
  // Build internal levels.
  while (level.size() > 1) {
    std::vector<Node*> parents;
    for (size_t start = 0; start < level.size(); start += kFanout) {
      Node* parent = new Node();
      parent->leaf = false;
      size_t end = std::min(start + kFanout, level.size());
      for (size_t i = start; i < end; ++i) {
        if (i > start) parent->keys.push_back(level[i]->keys.front());
        parent->children.push_back(level[i]);
      }
      parents.push_back(parent);
    }
    level = std::move(parents);
    ++height_;
  }
  delete root_;
  root_ = level[0];
}

}  // namespace aidb
