#include "storage/value.h"

#include <functional>

namespace aidb {

double Value::AsFeature() const {
  switch (type()) {
    case ValueType::kNull: return 0.0;
    case ValueType::kInt: return static_cast<double>(std::get<int64_t>(v_));
    case ValueType::kDouble: return std::get<double>(v_);
    case ValueType::kString: {
      size_t h = std::hash<std::string>{}(std::get<std::string>(v_));
      return static_cast<double>(h % 100003) / 100003.0;
    }
  }
  return 0.0;
}

int Value::Compare(const Value& o) const {
  bool ln = is_null(), rn = o.is_null();
  if (ln && rn) return 0;
  if (ln) return -1;
  if (rn) return 1;
  bool lstr = type() == ValueType::kString, rstr = o.type() == ValueType::kString;
  if (lstr && rstr) {
    const std::string& a = AsString();
    const std::string& b = o.AsString();
    return a < b ? -1 : (a == b ? 0 : 1);
  }
  if (lstr != rstr) return lstr ? 1 : -1;  // numbers sort before strings
  double a = AsDouble(), b = o.AsDouble();
  return a < b ? -1 : (a == b ? 0 : 1);
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull: return 0x9e3779b9;
    case ValueType::kInt: return std::hash<int64_t>{}(std::get<int64_t>(v_));
    case ValueType::kDouble: return std::hash<double>{}(std::get<double>(v_));
    case ValueType::kString: return std::hash<std::string>{}(std::get<std::string>(v_));
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return std::to_string(std::get<int64_t>(v_));
    case ValueType::kDouble: {
      std::string s = std::to_string(std::get<double>(v_));
      return s;
    }
    case ValueType::kString: return "'" + std::get<std::string>(v_) + "'";
  }
  return "?";
}

void Value::AppendTo(std::string* out) const {
  serde::PutU8(out, static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull: break;
    case ValueType::kInt: serde::PutI64(out, std::get<int64_t>(v_)); break;
    case ValueType::kDouble: serde::PutDouble(out, std::get<double>(v_)); break;
    case ValueType::kString: serde::PutString(out, std::get<std::string>(v_)); break;
  }
}

Result<Value> Value::Deserialize(serde::Reader* r) {
  uint8_t tag = 0;
  if (!r->ReadU8(&tag)) return Status::Internal("value: truncated type tag");
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull: return Value::Null();
    case ValueType::kInt: {
      int64_t i = 0;
      if (!r->ReadI64(&i)) return Status::Internal("value: truncated int");
      return Value(i);
    }
    case ValueType::kDouble: {
      double d = 0;
      if (!r->ReadDouble(&d)) return Status::Internal("value: truncated double");
      return Value(d);
    }
    case ValueType::kString: {
      std::string s;
      if (!r->ReadString(&s)) return Status::Internal("value: truncated string");
      return Value(std::move(s));
    }
  }
  return Status::Internal("value: unknown type tag " + std::to_string(tag));
}

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return "INT";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
  }
  return "?";
}

}  // namespace aidb
