#include "storage/fault_injector.h"

namespace aidb::storage {

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTornWrite: return "torn_write";
    case FaultKind::kDroppedFsync: return "dropped_fsync";
    case FaultKind::kCorruptByte: return "corrupt_byte";
    case FaultKind::kCleanCrash: return "clean_crash";
  }
  return "?";
}

}  // namespace aidb::storage
