#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace aidb {

/// \brief In-memory B+tree mapping int64 keys to RowIds (duplicates allowed).
///
/// Fixed fanout, leaf-linked for range scans. This is both the engine's
/// secondary index structure and the classical baseline for the learned-index
/// experiment (E9), so it exposes node/size accounting.
class BTree {
 public:
  static constexpr size_t kFanout = 64;  ///< max keys per node

  BTree();
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;
  BTree(BTree&& o) noexcept : root_(o.root_), size_(o.size_), height_(o.height_) {
    o.root_ = nullptr;
    o.size_ = 0;
  }

  void Insert(int64_t key, uint64_t value);

  /// All values for `key`.
  std::vector<uint64_t> Find(int64_t key) const;
  bool Contains(int64_t key) const;

  /// All values with key in [lo, hi] inclusive, in key order.
  std::vector<uint64_t> RangeScan(int64_t lo, int64_t hi) const;
  /// Visits (key, value) pairs in [lo, hi]; return false from fn to stop.
  void RangeVisit(int64_t lo, int64_t hi,
                  const std::function<bool(int64_t, uint64_t)>& fn) const;

  size_t size() const { return size_; }
  size_t height() const { return height_; }
  /// Approximate memory footprint in bytes (for learned-index comparison).
  size_t MemoryBytes() const;

  /// Bulk-loads from key-sorted (key, value) pairs; faster and produces
  /// packed leaves. Tree must be empty.
  void BulkLoad(const std::vector<std::pair<int64_t, uint64_t>>& sorted);

 private:
  struct Node;

  Node* root_;
  size_t size_ = 0;
  size_t height_ = 1;
};

}  // namespace aidb
