#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace aidb {

/// Tunable design knobs of the LSM tree — the "design continuum" axes the
/// learned data-structure tuner (E10) searches over.
struct LsmOptions {
  size_t memtable_capacity = 4096;  ///< entries before flush
  size_t size_ratio = 4;            ///< level growth factor T
  size_t bloom_bits_per_key = 8;    ///< 0 disables bloom filters
  bool leveling = true;             ///< leveling (read-opt) vs tiering (write-opt)
};

/// I/O counters used by both the measured benchmark and the tuner's analytic
/// cost model validation. Shared between the toy in-memory LsmTree and the
/// real disk backend (storage/engine/lsm_engine): both account
/// entries_written per ingested entry and entries_compacted per entry
/// rewritten by flush *and* compaction, so their amplification figures are
/// directly comparable to the analytic model's predictions.
struct LsmStats {
  uint64_t entries_written = 0;       ///< user puts / paged-out slots
  uint64_t entries_compacted = 0;     ///< entries rewritten by flush/compaction
  uint64_t runs_probed = 0;           ///< sorted runs touched by gets
  uint64_t bloom_negatives = 0;       ///< probes skipped by bloom filters
  uint64_t gets = 0;

  // Real-backend extras (stay zero for the toy tree).
  uint64_t flushes = 0;               ///< immutable-run flushes
  uint64_t compactions = 0;           ///< merge passes
  uint64_t blocks_written = 0;        ///< SST data blocks persisted
  uint64_t bytes_written = 0;         ///< SST bytes persisted (incl. rewrite)
  uint64_t bloom_probes = 0;          ///< bloom filter consultations
  uint64_t zone_checks = 0;           ///< zone-map range interrogations
  uint64_t zone_prunes = 0;           ///< ranges refuted by zone maps
  uint64_t materialized = 0;          ///< cold slots pulled warm for writers
  uint64_t adopted = 0;               ///< persisted entries re-adopted at recovery

  /// Write amplification: total entries rewritten per entry ingested.
  double WriteAmplification() const {
    return entries_written ? static_cast<double>(entries_compacted) /
                                 static_cast<double>(entries_written)
                           : 0.0;
  }
  /// Average sorted runs probed per point lookup.
  double ReadAmplification() const {
    return gets ? static_cast<double>(runs_probed) / static_cast<double>(gets) : 0.0;
  }
};

/// \brief In-memory LSM-tree key-value store (memtable + sorted runs with
/// per-run bloom filters; leveling or tiering merge policy).
///
/// This is the substrate for the survey's "learned KV store design" leaf:
/// the tuner moves LsmOptions knobs along the design continuum and this
/// engine measures the consequences.
class LsmTree {
 public:
  explicit LsmTree(const LsmOptions& opts = {});

  void Put(int64_t key, std::string value);
  void Delete(int64_t key);
  std::optional<std::string> Get(int64_t key);

  /// Ordered key-value pairs with key in [lo, hi]; latest version wins.
  std::vector<std::pair<int64_t, std::string>> RangeScan(int64_t lo, int64_t hi);

  const LsmStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LsmStats{}; }
  const LsmOptions& options() const { return opts_; }
  size_t NumRuns() const;
  /// Total live + obsolete entries held in runs.
  size_t TotalEntries() const;

 private:
  struct Run {
    std::vector<std::pair<int64_t, std::string>> entries;  // key-sorted
    std::vector<uint64_t> bloom;                           // bit set
    size_t level = 0;

    bool MaybeContains(int64_t key, size_t bits_per_key) const;
  };

  static constexpr std::string_view kTombstone = "\x01__tombstone__";

  void FlushMemtable();
  void MaybeCompact();
  Run BuildRun(std::vector<std::pair<int64_t, std::string>> entries, size_t level) const;
  static void AddToBloom(std::vector<uint64_t>* bloom, int64_t key);
  static bool BloomTest(const std::vector<uint64_t>& bloom, int64_t key);

  LsmOptions opts_;
  std::map<int64_t, std::string> memtable_;
  std::vector<Run> runs_;  // newest first
  LsmStats stats_;
};

}  // namespace aidb
