#pragma once

#include <string>
#include <vector>

#include "storage/value.h"

namespace aidb {

/// Column definition within a table schema.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt;
};

/// \brief Ordered set of columns describing a table or intermediate result.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t NumColumns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the named column, or -1 if absent.
  int IndexOf(const std::string& name) const {
    for (size_t i = 0; i < columns_.size(); ++i)
      if (columns_[i].name == name) return static_cast<int>(i);
    return -1;
  }

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  /// Appends the binary encoding (column count, then name + type tag per
  /// column) shared by the WAL CREATE TABLE record and the snapshot format.
  void AppendTo(std::string* out) const {
    serde::PutU32(out, static_cast<uint32_t>(columns_.size()));
    for (const auto& c : columns_) {
      serde::PutString(out, c.name);
      serde::PutU8(out, static_cast<uint8_t>(c.type));
    }
  }

  static Result<Schema> Deserialize(serde::Reader* r) {
    uint32_t n = 0;
    if (!r->ReadU32(&n)) return Status::Internal("schema: truncated column count");
    std::vector<Column> cols;
    cols.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Column c;
      uint8_t tag = 0;
      if (!r->ReadString(&c.name) || !r->ReadU8(&tag))
        return Status::Internal("schema: truncated column");
      c.type = static_cast<ValueType>(tag);
      cols.push_back(std::move(c));
    }
    return Schema(std::move(cols));
  }

  std::string ToString() const {
    std::string out = "(";
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (i) out += ", ";
      out += columns_[i].name;
      out += " ";
      out += ValueTypeName(columns_[i].type);
    }
    return out + ")";
  }

 private:
  std::vector<Column> columns_;
};

/// \brief A row: one Value per schema column.
using Tuple = std::vector<Value>;

/// Stable row identifier within a table (slot number; survives updates,
/// invalidated by delete).
using RowId = uint64_t;

/// Tuple binary round-trip helpers (value count, then each value's tagged
/// encoding) — the row format of WAL INSERT/UPDATE records and snapshot heaps.
inline void AppendTuple(std::string* out, const Tuple& row) {
  serde::PutU32(out, static_cast<uint32_t>(row.size()));
  for (const auto& v : row) v.AppendTo(out);
}

inline Result<Tuple> DeserializeTuple(serde::Reader* r) {
  uint32_t n = 0;
  if (!r->ReadU32(&n)) return Status::Internal("tuple: truncated value count");
  Tuple row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    AIDB_ASSIGN_OR_RETURN(v, Value::Deserialize(r));
    row.push_back(std::move(v));
  }
  return row;
}

}  // namespace aidb
