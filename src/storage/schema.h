#pragma once

#include <string>
#include <vector>

#include "storage/value.h"

namespace aidb {

/// Column definition within a table schema.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt;
};

/// \brief Ordered set of columns describing a table or intermediate result.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t NumColumns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the named column, or -1 if absent.
  int IndexOf(const std::string& name) const {
    for (size_t i = 0; i < columns_.size(); ++i)
      if (columns_[i].name == name) return static_cast<int>(i);
    return -1;
  }

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  std::string ToString() const {
    std::string out = "(";
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (i) out += ", ";
      out += columns_[i].name;
      out += " ";
      out += ValueTypeName(columns_[i].type);
    }
    return out + ")";
  }

 private:
  std::vector<Column> columns_;
};

/// \brief A row: one Value per schema column.
using Tuple = std::vector<Value>;

/// Stable row identifier within a table (slot number; survives updates,
/// invalidated by delete).
using RowId = uint64_t;

}  // namespace aidb
