#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "storage/serde.h"

namespace aidb {

/// Column/value types supported by the engine.
enum class ValueType { kNull, kInt, kDouble, kString };

/// \brief A single SQL value (tagged union of the supported types).
///
/// Comparison across numeric types coerces int to double; comparisons with
/// NULL order NULL first (a deliberate, documented simplification — the
/// executor filters NULLs explicitly where three-valued logic would matter).
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  static Value Null() { return Value(); }

  ValueType type() const {
    switch (v_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt;
      case 2: return ValueType::kDouble;
      default: return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const {
    if (type() == ValueType::kInt) return static_cast<double>(std::get<int64_t>(v_));
    return std::get<double>(v_);
  }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric view used by featurizers: ints/doubles as-is, strings hashed to
  /// a stable small double, NULL as 0.
  double AsFeature() const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }
  bool operator>(const Value& o) const { return Compare(o) > 0; }
  bool operator>=(const Value& o) const { return Compare(o) >= 0; }

  /// Three-way comparison: -1, 0, 1. NULL < everything; NULL == NULL.
  int Compare(const Value& o) const;

  size_t Hash() const;
  std::string ToString() const;

  /// Appends the binary encoding (1 type tag byte + payload) used by the WAL
  /// and snapshot formats. Round-trips exactly for every type, including
  /// NULL, empty strings, and non-finite doubles.
  void AppendTo(std::string* out) const;
  /// Decodes one value at the reader's cursor; Internal error on truncation
  /// or an unknown type tag.
  static Result<Value> Deserialize(serde::Reader* r);

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

const char* ValueTypeName(ValueType t);

}  // namespace aidb
