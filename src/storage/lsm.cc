#include "storage/lsm.h"

#include <algorithm>

namespace aidb {

LsmTree::LsmTree(const LsmOptions& opts) : opts_(opts) {
  if (opts_.memtable_capacity == 0) opts_.memtable_capacity = 1;
  if (opts_.size_ratio < 2) opts_.size_ratio = 2;
}

void LsmTree::Put(int64_t key, std::string value) {
  memtable_[key] = std::move(value);
  ++stats_.entries_written;
  if (memtable_.size() >= opts_.memtable_capacity) FlushMemtable();
}

void LsmTree::Delete(int64_t key) { Put(key, std::string(kTombstone)); }

std::optional<std::string> LsmTree::Get(int64_t key) {
  ++stats_.gets;
  auto mit = memtable_.find(key);
  if (mit != memtable_.end()) {
    if (mit->second == kTombstone) return std::nullopt;
    return mit->second;
  }
  for (const Run& run : runs_) {
    if (opts_.bloom_bits_per_key > 0 && !run.MaybeContains(key, opts_.bloom_bits_per_key)) {
      ++stats_.bloom_negatives;
      continue;
    }
    ++stats_.runs_probed;
    auto it = std::lower_bound(
        run.entries.begin(), run.entries.end(), key,
        [](const auto& e, int64_t k) { return e.first < k; });
    if (it != run.entries.end() && it->first == key) {
      if (it->second == kTombstone) return std::nullopt;
      return it->second;
    }
  }
  return std::nullopt;
}

std::vector<std::pair<int64_t, std::string>> LsmTree::RangeScan(int64_t lo,
                                                                int64_t hi) {
  // Merge memtable + every run, newest version wins.
  std::map<int64_t, std::string> merged;
  for (auto rit = runs_.rbegin(); rit != runs_.rend(); ++rit) {  // oldest first
    const Run& run = *rit;
    auto it = std::lower_bound(
        run.entries.begin(), run.entries.end(), lo,
        [](const auto& e, int64_t k) { return e.first < k; });
    for (; it != run.entries.end() && it->first <= hi; ++it)
      merged[it->first] = it->second;
    ++stats_.runs_probed;
  }
  for (auto it = memtable_.lower_bound(lo); it != memtable_.end() && it->first <= hi;
       ++it)
    merged[it->first] = it->second;
  std::vector<std::pair<int64_t, std::string>> out;
  for (auto& [k, v] : merged)
    if (v != kTombstone) out.emplace_back(k, v);
  return out;
}

void LsmTree::FlushMemtable() {
  std::vector<std::pair<int64_t, std::string>> entries(memtable_.begin(),
                                                       memtable_.end());
  memtable_.clear();
  stats_.entries_compacted += entries.size();
  runs_.insert(runs_.begin(), BuildRun(std::move(entries), 0));
  MaybeCompact();
}

void LsmTree::MaybeCompact() {
  // Group runs by level; compact when a level holds too many runs (tiering)
  // or more than one run (leveling, for levels that overflow the ratio).
  for (size_t level = 0;; ++level) {
    std::vector<size_t> at_level;
    for (size_t i = 0; i < runs_.size(); ++i)
      if (runs_[i].level == level) at_level.push_back(i);
    if (at_level.empty()) break;

    size_t trigger = opts_.leveling ? 2 : opts_.size_ratio;
    if (at_level.size() < trigger) continue;

    // Merge all runs at this level into one run at level+1, newest wins.
    std::map<int64_t, std::string> merged;
    for (auto it = at_level.rbegin(); it != at_level.rend(); ++it) {  // oldest first
      for (auto& e : runs_[*it].entries) merged[e.first] = e.second;
    }
    // In leveling, also merge with the single run already at level+1.
    if (opts_.leveling) {
      for (size_t i = 0; i < runs_.size(); ++i) {
        if (runs_[i].level == level + 1) {
          std::map<int64_t, std::string> lower(runs_[i].entries.begin(),
                                               runs_[i].entries.end());
          for (auto& [k, v] : merged) lower[k] = v;
          merged = std::move(lower);
          at_level.push_back(i);
          break;
        }
      }
    }
    std::vector<std::pair<int64_t, std::string>> entries(merged.begin(),
                                                         merged.end());
    stats_.entries_compacted += entries.size();

    // Remove consumed runs (descending index order) and add the new one.
    std::sort(at_level.rbegin(), at_level.rend());
    for (size_t i : at_level) runs_.erase(runs_.begin() + static_cast<long>(i));
    runs_.insert(runs_.begin(), BuildRun(std::move(entries), level + 1));
    // Keep newest-first ordering with deeper levels later.
    std::stable_sort(runs_.begin(), runs_.end(),
                     [](const Run& a, const Run& b) { return a.level < b.level; });
  }
}

LsmTree::Run LsmTree::BuildRun(std::vector<std::pair<int64_t, std::string>> entries,
                               size_t level) const {
  Run run;
  run.level = level;
  run.entries = std::move(entries);
  if (opts_.bloom_bits_per_key > 0) {
    size_t bits = std::max<size_t>(64, run.entries.size() * opts_.bloom_bits_per_key);
    run.bloom.assign((bits + 63) / 64, 0);
    for (auto& e : run.entries) AddToBloom(&run.bloom, e.first);
  }
  return run;
}

namespace {
uint64_t BloomHash(int64_t key, uint64_t salt) {
  uint64_t x = static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ULL + salt;
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

void LsmTree::AddToBloom(std::vector<uint64_t>* bloom, int64_t key) {
  uint64_t nbits = bloom->size() * 64;
  for (uint64_t i = 0; i < 3; ++i) {
    uint64_t bit = BloomHash(key, i) % nbits;
    (*bloom)[bit / 64] |= (1ULL << (bit % 64));
  }
}

bool LsmTree::BloomTest(const std::vector<uint64_t>& bloom, int64_t key) {
  uint64_t nbits = bloom.size() * 64;
  for (uint64_t i = 0; i < 3; ++i) {
    uint64_t bit = BloomHash(key, i) % nbits;
    if (!(bloom[bit / 64] & (1ULL << (bit % 64)))) return false;
  }
  return true;
}

bool LsmTree::Run::MaybeContains(int64_t key, size_t /*bits_per_key*/) const {
  if (bloom.empty()) return true;
  return BloomTest(bloom, key);
}

size_t LsmTree::NumRuns() const { return runs_.size(); }

size_t LsmTree::TotalEntries() const {
  size_t n = memtable_.size();
  for (const auto& r : runs_) n += r.entries.size();
  return n;
}

}  // namespace aidb
