#include "storage/table.h"

namespace aidb {

uint64_t Table::NextUid() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Status Table::ValidateRow(const Tuple& row) const {
  if (row.size() != schema_.NumColumns()) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " does not match schema " +
                                   std::to_string(schema_.NumColumns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    ValueType expect = schema_.column(i).type;
    ValueType got = row[i].type();
    bool numeric_ok = (expect == ValueType::kDouble && got == ValueType::kInt);
    if (got != expect && !numeric_ok) {
      return Status::InvalidArgument("column " + schema_.column(i).name +
                                     " expects " + ValueTypeName(expect) +
                                     " got " + ValueTypeName(got));
    }
  }
  return Status::OK();
}

Result<RowId> Table::Insert(Tuple row) {
  AIDB_RETURN_NOT_OK(ValidateRow(row));
  rows_.push_back(std::move(row));
  deleted_.push_back(false);
  ++live_count_;
  BumpDataVersion();
  return static_cast<RowId>(rows_.size() - 1);
}

Result<Tuple> Table::Get(RowId id) const {
  if (!IsLive(id)) return Status::NotFound("row " + std::to_string(id));
  return rows_[id];
}

Status Table::Delete(RowId id) {
  if (!IsLive(id)) return Status::NotFound("row " + std::to_string(id));
  deleted_[id] = true;
  --live_count_;
  BumpDataVersion();
  return Status::OK();
}

Status Table::Update(RowId id, Tuple row) {
  if (!IsLive(id)) return Status::NotFound("row " + std::to_string(id));
  AIDB_RETURN_NOT_OK(ValidateRow(row));
  rows_[id] = std::move(row);
  BumpDataVersion();
  return Status::OK();
}

}  // namespace aidb
