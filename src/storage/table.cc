#include "storage/table.h"

namespace aidb {

namespace {

using txn::IsMarker;
using txn::kAbortedTs;
using txn::kBootstrapTs;
using txn::kInfinityTs;
using txn::kMaxCommitTs;
using txn::MarkerFor;

// Frozen-slot tag, kept in bit 0 of Slot::head (Version is over-aligned well
// past 2 bytes). A tagged head marks a slot whose single version is committed
// at or below a past vacuum watermark with an open end_ts: visible to every
// snapshot, so readers return it from one load without touching the
// timestamps. Invariant: any mutation of such a slot first stores the
// untagged head (under write_mu_), so a tagged pointer always denotes the
// frozen state.
constexpr uintptr_t kFrozenBit = 1;

bool IsFrozen(const Version* v) {
  return (reinterpret_cast<uintptr_t>(v) & kFrozenBit) != 0;
}
Version* Untag(Version* v) {
  return reinterpret_cast<Version*>(reinterpret_cast<uintptr_t>(v) &
                                    ~kFrozenBit);
}
const Version* Untag(const Version* v) {
  return reinterpret_cast<const Version*>(reinterpret_cast<uintptr_t>(v) &
                                          ~kFrozenBit);
}
Version* Tag(Version* v) {
  return reinterpret_cast<Version*>(reinterpret_cast<uintptr_t>(v) |
                                    kFrozenBit);
}

// Paged-slot sentinel (bit 1, untagged): the slot's sole frozen version has
// been flushed to the cold tier and its warm copy retired. Readers resolve
// the slot through ColdTier::ColdVersion; writers materialize a warm copy
// back over the sentinel (LoadHeadForWrite). Only a frozen head ever becomes
// the sentinel (flush CASes Tag(v) -> sentinel), and only under write_mu_
// does a sentinel become a plain head again — so plain -> sentinel never
// happens and writer-side CASes can distinguish every transition.
Version* PagedSentinel() { return reinterpret_cast<Version*>(uintptr_t{2}); }
bool IsPagedHead(const Version* v) { return v == PagedSentinel(); }

void FreeChain(Version* v) {
  if (IsPagedHead(v)) return;  // cold tier owns the bytes
  v = Untag(v);
  while (v != nullptr) {
    Version* next = v->older.load(std::memory_order_relaxed);
    delete v;
    v = next;
  }
}

}  // namespace

uint64_t Table::NextUid() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Table::~Table() {
  size_t slots = num_slots_.load(std::memory_order_acquire);
  for (RowId id = 0; id < slots; ++id) {
    FreeChain(SlotFor(id)->head.load(std::memory_order_acquire));
  }
  for (auto& seg : segments_) {
    delete[] seg.load(std::memory_order_acquire);
  }
  for (auto& mm : morsel_meta_) {
    delete[] mm.load(std::memory_order_acquire);
  }
}

Status Table::ValidateRow(const Tuple& row) const {
  if (row.size() != schema_.NumColumns()) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " does not match schema " +
                                   std::to_string(schema_.NumColumns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    ValueType expect = schema_.column(i).type;
    ValueType got = row[i].type();
    bool numeric_ok = (expect == ValueType::kDouble && got == ValueType::kInt);
    if (got != expect && !numeric_ok) {
      return Status::InvalidArgument("column " + schema_.column(i).name +
                                     " expects " + ValueTypeName(expect) +
                                     " got " + ValueTypeName(got));
    }
  }
  return Status::OK();
}

Result<RowId> Table::AllocateSlot(Version* head) {
  RowId id = num_slots_.load(std::memory_order_relaxed);
  size_t k = SegmentOf(id);
  if (k >= kNumSegments) {
    delete Untag(head);
    return Status::OutOfRange("table " + name_ + " slot space exhausted");
  }
  if (segments_[k].load(std::memory_order_relaxed) == nullptr) {
    // Morsel metadata first: it must be reachable before any slot of the
    // segment is published (readers check morsel stamps for published slots).
    morsel_meta_[k].store(new MorselMeta[size_t{1} << k],
                          std::memory_order_release);
    segments_[k].store(new Slot[kSegBase << k], std::memory_order_release);
  }
  Slot* s = segments_[k].load(std::memory_order_relaxed) + (id - SegmentBase(k));
  s->head.store(head, std::memory_order_relaxed);
  // Slot layout of the morsel changed (append or tombstone): any cached
  // mirror/liveness of this morsel is stale.
  BumpMorselVersion(id);
  // Publication point: the acquire load in NumSlots() makes the segment
  // pointer and the head store above visible to any reader that sees `id`
  // in range.
  num_slots_.store(id + 1, std::memory_order_release);
  return id;
}

Version* Table::LoadHeadForWrite(Slot* s, RowId id) {
  while (true) {
    Version* h = s->head.load(std::memory_order_acquire);
    if (IsPagedHead(h)) {
      // Paged slot: re-home it as a warm version before the writer touches
      // any timestamp. A nullptr materialize is transient (a concurrent
      // compaction republishing its run set) — retry.
      ColdTier* cold = cold_.load(std::memory_order_acquire);
      Version* v = cold != nullptr ? cold->MaterializeCold(id) : nullptr;
      if (v == nullptr) {
        if (cold == nullptr) return nullptr;  // tier detached under us
        continue;
      }
      if (s->head.compare_exchange_strong(h, v, std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        paged_count_.fetch_sub(1, std::memory_order_relaxed);
        MorselFor(id)->paged.fetch_sub(1, std::memory_order_release);
        cold->NoteMaterialized(id);
        return v;
      }
      delete v;  // head changed under us (cannot happen under write_mu_)
      continue;
    }
    if (!IsFrozen(h)) return h;
    // Clear the freeze before any timestamp mutation: readers must never
    // take the single-load path on a slot whose head is being rewritten.
    // CAS, not a plain store: a concurrent flush may CAS this same tagged
    // head to the paged sentinel — exactly one transition wins, and a plain
    // store here would overwrite the sentinel and resurrect the retired
    // warm version.
    Version* expect = h;
    if (s->head.compare_exchange_strong(expect, Untag(h),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      return Untag(h);
    }
  }
}

const Version* Table::VisibleVersion(RowId id,
                                     const txn::Snapshot& snap) const {
  if (id >= NumSlots()) return nullptr;
  const Version* v = SlotFor(id)->head.load(std::memory_order_acquire);
  while (IsPagedHead(v)) {
    // Paged slot: the persisted version is frozen (committed at or below a
    // past watermark, open end), hence visible to every snapshot. A cold-tier
    // miss is transient — a concurrent materialize+compact cycle raced this
    // load — and the re-loaded head resolves it (sentinel observed implies
    // the entry is present in any run set loaded afterwards).
    ColdTier* cold = cold_.load(std::memory_order_acquire);
    if (cold == nullptr) return nullptr;  // tier detached: contract violation
    const Version* cv = cold->ColdVersion(id);
    if (cv != nullptr) return cv;
    v = SlotFor(id)->head.load(std::memory_order_acquire);
  }
  if (IsFrozen(v)) {
    // Single committed version, begun at or below a past watermark (hence at
    // or below every live read_ts), never ended: visible, one load.
    return Untag(v);
  }
  while (v != nullptr) {
    uint64_t b = v->begin_ts.load(std::memory_order_acquire);
    bool begun = b <= snap.read_ts ||
                 (snap.txn != txn::kInvalidTxnId && b == MarkerFor(snap.txn));
    if (!begun) {
      // Not yet committed for this snapshot (another txn's marker, a later
      // commit, or an aborted leftover): look deeper.
      v = v->older.load(std::memory_order_acquire);
      continue;
    }
    // First begun version decides: every older version was ended no later
    // than this one began.
    uint64_t e = v->end_ts.load(std::memory_order_acquire);
    bool ended = e <= snap.read_ts ||
                 (snap.txn != txn::kInvalidTxnId && e == MarkerFor(snap.txn));
    return ended ? nullptr : v;
  }
  return nullptr;
}

// --- Bootstrap writes -------------------------------------------------------

Result<RowId> Table::Insert(Tuple row) {
  AIDB_RETURN_NOT_OK(ValidateRow(row));
  std::lock_guard<std::mutex> lock(write_mu_);
  auto* v = new Version(std::move(row), kBootstrapTs, kInfinityTs);
  // Born frozen: begin_ts = kBootstrapTs is at or below every possible
  // read_ts and the version is the slot's only one, so bulk-loaded and
  // recovered tables take the single-load read path immediately.
  Result<RowId> id = AllocateSlot(Tag(v));
  if (!id.ok()) return id;
  live_count_.fetch_add(1, std::memory_order_relaxed);
  NoteCommitTs(kBootstrapTs);
  NoteMorselCommitTs(id.ValueOrDie(), kBootstrapTs);
  BumpDataVersion();
  return id;
}

Status Table::InsertAtSlot(RowId id, Tuple row) {
  AIDB_RETURN_NOT_OK(ValidateRow(row));
  std::lock_guard<std::mutex> lock(write_mu_);
  while (NumSlots() < id) {
    AIDB_RETURN_NOT_OK(AllocateSlot(nullptr).status());
  }
  if (NumSlots() == id) {
    auto* v = new Version(std::move(row), kBootstrapTs, kInfinityTs);
    AIDB_RETURN_NOT_OK(AllocateSlot(Tag(v)).status());
  } else {
    Slot* s = SlotFor(id);
    if (s->head.load(std::memory_order_relaxed) != nullptr) {
      return Status::Internal("insert at slot " + std::to_string(id) + " in " +
                              name_ + ": slot already occupied");
    }
    s->head.store(Tag(new Version(std::move(row), kBootstrapTs, kInfinityTs)),
                  std::memory_order_release);
    BumpMorselVersion(id);
  }
  live_count_.fetch_add(1, std::memory_order_relaxed);
  NoteCommitTs(kBootstrapTs);
  NoteMorselCommitTs(id, kBootstrapTs);
  BumpDataVersion();
  return Status::OK();
}

RowId Table::AppendTombstone() {
  std::lock_guard<std::mutex> lock(write_mu_);
  Result<RowId> id = AllocateSlot(nullptr);
  BumpDataVersion();
  return id.ok() ? id.ValueOrDie() : NumSlots();
}

Result<Tuple> Table::Get(RowId id) const {
  const Version* v = VisibleVersion(id, txn::Snapshot{});
  if (v == nullptr) return Status::NotFound("row " + std::to_string(id));
  return v->data;
}

Status Table::Delete(RowId id) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (id >= NumSlots() || VisibleVersion(id, txn::Snapshot{}) == nullptr) {
    return Status::NotFound("row " + std::to_string(id));
  }
  Version* h = LoadHeadForWrite(SlotFor(id), id);
  if (h == nullptr) return Status::NotFound("row " + std::to_string(id));
  // Bootstrap callers never race transactions; the visible version is the
  // head (or the head is a newer bootstrap version over it — end the head).
  h->end_ts.store(kBootstrapTs, std::memory_order_release);
  live_count_.fetch_sub(1, std::memory_order_relaxed);
  BumpMorselVersion(id);
  NoteMorselCommitTs(id, kBootstrapTs);
  BumpDataVersion();
  return Status::OK();
}

Status Table::Update(RowId id, Tuple row) {
  AIDB_RETURN_NOT_OK(ValidateRow(row));
  std::lock_guard<std::mutex> lock(write_mu_);
  if (id >= NumSlots() || VisibleVersion(id, txn::Snapshot{}) == nullptr) {
    return Status::NotFound("row " + std::to_string(id));
  }
  Slot* s = SlotFor(id);
  Version* h = LoadHeadForWrite(s, id);
  if (h == nullptr) return Status::NotFound("row " + std::to_string(id));
  auto* nv = new Version(std::move(row), kBootstrapTs, kInfinityTs);
  nv->older.store(h, std::memory_order_relaxed);
  h->end_ts.store(kBootstrapTs, std::memory_order_release);
  s->head.store(nv, std::memory_order_release);
  BumpMorselVersion(id);
  NoteMorselCommitTs(id, kBootstrapTs);
  BumpDataVersion();
  return Status::OK();
}

// --- Transactional writes ---------------------------------------------------

Result<RowId> Table::InsertTxn(Tuple row, txn::TxnId t, txn::TxnWrite* undo) {
  AIDB_RETURN_NOT_OK(ValidateRow(row));
  std::lock_guard<std::mutex> lock(write_mu_);
  auto* v = new Version(std::move(row), MarkerFor(t), kInfinityTs);
  Result<RowId> id = AllocateSlot(v);
  if (!id.ok()) return id;
  uncommitted_writes_.fetch_add(1, std::memory_order_release);
  MorselFor(id.ValueOrDie())->uncommitted.fetch_add(1,
                                                    std::memory_order_release);
  undo->table = this;
  undo->table_uid = uid_;
  undo->table_name = name_;
  undo->row = id.ValueOrDie();
  undo->kind = txn::TxnWrite::Kind::kInsert;
  undo->version = v;
  return id;
}

namespace {

/// Classifies the head version of a slot for a writer in `snap`. Returns OK
/// when the write may proceed, kAborted on a first-committer-wins conflict,
/// kNotFound when the row is not writable-visible (deleted / never existed).
Status CheckWritable(const Version* h, const txn::Snapshot& snap,
                     const std::string& table, uint64_t row) {
  auto not_found = [&] {
    return Status::NotFound("row " + std::to_string(row) + " in " + table);
  };
  auto conflict = [&] {
    return Status::Aborted("write-write conflict on " + table + " row " +
                           std::to_string(row) +
                           " (concurrent transaction wrote it first)");
  };
  if (h == nullptr) return not_found();
  uint64_t my = MarkerFor(snap.txn);
  uint64_t b = h->begin_ts.load(std::memory_order_acquire);
  uint64_t e = h->end_ts.load(std::memory_order_acquire);
  if (b == kAbortedTs) return not_found();  // rolled-back insert leftover
  if (IsMarker(b) && b != my) {
    // Another transaction's uncommitted insert/update heads the slot. Its
    // row was never visible to us, so from our side this is a conflict on
    // the slot (it holds the row lock anyway — we cannot get here with the
    // lock held unless hashes collided).
    return conflict();
  }
  if (e == my) return not_found();  // we already deleted it this txn
  if (IsMarker(e) && e != kInfinityTs) return conflict();  // their delete
  if (e <= kMaxCommitTs) {
    // Committed delete: after our snapshot → FCW conflict; before it the
    // row simply is not there for us.
    return e > snap.read_ts ? conflict() : not_found();
  }
  if (b != my && b > snap.read_ts) {
    // Committed after we took our snapshot: first committer wins.
    return conflict();
  }
  return Status::OK();
}

}  // namespace

Status Table::UpdateTxn(RowId id, Tuple row, const txn::Snapshot& snap,
                        txn::TxnWrite* undo) {
  AIDB_RETURN_NOT_OK(ValidateRow(row));
  std::lock_guard<std::mutex> lock(write_mu_);
  if (id >= NumSlots()) return Status::NotFound("row " + std::to_string(id));
  Slot* s = SlotFor(id);
  Version* h = LoadHeadForWrite(s, id);
  AIDB_RETURN_NOT_OK(CheckWritable(h, snap, name_, id));
  auto* nv = new Version(std::move(row), MarkerFor(snap.txn), kInfinityTs);
  nv->older.store(h, std::memory_order_relaxed);
  h->end_ts.store(MarkerFor(snap.txn), std::memory_order_release);
  s->head.store(nv, std::memory_order_release);
  uncommitted_writes_.fetch_add(1, std::memory_order_release);
  MorselFor(id)->uncommitted.fetch_add(1, std::memory_order_release);
  undo->table = this;
  undo->table_uid = uid_;
  undo->table_name = name_;
  undo->row = id;
  undo->kind = txn::TxnWrite::Kind::kUpdate;
  undo->version = nv;
  return Status::OK();
}

Status Table::DeleteTxn(RowId id, const txn::Snapshot& snap,
                        txn::TxnWrite* undo) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (id >= NumSlots()) return Status::NotFound("row " + std::to_string(id));
  Slot* s = SlotFor(id);
  // No new head is pushed for a delete, so clearing the freeze here is what
  // keeps the owner's own reads (and everyone after commit) walking the
  // chain and honoring the end marker.
  Version* h = LoadHeadForWrite(s, id);
  AIDB_RETURN_NOT_OK(CheckWritable(h, snap, name_, id));
  h->end_ts.store(MarkerFor(snap.txn), std::memory_order_release);
  uncommitted_writes_.fetch_add(1, std::memory_order_release);
  MorselFor(id)->uncommitted.fetch_add(1, std::memory_order_release);
  undo->table = this;
  undo->table_uid = uid_;
  undo->table_name = name_;
  undo->row = id;
  undo->kind = txn::TxnWrite::Kind::kDelete;
  undo->version = h;
  return Status::OK();
}

void Table::StampCommit(const txn::TxnWrite& w, uint64_t cts) {
  switch (w.kind) {
    case txn::TxnWrite::Kind::kInsert:
      w.version->begin_ts.store(cts, std::memory_order_release);
      live_count_.fetch_add(1, std::memory_order_relaxed);
      break;
    case txn::TxnWrite::Kind::kUpdate: {
      Version* old = w.version->older.load(std::memory_order_acquire);
      if (old != nullptr) old->end_ts.store(cts, std::memory_order_release);
      w.version->begin_ts.store(cts, std::memory_order_release);
      break;
    }
    case txn::TxnWrite::Kind::kDelete:
      w.version->end_ts.store(cts, std::memory_order_release);
      live_count_.fetch_sub(1, std::memory_order_relaxed);
      break;
  }
  uncommitted_writes_.fetch_sub(1, std::memory_order_release);
  MorselFor(w.row)->uncommitted.fetch_sub(1, std::memory_order_release);
  NoteCommitTs(cts);
  NoteMorselCommitTs(w.row, cts);
  BumpMorselVersion(w.row);
  BumpDataVersion();
}

void Table::UndoWrite(const txn::TxnWrite& w,
                      const std::function<void(Version*)>& retire) {
  std::lock_guard<std::mutex> lock(write_mu_);
  switch (w.kind) {
    case txn::TxnWrite::Kind::kInsert: {
      w.version->begin_ts.store(kAbortedTs, std::memory_order_release);
      // Best-effort slot reclamation: if the aborted insert sits at the tail
      // (the common serial case), pop it — and any stacked aborted inserts
      // under it — so the slot layout matches a history in which the insert
      // never happened (the crash-recovery oracle replays such a history).
      while (true) {
        size_t n = num_slots_.load(std::memory_order_relaxed);
        if (n == 0) break;
        Slot* s = SlotFor(n - 1);
        // The tail slot may be some other, frozen row — untag for the
        // inspection loads (a frozen head is never aborted, so we break).
        // A paged tail is likewise someone else's live frozen row.
        Version* raw = s->head.load(std::memory_order_acquire);
        if (IsPagedHead(raw)) break;
        Version* h = Untag(raw);
        if (h == nullptr ||
            h->begin_ts.load(std::memory_order_acquire) != kAbortedTs ||
            h->older.load(std::memory_order_acquire) != nullptr) {
          break;
        }
        s->head.store(nullptr, std::memory_order_release);
        retire(h);
        num_slots_.store(n - 1, std::memory_order_release);
        BumpMorselVersion(n - 1);
      }
      break;
    }
    case txn::TxnWrite::Kind::kUpdate: {
      Slot* s = SlotFor(w.row);
      Version* old = w.version->older.load(std::memory_order_acquire);
      if (old != nullptr) {
        old->end_ts.store(kInfinityTs, std::memory_order_release);
      }
      if (s->head.load(std::memory_order_acquire) == w.version) {
        s->head.store(old, std::memory_order_release);
      } else {
        // Defensive: find and unlink (cannot happen while the undo log is
        // processed newest-first under the row lock). An uncommitted update
        // heads its slot with an untagged marker version, so no Untag here.
        Version* p = s->head.load(std::memory_order_acquire);
        p = Untag(p);
        while (p != nullptr &&
               p->older.load(std::memory_order_acquire) != w.version) {
          p = p->older.load(std::memory_order_acquire);
        }
        if (p != nullptr) p->older.store(old, std::memory_order_release);
      }
      w.version->begin_ts.store(kAbortedTs, std::memory_order_release);
      retire(w.version);
      break;
    }
    case txn::TxnWrite::Kind::kDelete:
      w.version->end_ts.store(kInfinityTs, std::memory_order_release);
      break;
  }
  uncommitted_writes_.fetch_sub(1, std::memory_order_release);
  MorselFor(w.row)->uncommitted.fetch_sub(1, std::memory_order_release);
  BumpMorselVersion(w.row);
  BumpDataVersion();
}

size_t Table::Vacuum(uint64_t watermark,
                     const std::function<void(Version*)>& retire) {
  std::lock_guard<std::mutex> lock(write_mu_);
  size_t removed = 0;
  size_t slots = num_slots_.load(std::memory_order_relaxed);
  auto retire_chain = [&](Version* v) {
    while (v != nullptr) {
      Version* next = v->older.load(std::memory_order_relaxed);
      retire(v);
      ++removed;
      v = next;
    }
  };
  for (RowId id = 0; id < slots; ++id) {
    Slot* s = SlotFor(id);
    Version* head = s->head.load(std::memory_order_acquire);
    // Frozen slots are already in their terminal single-version state:
    // nothing to reclaim (writers would have cleared the tag first). Paged
    // slots have no warm versions at all.
    if (IsFrozen(head) || IsPagedHead(head)) continue;
    // Walk to the newest version whose begin committed at or before the
    // watermark; every active or future snapshot decides at or above it.
    // Aborted leftovers met on the way are unlinked immediately.
    Version* prev = nullptr;
    Version* v = head;
    while (v != nullptr) {
      uint64_t b = v->begin_ts.load(std::memory_order_acquire);
      if (b == kAbortedTs) {
        Version* next = v->older.load(std::memory_order_acquire);
        if (prev != nullptr) {
          prev->older.store(next, std::memory_order_release);
        } else {
          s->head.store(next, std::memory_order_release);
        }
        retire(v);
        ++removed;
        v = next;
        continue;
      }
      if (!IsMarker(b) && b <= watermark) break;
      prev = v;
      v = v->older.load(std::memory_order_acquire);
    }
    if (v != nullptr) {
      uint64_t e = v->end_ts.load(std::memory_order_acquire);
      if (!IsMarker(e) && e <= watermark) {
        // Even the watermark version ended before every live snapshot: the
        // whole suffix from v down is invisible to everyone.
        if (prev != nullptr) {
          prev->older.store(nullptr, std::memory_order_release);
        } else {
          s->head.store(nullptr, std::memory_order_release);
        }
        retire_chain(v);
      } else {
        retire_chain(v->older.exchange(nullptr, std::memory_order_acq_rel));
      }
    }
    // Freeze: a slot left with exactly one committed open version at or
    // below the watermark serves every snapshot with a single load from now
    // on. Safe against concurrent commit stamping: markers are only placed
    // under write_mu_ (held here), so a version mid-commit still shows a
    // marker in begin_ts or end_ts and is skipped.
    Version* h = s->head.load(std::memory_order_relaxed);
    if (h != nullptr && h->older.load(std::memory_order_relaxed) == nullptr) {
      uint64_t b = h->begin_ts.load(std::memory_order_acquire);
      uint64_t e = h->end_ts.load(std::memory_order_acquire);
      if (!IsMarker(b) && b != kAbortedTs && b <= watermark &&
          e == kInfinityTs) {
        s->head.store(Tag(h), std::memory_order_release);
      }
    }
  }
  // No data_version (or morsel version) bump: vacuum only removes versions
  // invisible to every live snapshot, so the committed-visible contents are
  // unchanged and column-cache mirrors stay valid.
  return removed;
}

size_t Table::CountVersions() const {
  size_t n = 0;
  size_t slots = num_slots_.load(std::memory_order_acquire);
  for (RowId id = 0; id < slots; ++id) {
    const Version* raw = SlotFor(id)->head.load(std::memory_order_acquire);
    if (IsPagedHead(raw)) continue;  // warm version count: cold entries excluded
    const Version* v = Untag(raw);
    while (v != nullptr) {
      ++n;
      v = v->older.load(std::memory_order_acquire);
    }
  }
  return n;
}

// --- Cold tier --------------------------------------------------------------

bool Table::IsPaged(RowId id) const {
  if (id >= NumSlots()) return false;
  return IsPagedHead(SlotFor(id)->head.load(std::memory_order_acquire));
}

bool Table::RangeAllColdOrDead(RowId begin, RowId end) const {
  RowId limit = std::min<RowId>(end, NumSlots());
  for (RowId id = begin; id < limit; ++id) {
    const Version* h = SlotFor(id)->head.load(std::memory_order_acquire);
    if (h != nullptr && !IsPagedHead(h)) return false;
  }
  return true;
}

void Table::CollectFrozen(std::vector<std::pair<RowId, Version*>>* out) const {
  size_t slots = num_slots_.load(std::memory_order_acquire);
  for (RowId id = 0; id < slots; ++id) {
    Version* h = SlotFor(id)->head.load(std::memory_order_acquire);
    // Paged heads are not frozen-tagged, so they are skipped here (already
    // flushed); multi-version and in-flight slots are simply not yet cold.
    if (IsFrozen(h)) out->emplace_back(id, Untag(h));
  }
}

bool Table::PageOutIfFrozen(RowId id, Version* v,
                            const std::function<void(Version*)>& retire) {
  Slot* s = SlotFor(id);
  Version* expect = Tag(v);
  // CAS against the exact tagged head seen at CollectFrozen: any writer that
  // touched the slot since (clearing the tag under write_mu_) makes this
  // fail and the slot stays warm — its stale persisted entry shadows nothing
  // because readers only consult the cold tier behind a sentinel head.
  if (!s->head.compare_exchange_strong(expect, PagedSentinel(),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
    return false;
  }
  paged_count_.fetch_add(1, std::memory_order_relaxed);
  MorselFor(id)->paged.fetch_add(1, std::memory_order_release);
  // No morsel/data version bump: the visible contents are unchanged (readers
  // now resolve the same tuple through the cold tier), so column-cache
  // mirrors stay valid.
  retire(v);
  return true;
}

}  // namespace aidb
