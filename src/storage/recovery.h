#pragma once

#include <cstdint>
#include <string>

#include "catalog/catalog.h"
#include "common/result.h"
#include "db4ai/model_registry.h"

namespace aidb::storage {

/// What one Database::Open learned and did (exposed for tests, the bench and
/// the monitoring stack's recovery-time KPI).
struct RecoveryStats {
  bool snapshot_loaded = false;
  uint64_t snapshot_lsn = 0;
  uint64_t next_txn_id = 1;        ///< statement-transaction counter to resume
  uint64_t next_lsn = 1;           ///< first LSN the reopened WAL will assign
  uint64_t records_scanned = 0;    ///< valid WAL records seen
  uint64_t records_replayed = 0;   ///< records applied (committed, past snapshot)
  uint64_t commits_applied = 0;    ///< committed statement-transactions redone
  uint64_t wal_bytes_scanned = 0;
  uint64_t truncated_bytes = 0;    ///< torn/uncommitted tail bytes cut off
  bool tail_truncated = false;
  double elapsed_ms = 0.0;
};

/// \brief ARIES-lite redo recovery: load the newest valid snapshot, replay
/// committed WAL transactions with LSN > checkpoint LSN, truncate the torn
/// or uncommitted tail.
///
/// Redo-only is sufficient because mutations reach the in-memory state and
/// the WAL within one statement-level transaction, and an uncommitted suffix
/// (no COMMIT record) is simply never replayed. Records are buffered per
/// transaction and applied atomically at each COMMIT, so a crash can never
/// surface half a statement.
Result<RecoveryStats> RecoverDatabase(const std::string& dir, Catalog* catalog,
                                      db4ai::ModelRegistry* models);

/// Deterministic digest of the full logical engine state: every table's
/// schema and slot layout (live rows serialized, tombstones as markers),
/// index metadata, and every model's metadata + parameter blob. Two states
/// with equal digests are byte-equal for recovery purposes; the crash-matrix
/// harness compares a recovered database against its serial oracle with this.
std::string StateDigest(const Catalog& catalog, const db4ai::ModelRegistry& models);

}  // namespace aidb::storage
