#include "storage/recovery.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>

#include "common/timer.h"
#include "sql/ast.h"
#include "storage/serde.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace aidb::storage {

namespace {

/// Applies one committed record to the live state. Mirrors the corresponding
/// Database::Execute branch, minus parsing/binding (payloads are physical).
Status ApplyRecord(const WalRecord& rec, Catalog* catalog,
                   db4ai::ModelRegistry* models) {
  switch (rec.type) {
    case WalRecordType::kCreateTable: {
      CreateTablePayload p;
      AIDB_ASSIGN_OR_RETURN(p, DecodeCreateTable(rec.payload));
      return catalog->CreateTable(p.table, std::move(p.schema)).status();
    }
    case WalRecordType::kDropTable: {
      std::string table;
      AIDB_ASSIGN_OR_RETURN(table, DecodeDropTable(rec.payload));
      return catalog->DropTable(table);
    }
    case WalRecordType::kInsert: {
      InsertPayload p;
      AIDB_ASSIGN_OR_RETURN(p, DecodeInsert(rec.payload));
      Table* t = nullptr;
      AIDB_ASSIGN_OR_RETURN(t, catalog->GetTable(p.table));
      for (size_t i = 0; i < p.rows.size(); ++i) {
        // Replay runs in commit order, which may differ from the execution
        // order that assigned slots when transactions interleaved: place
        // each row at its recorded slot (later records address rows by id).
        RowId id = p.first_row_id + i;
        AIDB_RETURN_NOT_OK(t->InsertAtSlot(id, p.rows[i]));
        catalog->OnInsert(p.table, id, p.rows[i]);
      }
      return Status::OK();
    }
    case WalRecordType::kUpdate: {
      UpdatePayload p;
      AIDB_ASSIGN_OR_RETURN(p, DecodeUpdate(rec.payload));
      Table* t = nullptr;
      AIDB_ASSIGN_OR_RETURN(t, catalog->GetTable(p.table));
      for (auto& [id, row] : p.changes)
        AIDB_RETURN_NOT_OK(t->Update(id, std::move(row)));
      return Status::OK();
    }
    case WalRecordType::kDelete: {
      DeletePayload p;
      AIDB_ASSIGN_OR_RETURN(p, DecodeDelete(rec.payload));
      Table* t = nullptr;
      AIDB_ASSIGN_OR_RETURN(t, catalog->GetTable(p.table));
      for (RowId id : p.rows) {
        Tuple row;
        AIDB_ASSIGN_OR_RETURN(row, t->Get(id));
        AIDB_RETURN_NOT_OK(t->Delete(id));
        catalog->OnDelete(p.table, id, row);
      }
      return Status::OK();
    }
    case WalRecordType::kCreateModel: {
      CreateModelPayload p;
      AIDB_ASSIGN_OR_RETURN(p, DecodeCreateModel(rec.payload));
      // Re-train on the replayed table state. Training is deterministic
      // (fixed seeds, no wall clock) and the replay has restored the exact
      // rows the original training saw, so the rebuilt model is bit-equal.
      sql::CreateModelStatement stmt;
      stmt.model = p.model;
      stmt.model_type = p.model_type;
      stmt.target = p.target;
      stmt.table = p.table;
      stmt.features = p.features;
      return models->Train(*catalog, stmt);
    }
    case WalRecordType::kCreateIndex: {
      CreateIndexPayload p;
      AIDB_ASSIGN_OR_RETURN(p, DecodeCreateIndex(rec.payload));
      return catalog->CreateIndex(p.index, p.table, p.column, p.is_btree).status();
    }
    case WalRecordType::kDropIndex: {
      std::string index;
      AIDB_ASSIGN_OR_RETURN(index, DecodeDropIndex(rec.payload));
      return catalog->DropIndex(index);
    }
    case WalRecordType::kCommit:
    case WalRecordType::kTxnOp:
    case WalRecordType::kTxnAbort:
      return Status::Internal("recovery: control record reached ApplyRecord");
  }
  return Status::Internal("recovery: unknown record type");
}

}  // namespace

Result<RecoveryStats> RecoverDatabase(const std::string& dir, Catalog* catalog,
                                      db4ai::ModelRegistry* models) {
  Timer timer;
  RecoveryStats stats;

  SnapshotMeta meta;
  Result<bool> loaded = Snapshot::LoadLatest(dir, catalog, models, &meta);
  AIDB_RETURN_NOT_OK(loaded.status());
  if (loaded.ValueOrDie()) {
    stats.snapshot_loaded = true;
    stats.snapshot_lsn = meta.checkpoint_lsn;
    stats.next_txn_id = meta.next_txn_id;
  }

  const std::string wal_path = dir + "/wal.log";
  WalScan scan;
  AIDB_ASSIGN_OR_RETURN(scan, ScanWalFile(wal_path));
  stats.wal_bytes_scanned = scan.file_bytes;
  stats.records_scanned = scan.records.size();
  stats.tail_truncated = scan.tail_torn;

  uint64_t applied_bytes_end = 0;  // offset just past the last resolved record
  uint64_t applied_max_lsn = stats.snapshot_lsn;  // lsn of that record
  // Records buffered per transaction until a COMMIT/ABORT resolves them.
  // Key 0 holds legacy bare records (pre-txn-tagging logs), applied at the
  // next COMMIT whatever its transaction id — those logs are serial.
  std::map<txn::TxnId, std::vector<WalRecord>> pending;
  uint64_t offset = 0;
  for (const WalRecord& rec : scan.records) {
    // Reconstruct each frame's extent to know where committed data ends.
    uint64_t frame_end = offset + 8 + 9 + rec.payload.size();
    offset = frame_end;
    if (rec.lsn <= stats.snapshot_lsn) {
      // Pre-checkpoint leftovers (crash between snapshot rename and WAL
      // reset): already folded into the snapshot, skip but keep on disk.
      applied_bytes_end = frame_end;
      applied_max_lsn = std::max(applied_max_lsn, rec.lsn);
      continue;
    }
    switch (rec.type) {
      case WalRecordType::kTxnOp: {
        TxnOpPayload p;
        AIDB_ASSIGN_OR_RETURN(p, DecodeTxnOp(rec.payload));
        WalRecord inner;
        inner.lsn = rec.lsn;
        inner.type = p.inner_type;
        inner.payload = std::move(p.inner_payload);
        pending[p.txn].push_back(std::move(inner));
        continue;
      }
      case WalRecordType::kTxnAbort: {
        txn::TxnId txn = 0;
        AIDB_ASSIGN_OR_RETURN(txn, DecodeTxnAbort(rec.payload));
        auto it = pending.find(txn);
        if (it != pending.end()) {
          pending.erase(it);
        }
        stats.next_txn_id = std::max(stats.next_txn_id, txn + 1);
        // The abort resolves everything this transaction logged; keeping the
        // record (rather than truncating it away) keeps those earlier ops
        // dead on every future recovery too.
        applied_bytes_end = frame_end;
        applied_max_lsn = std::max(applied_max_lsn, rec.lsn);
        continue;
      }
      case WalRecordType::kCommit:
        break;  // handled below
      default:
        pending[txn::kInvalidTxnId].push_back(rec);
        continue;
    }
    txn::TxnId txn = 0;
    AIDB_ASSIGN_OR_RETURN(txn, DecodeCommit(rec.payload));
    for (txn::TxnId key : {txn::kInvalidTxnId, txn}) {
      auto it = pending.find(key);
      if (it == pending.end()) continue;
      for (const WalRecord& r : it->second) {
        AIDB_RETURN_NOT_OK(ApplyRecord(r, catalog, models));
        ++stats.records_replayed;
      }
      pending.erase(it);
    }
    ++stats.commits_applied;
    stats.next_txn_id = std::max(stats.next_txn_id, txn + 1);
    applied_bytes_end = frame_end;
    applied_max_lsn = std::max(applied_max_lsn, rec.lsn);
  }

  // Cut the tail: torn/corrupt bytes and valid-but-uncommitted records alike
  // are dead (their transaction never committed and must not resurrect once
  // new records are appended after them). Ops of open transactions that are
  // interleaved BEFORE the last resolved record stay on disk; they re-enter
  // pending on every scan and die unresolved every time (their transaction
  // ids are never reused).
  uint64_t max_lsn = applied_max_lsn;
  if (applied_bytes_end < scan.file_bytes) {
    stats.truncated_bytes = scan.file_bytes - applied_bytes_end;
    stats.tail_truncated = true;
    std::error_code ec;
    if (std::filesystem::exists(wal_path, ec)) {
      std::filesystem::resize_file(wal_path, applied_bytes_end, ec);
      if (ec)
        return Status::Internal("recovery: truncate WAL: " + ec.message());
    }
    // LSNs of the discarded records are recycled by the writer.
  } else if (!scan.records.empty()) {
    max_lsn = std::max(max_lsn, scan.records.back().lsn);
  }

  stats.next_lsn = max_lsn + 1;
  stats.elapsed_ms = timer.ElapsedMillis();
  return stats;
}

std::string StateDigest(const Catalog& catalog, const db4ai::ModelRegistry& models) {
  std::string out;
  std::vector<std::string> names = catalog.TableNames();
  std::sort(names.begin(), names.end());
  serde::PutU32(&out, static_cast<uint32_t>(names.size()));
  for (const auto& name : names) {
    const Table* t = std::move(catalog.GetTable(name)).ValueOrDie();
    serde::PutString(&out, name);
    t->schema().AppendTo(&out);
    serde::PutU64(&out, t->NumSlots());
    for (RowId id = 0; id < t->NumSlots(); ++id) {
      if (t->IsLive(id)) {
        serde::PutU8(&out, 1);
        AppendTuple(&out, t->RowAt(id));
      } else {
        // Tombstone contents are not logical state (a fresh replay and a
        // snapshot restore retain different dead bytes) — liveness is.
        serde::PutU8(&out, 0);
      }
    }
  }
  for (const IndexInfo* idx : catalog.AllIndexes()) {
    serde::PutString(&out, idx->name);
    serde::PutString(&out, idx->table);
    serde::PutString(&out, idx->column);
    serde::PutU8(&out, idx->is_btree ? 1 : 0);
  }
  for (const auto& m : models.Snapshot()) m.AppendTo(&out);
  return out;
}

}  // namespace aidb::storage
