#include "storage/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "storage/serde.h"

namespace aidb::storage {

namespace {

constexpr char kMagic[8] = {'A', 'I', 'D', 'B', 'S', 'N', 'A', 'P'};
constexpr uint32_t kVersion = 1;

std::string SnapshotPath(const std::string& dir, uint64_t lsn) {
  return dir + "/snapshot-" + std::to_string(lsn) + ".snap";
}

/// snapshot-<lsn>.snap files in `dir`, newest (highest LSN) first.
std::vector<std::pair<uint64_t, std::string>> ListSnapshots(const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("snapshot-", 0) != 0 || name.size() < 15) continue;
    if (name.substr(name.size() - 5) != ".snap") continue;
    errno = 0;
    char* end = nullptr;
    uint64_t lsn = std::strtoull(name.c_str() + 9, &end, 10);
    if (errno != 0 || end == nullptr || std::string(end) != ".snap") continue;
    out.emplace_back(lsn, entry.path().string());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

Status WriteFileDurably(const std::string& path, const std::string& bytes,
                        FaultInjector* fault) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    return Status::Internal("snapshot: open " + path + ": " + std::strerror(errno));
  size_t to_write = bytes.size();
  if (fault != nullptr) {
    FaultKind kind = fault->Fire(FaultPoint::kSnapshotWrite);
    if (kind != FaultKind::kNone) {
      // Crash mid temp-file write: a truncated .tmp that is never renamed.
      size_t torn = bytes.empty() ? 0 : fault->rng().Uniform(bytes.size());
      [[maybe_unused]] ssize_t w = ::write(fd, bytes.data(), torn);
      ::close(fd);
      return Status::Aborted("snapshot: simulated crash (" +
                             std::string(FaultKindName(kind)) + ")");
    }
  }
  size_t done = 0;
  while (done < to_write) {
    ssize_t w = ::write(fd, bytes.data() + done, to_write - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal("snapshot: write: " + std::string(std::strerror(errno)));
    }
    done += static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::Internal("snapshot: fsync: " + std::string(std::strerror(errno)));
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace

Result<std::string> Snapshot::Write(const std::string& dir, const SnapshotMeta& meta,
                                    const Catalog& catalog,
                                    const db4ai::ModelRegistry& models,
                                    FaultInjector* fault) {
  std::string body;
  body.append(kMagic, sizeof(kMagic));
  serde::PutU32(&body, kVersion);
  serde::PutU64(&body, meta.checkpoint_lsn);
  serde::PutU64(&body, meta.next_txn_id);

  // Tables: name, schema, then every slot in RowId order. Tombstoned slots
  // are kept (flag only) so replayed WAL records hit the right RowIds.
  std::vector<std::string> names = catalog.TableNames();
  std::sort(names.begin(), names.end());
  serde::PutU32(&body, static_cast<uint32_t>(names.size()));
  for (const auto& name : names) {
    const Table* t = std::move(catalog.GetTable(name)).ValueOrDie();
    serde::PutString(&body, name);
    t->schema().AppendTo(&body);
    serde::PutU64(&body, t->NumSlots());
    for (RowId id = 0; id < t->NumSlots(); ++id) {
      if (t->IsLive(id)) {
        serde::PutU8(&body, 1);
        AppendTuple(&body, t->RowAt(id));
      } else {
        serde::PutU8(&body, 0);
      }
    }
  }

  // Index metadata only: contents are rebuilt by CreateIndex backfill.
  auto indexes = catalog.AllIndexes();
  serde::PutU32(&body, static_cast<uint32_t>(indexes.size()));
  for (const IndexInfo* idx : indexes) {
    serde::PutString(&body, idx->name);
    serde::PutString(&body, idx->table);
    serde::PutString(&body, idx->column);
    serde::PutU8(&body, idx->is_btree ? 1 : 0);
  }

  // Models: metadata + parameter blobs.
  auto serialized = models.Snapshot();
  serde::PutU32(&body, static_cast<uint32_t>(serialized.size()));
  for (const auto& m : serialized) m.AppendTo(&body);

  serde::PutU32(&body, serde::Crc32(body.data(), body.size()));

  std::string final_path = SnapshotPath(dir, meta.checkpoint_lsn);
  std::string tmp_path = final_path + ".tmp";
  AIDB_RETURN_NOT_OK(WriteFileDurably(tmp_path, body, fault));
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0)
    return Status::Internal("snapshot: rename: " + std::string(std::strerror(errno)));
  if (fault != nullptr) {
    FaultKind kind = fault->Fire(FaultPoint::kPostSnapshotRename);
    if (kind != FaultKind::kNone) {
      // Snapshot is durable but the WAL was not reset: recovery must skip
      // records with lsn <= checkpoint_lsn instead of replaying them twice.
      return Status::Aborted("snapshot: simulated crash after rename (" +
                             std::string(FaultKindName(kind)) + ")");
    }
  }
  return final_path;
}

namespace {

Status LoadOne(const std::string& path, Catalog* catalog,
               db4ai::ModelRegistry* models, SnapshotMeta* meta) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    return Status::Internal("snapshot: open " + path + ": " + std::strerror(errno));
  std::string data;
  char chunk[1 << 16];
  ssize_t n = 0;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) data.append(chunk, n);
  ::close(fd);
  if (n < 0)
    return Status::Internal("snapshot: read: " + std::string(std::strerror(errno)));

  if (data.size() < sizeof(kMagic) + 4 + 4 ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0)
    return Status::Internal("snapshot: bad magic in " + path);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data.data() + data.size() - 4, 4);
  if (serde::Crc32(data.data(), data.size() - 4) != stored_crc)
    return Status::Internal("snapshot: CRC mismatch in " + path);

  serde::Reader r(data.data() + sizeof(kMagic), data.size() - sizeof(kMagic) - 4);
  uint32_t version = 0;
  if (!r.ReadU32(&version)) return Status::Internal("snapshot: truncated header");
  if (version != kVersion)
    return Status::Internal("snapshot: unsupported version " +
                            std::to_string(version));
  if (!r.ReadU64(&meta->checkpoint_lsn) || !r.ReadU64(&meta->next_txn_id))
    return Status::Internal("snapshot: truncated meta");

  uint32_t ntables = 0;
  if (!r.ReadU32(&ntables)) return Status::Internal("snapshot: truncated tables");
  for (uint32_t i = 0; i < ntables; ++i) {
    std::string name;
    if (!r.ReadString(&name)) return Status::Internal("snapshot: truncated table");
    Schema schema;
    AIDB_ASSIGN_OR_RETURN(schema, Schema::Deserialize(&r));
    Table* t = nullptr;
    AIDB_ASSIGN_OR_RETURN(t, catalog->CreateTable(name, std::move(schema)));
    uint64_t nslots = 0;
    if (!r.ReadU64(&nslots)) return Status::Internal("snapshot: truncated slots");
    for (uint64_t s = 0; s < nslots; ++s) {
      uint8_t live = 0;
      if (!r.ReadU8(&live)) return Status::Internal("snapshot: truncated slot");
      if (live) {
        Tuple row;
        AIDB_ASSIGN_OR_RETURN(row, DeserializeTuple(&r));
        AIDB_RETURN_NOT_OK(t->Insert(std::move(row)).status());
      } else {
        t->AppendTombstone();
      }
    }
  }

  uint32_t nindexes = 0;
  if (!r.ReadU32(&nindexes)) return Status::Internal("snapshot: truncated indexes");
  for (uint32_t i = 0; i < nindexes; ++i) {
    std::string iname, table, column;
    uint8_t btree = 1;
    if (!r.ReadString(&iname) || !r.ReadString(&table) || !r.ReadString(&column) ||
        !r.ReadU8(&btree))
      return Status::Internal("snapshot: truncated index");
    AIDB_RETURN_NOT_OK(
        catalog->CreateIndex(iname, table, column, btree != 0).status());
  }

  uint32_t nmodels = 0;
  if (!r.ReadU32(&nmodels)) return Status::Internal("snapshot: truncated models");
  for (uint32_t i = 0; i < nmodels; ++i) {
    db4ai::SerializedModel m;
    AIDB_ASSIGN_OR_RETURN(m, db4ai::SerializedModel::Deserialize(&r));
    AIDB_RETURN_NOT_OK(models->Restore(m));
  }
  return Status::OK();
}

}  // namespace

Result<bool> Snapshot::LoadLatest(const std::string& dir, Catalog* catalog,
                                  db4ai::ModelRegistry* models,
                                  SnapshotMeta* meta) {
  for (const auto& [lsn, path] : ListSnapshots(dir)) {
    // Load into scratch state first: a corrupt candidate must not leave the
    // real catalog half-populated before we fall back to an older snapshot.
    Catalog scratch_catalog;
    db4ai::ModelRegistry scratch_models;
    SnapshotMeta scratch_meta;
    if (LoadOne(path, &scratch_catalog, &scratch_models, &scratch_meta).ok()) {
      AIDB_RETURN_NOT_OK(LoadOne(path, catalog, models, meta));
      return true;
    }
  }
  return false;
}

void Snapshot::RemoveOld(const std::string& dir, size_t keep) {
  auto snaps = ListSnapshots(dir);
  for (size_t i = keep; i < snaps.size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(snaps[i].second, ec);
  }
  // Stray temp files from crashed checkpoints are garbage by definition.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp")
      std::filesystem::remove(entry.path(), ec);
  }
}

}  // namespace aidb::storage
