#pragma once

#include <cstdint>
#include <string>

#include "catalog/catalog.h"
#include "common/result.h"
#include "db4ai/model_registry.h"
#include "storage/fault_injector.h"

namespace aidb::storage {

/// Header/trailer facts of one snapshot file.
struct SnapshotMeta {
  uint64_t checkpoint_lsn = 0;  ///< every WAL record <= this LSN is folded in
  uint64_t next_txn_id = 1;     ///< statement-transaction counter to resume
};

/// \brief Versioned full-state checkpoint files.
///
/// Format (single machine, native byte order; CRC-32 over the whole body as
/// a trailer):
///   magic "AIDBSNAP" | u32 version | u64 checkpoint_lsn | u64 next_txn_id
///   | tables (schema + every slot, tombstones included, so RowIds survive)
///   | index metadata (rebuilt by backfill on load)
///   | model registry (metadata + parameter blobs)
///   | u32 crc
///
/// Files are named snapshot-<lsn>.snap and written via temp-file + rename,
/// so a crash mid-checkpoint leaves the previous snapshot untouched; the
/// loader picks the newest file whose CRC validates and falls back to older
/// ones otherwise.
class Snapshot {
 public:
  /// Serializes catalog + models at `meta` into dir/snapshot-<lsn>.snap.
  /// Injection points: mid temp-file write and post-rename (see
  /// FaultPoint); on a fired fault returns Status::Aborted.
  static Result<std::string> Write(const std::string& dir, const SnapshotMeta& meta,
                                   const Catalog& catalog,
                                   const db4ai::ModelRegistry& models,
                                   FaultInjector* fault);

  /// Loads the newest valid snapshot in `dir` into the (empty) catalog and
  /// registry. Returns false when no valid snapshot exists (fresh database
  /// or all candidates corrupt — recovery then replays the WAL from LSN 0).
  static Result<bool> LoadLatest(const std::string& dir, Catalog* catalog,
                                 db4ai::ModelRegistry* models, SnapshotMeta* meta);

  /// Deletes all but the `keep` newest snapshot files (checkpoint GC).
  static void RemoveOld(const std::string& dir, size_t keep);
};

}  // namespace aidb::storage
