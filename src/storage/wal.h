#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "monitor/metrics.h"
#include "monitor/span.h"
#include "storage/fault_injector.h"
#include "storage/schema.h"
#include "txn/types.h"

namespace aidb::storage {

/// Logical operations the engine journals. Payload encodings are defined by
/// the Encode*/Decode* helpers below; the on-disk frame is
///   [u32 body_len][u32 crc32(body)][body = u64 lsn | u8 type | payload].
enum class WalRecordType : uint8_t {
  kCreateTable = 1,
  kDropTable = 2,
  kInsert = 3,
  kUpdate = 4,
  kDelete = 5,
  kCreateModel = 6,
  kCommit = 7,
  kCreateIndex = 8,
  kDropIndex = 9,
  /// Transaction-tagged operation: payload = u64 txn_id | u8 inner type |
  /// inner payload. Recovery buffers these per transaction and applies them
  /// only when the matching kCommit(txn_id) arrives — interleaved
  /// multi-session transactions replay whole-or-nothing.
  kTxnOp = 10,
  /// Explicit rollback: payload = u64 txn_id. Recovery discards the
  /// transaction's buffered ops (an uncommitted tail is discarded the same
  /// way, just without the record).
  kTxnAbort = 11,
};

const char* WalRecordTypeName(WalRecordType t);

/// One decoded WAL record: LSN + type + still-encoded payload.
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kCommit;
  std::string payload;
};

/// --- Typed payloads ---------------------------------------------------------

struct CreateTablePayload {
  std::string table;
  Schema schema;
};

struct InsertPayload {
  std::string table;
  RowId first_row_id = 0;  ///< slot the first row landed in (replay sanity)
  std::vector<Tuple> rows;
};

struct UpdatePayload {
  std::string table;
  std::vector<std::pair<RowId, Tuple>> changes;  ///< physical after-images
};

struct DeletePayload {
  std::string table;
  std::vector<RowId> rows;
};

struct CreateModelPayload {
  std::string model;
  std::string model_type;
  std::string target;
  std::string table;
  std::vector<std::string> features;
};

struct CreateIndexPayload {
  std::string index;
  std::string table;
  std::string column;
  bool is_btree = true;
};

/// A kTxnOp wrapper: which transaction the inner record belongs to.
struct TxnOpPayload {
  txn::TxnId txn = txn::kInvalidTxnId;
  WalRecordType inner_type = WalRecordType::kCommit;
  std::string inner_payload;
};

std::string EncodeCreateTable(const CreateTablePayload& p);
std::string EncodeDropTable(const std::string& table);
std::string EncodeInsert(const InsertPayload& p);
std::string EncodeUpdate(const UpdatePayload& p);
std::string EncodeDelete(const DeletePayload& p);
std::string EncodeCreateModel(const CreateModelPayload& p);
std::string EncodeCommit(txn::TxnId txn);
std::string EncodeCreateIndex(const CreateIndexPayload& p);
std::string EncodeDropIndex(const std::string& index);
std::string EncodeTxnOp(const TxnOpPayload& p);
std::string EncodeTxnAbort(txn::TxnId txn);

Result<CreateTablePayload> DecodeCreateTable(const std::string& payload);
Result<std::string> DecodeDropTable(const std::string& payload);
Result<InsertPayload> DecodeInsert(const std::string& payload);
Result<UpdatePayload> DecodeUpdate(const std::string& payload);
Result<DeletePayload> DecodeDelete(const std::string& payload);
Result<CreateModelPayload> DecodeCreateModel(const std::string& payload);
Result<txn::TxnId> DecodeCommit(const std::string& payload);
Result<CreateIndexPayload> DecodeCreateIndex(const std::string& payload);
Result<std::string> DecodeDropIndex(const std::string& payload);
Result<TxnOpPayload> DecodeTxnOp(const std::string& payload);
Result<txn::TxnId> DecodeTxnAbort(const std::string& payload);

/// Counters the monitoring stack samples (monitor/durability_metrics.h).
struct WalStats {
  uint64_t records_appended = 0;
  uint64_t bytes_written = 0;   ///< bytes physically written to the file
  uint64_t flushes = 0;         ///< group-commit buffer drains
  uint64_t fsyncs = 0;          ///< syncs issued (logical, even in kNoSync mode)
};

/// \brief Append-only, CRC-framed write-ahead log with group commit.
///
/// Appends accumulate in an in-memory buffer; every `flush_interval` records
/// the buffer is written and fsynced in one batch. flush_interval=1 is
/// synchronous commit; larger intervals trade a bounded durability lag
/// (`unflushed_records()`) for fewer fsyncs — the exact surface the
/// `wal_flush_interval` advisor knob tunes.
///
/// Thread-safe: concurrent DML statements (MVCC writers run under the
/// service's shared lock) append through one internal mutex, which also
/// makes the LSN sequence the single total order of log records.
class WalWriter {
 public:
  struct Options {
    size_t flush_interval = 64;
    /// When false, flushes skip the physical fsync (still counted in stats).
    /// Used by the knob environment and benches where the response surface
    /// comes from deterministic counters, not disk latency.
    bool sync = true;
    FaultInjector* fault = nullptr;  ///< not owned; nullptr = no injection
    /// Engine metric registry (wal.records / wal.flushes / wal.fsyncs /
    /// wal.bytes counters, wal.stall_us for injected device stalls,
    /// wal.flush_us histogram). Not owned; must outlive the writer.
    /// nullptr = unmetered.
    monitor::MetricsRegistry* metrics = nullptr;
    /// Span collector for the end-to-end request traces: each group-commit
    /// flush records a `wal_flush` span attributed to the request that
    /// triggered it (the flushing thread's trace context — piggybacking
    /// commits record no span of their own). Not owned; nullptr = no spans.
    monitor::SpanCollector* spans = nullptr;
  };

  /// Opens (creating if needed) `path` for appending; `next_lsn` continues
  /// the LSN sequence recovery established.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 uint64_t next_lsn,
                                                 const Options& opts);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Stamps the record with the next LSN, buffers it, and drains the buffer
  /// if the group-commit interval is reached. Returns the assigned LSN.
  /// Status::Aborted when a fault fires ("the process died mid-write").
  Result<uint64_t> Append(WalRecordType type, std::string payload);

  /// Drains the group-commit buffer: one write + one (optional) fsync.
  Status Flush();

  /// Truncates the file after a checkpoint made every logged record
  /// redundant. LSNs keep counting from where they were.
  Status ResetAfterCheckpoint();

  void set_flush_interval(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    opts_.flush_interval = n == 0 ? 1 : n;
  }
  size_t flush_interval() const {
    std::lock_guard<std::mutex> lock(mu_);
    return opts_.flush_interval;
  }

  uint64_t next_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_lsn_;
  }
  uint64_t last_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_lsn_ - 1;
  }
  /// Records buffered but not yet durable — the current durability lag.
  size_t unflushed_records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return buffered_records_;
  }
  bool crashed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crashed_;
  }
  WalStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  WalWriter(int fd, std::string path, uint64_t next_lsn, const Options& opts)
      : fd_(fd), path_(std::move(path)), next_lsn_(next_lsn), opts_(opts) {
    if (opts_.metrics != nullptr) {
      records_metric_ = opts_.metrics->GetCounter("wal.records");
      flushes_metric_ = opts_.metrics->GetCounter("wal.flushes");
      fsyncs_metric_ = opts_.metrics->GetCounter("wal.fsyncs");
      bytes_metric_ = opts_.metrics->GetCounter("wal.bytes");
      flush_us_metric_ = opts_.metrics->GetHistogram("wal.flush_us");
      stall_us_metric_ = opts_.metrics->GetCounter("wal.stall_us");
    }
  }

  Status PhysicalWrite(const char* data, size_t n);
  Status SimulateCrash(FaultKind kind);
  Status FlushLocked();

  mutable std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  uint64_t next_lsn_ = 1;
  Options opts_;
  std::string buffer_;
  size_t buffered_records_ = 0;
  uint64_t synced_size_ = 0;  ///< file size at the last successful fsync
  uint64_t file_size_ = 0;
  bool crashed_ = false;
  WalStats stats_;
  monitor::Counter* records_metric_ = nullptr;
  monitor::Counter* flushes_metric_ = nullptr;
  monitor::Counter* fsyncs_metric_ = nullptr;
  monitor::Counter* bytes_metric_ = nullptr;
  monitor::LatencyHistogram* flush_us_metric_ = nullptr;
  monitor::Counter* stall_us_metric_ = nullptr;
};

/// Result of scanning a WAL file front to back.
struct WalScan {
  std::vector<WalRecord> records;  ///< every frame with a valid CRC, in order
  uint64_t valid_bytes = 0;        ///< offset just past the last valid frame
  uint64_t file_bytes = 0;
  bool tail_torn = false;          ///< trailing partial/corrupt frame found
};

/// Reads every valid frame of `path`. A missing file yields an empty scan;
/// a torn or corrupted tail ends the scan (tail_torn=true) instead of
/// failing — recovery truncates at valid_bytes and carries on.
Result<WalScan> ScanWalFile(const std::string& path);

/// Encodes one frame ([len][crc][lsn|type|payload]) — exposed for tests
/// that hand-craft corrupt logs.
std::string EncodeWalFrame(uint64_t lsn, WalRecordType type,
                           const std::string& payload);

}  // namespace aidb::storage
