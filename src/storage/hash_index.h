#pragma once

#include <unordered_map>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace aidb {

/// \brief Equality-only secondary index: Value -> RowIds.
class HashIndex {
 public:
  void Insert(const Value& key, RowId row) { map_[KeyOf(key)].push_back(row); }

  void Erase(const Value& key, RowId row) {
    auto it = map_.find(KeyOf(key));
    if (it == map_.end()) return;
    auto& v = it->second;
    for (size_t i = 0; i < v.size(); ++i) {
      if (v[i] == row) {
        v[i] = v.back();
        v.pop_back();
        break;
      }
    }
  }

  const std::vector<RowId>* Find(const Value& key) const {
    auto it = map_.find(KeyOf(key));
    return it == map_.end() ? nullptr : &it->second;
  }

  size_t NumKeys() const { return map_.size(); }

 private:
  // Keys are hashed through Value::Hash combined with a type tag so INT 1 and
  // DOUBLE 1.0 collide deliberately (they compare equal).
  static uint64_t KeyOf(const Value& v) {
    if (v.type() == ValueType::kInt || v.type() == ValueType::kDouble) {
      return std::hash<double>{}(v.AsDouble());
    }
    return v.Hash();
  }

  std::unordered_map<uint64_t, std::vector<RowId>> map_;
};

}  // namespace aidb
