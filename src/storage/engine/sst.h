#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/fault_injector.h"
#include "storage/table.h"

namespace aidb::storage {

/// One entry to persist: a paged-out slot's frozen version.
struct SstEntry {
  RowId slot = 0;
  uint64_t begin_ts = 0;      ///< commit timestamp of the frozen version
  const Tuple* row = nullptr; ///< borrowed; valid for the Write call only
};

/// Per-block metadata decoded from the footer: slot range, file extent, and
/// per-column zone maps (double min/max; non-numeric or NULL columns carry
/// [-inf, +inf] so they can never refute a predicate).
struct SstBlockMeta {
  RowId first_slot = 0;
  RowId last_slot = 0;
  uint64_t offset = 0;  ///< block frame start within the file
  uint32_t length = 0;  ///< frame length (header + body)
  uint32_t entries = 0;
  std::vector<std::pair<double, double>> zones;  ///< per column (min, max)
};

/// Knobs of one SST write (subset of LsmOptions the format cares about).
struct SstWriteOptions {
  size_t bloom_bits_per_key = 8;  ///< 0 disables the bloom filter
  size_t level = 0;
  size_t block_entries = 256;  ///< entries per data block
  bool compaction = false;     ///< fire kCompactionWrite instead of kSstBlockWrite
  FaultInjector* fault = nullptr;
};

/// Counters reported back by WriteSst.
struct SstWriteResult {
  uint64_t blocks = 0;
  uint64_t bytes = 0;
  uint64_t entries = 0;
};

/// Writes a slot-sorted SST file: magic, CRC-framed data blocks, a CRC-framed
/// footer (block index + zone maps + bloom over slot ids), and a fixed
/// trailer locating the footer. The file is fsynced before returning OK; any
/// fired fault leaves deterministic damage and returns Aborted, exactly like
/// the WAL writer's crash simulation.
Status WriteSst(const std::string& path, const std::vector<SstEntry>& entries,
                size_t num_columns, const SstWriteOptions& opts,
                SstWriteResult* out);

/// \brief One immutable sorted run, loaded and validated from disk.
///
/// Load() re-reads the whole file, checks the trailer, footer CRC and every
/// data-block CRC — a half-flushed or bit-rotted file never yields a run.
/// Entry decode is lazy per block; decoded Version nodes live in per-block
/// deques whose addresses are stable for the run's lifetime, so ColdVersion
/// pointers handed to readers stay valid until the run itself is disposed
/// (through the TransactionManager's serial-fenced retire list).
class SstRun {
 public:
  /// `adopted`: decode every entry at txn::kBootstrapTs instead of its
  /// persisted commit timestamp — the timestamp space recovered rows live in
  /// (recovery reseeds the commit clock, so pre-crash timestamps no longer
  /// mean anything to post-crash snapshots).
  static Result<std::shared_ptr<SstRun>> Load(const std::string& path,
                                              bool adopted);

  /// Newest persisted version of `slot`, or nullptr when absent. Thread-safe;
  /// the returned pointer stays valid while the run is alive.
  const Version* Find(RowId slot);
  /// Find() plus probe accounting into the caller's counters.
  const Version* Find(RowId slot, std::atomic<uint64_t>* bloom_probes,
                      std::atomic<uint64_t>* bloom_negatives,
                      std::atomic<uint64_t>* runs_probed);

  /// Bloom check only (no decode); true when the run may hold `slot`.
  bool MayContain(RowId slot) const;

  /// May any entry with slot in [begin, end) satisfy `column <cmp> lit`?
  /// Conservative per-block zone-map refutation.
  bool RangeMayMatch(RowId begin, RowId end, size_t col, ColdTier::Cmp op,
                     double lit) const;

  /// Invokes fn(slot, begin_ts, row) for every entry, slot-ascending
  /// (compaction input). Decodes every block through the shared cache.
  void ForEach(const std::function<void(RowId, uint64_t, const Tuple&)>& fn);

  const std::string& path() const { return path_; }
  size_t level() const { return level_; }
  uint64_t entry_count() const { return entry_count_; }
  RowId min_slot() const { return min_slot_; }
  RowId max_slot() const { return max_slot_; }
  uint64_t file_bytes() const { return file_bytes_; }
  bool adopted() const { return adopted_; }
  size_t num_columns() const { return num_columns_; }

 private:
  SstRun() = default;

  struct DecodedBlock {
    std::vector<RowId> slots;     ///< ascending, parallel to versions
    std::deque<Version> versions; ///< address-stable
  };
  /// Decodes block `b` (once; later calls return the cache).
  const DecodedBlock* Block(size_t b);

  std::string path_;
  std::string raw_;  ///< whole validated file
  size_t level_ = 0;
  size_t num_columns_ = 0;
  uint64_t entry_count_ = 0;
  RowId min_slot_ = 0;
  RowId max_slot_ = 0;
  uint64_t file_bytes_ = 0;
  bool adopted_ = false;
  size_t bloom_bits_per_key_ = 0;
  std::vector<uint64_t> bloom_;
  std::vector<SstBlockMeta> blocks_;
  std::mutex decode_mu_;
  std::vector<std::unique_ptr<DecodedBlock>> decoded_;
};

}  // namespace aidb::storage
