#include "storage/engine/sst.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>

#include "storage/serde.h"
#include "txn/types.h"

namespace aidb::storage {

namespace {

constexpr char kMagic[8] = {'A', 'I', 'D', 'B', 'S', 'S', 'T', '1'};
constexpr char kTrailerMagic[8] = {'A', 'I', 'D', 'B', 'S', 'S', 'T', 'F'};
constexpr size_t kTrailerSize = 8 + sizeof(kTrailerMagic);  // footer offset + magic
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Same mixer as the toy LSM tree's bloom (three salted probes).
uint64_t BloomHash(uint64_t key, uint64_t salt) {
  uint64_t x = key * 0x9E3779B97F4A7C15ULL + salt;
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  return x;
}

void BloomAdd(std::vector<uint64_t>* bloom, uint64_t key) {
  uint64_t nbits = bloom->size() * 64;
  for (uint64_t i = 0; i < 3; ++i) {
    uint64_t bit = BloomHash(key, i) % nbits;
    (*bloom)[bit / 64] |= (1ULL << (bit % 64));
  }
}

bool BloomTest(const std::vector<uint64_t>& bloom, uint64_t key) {
  if (bloom.empty()) return true;
  uint64_t nbits = bloom.size() * 64;
  for (uint64_t i = 0; i < 3; ++i) {
    uint64_t bit = BloomHash(key, i) % nbits;
    if (!(bloom[bit / 64] & (1ULL << (bit % 64)))) return false;
  }
  return true;
}

/// Appends a CRC-framed body: [u32 body_len][u32 crc32(body)][body].
void AppendFrame(std::string* out, const std::string& body) {
  serde::PutU32(out, static_cast<uint32_t>(body.size()));
  serde::PutU32(out, serde::Crc32(body.data(), body.size()));
  out->append(body);
}

Status PhysicalWrite(int fd, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::write(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("sst: write: " + std::string(std::strerror(errno)));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

/// Applies the armed fault's file damage for a buffer about to be written,
/// mirroring WalWriter::SimulateCrash: torn = a prefix lands, corrupt = all
/// lands with one byte flipped, dropped-fsync = everything since the last
/// durable sync (here: the whole file, synced only at the end) vanishes.
Status SimulateCrash(int fd, const std::string& buf, FaultKind kind,
                     FaultInjector* fault) {
  switch (kind) {
    case FaultKind::kTornWrite: {
      size_t torn = buf.empty() ? 0 : 1 + fault->rng().Uniform(buf.size());
      PhysicalWrite(fd, buf.data(), std::min(torn, buf.size())).ok();
      ::fsync(fd);
      break;
    }
    case FaultKind::kCorruptByte: {
      std::string damaged = buf;
      if (!damaged.empty()) {
        size_t at = fault->rng().Uniform(damaged.size());
        damaged[at] = static_cast<char>(damaged[at] ^ 0x40);
      }
      PhysicalWrite(fd, damaged.data(), damaged.size()).ok();
      ::fsync(fd);
      break;
    }
    case FaultKind::kDroppedFsync: {
      PhysicalWrite(fd, buf.data(), buf.size()).ok();
      ::ftruncate(fd, 0);
      break;
    }
    case FaultKind::kCleanCrash:
    case FaultKind::kNone:
      break;
  }
  ::close(fd);
  return Status::Aborted("sst: simulated crash (" +
                         std::string(FaultKindName(kind)) + ")");
}

/// Per-column zone bounds over one block of entries. Bounds are widened one
/// ulp outward so a lossy int64 -> double cast can never exclude a real key;
/// NULL or string values poison the column to [-inf, +inf].
std::vector<std::pair<double, double>> ComputeZones(
    const std::vector<SstEntry>& entries, size_t lo, size_t hi, size_t ncols) {
  std::vector<std::pair<double, double>> zones(ncols, {kInf, -kInf});
  std::vector<bool> poisoned(ncols, false);
  for (size_t i = lo; i < hi; ++i) {
    const Tuple& row = *entries[i].row;
    for (size_t c = 0; c < ncols && c < row.size(); ++c) {
      const Value& v = row[c];
      if (v.is_null() || v.type() == ValueType::kString) {
        poisoned[c] = true;
        continue;
      }
      double d = v.AsDouble();
      zones[c].first = std::min(zones[c].first, d);
      zones[c].second = std::max(zones[c].second, d);
    }
    for (size_t c = row.size(); c < ncols; ++c) poisoned[c] = true;
  }
  for (size_t c = 0; c < ncols; ++c) {
    if (poisoned[c] || zones[c].first > zones[c].second) {
      zones[c] = {-kInf, kInf};
    } else {
      zones[c].first = std::nextafter(zones[c].first, -kInf);
      zones[c].second = std::nextafter(zones[c].second, kInf);
    }
  }
  return zones;
}

bool ZoneMayMatch(const std::pair<double, double>& z, ColdTier::Cmp op,
                  double lit) {
  const double mn = z.first, mx = z.second;
  switch (op) {
    case ColdTier::Cmp::kEq: return lit >= mn && lit <= mx;
    case ColdTier::Cmp::kLt: return mn < lit;
    case ColdTier::Cmp::kLe: return mn <= lit;
    case ColdTier::Cmp::kGt: return mx > lit;
    case ColdTier::Cmp::kGe: return mx >= lit;
  }
  return true;
}

}  // namespace

Status WriteSst(const std::string& path, const std::vector<SstEntry>& entries,
                size_t num_columns, const SstWriteOptions& opts,
                SstWriteResult* out) {
  if (entries.empty()) return Status::InvalidArgument("sst: empty run");
  const size_t per_block = std::max<size_t>(1, opts.block_entries);
  const FaultPoint block_point =
      opts.compaction ? FaultPoint::kCompactionWrite : FaultPoint::kSstBlockWrite;

  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    return Status::Internal("sst: open " + path + ": " + std::strerror(errno));

  std::string head(kMagic, sizeof(kMagic));
  Status st = PhysicalWrite(fd, head.data(), head.size());
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  uint64_t offset = head.size();

  std::vector<SstBlockMeta> blocks;
  std::string footer;
  for (size_t lo = 0; lo < entries.size(); lo += per_block) {
    const size_t hi = std::min(lo + per_block, entries.size());
    std::string body;
    serde::PutU32(&body, static_cast<uint32_t>(hi - lo));
    for (size_t i = lo; i < hi; ++i) {
      serde::PutU64(&body, entries[i].slot);
      serde::PutU64(&body, entries[i].begin_ts);
      AppendTuple(&body, *entries[i].row);
    }
    std::string frame;
    AppendFrame(&frame, body);

    if (opts.fault != nullptr) {
      FaultKind kind = opts.fault->Fire(block_point);
      if (kind != FaultKind::kNone) return SimulateCrash(fd, frame, kind, opts.fault);
    }
    st = PhysicalWrite(fd, frame.data(), frame.size());
    if (!st.ok()) {
      ::close(fd);
      return st;
    }

    SstBlockMeta meta;
    meta.first_slot = entries[lo].slot;
    meta.last_slot = entries[hi - 1].slot;
    meta.offset = offset;
    meta.length = static_cast<uint32_t>(frame.size());
    meta.entries = static_cast<uint32_t>(hi - lo);
    meta.zones = ComputeZones(entries, lo, hi, num_columns);
    offset += frame.size();
    blocks.push_back(std::move(meta));
    if (out != nullptr) {
      ++out->blocks;
      out->bytes += frame.size();
      out->entries += hi - lo;
    }
  }

  // Footer: counts, bloom over slot ids, block index with zone maps.
  std::string body;
  serde::PutU64(&body, entries.size());
  serde::PutU64(&body, entries.front().slot);
  serde::PutU64(&body, entries.back().slot);
  serde::PutU32(&body, static_cast<uint32_t>(opts.level));
  serde::PutU32(&body, static_cast<uint32_t>(num_columns));
  serde::PutU32(&body, static_cast<uint32_t>(opts.bloom_bits_per_key));
  std::vector<uint64_t> bloom;
  if (opts.bloom_bits_per_key > 0) {
    size_t bits = std::max<size_t>(64, entries.size() * opts.bloom_bits_per_key);
    bloom.assign((bits + 63) / 64, 0);
    for (const SstEntry& e : entries) BloomAdd(&bloom, e.slot);
  }
  serde::PutU32(&body, static_cast<uint32_t>(bloom.size()));
  for (uint64_t w : bloom) serde::PutU64(&body, w);
  serde::PutU32(&body, static_cast<uint32_t>(blocks.size()));
  for (const SstBlockMeta& b : blocks) {
    serde::PutU64(&body, b.first_slot);
    serde::PutU64(&body, b.last_slot);
    serde::PutU64(&body, b.offset);
    serde::PutU32(&body, b.length);
    serde::PutU32(&body, b.entries);
    for (const auto& [mn, mx] : b.zones) {
      serde::PutDouble(&body, mn);
      serde::PutDouble(&body, mx);
    }
  }
  AppendFrame(&footer, body);
  serde::PutU64(&footer, offset);  // trailer: footer frame offset + magic
  footer.append(kTrailerMagic, sizeof(kTrailerMagic));

  if (opts.fault != nullptr) {
    FaultKind kind = opts.fault->Fire(FaultPoint::kSstFooter);
    if (kind == FaultKind::kCleanCrash) {
      // The file completes durably but the caller dies before the manifest
      // references it: a valid orphan recovery must garbage-collect.
      PhysicalWrite(fd, footer.data(), footer.size()).ok();
      ::fsync(fd);
      ::close(fd);
      return Status::Aborted("sst: simulated crash (clean-crash)");
    }
    if (kind != FaultKind::kNone) return SimulateCrash(fd, footer, kind, opts.fault);
  }
  st = PhysicalWrite(fd, footer.data(), footer.size());
  if (st.ok() && ::fsync(fd) != 0) {
    st = Status::Internal("sst: fsync: " + std::string(std::strerror(errno)));
  }
  ::close(fd);
  if (out != nullptr) out->bytes += footer.size();
  return st;
}

Result<std::shared_ptr<SstRun>> SstRun::Load(const std::string& path,
                                             bool adopted) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    return Status::Internal("sst: open " + path + ": " + std::strerror(errno));
  std::string data;
  char chunk[1 << 16];
  ssize_t n = 0;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) data.append(chunk, n);
  ::close(fd);
  if (n < 0)
    return Status::Internal("sst: read: " + std::string(std::strerror(errno)));

  if (data.size() < sizeof(kMagic) + kTrailerSize ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0 ||
      std::memcmp(data.data() + data.size() - sizeof(kTrailerMagic),
                  kTrailerMagic, sizeof(kTrailerMagic)) != 0) {
    return Status::Internal("sst: bad magic/trailer in " + path);
  }
  uint64_t footer_off = 0;
  std::memcpy(&footer_off, data.data() + data.size() - kTrailerSize, 8);
  if (footer_off < sizeof(kMagic) || footer_off + 8 > data.size() - kTrailerSize)
    return Status::Internal("sst: footer offset out of range in " + path);

  auto read_frame = [&](uint64_t off, uint64_t limit,
                        serde::Reader* out_r) -> Status {
    if (off + 8 > limit) return Status::Internal("sst: truncated frame");
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, data.data() + off, 4);
    std::memcpy(&crc, data.data() + off + 4, 4);
    if (off + 8 + len > limit) return Status::Internal("sst: truncated frame");
    if (serde::Crc32(data.data() + off + 8, len) != crc)
      return Status::Internal("sst: frame CRC mismatch");
    *out_r = serde::Reader(data.data() + off + 8, len);
    return Status::OK();
  };

  serde::Reader fr(nullptr, 0);
  AIDB_RETURN_NOT_OK(read_frame(footer_off, data.size() - kTrailerSize, &fr));

  auto run = std::shared_ptr<SstRun>(new SstRun());
  uint64_t entry_count = 0;
  uint32_t level = 0, ncols = 0, bloom_bits = 0, bloom_words = 0, nblocks = 0;
  if (!fr.ReadU64(&entry_count) || !fr.ReadU64(&run->min_slot_) ||
      !fr.ReadU64(&run->max_slot_) || !fr.ReadU32(&level) ||
      !fr.ReadU32(&ncols) || !fr.ReadU32(&bloom_bits) ||
      !fr.ReadU32(&bloom_words)) {
    return Status::Internal("sst: truncated footer in " + path);
  }
  run->bloom_.resize(bloom_words);
  for (uint32_t i = 0; i < bloom_words; ++i) {
    if (!fr.ReadU64(&run->bloom_[i]))
      return Status::Internal("sst: truncated bloom in " + path);
  }
  if (!fr.ReadU32(&nblocks))
    return Status::Internal("sst: truncated block index in " + path);
  run->blocks_.reserve(nblocks);
  for (uint32_t b = 0; b < nblocks; ++b) {
    SstBlockMeta m;
    if (!fr.ReadU64(&m.first_slot) || !fr.ReadU64(&m.last_slot) ||
        !fr.ReadU64(&m.offset) || !fr.ReadU32(&m.length) ||
        !fr.ReadU32(&m.entries)) {
      return Status::Internal("sst: truncated block meta in " + path);
    }
    m.zones.resize(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      if (!fr.ReadDouble(&m.zones[c].first) ||
          !fr.ReadDouble(&m.zones[c].second)) {
        return Status::Internal("sst: truncated zone map in " + path);
      }
    }
    if (m.offset < sizeof(kMagic) || m.offset + m.length > footer_off)
      return Status::Internal("sst: block extent out of range in " + path);
    // Validate the data block's CRC eagerly: a run is either fully sound at
    // load or rejected whole — recovery never surfaces a half-flushed run.
    serde::Reader check(nullptr, 0);
    AIDB_RETURN_NOT_OK(read_frame(m.offset, footer_off, &check));
    run->blocks_.push_back(std::move(m));
  }

  run->path_ = path;
  run->raw_ = std::move(data);
  run->level_ = level;
  run->num_columns_ = ncols;
  run->entry_count_ = entry_count;
  run->file_bytes_ = run->raw_.size();
  run->adopted_ = adopted;
  run->bloom_bits_per_key_ = bloom_bits;
  run->decoded_.resize(run->blocks_.size());
  return run;
}

const SstRun::DecodedBlock* SstRun::Block(size_t b) {
  std::lock_guard<std::mutex> lock(decode_mu_);
  if (decoded_[b] != nullptr) return decoded_[b].get();
  const SstBlockMeta& m = blocks_[b];
  auto db = std::make_unique<DecodedBlock>();
  serde::Reader r(raw_.data() + m.offset + 8, m.length - 8);
  uint32_t nentries = 0;
  if (!r.ReadU32(&nentries)) return nullptr;  // cannot happen: CRC-validated
  for (uint32_t i = 0; i < nentries; ++i) {
    uint64_t slot = 0, ts = 0;
    if (!r.ReadU64(&slot) || !r.ReadU64(&ts)) return nullptr;
    auto row = DeserializeTuple(&r);
    if (!row.ok()) return nullptr;
    db->slots.push_back(slot);
    db->versions.emplace_back(std::move(row).ValueOrDie(),
                              adopted_ ? txn::kBootstrapTs : ts,
                              txn::kInfinityTs);
  }
  decoded_[b] = std::move(db);
  return decoded_[b].get();
}

bool SstRun::MayContain(RowId slot) const {
  if (slot < min_slot_ || slot > max_slot_) return false;
  if (bloom_bits_per_key_ == 0) return true;
  return BloomTest(bloom_, slot);
}

const Version* SstRun::Find(RowId slot) {
  return Find(slot, nullptr, nullptr, nullptr);
}

const Version* SstRun::Find(RowId slot, std::atomic<uint64_t>* bloom_probes,
                            std::atomic<uint64_t>* bloom_negatives,
                            std::atomic<uint64_t>* runs_probed) {
  if (slot < min_slot_ || slot > max_slot_) return nullptr;
  if (bloom_bits_per_key_ > 0) {
    if (bloom_probes != nullptr)
      bloom_probes->fetch_add(1, std::memory_order_relaxed);
    if (!BloomTest(bloom_, slot)) {
      if (bloom_negatives != nullptr)
        bloom_negatives->fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
  }
  if (runs_probed != nullptr)
    runs_probed->fetch_add(1, std::memory_order_relaxed);
  auto it = std::lower_bound(
      blocks_.begin(), blocks_.end(), slot,
      [](const SstBlockMeta& m, RowId s) { return m.last_slot < s; });
  if (it == blocks_.end() || it->first_slot > slot) return nullptr;
  const DecodedBlock* db = Block(static_cast<size_t>(it - blocks_.begin()));
  if (db == nullptr) return nullptr;
  auto sit = std::lower_bound(db->slots.begin(), db->slots.end(), slot);
  if (sit == db->slots.end() || *sit != slot) return nullptr;
  return &db->versions[static_cast<size_t>(sit - db->slots.begin())];
}

bool SstRun::RangeMayMatch(RowId begin, RowId end, size_t col,
                           ColdTier::Cmp op, double lit) const {
  if (col >= num_columns_) return true;
  for (const SstBlockMeta& m : blocks_) {
    if (m.last_slot < begin || m.first_slot >= end) continue;
    if (ZoneMayMatch(m.zones[col], op, lit)) return true;
  }
  return false;
}

void SstRun::ForEach(
    const std::function<void(RowId, uint64_t, const Tuple&)>& fn) {
  for (size_t b = 0; b < blocks_.size(); ++b) {
    const DecodedBlock* db = Block(b);
    if (db == nullptr) continue;
    for (size_t i = 0; i < db->slots.size(); ++i) {
      fn(db->slots[i],
         db->versions[i].begin_ts.load(std::memory_order_relaxed),
         db->versions[i].data);
    }
  }
}

}  // namespace aidb::storage
