#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/engine/engine.h"
#include "storage/engine/sst.h"
#include "storage/fault_injector.h"
#include "storage/lsm.h"
#include "storage/table.h"

namespace aidb::monitor {
class MetricsRegistry;
class Counter;
}  // namespace aidb::monitor

namespace aidb::txn {
class TransactionManager;
}

namespace aidb::storage {

/// \brief The real LSM storage engine: a disk-resident cold tier beneath the
/// MVCC tables.
///
/// The warm row store *is* the memtable. Vacuum freezes slots whose single
/// committed open version is below the watermark; a maintenance pass collects
/// the frozen set and, once it reaches `memtable_capacity`, flushes it as a
/// slot-sorted level-0 SST (block-based, per-block zone maps, bloom over slot
/// ids — see sst.h), then CASes each flushed head to the paged sentinel.
/// Reads resolve paged slots through the ColdTier hooks (newest-first run
/// probe); writers materialize the slot back to a warm version first.
/// Leveled or tiered compaction (LsmOptions::leveling) merges runs downward,
/// dropping entries whose slot is no longer paged (shadowed by a rematerialized
/// warm version). Commit timestamps persist in the SST entries, so MVCC
/// visibility is byte-identical to the row store.
///
/// Durability contract: the WAL + snapshot remain authoritative (snapshots
/// read through the cold tier, so they always carry full data). SSTs are a
/// rebuildable cache, validated whole at load; after recovery, persisted
/// entries are re-adopted only when byte-equal to the recovered frozen row.
/// A half-flushed run can therefore never surface: it either fails
/// validation, is an orphan the manifest never referenced, or disagrees with
/// the recovered state and is dropped at the next compaction.
class LsmEngine final : public StorageEngine {
 public:
  /// `dir` is created if missing. `tm` provides the serial-fenced retire
  /// lists that keep retired versions/run sets alive for concurrent readers.
  /// `fault` (optional) arms the crash matrix; `metrics` (optional) meters
  /// storage.* counters.
  LsmEngine(std::string dir, LsmOptions opts, txn::TransactionManager* tm,
            FaultInjector* fault, monitor::MetricsRegistry* metrics);
  ~LsmEngine() override;

  LsmEngine(const LsmEngine&) = delete;
  LsmEngine& operator=(const LsmEngine&) = delete;

  const char* name() const override { return "lsm"; }
  void AttachTable(const std::string& name, Table* t) override;
  void DetachTable(const std::string& name, Table* t) override;
  bool NeedsMaintenance() const override;
  Status Maintain() override;

  /// Flushes `name`'s frozen slots regardless of the memtable threshold,
  /// then runs its compaction loop (test / bench hook).
  Status FlushTable(const std::string& name);

  /// Unlinks every SST not referenced by an attached table and rewrites the
  /// manifest when stale entries (dropped-table leftovers, crashed-flush
  /// orphans) were found. Call once after recovery attach.
  Status GarbageCollect();

  /// Aggregate I/O counters in the same accounting scheme as the toy
  /// LsmTree, so measured write/read amplification is directly comparable to
  /// the analytic cost model.
  LsmStats StatsSnapshot() const;

  const LsmOptions& options() const { return opts_; }
  const std::string& dir() const { return dir_; }

  /// One row per attached table for the aidb_storage system view.
  struct TableInfo {
    std::string table;
    uint64_t runs = 0;
    uint64_t max_level = 0;
    uint64_t entries = 0;      ///< persisted entries across runs (incl. stale)
    uint64_t file_bytes = 0;
    uint64_t paged_slots = 0;  ///< slots currently reading from the cold tier
    uint64_t frozen_slots = 0; ///< flush candidates still warm
  };
  std::vector<TableInfo> TableInfos() const;

 private:
  using RunVec = std::vector<std::shared_ptr<SstRun>>;

  /// Per-table engine state; implements the read-side ColdTier contract the
  /// Table consults for paged slots. Reads are lock-free: `runs` is an
  /// atomically published immutable vector (newest-first), replaced wholesale
  /// by flush/compaction and reclaimed through the TransactionManager's
  /// serial-fenced disposal list.
  struct TableState : ColdTier {
    LsmEngine* engine = nullptr;
    Table* table = nullptr;
    std::string name;
    std::atomic<const RunVec*> runs{nullptr};
    uint64_t next_file_id = 0;  ///< under the engine mutex

    const Version* ColdVersion(RowId id) override;
    Version* MaterializeCold(RowId id) override;
    void NoteMaterialized(RowId id) override;
    bool ColdRangeMayMatch(RowId begin, RowId end, size_t col, Cmp op,
                           double lit) override;

    const Version* FindNewest(const RunVec& rv, RowId id) const;
  };

  /// Flush + compaction for one table; caller holds mu_.
  Status MaintainTable(TableState* st, bool force_flush);
  Status FlushLocked(TableState* st, bool force);
  Status CompactLocked(TableState* st);
  /// Swaps in a new run vector (retiring the old through the txn fence).
  void PublishRuns(TableState* st, std::unique_ptr<RunVec> next);
  /// Rewrites dir_/MANIFEST (tmp + fsync + rename) from the current attached
  /// states; fires FaultPoint::kManifestUpdate.
  Status WriteManifestLocked();
  std::string SstPath(const TableState& st, uint64_t file_id) const;
  bool Crashed() const { return fault_ != nullptr && fault_->crashed(); }

  /// Reads dir_/MANIFEST into manifest_ (called once at construction; a
  /// missing or damaged manifest is an empty engine — SSTs are a cache).
  void LoadManifest();

  const std::string dir_;
  const LsmOptions opts_;
  txn::TransactionManager* const tm_;
  FaultInjector* const fault_;

  /// Serializes attach/detach/flush/compaction/manifest writes. Never held
  /// by readers.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<TableState>> tables_;
  /// Recovered manifest image: table -> (file basename, level), newest-first;
  /// consumed by AttachTable for re-adoption.
  std::map<std::string, std::vector<std::pair<std::string, uint32_t>>> manifest_;

  // I/O counters (LsmStats accounting scheme; see lsm.h).
  std::atomic<uint64_t> entries_written_{0};
  std::atomic<uint64_t> entries_compacted_{0};
  std::atomic<uint64_t> runs_probed_{0};
  std::atomic<uint64_t> bloom_probes_{0};
  std::atomic<uint64_t> bloom_negatives_{0};
  std::atomic<uint64_t> gets_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> blocks_written_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> zone_checks_{0};
  std::atomic<uint64_t> zone_prunes_{0};
  std::atomic<uint64_t> materialized_{0};
  std::atomic<uint64_t> adopted_{0};

  // Cached storage.* metric pointers (null when metering is off).
  monitor::Counter* m_flushes_ = nullptr;
  monitor::Counter* m_compactions_ = nullptr;
  monitor::Counter* m_paged_out_ = nullptr;
  monitor::Counter* m_materialized_ = nullptr;
  monitor::Counter* m_cold_gets_ = nullptr;
  monitor::Counter* m_zone_prunes_ = nullptr;
  monitor::Counter* m_sst_bytes_ = nullptr;
  monitor::Counter* m_adopted_ = nullptr;
};

}  // namespace aidb::storage
