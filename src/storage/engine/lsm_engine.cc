#include "storage/engine/lsm_engine.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "monitor/metrics.h"
#include "storage/serde.h"
#include "txn/transaction_manager.h"

namespace aidb::storage {

namespace {

constexpr char kManifestMagic[8] = {'A', 'I', 'D', 'B', 'M', 'A', 'N', 'I'};
constexpr const char* kManifestName = "MANIFEST";

Status WriteFileDurably(const std::string& path, const std::string& bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    return Status::Internal("lsm: open " + path + ": " + std::strerror(errno));
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t w = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal("lsm: write: " + std::string(std::strerror(errno)));
    }
    done += static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::Internal("lsm: fsync: " + std::string(std::strerror(errno)));
  }
  ::close(fd);
  return Status::OK();
}

/// Damage for a crash fired at the manifest update, applied to the temp file
/// (the real MANIFEST is replaced only by a completed rename, so torn /
/// corrupt / dropped-fsync damage always leaves the previous manifest
/// intact). kCleanCrash crashes *after* the durable rename: the new manifest
/// is visible but the caller died before doing anything with it.
Status DamageManifestTmp(const std::string& tmp, const std::string& bytes,
                         FaultKind kind, FaultInjector* fault) {
  std::string damaged = bytes;
  switch (kind) {
    case FaultKind::kTornWrite:
      if (!damaged.empty())
        damaged.resize(std::min<size_t>(1 + fault->rng().Uniform(damaged.size()),
                                        damaged.size()));
      break;
    case FaultKind::kCorruptByte:
      if (!damaged.empty()) {
        size_t at = fault->rng().Uniform(damaged.size());
        damaged[at] = static_cast<char>(damaged[at] ^ 0x40);
      }
      break;
    case FaultKind::kDroppedFsync:
      damaged.clear();
      break;
    default:
      break;
  }
  WriteFileDurably(tmp, damaged).ok();
  return Status::Aborted("lsm: simulated crash (" +
                         std::string(FaultKindName(kind)) + ")");
}

bool SameTupleBytes(const Tuple& a, const Tuple& b) {
  std::string ea, eb;
  AppendTuple(&ea, a);
  AppendTuple(&eb, b);
  return ea == eb;
}

}  // namespace

// --- TableState: the ColdTier read side -------------------------------------

const Version* LsmEngine::TableState::FindNewest(const RunVec& rv, RowId id) const {
  for (const std::shared_ptr<SstRun>& run : rv) {
    const Version* v = run->Find(id, &engine->bloom_probes_,
                                 &engine->bloom_negatives_,
                                 &engine->runs_probed_);
    if (v != nullptr) return v;
  }
  return nullptr;
}

const Version* LsmEngine::TableState::ColdVersion(RowId id) {
  engine->gets_.fetch_add(1, std::memory_order_relaxed);
  if (engine->m_cold_gets_ != nullptr) engine->m_cold_gets_->Add(1);
  const RunVec* rv = runs.load(std::memory_order_acquire);
  if (rv == nullptr) return nullptr;
  return FindNewest(*rv, id);
}

Version* LsmEngine::TableState::MaterializeCold(RowId id) {
  const RunVec* rv = runs.load(std::memory_order_acquire);
  if (rv == nullptr) return nullptr;
  const Version* cv = FindNewest(*rv, id);
  if (cv == nullptr) return nullptr;
  return new Version(cv->data, cv->begin_ts.load(std::memory_order_relaxed),
                     txn::kInfinityTs);
}

void LsmEngine::TableState::NoteMaterialized(RowId) {
  engine->materialized_.fetch_add(1, std::memory_order_relaxed);
  if (engine->m_materialized_ != nullptr) engine->m_materialized_->Add(1);
}

bool LsmEngine::TableState::ColdRangeMayMatch(RowId begin, RowId end,
                                              size_t col, Cmp op, double lit) {
  engine->zone_checks_.fetch_add(1, std::memory_order_relaxed);
  const RunVec* rv = runs.load(std::memory_order_acquire);
  if (rv != nullptr) {
    for (const std::shared_ptr<SstRun>& run : *rv) {
      if (run->RangeMayMatch(begin, end, col, op, lit)) return true;
    }
  }
  engine->zone_prunes_.fetch_add(1, std::memory_order_relaxed);
  if (engine->m_zone_prunes_ != nullptr) engine->m_zone_prunes_->Add(1);
  return false;
}

// --- Engine lifecycle -------------------------------------------------------

LsmEngine::LsmEngine(std::string dir, LsmOptions opts,
                     txn::TransactionManager* tm, FaultInjector* fault,
                     monitor::MetricsRegistry* metrics)
    : dir_(std::move(dir)), opts_(opts), tm_(tm), fault_(fault) {
  ::mkdir(dir_.c_str(), 0755);
  if (metrics != nullptr) {
    m_flushes_ = metrics->GetCounter("storage.flushes");
    m_compactions_ = metrics->GetCounter("storage.compactions");
    m_paged_out_ = metrics->GetCounter("storage.paged_out");
    m_materialized_ = metrics->GetCounter("storage.materialized");
    m_cold_gets_ = metrics->GetCounter("storage.cold_gets");
    m_zone_prunes_ = metrics->GetCounter("storage.zone_prunes");
    m_sst_bytes_ = metrics->GetCounter("storage.sst_bytes");
    m_adopted_ = metrics->GetCounter("storage.adopted_slots");
  }
  LoadManifest();
}

LsmEngine::~LsmEngine() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, st] : tables_) {
    st->table->SetColdTier(nullptr);
    delete st->runs.load(std::memory_order_relaxed);
  }
  tables_.clear();
}

void LsmEngine::LoadManifest() {
  int fd = ::open((dir_ + "/" + kManifestName).c_str(), O_RDONLY);
  if (fd < 0) return;  // fresh engine
  std::string data;
  char chunk[1 << 16];
  ssize_t n = 0;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) data.append(chunk, n);
  ::close(fd);
  // Magic + CRC frame; any damage means "no cache" — the SSTs it referenced
  // become orphans GarbageCollect unlinks.
  if (data.size() < sizeof(kManifestMagic) + 8 ||
      std::memcmp(data.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return;
  }
  uint32_t len = 0, crc = 0;
  std::memcpy(&len, data.data() + 8, 4);
  std::memcpy(&crc, data.data() + 12, 4);
  if (16 + static_cast<size_t>(len) > data.size() ||
      serde::Crc32(data.data() + 16, len) != crc) {
    return;
  }
  serde::Reader r(data.data() + 16, len);
  uint32_t ntables = 0;
  if (!r.ReadU32(&ntables)) return;
  std::map<std::string, std::vector<std::pair<std::string, uint32_t>>> parsed;
  for (uint32_t t = 0; t < ntables; ++t) {
    std::string name;
    uint32_t nruns = 0;
    if (!r.ReadString(&name) || !r.ReadU32(&nruns)) return;
    auto& runs = parsed[name];
    for (uint32_t i = 0; i < nruns; ++i) {
      std::string file;
      uint32_t level = 0;
      if (!r.ReadString(&file) || !r.ReadU32(&level)) return;
      runs.emplace_back(std::move(file), level);
    }
  }
  manifest_ = std::move(parsed);
}

Status LsmEngine::WriteManifestLocked() {
  std::string body;
  serde::PutU32(&body, static_cast<uint32_t>(tables_.size()));
  for (const auto& [name, st] : tables_) {
    serde::PutString(&body, name);
    const RunVec* rv = st->runs.load(std::memory_order_acquire);
    serde::PutU32(&body, rv ? static_cast<uint32_t>(rv->size()) : 0);
    if (rv != nullptr) {
      for (const std::shared_ptr<SstRun>& run : *rv) {
        const std::string& p = run->path();
        size_t slash = p.find_last_of('/');
        serde::PutString(&body,
                         slash == std::string::npos ? p : p.substr(slash + 1));
        serde::PutU32(&body, static_cast<uint32_t>(run->level()));
      }
    }
  }
  std::string bytes(kManifestMagic, sizeof(kManifestMagic));
  serde::PutU32(&bytes, static_cast<uint32_t>(body.size()));
  serde::PutU32(&bytes, serde::Crc32(body.data(), body.size()));
  bytes.append(body);

  const std::string tmp = dir_ + "/" + kManifestName + ".tmp";
  const std::string real = dir_ + "/" + kManifestName;
  FaultKind kind = fault_ ? fault_->Fire(FaultPoint::kManifestUpdate)
                          : FaultKind::kNone;
  if (kind != FaultKind::kNone && kind != FaultKind::kCleanCrash) {
    return DamageManifestTmp(tmp, bytes, kind, fault_);
  }
  AIDB_RETURN_NOT_OK(WriteFileDurably(tmp, bytes));
  if (::rename(tmp.c_str(), real.c_str()) != 0) {
    return Status::Internal("lsm: rename manifest: " +
                            std::string(std::strerror(errno)));
  }
  if (kind == FaultKind::kCleanCrash) {
    return Status::Aborted("lsm: simulated crash (clean-crash)");
  }
  return Status::OK();
}

std::string LsmEngine::SstPath(const TableState& st, uint64_t file_id) const {
  return dir_ + "/" + st.name + "-" + std::to_string(file_id) + ".sst";
}

void LsmEngine::PublishRuns(TableState* st, std::unique_ptr<RunVec> next) {
  const RunVec* old = st->runs.exchange(next.release(), std::memory_order_acq_rel);
  if (old != nullptr) {
    // Readers may still be probing the old vector (and holding Version
    // pointers into its runs' decoded blocks): dispose through the same
    // serial fence that protects unlinked warm versions.
    tm_->RetireDisposal([old] { delete old; });
  }
}

void LsmEngine::AttachTable(const std::string& name, Table* t) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name) != 0) return;
  auto st = std::make_unique<TableState>();
  st->engine = this;
  st->table = t;
  st->name = name;

  // Re-adopt the manifest's runs for this table (recovery attach). Runs load
  // whole-file-validated; a damaged file is simply a lost cache entry.
  auto mit = manifest_.find(name);
  auto rv = std::make_unique<RunVec>();
  if (mit != manifest_.end()) {
    for (const auto& [file, level] : mit->second) {
      // File ids in names stay monotone across restarts.
      size_t dash = file.find_last_of('-');
      if (dash != std::string::npos) {
        uint64_t id = std::strtoull(file.c_str() + dash + 1, nullptr, 10);
        st->next_file_id = std::max(st->next_file_id, id + 1);
      }
      auto run = SstRun::Load(dir_ + "/" + file, /*adopted=*/true);
      if (run.ok()) rv->push_back(std::move(run).ValueOrDie());
      (void)level;  // the run's footer carries its level
    }
    manifest_.erase(mit);
  }
  const bool had_runs = !rv->empty();
  st->runs.store(rv.release(), std::memory_order_release);
  t->SetColdTier(st.get());

  if (had_runs) {
    // Page back out every recovered slot whose frozen version is byte-equal
    // to its newest persisted entry (both sides live at kBootstrapTs after
    // recovery). Anything else is a stale entry the next compaction drops.
    const RunVec* runs = st->runs.load(std::memory_order_acquire);
    std::vector<std::pair<RowId, Version*>> frozen;
    t->CollectFrozen(&frozen);
    uint64_t adopted_slots = 0;
    for (const auto& [id, v] : frozen) {
      const Version* cv = st->FindNewest(*runs, id);
      if (cv == nullptr || !SameTupleBytes(cv->data, v->data)) continue;
      if (t->PageOutIfFrozen(id, v, [this](Version* dead) { tm_->Retire(dead); })) {
        ++adopted_slots;
      }
    }
    adopted_.fetch_add(adopted_slots, std::memory_order_relaxed);
    if (m_adopted_ != nullptr && adopted_slots > 0) m_adopted_->Add(adopted_slots);
  }
  tables_[name] = std::move(st);
}

void LsmEngine::DetachTable(const std::string& name, Table* t) {
  std::unique_ptr<TableState> st;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(name);
    if (it == tables_.end()) return;
    st = std::move(it->second);
    tables_.erase(it);
    t->SetColdTier(nullptr);
    // Dropped tables leave the manifest now; their files go at the next
    // GarbageCollect (unlinking here would race readers only on pathological
    // filesystems, but the manifest must not dangle either way).
    WriteManifestLocked().ok();
    const RunVec* rv = st->runs.exchange(nullptr, std::memory_order_acq_rel);
    if (rv != nullptr) {
      for (const std::shared_ptr<SstRun>& run : *rv) ::unlink(run->path().c_str());
      tm_->RetireDisposal([rv] { delete rv; });
    }
  }
  // A racing reader may have loaded the ColdTier* before SetColdTier(nullptr)
  // landed: the state object itself drains through the same fence.
  TableState* raw = st.release();
  tm_->RetireDisposal([raw] { delete raw; });
}

Status LsmEngine::GarbageCollect() {
  std::lock_guard<std::mutex> lock(mu_);
  // Everything an attached table references survives; all other .sst files
  // (crashed-flush orphans, dropped or never-reattached tables) go.
  std::map<std::string, bool> referenced;
  for (const auto& [name, st] : tables_) {
    const RunVec* rv = st->runs.load(std::memory_order_acquire);
    if (rv == nullptr) continue;
    for (const std::shared_ptr<SstRun>& run : *rv) referenced[run->path()] = true;
  }
  bool removed_any = !manifest_.empty();
  manifest_.clear();
  DIR* d = ::opendir(dir_.c_str());
  if (d != nullptr) {
    while (dirent* e = ::readdir(d)) {
      std::string f = e->d_name;
      if (f.size() < 4 || f.substr(f.size() - 4) != ".sst") continue;
      std::string full = dir_ + "/" + f;
      if (referenced.count(full) == 0) {
        ::unlink(full.c_str());
        removed_any = true;
      }
    }
    ::closedir(d);
  }
  if (removed_any) return WriteManifestLocked();
  return Status::OK();
}

// --- Maintenance ------------------------------------------------------------

bool LsmEngine::NeedsMaintenance() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !tables_.empty();
}

Status LsmEngine::Maintain() {
  std::lock_guard<std::mutex> lock(mu_);
  if (Crashed()) return Status::Aborted("lsm: crashed");
  for (auto& [name, st] : tables_) {
    AIDB_RETURN_NOT_OK(MaintainTable(st.get(), /*force_flush=*/false));
  }
  return Status::OK();
}

Status LsmEngine::FlushTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Crashed()) return Status::Aborted("lsm: crashed");
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("lsm: table " + name);
  return MaintainTable(it->second.get(), /*force_flush=*/true);
}

Status LsmEngine::MaintainTable(TableState* st, bool force_flush) {
  AIDB_RETURN_NOT_OK(FlushLocked(st, force_flush));
  return CompactLocked(st);
}

Status LsmEngine::FlushLocked(TableState* st, bool force) {
  std::vector<std::pair<RowId, Version*>> frozen;
  st->table->CollectFrozen(&frozen);
  if (frozen.empty() || (!force && frozen.size() < opts_.memtable_capacity)) {
    return Status::OK();
  }
  std::sort(frozen.begin(), frozen.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<SstEntry> entries;
  entries.reserve(frozen.size());
  for (const auto& [id, v] : frozen) {
    entries.push_back(
        {id, v->begin_ts.load(std::memory_order_relaxed), &v->data});
  }
  const std::string path = SstPath(*st, st->next_file_id);
  SstWriteOptions wopts;
  wopts.bloom_bits_per_key = opts_.bloom_bits_per_key;
  wopts.level = 0;
  wopts.fault = fault_;
  SstWriteResult wres;
  AIDB_RETURN_NOT_OK(WriteSst(path, entries, st->table->schema().NumColumns(),
                              wopts, &wres));
  ++st->next_file_id;

  auto loaded = SstRun::Load(path, /*adopted=*/false);
  if (!loaded.ok()) return loaded.status();

  // New run enters the published set (and the manifest) BEFORE any head is
  // CASed to the paged sentinel: a reader that observes a sentinel always
  // finds the entry in whatever run vector it loads afterwards.
  const RunVec* cur = st->runs.load(std::memory_order_acquire);
  auto next = std::make_unique<RunVec>();
  next->push_back(std::move(loaded).ValueOrDie());
  if (cur != nullptr) next->insert(next->end(), cur->begin(), cur->end());
  PublishRuns(st, std::move(next));
  AIDB_RETURN_NOT_OK(WriteManifestLocked());

  uint64_t paged = 0;
  for (const auto& [id, v] : frozen) {
    if (st->table->PageOutIfFrozen(
            id, v, [this](Version* dead) { tm_->Retire(dead); })) {
      ++paged;
    }
  }

  entries_written_.fetch_add(paged, std::memory_order_relaxed);
  entries_compacted_.fetch_add(entries.size(), std::memory_order_relaxed);
  blocks_written_.fetch_add(wres.blocks, std::memory_order_relaxed);
  bytes_written_.fetch_add(wres.bytes, std::memory_order_relaxed);
  flushes_.fetch_add(1, std::memory_order_relaxed);
  if (m_flushes_ != nullptr) m_flushes_->Add(1);
  if (m_paged_out_ != nullptr) m_paged_out_->Add(paged);
  if (m_sst_bytes_ != nullptr) m_sst_bytes_->Add(wres.bytes);
  return Status::OK();
}

Status LsmEngine::CompactLocked(TableState* st) {
  // Mirror of the toy tree's policy: per level, leveling triggers at 2 runs
  // and absorbs the level below; tiering triggers at size_ratio runs.
  const size_t trigger = opts_.leveling ? 2 : std::max<size_t>(2, opts_.size_ratio);
  bool progress = true;
  while (progress) {
    progress = false;
    const RunVec* cur = st->runs.load(std::memory_order_acquire);
    if (cur == nullptr || cur->size() < trigger) return Status::OK();

    std::map<size_t, size_t> per_level;
    for (const auto& run : *cur) ++per_level[run->level()];
    size_t level = SIZE_MAX;
    for (const auto& [l, n] : per_level) {
      if (n >= trigger) {
        level = l;
        break;
      }
    }
    if (level == SIZE_MAX) return Status::OK();

    std::vector<std::shared_ptr<SstRun>> inputs;  // newest-first, like cur
    auto keep = std::make_unique<RunVec>();
    for (const auto& run : *cur) {
      bool take = run->level() == level ||
                  (opts_.leveling && run->level() == level + 1);
      if (take) {
        inputs.push_back(run);
      } else {
        keep->push_back(run);
      }
    }

    // Merge newest-first precedence; drop entries whose slot is no longer
    // paged (dead, or rematerialized by a writer — its warm version shadows
    // the stale bytes, and post-recovery disagreements land here too).
    std::map<RowId, std::pair<uint64_t, const Tuple*>> merged;
    for (const std::shared_ptr<SstRun>& run : inputs) {
      run->ForEach([&](RowId id, uint64_t ts, const Tuple& row) {
        if (merged.count(id) != 0) return;  // a newer run already spoke
        if (!st->table->IsPaged(id)) return;
        merged.emplace(id, std::make_pair(ts, &row));
      });
    }

    std::shared_ptr<SstRun> out_run;
    SstWriteResult wres;
    if (!merged.empty()) {
      std::vector<SstEntry> entries;
      entries.reserve(merged.size());
      for (const auto& [id, e] : merged) entries.push_back({id, e.first, e.second});
      const std::string path = SstPath(*st, st->next_file_id);
      SstWriteOptions wopts;
      wopts.bloom_bits_per_key = opts_.bloom_bits_per_key;
      wopts.level = level + 1;
      wopts.compaction = true;
      wopts.fault = fault_;
      AIDB_RETURN_NOT_OK(WriteSst(path, entries,
                                  st->table->schema().NumColumns(), wopts,
                                  &wres));
      ++st->next_file_id;
      auto loaded = SstRun::Load(path, /*adopted=*/false);
      if (!loaded.ok()) return loaded.status();
      out_run = std::move(loaded).ValueOrDie();
      entries_compacted_.fetch_add(entries.size(), std::memory_order_relaxed);
      blocks_written_.fetch_add(wres.blocks, std::memory_order_relaxed);
      bytes_written_.fetch_add(wres.bytes, std::memory_order_relaxed);
      if (m_sst_bytes_ != nullptr) m_sst_bytes_->Add(wres.bytes);
    }

    if (out_run != nullptr) keep->push_back(out_run);
    // Newest-first within a level is preserved by the stable sort; deeper
    // levels hold strictly older data.
    std::stable_sort(keep->begin(), keep->end(),
                     [](const std::shared_ptr<SstRun>& a,
                        const std::shared_ptr<SstRun>& b) {
                       return a->level() < b->level();
                     });
    PublishRuns(st, std::move(keep));
    AIDB_RETURN_NOT_OK(WriteManifestLocked());
    for (const std::shared_ptr<SstRun>& run : inputs) {
      ::unlink(run->path().c_str());
    }
    compactions_.fetch_add(1, std::memory_order_relaxed);
    if (m_compactions_ != nullptr) m_compactions_->Add(1);
    progress = true;
  }
  return Status::OK();
}

// --- Introspection ----------------------------------------------------------

LsmStats LsmEngine::StatsSnapshot() const {
  LsmStats s;
  s.entries_written = entries_written_.load(std::memory_order_relaxed);
  s.entries_compacted = entries_compacted_.load(std::memory_order_relaxed);
  s.runs_probed = runs_probed_.load(std::memory_order_relaxed);
  s.bloom_negatives = bloom_negatives_.load(std::memory_order_relaxed);
  s.gets = gets_.load(std::memory_order_relaxed);
  s.flushes = flushes_.load(std::memory_order_relaxed);
  s.compactions = compactions_.load(std::memory_order_relaxed);
  s.blocks_written = blocks_written_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.bloom_probes = bloom_probes_.load(std::memory_order_relaxed);
  s.zone_checks = zone_checks_.load(std::memory_order_relaxed);
  s.zone_prunes = zone_prunes_.load(std::memory_order_relaxed);
  s.materialized = materialized_.load(std::memory_order_relaxed);
  s.adopted = adopted_.load(std::memory_order_relaxed);
  return s;
}

std::vector<LsmEngine::TableInfo> LsmEngine::TableInfos() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TableInfo> out;
  out.reserve(tables_.size());
  for (const auto& [name, st] : tables_) {
    TableInfo info;
    info.table = name;
    const RunVec* rv = st->runs.load(std::memory_order_acquire);
    if (rv != nullptr) {
      info.runs = rv->size();
      for (const std::shared_ptr<SstRun>& run : *rv) {
        info.max_level = std::max<uint64_t>(info.max_level, run->level());
        info.entries += run->entry_count();
        info.file_bytes += run->file_bytes();
      }
    }
    info.paged_slots = st->table->PagedCount();
    std::vector<std::pair<RowId, Version*>> frozen;
    st->table->CollectFrozen(&frozen);
    info.frozen_slots = frozen.size();
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace aidb::storage
