#pragma once

#include <string>

#include "common/status.h"

namespace aidb {
class Table;
}

namespace aidb::storage {

/// \brief Pluggable storage-engine seam beneath the MVCC tables.
///
/// The Database owns at most one engine and routes catalog lifecycle events
/// (CREATE/DROP TABLE, recovery attach) plus periodic maintenance to it. The
/// default engine is the pure in-memory row store — a no-op implementation,
/// kept as the correctness oracle the differential harness compares the LSM
/// backend against. Engines hook per-table state in through
/// Table::SetColdTier; the Table's slot/version contract (MVCC visibility,
/// vectorized BuildScanBatch) is unchanged either way.
class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  virtual const char* name() const = 0;

  /// Called after `t` enters the catalog (CREATE TABLE or recovery attach).
  virtual void AttachTable(const std::string& name, Table* t) = 0;
  /// Called just before `t` leaves the catalog; `t` is still valid.
  virtual void DetachTable(const std::string& name, Table* t) = 0;

  /// Cheap gate: would Maintain() plausibly do work right now?
  virtual bool NeedsMaintenance() const = 0;
  /// One maintenance pass over every attached table (flush, compaction).
  /// Returns Aborted after a simulated crash, like every durable writer.
  virtual Status Maintain() = 0;
};

/// The default engine: rows live in the in-memory MVCC store only, exactly
/// the pre-engine behaviour. Doubles as the differential oracle.
class RowStoreEngine final : public StorageEngine {
 public:
  const char* name() const override { return "rowstore"; }
  void AttachTable(const std::string&, Table*) override {}
  void DetachTable(const std::string&, Table*) override {}
  bool NeedsMaintenance() const override { return false; }
  Status Maintain() override { return Status::OK(); }
};

}  // namespace aidb::storage
