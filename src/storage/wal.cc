#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/timer.h"
#include "storage/serde.h"

namespace aidb::storage {

const char* WalRecordTypeName(WalRecordType t) {
  switch (t) {
    case WalRecordType::kCreateTable: return "CREATE_TABLE";
    case WalRecordType::kDropTable: return "DROP_TABLE";
    case WalRecordType::kInsert: return "INSERT";
    case WalRecordType::kUpdate: return "UPDATE";
    case WalRecordType::kDelete: return "DELETE";
    case WalRecordType::kCreateModel: return "CREATE_MODEL";
    case WalRecordType::kCommit: return "COMMIT";
    case WalRecordType::kCreateIndex: return "CREATE_INDEX";
    case WalRecordType::kDropIndex: return "DROP_INDEX";
    case WalRecordType::kTxnOp: return "TXN_OP";
    case WalRecordType::kTxnAbort: return "TXN_ABORT";
  }
  return "?";
}

// --- Payload codecs ----------------------------------------------------------

std::string EncodeCreateTable(const CreateTablePayload& p) {
  std::string out;
  serde::PutString(&out, p.table);
  p.schema.AppendTo(&out);
  return out;
}

std::string EncodeDropTable(const std::string& table) {
  std::string out;
  serde::PutString(&out, table);
  return out;
}

std::string EncodeInsert(const InsertPayload& p) {
  std::string out;
  serde::PutString(&out, p.table);
  serde::PutU64(&out, p.first_row_id);
  serde::PutU32(&out, static_cast<uint32_t>(p.rows.size()));
  for (const auto& row : p.rows) AppendTuple(&out, row);
  return out;
}

std::string EncodeUpdate(const UpdatePayload& p) {
  std::string out;
  serde::PutString(&out, p.table);
  serde::PutU32(&out, static_cast<uint32_t>(p.changes.size()));
  for (const auto& [id, row] : p.changes) {
    serde::PutU64(&out, id);
    AppendTuple(&out, row);
  }
  return out;
}

std::string EncodeDelete(const DeletePayload& p) {
  std::string out;
  serde::PutString(&out, p.table);
  serde::PutU32(&out, static_cast<uint32_t>(p.rows.size()));
  for (RowId id : p.rows) serde::PutU64(&out, id);
  return out;
}

std::string EncodeCreateModel(const CreateModelPayload& p) {
  std::string out;
  serde::PutString(&out, p.model);
  serde::PutString(&out, p.model_type);
  serde::PutString(&out, p.target);
  serde::PutString(&out, p.table);
  serde::PutU32(&out, static_cast<uint32_t>(p.features.size()));
  for (const auto& f : p.features) serde::PutString(&out, f);
  return out;
}

std::string EncodeCommit(txn::TxnId txn) {
  std::string out;
  serde::PutU64(&out, txn);
  return out;
}

std::string EncodeCreateIndex(const CreateIndexPayload& p) {
  std::string out;
  serde::PutString(&out, p.index);
  serde::PutString(&out, p.table);
  serde::PutString(&out, p.column);
  serde::PutU8(&out, p.is_btree ? 1 : 0);
  return out;
}

std::string EncodeDropIndex(const std::string& index) {
  std::string out;
  serde::PutString(&out, index);
  return out;
}

std::string EncodeTxnOp(const TxnOpPayload& p) {
  std::string out;
  serde::PutU64(&out, p.txn);
  serde::PutU8(&out, static_cast<uint8_t>(p.inner_type));
  out.append(p.inner_payload);
  return out;
}

std::string EncodeTxnAbort(txn::TxnId txn) {
  std::string out;
  serde::PutU64(&out, txn);
  return out;
}

Result<CreateTablePayload> DecodeCreateTable(const std::string& payload) {
  serde::Reader r(payload);
  CreateTablePayload p;
  if (!r.ReadString(&p.table)) return Status::Internal("wal: bad CREATE TABLE");
  AIDB_ASSIGN_OR_RETURN(p.schema, Schema::Deserialize(&r));
  return p;
}

Result<std::string> DecodeDropTable(const std::string& payload) {
  serde::Reader r(payload);
  std::string table;
  if (!r.ReadString(&table)) return Status::Internal("wal: bad DROP TABLE");
  return table;
}

Result<InsertPayload> DecodeInsert(const std::string& payload) {
  serde::Reader r(payload);
  InsertPayload p;
  uint32_t n = 0;
  if (!r.ReadString(&p.table) || !r.ReadU64(&p.first_row_id) || !r.ReadU32(&n))
    return Status::Internal("wal: bad INSERT header");
  p.rows.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Tuple row;
    AIDB_ASSIGN_OR_RETURN(row, DeserializeTuple(&r));
    p.rows.push_back(std::move(row));
  }
  return p;
}

Result<UpdatePayload> DecodeUpdate(const std::string& payload) {
  serde::Reader r(payload);
  UpdatePayload p;
  uint32_t n = 0;
  if (!r.ReadString(&p.table) || !r.ReadU32(&n))
    return Status::Internal("wal: bad UPDATE header");
  p.changes.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    if (!r.ReadU64(&id)) return Status::Internal("wal: bad UPDATE row id");
    Tuple row;
    AIDB_ASSIGN_OR_RETURN(row, DeserializeTuple(&r));
    p.changes.emplace_back(id, std::move(row));
  }
  return p;
}

Result<DeletePayload> DecodeDelete(const std::string& payload) {
  serde::Reader r(payload);
  DeletePayload p;
  uint32_t n = 0;
  if (!r.ReadString(&p.table) || !r.ReadU32(&n))
    return Status::Internal("wal: bad DELETE header");
  p.rows.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    if (!r.ReadU64(&id)) return Status::Internal("wal: bad DELETE row id");
    p.rows.push_back(id);
  }
  return p;
}

Result<CreateModelPayload> DecodeCreateModel(const std::string& payload) {
  serde::Reader r(payload);
  CreateModelPayload p;
  uint32_t n = 0;
  if (!r.ReadString(&p.model) || !r.ReadString(&p.model_type) ||
      !r.ReadString(&p.target) || !r.ReadString(&p.table) || !r.ReadU32(&n))
    return Status::Internal("wal: bad CREATE MODEL");
  for (uint32_t i = 0; i < n; ++i) {
    std::string f;
    if (!r.ReadString(&f)) return Status::Internal("wal: bad CREATE MODEL feature");
    p.features.push_back(std::move(f));
  }
  return p;
}

Result<txn::TxnId> DecodeCommit(const std::string& payload) {
  serde::Reader r(payload);
  uint64_t txn = 0;
  if (!r.ReadU64(&txn)) return Status::Internal("wal: bad COMMIT");
  return txn;
}

Result<CreateIndexPayload> DecodeCreateIndex(const std::string& payload) {
  serde::Reader r(payload);
  CreateIndexPayload p;
  uint8_t btree = 1;
  if (!r.ReadString(&p.index) || !r.ReadString(&p.table) ||
      !r.ReadString(&p.column) || !r.ReadU8(&btree))
    return Status::Internal("wal: bad CREATE INDEX");
  p.is_btree = btree != 0;
  return p;
}

Result<std::string> DecodeDropIndex(const std::string& payload) {
  serde::Reader r(payload);
  std::string index;
  if (!r.ReadString(&index)) return Status::Internal("wal: bad DROP INDEX");
  return index;
}

Result<TxnOpPayload> DecodeTxnOp(const std::string& payload) {
  serde::Reader r(payload);
  TxnOpPayload p;
  uint8_t type = 0;
  if (!r.ReadU64(&p.txn) || !r.ReadU8(&type))
    return Status::Internal("wal: bad TXN_OP header");
  p.inner_type = static_cast<WalRecordType>(type);
  if (p.inner_type == WalRecordType::kTxnOp ||
      p.inner_type == WalRecordType::kTxnAbort ||
      p.inner_type == WalRecordType::kCommit) {
    return Status::Internal("wal: TXN_OP cannot nest control records");
  }
  p.inner_payload.assign(payload.data() + r.offset(),
                         payload.size() - r.offset());
  return p;
}

Result<txn::TxnId> DecodeTxnAbort(const std::string& payload) {
  serde::Reader r(payload);
  uint64_t txn = 0;
  if (!r.ReadU64(&txn)) return Status::Internal("wal: bad TXN_ABORT");
  return txn;
}

// --- Frame codec -------------------------------------------------------------

std::string EncodeWalFrame(uint64_t lsn, WalRecordType type,
                           const std::string& payload) {
  std::string body;
  body.reserve(9 + payload.size());
  serde::PutU64(&body, lsn);
  serde::PutU8(&body, static_cast<uint8_t>(type));
  body.append(payload);

  std::string frame;
  frame.reserve(8 + body.size());
  serde::PutU32(&frame, static_cast<uint32_t>(body.size()));
  serde::PutU32(&frame, serde::Crc32(body.data(), body.size()));
  frame.append(body);
  return frame;
}

// --- Writer ------------------------------------------------------------------

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   uint64_t next_lsn,
                                                   const Options& opts) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0)
    return Status::Internal("wal: open " + path + ": " + std::strerror(errno));
  auto w = std::unique_ptr<WalWriter>(new WalWriter(fd, path, next_lsn, opts));
  off_t size = ::lseek(fd, 0, SEEK_END);
  w->file_size_ = size < 0 ? 0 : static_cast<uint64_t>(size);
  // Everything already on disk at open time is what recovery just validated.
  w->synced_size_ = w->file_size_;
  if (w->opts_.flush_interval == 0) w->opts_.flush_interval = 1;
  return w;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    if (!crashed_) Flush().ok();  // best-effort clean shutdown
    ::close(fd_);
  }
}

Result<uint64_t> WalWriter::Append(WalRecordType type, std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::Aborted("wal: writer crashed");
  uint64_t lsn = next_lsn_++;
  buffer_.append(EncodeWalFrame(lsn, type, payload));
  ++buffered_records_;
  ++stats_.records_appended;
  if (records_metric_) records_metric_->Add();
  if (buffered_records_ >= opts_.flush_interval) {
    AIDB_RETURN_NOT_OK(FlushLocked());
  }
  return lsn;
}

Status WalWriter::PhysicalWrite(const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::write(fd_, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("wal: write: " + std::string(std::strerror(errno)));
    }
    done += static_cast<size_t>(w);
  }
  file_size_ += n;
  stats_.bytes_written += n;
  return Status::OK();
}

/// Applies the armed fault's file damage, then reports the simulated death.
/// The buffer is what a real crash would have caught in flight.
Status WalWriter::SimulateCrash(FaultKind kind) {
  crashed_ = true;
  switch (kind) {
    case FaultKind::kTornWrite: {
      // A prefix of the buffered frames reaches the file, cut mid-record.
      size_t torn = buffer_.empty()
                        ? 0
                        : 1 + opts_.fault->rng().Uniform(buffer_.size());
      PhysicalWrite(buffer_.data(), torn).ok();
      break;
    }
    case FaultKind::kCorruptByte: {
      // The whole buffer lands, but one byte is flipped in flight.
      std::string damaged = buffer_;
      if (!damaged.empty()) {
        size_t at = opts_.fault->rng().Uniform(damaged.size());
        damaged[at] = static_cast<char>(damaged[at] ^ 0x40);
      }
      PhysicalWrite(damaged.data(), damaged.size()).ok();
      break;
    }
    case FaultKind::kDroppedFsync: {
      // The write hit the page cache but never the platter: on power loss
      // every byte after the last durable fsync is gone.
      PhysicalWrite(buffer_.data(), buffer_.size()).ok();
      ::ftruncate(fd_, static_cast<off_t>(synced_size_));
      file_size_ = synced_size_;
      break;
    }
    case FaultKind::kCleanCrash:
    case FaultKind::kNone:
      break;
  }
  buffer_.clear();
  buffered_records_ = 0;
  return Status::Aborted("wal: simulated crash (" +
                         std::string(FaultKindName(kind)) + ")");
}

Status WalWriter::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status WalWriter::FlushLocked() {
  if (crashed_) return Status::Aborted("wal: writer crashed");
  if (buffer_.empty()) return Status::OK();
  if (opts_.fault != nullptr) {
    FaultKind kind = opts_.fault->Fire(FaultPoint::kWalFlush);
    if (kind != FaultKind::kNone) return SimulateCrash(kind);
  }
  // Injected device stall: account the configured delay on every flush (the
  // live monitors' io_wait ground truth) and only burn the wall time when the
  // test asked for a real sleep.
  uint64_t stall_us = 0;
  if (opts_.fault != nullptr) {
    stall_us = opts_.fault->StallUs(FaultPoint::kWalFlush);
    if (stall_us > 0) {
      if (stall_us_metric_) stall_us_metric_->Add(stall_us);
      if (opts_.fault->stall_real_sleep()) {
        std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
      }
    }
  }
  monitor::SpanScope flush_span(opts_.spans, "wal_flush");
  Timer flush_timer;
  size_t batch_bytes = buffer_.size();
  AIDB_RETURN_NOT_OK(PhysicalWrite(buffer_.data(), buffer_.size()));
  buffer_.clear();
  buffered_records_ = 0;
  ++stats_.flushes;
  ++stats_.fsyncs;
  if (opts_.sync) {
    if (::fsync(fd_) != 0)
      return Status::Internal("wal: fsync: " + std::string(std::strerror(errno)));
  }
  synced_size_ = file_size_;
  if (flushes_metric_) {
    flushes_metric_->Add();
    fsyncs_metric_->Add();
    bytes_metric_->Add(batch_bytes);
    flush_us_metric_->Observe(flush_timer.ElapsedMicros());
  }
  if (flush_span.active()) flush_span.set_value(static_cast<double>(batch_bytes));
  return Status::OK();
}

Status WalWriter::ResetAfterCheckpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::Aborted("wal: writer crashed");
  buffer_.clear();
  buffered_records_ = 0;
  if (::ftruncate(fd_, 0) != 0)
    return Status::Internal("wal: truncate: " + std::string(std::strerror(errno)));
  // O_APPEND writes track the (now zero) end of file automatically.
  file_size_ = 0;
  synced_size_ = 0;
  if (opts_.sync && ::fsync(fd_) != 0)
    return Status::Internal("wal: fsync: " + std::string(std::strerror(errno)));
  return Status::OK();
}

// --- Scanner -----------------------------------------------------------------

Result<WalScan> ScanWalFile(const std::string& path) {
  WalScan scan;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return scan;  // no WAL yet: empty database
    return Status::Internal("wal: open " + path + ": " + std::strerror(errno));
  }
  std::string data;
  char chunk[1 << 16];
  ssize_t n = 0;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) data.append(chunk, n);
  ::close(fd);
  if (n < 0) return Status::Internal("wal: read: " + std::string(std::strerror(errno)));

  scan.file_bytes = data.size();
  serde::Reader r(data);
  while (r.remaining() > 0) {
    size_t frame_start = r.offset();
    uint32_t body_len = 0, crc = 0;
    if (!r.ReadU32(&body_len) || !r.ReadU32(&crc) || r.remaining() < body_len) {
      scan.tail_torn = true;
      break;
    }
    const char* body = r.Skip(body_len);
    if (serde::Crc32(body, body_len) != crc) {
      scan.tail_torn = true;
      break;
    }
    serde::Reader br(body, body_len);
    WalRecord rec;
    uint8_t type = 0;
    if (!br.ReadU64(&rec.lsn) || !br.ReadU8(&type)) {
      scan.tail_torn = true;
      break;
    }
    rec.type = static_cast<WalRecordType>(type);
    rec.payload.assign(body + br.offset(), body_len - br.offset());
    scan.records.push_back(std::move(rec));
    scan.valid_bytes = frame_start + 8 + body_len;
  }
  return scan;
}

}  // namespace aidb::storage
