#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/rng.h"

namespace aidb::storage {

/// What a fired fault does to the durable file being written.
enum class FaultKind : uint8_t {
  kNone = 0,
  /// The physical write stops partway through the buffer: a torn record
  /// tail that recovery must detect via CRC and truncate.
  kTornWrite,
  /// The write lands fully in the page cache but the fsync never happens
  /// and the machine dies: every byte since the last successful sync is
  /// lost cleanly.
  kDroppedFsync,
  /// One byte of the buffer is flipped before it reaches the disk (a
  /// misdirected/bit-rotted write); the frame length is intact, so only
  /// the CRC can catch it.
  kCorruptByte,
  /// A clean power cut between two durable steps (e.g. after a snapshot
  /// rename but before the WAL reset) — no file damage, just a stop.
  kCleanCrash,
};

const char* FaultKindName(FaultKind k);

/// Where in the durability pipeline an injection point sits.
enum class FaultPoint : uint8_t {
  kWalFlush = 0,      ///< WalWriter::Flush, before the buffer hits the file
  kSnapshotWrite,     ///< mid snapshot temp-file write
  kPostSnapshotRename,///< snapshot durable, WAL not yet reset
  kSstBlockWrite,     ///< mid SST data-block write (LSM flush/compaction)
  kSstFooter,         ///< SST footer write / final fsync
  kManifestUpdate,    ///< LSM manifest temp-write/rename
  kCompactionWrite,   ///< mid-compaction output write
};

/// \brief Deterministic crash scheduler for the durability layer.
///
/// Every physical step of the WAL/snapshot pipeline calls Fire() at its
/// injection point; the injector counts points and, when the armed point is
/// reached, returns the armed fault kind. After firing, the injector (and
/// the writer that consulted it) is "crashed": the owning Database refuses
/// further work and the test reopens from disk, exactly as if the process
/// had died. Seeded via common/rng.h — no wall clock anywhere — so a crash
/// matrix is replayable from (seed, point index).
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 42) : rng_(seed) {}

  /// Counting mode (nothing armed): Fire() only tallies points, which is how
  /// the crash-matrix harness learns how many injection points a workload has.
  void ArmCrash(uint64_t fire_at_point, FaultKind kind) {
    fire_at_ = fire_at_point;
    kind_ = kind;
  }

  /// Called by WAL/snapshot writers at each injection point (1-based count).
  /// Returns the fault to apply now, or kNone.
  FaultKind Fire(FaultPoint point) {
    ++points_seen_;
    last_point_ = point;
    if (crashed_ || kind_ == FaultKind::kNone || points_seen_ != fire_at_) {
      return FaultKind::kNone;
    }
    crashed_ = true;
    return kind_;
  }

  bool crashed() const { return crashed_; }
  uint64_t points_seen() const { return points_seen_; }

  /// \name Non-crashing delay injection
  /// Arms a deterministic stall at `point`: consumers report `us` of wait at
  /// every pass through that point until DisarmStall(). Unlike ArmCrash this
  /// never kills the writer — it models a slow device (fsync latency spikes,
  /// saturated disk) for the live-monitoring pipeline, which needs a real,
  /// sustained io_wait signal with exact ground truth. The injected delay is
  /// *accounted* (the consumer adds it to its stall counters) rather than
  /// slept by default, keeping fault tests wall-clock free; `real_sleep`
  /// additionally burns the wall time for end-to-end latency tests. Atomics
  /// throughout: tests arm/disarm while engine threads consult the point.
  /// @{
  void ArmStall(FaultPoint point, uint64_t us, bool real_sleep = false) {
    stall_point_.store(static_cast<uint8_t>(point), std::memory_order_relaxed);
    stall_real_sleep_.store(real_sleep, std::memory_order_relaxed);
    stall_us_.store(us, std::memory_order_release);
  }
  void DisarmStall() { stall_us_.store(0, std::memory_order_release); }
  /// Armed stall for `point` in microseconds (0 = none).
  uint64_t StallUs(FaultPoint point) const {
    const uint64_t us = stall_us_.load(std::memory_order_acquire);
    if (us == 0) return 0;
    if (stall_point_.load(std::memory_order_relaxed) !=
        static_cast<uint8_t>(point)) {
      return 0;
    }
    return us;
  }
  bool stall_real_sleep() const {
    return stall_real_sleep_.load(std::memory_order_relaxed);
  }
  /// @}

  /// Deterministic randomness for damage placement (torn-write length,
  /// corrupt-byte offset).
  Rng& rng() { return rng_; }

 private:
  Rng rng_;
  uint64_t points_seen_ = 0;
  uint64_t fire_at_ = 0;
  FaultKind kind_ = FaultKind::kNone;
  FaultPoint last_point_ = FaultPoint::kWalFlush;
  bool crashed_ = false;
  std::atomic<uint64_t> stall_us_{0};
  std::atomic<uint8_t> stall_point_{0};
  std::atomic<bool> stall_real_sleep_{false};
};

}  // namespace aidb::storage
