#pragma once

#include <memory>
#include <string>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace aidb::sql {

/// \brief Recursive-descent parser for the engine's SQL dialect.
///
/// Supported statements:
///   CREATE TABLE t (a INT, b DOUBLE, c STRING)
///   DROP TABLE t
///   CREATE INDEX i ON t(a) [USING HASH]
///   DROP INDEX i
///   INSERT INTO t VALUES (1, 2.5, 'x'), (...)
///   SELECT [*|exprs] FROM t [alias] [, u] [JOIN v ON a = b]*
///     [WHERE pred] [GROUP BY cols] [ORDER BY col [ASC|DESC]] [LIMIT n]
///   EXPLAIN SELECT ...
///   UPDATE t SET a = expr [, b = expr] [WHERE pred]
///   DELETE FROM t [WHERE pred]
///   ANALYZE t
///   CREATE MODEL m TYPE mlp PREDICT y ON t [FEATURES (a, b)]
///   SHOW MODELS
///   PREPARE name AS SELECT ... $1 ... $n
///   EXECUTE name [(v1, ..., vn)]
///   DEALLOCATE name
class Parser {
 public:
  /// Parses one statement (a trailing ';' is allowed).
  static Result<std::unique_ptr<Statement>> Parse(const std::string& input);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Statement>> ParseStatement();
  Result<std::unique_ptr<Statement>> ParseSelect(bool explain);
  Result<std::unique_ptr<Statement>> ParseInsert();
  Result<std::unique_ptr<Statement>> ParseCreate();
  Result<std::unique_ptr<Statement>> ParseDrop();
  Result<std::unique_ptr<Statement>> ParseUpdate();
  Result<std::unique_ptr<Statement>> ParseDelete();
  Result<std::unique_ptr<Statement>> ParsePrepare();
  Result<std::unique_ptr<Statement>> ParseExecute();
  Result<std::unique_ptr<Statement>> ParseDeallocate();

  /// Expression grammar (precedence climbing):
  ///   or_expr  := and_expr (OR and_expr)*
  ///   and_expr := not_expr (AND not_expr)*
  ///   not_expr := NOT not_expr | cmp_expr
  ///   cmp_expr := add_expr ((=|!=|<|<=|>|>=) add_expr | BETWEEN a AND b)?
  ///   add_expr := mul_expr ((+|-) mul_expr)*
  ///   mul_expr := unary ((*|/) unary)*
  ///   unary    := - unary | primary
  ///   primary  := literal | colref | agg(...) | PREDICT(m, ...) | ( or_expr )
  Result<std::unique_ptr<Expr>> ParseExpr();
  Result<std::unique_ptr<Expr>> ParseAnd();
  Result<std::unique_ptr<Expr>> ParseNot();
  Result<std::unique_ptr<Expr>> ParseCmp();
  Result<std::unique_ptr<Expr>> ParseAdd();
  Result<std::unique_ptr<Expr>> ParseMul();
  Result<std::unique_ptr<Expr>> ParseUnary();
  Result<std::unique_ptr<Expr>> ParsePrimary();

  Result<Value> ParseLiteralValue();

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(const char* kw_or_sym);
  Status Expect(const char* kw_or_sym);
  Status ExpectIdentifier(std::string* out);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  /// Highest $N placeholder seen so far. Placeholders are only legal inside
  /// a PREPARE body; Parse() rejects them anywhere else.
  int max_param_ = 0;
};

}  // namespace aidb::sql
