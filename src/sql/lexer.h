#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace aidb::sql {

enum class TokenType {
  kKeyword,     ///< SELECT, FROM, ... (uppercased)
  kIdentifier,  ///< table/column names (case preserved)
  kInteger,
  kFloat,
  kString,      ///< single-quoted literal, quotes stripped
  kSymbol,      ///< punctuation / operators: ( ) , * = != < <= > >= + - / . ;
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;   ///< keyword/symbol text, identifier, or literal body
  size_t offset = 0;  ///< byte offset in the input (for error messages)

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* s) const {
    return type == TokenType::kSymbol && text == s;
  }
};

/// Tokenizes a SQL string. Keywords are recognized case-insensitively and
/// normalized to upper case; anything word-like that is not a keyword is an
/// identifier.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace aidb::sql
