#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace aidb::sql {

enum class TokenType {
  kKeyword,     ///< SELECT, FROM, ... (uppercased)
  kIdentifier,  ///< table/column names (case preserved)
  kInteger,
  kFloat,
  kString,      ///< single-quoted literal, quotes stripped
  kSymbol,      ///< punctuation / operators: ( ) , * = != < <= > >= + - / . ;
  kParam,       ///< $N placeholder (PREPARE/EXECUTE), text is the digits
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;   ///< keyword/symbol text, identifier, or literal body
  size_t offset = 0;  ///< byte offset in the input (for error messages)

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* s) const {
    return type == TokenType::kSymbol && text == s;
  }
};

/// Tokenizes a SQL string. Keywords are recognized case-insensitively and
/// normalized to upper case; anything word-like that is not a keyword is an
/// identifier.
Result<std::vector<Token>> Lex(const std::string& input);

/// Renders tokens [begin, end) back to canonical SQL text: keywords
/// uppercased, one space between tokens, strings re-quoted, params as $N.
/// Two statements normalize identically iff they tokenize identically — the
/// plan cache and prepared-statement store key on this rendering.
std::string JoinTokens(const std::vector<Token>& tokens, size_t begin,
                       size_t end);

/// Lexes and re-renders a whole statement (kEnd excluded). Lex errors
/// propagate.
Result<std::string> NormalizeSql(const std::string& input);

}  // namespace aidb::sql
