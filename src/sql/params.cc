#include "sql/params.h"

#include <string>

namespace aidb::sql {

namespace {

/// Rewrites a single expression tree, turning kParam nodes into literals.
Status BindExpr(Expr* e, const std::vector<Value>& args) {
  if (e == nullptr) return Status::OK();
  if (e->kind == Expr::Kind::kParam) {
    if (e->param < 1 || static_cast<size_t>(e->param) > args.size()) {
      return Status::InvalidArgument(
          "EXECUTE supplies " + std::to_string(args.size()) +
          " argument(s) but statement references $" + std::to_string(e->param));
    }
    const Value& v = args[static_cast<size_t>(e->param) - 1];
    e->kind = Expr::Kind::kLiteral;
    e->literal = v;
    e->param = 0;
    return Status::OK();
  }
  AIDB_RETURN_NOT_OK(BindExpr(e->lhs.get(), args));
  AIDB_RETURN_NOT_OK(BindExpr(e->rhs.get(), args));
  for (auto& a : e->args) AIDB_RETURN_NOT_OK(BindExpr(a.get(), args));
  return Status::OK();
}

}  // namespace

Status BindParams(Statement* stmt, const std::vector<Value>& args) {
  if (stmt == nullptr) return Status::InvalidArgument("null statement");
  switch (stmt->kind()) {
    case StatementKind::kSelect: {
      auto* s = static_cast<SelectStatement*>(stmt);
      for (auto& item : s->items) AIDB_RETURN_NOT_OK(BindExpr(item.expr.get(), args));
      for (auto& j : s->joins) AIDB_RETURN_NOT_OK(BindExpr(j.condition.get(), args));
      AIDB_RETURN_NOT_OK(BindExpr(s->where.get(), args));
      for (auto& g : s->group_by) AIDB_RETURN_NOT_OK(BindExpr(g.get(), args));
      return BindExpr(s->having.get(), args);
    }
    case StatementKind::kUpdate: {
      auto* s = static_cast<UpdateStatement*>(stmt);
      for (auto& [col, expr] : s->assignments) {
        (void)col;
        AIDB_RETURN_NOT_OK(BindExpr(expr.get(), args));
      }
      return BindExpr(s->where.get(), args);
    }
    case StatementKind::kDelete: {
      auto* s = static_cast<DeleteStatement*>(stmt);
      return BindExpr(s->where.get(), args);
    }
    // The remaining kinds carry no expression slots (INSERT rows are bare
    // literal values; DDL/ANALYZE/model statements are name-only), so any
    // $N the parser let through cannot appear here.
    default:
      return Status::OK();
  }
}

}  // namespace aidb::sql
