#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace aidb::sql {

/// Binary/unary operators in expressions.
enum class OpType {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv,
  kAnd, kOr, kNot, kNeg,
};

const char* OpName(OpType op);

/// Aggregate functions supported in SELECT lists.
enum class AggFunc { kNone, kCount, kSum, kAvg, kMin, kMax };

/// \brief Expression tree node.
struct Expr {
  enum class Kind {
    kLiteral,    ///< value
    kColumnRef,  ///< [table.]column
    kBinary,     ///< lhs op rhs
    kUnary,      ///< op child
    kAggregate,  ///< agg(child) or COUNT(*)
    kPredict,    ///< PREDICT(model, arg...) — DB4AI scalar inference
    kStar,       ///< * (only inside COUNT(*))
    kParam,      ///< $N placeholder, bound by EXECUTE (PREPARE bodies only)
  };

  Kind kind;
  Value literal;                       // kLiteral
  std::string table;                   // kColumnRef (may be empty)
  std::string column;                  // kColumnRef
  OpType op = OpType::kEq;             // kBinary / kUnary
  AggFunc agg = AggFunc::kNone;        // kAggregate
  std::string model;                   // kPredict
  int param = 0;                       // kParam: 1-based placeholder index
  std::unique_ptr<Expr> lhs, rhs;      // children
  std::vector<std::unique_ptr<Expr>> args;  // kPredict arguments

  static std::unique_ptr<Expr> MakeLiteral(Value v);
  static std::unique_ptr<Expr> MakeColumn(std::string table, std::string column);
  static std::unique_ptr<Expr> MakeBinary(OpType op, std::unique_ptr<Expr> l,
                                          std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> MakeUnary(OpType op, std::unique_ptr<Expr> child);

  std::unique_ptr<Expr> Clone() const;
  std::string ToString() const;
};

/// One item in a SELECT list: expression plus optional alias.
struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;
  bool is_star = false;  ///< bare *
};

/// Table reference in FROM (optionally aliased).
struct TableRef {
  std::string table;
  std::string alias;  ///< defaults to table name

  const std::string& EffectiveName() const { return alias.empty() ? table : alias; }
};

/// Explicit JOIN clause: JOIN <table> ON <condition>.
struct JoinClause {
  TableRef table;
  std::unique_ptr<Expr> condition;
};

/// Statement kinds the parser produces.
enum class StatementKind {
  kSelect, kInsert, kCreateTable, kCreateIndex, kDropIndex, kUpdate, kDelete,
  kAnalyze, kCreateModel, kShowModels, kDropTable,
  kPrepare, kExecute, kDeallocate,
  kBegin, kCommit, kRollback,
};

struct Statement {
  virtual ~Statement() = default;
  virtual StatementKind kind() const = 0;
  /// Deep copy. PREPARE stores statement templates and EXECUTE instantiates
  /// them per call, so every statement kind must be clonable.
  virtual std::unique_ptr<Statement> Clone() const = 0;
};

/// One ORDER BY key: [table.]column plus direction.
struct OrderKey {
  std::string column;  ///< may be "table.column" qualified
  bool desc = false;
};

struct SelectStatement : Statement {
  std::vector<SelectItem> items;
  bool distinct = false;               ///< SELECT DISTINCT
  std::vector<TableRef> from;          ///< comma-separated relations
  std::vector<JoinClause> joins;       ///< explicit JOIN ... ON ...
  std::unique_ptr<Expr> where;
  std::vector<std::unique_ptr<Expr>> group_by;
  std::unique_ptr<Expr> having;        ///< predicate over aggregates
  std::vector<OrderKey> order_by;
  int64_t limit = -1;                  ///< -1: none
  bool explain = false;                ///< EXPLAIN SELECT ...
  bool explain_analyze = false;        ///< EXPLAIN ANALYZE: execute + trace

  std::unique_ptr<Statement> Clone() const override;
  StatementKind kind() const override { return StatementKind::kSelect; }
};

struct InsertStatement : Statement {
  std::string table;
  std::vector<std::vector<Value>> rows;
  std::unique_ptr<Statement> Clone() const override;
  StatementKind kind() const override { return StatementKind::kInsert; }
};

struct CreateTableStatement : Statement {
  std::string table;
  Schema schema;
  std::unique_ptr<Statement> Clone() const override;
  StatementKind kind() const override { return StatementKind::kCreateTable; }
};

struct DropTableStatement : Statement {
  std::string table;
  std::unique_ptr<Statement> Clone() const override;
  StatementKind kind() const override { return StatementKind::kDropTable; }
};

struct CreateIndexStatement : Statement {
  std::string index;
  std::string table;
  std::string column;
  bool is_btree = true;
  std::unique_ptr<Statement> Clone() const override;
  StatementKind kind() const override { return StatementKind::kCreateIndex; }
};

struct DropIndexStatement : Statement {
  std::string index;
  std::unique_ptr<Statement> Clone() const override;
  StatementKind kind() const override { return StatementKind::kDropIndex; }
};

struct UpdateStatement : Statement {
  std::string table;
  std::vector<std::pair<std::string, std::unique_ptr<Expr>>> assignments;
  std::unique_ptr<Expr> where;
  std::unique_ptr<Statement> Clone() const override;
  StatementKind kind() const override { return StatementKind::kUpdate; }
};

struct DeleteStatement : Statement {
  std::string table;
  std::unique_ptr<Expr> where;
  std::unique_ptr<Statement> Clone() const override;
  StatementKind kind() const override { return StatementKind::kDelete; }
};

struct AnalyzeStatement : Statement {
  std::string table;
  std::unique_ptr<Statement> Clone() const override;
  StatementKind kind() const override { return StatementKind::kAnalyze; }
};

/// DB4AI: CREATE MODEL name TYPE <mlp|linear|logistic|forest>
///        PREDICT target ON table [FEATURES (c1, c2, ...)]
struct CreateModelStatement : Statement {
  std::string model;
  std::string model_type;
  std::string target;
  std::string table;
  std::vector<std::string> features;  ///< empty: all non-target numeric columns
  std::unique_ptr<Statement> Clone() const override;
  StatementKind kind() const override { return StatementKind::kCreateModel; }
};

struct ShowModelsStatement : Statement {
  std::unique_ptr<Statement> Clone() const override;
  StatementKind kind() const override { return StatementKind::kShowModels; }
};

/// BEGIN [TRANSACTION]: opens an explicit transaction on the session.
struct BeginStatement : Statement {
  std::unique_ptr<Statement> Clone() const override;
  StatementKind kind() const override { return StatementKind::kBegin; }
};

/// COMMIT: commits the session's open transaction.
struct CommitStatement : Statement {
  std::unique_ptr<Statement> Clone() const override;
  StatementKind kind() const override { return StatementKind::kCommit; }
};

/// ROLLBACK: rolls back the session's open transaction.
struct RollbackStatement : Statement {
  std::unique_ptr<Statement> Clone() const override;
  StatementKind kind() const override { return StatementKind::kRollback; }
};

/// PREPARE name AS <statement with $1..$n placeholders>.
struct PrepareStatement : Statement {
  std::string name;
  std::string body_text;  ///< canonical token rendering of the body (cache key)
  std::unique_ptr<Statement> body;
  int num_params = 0;  ///< highest $N referenced in the body
  std::unique_ptr<Statement> Clone() const override;
  StatementKind kind() const override { return StatementKind::kPrepare; }
};

/// EXECUTE name [(v1, v2, ...)].
struct ExecuteStatement : Statement {
  std::string name;
  std::vector<Value> args;
  std::unique_ptr<Statement> Clone() const override;
  StatementKind kind() const override { return StatementKind::kExecute; }
};

/// DEALLOCATE name.
struct DeallocateStatement : Statement {
  std::string name;
  std::unique_ptr<Statement> Clone() const override;
  StatementKind kind() const override { return StatementKind::kDeallocate; }
};

}  // namespace aidb::sql
