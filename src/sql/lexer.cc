#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

namespace aidb::sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords{
      "SELECT", "FROM",   "WHERE",   "AND",    "OR",     "NOT",    "INSERT",
      "INTO",   "VALUES", "CREATE",  "TABLE",  "INDEX",  "ON",     "USING",
      "HASH",   "BTREE",  "INT",     "DOUBLE", "STRING", "JOIN",   "INNER",
      "GROUP",  "BY",     "ORDER",   "ASC",    "DESC",   "LIMIT",  "UPDATE",
      "SET",    "DELETE", "ANALYZE", "AS",     "NULL",   "MODEL",  "PREDICT",
      "FEATURES", "TYPE", "DROP",    "COUNT",  "SUM",    "AVG",    "MIN",
      "MAX",    "BETWEEN", "IS",     "DISTINCT", "WITH", "OPTIONS", "SHOW",
      "MODELS", "EXPLAIN", "HAVING", "PREPARE", "EXECUTE", "DEALLOCATE",
      "BEGIN",  "COMMIT",  "ROLLBACK", "TRANSACTION",
  };
  return kKeywords;
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_'))
        ++i;
      std::string word = input.substr(start, i - start);
      std::string upper = word;
      for (char& ch : upper) ch = static_cast<char>(std::toupper(ch));
      if (Keywords().count(upper)) {
        out.push_back({TokenType::kKeyword, upper, start});
      } else {
        out.push_back({TokenType::kIdentifier, word, start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        if (input[i] == '.') is_float = true;
        ++i;
      }
      out.push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                     input.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string body;
      while (i < n && input[i] != '\'') {
        body += input[i];
        ++i;
      }
      if (i >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      ++i;  // closing quote
      out.push_back({TokenType::kString, body, start});
      continue;
    }
    if (c == '$') {
      ++i;
      size_t digits = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i == digits) {
        return Status::ParseError("expected parameter number after '$' at offset " +
                                  std::to_string(start));
      }
      out.push_back({TokenType::kParam, input.substr(digits, i - digits), start});
      continue;
    }
    // Multi-char operators.
    auto two = input.substr(i, 2);
    if (two == "!=" || two == "<=" || two == ">=" || two == "<>") {
      out.push_back({TokenType::kSymbol, two == "<>" ? "!=" : two, start});
      i += 2;
      continue;
    }
    static const std::string kSingle = "(),*=<>+-/.;%";
    if (kSingle.find(c) != std::string::npos) {
      out.push_back({TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(start));
  }
  out.push_back({TokenType::kEnd, "", n});
  return out;
}

std::string JoinTokens(const std::vector<Token>& tokens, size_t begin,
                       size_t end) {
  std::string out;
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.type == TokenType::kEnd) break;
    if (!out.empty()) out += ' ';
    switch (t.type) {
      case TokenType::kString: out += "'" + t.text + "'"; break;
      case TokenType::kParam: out += "$" + t.text; break;
      default: out += t.text; break;
    }
  }
  return out;
}

Result<std::string> NormalizeSql(const std::string& input) {
  std::vector<Token> tokens;
  AIDB_ASSIGN_OR_RETURN(tokens, Lex(input));
  size_t end = tokens.size();
  while (end > 0 && (tokens[end - 1].type == TokenType::kEnd ||
                     tokens[end - 1].IsSymbol(";"))) {
    --end;  // "SELECT 1" and "SELECT 1;" must key identically
  }
  return JoinTokens(tokens, 0, end);
}

}  // namespace aidb::sql
