#include "sql/parser.h"

namespace aidb::sql {

Result<std::unique_ptr<Statement>> Parser::Parse(const std::string& input) {
  std::vector<Token> tokens;
  AIDB_ASSIGN_OR_RETURN(tokens, Lex(input));
  Parser p(std::move(tokens));
  std::unique_ptr<Statement> stmt;
  AIDB_ASSIGN_OR_RETURN(stmt, p.ParseStatement());
  p.Match(";");
  if (p.Peek().type != TokenType::kEnd) {
    return Status::ParseError("trailing input after statement: '" +
                              p.Peek().text + "'");
  }
  if (p.max_param_ > 0 && stmt->kind() != StatementKind::kPrepare) {
    return Status::ParseError(
        "parameter placeholders ($N) are only allowed inside PREPARE bodies");
  }
  return stmt;
}

bool Parser::Match(const char* kw_or_sym) {
  const Token& t = Peek();
  if (t.IsKeyword(kw_or_sym) || t.IsSymbol(kw_or_sym)) {
    ++pos_;
    return true;
  }
  return false;
}

Status Parser::Expect(const char* kw_or_sym) {
  if (Match(kw_or_sym)) return Status::OK();
  return Status::ParseError(std::string("expected '") + kw_or_sym + "' but got '" +
                            Peek().text + "' at offset " +
                            std::to_string(Peek().offset));
}

Status Parser::ExpectIdentifier(std::string* out) {
  if (Peek().type != TokenType::kIdentifier) {
    return Status::ParseError("expected identifier but got '" + Peek().text + "'");
  }
  *out = Advance().text;
  return Status::OK();
}

Result<std::unique_ptr<Statement>> Parser::ParseStatement() {
  if (Match("EXPLAIN")) {
    bool analyze = Match("ANALYZE");
    Result<std::unique_ptr<Statement>> stmt = ParseSelect(/*explain=*/true);
    if (stmt.ok() && analyze) {
      static_cast<SelectStatement*>(stmt.ValueOrDie().get())->explain_analyze =
          true;
    }
    return stmt;
  }
  if (Peek().IsKeyword("SELECT")) return ParseSelect(false);
  if (Peek().IsKeyword("INSERT")) return ParseInsert();
  if (Peek().IsKeyword("CREATE")) return ParseCreate();
  if (Peek().IsKeyword("DROP")) return ParseDrop();
  if (Peek().IsKeyword("UPDATE")) return ParseUpdate();
  if (Peek().IsKeyword("DELETE")) return ParseDelete();
  if (Match("ANALYZE")) {
    auto stmt = std::make_unique<AnalyzeStatement>();
    AIDB_RETURN_NOT_OK(ExpectIdentifier(&stmt->table));
    return std::unique_ptr<Statement>(std::move(stmt));
  }
  if (Match("SHOW")) {
    AIDB_RETURN_NOT_OK(Expect("MODELS"));
    return std::unique_ptr<Statement>(std::make_unique<ShowModelsStatement>());
  }
  if (Peek().IsKeyword("PREPARE")) return ParsePrepare();
  if (Peek().IsKeyword("EXECUTE")) return ParseExecute();
  if (Peek().IsKeyword("DEALLOCATE")) return ParseDeallocate();
  if (Match("BEGIN")) {
    Match("TRANSACTION");  // optional noise word
    return std::unique_ptr<Statement>(std::make_unique<BeginStatement>());
  }
  if (Match("COMMIT")) {
    return std::unique_ptr<Statement>(std::make_unique<CommitStatement>());
  }
  if (Match("ROLLBACK")) {
    return std::unique_ptr<Statement>(std::make_unique<RollbackStatement>());
  }
  return Status::ParseError("unknown statement start: '" + Peek().text + "'");
}

Result<std::unique_ptr<Statement>> Parser::ParsePrepare() {
  AIDB_RETURN_NOT_OK(Expect("PREPARE"));
  auto stmt = std::make_unique<PrepareStatement>();
  AIDB_RETURN_NOT_OK(ExpectIdentifier(&stmt->name));
  AIDB_RETURN_NOT_OK(Expect("AS"));
  size_t body_begin = pos_;
  AIDB_ASSIGN_OR_RETURN(stmt->body, ParseStatement());
  switch (stmt->body->kind()) {
    case StatementKind::kPrepare:
    case StatementKind::kExecute:
    case StatementKind::kDeallocate:
      return Status::ParseError(
          "PREPARE body must be a plain statement, not PREPARE/EXECUTE/"
          "DEALLOCATE");
    case StatementKind::kBegin:
    case StatementKind::kCommit:
    case StatementKind::kRollback:
      return Status::ParseError(
          "PREPARE body must be a plain statement, not transaction control");
    default:
      break;
  }
  stmt->body_text = JoinTokens(tokens_, body_begin, pos_);
  stmt->num_params = max_param_;
  return std::unique_ptr<Statement>(std::move(stmt));
}

Result<std::unique_ptr<Statement>> Parser::ParseExecute() {
  AIDB_RETURN_NOT_OK(Expect("EXECUTE"));
  auto stmt = std::make_unique<ExecuteStatement>();
  AIDB_RETURN_NOT_OK(ExpectIdentifier(&stmt->name));
  if (Match("(")) {
    do {
      Value v;
      AIDB_ASSIGN_OR_RETURN(v, ParseLiteralValue());
      stmt->args.push_back(std::move(v));
    } while (Match(","));
    AIDB_RETURN_NOT_OK(Expect(")"));
  }
  return std::unique_ptr<Statement>(std::move(stmt));
}

Result<std::unique_ptr<Statement>> Parser::ParseDeallocate() {
  AIDB_RETURN_NOT_OK(Expect("DEALLOCATE"));
  auto stmt = std::make_unique<DeallocateStatement>();
  AIDB_RETURN_NOT_OK(ExpectIdentifier(&stmt->name));
  return std::unique_ptr<Statement>(std::move(stmt));
}

Result<std::unique_ptr<Statement>> Parser::ParseSelect(bool explain) {
  AIDB_RETURN_NOT_OK(Expect("SELECT"));
  auto stmt = std::make_unique<SelectStatement>();
  stmt->explain = explain;
  if (Match("DISTINCT")) stmt->distinct = true;

  // Select list.
  do {
    SelectItem item;
    if (Match("*")) {
      item.is_star = true;
    } else {
      AIDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (Match("AS")) {
        AIDB_RETURN_NOT_OK(ExpectIdentifier(&item.alias));
      }
    }
    stmt->items.push_back(std::move(item));
  } while (Match(","));

  AIDB_RETURN_NOT_OK(Expect("FROM"));
  // FROM list.
  do {
    TableRef ref;
    AIDB_RETURN_NOT_OK(ExpectIdentifier(&ref.table));
    if (Peek().type == TokenType::kIdentifier) ref.alias = Advance().text;
    stmt->from.push_back(std::move(ref));
  } while (Match(","));

  // JOIN clauses.
  while (Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER")) {
    Match("INNER");
    AIDB_RETURN_NOT_OK(Expect("JOIN"));
    JoinClause jc;
    AIDB_RETURN_NOT_OK(ExpectIdentifier(&jc.table.table));
    if (Peek().type == TokenType::kIdentifier) jc.table.alias = Advance().text;
    AIDB_RETURN_NOT_OK(Expect("ON"));
    AIDB_ASSIGN_OR_RETURN(jc.condition, ParseExpr());
    stmt->joins.push_back(std::move(jc));
  }

  if (Match("WHERE")) {
    AIDB_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  if (Match("GROUP")) {
    AIDB_RETURN_NOT_OK(Expect("BY"));
    do {
      std::unique_ptr<Expr> e;
      AIDB_ASSIGN_OR_RETURN(e, ParseExpr());
      stmt->group_by.push_back(std::move(e));
    } while (Match(","));
  }
  if (Match("HAVING")) {
    AIDB_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }
  if (Match("ORDER")) {
    AIDB_RETURN_NOT_OK(Expect("BY"));
    do {
      OrderKey key;
      AIDB_RETURN_NOT_OK(ExpectIdentifier(&key.column));
      if (Match(".")) {
        std::string c2;
        AIDB_RETURN_NOT_OK(ExpectIdentifier(&c2));
        key.column += "." + c2;
      }
      if (Match("DESC")) {
        key.desc = true;
      } else {
        Match("ASC");
      }
      stmt->order_by.push_back(std::move(key));
    } while (Match(","));
  }
  if (Match("LIMIT")) {
    if (Peek().type != TokenType::kInteger) {
      return Status::ParseError("LIMIT expects an integer");
    }
    try {
      stmt->limit = std::stoll(Advance().text);
    } catch (const std::exception&) {
      return Status::ParseError("LIMIT value out of range");
    }
  }
  return std::unique_ptr<Statement>(std::move(stmt));
}

Result<Value> Parser::ParseLiteralValue() {
  bool neg = false;
  if (Peek().IsSymbol("-")) {
    neg = true;
    Advance();
  }
  const Token& t = Advance();
  switch (t.type) {
    // stoll/stod throw on out-of-range digits; an unparseable literal must be
    // a ParseError, not an uncaught exception that kills the process.
    case TokenType::kInteger: {
      int64_t v = 0;
      try {
        v = std::stoll(t.text);
      } catch (const std::exception&) {
        return Status::ParseError("integer literal out of range: '" + t.text + "'");
      }
      return Value(neg ? -v : v);
    }
    case TokenType::kFloat: {
      double v = 0;
      try {
        v = std::stod(t.text);
      } catch (const std::exception&) {
        return Status::ParseError("numeric literal out of range: '" + t.text + "'");
      }
      return Value(neg ? -v : v);
    }
    case TokenType::kString:
      if (neg) return Status::ParseError("cannot negate a string literal");
      return Value(t.text);
    case TokenType::kKeyword:
      if (t.text == "NULL" && !neg) return Value::Null();
      [[fallthrough]];
    default:
      return Status::ParseError("expected literal but got '" + t.text + "'");
  }
}

Result<std::unique_ptr<Statement>> Parser::ParseInsert() {
  AIDB_RETURN_NOT_OK(Expect("INSERT"));
  AIDB_RETURN_NOT_OK(Expect("INTO"));
  auto stmt = std::make_unique<InsertStatement>();
  AIDB_RETURN_NOT_OK(ExpectIdentifier(&stmt->table));
  AIDB_RETURN_NOT_OK(Expect("VALUES"));
  do {
    AIDB_RETURN_NOT_OK(Expect("("));
    std::vector<Value> row;
    do {
      Value v;
      AIDB_ASSIGN_OR_RETURN(v, ParseLiteralValue());
      row.push_back(std::move(v));
    } while (Match(","));
    AIDB_RETURN_NOT_OK(Expect(")"));
    stmt->rows.push_back(std::move(row));
  } while (Match(","));
  return std::unique_ptr<Statement>(std::move(stmt));
}

Result<std::unique_ptr<Statement>> Parser::ParseCreate() {
  AIDB_RETURN_NOT_OK(Expect("CREATE"));
  if (Match("TABLE")) {
    auto stmt = std::make_unique<CreateTableStatement>();
    AIDB_RETURN_NOT_OK(ExpectIdentifier(&stmt->table));
    AIDB_RETURN_NOT_OK(Expect("("));
    do {
      Column col;
      AIDB_RETURN_NOT_OK(ExpectIdentifier(&col.name));
      if (Match("INT")) {
        col.type = ValueType::kInt;
      } else if (Match("DOUBLE")) {
        col.type = ValueType::kDouble;
      } else if (Match("STRING")) {
        col.type = ValueType::kString;
      } else {
        return Status::ParseError("expected column type (INT|DOUBLE|STRING)");
      }
      stmt->schema.AddColumn(std::move(col));
    } while (Match(","));
    AIDB_RETURN_NOT_OK(Expect(")"));
    return std::unique_ptr<Statement>(std::move(stmt));
  }
  if (Match("INDEX")) {
    auto stmt = std::make_unique<CreateIndexStatement>();
    AIDB_RETURN_NOT_OK(ExpectIdentifier(&stmt->index));
    AIDB_RETURN_NOT_OK(Expect("ON"));
    AIDB_RETURN_NOT_OK(ExpectIdentifier(&stmt->table));
    AIDB_RETURN_NOT_OK(Expect("("));
    AIDB_RETURN_NOT_OK(ExpectIdentifier(&stmt->column));
    AIDB_RETURN_NOT_OK(Expect(")"));
    if (Match("USING")) {
      if (Match("HASH")) {
        stmt->is_btree = false;
      } else {
        AIDB_RETURN_NOT_OK(Expect("BTREE"));
      }
    }
    return std::unique_ptr<Statement>(std::move(stmt));
  }
  if (Match("MODEL")) {
    auto stmt = std::make_unique<CreateModelStatement>();
    AIDB_RETURN_NOT_OK(ExpectIdentifier(&stmt->model));
    AIDB_RETURN_NOT_OK(Expect("TYPE"));
    AIDB_RETURN_NOT_OK(ExpectIdentifier(&stmt->model_type));
    AIDB_RETURN_NOT_OK(Expect("PREDICT"));
    AIDB_RETURN_NOT_OK(ExpectIdentifier(&stmt->target));
    AIDB_RETURN_NOT_OK(Expect("ON"));
    AIDB_RETURN_NOT_OK(ExpectIdentifier(&stmt->table));
    if (Match("FEATURES")) {
      AIDB_RETURN_NOT_OK(Expect("("));
      do {
        std::string f;
        AIDB_RETURN_NOT_OK(ExpectIdentifier(&f));
        stmt->features.push_back(std::move(f));
      } while (Match(","));
      AIDB_RETURN_NOT_OK(Expect(")"));
    }
    return std::unique_ptr<Statement>(std::move(stmt));
  }
  return Status::ParseError("expected TABLE, INDEX or MODEL after CREATE");
}

Result<std::unique_ptr<Statement>> Parser::ParseDrop() {
  AIDB_RETURN_NOT_OK(Expect("DROP"));
  if (Match("TABLE")) {
    auto stmt = std::make_unique<DropTableStatement>();
    AIDB_RETURN_NOT_OK(ExpectIdentifier(&stmt->table));
    return std::unique_ptr<Statement>(std::move(stmt));
  }
  AIDB_RETURN_NOT_OK(Expect("INDEX"));
  auto stmt = std::make_unique<DropIndexStatement>();
  AIDB_RETURN_NOT_OK(ExpectIdentifier(&stmt->index));
  return std::unique_ptr<Statement>(std::move(stmt));
}

Result<std::unique_ptr<Statement>> Parser::ParseUpdate() {
  AIDB_RETURN_NOT_OK(Expect("UPDATE"));
  auto stmt = std::make_unique<UpdateStatement>();
  AIDB_RETURN_NOT_OK(ExpectIdentifier(&stmt->table));
  AIDB_RETURN_NOT_OK(Expect("SET"));
  do {
    std::string col;
    AIDB_RETURN_NOT_OK(ExpectIdentifier(&col));
    AIDB_RETURN_NOT_OK(Expect("="));
    std::unique_ptr<Expr> e;
    AIDB_ASSIGN_OR_RETURN(e, ParseExpr());
    stmt->assignments.emplace_back(std::move(col), std::move(e));
  } while (Match(","));
  if (Match("WHERE")) {
    AIDB_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return std::unique_ptr<Statement>(std::move(stmt));
}

Result<std::unique_ptr<Statement>> Parser::ParseDelete() {
  AIDB_RETURN_NOT_OK(Expect("DELETE"));
  AIDB_RETURN_NOT_OK(Expect("FROM"));
  auto stmt = std::make_unique<DeleteStatement>();
  AIDB_RETURN_NOT_OK(ExpectIdentifier(&stmt->table));
  if (Match("WHERE")) {
    AIDB_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return std::unique_ptr<Statement>(std::move(stmt));
}

// ----- Expressions -----

Result<std::unique_ptr<Expr>> Parser::ParseExpr() {
  std::unique_ptr<Expr> lhs;
  AIDB_ASSIGN_OR_RETURN(lhs, ParseAnd());
  while (Match("OR")) {
    std::unique_ptr<Expr> rhs;
    AIDB_ASSIGN_OR_RETURN(rhs, ParseAnd());
    lhs = Expr::MakeBinary(OpType::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<std::unique_ptr<Expr>> Parser::ParseAnd() {
  std::unique_ptr<Expr> lhs;
  AIDB_ASSIGN_OR_RETURN(lhs, ParseNot());
  while (Match("AND")) {
    std::unique_ptr<Expr> rhs;
    AIDB_ASSIGN_OR_RETURN(rhs, ParseNot());
    lhs = Expr::MakeBinary(OpType::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<std::unique_ptr<Expr>> Parser::ParseNot() {
  if (Match("NOT")) {
    std::unique_ptr<Expr> child;
    AIDB_ASSIGN_OR_RETURN(child, ParseNot());
    return Expr::MakeUnary(OpType::kNot, std::move(child));
  }
  return ParseCmp();
}

Result<std::unique_ptr<Expr>> Parser::ParseCmp() {
  std::unique_ptr<Expr> lhs;
  AIDB_ASSIGN_OR_RETURN(lhs, ParseAdd());
  if (Match("BETWEEN")) {
    std::unique_ptr<Expr> lo, hi;
    AIDB_ASSIGN_OR_RETURN(lo, ParseAdd());
    AIDB_RETURN_NOT_OK(Expect("AND"));
    AIDB_ASSIGN_OR_RETURN(hi, ParseAdd());
    auto ge = Expr::MakeBinary(OpType::kGe, lhs->Clone(), std::move(lo));
    auto le = Expr::MakeBinary(OpType::kLe, std::move(lhs), std::move(hi));
    return Expr::MakeBinary(OpType::kAnd, std::move(ge), std::move(le));
  }
  struct {
    const char* sym;
    OpType op;
  } static const kOps[] = {{"=", OpType::kEq},  {"!=", OpType::kNe},
                           {"<=", OpType::kLe}, {">=", OpType::kGe},
                           {"<", OpType::kLt},  {">", OpType::kGt}};
  for (const auto& [sym, op] : kOps) {
    if (Match(sym)) {
      std::unique_ptr<Expr> rhs;
      AIDB_ASSIGN_OR_RETURN(rhs, ParseAdd());
      return Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }
  return lhs;
}

Result<std::unique_ptr<Expr>> Parser::ParseAdd() {
  std::unique_ptr<Expr> lhs;
  AIDB_ASSIGN_OR_RETURN(lhs, ParseMul());
  for (;;) {
    if (Match("+")) {
      std::unique_ptr<Expr> rhs;
      AIDB_ASSIGN_OR_RETURN(rhs, ParseMul());
      lhs = Expr::MakeBinary(OpType::kAdd, std::move(lhs), std::move(rhs));
    } else if (Match("-")) {
      std::unique_ptr<Expr> rhs;
      AIDB_ASSIGN_OR_RETURN(rhs, ParseMul());
      lhs = Expr::MakeBinary(OpType::kSub, std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

Result<std::unique_ptr<Expr>> Parser::ParseMul() {
  std::unique_ptr<Expr> lhs;
  AIDB_ASSIGN_OR_RETURN(lhs, ParseUnary());
  for (;;) {
    if (Match("*")) {
      std::unique_ptr<Expr> rhs;
      AIDB_ASSIGN_OR_RETURN(rhs, ParseUnary());
      lhs = Expr::MakeBinary(OpType::kMul, std::move(lhs), std::move(rhs));
    } else if (Match("/")) {
      std::unique_ptr<Expr> rhs;
      AIDB_ASSIGN_OR_RETURN(rhs, ParseUnary());
      lhs = Expr::MakeBinary(OpType::kDiv, std::move(lhs), std::move(rhs));
    } else {
      return lhs;
    }
  }
}

Result<std::unique_ptr<Expr>> Parser::ParseUnary() {
  if (Match("-")) {
    std::unique_ptr<Expr> child;
    AIDB_ASSIGN_OR_RETURN(child, ParseUnary());
    return Expr::MakeUnary(OpType::kNeg, std::move(child));
  }
  // NOT in operand position ("1 + NOT(x)"): ParseNot only sees NOT at the
  // predicate level, so without this, Expr::ToString output containing a
  // nested NOT would not round-trip through the parser.
  if (Match("NOT")) {
    std::unique_ptr<Expr> child;
    AIDB_ASSIGN_OR_RETURN(child, ParseUnary());
    return Expr::MakeUnary(OpType::kNot, std::move(child));
  }
  return ParsePrimary();
}

Result<std::unique_ptr<Expr>> Parser::ParsePrimary() {
  const Token& t = Peek();
  // Aggregates.
  static const std::pair<const char*, AggFunc> kAggs[] = {
      {"COUNT", AggFunc::kCount}, {"SUM", AggFunc::kSum},  {"AVG", AggFunc::kAvg},
      {"MIN", AggFunc::kMin},     {"MAX", AggFunc::kMax}};
  for (const auto& [name, fn] : kAggs) {
    if (t.IsKeyword(name)) {
      Advance();
      AIDB_RETURN_NOT_OK(Expect("("));
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kAggregate;
      e->agg = fn;
      if (Match("*")) {
        if (fn != AggFunc::kCount)
          return Status::ParseError("only COUNT supports *");
      } else {
        AIDB_ASSIGN_OR_RETURN(e->lhs, ParseExpr());
      }
      AIDB_RETURN_NOT_OK(Expect(")"));
      return std::unique_ptr<Expr>(std::move(e));
    }
  }
  if (t.IsKeyword("PREDICT")) {
    Advance();
    AIDB_RETURN_NOT_OK(Expect("("));
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kPredict;
    AIDB_RETURN_NOT_OK(ExpectIdentifier(&e->model));
    while (Match(",")) {
      std::unique_ptr<Expr> arg;
      AIDB_ASSIGN_OR_RETURN(arg, ParseExpr());
      e->args.push_back(std::move(arg));
    }
    AIDB_RETURN_NOT_OK(Expect(")"));
    return std::unique_ptr<Expr>(std::move(e));
  }
  if (t.IsKeyword("NULL")) {
    Advance();
    return Expr::MakeLiteral(Value::Null());
  }
  if (t.type == TokenType::kInteger || t.type == TokenType::kFloat ||
      t.type == TokenType::kString) {
    Value v;
    AIDB_ASSIGN_OR_RETURN(v, ParseLiteralValue());
    return Expr::MakeLiteral(std::move(v));
  }
  if (t.IsSymbol("(")) {
    Advance();
    std::unique_ptr<Expr> inner;
    AIDB_ASSIGN_OR_RETURN(inner, ParseExpr());
    AIDB_RETURN_NOT_OK(Expect(")"));
    return inner;
  }
  if (t.type == TokenType::kIdentifier) {
    std::string first = Advance().text;
    if (Match(".")) {
      std::string second;
      AIDB_RETURN_NOT_OK(ExpectIdentifier(&second));
      return Expr::MakeColumn(first, second);
    }
    return Expr::MakeColumn("", first);
  }
  if (t.type == TokenType::kParam) {
    int idx = 0;
    try {
      idx = std::stoi(Advance().text);
    } catch (const std::exception&) {
      return Status::ParseError("parameter number out of range");
    }
    if (idx < 1) return Status::ParseError("parameter numbers start at $1");
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kParam;
    e->param = idx;
    if (idx > max_param_) max_param_ = idx;
    return std::unique_ptr<Expr>(std::move(e));
  }
  return Status::ParseError("unexpected token '" + t.text + "' in expression");
}

}  // namespace aidb::sql
