#pragma once

#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "storage/value.h"

namespace aidb::sql {

/// Replaces every $N placeholder in `stmt` with the literal args[N-1],
/// in place. Errors if a placeholder index exceeds args.size(). Extra
/// arguments are permitted (Postgres rejects them; we log-and-allow to
/// keep the fuzzer's EXECUTE paths simple).
Status BindParams(Statement* stmt, const std::vector<Value>& args);

}  // namespace aidb::sql
