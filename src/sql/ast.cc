#include "sql/ast.h"

namespace aidb::sql {

const char* OpName(OpType op) {
  switch (op) {
    case OpType::kEq: return "=";
    case OpType::kNe: return "!=";
    case OpType::kLt: return "<";
    case OpType::kLe: return "<=";
    case OpType::kGt: return ">";
    case OpType::kGe: return ">=";
    case OpType::kAdd: return "+";
    case OpType::kSub: return "-";
    case OpType::kMul: return "*";
    case OpType::kDiv: return "/";
    case OpType::kAnd: return "AND";
    case OpType::kOr: return "OR";
    case OpType::kNot: return "NOT";
    case OpType::kNeg: return "-";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::MakeColumn(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<Expr> Expr::MakeBinary(OpType op, std::unique_ptr<Expr> l,
                                       std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

std::unique_ptr<Expr> Expr::MakeUnary(OpType op, std::unique_ptr<Expr> child) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->op = op;
  e->lhs = std::move(child);
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->table = table;
  e->column = column;
  e->op = op;
  e->agg = agg;
  e->model = model;
  if (lhs) e->lhs = lhs->Clone();
  if (rhs) e->rhs = rhs->Clone();
  for (const auto& a : args) e->args.push_back(a->Clone());
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral: return literal.ToString();
    case Kind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + OpName(op) + " " + rhs->ToString() + ")";
    case Kind::kUnary:
      // Outer parens make the rendering re-parse with the same shape even in
      // operand position: NOT binds looser than comparison in the grammar, so
      // a bare "NOT(a) < b" would re-parse as NOT(a < b).
      return "(" + std::string(OpName(op)) + "(" + lhs->ToString() + "))";
    case Kind::kAggregate: {
      const char* name = agg == AggFunc::kCount ? "COUNT"
                         : agg == AggFunc::kSum ? "SUM"
                         : agg == AggFunc::kAvg ? "AVG"
                         : agg == AggFunc::kMin ? "MIN"
                                                : "MAX";
      return std::string(name) + "(" + (lhs ? lhs->ToString() : "*") + ")";
    }
    case Kind::kPredict: {
      std::string out = "PREDICT(" + model;
      for (const auto& a : args) out += ", " + a->ToString();
      return out + ")";
    }
    case Kind::kStar: return "*";
  }
  return "?";
}

}  // namespace aidb::sql
