#include "sql/ast.h"

namespace aidb::sql {

const char* OpName(OpType op) {
  switch (op) {
    case OpType::kEq: return "=";
    case OpType::kNe: return "!=";
    case OpType::kLt: return "<";
    case OpType::kLe: return "<=";
    case OpType::kGt: return ">";
    case OpType::kGe: return ">=";
    case OpType::kAdd: return "+";
    case OpType::kSub: return "-";
    case OpType::kMul: return "*";
    case OpType::kDiv: return "/";
    case OpType::kAnd: return "AND";
    case OpType::kOr: return "OR";
    case OpType::kNot: return "NOT";
    case OpType::kNeg: return "-";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::MakeColumn(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<Expr> Expr::MakeBinary(OpType op, std::unique_ptr<Expr> l,
                                       std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

std::unique_ptr<Expr> Expr::MakeUnary(OpType op, std::unique_ptr<Expr> child) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->op = op;
  e->lhs = std::move(child);
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->table = table;
  e->column = column;
  e->op = op;
  e->agg = agg;
  e->model = model;
  e->param = param;
  if (lhs) e->lhs = lhs->Clone();
  if (rhs) e->rhs = rhs->Clone();
  for (const auto& a : args) e->args.push_back(a->Clone());
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral: return literal.ToString();
    case Kind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + OpName(op) + " " + rhs->ToString() + ")";
    case Kind::kUnary:
      // Outer parens make the rendering re-parse with the same shape even in
      // operand position: NOT binds looser than comparison in the grammar, so
      // a bare "NOT(a) < b" would re-parse as NOT(a < b).
      return "(" + std::string(OpName(op)) + "(" + lhs->ToString() + "))";
    case Kind::kAggregate: {
      const char* name = agg == AggFunc::kCount ? "COUNT"
                         : agg == AggFunc::kSum ? "SUM"
                         : agg == AggFunc::kAvg ? "AVG"
                         : agg == AggFunc::kMin ? "MIN"
                                                : "MAX";
      return std::string(name) + "(" + (lhs ? lhs->ToString() : "*") + ")";
    }
    case Kind::kPredict: {
      std::string out = "PREDICT(" + model;
      for (const auto& a : args) out += ", " + a->ToString();
      return out + ")";
    }
    case Kind::kStar: return "*";
    case Kind::kParam: return "$" + std::to_string(param);
  }
  return "?";
}

namespace {

std::unique_ptr<Expr> CloneOrNull(const std::unique_ptr<Expr>& e) {
  return e ? e->Clone() : nullptr;
}

}  // namespace

std::unique_ptr<Statement> SelectStatement::Clone() const {
  auto s = std::make_unique<SelectStatement>();
  for (const auto& item : items) {
    SelectItem it;
    it.expr = CloneOrNull(item.expr);
    it.alias = item.alias;
    it.is_star = item.is_star;
    s->items.push_back(std::move(it));
  }
  s->distinct = distinct;
  s->from = from;
  for (const auto& j : joins) {
    JoinClause jc;
    jc.table = j.table;
    jc.condition = CloneOrNull(j.condition);
    s->joins.push_back(std::move(jc));
  }
  s->where = CloneOrNull(where);
  for (const auto& g : group_by) s->group_by.push_back(g->Clone());
  s->having = CloneOrNull(having);
  s->order_by = order_by;
  s->limit = limit;
  s->explain = explain;
  s->explain_analyze = explain_analyze;
  return s;
}

std::unique_ptr<Statement> InsertStatement::Clone() const {
  auto s = std::make_unique<InsertStatement>();
  s->table = table;
  s->rows = rows;
  return s;
}

std::unique_ptr<Statement> CreateTableStatement::Clone() const {
  auto s = std::make_unique<CreateTableStatement>();
  s->table = table;
  s->schema = schema;
  return s;
}

std::unique_ptr<Statement> DropTableStatement::Clone() const {
  auto s = std::make_unique<DropTableStatement>();
  s->table = table;
  return s;
}

std::unique_ptr<Statement> CreateIndexStatement::Clone() const {
  auto s = std::make_unique<CreateIndexStatement>();
  s->index = index;
  s->table = table;
  s->column = column;
  s->is_btree = is_btree;
  return s;
}

std::unique_ptr<Statement> DropIndexStatement::Clone() const {
  auto s = std::make_unique<DropIndexStatement>();
  s->index = index;
  return s;
}

std::unique_ptr<Statement> UpdateStatement::Clone() const {
  auto s = std::make_unique<UpdateStatement>();
  s->table = table;
  for (const auto& [col, expr] : assignments) {
    s->assignments.emplace_back(col, CloneOrNull(expr));
  }
  s->where = CloneOrNull(where);
  return s;
}

std::unique_ptr<Statement> DeleteStatement::Clone() const {
  auto s = std::make_unique<DeleteStatement>();
  s->table = table;
  s->where = CloneOrNull(where);
  return s;
}

std::unique_ptr<Statement> AnalyzeStatement::Clone() const {
  auto s = std::make_unique<AnalyzeStatement>();
  s->table = table;
  return s;
}

std::unique_ptr<Statement> CreateModelStatement::Clone() const {
  auto s = std::make_unique<CreateModelStatement>();
  s->model = model;
  s->model_type = model_type;
  s->target = target;
  s->table = table;
  s->features = features;
  return s;
}

std::unique_ptr<Statement> ShowModelsStatement::Clone() const {
  return std::make_unique<ShowModelsStatement>();
}

std::unique_ptr<Statement> BeginStatement::Clone() const {
  return std::make_unique<BeginStatement>();
}

std::unique_ptr<Statement> CommitStatement::Clone() const {
  return std::make_unique<CommitStatement>();
}

std::unique_ptr<Statement> RollbackStatement::Clone() const {
  return std::make_unique<RollbackStatement>();
}

std::unique_ptr<Statement> PrepareStatement::Clone() const {
  auto s = std::make_unique<PrepareStatement>();
  s->name = name;
  s->body_text = body_text;
  s->body = body ? body->Clone() : nullptr;
  s->num_params = num_params;
  return s;
}

std::unique_ptr<Statement> ExecuteStatement::Clone() const {
  auto s = std::make_unique<ExecuteStatement>();
  s->name = name;
  s->args = args;
  return s;
}

std::unique_ptr<Statement> DeallocateStatement::Clone() const {
  auto s = std::make_unique<DeallocateStatement>();
  s->name = name;
  return s;
}

}  // namespace aidb::sql
