#include "exec/operator.h"

#include <algorithm>
#include <unordered_set>

#include "exec/agg_state.h"

namespace aidb::exec {

std::string Operator::Describe(int indent, bool with_rows) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Name();
  if (with_rows) out += " [rows=" + std::to_string(rows_produced_) + "]";
  out += "\n";
  for (const auto& c : children_) out += c->Describe(indent + 1, with_rows);
  return out;
}

size_t Operator::TotalWork() const {
  size_t w = rows_produced_;
  for (const auto& c : children_) w += c->TotalWork();
  return w;
}

Status Operator::FirstError() const {
  if (!error_.ok()) return error_;
  for (const auto& c : children_) {
    Status s = c->FirstError();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

// ----- SeqScan -----

SeqScanOp::SeqScanOp(const Table* table, std::string effective_name)
    : table_(table), label_(std::move(effective_name)) {
  for (const auto& col : table->schema().columns()) {
    output_.push_back({label_, col.name, col.type});
  }
}

bool SeqScanOp::NextImpl(Tuple* out) {
  while (cursor_ < table_->NumSlots()) {
    RowId id = cursor_++;
    // Poll the statement's cancel flag at a coarse stride: SeqScan feeds
    // every serial pipeline, so this bounds cancellation latency without a
    // per-row atomic load.
    if ((id & 511) == 0 && IsCancelled()) {
      return Fail(Status::Cancelled("query cancelled during scan"));
    }
    const Tuple* row = table_->VisibleAt(id, snap_);
    if (row == nullptr) continue;
    *out = *row;
    ++rows_produced_;
    return true;
  }
  return false;
}

// ----- IndexScan -----

IndexScanOp::IndexScanOp(const Table* table, const BTree* index,
                         std::shared_mutex* latch, std::string effective_name,
                         int key_col, int64_t lo, int64_t hi)
    : table_(table),
      index_(index),
      latch_(latch),
      label_(std::move(effective_name)),
      key_col_(key_col),
      lo_(lo),
      hi_(hi) {
  for (const auto& col : table->schema().columns()) {
    output_.push_back({label_, col.name, col.type});
  }
}

void IndexScanOp::OpenImpl() {
  {
    std::shared_lock<std::shared_mutex> latch;
    if (latch_ != nullptr) latch = std::shared_lock<std::shared_mutex>(*latch_);
    matches_ = index_->RangeScan(lo_, hi_);
  }
  cursor_ = 0;
  // Entries are never erased, and an update that moves a row back to a key
  // it once held re-adds the pair, so one row id can surface twice in one
  // probe (stale key + current key, or a duplicate pair). Emitting a row
  // once per id is the operator's contract; dedupe preserving probe order.
  std::unordered_set<RowId> seen;
  size_t w = 0;
  for (RowId id : matches_) {
    if (seen.insert(id).second) matches_[w++] = id;
  }
  matches_.resize(w);
}

bool IndexScanOp::NextImpl(Tuple* out) {
  while (cursor_ < matches_.size()) {
    RowId id = matches_[cursor_++];
    const Tuple* row = table_->VisibleAt(id, snap_);
    if (row == nullptr) continue;  // lazy-deleted / not visible to snapshot
    // The entry may index a different version's key than the one this
    // snapshot sees; the range predicate was consumed by the index probe, so
    // it must hold on the visible tuple.
    const Value& key = (*row)[static_cast<size_t>(key_col_)];
    if (key.is_null()) continue;
    int64_t k = key.type() == ValueType::kInt
                    ? key.AsInt()
                    : static_cast<int64_t>(key.AsDouble());
    if (k < lo_ || k > hi_) continue;
    *out = *row;
    ++rows_produced_;
    return true;
  }
  return false;
}

std::string IndexScanOp::Name() const {
  return "IndexScan(" + label_ + " [" + std::to_string(lo_) + "," +
         std::to_string(hi_) + "])";
}

// ----- Filter -----

FilterOp::FilterOp(std::unique_ptr<Operator> child, BoundExpr predicate,
                   std::string predicate_text)
    : predicate_(std::move(predicate)), text_(std::move(predicate_text)) {
  output_ = child->output();
  children_.push_back(std::move(child));
}

bool FilterOp::NextImpl(Tuple* out) {
  while (children_[0]->Next(out)) {
    Result<bool> keep = predicate_.EvalBool(*out);
    if (!keep.ok()) return Fail(keep.status());
    if (keep.ValueOrDie()) {
      ++rows_produced_;
      return true;
    }
  }
  return false;
}

// ----- Project -----

ProjectOp::ProjectOp(std::unique_ptr<Operator> child, std::vector<BoundExpr> exprs,
                     std::vector<OutputCol> out_schema)
    : exprs_(std::move(exprs)) {
  output_ = std::move(out_schema);
  children_.push_back(std::move(child));
}

bool ProjectOp::NextImpl(Tuple* out) {
  Tuple in;
  if (!children_[0]->Next(&in)) return false;
  out->clear();
  out->reserve(exprs_.size());
  for (const auto& e : exprs_) {
    Result<Value> v = e.Eval(in);
    if (!v.ok()) return Fail(v.status());
    out->push_back(std::move(v).ValueOrDie());
  }
  ++rows_produced_;
  return true;
}

// ----- NestedLoopJoin -----

NestedLoopJoinOp::NestedLoopJoinOp(std::unique_ptr<Operator> left,
                                   std::unique_ptr<Operator> right,
                                   std::optional<BoundExpr> condition)
    : condition_(std::move(condition)) {
  output_ = left->output();
  for (const auto& c : right->output()) output_.push_back(c);
  children_.push_back(std::move(left));
  children_.push_back(std::move(right));
}

void NestedLoopJoinOp::OpenImpl() {
  children_[0]->Open();
  children_[1]->Open();
  inner_rows_.clear();
  Tuple row;
  while (children_[1]->Next(&row)) inner_rows_.push_back(row);
  outer_valid_ = false;
  inner_cursor_ = 0;
}

bool NestedLoopJoinOp::NextImpl(Tuple* out) {
  for (;;) {
    if (!outer_valid_) {
      if (!children_[0]->Next(&outer_row_)) return false;
      outer_valid_ = true;
      inner_cursor_ = 0;
    }
    while (inner_cursor_ < inner_rows_.size()) {
      const Tuple& inner = inner_rows_[inner_cursor_++];
      *out = outer_row_;
      out->insert(out->end(), inner.begin(), inner.end());
      bool keep = true;
      if (condition_) {
        Result<bool> k = condition_->EvalBool(*out);
        if (!k.ok()) return Fail(k.status());
        keep = k.ValueOrDie();
      }
      if (keep) {
        ++rows_produced_;
        return true;
      }
    }
    outer_valid_ = false;
  }
}

void NestedLoopJoinOp::CloseImpl() {
  children_[0]->Close();
  children_[1]->Close();
  inner_rows_.clear();
}

// ----- HashJoin -----

uint64_t JoinKeyHash(const Value& v) {
  // Numeric values that compare equal must hash equal across INT/DOUBLE.
  if (v.type() == ValueType::kInt || v.type() == ValueType::kDouble) {
    return std::hash<double>{}(v.AsDouble());
  }
  return v.Hash();
}

HashJoinOp::HashJoinOp(std::unique_ptr<Operator> left,
                       std::unique_ptr<Operator> right, size_t left_key,
                       size_t right_key)
    : left_key_(left_key), right_key_(right_key) {
  output_ = left->output();
  for (const auto& c : right->output()) output_.push_back(c);
  children_.push_back(std::move(left));
  children_.push_back(std::move(right));
}

void HashJoinOp::OpenImpl() {
  children_[0]->Open();
  children_[1]->Open();
  build_.clear();
  Tuple row;
  while (children_[1]->Next(&row)) {
    const Value& key = row[right_key_];
    if (key.is_null()) continue;
    build_[JoinKeyHash(key)].push_back(row);
  }
  matches_ = nullptr;
  match_cursor_ = 0;
}

bool HashJoinOp::NextImpl(Tuple* out) {
  for (;;) {
    if (matches_ != nullptr) {
      while (match_cursor_ < matches_->size()) {
        const Tuple& inner = (*matches_)[match_cursor_++];
        // Re-check equality (hash collisions).
        if (inner[right_key_].Compare(probe_row_[left_key_]) != 0) continue;
        *out = probe_row_;
        out->insert(out->end(), inner.begin(), inner.end());
        ++rows_produced_;
        return true;
      }
      matches_ = nullptr;
    }
    if (!children_[0]->Next(&probe_row_)) return false;
    const Value& key = probe_row_[left_key_];
    if (key.is_null()) continue;
    auto it = build_.find(JoinKeyHash(key));
    if (it == build_.end()) continue;
    matches_ = &it->second;
    match_cursor_ = 0;
  }
}

void HashJoinOp::CloseImpl() {
  children_[0]->Close();
  children_[1]->Close();
  build_.clear();
}

// ----- HashAggregate -----

HashAggregateOp::HashAggregateOp(std::unique_ptr<Operator> child,
                                 std::vector<BoundExpr> keys,
                                 std::vector<OutputCol> key_cols,
                                 std::vector<AggSpec> aggs)
    : keys_(std::move(keys)), aggs_(std::move(aggs)) {
  output_ = std::move(key_cols);
  for (const auto& a : aggs_) {
    output_.push_back({"", a.out_name, ValueType::kDouble});
  }
  children_.push_back(std::move(child));
}

void HashAggregateOp::OpenImpl() {
  children_[0]->Open();
  results_.clear();
  cursor_ = 0;

  GroupMap groups;
  Tuple row;
  while (children_[0]->Next(&row)) {
    Status s = groups.Accumulate(keys_, aggs_, row);
    if (!s.ok()) {
      Fail(std::move(s));
      return;  // results_ stays empty; the executor sees FirstError()
    }
  }

  // No-group aggregate over empty input still yields one row of zero counts.
  if (keys_.empty() && groups.num_groups() == 0) {
    Tuple out;
    for (size_t i = 0; i < aggs_.size(); ++i) {
      if (aggs_[i].func == sql::AggFunc::kCount) {
        out.push_back(Value(static_cast<int64_t>(0)));
      } else {
        out.push_back(Value::Null());
      }
    }
    results_.push_back(std::move(out));
    return;
  }

  groups.ForEach(
      [this](const GroupState& g) { results_.push_back(g.Finalize(aggs_)); });
}

bool HashAggregateOp::NextImpl(Tuple* out) {
  if (cursor_ >= results_.size()) return false;
  *out = results_[cursor_++];
  ++rows_produced_;
  return true;
}

// ----- Sort -----

SortOp::SortOp(std::unique_ptr<Operator> child, std::vector<SortKey> keys)
    : keys_(std::move(keys)) {
  output_ = child->output();
  children_.push_back(std::move(child));
}

void SortOp::OpenImpl() {
  children_[0]->Open();
  rows_.clear();
  cursor_ = 0;
  Tuple row;
  while (children_[0]->Next(&row)) rows_.push_back(std::move(row));
  std::stable_sort(rows_.begin(), rows_.end(), [this](const Tuple& a, const Tuple& b) {
    for (const SortKey& k : keys_) {
      int c = a[k.column].Compare(b[k.column]);
      if (c != 0) return k.desc ? c > 0 : c < 0;
    }
    return false;
  });
}

bool SortOp::NextImpl(Tuple* out) {
  if (cursor_ >= rows_.size()) return false;
  *out = rows_[cursor_++];
  ++rows_produced_;
  return true;
}

// ----- Limit -----

LimitOp::LimitOp(std::unique_ptr<Operator> child, size_t limit) : limit_(limit) {
  output_ = child->output();
  children_.push_back(std::move(child));
}

bool LimitOp::NextImpl(Tuple* out) {
  if (seen_ >= limit_) return false;
  if (!children_[0]->Next(out)) return false;
  ++seen_;
  ++rows_produced_;
  return true;
}

// ----- Distinct -----

DistinctOp::DistinctOp(std::unique_ptr<Operator> child) {
  output_ = child->output();
  children_.push_back(std::move(child));
}

bool DistinctOp::NextImpl(Tuple* out) {
  while (children_[0]->Next(out)) {
    // Serialized-value key: exact (ToString is injective enough because it
    // quotes strings and tags NULLs).
    std::string key;
    for (const Value& v : *out) {
      key += v.ToString();
      key += '\x1f';
    }
    if (seen_.insert(std::move(key)).second) {
      ++rows_produced_;
      return true;
    }
  }
  return false;
}

// ----- Values -----

ValuesOp::ValuesOp(std::vector<Tuple> rows, std::vector<OutputCol> schema)
    : rows_(std::move(rows)) {
  output_ = std::move(schema);
}

bool ValuesOp::NextImpl(Tuple* out) {
  if (cursor_ >= rows_.size()) return false;
  *out = rows_[cursor_++];
  ++rows_produced_;
  return true;
}

}  // namespace aidb::exec
