#pragma once

#include <memory>
#include <string>
#include <vector>

#include <atomic>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "db4ai/model_registry.h"
#include "exec/planner.h"
#include "exec/trace.h"
#include "monitor/metrics.h"
#include "monitor/query_log.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "txn/types.h"

namespace aidb {

/// Configuration of the durability subsystem (Database::Open).
struct DurabilityOptions {
  /// Group-commit interval in WAL records: 1 = synchronous commit, larger
  /// values batch records per fsync at the cost of a bounded durability lag.
  /// Advisor knob `wal_flush_interval`.
  size_t wal_flush_interval = 64;
  /// Automatic checkpoint after this many WAL records since the last one
  /// (0 = manual Checkpoint() only). Advisor knob `checkpoint_interval`.
  size_t checkpoint_every_n_records = 0;
  /// Skip physical fsyncs (stats still count them) — for benches and the
  /// knob environment, where the response comes from deterministic counters.
  bool sync = true;
  /// Crash-injection hook for the recovery test harness; not owned.
  storage::FaultInjector* fault = nullptr;
};

/// Cumulative durability counters for one Database (monitor/ samples these).
struct DurabilityStats {
  storage::WalStats wal;
  size_t unflushed_records = 0;  ///< current durability lag (group buffer)
  uint64_t checkpoints_written = 0;
  storage::RecoveryStats recovery;  ///< from the Open() that built this db
};

/// Result of executing one statement.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Tuple> rows;
  /// DDL/DML acknowledgment. For EXPLAIN / EXPLAIN ANALYZE this additionally
  /// carries the full plan/trace text (back-compat accessor — the same text
  /// is returned as proper result rows, one line per row, column "plan").
  std::string message;
  size_t affected_rows = 0;  ///< INSERT/UPDATE/DELETE
  double elapsed_ms = 0.0;   ///< wall clock; 0 in deterministic-timing mode
  size_t operator_work = 0;  ///< total rows produced across the plan (work proxy)

  std::string ToString(size_t max_rows = 20) const;
};

/// \brief The embeddable AIDB engine facade: parse -> plan -> execute.
///
/// Owns the catalog and the DB4AI model registry. Learned optimizer
/// components are swapped in through mutable_planner_options().
class Database {
 public:
  Database();

  /// \brief Opens a durable database rooted at directory `dir` (created if
  /// missing): loads the latest valid snapshot, replays committed WAL
  /// transactions past its checkpoint LSN, truncates any torn tail, and
  /// arms a write-ahead log for everything executed afterwards.
  ///
  /// A default-constructed Database stays the process-lifetime in-memory
  /// engine the rest of the stack uses; durability is strictly opt-in.
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                const DurabilityOptions& opts = {});

  /// Executes one SQL statement.
  Result<QueryResult> Execute(const std::string& sql);

  /// Plans a SELECT without running it (used by advisors for what-if costing).
  Result<exec::PhysicalPlan> PlanQuery(const sql::SelectStatement& stmt) {
    return planner_.Plan(stmt, planner_options_);
  }

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  db4ai::ModelRegistry& models() { return models_; }
  const db4ai::ModelRegistry& models() const { return models_; }
  exec::Planner& planner() { return planner_; }
  exec::PlannerOptions& mutable_planner_options() { return planner_options_; }

  /// Session degree-of-parallelism knob (advisor knob `exec_dop`): dop > 1
  /// sizes the executor pool and makes the planner emit morsel-parallel
  /// operator variants; dop <= 1 restores fully serial execution.
  void SetDop(size_t dop);
  size_t dop() const { return planner_options_.dop; }

  /// Cumulative rows produced by all executed plans (cheap work counter the
  /// monitoring stack samples).
  uint64_t total_work() const {
    return total_work_.load(std::memory_order_relaxed);
  }

  // --- Observability surface ------------------------------------------------

  /// Engine-wide metric registry (counters/gauges/latency histograms); also
  /// served by the `aidb_metrics` system view.
  monitor::MetricsRegistry& metrics() { return metrics_; }
  const monitor::MetricsRegistry& metrics() const { return metrics_; }

  /// Last-N executed statements; also served by `aidb_query_log`.
  const monitor::QueryLog& query_log() const { return query_log_; }
  monitor::QueryLog& mutable_query_log() { return query_log_; }

  /// Per-operator tracing for every statement (EXPLAIN ANALYZE always traces
  /// its own statement regardless of this switch). Off by default: with
  /// tracing off the only executor-side cost is one predicted branch per
  /// operator call.
  void EnableTracing(bool on) { tracing_ = on; }
  bool tracing_enabled() const { return tracing_; }

  /// Zeroes every wall-clock observable (QueryResult::elapsed_ms, trace
  /// time_us, query-log latency/timestamp) so traced runs digest
  /// byte-identically across executions — the differential oracle runs with
  /// this on. Deterministic work counters (rows produced) are unaffected.
  void SetDeterministicTiming(bool on) { deterministic_timing_ = on; }
  bool deterministic_timing() const { return deterministic_timing_; }

  /// Trace of the most recent traced SELECT (nullptr before any); also
  /// served by `aidb_trace`.
  const exec::TraceNode* last_trace() const {
    return has_trace_ ? &last_trace_ : nullptr;
  }
  /// JSON span export of last_trace() ("" before any traced statement).
  std::string LastTraceJson() const;

  /// Executor pool size (0 before any dop > 1). The pool is grow-only: it
  /// never shrinks when dop is lowered (regression-pinned in tests).
  size_t exec_pool_threads() const {
    return exec_pool_ ? exec_pool_->num_threads() : 0;
  }

  // --- Durability surface (no-ops / errors on a non-durable database) -------

  bool durable() const { return wal_ != nullptr; }
  /// True once a fault injection "killed" a durable write (WAL flush or
  /// snapshot step): the database refuses all further statements and must be
  /// reopened from disk.
  bool crashed() const {
    return (wal_ && wal_->crashed()) ||
           (durability_opts_.fault && durability_opts_.fault->crashed());
  }

  /// Drains the group-commit buffer to disk now.
  Status FlushWal();
  /// Writes a snapshot of the full state, then truncates the WAL. The
  /// `checkpoint_every_n_records` knob triggers this automatically.
  Status Checkpoint();

  /// Live re-tuning hooks for the advisor knobs.
  void SetWalFlushInterval(size_t records);
  void SetCheckpointEveryN(size_t records) {
    durability_opts_.checkpoint_every_n_records = records;
  }
  size_t wal_flush_interval() const {
    return wal_ ? wal_->flush_interval() : durability_opts_.wal_flush_interval;
  }

  DurabilityStats durability_stats() const;
  const storage::RecoveryStats& last_recovery() const { return recovery_stats_; }

 private:
  /// Plan/trace facts about the last executed statement, harvested for the
  /// query log (reset at the top of Execute; Execute is single-statement).
  struct StmtPlanInfo {
    uint64_t plan_digest = 0;
    uint32_t num_operators = 0;
    uint32_t num_joins = 0;
  };

  Result<QueryResult> ExecuteSelect(const sql::SelectStatement& stmt);
  /// The statement dispatch switch; Execute wraps it with telemetry so
  /// failures are metered and logged too.
  Status ExecuteStatement(const sql::Statement& stmt, QueryResult* result);
  /// Rebuilds any `aidb_*` system view the statement scans, so the view's
  /// backing rows are stable for the whole plan/execute cycle.
  Status RefreshReferencedSystemViews(const sql::Statement& stmt);
  void RegisterSystemViews();
  /// Appends a statement's WAL records + COMMIT, honoring group commit and
  /// the auto-checkpoint knob. No-op when not durable.
  Status LogTxn(std::vector<std::pair<storage::WalRecordType, std::string>> records);

  Catalog catalog_;
  db4ai::ModelRegistry models_;
  exec::Planner planner_;
  exec::PlannerOptions planner_options_;
  std::unique_ptr<ThreadPool> exec_pool_;
  std::atomic<uint64_t> total_work_{0};

  // Observability state. metrics_ precedes wal_ in declaration order so the
  // WAL's cached metric pointers stay valid through destruction.
  monitor::MetricsRegistry metrics_;
  monitor::QueryLog query_log_;
  bool tracing_ = false;
  bool deterministic_timing_ = false;
  exec::TraceNode last_trace_;
  bool has_trace_ = false;
  StmtPlanInfo last_plan_info_;
  Timer uptime_;  ///< arrival timestamps for the query log

  // Durability state (null/empty for the in-memory engine).
  std::string dir_;
  DurabilityOptions durability_opts_;
  std::unique_ptr<storage::WalWriter> wal_;
  txn::TxnId next_txn_id_ = 1;
  uint64_t records_since_checkpoint_ = 0;
  uint64_t checkpoints_written_ = 0;
  storage::RecoveryStats recovery_stats_;
};

}  // namespace aidb
