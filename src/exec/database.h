#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "db4ai/model_registry.h"
#include "exec/planner.h"

namespace aidb {

/// Result of executing one statement.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Tuple> rows;
  std::string message;       ///< DDL/DML acknowledgment or EXPLAIN text
  size_t affected_rows = 0;  ///< INSERT/UPDATE/DELETE
  double elapsed_ms = 0.0;
  size_t operator_work = 0;  ///< total rows produced across the plan (work proxy)

  std::string ToString(size_t max_rows = 20) const;
};

/// \brief The embeddable AIDB engine facade: parse -> plan -> execute.
///
/// Owns the catalog and the DB4AI model registry. Learned optimizer
/// components are swapped in through mutable_planner_options().
class Database {
 public:
  Database() : planner_(&catalog_, &models_) {}

  /// Executes one SQL statement.
  Result<QueryResult> Execute(const std::string& sql);

  /// Plans a SELECT without running it (used by advisors for what-if costing).
  Result<exec::PhysicalPlan> PlanQuery(const sql::SelectStatement& stmt) {
    return planner_.Plan(stmt, planner_options_);
  }

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  db4ai::ModelRegistry& models() { return models_; }
  exec::Planner& planner() { return planner_; }
  exec::PlannerOptions& mutable_planner_options() { return planner_options_; }

  /// Session degree-of-parallelism knob (advisor knob `exec_dop`): dop > 1
  /// sizes the executor pool and makes the planner emit morsel-parallel
  /// operator variants; dop <= 1 restores fully serial execution.
  void SetDop(size_t dop);
  size_t dop() const { return planner_options_.dop; }

  /// Cumulative rows produced by all executed plans (cheap work counter the
  /// monitoring stack samples).
  uint64_t total_work() const { return total_work_; }

 private:
  Result<QueryResult> ExecuteSelect(const sql::SelectStatement& stmt);

  Catalog catalog_;
  db4ai::ModelRegistry models_;
  exec::Planner planner_;
  exec::PlannerOptions planner_options_;
  std::unique_ptr<ThreadPool> exec_pool_;
  uint64_t total_work_ = 0;
};

}  // namespace aidb
