#pragma once

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include <atomic>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "db4ai/model_registry.h"
#include "exec/planner.h"
#include "exec/trace.h"
#include "exec/vec/col_cache.h"
#include "monitor/history.h"
#include "monitor/incident.h"
#include "monitor/metrics.h"
#include "monitor/query_log.h"
#include "monitor/span.h"
#include "server/plan_cache.h"
#include "server/prepared.h"
#include "storage/lsm.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "txn/transaction_manager.h"
#include "txn/types.h"

namespace aidb {

namespace storage {
class LsmEngine;
}

/// Configuration of the durability subsystem (Database::Open).
struct DurabilityOptions {
  /// Group-commit interval in WAL records: 1 = synchronous commit, larger
  /// values batch records per fsync at the cost of a bounded durability lag.
  /// Advisor knob `wal_flush_interval`.
  size_t wal_flush_interval = 64;
  /// Automatic checkpoint after this many WAL records since the last one
  /// (0 = manual Checkpoint() only). Advisor knob `checkpoint_interval`.
  size_t checkpoint_every_n_records = 0;
  /// Skip physical fsyncs (stats still count them) — for benches and the
  /// knob environment, where the response comes from deterministic counters.
  bool sync = true;
  /// Crash-injection hook for the recovery test harness; not owned.
  storage::FaultInjector* fault = nullptr;
  /// Attach the LSM storage engine beneath every user table: frozen slots
  /// are flushed to block-based SSTs in `<dir>/lsm/` and read back through
  /// the cold-tier hooks. Off (the default) keeps the pure in-memory row
  /// store — the oracle the differential harness compares against.
  bool lsm = false;
  /// LSM design knobs (memtable capacity, size ratio, bloom bits,
  /// leveling/tiering) — the axes the learned design tuner searches.
  LsmOptions lsm_design;
};

/// Cumulative durability counters for one Database (monitor/ samples these).
struct DurabilityStats {
  storage::WalStats wal;
  size_t unflushed_records = 0;  ///< current durability lag (group buffer)
  uint64_t checkpoints_written = 0;
  storage::RecoveryStats recovery;  ///< from the Open() that built this db
};

/// Result of executing one statement.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Tuple> rows;
  /// DDL/DML acknowledgment. For EXPLAIN / EXPLAIN ANALYZE this additionally
  /// carries the full plan/trace text (back-compat accessor — the same text
  /// is returned as proper result rows, one line per row, column "plan").
  std::string message;
  size_t affected_rows = 0;  ///< INSERT/UPDATE/DELETE
  double elapsed_ms = 0.0;   ///< wall clock; 0 in deterministic-timing mode
  size_t operator_work = 0;  ///< total rows produced across the plan (work proxy)
  /// The physical plan came from the plan cache (parse+plan were skipped).
  /// Deliberately NOT part of the differential digest: hit and miss must
  /// produce byte-identical results.
  bool plan_cache_hit = false;
  /// Commit timestamp of the transaction this statement committed (explicit
  /// COMMIT or autocommit DML); 0 when nothing committed. The differential
  /// oracle replays transactions in this order. Not part of the digest.
  uint64_t commit_ts = 0;

  std::string ToString(size_t max_rows = 20) const;
};

/// \brief Per-statement execution settings, snapshotted at admission.
///
/// Sessions stopped mutating engine-global state in PR 5: a statement runs
/// with the planner knobs its session had when the statement was admitted,
/// whatever any other session changes mid-flight. A default-constructed
/// Database call path (plain Execute(sql)) snapshots the database-global
/// options instead.
struct ExecSettings {
  exec::PlannerOptions planner;
  /// Statement cancellation flag (not owned; may be null). Checked at
  /// morsel/row-batch boundaries; a set flag surfaces Status::Cancelled.
  const std::atomic<bool>* cancel = nullptr;
  /// Owning session for query-log attribution (0 = no session).
  uint64_t session_id = 0;
  /// PREPARE/EXECUTE/DEALLOCATE name scope. Null falls back to the
  /// database-global store, so bare Databases (tests, fuzzer) support
  /// prepared statements without a server.
  server::PreparedStore* prepared = nullptr;
  /// The session's open explicit-transaction id (0 = autocommit), written by
  /// BEGIN/COMMIT/ROLLBACK. Null falls back to a database-global slot so bare
  /// Databases support explicit transactions without a server.
  std::atomic<uint64_t>* txn_slot = nullptr;
  /// Per-statement transaction context, filled by Execute() before dispatch
  /// (callers leave these defaulted): the transaction the statement runs in
  /// and the snapshot every read/write uses.
  txn::TxnId txn = txn::kInvalidTxnId;
  txn::Snapshot snapshot;
  /// End-to-end trace identity, minted by the service at admission (0 when
  /// the statement arrived outside a request, e.g. bare Execute with spans
  /// off). `parent_span` is the admission-time root span every engine-side
  /// span hangs under.
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};

/// \brief The embeddable AIDB engine facade: parse -> plan -> execute.
///
/// Owns the catalog and the DB4AI model registry. Learned optimizer
/// components are swapped in through mutable_planner_options().
class Database {
 public:
  Database();
  /// Stops the background KPI sampler before any member it probes dies.
  ~Database();

  /// \brief Opens a durable database rooted at directory `dir` (created if
  /// missing): loads the latest valid snapshot, replays committed WAL
  /// transactions past its checkpoint LSN, truncates any torn tail, and
  /// arms a write-ahead log for everything executed afterwards.
  ///
  /// A default-constructed Database stays the process-lifetime in-memory
  /// engine the rest of the stack uses; durability is strictly opt-in.
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                const DurabilityOptions& opts = {});

  /// Executes one SQL statement with a snapshot of the database-global
  /// planner options (the pre-server behavior).
  Result<QueryResult> Execute(const std::string& sql);

  /// Executes one SQL statement under explicit per-statement settings. This
  /// is the server's entry point: the settings carry the session's knob
  /// snapshot, cancel flag, session id, and prepared-statement scope.
  Result<QueryResult> Execute(const std::string& sql,
                              const ExecSettings& settings);

  /// Snapshot of the current database-global execution settings.
  ExecSettings SnapshotSettings() const {
    ExecSettings s;
    std::lock_guard<std::mutex> lock(options_mu_);
    s.planner = planner_options_;
    return s;
  }

  /// Plans a SELECT without running it (used by advisors for what-if costing).
  Result<exec::PhysicalPlan> PlanQuery(const sql::SelectStatement& stmt) {
    return planner_.Plan(stmt, SnapshotSettings().planner);
  }

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  /// MVCC transaction manager: timestamps, snapshots, undo, row locks, GC.
  txn::TransactionManager& txn_manager() { return tm_; }
  const txn::TransactionManager& txn_manager() const { return tm_; }
  db4ai::ModelRegistry& models() { return models_; }
  const db4ai::ModelRegistry& models() const { return models_; }
  exec::Planner& planner() { return planner_; }
  exec::PlannerOptions& mutable_planner_options() { return planner_options_; }

  /// Session degree-of-parallelism knob (advisor knob `exec_dop`): dop > 1
  /// sizes the executor pool and makes the planner emit morsel-parallel
  /// operator variants; dop <= 1 restores fully serial execution. Statements
  /// already admitted keep their snapshot — this affects future statements
  /// only (the pool a running plan uses is retired, never destroyed, until
  /// the Database itself goes away).
  void SetDop(size_t dop);
  size_t dop() const {
    std::lock_guard<std::mutex> lock(options_mu_);
    return planner_options_.dop;
  }

  /// Session batch-execution knob: on, the planner emits the vectorized
  /// operator variants (VecScan/VecFilter/VecProject/VecHashJoin/
  /// VecHashAggregate). Like SetDop, affects future statements only.
  void SetVectorized(bool on) {
    std::lock_guard<std::mutex> lock(options_mu_);
    planner_options_.vectorized = on;
  }
  bool vectorized() const {
    std::lock_guard<std::mutex> lock(options_mu_);
    return planner_options_.vectorized;
  }

  // --- Plan cache / DDL epochs ---------------------------------------------

  /// Shared plan cache for prepared/cacheable SELECTs (hit/miss also metered
  /// as plan_cache.hit / plan_cache.miss in aidb_metrics).
  server::PlanCache& plan_cache() { return plan_cache_; }
  const server::PlanCache& plan_cache() const { return plan_cache_; }

  /// DDL generation of a table: bumped by CREATE/DROP TABLE, CREATE/DROP
  /// INDEX on it, and ANALYZE. Cached plans record the epochs of every table
  /// they touch and are discarded on mismatch.
  uint64_t TableEpoch(const std::string& table) const;

  /// Cumulative rows produced by all executed plans (cheap work counter the
  /// monitoring stack samples).
  uint64_t total_work() const {
    return total_work_.load(std::memory_order_relaxed);
  }

  // --- Observability surface ------------------------------------------------

  /// Engine-wide metric registry (counters/gauges/latency histograms); also
  /// served by the `aidb_metrics` system view.
  monitor::MetricsRegistry& metrics() { return metrics_; }
  const monitor::MetricsRegistry& metrics() const { return metrics_; }

  /// Last-N executed statements; also served by `aidb_query_log`.
  const monitor::QueryLog& query_log() const { return query_log_; }
  monitor::QueryLog& mutable_query_log() { return query_log_; }

  /// Query-log ring size (advisor knob `query_log_capacity`); overwritten
  /// entries are counted in the `query_log.dropped` metric.
  void SetQueryLogCapacity(size_t n) { query_log_.set_capacity(n); }

  // --- Self-monitoring pipeline ---------------------------------------------

  /// End-to-end request spans (service admission → executor → txn commit →
  /// WAL flush); also served by `aidb_spans`. Off by default: with spans off
  /// every record site is one relaxed load + branch.
  monitor::SpanCollector& spans() { return spans_; }
  const monitor::SpanCollector& spans() const { return spans_; }
  void EnableSpans(bool on) { spans_.set_enabled(on); }
  bool spans_enabled() const { return spans_.enabled(); }
  /// JSON export of the retained spans, one object per line (the trace.*
  /// flavor LastTraceJson uses).
  std::string SpansJson() const;

  /// KPI time-series ring behind `aidb_metrics_history`.
  const monitor::TimeSeriesStore& kpi_history() const { return kpi_history_; }
  /// Live anomaly → root-cause pipeline behind `aidb_incidents`.
  monitor::IncidentPipeline& incidents() { return incidents_; }
  const monitor::IncidentPipeline& incidents() const { return incidents_; }

  /// Starts/stops the background sampler (knob-mapped interval). Running it
  /// costs one six-counter probe per interval, entirely off the query path.
  void StartKpiSampler(double interval_ms);
  void StopKpiSampler();
  bool kpi_sampler_running() const { return kpi_sampler_.running(); }
  /// Takes one KPI sample synchronously — the deterministic-test drive path;
  /// safe to call while the background sampler runs (shared sample mutex).
  monitor::KpiSample SampleKpisNow() { return kpi_sampler_.SampleOnce(); }

  /// Per-operator tracing for every statement (EXPLAIN ANALYZE always traces
  /// its own statement regardless of this switch). Off by default: with
  /// tracing off the only executor-side cost is one predicted branch per
  /// operator call.
  void EnableTracing(bool on) { tracing_ = on; }
  bool tracing_enabled() const { return tracing_; }

  /// Zeroes every wall-clock observable (QueryResult::elapsed_ms, trace
  /// time_us, span start/duration, query-log latency/timestamp) so traced
  /// runs digest byte-identically across executions — the differential
  /// oracle runs with this on. Deterministic work counters (rows produced)
  /// are unaffected.
  void SetDeterministicTiming(bool on) {
    deterministic_timing_ = on;
    spans_.set_deterministic(on);
  }
  bool deterministic_timing() const { return deterministic_timing_; }

  /// Trace of the most recent traced SELECT (nullptr before any); also
  /// served by `aidb_trace`.
  const exec::TraceNode* last_trace() const {
    return has_trace_ ? &last_trace_ : nullptr;
  }
  /// JSON span export of last_trace() ("" before any traced statement).
  std::string LastTraceJson() const;

  /// Executor pool size (0 before any dop > 1). The pool is grow-only: it
  /// never shrinks when dop is lowered (regression-pinned in tests).
  size_t exec_pool_threads() const {
    return exec_pool_ ? exec_pool_->num_threads() : 0;
  }

  // --- Durability surface (no-ops / errors on a non-durable database) -------

  bool durable() const { return wal_ != nullptr; }
  /// True once a fault injection "killed" a durable write (WAL flush or
  /// snapshot step): the database refuses all further statements and must be
  /// reopened from disk.
  bool crashed() const {
    return (wal_ && wal_->crashed()) ||
           (durability_opts_.fault && durability_opts_.fault->crashed());
  }

  /// Drains the group-commit buffer to disk now.
  Status FlushWal();
  /// Writes a snapshot of the full state, then truncates the WAL. The
  /// `checkpoint_every_n_records` knob triggers this automatically.
  Status Checkpoint();

  /// Live re-tuning hooks for the advisor knobs.
  void SetWalFlushInterval(size_t records);
  void SetCheckpointEveryN(size_t records) {
    durability_opts_.checkpoint_every_n_records = records;
  }
  size_t wal_flush_interval() const {
    return wal_ ? wal_->flush_interval() : durability_opts_.wal_flush_interval;
  }

  DurabilityStats durability_stats() const;
  const storage::RecoveryStats& last_recovery() const { return recovery_stats_; }

  // --- Storage engine --------------------------------------------------------

  /// The attached LSM storage engine, or nullptr when the database runs on
  /// the default in-memory row store (DurabilityOptions::lsm).
  storage::LsmEngine* lsm_engine() { return lsm_engine_.get(); }
  const storage::LsmEngine* lsm_engine() const { return lsm_engine_.get(); }

  /// Freezes everything freezable (a vacuum pass at the current watermark)
  /// and flushes frozen slots through the LSM engine, inline, then compacts.
  /// Deterministic — the differential/crash harnesses and benches use it to
  /// page data out without waiting for the vacuum cadence. With
  /// `force = false` the engine's memtable-capacity threshold still gates
  /// each table's flush (what the measured tuning environment replays
  /// against). Error on a non-LSM database.
  Status FlushColdStorage(bool force = true);

 private:
  /// Plan/trace facts about one executed statement, harvested for the query
  /// log. A local threaded through the execution path (NOT a member): two
  /// sessions executing concurrently must not clobber each other's plan
  /// facts.
  struct StmtPlanInfo {
    uint64_t plan_digest = 0;
    uint32_t num_operators = 0;
    uint32_t num_joins = 0;
    bool plan_cache_hit = false;
  };

  /// Plans (or fetches from the plan cache, when `cache_key` is non-null)
  /// and executes a SELECT.
  Result<QueryResult> ExecuteSelect(const sql::SelectStatement& stmt,
                                    const ExecSettings& settings,
                                    StmtPlanInfo* info,
                                    const std::string* cache_key);
  /// Runs an already-built plan: columns, tracing, cancellation, drain,
  /// error check, cardinality feedback, trace capture.
  Status RunSelectPlan(exec::PhysicalPlan& plan,
                       const sql::SelectStatement& stmt,
                       const ExecSettings& settings, QueryResult* result);
  /// True when a SELECT's plan may be cached: no EXPLAIN variant, no system
  /// views (their backing Table is replaced on refresh), no PREDICT calls
  /// (model retrains would invalidate the bound closures).
  bool CacheableSelect(const sql::SelectStatement& stmt) const;
  /// Validity check for a checked-out cache entry against current DDL and
  /// feedback epochs.
  bool PlanStillValid(const server::CachedPlan& entry) const;
  void BumpTableEpoch(const std::string& table);
  /// The statement dispatch switch; Execute wraps it with telemetry so
  /// failures are metered and logged too. `direct_select_key` carries the
  /// plan-cache key for a directly-executed cacheable SELECT (null
  /// otherwise; EXECUTE builds its own key from the template body).
  Status ExecuteStatement(const sql::Statement& stmt,
                          const ExecSettings& settings, StmtPlanInfo* info,
                          const std::string* direct_select_key,
                          QueryResult* result);
  /// Transaction orchestration around ExecuteStatement: handles
  /// BEGIN/COMMIT/ROLLBACK, wraps every other statement in its session's open
  /// transaction or a fresh autocommit one, and maps statement failure to
  /// statement-level rollback (txn stays open) vs. whole-transaction abort
  /// (write-write conflict / WAL failure).
  Status ExecuteWithTxn(const sql::Statement& stmt,
                        const ExecSettings& settings, StmtPlanInfo* info,
                        const std::string* direct_select_key,
                        QueryResult* result);
  /// The body of ExecuteWithTxn, run while holding checkpoint_fence_ shared;
  /// the wrapper checkpoints after the fence is released.
  Status ExecuteWithTxnFenced(const sql::Statement& stmt,
                              const ExecSettings& settings, StmtPlanInfo* info,
                              const std::string* direct_select_key,
                              QueryResult* result);
  /// True when the statement cannot write MVCC state, WAL, or catalog —
  /// eligible for the autocommit pinned-read fast path (no transaction).
  /// EXECUTE resolves its prepared template's kind through the session store.
  bool ReadOnlyStatement(const sql::Statement& stmt,
                         const ExecSettings& settings) const;
  /// Commits `t`: read-only transactions are simply forgotten (no commit
  /// timestamp, no WAL record); writers append kCommit through the commit
  /// hook. On success stores the commit timestamp into `result`.
  Status FinishCommit(txn::TxnId t, QueryResult* result);
  /// Rolls back the whole transaction: unwinds undo (indexes + versions),
  /// best-effort appends kTxnAbort when ops were logged, forgets `t`.
  void AbortTxn(txn::TxnId t);
  /// Unwinds one batch of undo entries (newest first): restores hash-index
  /// entries and retires superseded versions. B+-tree entries are never
  /// removed — scans re-check key + visibility against the visible tuple.
  void UnwindWrites(std::vector<txn::TxnWrite> writes);
  /// Appends a transaction's statement ops as kTxnOp-wrapped records (the
  /// commit record comes later, through FinishCommit's hook). No-op when not
  /// durable.
  Status LogTxnOps(
      txn::TxnId t,
      std::vector<std::pair<storage::WalRecordType, std::string>> records);
  /// Index maintenance for a row moving `from` -> `to`: hash entries move;
  /// a new B+-tree entry is added only when `add_btree` (the apply path) and
  /// the key changed. Old B+-tree entries always stay (lazily filtered).
  void IndexUpdate(const std::string& table, RowId id, const Tuple& from,
                   const Tuple& to, bool add_btree);
  /// Re-adds hash-index entries for a row whose delete is being rolled back.
  void RestoreHashEntries(const std::string& table, RowId id, const Tuple& row);
  /// Every ~64 commits: reclaim versions dead below the watermark.
  void MaybeVacuum();
  /// Creates the LSM engine, hooks the catalog, attaches every recovered
  /// table (re-adopting manifest runs) and garbage-collects orphan SSTs.
  /// Called from Open when DurabilityOptions::lsm is set.
  Status EnableLsmStorage();
  /// Storage-engine maintenance trigger, piggybacked on the vacuum cadence:
  /// inline (deterministic) when crash injection is armed or no executor
  /// pool exists, otherwise a single-flight task on the executor pool.
  void MaybeMaintainStorage();
  /// Auto-checkpoint trigger (checkpoint_every_n_records knob), deferred
  /// while any transaction holds unstamped writes.
  Status MaybeAutoCheckpoint();
  /// Rebuilds any `aidb_*` system view the statement scans, so the view's
  /// backing rows are stable for the whole plan/execute cycle.
  Status RefreshReferencedSystemViews(const sql::Statement& stmt);
  void RegisterSystemViews();
  /// Appends a statement's WAL records + COMMIT, honoring group commit and
  /// the auto-checkpoint knob. No-op when not durable. `stmt_txn` is the
  /// calling statement's transaction (its id is reused when it holds no MVCC
  /// writes; otherwise a fresh id keeps the commit from resolving them).
  Status LogTxn(txn::TxnId stmt_txn,
                std::vector<std::pair<storage::WalRecordType, std::string>> records);

  Catalog catalog_;
  db4ai::ModelRegistry models_;
  exec::Planner planner_;
  /// Database-global defaults, guarded by options_mu_ so SetDop and the
  /// per-statement snapshot in Execute never race. (mutable_planner_options()
  /// hands out an unguarded reference for single-threaded setup code —
  /// concurrent callers must go through a server session instead.)
  exec::PlannerOptions planner_options_;
  mutable std::mutex options_mu_;
  /// Slot-major column mirrors for vectorized scans; planner_options_ points
  /// at it so every settings snapshot carries the reference. Declared before
  /// the pools: in-flight parallel scans may hold mirror shared_ptrs.
  exec::ColumnCache column_cache_;
  std::unique_ptr<ThreadPool> exec_pool_;
  /// Pools replaced by SetDop growth. In-flight statements snapshot the pool
  /// pointer at admission; destroying a pool under them would be
  /// use-after-free, so old pools retire here and die with the Database.
  std::vector<std::unique_ptr<ThreadPool>> retired_pools_;
  std::atomic<uint64_t> total_work_{0};

  // Serving state: plan cache, DDL epochs, database-global prepared store.
  server::PlanCache plan_cache_;
  mutable std::mutex epochs_mu_;
  std::unordered_map<std::string, uint64_t> table_epochs_;
  server::PreparedStore default_prepared_;

  // Observability state. metrics_ precedes wal_ in declaration order so the
  // WAL's cached metric pointers stay valid through destruction.
  monitor::MetricsRegistry metrics_;
  monitor::QueryLog query_log_;
  bool tracing_ = false;
  bool deterministic_timing_ = false;
  exec::TraceNode last_trace_;
  bool has_trace_ = false;
  Timer uptime_;  ///< arrival timestamps for the query log

  // Self-monitoring state. spans_ precedes wal_ (the WAL records wal_flush
  // spans) and the sampler is the LAST member of the class, so its thread is
  // joined before anything it probes is torn down.
  monitor::SpanCollector spans_;
  monitor::TimeSeriesStore kpi_history_;
  monitor::IncidentPipeline incidents_;
  /// Counter readings at the previous KPI sample, for per-interval deltas.
  /// Touched only by ProbeKpis, which the sampler's sample mutex serializes.
  struct KpiBaseline {
    uint64_t work = 0;
    uint64_t conflicts = 0;
    uint64_t denials = 0;
    uint64_t stall_us = 0;
    uint64_t fsyncs = 0;
    uint64_t select_rows = 0;
    uint64_t queries = 0;
    uint64_t lat_count = 0;
    double lat_sum_us = 0.0;
  } kpi_prev_;
  uint64_t kpi_seq_ = 0;
  Timer kpi_epoch_;
  /// Derives the six-KPI vector from MetricsRegistry deltas (the sampler's
  /// probe).
  monitor::KpiSample ProbeKpis();

  /// MVCC transaction state. Declared after metrics_ (cached counter
  /// pointers) and after catalog_ (undo entries reference Table objects; the
  /// destructor frees retired version nodes, which are self-contained).
  txn::TransactionManager tm_;
  /// Explicit-transaction slot for callers without a session (bare Execute).
  std::atomic<uint64_t> default_txn_{0};
  std::atomic<uint64_t> commits_since_vacuum_{0};

  // Durability state (null/empty for the in-memory engine).
  std::string dir_;
  DurabilityOptions durability_opts_;
  std::unique_ptr<storage::WalWriter> wal_;
  std::atomic<uint64_t> records_since_checkpoint_{0};
  uint64_t checkpoints_written_ = 0;
  std::mutex checkpoint_mu_;  ///< concurrent commits may both trigger one
  /// Statements hold this shared for their whole fenced body; Checkpoint
  /// takes it exclusive so its snapshot sees no statement mid-way through
  /// appending WAL ops or committing (a consistent cut).
  std::shared_mutex checkpoint_fence_;
  storage::RecoveryStats recovery_stats_;
  /// Pluggable storage engine (null = row store). Declared after tm_ so it
  /// is destroyed first: its destructor detaches cold tiers while the
  /// transaction manager (and catalog) are still alive.
  std::unique_ptr<storage::LsmEngine> lsm_engine_;
  /// Single-flight gate for the async maintenance task on the executor pool.
  std::atomic<bool> storage_maint_inflight_{false};

  /// Last member: destroyed (thread joined) before everything ProbeKpis and
  /// the incident hook touch.
  monitor::KpiSampler kpi_sampler_;
};

}  // namespace aidb
