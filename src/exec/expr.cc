#include "exec/expr.h"

namespace aidb::exec {

bool ValueIsTrue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: return false;
    case ValueType::kInt: return v.AsInt() != 0;
    case ValueType::kDouble: return v.AsDouble() != 0.0;
    case ValueType::kString: return !v.AsString().empty();
  }
  return false;
}

namespace {

/// Finds the index of [table.]name in the schema; ambiguity is an error.
Result<int> ResolveColumn(const std::vector<OutputCol>& schema,
                          const std::string& table, const std::string& name) {
  int found = -1;
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i].name != name) continue;
    if (!table.empty() && schema[i].table != table) continue;
    if (found >= 0) {
      return Status::InvalidArgument("ambiguous column reference '" + name + "'");
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    return Status::NotFound("column '" + (table.empty() ? name : table + "." + name) +
                            "' not in scope");
  }
  return found;
}

Value ApplyBinary(sql::OpType op, const Value& l, const Value& r) {
  using sql::OpType;
  switch (op) {
    case OpType::kAnd:
      return Value(static_cast<int64_t>(ValueIsTrue(l) && ValueIsTrue(r)));
    case OpType::kOr:
      return Value(static_cast<int64_t>(ValueIsTrue(l) || ValueIsTrue(r)));
    default:
      break;
  }
  if (l.is_null() || r.is_null()) return Value::Null();
  switch (op) {
    case OpType::kEq: return Value(static_cast<int64_t>(l.Compare(r) == 0));
    case OpType::kNe: return Value(static_cast<int64_t>(l.Compare(r) != 0));
    case OpType::kLt: return Value(static_cast<int64_t>(l.Compare(r) < 0));
    case OpType::kLe: return Value(static_cast<int64_t>(l.Compare(r) <= 0));
    case OpType::kGt: return Value(static_cast<int64_t>(l.Compare(r) > 0));
    case OpType::kGe: return Value(static_cast<int64_t>(l.Compare(r) >= 0));
    case OpType::kAdd:
      if (l.type() == ValueType::kInt && r.type() == ValueType::kInt)
        return Value(l.AsInt() + r.AsInt());
      return Value(l.AsDouble() + r.AsDouble());
    case OpType::kSub:
      if (l.type() == ValueType::kInt && r.type() == ValueType::kInt)
        return Value(l.AsInt() - r.AsInt());
      return Value(l.AsDouble() - r.AsDouble());
    case OpType::kMul:
      if (l.type() == ValueType::kInt && r.type() == ValueType::kInt)
        return Value(l.AsInt() * r.AsInt());
      return Value(l.AsDouble() * r.AsDouble());
    case OpType::kDiv: {
      double d = r.AsDouble();
      if (d == 0.0) return Value::Null();
      return Value(l.AsDouble() / d);
    }
    default: return Value::Null();
  }
}

}  // namespace

Result<BoundExpr> BoundExpr::Bind(const sql::Expr& expr,
                                  const std::vector<OutputCol>& schema,
                                  const ModelResolver* models) {
  BoundExpr b;
  switch (expr.kind) {
    case sql::Expr::Kind::kLiteral:
      b.kind_ = Kind::kLiteral;
      b.literal_ = expr.literal;
      return b;
    case sql::Expr::Kind::kColumnRef: {
      b.kind_ = Kind::kColumn;
      AIDB_ASSIGN_OR_RETURN(b.column_, ResolveColumn(schema, expr.table, expr.column));
      return b;
    }
    case sql::Expr::Kind::kBinary: {
      b.kind_ = Kind::kBinary;
      b.op_ = expr.op;
      BoundExpr l, r;
      AIDB_ASSIGN_OR_RETURN(l, Bind(*expr.lhs, schema, models));
      AIDB_ASSIGN_OR_RETURN(r, Bind(*expr.rhs, schema, models));
      b.lhs_ = std::make_shared<BoundExpr>(std::move(l));
      b.rhs_ = std::make_shared<BoundExpr>(std::move(r));
      return b;
    }
    case sql::Expr::Kind::kUnary: {
      b.kind_ = Kind::kUnary;
      b.op_ = expr.op;
      BoundExpr l;
      AIDB_ASSIGN_OR_RETURN(l, Bind(*expr.lhs, schema, models));
      b.lhs_ = std::make_shared<BoundExpr>(std::move(l));
      return b;
    }
    case sql::Expr::Kind::kPredict: {
      b.kind_ = Kind::kPredict;
      if (models == nullptr) {
        return Status::InvalidArgument("PREDICT not available in this context");
      }
      AIDB_ASSIGN_OR_RETURN(b.predict_, models->Resolve(expr.model));
      for (const auto& arg : expr.args) {
        BoundExpr a;
        AIDB_ASSIGN_OR_RETURN(a, Bind(*arg, schema, models));
        b.args_.push_back(std::move(a));
      }
      return b;
    }
    case sql::Expr::Kind::kAggregate:
      return Status::InvalidArgument(
          "aggregate expression outside of aggregation context");
    case sql::Expr::Kind::kStar:
      return Status::InvalidArgument("* is not a scalar expression");
  }
  return Status::Internal("unreachable expr kind");
}

Value BoundExpr::Eval(const Tuple& row) const {
  switch (kind_) {
    case Kind::kLiteral: return literal_;
    case Kind::kColumn: return row[static_cast<size_t>(column_)];
    case Kind::kBinary:
      return ApplyBinary(op_, lhs_->Eval(row), rhs_->Eval(row));
    case Kind::kUnary: {
      Value v = lhs_->Eval(row);
      if (op_ == sql::OpType::kNot) {
        return Value(static_cast<int64_t>(!ValueIsTrue(v)));
      }
      if (v.is_null()) return v;
      if (v.type() == ValueType::kInt) return Value(-v.AsInt());
      return Value(-v.AsDouble());
    }
    case Kind::kPredict: {
      std::vector<double> features;
      features.reserve(args_.size());
      for (const auto& a : args_) features.push_back(a.Eval(row).AsFeature());
      return Value(predict_(features));
    }
  }
  return Value::Null();
}

bool BoundExpr::EvalBool(const Tuple& row) const { return ValueIsTrue(Eval(row)); }

int BoundExpr::AsColumnIndex() const {
  return kind_ == Kind::kColumn ? column_ : -1;
}

}  // namespace aidb::exec
