#include "exec/expr.h"

namespace aidb::exec {

bool ValueIsTrue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: return false;
    case ValueType::kInt: return v.AsInt() != 0;
    case ValueType::kDouble: return v.AsDouble() != 0.0;
    case ValueType::kString: return !v.AsString().empty();
  }
  return false;
}

Result<int> ResolveColumnIndex(const std::vector<OutputCol>& schema,
                               const std::string& table,
                               const std::string& name) {
  int found = -1;
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i].name != name) continue;
    if (!table.empty() && schema[i].table != table) continue;
    if (found >= 0) {
      return Status::InvalidArgument("ambiguous column reference '" + name + "'");
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    return Status::NotFound("column '" + (table.empty() ? name : table + "." + name) +
                            "' not in scope");
  }
  return found;
}

namespace {

/// Kleene truth value of an operand: NULL is unknown, everything else
/// coerces through ValueIsTrue.
enum class Tri { kFalse, kTrue, kUnknown };

Tri TriOf(const Value& v) {
  if (v.is_null()) return Tri::kUnknown;
  return ValueIsTrue(v) ? Tri::kTrue : Tri::kFalse;
}

Value TriValue(Tri t) {
  switch (t) {
    case Tri::kFalse: return Value(static_cast<int64_t>(0));
    case Tri::kTrue: return Value(static_cast<int64_t>(1));
    case Tri::kUnknown: break;
  }
  return Value::Null();
}

Status ArithTypeError(sql::OpType op, const Value& l, const Value& r) {
  return Status::InvalidArgument(std::string("cannot apply '") + sql::OpName(op) +
                                 "' to " + ValueTypeName(l.type()) + " and " +
                                 ValueTypeName(r.type()));
}

Status OverflowError(sql::OpType op, const Value& l, const Value& r) {
  return Status::InvalidArgument(std::string("INT64 overflow in ") +
                                 l.ToString() + " " + sql::OpName(op) + " " +
                                 r.ToString());
}

}  // namespace

Result<Value> ApplyBinaryOp(sql::OpType op, const Value& l, const Value& r) {
  using sql::OpType;
  switch (op) {
    // Three-valued logic: a FALSE (resp. TRUE) operand decides AND (resp. OR)
    // regardless of the other side; otherwise any NULL makes the result NULL.
    case OpType::kAnd: {
      Tri a = TriOf(l), b = TriOf(r);
      if (a == Tri::kFalse || b == Tri::kFalse) return TriValue(Tri::kFalse);
      if (a == Tri::kUnknown || b == Tri::kUnknown) return TriValue(Tri::kUnknown);
      return TriValue(Tri::kTrue);
    }
    case OpType::kOr: {
      Tri a = TriOf(l), b = TriOf(r);
      if (a == Tri::kTrue || b == Tri::kTrue) return TriValue(Tri::kTrue);
      if (a == Tri::kUnknown || b == Tri::kUnknown) return TriValue(Tri::kUnknown);
      return TriValue(Tri::kFalse);
    }
    default:
      break;
  }
  // NULL propagates before type checking (documented in expr.h).
  if (l.is_null() || r.is_null()) return Value::Null();
  const bool has_string =
      l.type() == ValueType::kString || r.type() == ValueType::kString;
  const bool both_int =
      l.type() == ValueType::kInt && r.type() == ValueType::kInt;
  switch (op) {
    case OpType::kEq: return Value(static_cast<int64_t>(l.Compare(r) == 0));
    case OpType::kNe: return Value(static_cast<int64_t>(l.Compare(r) != 0));
    case OpType::kLt: return Value(static_cast<int64_t>(l.Compare(r) < 0));
    case OpType::kLe: return Value(static_cast<int64_t>(l.Compare(r) <= 0));
    case OpType::kGt: return Value(static_cast<int64_t>(l.Compare(r) > 0));
    case OpType::kGe: return Value(static_cast<int64_t>(l.Compare(r) >= 0));
    case OpType::kAdd: {
      if (has_string) return ArithTypeError(op, l, r);
      if (both_int) {
        int64_t out = 0;
        if (__builtin_add_overflow(l.AsInt(), r.AsInt(), &out))
          return OverflowError(op, l, r);
        return Value(out);
      }
      return Value(l.AsDouble() + r.AsDouble());
    }
    case OpType::kSub: {
      if (has_string) return ArithTypeError(op, l, r);
      if (both_int) {
        int64_t out = 0;
        if (__builtin_sub_overflow(l.AsInt(), r.AsInt(), &out))
          return OverflowError(op, l, r);
        return Value(out);
      }
      return Value(l.AsDouble() - r.AsDouble());
    }
    case OpType::kMul: {
      if (has_string) return ArithTypeError(op, l, r);
      if (both_int) {
        int64_t out = 0;
        if (__builtin_mul_overflow(l.AsInt(), r.AsInt(), &out))
          return OverflowError(op, l, r);
        return Value(out);
      }
      return Value(l.AsDouble() * r.AsDouble());
    }
    case OpType::kDiv: {
      if (has_string) return ArithTypeError(op, l, r);
      double d = r.AsDouble();
      if (d == 0.0) return Value::Null();
      return Value(l.AsDouble() / d);
    }
    default: return Value::Null();
  }
}

Result<Value> ApplyUnaryOp(sql::OpType op, const Value& v) {
  if (op == sql::OpType::kNot) {
    // Three-valued logic: NOT NULL is NULL.
    Tri t = TriOf(v);
    if (t == Tri::kUnknown) return TriValue(Tri::kUnknown);
    return TriValue(t == Tri::kTrue ? Tri::kFalse : Tri::kTrue);
  }
  if (v.is_null()) return v;
  if (v.type() == ValueType::kString) {
    return Status::InvalidArgument("cannot negate a STRING value");
  }
  if (v.type() == ValueType::kInt) {
    int64_t out = 0;
    if (__builtin_sub_overflow(static_cast<int64_t>(0), v.AsInt(), &out)) {
      return Status::InvalidArgument("INT64 overflow in -(" + v.ToString() +
                                     ")");
    }
    return Value(out);
  }
  return Value(-v.AsDouble());
}

Result<BoundExpr> BoundExpr::Bind(const sql::Expr& expr,
                                  const std::vector<OutputCol>& schema,
                                  const ModelResolver* models) {
  BoundExpr b;
  switch (expr.kind) {
    case sql::Expr::Kind::kLiteral:
      b.kind_ = Kind::kLiteral;
      b.literal_ = expr.literal;
      return b;
    case sql::Expr::Kind::kColumnRef: {
      b.kind_ = Kind::kColumn;
      AIDB_ASSIGN_OR_RETURN(b.column_,
                            ResolveColumnIndex(schema, expr.table, expr.column));
      return b;
    }
    case sql::Expr::Kind::kBinary: {
      b.kind_ = Kind::kBinary;
      b.op_ = expr.op;
      BoundExpr l, r;
      AIDB_ASSIGN_OR_RETURN(l, Bind(*expr.lhs, schema, models));
      AIDB_ASSIGN_OR_RETURN(r, Bind(*expr.rhs, schema, models));
      b.lhs_ = std::make_shared<BoundExpr>(std::move(l));
      b.rhs_ = std::make_shared<BoundExpr>(std::move(r));
      return b;
    }
    case sql::Expr::Kind::kUnary: {
      b.kind_ = Kind::kUnary;
      b.op_ = expr.op;
      BoundExpr l;
      AIDB_ASSIGN_OR_RETURN(l, Bind(*expr.lhs, schema, models));
      b.lhs_ = std::make_shared<BoundExpr>(std::move(l));
      return b;
    }
    case sql::Expr::Kind::kPredict: {
      b.kind_ = Kind::kPredict;
      if (models == nullptr) {
        return Status::InvalidArgument("PREDICT not available in this context");
      }
      AIDB_ASSIGN_OR_RETURN(b.predict_, models->Resolve(expr.model));
      for (const auto& arg : expr.args) {
        BoundExpr a;
        AIDB_ASSIGN_OR_RETURN(a, Bind(*arg, schema, models));
        b.args_.push_back(std::move(a));
      }
      return b;
    }
    case sql::Expr::Kind::kAggregate:
      return Status::InvalidArgument(
          "aggregate expression outside of aggregation context");
    case sql::Expr::Kind::kStar:
      return Status::InvalidArgument("* is not a scalar expression");
  }
  return Status::Internal("unreachable expr kind");
}

Result<Value> BoundExpr::Eval(const Tuple& row) const {
  switch (kind_) {
    case Kind::kLiteral: return literal_;
    case Kind::kColumn: return row[static_cast<size_t>(column_)];
    case Kind::kBinary: {
      Value l, r;
      AIDB_ASSIGN_OR_RETURN(l, lhs_->Eval(row));
      AIDB_ASSIGN_OR_RETURN(r, rhs_->Eval(row));
      return ApplyBinaryOp(op_, l, r);
    }
    case Kind::kUnary: {
      Value v;
      AIDB_ASSIGN_OR_RETURN(v, lhs_->Eval(row));
      return ApplyUnaryOp(op_, v);
    }
    case Kind::kPredict: {
      std::vector<double> features;
      features.reserve(args_.size());
      for (const auto& a : args_) {
        Value v;
        AIDB_ASSIGN_OR_RETURN(v, a.Eval(row));
        features.push_back(v.AsFeature());
      }
      return Value(predict_(features));
    }
  }
  return Value::Null();
}

Result<bool> BoundExpr::EvalBool(const Tuple& row) const {
  Value v;
  AIDB_ASSIGN_OR_RETURN(v, Eval(row));
  // A NULL predicate is "unknown", which a WHERE/ON/HAVING filter rejects.
  return !v.is_null() && ValueIsTrue(v);
}

int BoundExpr::AsColumnIndex() const {
  return kind_ == Kind::kColumn ? column_ : -1;
}

}  // namespace aidb::exec
