#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "storage/schema.h"

namespace aidb::exec {

/// One column of an operator's output: qualified by the producing relation's
/// effective (aliased) name.
struct OutputCol {
  std::string table;  ///< effective relation name ("" for computed columns)
  std::string name;
  ValueType type = ValueType::kDouble;
};

/// Row-level inference hook: maps a numeric feature vector to a prediction.
/// The DB4AI model registry supplies these for PREDICT(...) expressions.
using PredictFn = std::function<double(const std::vector<double>&)>;

/// Resolves model names to inference callbacks (implemented by the DB4AI
/// layer; the executor depends only on this interface).
class ModelResolver {
 public:
  virtual ~ModelResolver() = default;
  virtual Result<PredictFn> Resolve(const std::string& model_name) const = 0;
};

/// \brief Expression compiled against a fixed input schema.
///
/// Column references are resolved to tuple indices at bind time, so Eval
/// cannot fail on name errors. Runtime failures (arithmetic on a string
/// operand, INT64 overflow) surface as a Status instead of terminating the
/// process; the full dialect semantics are pinned in DESIGN.md §7 and by the
/// independent reference evaluator in src/testing/reference_eval.h:
///   - AND/OR/NOT follow SQL three-valued (Kleene) logic; non-NULL operands
///     coerce to booleans via ValueIsTrue.
///   - Comparisons with a NULL operand yield NULL.
///   - Arithmetic propagates NULL *before* type checking, so NULL + 'x' is
///     NULL while 1 + 'x' is an InvalidArgument error.
///   - INT64 + - * and unary minus are overflow-checked: overflow is an
///     InvalidArgument error, never wraparound (no promote-to-double).
///   - Division always produces DOUBLE; x / 0 and x / 0.0 yield NULL.
class BoundExpr {
 public:
  /// Binds `expr` against `schema`. Unqualified column names must be
  /// unambiguous. `models` may be null when PREDICT is not used.
  static Result<BoundExpr> Bind(const sql::Expr& expr,
                                const std::vector<OutputCol>& schema,
                                const ModelResolver* models = nullptr);

  Result<Value> Eval(const Tuple& row) const;
  /// Convenience: evaluates as a boolean predicate (NULL/0 is false).
  Result<bool> EvalBool(const Tuple& row) const;

  /// The column index if this is a bare column reference, else -1.
  int AsColumnIndex() const;

 private:
  enum class Kind { kLiteral, kColumn, kBinary, kUnary, kPredict };

  Kind kind_ = Kind::kLiteral;
  Value literal_;
  int column_ = -1;
  sql::OpType op_ = sql::OpType::kEq;
  std::shared_ptr<BoundExpr> lhs_, rhs_;
  std::vector<BoundExpr> args_;
  PredictFn predict_;
};

/// True when two values compare as SQL booleans would.
bool ValueIsTrue(const Value& v);

/// Finds the index of [table.]name in `schema`; ambiguity is an error.
/// Shared by the scalar and vectorized binders so name resolution (and its
/// error text) cannot drift between the engines.
Result<int> ResolveColumnIndex(const std::vector<OutputCol>& schema,
                               const std::string& table,
                               const std::string& name);

/// The scalar binary-operator kernel: Kleene AND/OR, NULL-before-type-check
/// propagation, checked INT64 arithmetic, DOUBLE division. The vectorized
/// engine calls this per row on its generic fallback path and re-derives
/// error Statuses through it, so both engines share one definition of the
/// dialect.
Result<Value> ApplyBinaryOp(sql::OpType op, const Value& l, const Value& r);

/// The scalar unary-operator kernel (NOT / checked unary minus).
Result<Value> ApplyUnaryOp(sql::OpType op, const Value& v);

}  // namespace aidb::exec
