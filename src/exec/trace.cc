#include "exec/trace.h"

#include <cinttypes>
#include <cstdio>

namespace aidb::exec {

namespace {

/// Shortest round-trippable-enough rendering for trace numbers: integral
/// values print without a fraction so deterministic output stays byte-stable.
std::string FormatDouble(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

std::string JoinWorkerRows(const std::vector<uint64_t>& workers) {
  std::string out;
  for (size_t i = 0; i < workers.size(); ++i) {
    if (i > 0) out += '+';
    out += std::to_string(workers[i]);
  }
  return out;
}

void JsonEscape(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void ToJsonRec(const TraceNode& n, std::string* out) {
  *out += "{\"op\":\"";
  JsonEscape(n.op, out);
  *out += "\",\"est_rows\":" + FormatDouble(n.est_rows);
  *out += ",\"rows\":" + std::to_string(n.rows);
  *out += ",\"batches\":" + std::to_string(n.batches);
  *out += ",\"time_us\":" + FormatDouble(n.time_us);
  if (!n.worker_rows.empty()) {
    *out += ",\"worker_rows\":[";
    for (size_t i = 0; i < n.worker_rows.size(); ++i) {
      if (i > 0) *out += ',';
      *out += std::to_string(n.worker_rows[i]);
    }
    *out += ']';
  }
  *out += ",\"children\":[";
  for (size_t i = 0; i < n.children.size(); ++i) {
    if (i > 0) *out += ',';
    ToJsonRec(n.children[i], out);
  }
  *out += "]}";
}

void FlattenRec(const TraceNode& n, int64_t parent, int64_t depth,
                std::vector<FlatTraceRow>* out) {
  FlatTraceRow row;
  row.node = static_cast<int64_t>(out->size());
  row.parent = parent;
  row.depth = depth;
  row.op = n.op;
  row.est_rows = n.est_rows;
  row.rows = static_cast<int64_t>(n.rows);
  row.batches = static_cast<int64_t>(n.batches);
  row.time_us = n.time_us;
  row.workers = JoinWorkerRows(n.worker_rows);
  int64_t me = row.node;
  out->push_back(std::move(row));
  for (const TraceNode& c : n.children) FlattenRec(c, me, depth + 1, out);
}

void DigestRec(const Operator& op, uint64_t depth, uint64_t* h) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  for (char c : op.Name()) {
    *h ^= static_cast<unsigned char>(c);
    *h *= kPrime;
  }
  *h ^= depth;
  *h *= kPrime;
  for (const auto& c : op.children()) DigestRec(*c, depth + 1, h);
}

}  // namespace

TraceNode BuildTrace(const Operator& root, bool deterministic) {
  TraceNode n;
  n.op = root.Name();
  n.est_rows = root.est_rows();
  n.rows = root.rows_produced();
  n.batches = root.next_calls();
  n.time_us = deterministic ? 0.0 : root.elapsed_us();
  n.worker_rows = root.worker_rows();
  n.children.reserve(root.children().size());
  for (const auto& c : root.children()) {
    n.children.push_back(BuildTrace(*c, deterministic));
  }
  return n;
}

std::string RenderTraceText(const TraceNode& node, int indent) {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += node.op;
  out += " (est=";
  out += node.est_rows < 0 ? "?" : FormatDouble(node.est_rows);
  out += " rows=" + std::to_string(node.rows);
  out += " batches=" + std::to_string(node.batches);
  out += " time=" + FormatDouble(node.time_us) + "us";
  if (!node.worker_rows.empty()) {
    out += " workers=" + JoinWorkerRows(node.worker_rows);
  }
  out += ")\n";
  for (const TraceNode& c : node.children) {
    out += RenderTraceText(c, indent + 1);
  }
  return out;
}

std::string TraceToJson(const TraceNode& node) {
  std::string out;
  ToJsonRec(node, &out);
  return out;
}

std::vector<FlatTraceRow> FlattenTrace(const TraceNode& root) {
  std::vector<FlatTraceRow> out;
  FlattenRec(root, -1, 0, &out);
  return out;
}

uint64_t PlanDigest(const Operator& root) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  DigestRec(root, 0, &h);
  return h;
}

uint32_t CountOperators(const Operator& root) {
  uint32_t n = 1;
  for (const auto& c : root.children()) n += CountOperators(*c);
  return n;
}

uint32_t CountJoins(const Operator& root) {
  std::string name = root.Name();
  uint32_t n = name.find("Join") != std::string::npos ? 1 : 0;
  for (const auto& c : root.children()) n += CountJoins(*c);
  return n;
}

}  // namespace aidb::exec
