#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "exec/agg_state.h"
#include "exec/operator.h"

namespace aidb::exec {

/// Rows per morsel: small enough that skewed filters load-balance across
/// workers, large enough that dispatch overhead vanishes next to per-row work.
inline constexpr size_t kMorselRows = 2048;

/// \brief Shared executor state threaded through the parallel operators.
///
/// A null pool (or dop <= 1) makes every parallel operator run its morsels
/// inline on the calling thread, so plans remain correct however the session
/// knob is set.
struct ParallelContext {
  ThreadPool* pool = nullptr;
  size_t dop = 1;

  /// Worker tasks to spawn for `morsels` units of work.
  size_t WorkersFor(size_t morsels) const {
    if (pool == nullptr || dop <= 1 || morsels <= 1) return 1;
    return std::min(dop, morsels);
  }
};

/// Runs `work(worker, morsel)` for every morsel in [0, n), spread over
/// ctx.WorkersFor(n) tasks that claim morsels from a shared atomic counter
/// (the LHS-style morsel dispatcher). With one worker (or a null pool)
/// everything runs inline on the calling thread. A set `cancel` flag stops
/// workers at the next morsel claim — already-claimed morsels finish, so
/// per-morsel output stays well-formed and the caller decides whether to
/// surface Cancelled. Shared by the volcano exchange operators and the
/// vectorized parallel scan.
void DispatchMorsels(
    const ParallelContext& ctx, size_t n, const std::atomic<bool>* cancel,
    const std::function<void(size_t worker, size_t morsel)>& work);

/// \brief A relation scannable morsel-at-a-time by many threads.
///
/// NumMorsels() fixes a partition of the row range; ScanMorsel(m, fn) visits
/// morsel m's qualifying rows. Calls with distinct m are safe from distinct
/// threads (the source is read-only during execution). A non-OK return means
/// a fused predicate failed to evaluate inside the morsel; consumers report
/// the error of the lowest-numbered failing morsel so serial and parallel
/// executions surface the same first error.
class MorselSource {
 public:
  using TupleFn = std::function<void(const Tuple&)>;

  virtual ~MorselSource() = default;
  virtual size_t NumMorsels() const = 0;
  virtual Status ScanMorsel(size_t m, const TupleFn& fn) const = 0;
  /// Installs the statement snapshot before dispatch (table sources filter
  /// version chains through it; derived sources may ignore it). Called from
  /// the owning operator's SetSnapshot, never concurrently with scans.
  virtual void SetSnapshot(const txn::Snapshot& snap) { (void)snap; }
};

/// Morsels over a Table's slot range, with filter predicates fused into the
/// scan so they execute inside the workers.
class TableMorselSource : public MorselSource {
 public:
  TableMorselSource(const Table* table, std::vector<BoundExpr> filters,
                    size_t morsel_rows = kMorselRows);
  size_t NumMorsels() const override;
  Status ScanMorsel(size_t m, const TupleFn& fn) const override;
  void SetSnapshot(const txn::Snapshot& snap) override { snap_ = snap; }

 private:
  const Table* table_;
  std::vector<BoundExpr> filters_;
  size_t morsel_rows_;
  txn::Snapshot snap_;  ///< default = latest committed
};

/// \brief Exchange endpoint between the parallel and serial plan regions.
///
/// Open() drives the morsel source to completion across the pool, buffering
/// each morsel's output separately; Next() then streams the buffers in
/// morsel order, so the row order equals the serial scan's and every
/// operator above the gather is oblivious to parallelism.
class GatherOp : public Operator {
 public:
  GatherOp(std::unique_ptr<MorselSource> source, std::vector<OutputCol> schema,
           ParallelContext ctx);
  std::string Name() const override {
    return "Gather(dop=" + std::to_string(ctx_.dop) + ")";
  }

  const ParallelContext& ctx() const { return ctx_; }
  /// Transfers the source to a parallel consumer (partitioned aggregation),
  /// which then scans it directly and skips the gather materialization.
  std::unique_ptr<MorselSource> TakeSource() { return std::move(source_); }

  void SetSnapshot(const txn::Snapshot& snap) override {
    Operator::SetSnapshot(snap);
    if (source_) source_->SetSnapshot(snap);
  }

 protected:
  void OpenImpl() override;
  bool NextImpl(Tuple* out) override;
  void CloseImpl() override;

  std::unique_ptr<MorselSource> source_;
  ParallelContext ctx_;
  std::vector<std::vector<Tuple>> buffers_;  ///< one per morsel
  size_t morsel_cursor_ = 0;
  size_t row_cursor_ = 0;
};

/// Morsel-parallel table scan (a gather over a TableMorselSource). Filters
/// are fused into the workers, so no Filter node ever sits above it.
class ParallelScanOp : public GatherOp {
 public:
  ParallelScanOp(const Table* table, std::string effective_name,
                 std::vector<BoundExpr> filters,
                 std::vector<std::string> filter_texts, ParallelContext ctx);
  std::string Name() const override;

 private:
  std::string label_;
  std::vector<std::string> filter_texts_;
};

/// \brief Hash join whose build phase partitions in parallel.
///
/// Build rows are materialized from the right child (volcano children are
/// not thread-safe), then workers claim morsels of the build vector and
/// bucket (hash, row-index) pairs into per-worker partition lists; merge
/// tasks — one per partition — fold those lists into the partition's hash
/// table, so no two threads ever touch the same partition. The probe side
/// stays a streaming volcano Next(), leaving downstream operators unchanged.
class ParallelHashJoinOp : public Operator {
 public:
  static constexpr size_t kPartitions = 64;

  ParallelHashJoinOp(std::unique_ptr<Operator> left,
                     std::unique_ptr<Operator> right, size_t left_key,
                     size_t right_key, ParallelContext ctx);
  std::string Name() const override {
    return "ParallelHashJoin(dop=" + std::to_string(ctx_.dop) + ")";
  }

 protected:
  void OpenImpl() override;
  bool NextImpl(Tuple* out) override;
  void CloseImpl() override;

 private:
  size_t left_key_, right_key_;
  ParallelContext ctx_;
  std::vector<Tuple> build_rows_;
  /// Partition p holds hash -> indexes into build_rows_.
  std::array<std::unordered_map<uint64_t, std::vector<uint32_t>>, kPartitions>
      partitions_;
  Tuple probe_row_;
  const std::vector<uint32_t>* matches_ = nullptr;
  size_t match_cursor_ = 0;
};

/// \brief Partitioned parallel aggregation over a morsel source.
///
/// Each worker folds its morsels into a thread-local GroupMap; the partials
/// are then merged into one map and finalized. Group counts are typically
/// tiny next to input rows, so the merge is off the hot path.
class ParallelHashAggregateOp : public Operator {
 public:
  ParallelHashAggregateOp(std::unique_ptr<MorselSource> source,
                          std::vector<BoundExpr> keys,
                          std::vector<OutputCol> key_cols,
                          std::vector<AggSpec> aggs, ParallelContext ctx);
  std::string Name() const override {
    return "ParallelHashAggregate(dop=" + std::to_string(ctx_.dop) + ")";
  }

  void SetSnapshot(const txn::Snapshot& snap) override {
    Operator::SetSnapshot(snap);
    if (source_) source_->SetSnapshot(snap);
  }

 protected:
  void OpenImpl() override;
  bool NextImpl(Tuple* out) override;

 private:
  std::unique_ptr<MorselSource> source_;
  std::vector<BoundExpr> keys_;
  std::vector<AggSpec> aggs_;
  ParallelContext ctx_;
  std::vector<Tuple> results_;
  size_t cursor_ = 0;
};

}  // namespace aidb::exec
