#include "exec/vec/col_cache.h"

#include <algorithm>
#include <cstdlib>

namespace aidb::exec {

size_t ColumnCache::MinSlots() {
  static const size_t threshold = [] {
    const char* env = std::getenv("AIDB_COL_CACHE_MIN_SLOTS");
    return env != nullptr ? static_cast<size_t>(std::strtoull(env, nullptr, 10))
                          : kMinSlots;
  }();
  return threshold;
}

namespace {

constexpr uint64_t kStale = ColumnCache::kStaleStamp;

/// Slot-major extraction with per-morsel stamping. Morsels whose stamp in
/// `prev` still matches the live morsel version are copied instead of
/// re-extracted; a morsel that changes mid-pass is stamped kStale so scans
/// decline exactly it. Returns null if any live value breaks the column's
/// declared type (the scan's row-major path handles that exactly via
/// DemoteToGeneric, so the mirror just declines).
std::shared_ptr<MirrorColumn> BuildMirror(const Table& table, size_t c,
                                          ValueType type,
                                          const MirrorColumn* prev) {
  auto mc = std::make_shared<MirrorColumn>();
  const size_t slots = table.NumSlots();
  const size_t morsels = (slots + Table::kMorselRows - 1) / Table::kMorselRows;
  const bool is_int = type == ValueType::kInt;
  mc->col.Resize(is_int ? VecColumn::Kind::kInt : VecColumn::Kind::kDouble,
                 slots);
  mc->morsel_versions.assign(morsels, kStale);
  mc->fully_stamped = true;
  for (size_t m = 0; m < morsels; ++m) {
    const RowId mb = static_cast<RowId>(m) * Table::kMorselRows;
    const RowId me = std::min<RowId>(mb + Table::kMorselRows, slots);
    const uint64_t cur = table.MorselVersion(m);
    if (prev != nullptr && m < prev->morsel_versions.size() &&
        prev->morsel_versions[m] == cur && me <= prev->col.valid.size()) {
      // Unchanged since the previous build: copy. A matching stamp implies
      // no commit, rollback, or slot allocation touched the morsel, so the
      // previous arrays cover [mb, me) with the current contents.
      if (is_int) {
        std::copy(prev->col.ints.begin() + mb, prev->col.ints.begin() + me,
                  mc->col.ints.begin() + mb);
      } else {
        std::copy(prev->col.doubles.begin() + mb,
                  prev->col.doubles.begin() + me, mc->col.doubles.begin() + mb);
      }
      std::copy(prev->col.valid.begin() + mb, prev->col.valid.begin() + me,
                mc->col.valid.begin() + mb);
      mc->morsel_versions[m] = cur;
      continue;
    }
    for (RowId id = mb; id < me; ++id) {
      if (!table.IsLive(id)) continue;  // tombstones stay invalid
      const Value& v = table.RowAt(id)[c];
      if (v.is_null()) continue;
      if (v.type() != type) return nullptr;  // e.g. INT stored in DOUBLE col
      if (is_int) {
        mc->col.ints[id] = v.AsInt();
      } else {
        mc->col.doubles[id] = v.AsDouble();
      }
      mc->col.valid[id] = 1;
    }
    if (table.MorselVersion(m) == cur) {
      mc->morsel_versions[m] = cur;
    } else {
      mc->fully_stamped = false;  // commit raced the pass: this morsel only
    }
  }
  // The gather only reads values + validity; drop the per-row error lane.
  mc->col.err.clear();
  mc->col.err.shrink_to_fit();
  return mc;
}

std::shared_ptr<LivenessMap> BuildLiveness(const Table& table,
                                           const LivenessMap* prev) {
  auto lm = std::make_shared<LivenessMap>();
  const size_t slots = table.NumSlots();
  const size_t morsels = (slots + Table::kMorselRows - 1) / Table::kMorselRows;
  lm->live.assign(slots, 0);
  lm->morsel_versions.assign(morsels, kStale);
  lm->fully_stamped = true;
  for (size_t m = 0; m < morsels; ++m) {
    const RowId mb = static_cast<RowId>(m) * Table::kMorselRows;
    const RowId me = std::min<RowId>(mb + Table::kMorselRows, slots);
    const uint64_t cur = table.MorselVersion(m);
    if (prev != nullptr && m < prev->morsel_versions.size() &&
        prev->morsel_versions[m] == cur && me <= prev->live.size()) {
      std::copy(prev->live.begin() + mb, prev->live.begin() + me,
                lm->live.begin() + mb);
      lm->morsel_versions[m] = cur;
      continue;
    }
    for (RowId id = mb; id < me; ++id) {
      lm->live[id] = table.IsLive(id) ? 1 : 0;
    }
    if (table.MorselVersion(m) == cur) {
      lm->morsel_versions[m] = cur;
    } else {
      lm->fully_stamped = false;
    }
  }
  return lm;
}

}  // namespace

std::shared_ptr<const MirrorColumn> ColumnCache::Get(const Table& table,
                                                     size_t col) {
  if (table.NumSlots() < MinSlots()) return nullptr;
  const ValueType type = table.schema().column(col).type;
  if (type != ValueType::kInt && type != ValueType::kDouble) return nullptr;

  const uint64_t version = table.data_version();
  std::shared_ptr<const MirrorColumn> prev;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& entry = entries_[table.uid()];
    entry.cols.resize(table.schema().NumColumns());
    ColEntry& ce = entry.cols[col];
    if (ce.built && ce.version == version) return ce.col;
    prev = ce.col;  // stale mirror: fresh morsels are copied, not re-walked
  }

  // Build outside the lock. MVCC writers may commit concurrently (readers no
  // longer exclude them); the per-morsel stamp re-check inside BuildMirror
  // marks exactly the raced morsels kStaleStamp, so the pass is never
  // discarded wholesale. Uncommitted versions are invisible to the
  // latest-committed walk and bump no morsel version.
  std::shared_ptr<MirrorColumn> mirror =
      BuildMirror(table, col, type, prev.get());
  if (mirror != nullptr) mirror->stamped_at = version;

  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = entries_[table.uid()];
  entry.cols.resize(table.schema().NumColumns());
  ColEntry& ce = entry.cols[col];
  ce.built = true;
  ce.version = version;
  ce.col = mirror;
  return mirror;
}

std::shared_ptr<const LivenessMap> ColumnCache::GetLiveness(
    const Table& table) {
  if (table.NumSlots() < MinSlots()) return nullptr;
  const uint64_t version = table.data_version();
  std::shared_ptr<const LivenessMap> prev;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& entry = entries_[table.uid()];
    if (entry.live_built && entry.live_version == version) return entry.live;
    prev = entry.live;
  }

  // Same build-outside-the-lock + per-morsel stamp discipline as Get(): the
  // chain walk per slot happens once per morsel version here instead of once
  // per slot per batch in the scan.
  std::shared_ptr<LivenessMap> live = BuildLiveness(table, prev.get());
  live->stamped_at = version;

  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = entries_[table.uid()];
  entry.live_built = true;
  entry.live_version = version;
  entry.live = live;
  return live;
}

void ColumnCache::Evict(uint64_t table_uid) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(table_uid);
}

size_t ColumnCache::ApproxBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& [uid, entry] : entries_) {
    if (entry.live) {
      bytes += entry.live->live.capacity() +
               entry.live->morsel_versions.capacity() * sizeof(uint64_t);
    }
    for (const auto& ce : entry.cols) {
      if (!ce.col) continue;
      bytes += ce.col->col.ints.capacity() * sizeof(int64_t) +
               ce.col->col.doubles.capacity() * sizeof(double) +
               ce.col->col.valid.capacity() +
               ce.col->morsel_versions.capacity() * sizeof(uint64_t);
    }
  }
  return bytes;
}

}  // namespace aidb::exec
