#include "exec/vec/col_cache.h"

#include <cstdlib>

namespace aidb::exec {

size_t ColumnCache::MinSlots() {
  static const size_t threshold = [] {
    const char* env = std::getenv("AIDB_COL_CACHE_MIN_SLOTS");
    return env != nullptr ? static_cast<size_t>(std::strtoull(env, nullptr, 10))
                          : kMinSlots;
  }();
  return threshold;
}

namespace {

/// One slot-major extraction pass. Returns null if any live value breaks the
/// column's declared type (the scan's row-major path handles that exactly via
/// DemoteToGeneric, so the mirror just declines).
std::shared_ptr<const VecColumn> BuildMirror(const Table& table, size_t c,
                                             ValueType type) {
  auto col = std::make_shared<VecColumn>();
  const size_t slots = table.NumSlots();
  col->Resize(type == ValueType::kInt ? VecColumn::Kind::kInt
                                      : VecColumn::Kind::kDouble,
              slots);
  for (RowId id = 0; id < slots; ++id) {
    if (!table.IsLive(id)) continue;  // tombstones stay invalid
    const Value& v = table.RowAt(id)[c];
    if (v.is_null()) continue;
    if (v.type() != type) return nullptr;  // e.g. INT stored in DOUBLE column
    if (type == ValueType::kInt) {
      col->ints[id] = v.AsInt();
    } else {
      col->doubles[id] = v.AsDouble();
    }
    col->valid[id] = 1;
  }
  // The gather only reads values + validity; drop the per-row error lane.
  col->err.clear();
  col->err.shrink_to_fit();
  return col;
}

}  // namespace

std::shared_ptr<const VecColumn> ColumnCache::Get(const Table& table,
                                                  size_t col) {
  if (table.NumSlots() < MinSlots()) return nullptr;
  const ValueType type = table.schema().column(col).type;
  if (type != ValueType::kInt && type != ValueType::kDouble) return nullptr;

  const uint64_t version = table.data_version();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& entry = entries_[table.uid()];
    entry.cols.resize(table.schema().NumColumns());
    ColEntry& ce = entry.cols[col];
    if (ce.built && ce.version == version) return ce.col;
  }

  // Build outside the lock. MVCC writers may commit concurrently (readers no
  // longer exclude them), so re-check the data version after the pass: a
  // commit mid-build could leave the mirror mixing pre- and post-commit
  // rows. Uncommitted versions are invisible to the latest-committed walk
  // BuildMirror does and never bump data_version, so only commits (and
  // rollbacks of inserts, which also bump it) invalidate the pass.
  std::shared_ptr<const VecColumn> mirror = BuildMirror(table, col, type);
  if (table.data_version() != version) return nullptr;

  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = entries_[table.uid()];
  entry.cols.resize(table.schema().NumColumns());
  ColEntry& ce = entry.cols[col];
  ce.built = true;
  ce.version = version;
  ce.col = mirror;
  return mirror;
}

std::shared_ptr<const std::vector<uint8_t>> ColumnCache::GetLiveness(
    const Table& table) {
  if (table.NumSlots() < MinSlots()) return nullptr;
  const uint64_t version = table.data_version();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& entry = entries_[table.uid()];
    if (entry.live_built && entry.live_version == version) return entry.live;
  }

  // Same build-outside-the-lock + version re-check discipline as Get(): the
  // chain walk per slot happens once per data version here instead of once
  // per slot per batch in the scan.
  auto live = std::make_shared<std::vector<uint8_t>>(table.NumSlots());
  for (RowId id = 0; id < live->size(); ++id) {
    (*live)[id] = table.IsLive(id) ? 1 : 0;
  }
  if (table.data_version() != version) return nullptr;

  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = entries_[table.uid()];
  entry.live_built = true;
  entry.live_version = version;
  entry.live = live;
  return live;
}

void ColumnCache::Evict(uint64_t table_uid) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(table_uid);
}

size_t ColumnCache::ApproxBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& [uid, entry] : entries_) {
    if (entry.live) bytes += entry.live->capacity();
    for (const auto& ce : entry.cols) {
      if (!ce.col) continue;
      bytes += ce.col->ints.capacity() * sizeof(int64_t) +
               ce.col->doubles.capacity() * sizeof(double) +
               ce.col->valid.capacity();
    }
  }
  return bytes;
}

}  // namespace aidb::exec
