#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/expr.h"
#include "storage/schema.h"

namespace aidb::exec {

/// Rows per batch: large enough that per-batch overhead (virtual dispatch,
/// kernel setup) amortizes away, small enough that a batch's columns stay in
/// L1/L2 across the kernels of one operator.
inline constexpr size_t kBatchRows = 1024;

/// \brief One typed column of a batch.
///
/// The typed kinds (kInt/kDouble/kString) store values in flat arrays a
/// kernel can stream over; kString is dictionary-encoded (codes into a
/// per-column dictionary in first-seen order). kNull is an all-NULL column
/// (e.g. a NULL literal). kGeneric is the correctness fallback — a plain
/// Value vector — used where static typing does not hold: rows drained from
/// volcano children, and DOUBLE table columns that physically hold INT values
/// (Table::ValidateRow permits that mix, and Value::ToString distinguishes
/// it, so coercing would change results).
///
/// `valid` is a byte-per-row validity mask (1 = non-NULL) for the typed
/// kinds; value slots at invalid rows are zeroed so kernels can operate
/// branchlessly and mask afterwards. `err` marks rows whose evaluation
/// failed in the scalar semantics (overflow, arithmetic on a string):
/// kernels null the row out and set the bit; the consumer finds the lowest
/// selected errored row and re-evaluates the scalar expression on that one
/// row to recover the exact Status — so the hot loops never build strings
/// and the error text is the scalar path's, byte for byte.
struct VecColumn {
  enum class Kind { kInt, kDouble, kString, kNull, kGeneric };

  Kind kind = Kind::kNull;
  size_t rows = 0;
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<int32_t> codes;      ///< kString: index into dict
  std::vector<std::string> dict;   ///< kString: unique values, first-seen order
  std::vector<Value> generic;      ///< kGeneric payload
  std::vector<uint8_t> valid;      ///< typed kinds: 1 = non-NULL
  std::vector<uint8_t> err;        ///< rows whose scalar evaluation errors
  bool has_err = false;

  void Clear() {
    kind = Kind::kNull;
    rows = 0;
    ints.clear();
    doubles.clear();
    codes.clear();
    dict.clear();
    generic.clear();
    valid.clear();
    err.clear();
    has_err = false;
  }

  bool IsNullAt(size_t i) const {
    switch (kind) {
      case Kind::kNull: return true;
      case Kind::kGeneric: return generic[i].is_null();
      default: return valid[i] == 0;
    }
  }

  /// Materializes row i as a scalar Value (exact, including INT-in-DOUBLE
  /// rows via the generic fallback).
  Value ValueAt(size_t i) const {
    switch (kind) {
      case Kind::kNull: return Value::Null();
      case Kind::kGeneric: return generic[i];
      case Kind::kInt:
        return valid[i] ? Value(ints[i]) : Value::Null();
      case Kind::kDouble:
        return valid[i] ? Value(doubles[i]) : Value::Null();
      case Kind::kString:
        return valid[i] ? Value(dict[static_cast<size_t>(codes[i])])
                        : Value::Null();
    }
    return Value::Null();
  }

  /// Value::AsFeature without boxing for the typed kinds.
  double FeatureAt(size_t i) const {
    switch (kind) {
      case Kind::kNull: return 0.0;
      case Kind::kGeneric: return generic[i].AsFeature();
      case Kind::kInt: return valid[i] ? static_cast<double>(ints[i]) : 0.0;
      case Kind::kDouble: return valid[i] ? doubles[i] : 0.0;
      case Kind::kString: {
        if (!valid[i]) return 0.0;
        size_t h = std::hash<std::string>{}(dict[static_cast<size_t>(codes[i])]);
        return static_cast<double>(h % 100003) / 100003.0;
      }
    }
    return 0.0;
  }

  void MarkError(size_t i) {
    err[i] = 1;
    has_err = true;
    // Null the row out so downstream kernels see NULL, never garbage.
    if (kind != Kind::kGeneric && kind != Kind::kNull) {
      valid[i] = 0;
    } else if (kind == Kind::kGeneric) {
      generic[i] = Value::Null();
    }
  }

  // --- construction helpers --------------------------------------------

  /// Sizes the column for n rows of the given kind, zero-filled and all-NULL
  /// (typed kinds) so kernels can write values + validity positionally.
  void Resize(Kind k, size_t n) {
    Clear();
    kind = k;
    rows = n;
    err.assign(n, 0);
    switch (k) {
      case Kind::kInt:
        ints.assign(n, 0);
        valid.assign(n, 0);
        break;
      case Kind::kDouble:
        doubles.assign(n, 0.0);
        valid.assign(n, 0);
        break;
      case Kind::kString:
        codes.assign(n, 0);
        valid.assign(n, 0);
        break;
      case Kind::kGeneric:
        generic.assign(n, Value::Null());
        break;
      case Kind::kNull:
        break;
    }
  }

  /// Converts a partially-built typed column to the generic representation
  /// (used when a DOUBLE table column turns out to hold an INT value
  /// mid-batch). Only the first `built` rows are carried over.
  void DemoteToGeneric(size_t built) {
    std::vector<Value> g;
    g.reserve(rows);
    for (size_t i = 0; i < built; ++i) g.push_back(ValueAt(i));
    for (size_t i = built; i < rows; ++i) g.push_back(Value::Null());
    ints.clear();
    doubles.clear();
    codes.clear();
    dict.clear();
    valid.clear();
    generic = std::move(g);
    kind = Kind::kGeneric;
  }
};

/// \brief A batch of rows in columnar layout, plus an optional selection
/// vector.
///
/// `sel` (when `has_sel`) lists the live row indices in ascending order;
/// filters refine it in place instead of copying survivors, so a
/// scan→filter→aggregate pipeline moves no row data at all. Expressions
/// always evaluate over all physical rows (cheaper than gathering); only
/// selected rows are ever observed, and per-row errors are only honored on
/// selected rows — matching the volcano path, where filtered-out rows never
/// reach later operators.
struct Batch {
  std::vector<VecColumn> cols;
  size_t rows = 0;  ///< physical rows; every column has exactly this many
  bool has_sel = false;
  std::vector<uint32_t> sel;

  void Clear() {
    cols.clear();
    rows = 0;
    has_sel = false;
    sel.clear();
  }

  /// Clear() that keeps the column objects (and their heap arrays) alive, so
  /// a reused batch re-fills columns via VecColumn::Resize with zero
  /// allocations on the steady state of a scan. Column contents are stale
  /// until rewritten.
  void ResetForWidth(size_t width) {
    cols.resize(width);
    rows = 0;
    has_sel = false;
    sel.clear();
  }

  size_t ActiveCount() const { return has_sel ? sel.size() : rows; }
  uint32_t ActiveRow(size_t i) const {
    return has_sel ? sel[i] : static_cast<uint32_t>(i);
  }

  Tuple MaterializeRow(uint32_t r) const {
    Tuple t;
    t.reserve(cols.size());
    for (const auto& c : cols) t.push_back(c.ValueAt(r));
    return t;
  }
};

}  // namespace aidb::exec
