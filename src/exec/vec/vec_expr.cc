#include "exec/vec/vec_expr.h"

namespace aidb::exec {

namespace {

using Kind = VecColumn::Kind;

bool IsNumericKind(Kind k) { return k == Kind::kInt || k == Kind::kDouble; }

/// Loop-invariant numeric view of one row (the int->double coercion both
/// Value::Compare and mixed arithmetic apply).
inline double NumAt(const VecColumn& c, size_t i) {
  return c.kind == Kind::kInt ? static_cast<double>(c.ints[i]) : c.doubles[i];
}

void PropagateErr(const VecColumn& l, const VecColumn& r, VecColumn* out) {
  if (!l.has_err && !r.has_err) return;
  const size_t n = out->rows;
  for (size_t i = 0; i < n; ++i) {
    if (l.err[i] | r.err[i]) out->MarkError(i);
  }
}

void PropagateErr(const VecColumn& c, VecColumn* out) {
  if (!c.has_err) return;
  for (size_t i = 0; i < out->rows; ++i) {
    if (c.err[i]) out->MarkError(i);
  }
}

/// Kleene truth arrays: k[i] = operand known (non-NULL), t[i] = known true.
/// Errored rows are already nulled, so they read as unknown here and the err
/// bit decides the statement's fate at the consumer.
void Truthiness(const VecColumn& c, std::vector<uint8_t>* t,
                std::vector<uint8_t>* k) {
  const size_t n = c.rows;
  t->assign(n, 0);
  k->assign(n, 0);
  switch (c.kind) {
    case Kind::kNull:
      break;
    case Kind::kInt:
      for (size_t i = 0; i < n; ++i) {
        (*k)[i] = c.valid[i];
        (*t)[i] = static_cast<uint8_t>(c.valid[i] && c.ints[i] != 0);
      }
      break;
    case Kind::kDouble:
      for (size_t i = 0; i < n; ++i) {
        (*k)[i] = c.valid[i];
        (*t)[i] = static_cast<uint8_t>(c.valid[i] && c.doubles[i] != 0.0);
      }
      break;
    case Kind::kString:
      for (size_t i = 0; i < n; ++i) {
        (*k)[i] = c.valid[i];
        (*t)[i] = static_cast<uint8_t>(
            c.valid[i] && !c.dict[static_cast<size_t>(c.codes[i])].empty());
      }
      break;
    case Kind::kGeneric:
      for (size_t i = 0; i < n; ++i) {
        if (c.generic[i].is_null()) continue;
        (*k)[i] = 1;
        (*t)[i] = static_cast<uint8_t>(ValueIsTrue(c.generic[i]));
      }
      break;
  }
}

VecColumn KleeneBinary(sql::OpType op, const VecColumn& l, const VecColumn& r) {
  const size_t n = l.rows;
  std::vector<uint8_t> tl, kl, tr, kr;
  Truthiness(l, &tl, &kl);
  Truthiness(r, &tr, &kr);
  VecColumn out;
  out.Resize(Kind::kInt, n);
  if (op == sql::OpType::kAnd) {
    for (size_t i = 0; i < n; ++i) {
      // FALSE dominates: a known-false side decides AND whatever the other is.
      uint8_t kf = static_cast<uint8_t>((kl[i] & (tl[i] ^ 1)) |
                                        (kr[i] & (tr[i] ^ 1)));
      out.valid[i] = static_cast<uint8_t>(kf | (kl[i] & kr[i]));
      out.ints[i] = static_cast<int64_t>(tl[i] & tr[i]);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      // TRUE dominates OR symmetrically.
      uint8_t kt = static_cast<uint8_t>((kl[i] & tl[i]) | (kr[i] & tr[i]));
      out.valid[i] = static_cast<uint8_t>(kt | (kl[i] & kr[i]));
      out.ints[i] = static_cast<int64_t>(kt);
    }
  }
  PropagateErr(l, r, &out);
  return out;
}

/// Per-row fallback over the shared scalar kernel: correct for every operand
/// mix, used whenever static typing does not hold.
VecColumn GenericBinary(sql::OpType op, const VecColumn& l, const VecColumn& r) {
  const size_t n = l.rows;
  VecColumn out;
  out.Resize(Kind::kGeneric, n);
  for (size_t i = 0; i < n; ++i) {
    if (l.err[i] | r.err[i]) {
      out.MarkError(i);
      continue;
    }
    Result<Value> v = ApplyBinaryOp(op, l.ValueAt(i), r.ValueAt(i));
    if (!v.ok()) {
      out.MarkError(i);
    } else {
      out.generic[i] = std::move(v).ValueOrDie();
    }
  }
  return out;
}

int CompareConstant(bool left_is_string) {
  // Value::Compare: numbers sort before strings, deterministically.
  return left_is_string ? 1 : -1;
}

inline int64_t CmpResult(sql::OpType op, int c) {
  switch (op) {
    case sql::OpType::kEq: return c == 0;
    case sql::OpType::kNe: return c != 0;
    case sql::OpType::kLt: return c < 0;
    case sql::OpType::kLe: return c <= 0;
    case sql::OpType::kGt: return c > 0;
    case sql::OpType::kGe: return c >= 0;
    default: return 0;
  }
}

VecColumn CompareKernel(sql::OpType op, const VecColumn& l, const VecColumn& r) {
  const size_t n = l.rows;
  VecColumn out;
  out.Resize(Kind::kInt, n);
  const bool lstr = l.kind == Kind::kString, rstr = r.kind == Kind::kString;
  if (lstr && rstr) {
    for (size_t i = 0; i < n; ++i) {
      uint8_t v = static_cast<uint8_t>(l.valid[i] & r.valid[i]);
      if (!v) continue;
      const std::string& a = l.dict[static_cast<size_t>(l.codes[i])];
      const std::string& b = r.dict[static_cast<size_t>(r.codes[i])];
      int c = a < b ? -1 : (a == b ? 0 : 1);
      out.valid[i] = 1;
      out.ints[i] = CmpResult(op, c);
    }
  } else if (lstr != rstr) {
    const int64_t res = CmpResult(op, CompareConstant(lstr));
    for (size_t i = 0; i < n; ++i) {
      uint8_t v = static_cast<uint8_t>(l.valid[i] & r.valid[i]);
      out.valid[i] = v;
      out.ints[i] = res;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      uint8_t v = static_cast<uint8_t>(l.valid[i] & r.valid[i]);
      double a = NumAt(l, i), b = NumAt(r, i);
      int c = a < b ? -1 : (a == b ? 0 : 1);
      out.valid[i] = v;
      out.ints[i] = CmpResult(op, c);
    }
  }
  PropagateErr(l, r, &out);
  return out;
}

VecColumn ArithKernel(sql::OpType op, const VecColumn& l, const VecColumn& r) {
  const size_t n = l.rows;
  VecColumn out;
  const bool has_string = l.kind == Kind::kString || r.kind == Kind::kString;
  if (has_string && op != sql::OpType::kDiv) {
    // NULL propagates before the type check, so only non-NULL pairs error;
    // the rest of the column is NULL.
    out.Resize(Kind::kNull, n);
    for (size_t i = 0; i < n; ++i) {
      if (l.valid[i] & r.valid[i]) out.MarkError(i);
    }
    PropagateErr(l, r, &out);
    return out;
  }
  if (op == sql::OpType::kDiv) {
    if (has_string) {
      out.Resize(Kind::kNull, n);
      for (size_t i = 0; i < n; ++i) {
        if (l.valid[i] & r.valid[i]) out.MarkError(i);
      }
      PropagateErr(l, r, &out);
      return out;
    }
    out.Resize(Kind::kDouble, n);
    for (size_t i = 0; i < n; ++i) {
      double d = NumAt(r, i);
      if ((l.valid[i] & r.valid[i]) && d != 0.0) {
        out.doubles[i] = NumAt(l, i) / d;
        out.valid[i] = 1;
      }
    }
    PropagateErr(l, r, &out);
    return out;
  }
  if (l.kind == Kind::kInt && r.kind == Kind::kInt) {
    out.Resize(Kind::kInt, n);
    for (size_t i = 0; i < n; ++i) {
      uint8_t v = static_cast<uint8_t>(l.valid[i] & r.valid[i]);
      int64_t res = 0;
      bool ovf = false;
      switch (op) {
        case sql::OpType::kAdd:
          ovf = __builtin_add_overflow(l.ints[i], r.ints[i], &res);
          break;
        case sql::OpType::kSub:
          ovf = __builtin_sub_overflow(l.ints[i], r.ints[i], &res);
          break;
        default:
          ovf = __builtin_mul_overflow(l.ints[i], r.ints[i], &res);
          break;
      }
      if (v && ovf) {
        out.MarkError(i);
      } else {
        out.ints[i] = ovf ? 0 : res;
        out.valid[i] = v;
      }
    }
    PropagateErr(l, r, &out);
    return out;
  }
  out.Resize(Kind::kDouble, n);
  switch (op) {
    case sql::OpType::kAdd:
      for (size_t i = 0; i < n; ++i) {
        out.doubles[i] = NumAt(l, i) + NumAt(r, i);
        out.valid[i] = static_cast<uint8_t>(l.valid[i] & r.valid[i]);
      }
      break;
    case sql::OpType::kSub:
      for (size_t i = 0; i < n; ++i) {
        out.doubles[i] = NumAt(l, i) - NumAt(r, i);
        out.valid[i] = static_cast<uint8_t>(l.valid[i] & r.valid[i]);
      }
      break;
    default:
      for (size_t i = 0; i < n; ++i) {
        out.doubles[i] = NumAt(l, i) * NumAt(r, i);
        out.valid[i] = static_cast<uint8_t>(l.valid[i] & r.valid[i]);
      }
      break;
  }
  PropagateErr(l, r, &out);
  return out;
}

VecColumn ApplyBinaryVec(sql::OpType op, const VecColumn& l, const VecColumn& r) {
  if (op == sql::OpType::kAnd || op == sql::OpType::kOr) {
    return KleeneBinary(op, l, r);
  }
  if (l.kind == Kind::kGeneric || r.kind == Kind::kGeneric) {
    return GenericBinary(op, l, r);
  }
  if (l.kind == Kind::kNull || r.kind == Kind::kNull) {
    // A NULL operand nulls every comparison and arithmetic row before any
    // type check could error.
    VecColumn out;
    out.Resize(Kind::kNull, l.rows);
    PropagateErr(l, r, &out);
    return out;
  }
  switch (op) {
    case sql::OpType::kEq:
    case sql::OpType::kNe:
    case sql::OpType::kLt:
    case sql::OpType::kLe:
    case sql::OpType::kGt:
    case sql::OpType::kGe:
      return CompareKernel(op, l, r);
    default:
      return ArithKernel(op, l, r);
  }
}

VecColumn ApplyUnaryVec(sql::OpType op, const VecColumn& c) {
  const size_t n = c.rows;
  VecColumn out;
  if (op == sql::OpType::kNot) {
    std::vector<uint8_t> t, k;
    Truthiness(c, &t, &k);
    out.Resize(Kind::kInt, n);
    for (size_t i = 0; i < n; ++i) {
      out.valid[i] = k[i];
      out.ints[i] = static_cast<int64_t>(k[i] & (t[i] ^ 1));
    }
    PropagateErr(c, &out);
    return out;
  }
  // Unary minus.
  switch (c.kind) {
    case Kind::kNull:
      out.Resize(Kind::kNull, n);
      break;
    case Kind::kGeneric:
      out.Resize(Kind::kGeneric, n);
      for (size_t i = 0; i < n; ++i) {
        if (c.err[i]) {
          out.MarkError(i);
          continue;
        }
        Result<Value> v = ApplyUnaryOp(op, c.generic[i]);
        if (!v.ok()) {
          out.MarkError(i);
        } else {
          out.generic[i] = std::move(v).ValueOrDie();
        }
      }
      return out;
    case Kind::kString:
      out.Resize(Kind::kNull, n);
      for (size_t i = 0; i < n; ++i) {
        if (c.valid[i]) out.MarkError(i);
      }
      break;
    case Kind::kInt:
      out.Resize(Kind::kInt, n);
      for (size_t i = 0; i < n; ++i) {
        int64_t res = 0;
        bool ovf = __builtin_sub_overflow(static_cast<int64_t>(0), c.ints[i],
                                          &res);
        if (c.valid[i] && ovf) {
          out.MarkError(i);
        } else {
          out.ints[i] = ovf ? 0 : res;
          out.valid[i] = c.valid[i];
        }
      }
      break;
    case Kind::kDouble:
      out.Resize(Kind::kDouble, n);
      for (size_t i = 0; i < n; ++i) {
        out.doubles[i] = -c.doubles[i];
        out.valid[i] = c.valid[i];
      }
      break;
  }
  PropagateErr(c, &out);
  return out;
}

VecColumn BroadcastLiteral(const Value& v, size_t n) {
  VecColumn out;
  switch (v.type()) {
    case ValueType::kNull:
      out.Resize(Kind::kNull, n);
      break;
    case ValueType::kInt:
      out.Resize(Kind::kInt, n);
      std::fill(out.ints.begin(), out.ints.end(), v.AsInt());
      std::fill(out.valid.begin(), out.valid.end(), uint8_t{1});
      break;
    case ValueType::kDouble:
      out.Resize(Kind::kDouble, n);
      std::fill(out.doubles.begin(), out.doubles.end(), v.AsDouble());
      std::fill(out.valid.begin(), out.valid.end(), uint8_t{1});
      break;
    case ValueType::kString:
      out.Resize(Kind::kString, n);
      out.dict.push_back(v.AsString());
      std::fill(out.valid.begin(), out.valid.end(), uint8_t{1});
      break;
  }
  return out;
}

}  // namespace

Result<VecExpr> VecExpr::Bind(const sql::Expr& expr,
                              const std::vector<OutputCol>& schema,
                              const ModelResolver* models) {
  VecExpr b;
  switch (expr.kind) {
    case sql::Expr::Kind::kLiteral:
      b.kind_ = Kind::kLiteral;
      b.literal_ = expr.literal;
      return b;
    case sql::Expr::Kind::kColumnRef: {
      b.kind_ = Kind::kColumn;
      AIDB_ASSIGN_OR_RETURN(b.column_,
                            ResolveColumnIndex(schema, expr.table, expr.column));
      return b;
    }
    case sql::Expr::Kind::kBinary: {
      b.kind_ = Kind::kBinary;
      b.op_ = expr.op;
      VecExpr l, r;
      AIDB_ASSIGN_OR_RETURN(l, Bind(*expr.lhs, schema, models));
      AIDB_ASSIGN_OR_RETURN(r, Bind(*expr.rhs, schema, models));
      b.lhs_ = std::make_shared<VecExpr>(std::move(l));
      b.rhs_ = std::make_shared<VecExpr>(std::move(r));
      return b;
    }
    case sql::Expr::Kind::kUnary: {
      b.kind_ = Kind::kUnary;
      b.op_ = expr.op;
      VecExpr l;
      AIDB_ASSIGN_OR_RETURN(l, Bind(*expr.lhs, schema, models));
      b.lhs_ = std::make_shared<VecExpr>(std::move(l));
      return b;
    }
    case sql::Expr::Kind::kPredict: {
      b.kind_ = Kind::kPredict;
      if (models == nullptr) {
        return Status::InvalidArgument("PREDICT not available in this context");
      }
      AIDB_ASSIGN_OR_RETURN(b.predict_, models->Resolve(expr.model));
      for (const auto& arg : expr.args) {
        VecExpr a;
        AIDB_ASSIGN_OR_RETURN(a, Bind(*arg, schema, models));
        b.args_.push_back(std::move(a));
      }
      return b;
    }
    case sql::Expr::Kind::kAggregate:
      return Status::InvalidArgument(
          "aggregate expression outside of aggregation context");
    case sql::Expr::Kind::kStar:
      return Status::InvalidArgument("* is not a scalar expression");
  }
  return Status::Internal("unreachable expr kind");
}

const VecColumn& VecExpr::EvalRef(const Batch& in, VecColumn* scratch) const {
  if (kind_ == Kind::kColumn) return in.cols[static_cast<size_t>(column_)];
  *scratch = Eval(in);
  return *scratch;
}

bool VecExpr::MatchColCmpLit(int* col, sql::OpType* op, Value* lit) const {
  if (kind_ != Kind::kBinary) return false;
  switch (op_) {
    case sql::OpType::kEq:
    case sql::OpType::kNe:
    case sql::OpType::kLt:
    case sql::OpType::kLe:
    case sql::OpType::kGt:
    case sql::OpType::kGe:
      break;
    default:
      return false;
  }
  const VecExpr& l = *lhs_;
  const VecExpr& r = *rhs_;
  if (l.kind_ == Kind::kColumn && r.kind_ == Kind::kLiteral) {
    *col = l.column_;
    *op = op_;
    *lit = r.literal_;
    return true;
  }
  if (l.kind_ == Kind::kLiteral && r.kind_ == Kind::kColumn) {
    *col = r.column_;
    *lit = l.literal_;
    switch (op_) {  // lit < col  ≡  col > lit, etc.
      case sql::OpType::kLt: *op = sql::OpType::kGt; break;
      case sql::OpType::kLe: *op = sql::OpType::kGe; break;
      case sql::OpType::kGt: *op = sql::OpType::kLt; break;
      case sql::OpType::kGe: *op = sql::OpType::kLe; break;
      default: *op = op_; break;  // Eq/Ne are symmetric
    }
    return true;
  }
  return false;
}

VecColumn VecExpr::Eval(const Batch& in) const {
  switch (kind_) {
    case Kind::kLiteral:
      return BroadcastLiteral(literal_, in.rows);
    case Kind::kColumn:
      return in.cols[static_cast<size_t>(column_)];
    case Kind::kBinary: {
      VecColumn ls, rs;
      const VecColumn& l = lhs_->EvalRef(in, &ls);
      const VecColumn& r = rhs_->EvalRef(in, &rs);
      return ApplyBinaryVec(op_, l, r);
    }
    case Kind::kUnary: {
      VecColumn ls;
      return ApplyUnaryVec(op_, lhs_->EvalRef(in, &ls));
    }
    case Kind::kPredict: {
      std::vector<VecColumn> scratch(args_.size());
      std::vector<const VecColumn*> arg_cols;
      arg_cols.reserve(args_.size());
      for (size_t j = 0; j < args_.size(); ++j) {
        arg_cols.push_back(&args_[j].EvalRef(in, &scratch[j]));
      }
      VecColumn out;
      out.Resize(VecColumn::Kind::kDouble, in.rows);
      std::vector<double> features(args_.size());
      // Inference only on selected rows: per-row model cost is the one place
      // masking pays, and it keeps inference-side counters equal to the
      // scalar engine, which never sees filtered-out rows.
      const size_t active = in.ActiveCount();
      for (size_t s = 0; s < active; ++s) {
        const size_t i = in.ActiveRow(s);
        bool arg_err = false;
        for (const auto* c : arg_cols) arg_err = arg_err || c->err[i] != 0;
        if (arg_err) {
          out.MarkError(i);
          continue;
        }
        for (size_t j = 0; j < arg_cols.size(); ++j) {
          features[j] = arg_cols[j]->FeatureAt(i);
        }
        out.doubles[i] = predict_(features);
        out.valid[i] = 1;
      }
      return out;
    }
  }
  return VecColumn{};
}

}  // namespace aidb::exec
