#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/agg_state.h"
#include "exec/parallel.h"
#include "exec/vec/batch.h"
#include "exec/vec/vec_expr.h"

namespace aidb::exec {

class ColumnCache;
struct MirrorColumn;
struct LivenessMap;

/// \brief Base of the batch-at-a-time operators.
///
/// A VecOperator is still an Operator: it plugs into the same plan trees,
/// EXPLAIN rendering, tracing, cancellation and FirstError() machinery, and
/// any row operator (Sort, Distinct, Limit, the executor's drain loop) can
/// sit on top of one — NextImpl transparently drains batches row by row. The
/// batch protocol is the public NextBatch(), which vectorized parents call
/// instead, so a chain of VecOperators moves whole columns and touches no
/// Tuple until the first row consumer.
///
/// Error protocol: a per-row evaluation failure never aborts a kernel
/// mid-batch. The operator that owns the expressions finds the lowest
/// *selected* errored row, emits the rows before it (exactly what the scalar
/// engine would have produced before failing), stores the scalar twin's
/// Status, and Fails with it on the next NextBatch call. Deferring the Fail
/// keeps LIMIT semantics identical to volcano: if the consumer stops pulling
/// before the error row would have been reached, no error surfaces — same as
/// a volcano pipeline that never evaluates that row.
class VecOperator : public Operator {
 public:
  /// Produces the next batch. Returns false at end of stream (or on error —
  /// check FirstError()). Mirrors Operator::Next's tracing wrapper;
  /// next_calls() counts batches for vectorized operators.
  bool NextBatch(Batch* out) {
    if (!tracing_) return NextBatchImpl(out);
    Timer t;
    bool more = NextBatchImpl(out);
    elapsed_us_ += t.ElapsedMicros();
    ++next_calls_;
    return more;
  }

 protected:
  void OpenImpl() final {
    drain_.Clear();
    drain_pos_ = 0;
    drain_valid_ = false;
    VecOpenImpl();
  }

  /// Row-at-a-time view for row parents: drains batches internally. Calls
  /// NextBatchImpl directly (not NextBatch) so traced time is not counted
  /// twice, and does not bump rows_produced_ — NextBatchImpl already counts
  /// the batch's rows.
  bool NextImpl(Tuple* out) final {
    for (;;) {
      if (drain_valid_ && drain_pos_ < drain_.ActiveCount()) {
        *out = drain_.MaterializeRow(drain_.ActiveRow(drain_pos_++));
        return true;
      }
      drain_valid_ = NextBatchImpl(&drain_);
      drain_pos_ = 0;
      if (!drain_valid_) return false;
    }
  }

  virtual void VecOpenImpl() = 0;
  virtual bool NextBatchImpl(Batch* out) = 0;

  /// Pulls one batch from `child`, whichever protocol it speaks: vectorized
  /// children hand over their batch; row children are drained up to
  /// kBatchRows rows into generic columns. Returns false at end of stream.
  bool FetchChildBatch(Operator* child, Batch* out);

 private:
  Batch drain_;
  size_t drain_pos_ = 0;
  bool drain_valid_ = false;
};

/// Sequential scan with every local predicate fused in: builds typed column
/// batches straight from the table and refines a selection vector per filter,
/// so no surviving row is ever copied before the consumer.
class VecScanOp : public VecOperator {
 public:
  /// `used_cols` is the planner's column-pruning mask (empty = materialize
  /// everything): columns with a 0 slot become all-NULL placeholder columns
  /// the statement provably never reads. `cache` (optional) supplies
  /// slot-major column mirrors; columns it covers are gathered from
  /// contiguous arrays instead of extracted tuple by tuple.
  VecScanOp(const Table* table, std::string effective_name,
            std::vector<VecExpr> filters, std::vector<BoundExpr> scalar_filters,
            std::vector<std::string> filter_texts,
            std::vector<uint8_t> used_cols = {}, ColumnCache* cache = nullptr);
  std::string Name() const override;

 protected:
  void VecOpenImpl() override;
  bool NextBatchImpl(Batch* out) override;

 private:
  const Table* table_;
  std::string label_;
  std::vector<VecExpr> filters_;
  std::vector<BoundExpr> scalar_filters_;  ///< twins, for exact error Statuses
  std::vector<std::string> filter_texts_;
  RowId cursor_ = 0;
  Status deferred_;  ///< error to surface once the rows before it are emitted
  /// Indices of the columns to materialize (from the pruning mask).
  std::vector<size_t> active_cols_;
  std::vector<uint8_t> used_cols_;
  ColumnCache* cache_ = nullptr;
  /// Per table column: the slot-major mirror to gather from (null = extract
  /// from the row store). Resolved per execution in VecOpenImpl so a
  /// prepared statement re-executed after DML picks up a fresh mirror.
  std::vector<std::shared_ptr<const MirrorColumn>> cached_cols_;
  /// The active columns without a mirror — the row-major extraction set.
  std::vector<size_t> row_cols_;
  /// Cached slot-major liveness bitmap (null = per-slot chain walk); only
  /// resolved when row_cols_ is empty, and honored per batch — for morsels
  /// whose stamp is fresh and which are quiescent for the snapshot.
  std::shared_ptr<const LivenessMap> liveness_;
  /// Whole-table fast path: the table is quiescent for the snapshot and every
  /// resolved source is fully stamped at the current data version, so every
  /// batch may use the mirrors without per-morsel checks.
  bool table_quiescent_ = false;
  std::vector<RowId> scratch_live_;
  std::vector<const Tuple*> scratch_rows_;  ///< visible tuple per live slot
  /// One dictionary index per table column (string columns use theirs);
  /// hoisted so the steady-state scan loop performs no allocations.
  std::vector<std::unordered_map<std::string, int32_t>> scratch_dicts_;
  std::vector<uint32_t> scratch_sel_;
};

/// Morsel-parallel vectorized scan: workers claim kMorselRows-slot morsels
/// and build the same batch windows the serial VecScanOp would (kMorselRows
/// is a multiple of kBatchRows), then batches stream in morsel order — so
/// row order, and the first error surfaced, are identical to the serial scan
/// at any dop.
class VecParallelScanOp : public VecOperator {
 public:
  VecParallelScanOp(const Table* table, std::string effective_name,
                    std::vector<VecExpr> filters,
                    std::vector<BoundExpr> scalar_filters,
                    std::vector<std::string> filter_texts,
                    std::vector<uint8_t> used_cols, ColumnCache* cache,
                    ParallelContext ctx);
  std::string Name() const override;

 protected:
  void VecOpenImpl() override;
  bool NextBatchImpl(Batch* out) override;
  void CloseImpl() override;

 private:
  const Table* table_;
  std::string label_;
  std::vector<VecExpr> filters_;
  std::vector<BoundExpr> scalar_filters_;
  std::vector<std::string> filter_texts_;
  std::vector<size_t> active_cols_;  ///< columns to materialize (shared, const)
  std::vector<uint8_t> used_cols_;
  ColumnCache* cache_ = nullptr;
  /// Mirrors + row-extraction set, resolved once per execution; workers read
  /// them concurrently (shared_ptr copies are not needed — the vector lives
  /// for the whole scan).
  std::vector<std::shared_ptr<const MirrorColumn>> cached_cols_;
  std::vector<size_t> row_cols_;
  std::shared_ptr<const LivenessMap> liveness_;
  bool table_quiescent_ = false;
  ParallelContext ctx_;
  std::vector<std::vector<Batch>> morsels_;  ///< buffered batches, per morsel
  size_t morsel_cursor_ = 0;
  size_t batch_cursor_ = 0;
  Status deferred_;
};

/// Predicate filter over batches: refines the child's selection vector in
/// place — no row data moves.
class VecFilterOp : public VecOperator {
 public:
  VecFilterOp(std::unique_ptr<Operator> child, VecExpr predicate,
              BoundExpr scalar_predicate, std::string predicate_text);
  std::string Name() const override { return "VecFilter(" + text_ + ")"; }

 protected:
  void VecOpenImpl() override {
    deferred_ = Status::OK();
    children_[0]->Open();
  }
  bool NextBatchImpl(Batch* out) override;
  void CloseImpl() override { children_[0]->Close(); }

 private:
  VecExpr predicate_;
  BoundExpr scalar_predicate_;
  std::string text_;
  Status deferred_;
  VecColumn pred_scratch_;
  std::vector<uint32_t> sel_scratch_;
};

/// Computes output columns from expressions over the child batch; the child's
/// selection vector carries through.
class VecProjectOp : public VecOperator {
 public:
  VecProjectOp(std::unique_ptr<Operator> child, std::vector<VecExpr> exprs,
               std::vector<BoundExpr> scalar_exprs,
               std::vector<OutputCol> out_schema);
  std::string Name() const override { return "VecProject"; }

 protected:
  void VecOpenImpl() override {
    deferred_ = Status::OK();
    children_[0]->Open();
  }
  bool NextBatchImpl(Batch* out) override;
  void CloseImpl() override { children_[0]->Close(); }

 private:
  std::vector<VecExpr> exprs_;
  std::vector<BoundExpr> scalar_exprs_;
  Status deferred_;
  Batch input_;
};

/// Hash join consuming and producing batches; build side is the right child,
/// inserted in stream order so match order — and thus row order — equals the
/// volcano HashJoinOp's.
class VecHashJoinOp : public VecOperator {
 public:
  VecHashJoinOp(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
                size_t left_key, size_t right_key);
  std::string Name() const override { return "VecHashJoin"; }

 protected:
  void VecOpenImpl() override;
  bool NextBatchImpl(Batch* out) override;
  void CloseImpl() override;

 private:
  size_t left_key_, right_key_;
  std::vector<Tuple> build_rows_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> build_;
  Batch probe_;
  bool probe_valid_ = false;
  size_t probe_pos_ = 0;
  Tuple probe_tuple_;
  Value probe_key_;
  const std::vector<uint32_t>* matches_ = nullptr;
  size_t match_cursor_ = 0;
};

/// Hash aggregation over batches. Keys and arguments evaluate column-wise;
/// rows fold in batch order through the same GroupMap the serial operator
/// uses (same key hashing, same insertion sequence), so group output order is
/// identical to HashAggregateOp's. A no-key aggregate skips the group map
/// entirely and folds into one state.
class VecHashAggregateOp : public VecOperator {
 public:
  /// `args` parallels `aggs`: slot i is the vectorized twin of aggs[i].arg
  /// (a default VecExpr placeholder when aggs[i] is COUNT(*)).
  VecHashAggregateOp(std::unique_ptr<Operator> child, std::vector<VecExpr> keys,
                     std::vector<BoundExpr> scalar_keys,
                     std::vector<OutputCol> key_cols, std::vector<AggSpec> aggs,
                     std::vector<VecExpr> args);
  std::string Name() const override { return "VecHashAggregate"; }

 protected:
  void VecOpenImpl() override;
  bool NextBatchImpl(Batch* out) override;
  void CloseImpl() override { children_[0]->Close(); }

 private:
  /// The scalar Status for the aggregate error at physical row r of `in`
  /// (keys in order, then arguments in order — the volcano evaluation order).
  Status ScalarErrorAt(const Batch& in, size_t r) const;

  std::vector<VecExpr> keys_;
  std::vector<BoundExpr> scalar_keys_;
  std::vector<AggSpec> aggs_;
  std::vector<VecExpr> args_;  ///< arg expression per agg (placeholder if none)
  std::vector<Tuple> results_;
  size_t cursor_ = 0;
};

}  // namespace aidb::exec
