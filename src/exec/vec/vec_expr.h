#pragma once

#include <memory>
#include <vector>

#include "exec/vec/batch.h"
#include "sql/ast.h"

namespace aidb::exec {

/// \brief Expression compiled for batch-at-a-time evaluation.
///
/// Mirrors BoundExpr node for node, but every node evaluates a whole column
/// with tight typed kernels (see vec_expr.cc for the kernel dispatch). The
/// semantics contract is bit-for-bit equality with the scalar path:
///
///   - Per-row failures (INT64 overflow, arithmetic on a string) do not abort
///     the kernel; the row is nulled and its `err` bit set. The consuming
///     operator finds the lowest *selected* errored row and re-runs the
///     scalar twin (the BoundExpr it keeps next to this VecExpr) on that one
///     row, so the surfaced Status is the scalar engine's, byte for byte —
///     including the lhs-before-rhs evaluation order inside one row, which
///     the scalar path defines.
///   - Everything else (Kleene AND/OR/NOT, NULL-before-type-check, numeric
///     coercion in comparisons, DOUBLE division, PREDICT featurization)
///     matches exec/expr.cc; the generic fallback kernels literally call
///     ApplyBinaryOp/ApplyUnaryOp per row.
///
/// Bind errors are not a concern here: planners bind the scalar twin first,
/// so any name-resolution error surfaces from BoundExpr::Bind with the
/// canonical text, and this binder only runs on expressions that already
/// bound cleanly.
class VecExpr {
 public:
  static Result<VecExpr> Bind(const sql::Expr& expr,
                              const std::vector<OutputCol>& schema,
                              const ModelResolver* models = nullptr);

  /// Evaluates over all physical rows of `in` (cheaper than gathering by the
  /// selection vector), except PREDICT nodes, which run the model only on
  /// selected rows — inference is the one per-row cost worth masking, and it
  /// keeps model-side counters identical to the scalar engine's.
  VecColumn Eval(const Batch& in) const;

  /// Zero-copy variant: a bare column reference returns the batch's own
  /// column; anything else evaluates into *scratch. The reference is valid
  /// while both `in` and *scratch live and is what the hot operators use —
  /// Eval on a column ref would memcpy the whole column per batch.
  const VecColumn& EvalRef(const Batch& in, VecColumn* scratch) const;

  /// Matches the `column <cmp> literal` shape (either operand order; the
  /// operator is flipped when the literal is on the left, so the caller
  /// always sees column-on-the-left form). This is the fused-filter fast
  /// path: comparisons cannot error, so a matching predicate can refine the
  /// selection vector in one pass without materializing any column.
  bool MatchColCmpLit(int* col, sql::OpType* op, Value* lit) const;

 private:
  enum class Kind { kLiteral, kColumn, kBinary, kUnary, kPredict };

  Kind kind_ = Kind::kLiteral;
  Value literal_;
  int column_ = -1;
  sql::OpType op_ = sql::OpType::kEq;
  std::shared_ptr<VecExpr> lhs_, rhs_;
  std::vector<VecExpr> args_;
  PredictFn predict_;
};

}  // namespace aidb::exec
