#include "exec/vec/vec_ops.h"

#include <algorithm>

#include "exec/vec/col_cache.h"

namespace aidb::exec {

// The parallel scan builds the same absolute batch windows the serial scan
// does, just grouped two-per-morsel; this is what makes their row streams —
// and first errors — identical.
static_assert(kMorselRows % kBatchRows == 0,
              "morsels must be a whole number of batches");

// The per-batch freshness gate identifies batch window [begin, begin +
// kBatchRows) with table morsel begin / Table::kMorselRows; that only works
// if the two windows coincide exactly.
static_assert(kBatchRows == Table::kMorselRows,
              "a batch window must be exactly one table morsel");

namespace {

/// The resolved inputs of one scan execution, bundled so BuildScanBatch can
/// decide per batch whether the mirrors are trustworthy. `cached` and
/// `row_cols` partition the active columns at resolve time; `liveness` is
/// only set when `row_cols` is empty. `table_quiescent` short-circuits the
/// per-morsel checks: the table was quiescent for the snapshot and every
/// source fully stamped at the current data version when the scan opened.
struct ScanSources {
  const std::vector<std::shared_ptr<const MirrorColumn>>* cached;
  const std::vector<size_t>* row_cols;
  const LivenessMap* liveness;
  bool table_quiescent;
};

/// ValueIsTrue over a column row without materializing a Value.
bool TruthAt(const VecColumn& c, size_t r) {
  switch (c.kind) {
    case VecColumn::Kind::kNull:
      return false;
    case VecColumn::Kind::kInt:
      return c.valid[r] && c.ints[r] != 0;
    case VecColumn::Kind::kDouble:
      return c.valid[r] && c.doubles[r] != 0.0;
    case VecColumn::Kind::kString:
      return c.valid[r] && !c.dict[static_cast<size_t>(c.codes[r])].empty();
    case VecColumn::Kind::kGeneric:
      return !c.generic[r].is_null() && ValueIsTrue(c.generic[r]);
  }
  return false;
}

/// Refines b's selection by the predicate column. On the first errored
/// selected row, records it in *pending and truncates the selection to the
/// rows before it — rows the scalar engine would have emitted before dying.
/// *scratch is reusable storage for the survivor list.
void RefineSelection(const VecColumn& pred, Batch* b, size_t* pending,
                     std::vector<uint32_t>* scratch) {
  std::vector<uint32_t>& kept = *scratch;
  kept.clear();
  const size_t n = b->ActiveCount();
  for (size_t s = 0; s < n; ++s) {
    uint32_t r = b->ActiveRow(s);
    if (pred.err[r]) {
      *pending = r;
      break;
    }
    if (TruthAt(pred, r)) kept.push_back(r);
  }
  b->sel.swap(kept);
  b->has_sel = true;
}

/// One-pass fused path for `column <cmp> numeric-literal` predicates over a
/// typed numeric column: refines the selection directly — no predicate
/// column, no allocation, and no error handling needed (comparisons cannot
/// fail, and scan-built columns carry no upstream errors). Comparison runs
/// in double space, exactly like Value::Compare and CompareKernel. Returns
/// false when the shape or runtime column kind does not match.
bool TryFusedCompare(const VecExpr& f, Batch* b,
                     std::vector<uint32_t>* scratch) {
  int col = -1;
  sql::OpType op = sql::OpType::kEq;
  Value lit;
  if (!f.MatchColCmpLit(&col, &op, &lit)) return false;
  if (lit.type() != ValueType::kInt && lit.type() != ValueType::kDouble) {
    return false;
  }
  const VecColumn& c = b->cols[static_cast<size_t>(col)];
  const bool is_int = c.kind == VecColumn::Kind::kInt;
  if (!is_int && c.kind != VecColumn::Kind::kDouble) return false;
  if (c.has_err) return false;

  const double x = lit.AsDouble();
  const int64_t* iv = is_int ? c.ints.data() : nullptr;
  const double* dv = is_int ? nullptr : c.doubles.data();
  const uint8_t* valid = c.valid.data();
  std::vector<uint32_t>& kept = *scratch;
  kept.clear();
  const size_t n = b->ActiveCount();
  auto refine = [&](auto cmp) {
    for (size_t s = 0; s < n; ++s) {
      uint32_t r = b->ActiveRow(s);
      double a = is_int ? static_cast<double>(iv[r]) : dv[r];
      if (valid[r] && cmp(a)) kept.push_back(r);
    }
  };
  switch (op) {
    case sql::OpType::kEq: refine([x](double a) { return a == x; }); break;
    case sql::OpType::kNe: refine([x](double a) { return a != x; }); break;
    case sql::OpType::kLt: refine([x](double a) { return a < x; }); break;
    case sql::OpType::kLe: refine([x](double a) { return a <= x; }); break;
    case sql::OpType::kGt: refine([x](double a) { return a > x; }); break;
    case sql::OpType::kGe: refine([x](double a) { return a >= x; }); break;
    default: return false;
  }
  b->sel.swap(kept);
  b->has_sel = true;
  return true;
}

/// Builds the batch for slot window [begin, begin + kBatchRows), compacting
/// live rows densely. One row-major pass over the row store: each live tuple
/// is fetched once and its values fan out to the typed columns. A value that
/// breaks a column's static typing (legal — e.g. an INT value stored in a
/// DOUBLE column) demotes that column to exact Value storage mid-pass.
/// Only the columns listed in `active` are materialized; the rest become
/// kNull placeholder columns the planner proved unreachable (see
/// RelationInfo::used_columns). Columns with a slot in `cached` gather from
/// that slot-major mirror (contiguous arrays, no tuple access); `row_active`
/// lists the remaining active columns, which take the row-major extraction
/// pass. `dicts` is per-table-column dictionary-index scratch (string
/// columns use theirs); `out`'s storage is reused across calls, so the
/// steady state allocates nothing.
///
/// Mirror trust is decided per batch. The batch window IS one table morsel
/// (static_assert above), so one freshness check covers it: the morsel must
/// be quiescent for `snap` (no uncommitted version touches it, nothing in it
/// committed past the snapshot's read timestamp) and every active mirrored
/// column's build stamp must still equal the live Table::MorselVersion.
/// Under those two conditions the mirror's latest-committed bytes ARE the
/// snapshot's bytes for this morsel. `src.table_quiescent` short-circuits
/// the check — the whole-table fast path of a quiescent, fully-stamped scan.
/// A batch that fails the gate falls back to the row-major version-chain
/// walk for every active column — the path that honors the session's own
/// uncommitted writes and foreign in-flight commits exactly.
///
/// `src.liveness`, when fresh for the morsel (same gate, plus its own
/// stamp), replaces the per-slot chain walk with a byte test. It is only
/// honored when no column takes the row-major pass — the bitmap path never
/// fetches tuples, and the row-major pass needs the snapshot-resolved tuple
/// pointer.
void BuildScanBatch(
    const Table& table, const txn::Snapshot& snap, RowId begin, Batch* out,
    std::vector<RowId>* live, std::vector<const Tuple*>* rows,
    std::vector<std::unordered_map<std::string, int32_t>>* dicts,
    const std::vector<size_t>& active, const ScanSources& src) {
  const auto& cols = table.schema().columns();
  const size_t width = cols.size();
  out->ResetForWidth(width);
  dicts->resize(width);
  live->clear();
  rows->clear();
  RowId limit = std::min<RowId>(begin + kBatchRows, table.NumSlots());

  // Per-batch freshness gate (see the function comment). `fresh` means the
  // mirrors resolved at open time are byte-correct for this snapshot over
  // this batch's morsel.
  const size_t morsel = static_cast<size_t>(begin) / Table::kMorselRows;
  bool fresh = src.table_quiescent;
  if (!fresh && table.MorselQuiescentFor(morsel, snap)) {
    fresh = true;
    const uint64_t mv = table.MorselVersion(morsel);
    for (size_t c : active) {
      const MirrorColumn* mc =
          c < src.cached->size() ? (*src.cached)[c].get() : nullptr;
      if (mc == nullptr) continue;  // row-extracted anyway
      if (morsel >= mc->morsel_versions.size() ||
          mc->morsel_versions[morsel] != mv) {
        fresh = false;
        break;
      }
    }
  }
  const std::vector<size_t>& row_active = fresh ? *src.row_cols : active;
  const bool use_bitmap =
      fresh && row_active.empty() && src.liveness != nullptr &&
      (src.table_quiescent ||
       (morsel < src.liveness->morsel_versions.size() &&
        src.liveness->morsel_versions[morsel] == table.MorselVersion(morsel)));

  if (use_bitmap) {
    // Fast liveness: slots past the bitmap were appended after it was
    // stamped, so their versions carry timestamps past the snapshot — the
    // clamp skips exactly the rows the chain walk would reject.
    RowId lim = std::min<RowId>(limit, src.liveness->live.size());
    const uint8_t* lv = src.liveness->live.data();
    for (RowId id = begin; id < lim; ++id) {
      if (lv[id]) live->push_back(id);
    }
  } else {
    for (RowId id = begin; id < limit; ++id) {
      // One chain walk resolves both the visibility test and the tuple the
      // row-major pass reads (versions are immutable once published).
      const Tuple* row = table.VisibleAt(id, snap);
      if (row != nullptr) {
        live->push_back(id);
        rows->push_back(row);
      }
    }
  }
  const size_t n = live->size();
  out->rows = n;
  if (n == 0) return;
  size_t next_active = 0;  // `active` is ascending: merge against [0, width)
  for (size_t c = 0; c < width; ++c) {
    if (next_active >= active.size() || active[next_active] != c) {
      out->cols[c].Resize(VecColumn::Kind::kNull, n);
      continue;
    }
    ++next_active;
    const MirrorColumn* mc =
        fresh && c < src.cached->size() ? (*src.cached)[c].get() : nullptr;
    const VecColumn* cc = mc != nullptr ? &mc->col : nullptr;
    if (cc != nullptr) {
      // Gather from the mirror: exactly the values + validity the row-major
      // pass would extract, read from contiguous arrays.
      VecColumn& dst = out->cols[c];
      dst.Resize(cc->kind, n);
      if (cc->kind == VecColumn::Kind::kInt) {
        for (size_t i = 0; i < n; ++i) {
          RowId r = (*live)[i];
          dst.ints[i] = cc->ints[r];
          dst.valid[i] = cc->valid[r];
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          RowId r = (*live)[i];
          dst.doubles[i] = cc->doubles[r];
          dst.valid[i] = cc->valid[r];
        }
      }
      continue;
    }
    switch (cols[c].type) {
      case ValueType::kInt:
        out->cols[c].Resize(VecColumn::Kind::kInt, n);
        break;
      case ValueType::kDouble:
        out->cols[c].Resize(VecColumn::Kind::kDouble, n);
        break;
      case ValueType::kString:
        out->cols[c].Resize(VecColumn::Kind::kString, n);
        (*dicts)[c].clear();
        break;
      default:
        out->cols[c].Resize(VecColumn::Kind::kGeneric, n);
        break;
    }
  }
  if (row_active.empty()) return;
  for (size_t i = 0; i < n; ++i) {
    const Tuple& row = *(*rows)[i];
    for (size_t c : row_active) {
      const Value& v = row[c];
      if (v.is_null()) continue;  // slots start zeroed/NULL
      VecColumn& col = out->cols[c];
      switch (col.kind) {
        case VecColumn::Kind::kInt:
          if (v.type() == ValueType::kInt) {
            col.ints[i] = v.AsInt();
            col.valid[i] = 1;
          } else {
            col.DemoteToGeneric(i);
            col.generic[i] = v;
          }
          break;
        case VecColumn::Kind::kDouble:
          if (v.type() == ValueType::kDouble) {
            col.doubles[i] = v.AsDouble();
            col.valid[i] = 1;
          } else {
            col.DemoteToGeneric(i);
            col.generic[i] = v;
          }
          break;
        case VecColumn::Kind::kString:
          if (v.type() == ValueType::kString) {
            auto [it, inserted] = (*dicts)[c].emplace(
                v.AsString(), static_cast<int32_t>(col.dict.size()));
            if (inserted) col.dict.push_back(v.AsString());
            col.codes[i] = it->second;
            col.valid[i] = 1;
          } else {
            col.DemoteToGeneric(i);
            col.generic[i] = v;
          }
          break;
        default:
          col.generic[i] = v;
          break;
      }
    }
  }
}

/// Applies the fused filters in sequence, refining b's selection. A non-OK
/// return is the deferred error: b is already truncated to the rows the
/// scalar engine would have emitted first, and the Status is recovered by
/// running the scalar filter chain on the failing row — byte-equal text.
Status ApplyFusedFilters(const std::vector<VecExpr>& filters,
                         const std::vector<BoundExpr>& scalar_filters, Batch* b,
                         std::vector<uint32_t>* sel_scratch) {
  size_t pending = SIZE_MAX;
  for (const auto& f : filters) {
    if (!TryFusedCompare(f, b, sel_scratch)) {
      VecColumn scratch;
      const VecColumn& pred = f.EvalRef(*b, &scratch);
      RefineSelection(pred, b, &pending, sel_scratch);
    }
    // No survivors: the scalar engine would never evaluate later filters.
    if (b->sel.empty()) break;
  }
  if (pending == SIZE_MAX) return Status::OK();
  Tuple row = b->MaterializeRow(static_cast<uint32_t>(pending));
  for (const auto& f : scalar_filters) {
    Result<bool> keep = f.EvalBool(row);
    if (!keep.ok()) return keep.status();
  }
  return Status::Internal("vectorized filter error not reproduced by scalar filter");
}

/// Cold-tier zone-map gate for one batch window [begin, begin+kBatchRows):
/// when every slot of the window is dead or paged out to the LSM cold tier,
/// the per-block zone maps can refute a fused `col <cmp> lit` filter for the
/// whole window without decoding a single block — the batch is skipped.
///
/// Parity argument: paged slots are frozen (visible to every snapshot) and
/// dead slots emit nothing, so the cold tier fully describes the window's
/// visible rows. Filters are walked in serial order; pruning is only allowed
/// through a prefix of provably error-free comparisons (numeric schema
/// column vs numeric literal — the fused kernel shapes), so a skipped window
/// can never swallow an error an earlier filter would have raised. kNe is
/// never refutable by min/max bounds and just passes through.
bool ZoneMapPruned(const Table& table, const std::vector<VecExpr>& filters,
                   RowId begin) {
  ColdTier* cold = table.cold_tier();
  if (cold == nullptr || filters.empty()) return false;
  const size_t m = begin / Table::kMorselRows;
  if (table.MorselPagedCount(m) == 0) return false;
  const RowId end = std::min<RowId>(begin + kBatchRows, table.NumSlots());
  if (!table.RangeAllColdOrDead(begin, end)) return false;
  for (const VecExpr& f : filters) {
    int col = -1;
    sql::OpType op = sql::OpType::kEq;
    Value lit;
    // Any filter outside the error-free comparison shape ends the prefix:
    // it could error on a row, so later refutations must not skip it.
    if (!f.MatchColCmpLit(&col, &op, &lit)) return false;
    if (lit.type() != ValueType::kInt && lit.type() != ValueType::kDouble) {
      return false;
    }
    ValueType ct = table.schema().column(static_cast<size_t>(col)).type;
    if (ct != ValueType::kInt && ct != ValueType::kDouble) return false;
    ColdTier::Cmp cmp;
    switch (op) {
      case sql::OpType::kEq: cmp = ColdTier::Cmp::kEq; break;
      case sql::OpType::kLt: cmp = ColdTier::Cmp::kLt; break;
      case sql::OpType::kLe: cmp = ColdTier::Cmp::kLe; break;
      case sql::OpType::kGt: cmp = ColdTier::Cmp::kGt; break;
      case sql::OpType::kGe: cmp = ColdTier::Cmp::kGe; break;
      default: continue;  // kNe: error-free but min/max can never refute it
    }
    if (!cold->ColdRangeMayMatch(begin, end, static_cast<size_t>(col), cmp,
                                 lit.AsDouble())) {
      return true;
    }
  }
  return false;
}

}  // namespace

// ----- VecOperator -----

bool VecOperator::FetchChildBatch(Operator* child, Batch* out) {
  if (auto* vec = dynamic_cast<VecOperator*>(child)) {
    return vec->NextBatch(out);
  }
  // Row child: drain up to one batch of rows into generic columns.
  out->Clear();
  const size_t width = child->output().size();
  out->cols.resize(width);
  for (auto& c : out->cols) c.kind = VecColumn::Kind::kGeneric;
  size_t n = 0;
  Tuple row;
  while (n < kBatchRows && child->Next(&row)) {
    for (size_t c = 0; c < width; ++c) {
      out->cols[c].generic.push_back(std::move(row[c]));
    }
    ++n;
  }
  if (n == 0) return false;
  for (auto& c : out->cols) {
    c.rows = n;
    c.err.assign(n, 0);
  }
  out->rows = n;
  return true;
}

// ----- VecScan -----

/// Expands a pruning mask into the ascending list of columns to materialize;
/// an empty (or short) mask means every column.
static std::vector<size_t> ActiveColumns(const Table& table,
                                         const std::vector<uint8_t>& used) {
  const size_t width = table.schema().columns().size();
  std::vector<size_t> active;
  active.reserve(width);
  for (size_t c = 0; c < width; ++c) {
    if (used.size() != width || used[c]) active.push_back(c);
  }
  return active;
}

/// Resolves the slot-major mirrors for one execution: slot c of `cached` is
/// set for active columns the cache covers; `row_cols` collects the rest —
/// the columns the row-major extraction pass must still materialize.
/// Mirrors are resolved whenever a cache is present — even on a table with
/// in-flight writers — because trust is decided per batch against the
/// per-morsel stamps (see BuildScanBatch). `table_quiescent` reports the
/// whole-table fast path: the table is quiescent for `snap` AND every
/// resolved source is fully stamped at the current data version, in which
/// case every batch may skip the per-morsel checks — exactly the pre-stamp
/// behavior of a quiescent-table scan.
static void ResolveMirrors(
    ColumnCache* cache, const Table& table, const txn::Snapshot& snap,
    const std::vector<size_t>& active,
    std::vector<std::shared_ptr<const MirrorColumn>>* cached,
    std::vector<size_t>* row_cols,
    std::shared_ptr<const LivenessMap>* liveness, bool* table_quiescent) {
  cached->assign(table.schema().NumColumns(), nullptr);
  row_cols->clear();
  liveness->reset();
  *table_quiescent = false;
  if (cache == nullptr) {
    *row_cols = active;
    return;
  }
  bool all_fresh = true;
  for (size_t c : active) {
    std::shared_ptr<const MirrorColumn> cc = cache->Get(table, c);
    if (cc != nullptr) {
      if (!cc->fully_stamped || cc->stamped_at != table.data_version()) {
        all_fresh = false;  // per-morsel stamps still salvage fresh morsels
      }
      (*cached)[c] = std::move(cc);
    } else {
      row_cols->push_back(c);
    }
  }
  // With every active column mirrored (trivially so for a column-free scan,
  // e.g. COUNT(*)), no tuple is ever fetched — the cached liveness bitmap
  // then replaces the per-slot version-chain walk too.
  if (row_cols->empty()) {
    *liveness = cache->GetLiveness(table);
    if (*liveness != nullptr && (!(*liveness)->fully_stamped ||
                                 (*liveness)->stamped_at !=
                                     table.data_version())) {
      all_fresh = false;
    }
  }
  *table_quiescent = all_fresh && table.QuiescentFor(snap);
}

VecScanOp::VecScanOp(const Table* table, std::string effective_name,
                     std::vector<VecExpr> filters,
                     std::vector<BoundExpr> scalar_filters,
                     std::vector<std::string> filter_texts,
                     std::vector<uint8_t> used_cols, ColumnCache* cache)
    : table_(table),
      label_(std::move(effective_name)),
      filters_(std::move(filters)),
      scalar_filters_(std::move(scalar_filters)),
      filter_texts_(std::move(filter_texts)),
      active_cols_(ActiveColumns(*table, used_cols)),
      used_cols_(std::move(used_cols)),
      cache_(cache) {
  for (const auto& col : table->schema().columns()) {
    output_.push_back({label_, col.name, col.type});
  }
}

std::string VecScanOp::Name() const {
  std::string name = "VecScan(" + label_;
  for (const auto& t : filter_texts_) name += ", filter=" + t;
  return name + ")";
}

void VecScanOp::VecOpenImpl() {
  cursor_ = 0;
  deferred_ = Status::OK();
  ResolveMirrors(cache_, *table_, snap_, active_cols_, &cached_cols_,
                 &row_cols_, &liveness_, &table_quiescent_);
}

bool VecScanOp::NextBatchImpl(Batch* out) {
  if (!deferred_.ok()) return Fail(std::move(deferred_));
  for (;;) {
    if (cursor_ >= table_->NumSlots()) return false;
    // Cancellation latency is bounded by one batch, the vectorized analogue
    // of SeqScan's strided poll.
    if (IsCancelled()) {
      return Fail(Status::Cancelled("query cancelled during scan"));
    }
    RowId begin = cursor_;
    cursor_ += kBatchRows;
    if (ZoneMapPruned(*table_, filters_, begin)) continue;
    ScanSources src{&cached_cols_, &row_cols_, liveness_.get(),
                    table_quiescent_};
    BuildScanBatch(*table_, snap_, begin, out, &scratch_live_, &scratch_rows_,
                   &scratch_dicts_, active_cols_, src);
    if (out->rows == 0) continue;
    Status s = ApplyFusedFilters(filters_, scalar_filters_, out, &scratch_sel_);
    size_t active = out->ActiveCount();
    if (!s.ok()) {
      if (active == 0) return Fail(std::move(s));
      deferred_ = std::move(s);
      rows_produced_ += active;
      return true;
    }
    if (active == 0) continue;
    rows_produced_ += active;
    return true;
  }
}

// ----- VecParallelScan -----

VecParallelScanOp::VecParallelScanOp(const Table* table,
                                     std::string effective_name,
                                     std::vector<VecExpr> filters,
                                     std::vector<BoundExpr> scalar_filters,
                                     std::vector<std::string> filter_texts,
                                     std::vector<uint8_t> used_cols,
                                     ColumnCache* cache, ParallelContext ctx)
    : table_(table),
      label_(std::move(effective_name)),
      filters_(std::move(filters)),
      scalar_filters_(std::move(scalar_filters)),
      filter_texts_(std::move(filter_texts)),
      active_cols_(ActiveColumns(*table, used_cols)),
      used_cols_(std::move(used_cols)),
      cache_(cache),
      ctx_(ctx) {
  for (const auto& col : table->schema().columns()) {
    output_.push_back({label_, col.name, col.type});
  }
}

std::string VecParallelScanOp::Name() const {
  std::string name = "VecParallelScan(" + label_;
  for (const auto& t : filter_texts_) name += ", filter=" + t;
  return name + ", dop=" + std::to_string(ctx_.dop) + ")";
}

void VecParallelScanOp::VecOpenImpl() {
  morsel_cursor_ = 0;
  batch_cursor_ = 0;
  deferred_ = Status::OK();
  size_t slots = table_->NumSlots();
  size_t n = (slots + kMorselRows - 1) / kMorselRows;
  morsels_.assign(n, {});
  worker_rows_.assign(ctx_.WorkersFor(n), 0);
  // Resolve mirrors once, before dispatch: workers read the shared vectors
  // concurrently but never write them.
  ResolveMirrors(cache_, *table_, snap_, active_cols_, &cached_cols_,
                 &row_cols_, &liveness_, &table_quiescent_);
  // One status slot per morsel; the lowest-numbered failing morsel's error is
  // the one the serial scan would hit first.
  std::vector<Status> morsel_status(n);
  DispatchMorsels(ctx_, n, cancel_,
                  [this, slots, &morsel_status](size_t w, size_t m) {
    std::vector<RowId> live;
    std::vector<const Tuple*> rows;
    std::vector<std::unordered_map<std::string, int32_t>> dicts;
    std::vector<uint32_t> sel_scratch;
    RowId mbegin = static_cast<RowId>(m) * kMorselRows;
    RowId mend = std::min<RowId>(mbegin + kMorselRows, slots);
    ScanSources src{&cached_cols_, &row_cols_, liveness_.get(),
                    table_quiescent_};
    for (RowId b = mbegin; b < mend; b += kBatchRows) {
      if (ZoneMapPruned(*table_, filters_, b)) continue;
      Batch batch;
      BuildScanBatch(*table_, snap_, b, &batch, &live, &rows, &dicts,
                     active_cols_, src);
      if (batch.rows == 0) continue;
      Status s = ApplyFusedFilters(filters_, scalar_filters_, &batch, &sel_scratch);
      size_t active = batch.ActiveCount();
      worker_rows_[w] += active;  // distinct w per task: no shared writes
      if (active > 0) morsels_[m].push_back(std::move(batch));
      if (!s.ok()) {
        morsel_status[m] = std::move(s);
        return;  // the rest of this morsel is past the error row
      }
    }
  });
  if (IsCancelled()) {
    Fail(Status::Cancelled("query cancelled during parallel scan"));
    morsels_.clear();
    return;
  }
  for (size_t m = 0; m < n; ++m) {
    if (!morsel_status[m].ok()) {
      deferred_ = std::move(morsel_status[m]);
      // Batches past the failing morsel would never have existed serially;
      // the failing morsel's own batches are already truncated.
      morsels_.resize(m + 1);
      break;
    }
  }
}

bool VecParallelScanOp::NextBatchImpl(Batch* out) {
  while (morsel_cursor_ < morsels_.size()) {
    auto& bufs = morsels_[morsel_cursor_];
    if (batch_cursor_ < bufs.size()) {
      *out = std::move(bufs[batch_cursor_++]);
      rows_produced_ += out->ActiveCount();
      return true;
    }
    ++morsel_cursor_;
    batch_cursor_ = 0;
  }
  if (!deferred_.ok()) return Fail(std::move(deferred_));
  return false;
}

void VecParallelScanOp::CloseImpl() {
  morsels_.clear();
  morsels_.shrink_to_fit();
}

// ----- VecFilter -----

VecFilterOp::VecFilterOp(std::unique_ptr<Operator> child, VecExpr predicate,
                         BoundExpr scalar_predicate, std::string predicate_text)
    : predicate_(std::move(predicate)),
      scalar_predicate_(std::move(scalar_predicate)),
      text_(std::move(predicate_text)) {
  output_ = child->output();
  children_.push_back(std::move(child));
}

bool VecFilterOp::NextBatchImpl(Batch* out) {
  if (!deferred_.ok()) return Fail(std::move(deferred_));
  for (;;) {
    if (!FetchChildBatch(children_[0].get(), out)) return false;
    if (out->rows == 0) continue;
    size_t pending = SIZE_MAX;
    if (!TryFusedCompare(predicate_, out, &sel_scratch_)) {
      const VecColumn& pred = predicate_.EvalRef(*out, &pred_scratch_);
      RefineSelection(pred, out, &pending, &sel_scratch_);
    }
    size_t active = out->ActiveCount();
    if (pending != SIZE_MAX) {
      Result<bool> keep = scalar_predicate_.EvalBool(
          out->MaterializeRow(static_cast<uint32_t>(pending)));
      Status s = keep.ok() ? Status::Internal(
                                 "vectorized filter error not reproduced by "
                                 "scalar filter")
                           : keep.status();
      if (active == 0) return Fail(std::move(s));
      deferred_ = std::move(s);
      rows_produced_ += active;
      return true;
    }
    if (active == 0) continue;
    rows_produced_ += active;
    return true;
  }
}

// ----- VecProject -----

VecProjectOp::VecProjectOp(std::unique_ptr<Operator> child,
                           std::vector<VecExpr> exprs,
                           std::vector<BoundExpr> scalar_exprs,
                           std::vector<OutputCol> out_schema)
    : exprs_(std::move(exprs)), scalar_exprs_(std::move(scalar_exprs)) {
  output_ = std::move(out_schema);
  children_.push_back(std::move(child));
}

bool VecProjectOp::NextBatchImpl(Batch* out) {
  if (!deferred_.ok()) return Fail(std::move(deferred_));
  for (;;) {
    if (!FetchChildBatch(children_[0].get(), &input_)) return false;
    if (input_.rows == 0) continue;
    out->Clear();
    out->rows = input_.rows;
    out->has_sel = input_.has_sel;
    out->sel = input_.sel;
    out->cols.reserve(exprs_.size());
    for (const auto& e : exprs_) out->cols.push_back(e.Eval(input_));

    // Lowest selected errored row across the output columns: the first row
    // the scalar ProjectOp would have failed on.
    size_t err_row = SIZE_MAX;
    bool any_err = false;
    for (const auto& c : out->cols) any_err = any_err || c.has_err;
    if (any_err) {
      const size_t n = out->ActiveCount();
      for (size_t s = 0; s < n && err_row == SIZE_MAX; ++s) {
        uint32_t r = out->ActiveRow(s);
        for (const auto& c : out->cols) {
          if (c.err[r]) {
            err_row = r;
            break;
          }
        }
      }
    }
    if (err_row != SIZE_MAX) {
      // Expressions re-run scalarly in projection order on the failing row,
      // so intra-row error order matches volcano.
      Tuple row = input_.MaterializeRow(static_cast<uint32_t>(err_row));
      Status s = Status::Internal(
          "vectorized projection error not reproduced by scalar path");
      for (const auto& e : scalar_exprs_) {
        Result<Value> v = e.Eval(row);
        if (!v.ok()) {
          s = v.status();
          break;
        }
      }
      std::vector<uint32_t> kept;
      const size_t n = out->ActiveCount();
      for (size_t i = 0; i < n; ++i) {
        uint32_t r = out->ActiveRow(i);
        if (r >= err_row) break;
        kept.push_back(r);
      }
      out->sel = std::move(kept);
      out->has_sel = true;
      size_t active = out->ActiveCount();
      if (active == 0) return Fail(std::move(s));
      deferred_ = std::move(s);
      rows_produced_ += active;
      return true;
    }
    size_t active = out->ActiveCount();
    if (active == 0) continue;
    rows_produced_ += active;
    return true;
  }
}

// ----- VecHashJoin -----

VecHashJoinOp::VecHashJoinOp(std::unique_ptr<Operator> left,
                             std::unique_ptr<Operator> right, size_t left_key,
                             size_t right_key)
    : left_key_(left_key), right_key_(right_key) {
  output_ = left->output();
  for (const auto& c : right->output()) output_.push_back(c);
  children_.push_back(std::move(left));
  children_.push_back(std::move(right));
}

void VecHashJoinOp::VecOpenImpl() {
  children_[0]->Open();
  children_[1]->Open();
  build_.clear();
  build_rows_.clear();
  probe_valid_ = false;
  probe_pos_ = 0;
  matches_ = nullptr;
  match_cursor_ = 0;

  // Build rows insert in right-stream order, exactly like HashJoinOp, so the
  // per-hash match order — and thus output row order — is identical.
  Batch b;
  while (FetchChildBatch(children_[1].get(), &b)) {
    const size_t n = b.ActiveCount();
    for (size_t s = 0; s < n; ++s) {
      uint32_t r = b.ActiveRow(s);
      Value key = b.cols[right_key_].ValueAt(r);
      if (key.is_null()) continue;  // NULL never equi-joins
      build_[JoinKeyHash(key)].push_back(
          static_cast<uint32_t>(build_rows_.size()));
      build_rows_.push_back(b.MaterializeRow(r));
    }
  }
}

bool VecHashJoinOp::NextBatchImpl(Batch* out) {
  const size_t width = output_.size();
  const size_t left_width = children_[0]->output().size();
  out->Clear();
  out->cols.resize(width);
  for (auto& c : out->cols) c.kind = VecColumn::Kind::kGeneric;
  size_t count = 0;
  auto finalize = [&] {
    for (auto& c : out->cols) {
      c.rows = count;
      c.err.assign(count, 0);
    }
    out->rows = count;
    rows_produced_ += count;
  };
  for (;;) {
    if (matches_ != nullptr) {
      while (match_cursor_ < matches_->size()) {
        const Tuple& inner = build_rows_[(*matches_)[match_cursor_++]];
        // Re-check equality (hash collisions).
        if (inner[right_key_].Compare(probe_key_) != 0) continue;
        for (size_t i = 0; i < left_width; ++i) {
          out->cols[i].generic.push_back(probe_tuple_[i]);
        }
        for (size_t j = 0; j < inner.size(); ++j) {
          out->cols[left_width + j].generic.push_back(inner[j]);
        }
        if (++count == kBatchRows) {
          finalize();
          return true;
        }
      }
      matches_ = nullptr;
    }
    if (!probe_valid_ || probe_pos_ >= probe_.ActiveCount()) {
      if (!FetchChildBatch(children_[0].get(), &probe_)) {
        finalize();
        return count > 0;
      }
      probe_valid_ = true;
      probe_pos_ = 0;
      continue;
    }
    uint32_t r = probe_.ActiveRow(probe_pos_++);
    Value key = probe_.cols[left_key_].ValueAt(r);
    if (key.is_null()) continue;
    auto it = build_.find(JoinKeyHash(key));
    if (it == build_.end()) continue;
    probe_tuple_ = probe_.MaterializeRow(r);
    probe_key_ = std::move(key);
    matches_ = &it->second;
    match_cursor_ = 0;
  }
}

void VecHashJoinOp::CloseImpl() {
  children_[0]->Close();
  children_[1]->Close();
  build_.clear();
  build_rows_.clear();
  probe_.Clear();
  probe_valid_ = false;
}

// ----- VecHashAggregate -----

VecHashAggregateOp::VecHashAggregateOp(std::unique_ptr<Operator> child,
                                       std::vector<VecExpr> keys,
                                       std::vector<BoundExpr> scalar_keys,
                                       std::vector<OutputCol> key_cols,
                                       std::vector<AggSpec> aggs,
                                       std::vector<VecExpr> args)
    : keys_(std::move(keys)),
      scalar_keys_(std::move(scalar_keys)),
      aggs_(std::move(aggs)),
      args_(std::move(args)) {
  output_ = std::move(key_cols);
  for (const auto& a : aggs_) {
    output_.push_back({"", a.out_name, ValueType::kDouble});
  }
  children_.push_back(std::move(child));
}

Status VecHashAggregateOp::ScalarErrorAt(const Batch& in, size_t r) const {
  Tuple row = in.MaterializeRow(static_cast<uint32_t>(r));
  for (const auto& k : scalar_keys_) {
    Result<Value> v = k.Eval(row);
    if (!v.ok()) return v.status();
  }
  for (const auto& a : aggs_) {
    if (!a.arg) continue;
    Result<Value> v = a.arg->Eval(row);
    if (!v.ok()) return v.status();
  }
  return Status::Internal(
      "vectorized aggregate error not reproduced by scalar path");
}

void VecHashAggregateOp::VecOpenImpl() {
  children_[0]->Open();
  results_.clear();
  cursor_ = 0;

  GroupMap groups;
  // No-key aggregation folds into one state directly — no hashing, no key
  // tuples. Finalizing a zero-count state yields exactly the empty-input row
  // (COUNT 0, other aggregates NULL) the serial operator special-cases.
  GroupState single;
  const bool no_key = keys_.empty();
  if (no_key) single.Init({}, aggs_.size());

  Batch in;
  std::vector<VecColumn> key_scratch(keys_.size());
  std::vector<VecColumn> arg_scratch(aggs_.size());
  std::vector<const VecColumn*> key_cols(keys_.size(), nullptr);
  std::vector<const VecColumn*> arg_cols(aggs_.size(), nullptr);
  while (FetchChildBatch(children_[0].get(), &in)) {
    if (in.rows == 0) continue;
    for (size_t k = 0; k < keys_.size(); ++k) {
      key_cols[k] = &keys_[k].EvalRef(in, &key_scratch[k]);
    }
    bool any_err = false;
    for (size_t i = 0; i < aggs_.size(); ++i) {
      if (aggs_[i].arg) {
        arg_cols[i] = &args_[i].EvalRef(in, &arg_scratch[i]);
        any_err = any_err || arg_cols[i]->has_err;
      }
    }
    for (const auto* kc : key_cols) any_err = any_err || kc->has_err;

    const size_t n = in.ActiveCount();

    // Typed no-key fast path: with one state, no keys and no errored rows,
    // each aggregate folds in a tight loop over its own column. The loop
    // visits selected rows in ascending order, so the per-slot fold sequence
    // — and thus the floating-point sum — is identical to the per-row path.
    if (no_key && !any_err) {
      for (size_t i = 0; i < aggs_.size(); ++i) {
        if (!aggs_[i].arg) {
          // COUNT(*): n FoldOne(i, 0.0) calls end in exactly this state —
          // sum stays +0.0, min/max pin to 0.0 on the first fold.
          if (n > 0) {
            if (single.counts[i] == 0) {
              single.mins[i] = 0.0;
              single.maxs[i] = 0.0;
            }
            single.counts[i] += n;
          }
          continue;
        }
        const VecColumn& c = *arg_cols[i];
        // Register accumulation: same per-slot fold sequence as FoldOne
        // (rows ascending, sum += in order, first value pins min/max), so
        // the floating-point results are bit-identical — the state just
        // lives in registers for the batch instead of round-tripping
        // through GroupState memory every row.
        double sum = single.sums[i], mn = single.mins[i], mx = single.maxs[i];
        size_t cnt = single.counts[i];
        auto fold = [&](double v) {
          if (cnt == 0) {
            mn = v;
            mx = v;
          } else {
            mn = std::min(mn, v);
            mx = std::max(mx, v);
          }
          sum += v;
          ++cnt;
        };
        switch (c.kind) {
          case VecColumn::Kind::kInt:
            for (size_t s = 0; s < n; ++s) {
              uint32_t r = in.ActiveRow(s);
              if (c.valid[r]) fold(static_cast<double>(c.ints[r]));
            }
            break;
          case VecColumn::Kind::kDouble:
            for (size_t s = 0; s < n; ++s) {
              uint32_t r = in.ActiveRow(s);
              if (c.valid[r]) fold(c.doubles[r]);
            }
            break;
          default:
            for (size_t s = 0; s < n; ++s) {
              uint32_t r = in.ActiveRow(s);
              if (!c.IsNullAt(r)) fold(c.FeatureAt(r));
            }
            break;
        }
        single.sums[i] = sum;
        single.mins[i] = mn;
        single.maxs[i] = mx;
        single.counts[i] = cnt;
      }
      continue;
    }

    for (size_t s = 0; s < n; ++s) {
      uint32_t r = in.ActiveRow(s);
      if (any_err) {
        bool row_err = false;
        for (const auto* kc : key_cols) row_err = row_err || kc->err[r] != 0;
        for (size_t i = 0; i < aggs_.size() && !row_err; ++i) {
          row_err = aggs_[i].arg && arg_cols[i]->err[r] != 0;
        }
        if (row_err) {
          // Rows before r folded already — invisible, since a failed
          // aggregate produces no results, same as the serial operator.
          Fail(ScalarErrorAt(in, r));
          return;
        }
      }
      GroupState* state;
      if (no_key) {
        state = &single;
      } else {
        Tuple key;
        key.reserve(key_cols.size());
        uint64_t h = 1469598103934665603ULL;
        for (const auto* kc : key_cols) {
          key.push_back(kc->ValueAt(r));
          h = (h ^ key.back().Hash()) * 1099511628211ULL;
        }
        state = groups.GetOrCreate(h, std::move(key), aggs_.size());
      }
      for (size_t i = 0; i < aggs_.size(); ++i) {
        if (aggs_[i].arg) {
          const VecColumn& c = *arg_cols[i];
          if (c.IsNullAt(r)) continue;  // NULL arguments skipped
          state->FoldOne(i, c.FeatureAt(r));
        } else {
          state->FoldOne(i, 0.0);  // COUNT(*)
        }
      }
    }
  }

  if (no_key) {
    results_.push_back(single.Finalize(aggs_));
    return;
  }
  groups.ForEach(
      [this](const GroupState& g) { results_.push_back(g.Finalize(aggs_)); });
}

bool VecHashAggregateOp::NextBatchImpl(Batch* out) {
  if (cursor_ >= results_.size()) return false;
  out->Clear();
  const size_t width = output_.size();
  out->cols.resize(width);
  for (auto& c : out->cols) c.kind = VecColumn::Kind::kGeneric;
  size_t count = 0;
  while (cursor_ < results_.size() && count < kBatchRows) {
    const Tuple& row = results_[cursor_++];
    for (size_t c = 0; c < width; ++c) {
      out->cols[c].generic.push_back(row[c]);
    }
    ++count;
  }
  for (auto& c : out->cols) {
    c.rows = count;
    c.err.assign(count, 0);
  }
  out->rows = count;
  rows_produced_ += count;
  return true;
}

}  // namespace aidb::exec
