#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "exec/vec/batch.h"
#include "storage/table.h"

namespace aidb::exec {

/// \brief Version-invalidated columnar mirror of the row store, feeding the
/// vectorized scan.
///
/// The row store keeps each row as a heap-allocated vector of Values, so
/// extracting one column for a 1M-row scan is a pointer-chasing pass that
/// dominates vectorized query time (the hardware prefetcher already hides
/// most of the latency; re-extraction itself is the cost). The cache holds a
/// slot-major typed array per (table, column) — same indexing as the slot
/// space, tombstoned slots simply stay invalid — so a scan gathers its batch
/// windows from contiguous memory instead of walking tuples.
///
/// Consistency: every Table mutation bumps Table::data_version(); Get()
/// rebuilds when the stamped version differs. Entries are keyed by
/// Table::uid(), so a DROP/CREATE cycle that reuses a table name (or heap
/// address) can never alias a stale mirror — the new table has a new uid.
/// Thread-safety matches the engine's read/write model: concurrent readers
/// (the service holds a shared lock for SELECTs) may Get() concurrently —
/// the map is mutex-guarded and a cold column is built outside the lock from
/// a table that is immutable for the duration of the query, so racing
/// builders at worst duplicate work and install identical mirrors. Mutations
/// run under the service's exclusive lock and only bump the version.
///
/// Scope: only INT and DOUBLE columns of tables with at least kMinSlots
/// slots are mirrored. A column that physically holds a value of another
/// type (legal for DOUBLE columns, which may store INTs) is marked
/// uncacheable at that version and the scan falls back to row-major
/// extraction — the path that handles mid-batch demotion exactly.
class ColumnCache {
 public:
  /// Below this slot count the row-major pass is already cheap and DML churn
  /// would make mirror rebuilds a net loss (4 * kBatchRows).
  static constexpr size_t kMinSlots = 4096;

  /// Effective threshold: kMinSlots unless AIDB_COL_CACHE_MIN_SLOTS
  /// overrides it (read once per process). The differential fuzzer's
  /// vectorized leg sets it to 0 so every table — even the generator's tiny
  /// ones — exercises the mirror gather path against the volcano oracle.
  static size_t MinSlots();

  /// Returns the slot-major mirror of `table` column `col`, rebuilding it if
  /// the table changed since it was stamped; nullptr when the column is not
  /// mirrored (non-numeric type, small table, or mixed physical types). The
  /// returned column has NumSlots() rows; slot r is valid iff row r is live
  /// and non-NULL. The shared_ptr keeps the mirror alive across a concurrent
  /// invalidation for the duration of a query.
  std::shared_ptr<const VecColumn> Get(const Table& table, size_t col);

  /// Returns the slot-major liveness bitmap (one byte per slot, 1 = a
  /// version is visible to the latest-committed snapshot), rebuilding when
  /// the table changed since it was stamped; nullptr for small tables. The
  /// scan uses it in place of the per-slot version-chain walk when the table
  /// is quiescent for its snapshot and every active column is mirrored —
  /// under quiescence, latest-committed liveness IS snapshot liveness, and a
  /// commit landing mid-scan carries a timestamp past the snapshot, so the
  /// stamped bitmap stays the correct answer for that snapshot.
  std::shared_ptr<const std::vector<uint8_t>> GetLiveness(const Table& table);

  /// Drops every mirror of the table with this uid (DROP TABLE hook; purely
  /// a memory release — uid keying already prevents stale reuse).
  void Evict(uint64_t table_uid);

  /// Resident bytes across all mirrors (observability).
  size_t ApproxBytes() const;

 private:
  struct ColEntry {
    bool built = false;          ///< an attempt was stamped at `version`
    uint64_t version = 0;
    std::shared_ptr<const VecColumn> col;  ///< null => uncacheable
  };
  struct TableEntry {
    std::vector<ColEntry> cols;
    bool live_built = false;  ///< a liveness pass was stamped at live_version
    uint64_t live_version = 0;
    std::shared_ptr<const std::vector<uint8_t>> live;
  };

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, TableEntry> entries_;
};

}  // namespace aidb::exec
