#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "exec/vec/batch.h"
#include "storage/table.h"

namespace aidb::exec {

/// A slot-major column mirror plus the per-morsel build stamps that let the
/// scan use it morsel by morsel on a non-quiescent table: morsel m of the
/// mirror is trustworthy for a snapshot iff morsel_versions[m] still equals
/// Table::MorselVersion(m) and the morsel is quiescent for that snapshot.
struct MirrorColumn {
  VecColumn col;
  /// Table::MorselVersion(m) captured at build; kStaleStamp marks a morsel
  /// that changed mid-build (scans decline it until the next rebuild).
  std::vector<uint64_t> morsel_versions;
  uint64_t stamped_at = 0;     ///< Table::data_version() at build start
  bool fully_stamped = false;  ///< no kStaleStamp entries
};

/// Slot-major liveness bitmap (1 = visible to the latest-committed snapshot)
/// with the same per-morsel stamping as MirrorColumn.
struct LivenessMap {
  std::vector<uint8_t> live;
  std::vector<uint64_t> morsel_versions;
  uint64_t stamped_at = 0;
  bool fully_stamped = false;
};

/// \brief Version-invalidated columnar mirror of the row store, feeding the
/// vectorized scan.
///
/// The row store keeps each row as a heap-allocated vector of Values, so
/// extracting one column for a 1M-row scan is a pointer-chasing pass that
/// dominates vectorized query time (the hardware prefetcher already hides
/// most of the latency; re-extraction itself is the cost). The cache holds a
/// slot-major typed array per (table, column) — same indexing as the slot
/// space, tombstoned slots simply stay invalid — so a scan gathers its batch
/// windows from contiguous memory instead of walking tuples.
///
/// Consistency: every Table mutation bumps Table::data_version() and the
/// touched morsel's Table::MorselVersion(); Get() rebuilds when the stamped
/// data version differs, copying morsels whose stamp still matches from the
/// previous mirror and re-extracting only the changed ones. Entries are
/// keyed by Table::uid(), so a DROP/CREATE cycle that reuses a table name
/// (or heap address) can never alias a stale mirror — the new table has a
/// new uid. Thread-safety matches the engine's read/write model: concurrent
/// readers may Get() concurrently — the map is mutex-guarded and a cold
/// column is built outside the lock; a commit landing mid-build bumps the
/// morsel version, so the post-pass stamp check marks exactly the affected
/// morsels kStaleStamp instead of discarding the whole pass.
///
/// Scope: only INT and DOUBLE columns of tables with at least kMinSlots
/// slots are mirrored. A column that physically holds a value of another
/// type (legal for DOUBLE columns, which may store INTs) is marked
/// uncacheable at that version and the scan falls back to row-major
/// extraction — the path that handles mid-batch demotion exactly.
class ColumnCache {
 public:
  /// Below this slot count the row-major pass is already cheap and DML churn
  /// would make mirror rebuilds a net loss (4 * kBatchRows).
  static constexpr size_t kMinSlots = 4096;

  /// A morsel stamp that can never equal a real Table::MorselVersion value.
  static constexpr uint64_t kStaleStamp = ~0ull;

  /// Effective threshold: kMinSlots unless AIDB_COL_CACHE_MIN_SLOTS
  /// overrides it (read once per process). The differential fuzzer's
  /// vectorized leg sets it to 0 so every table — even the generator's tiny
  /// ones — exercises the mirror gather path against the volcano oracle.
  static size_t MinSlots();

  /// Returns the slot-major mirror of `table` column `col`, rebuilding
  /// changed morsels if the table moved since it was stamped; nullptr when
  /// the column is not mirrored (non-numeric type, small table, or mixed
  /// physical types). The mirror has NumSlots() rows; slot r is valid iff
  /// row r is live and non-NULL. The shared_ptr keeps the mirror alive
  /// across a concurrent invalidation for the duration of a query.
  std::shared_ptr<const MirrorColumn> Get(const Table& table, size_t col);

  /// Returns the stamped slot-major liveness bitmap, incrementally rebuilt
  /// like Get(); nullptr for small tables. The scan uses it in place of the
  /// per-slot version-chain walk for each morsel that is quiescent for its
  /// snapshot with a matching stamp — under morsel quiescence,
  /// latest-committed liveness IS snapshot liveness, and a commit landing
  /// mid-scan carries a timestamp past the snapshot, so the stamped bitmap
  /// stays the correct answer for that snapshot.
  std::shared_ptr<const LivenessMap> GetLiveness(const Table& table);

  /// Drops every mirror of the table with this uid (DROP TABLE hook; purely
  /// a memory release — uid keying already prevents stale reuse).
  void Evict(uint64_t table_uid);

  /// Resident bytes across all mirrors (observability).
  size_t ApproxBytes() const;

 private:
  struct ColEntry {
    bool built = false;  ///< an attempt was stamped at `version`
    uint64_t version = 0;
    std::shared_ptr<const MirrorColumn> col;  ///< null => uncacheable
  };
  struct TableEntry {
    std::vector<ColEntry> cols;
    bool live_built = false;  ///< a liveness pass was stamped at live_version
    uint64_t live_version = 0;
    std::shared_ptr<const LivenessMap> live;
  };

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, TableEntry> entries_;
};

}  // namespace aidb::exec
