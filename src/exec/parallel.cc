#include "exec/parallel.h"

#include <atomic>

namespace aidb::exec {

// ----- TableMorselSource -----

TableMorselSource::TableMorselSource(const Table* table,
                                     std::vector<BoundExpr> filters,
                                     size_t morsel_rows)
    : table_(table), filters_(std::move(filters)), morsel_rows_(morsel_rows) {
  if (morsel_rows_ == 0) morsel_rows_ = 1;
}

size_t TableMorselSource::NumMorsels() const {
  return (table_->NumSlots() + morsel_rows_ - 1) / morsel_rows_;
}

Status TableMorselSource::ScanMorsel(size_t m, const TupleFn& fn) const {
  RowId begin = static_cast<RowId>(m * morsel_rows_);
  Status err;
  table_->ScanRangeVisible(begin, begin + morsel_rows_, snap_,
                           [&](RowId, const Tuple& row) {
    if (!err.ok()) return;  // first failing row in the morsel wins
    for (const auto& f : filters_) {
      Result<bool> keep = f.EvalBool(row);
      if (!keep.ok()) {
        err = keep.status();
        return;
      }
      if (!keep.ValueOrDie()) return;
    }
    fn(row);
  });
  return err;
}

// ----- Morsel dispatch -----

void DispatchMorsels(const ParallelContext& ctx, size_t n,
                     const std::atomic<bool>* cancel,
                     const std::function<void(size_t worker, size_t morsel)>& work) {
  auto cancelled = [cancel] {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  };
  size_t workers = ctx.WorkersFor(n);
  if (workers <= 1) {
    for (size_t m = 0; m < n; ++m) {
      if (cancelled()) return;
      work(0, m);
    }
    return;
  }
  std::atomic<size_t> next{0};
  TaskGroup group(ctx.pool);
  for (size_t w = 0; w < workers; ++w) {
    group.Spawn([w, n, &next, &work, &cancelled] {
      for (size_t m = next.fetch_add(1); m < n; m = next.fetch_add(1)) {
        if (cancelled()) return;
        work(w, m);
      }
    });
  }
  group.Wait();
}

// ----- Gather -----

GatherOp::GatherOp(std::unique_ptr<MorselSource> source,
                   std::vector<OutputCol> schema, ParallelContext ctx)
    : source_(std::move(source)), ctx_(ctx) {
  output_ = std::move(schema);
}

void GatherOp::OpenImpl() {
  morsel_cursor_ = 0;
  row_cursor_ = 0;
  size_t n = source_->NumMorsels();
  buffers_.assign(n, {});
  worker_rows_.assign(ctx_.WorkersFor(n), 0);
  // One status slot per morsel: workers write disjoint slots, and the error
  // of the lowest-numbered failing morsel is reported — the same row order a
  // serial scan would fail in, whatever the worker interleaving.
  std::vector<Status> morsel_status(n);
  DispatchMorsels(ctx_, n, cancel_, [this, &morsel_status](size_t w, size_t m) {
    auto& buf = buffers_[m];
    morsel_status[m] =
        source_->ScanMorsel(m, [&buf](const Tuple& row) { buf.push_back(row); });
    worker_rows_[w] += buf.size();  // distinct w per task: no shared writes
  });
  if (IsCancelled()) {
    Fail(Status::Cancelled("query cancelled during parallel scan"));
    buffers_.clear();
    return;
  }
  for (Status& s : morsel_status) {
    if (!s.ok()) {
      Fail(std::move(s));
      buffers_.clear();
      return;
    }
  }
}

bool GatherOp::NextImpl(Tuple* out) {
  while (morsel_cursor_ < buffers_.size()) {
    const auto& buf = buffers_[morsel_cursor_];
    if (row_cursor_ < buf.size()) {
      *out = buf[row_cursor_++];
      ++rows_produced_;
      return true;
    }
    ++morsel_cursor_;
    row_cursor_ = 0;
  }
  return false;
}

void GatherOp::CloseImpl() {
  buffers_.clear();
  buffers_.shrink_to_fit();
}

// ----- ParallelScan -----

ParallelScanOp::ParallelScanOp(const Table* table, std::string effective_name,
                               std::vector<BoundExpr> filters,
                               std::vector<std::string> filter_texts,
                               ParallelContext ctx)
    : GatherOp(nullptr, {}, ctx),
      label_(std::move(effective_name)),
      filter_texts_(std::move(filter_texts)) {
  for (const auto& col : table->schema().columns()) {
    output_.push_back({label_, col.name, col.type});
  }
  source_ = std::make_unique<TableMorselSource>(table, std::move(filters));
}

std::string ParallelScanOp::Name() const {
  std::string name = "ParallelScan(" + label_;
  for (const auto& t : filter_texts_) name += ", filter=" + t;
  return name + ", dop=" + std::to_string(ctx_.dop) + ")";
}

// ----- ParallelHashJoin -----

ParallelHashJoinOp::ParallelHashJoinOp(std::unique_ptr<Operator> left,
                                       std::unique_ptr<Operator> right,
                                       size_t left_key, size_t right_key,
                                       ParallelContext ctx)
    : left_key_(left_key), right_key_(right_key), ctx_(ctx) {
  output_ = left->output();
  for (const auto& c : right->output()) output_.push_back(c);
  children_.push_back(std::move(left));
  children_.push_back(std::move(right));
}

void ParallelHashJoinOp::OpenImpl() {
  children_[0]->Open();
  children_[1]->Open();
  for (auto& p : partitions_) p.clear();
  build_rows_.clear();

  // Materialize the build side (volcano children are single-threaded).
  Tuple row;
  while (children_[1]->Next(&row)) {
    if (row[right_key_].is_null()) continue;  // NULL never equi-joins
    build_rows_.push_back(std::move(row));
  }

  struct BuildRef {
    uint64_t hash;
    uint32_t row;
  };
  size_t n_morsels = (build_rows_.size() + kMorselRows - 1) / kMorselRows;
  size_t workers = ctx_.WorkersFor(n_morsels);

  // Phase 1: workers claim build morsels and bucket (hash, row) refs into
  // per-worker partition lists — no shared writes.
  std::vector<std::array<std::vector<BuildRef>, kPartitions>> local(workers);
  DispatchMorsels(ctx_, n_morsels, cancel_, [this, &local](size_t w, size_t m) {
    size_t begin = m * kMorselRows;
    size_t end = std::min(begin + kMorselRows, build_rows_.size());
    for (size_t i = begin; i < end; ++i) {
      uint64_t h = JoinKeyHash(build_rows_[i][right_key_]);
      local[w][h % kPartitions].push_back({h, static_cast<uint32_t>(i)});
    }
  });

  // Phase 2: merge tasks claim whole partitions, so each hash table has
  // exactly one writer.
  DispatchMorsels(ctx_, kPartitions, cancel_, [this, &local](size_t, size_t p) {
    auto& table = partitions_[p];
    for (const auto& worker_buckets : local) {
      for (const BuildRef& ref : worker_buckets[p]) {
        table[ref.hash].push_back(ref.row);
      }
    }
  });
  if (IsCancelled()) {
    Fail(Status::Cancelled("query cancelled during join build"));
    build_rows_.clear();
    for (auto& p : partitions_) p.clear();
  }

  matches_ = nullptr;
  match_cursor_ = 0;
}

bool ParallelHashJoinOp::NextImpl(Tuple* out) {
  for (;;) {
    if (matches_ != nullptr) {
      while (match_cursor_ < matches_->size()) {
        const Tuple& inner = build_rows_[(*matches_)[match_cursor_++]];
        // Re-check equality (hash collisions).
        if (inner[right_key_].Compare(probe_row_[left_key_]) != 0) continue;
        *out = probe_row_;
        out->insert(out->end(), inner.begin(), inner.end());
        ++rows_produced_;
        return true;
      }
      matches_ = nullptr;
    }
    if (!children_[0]->Next(&probe_row_)) return false;
    const Value& key = probe_row_[left_key_];
    if (key.is_null()) continue;
    uint64_t h = JoinKeyHash(key);
    const auto& partition = partitions_[h % kPartitions];
    auto it = partition.find(h);
    if (it == partition.end()) continue;
    matches_ = &it->second;
    match_cursor_ = 0;
  }
}

void ParallelHashJoinOp::CloseImpl() {
  children_[0]->Close();
  children_[1]->Close();
  build_rows_.clear();
  for (auto& p : partitions_) p.clear();
}

// ----- ParallelHashAggregate -----

ParallelHashAggregateOp::ParallelHashAggregateOp(
    std::unique_ptr<MorselSource> source, std::vector<BoundExpr> keys,
    std::vector<OutputCol> key_cols, std::vector<AggSpec> aggs,
    ParallelContext ctx)
    : source_(std::move(source)),
      keys_(std::move(keys)),
      aggs_(std::move(aggs)),
      ctx_(ctx) {
  output_ = std::move(key_cols);
  for (const auto& a : aggs_) {
    output_.push_back({"", a.out_name, ValueType::kDouble});
  }
}

void ParallelHashAggregateOp::OpenImpl() {
  results_.clear();
  cursor_ = 0;

  size_t n = source_->NumMorsels();
  size_t workers = ctx_.WorkersFor(n);
  std::vector<GroupMap> partials(workers);
  std::vector<Status> morsel_status(n);
  worker_rows_.assign(workers, 0);
  DispatchMorsels(ctx_, n, cancel_, [this, &partials, &morsel_status](size_t w, size_t m) {
    GroupMap& map = partials[w];
    Status acc_err;
    Status scan = source_->ScanMorsel(m, [&](const Tuple& row) {
      if (!acc_err.ok()) return;
      ++worker_rows_[w];  // input rows folded by this worker; w is task-unique
      acc_err = map.Accumulate(keys_, aggs_, row);
    });
    morsel_status[m] = scan.ok() ? std::move(acc_err) : std::move(scan);
  });
  if (IsCancelled()) {
    Fail(Status::Cancelled("query cancelled during parallel aggregation"));
    return;
  }
  for (Status& s : morsel_status) {
    if (!s.ok()) {
      Fail(std::move(s));
      return;  // results_ stays empty; the executor sees FirstError()
    }
  }

  GroupMap merged = std::move(partials[0]);
  for (size_t w = 1; w < partials.size(); ++w) {
    merged.Merge(std::move(partials[w]));
  }

  // No-group aggregate over empty input still yields one row of zero counts.
  if (keys_.empty() && merged.num_groups() == 0) {
    Tuple out;
    for (const auto& a : aggs_) {
      if (a.func == sql::AggFunc::kCount) {
        out.push_back(Value(static_cast<int64_t>(0)));
      } else {
        out.push_back(Value::Null());
      }
    }
    results_.push_back(std::move(out));
    return;
  }

  merged.ForEach(
      [this](const GroupState& g) { results_.push_back(g.Finalize(aggs_)); });
}

bool ParallelHashAggregateOp::NextImpl(Tuple* out) {
  if (cursor_ >= results_.size()) return false;
  *out = results_[cursor_++];
  ++rows_produced_;
  return true;
}

}  // namespace aidb::exec
