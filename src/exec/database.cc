#include "exec/database.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <sstream>

#include "common/timer.h"
#include "sql/lexer.h"
#include "sql/params.h"
#include "sql/parser.h"
#include "storage/engine/lsm_engine.h"
#include "storage/snapshot.h"

namespace aidb {

namespace {

/// Query-log `kind` strings (lowercase statement class).
std::string StatementKindName(const sql::Statement& stmt) {
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect: {
      const auto& s = static_cast<const sql::SelectStatement&>(stmt);
      if (s.explain_analyze) return "explain_analyze";
      if (s.explain) return "explain";
      return "select";
    }
    case sql::StatementKind::kCreateTable: return "create_table";
    case sql::StatementKind::kDropTable: return "drop_table";
    case sql::StatementKind::kCreateIndex: return "create_index";
    case sql::StatementKind::kDropIndex: return "drop_index";
    case sql::StatementKind::kInsert: return "insert";
    case sql::StatementKind::kUpdate: return "update";
    case sql::StatementKind::kDelete: return "delete";
    case sql::StatementKind::kAnalyze: return "analyze";
    case sql::StatementKind::kCreateModel: return "create_model";
    case sql::StatementKind::kShowModels: return "show_models";
    case sql::StatementKind::kPrepare: return "prepare";
    case sql::StatementKind::kExecute: return "execute";
    case sql::StatementKind::kDeallocate: return "deallocate";
    case sql::StatementKind::kBegin: return "begin";
    case sql::StatementKind::kCommit: return "commit";
    case sql::StatementKind::kRollback: return "rollback";
  }
  return "unknown";
}

/// Recursively checks an expression tree for PREDICT calls (whose bound
/// closures capture model state and therefore must not be plan-cached).
bool ExprHasPredict(const sql::Expr* e) {
  if (e == nullptr) return false;
  if (e->kind == sql::Expr::Kind::kPredict) return true;
  if (ExprHasPredict(e->lhs.get()) || ExprHasPredict(e->rhs.get())) return true;
  for (const auto& a : e->args) {
    if (ExprHasPredict(a.get())) return true;
  }
  return false;
}

/// Plan-cache key: normalized SQL + type-tagged argument values + planner
/// knob fingerprint. Args are type-tagged because Value::ToString renders 1
/// and '1' too similarly to trust for keying.
std::string PlanCacheKey(const std::string& normalized_sql,
                         const std::vector<Value>& args,
                         const exec::PlannerOptions& opts) {
  std::string key = normalized_sql;
  key += "|a:";
  for (const Value& v : args) {
    key += std::to_string(static_cast<int>(v.type()));
    key += ':';
    key += v.ToString();
    key += '\x1f';
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "|k:%016llx",
                static_cast<unsigned long long>(server::KnobFingerprint(opts)));
  key += buf;
  return key;
}

std::string HexDigest(uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

/// Mirrors a harvested trace tree into the span ring (`op:<Name>` spans under
/// the current trace context), so traced statements carry operator-level
/// spans in their request tree.
void RecordOperatorSpans(monitor::SpanCollector* spans,
                         const exec::TraceNode& node, uint64_t parent) {
  monitor::SpanCollector::Context ctx = monitor::SpanCollector::GetContext();
  monitor::Span s;
  s.trace_id = ctx.trace_id;
  s.session_id = ctx.session_id;
  s.parent_id = parent;
  s.span_id = spans->NextId();
  s.name = "op:" + node.op;
  s.dur_us = node.time_us;
  s.value = static_cast<double>(node.rows);
  const uint64_t id = s.span_id;
  spans->Record(std::move(s));
  for (const auto& c : node.children) RecordOperatorSpans(spans, c, id);
}

}  // namespace

Database::Database()
    : planner_(&catalog_, &models_),
      kpi_sampler_(&kpi_history_, [this] { return ProbeKpis(); }) {
  RegisterSystemViews();
  models_.set_metrics(&metrics_);
  tm_.set_metrics(&metrics_);
  planner_options_.column_cache = &column_cache_;
  spans_.set_metrics(&metrics_);
  query_log_.set_drop_counter(metrics_.GetCounter("query_log.dropped"));
  // Every sample flows through the incident pipeline: anomalies are detected
  // and diagnosed on the spot, incidents land in the aidb_incidents ring.
  kpi_sampler_.set_on_sample([this](const monitor::KpiSample& s) {
    monitor::LiveIncident inc;
    if (incidents_.Observe(s, &inc)) {
      metrics_.GetCounter("monitor.incidents")->Add();
      metrics_.GetCounter(std::string("monitor.cause.") +
                          monitor::RootCauseName(inc.cause))
          ->Add();
    }
  });
}

Database::~Database() {
  kpi_sampler_.Stop();
  // Drain every pool before members die: a queued storage-maintenance task
  // touches lsm_engine_ and checkpoint_fence_, both destroyed before the
  // pools join their workers.
  if (lsm_engine_) {
    if (exec_pool_) exec_pool_->Wait();
    for (auto& pool : retired_pools_) pool->Wait();
  }
}

void Database::StartKpiSampler(double interval_ms) {
  kpi_sampler_.Start(interval_ms);
}

void Database::StopKpiSampler() { kpi_sampler_.Stop(); }

monitor::KpiSample Database::ProbeKpis() {
  monitor::KpiSample s;
  s.seq = ++kpi_seq_;
  s.ts_us = deterministic_timing_ ? 0.0 : kpi_epoch_.ElapsedMicros();

  KpiBaseline now;
  now.work = total_work_.load(std::memory_order_relaxed);
  now.conflicts = metrics_.GetCounter("txn.conflicts")->Value();
  now.denials = metrics_.GetCounter("lock.denials")->Value();
  now.stall_us = metrics_.GetCounter("wal.stall_us")->Value();
  now.fsyncs = metrics_.GetCounter("wal.fsyncs")->Value();
  now.select_rows = metrics_.GetCounter("exec.select_rows")->Value();
  now.queries = metrics_.GetCounter("exec.queries")->Value();
  const auto lat = metrics_.GetHistogram("exec.query_latency_us")->Snap();
  now.lat_count = lat.count;
  now.lat_sum_us = lat.sum_us;

  s.kpis[monitor::kKpiCpu] = static_cast<double>(now.work - kpi_prev_.work);
  s.kpis[monitor::kKpiLockWait] =
      static_cast<double>((now.conflicts - kpi_prev_.conflicts) +
                          (now.denials - kpi_prev_.denials));
  s.kpis[monitor::kKpiIoWait] =
      static_cast<double>((now.stall_us - kpi_prev_.stall_us) +
                          (now.fsyncs - kpi_prev_.fsyncs));
  uint64_t slots = 0;
  for (const std::string& name : catalog_.TableNames()) {
    auto t = catalog_.GetTable(name);
    if (t.ok()) slots += t.ValueOrDie()->NumSlots();
  }
  s.kpis[monitor::kKpiMem] = static_cast<double>(slots);
  s.kpis[monitor::kKpiScanRows] =
      static_cast<double>(now.select_rows - kpi_prev_.select_rows);
  // Mean statement latency this interval. Deterministic runs substitute the
  // deterministic equivalent (mean operator work per statement) so the KPI
  // stream — and every incident derived from it — replays identically.
  const uint64_t dq = now.queries - kpi_prev_.queries;
  if (deterministic_timing_) {
    s.kpis[monitor::kKpiLatency] =
        dq == 0 ? 0.0
                : static_cast<double>(now.work - kpi_prev_.work) /
                      static_cast<double>(dq);
  } else {
    const uint64_t dc = now.lat_count - kpi_prev_.lat_count;
    s.kpis[monitor::kKpiLatency] =
        dc == 0 ? 0.0 : (now.lat_sum_us - kpi_prev_.lat_sum_us) /
                            static_cast<double>(dc);
  }
  kpi_prev_ = now;
  return s;
}

void Database::RegisterSystemViews() {
  using VF = std::function<void(Tuple)>;

  Schema metrics_schema({{"name", ValueType::kString},
                         {"kind", ValueType::kString},
                         {"value", ValueType::kDouble}});
  (void)catalog_.RegisterSystemView(
      "aidb_metrics", std::move(metrics_schema), [this](const VF& emit) {
        for (const auto& m : metrics_.Snapshot()) {
          emit({Value(m.name), Value(m.kind), Value(m.value)});
        }
      });

  Schema log_schema({{"id", ValueType::kInt},
                     {"sql", ValueType::kString},
                     {"kind", ValueType::kString},
                     {"status", ValueType::kString},
                     {"rows", ValueType::kInt},
                     {"affected", ValueType::kInt},
                     {"work", ValueType::kInt},
                     {"latency_us", ValueType::kInt},
                     {"operators", ValueType::kInt},
                     {"joins", ValueType::kInt},
                     {"plan_digest", ValueType::kString},
                     {"dop", ValueType::kInt},
                     {"session", ValueType::kInt}});
  (void)catalog_.RegisterSystemView(
      "aidb_query_log", std::move(log_schema), [this](const VF& emit) {
        for (const auto& e : query_log_.Entries()) {
          emit({Value(static_cast<int64_t>(e.id)), Value(e.sql), Value(e.kind),
                Value(e.ok ? std::string("ok") : e.error),
                Value(static_cast<int64_t>(e.rows_returned)),
                Value(static_cast<int64_t>(e.affected_rows)),
                Value(static_cast<int64_t>(e.work)),
                Value(static_cast<int64_t>(e.latency_us)),
                Value(static_cast<int64_t>(e.num_operators)),
                Value(static_cast<int64_t>(e.num_joins)),
                Value(HexDigest(e.plan_digest)),
                Value(static_cast<int64_t>(e.dop)),
                Value(static_cast<int64_t>(e.session_id))});
        }
      });

  Schema trace_schema({{"node", ValueType::kInt},
                       {"parent", ValueType::kInt},
                       {"depth", ValueType::kInt},
                       {"operator", ValueType::kString},
                       {"est_rows", ValueType::kDouble},
                       {"rows", ValueType::kInt},
                       {"batches", ValueType::kInt},
                       {"time_us", ValueType::kDouble},
                       {"workers", ValueType::kString}});
  (void)catalog_.RegisterSystemView(
      "aidb_trace", std::move(trace_schema), [this](const VF& emit) {
        if (!has_trace_) return;
        for (const auto& r : exec::FlattenTrace(last_trace_)) {
          emit({Value(r.node), Value(r.parent), Value(r.depth), Value(r.op),
                Value(r.est_rows), Value(r.rows), Value(r.batches),
                Value(r.time_us), Value(r.workers)});
        }
      });

  // Open transactions. A SELECT over this view refreshes it before its own
  // wrapper transaction begins, so only *other* sessions' transactions (and
  // the caller's explicit one, if open) are listed.
  Schema txn_schema({{"id", ValueType::kInt},
                     {"read_ts", ValueType::kInt},
                     {"writes", ValueType::kInt}});
  (void)catalog_.RegisterSystemView(
      "aidb_transactions", std::move(txn_schema), [this](const VF& emit) {
        for (const auto& t : tm_.ListActive()) {
          emit({Value(static_cast<int64_t>(t.id)),
                Value(static_cast<int64_t>(t.read_ts)),
                Value(static_cast<int64_t>(t.writes))});
        }
      });

  // Storage-engine state: one row per attached table (empty view when the
  // database runs on the plain row store).
  Schema storage_schema({{"table", ValueType::kString},
                         {"runs", ValueType::kInt},
                         {"max_level", ValueType::kInt},
                         {"entries", ValueType::kInt},
                         {"file_bytes", ValueType::kInt},
                         {"paged_slots", ValueType::kInt},
                         {"frozen_slots", ValueType::kInt}});
  (void)catalog_.RegisterSystemView(
      "aidb_storage", std::move(storage_schema), [this](const VF& emit) {
        if (!lsm_engine_) return;
        for (const auto& info : lsm_engine_->TableInfos()) {
          emit({Value(info.table), Value(static_cast<int64_t>(info.runs)),
                Value(static_cast<int64_t>(info.max_level)),
                Value(static_cast<int64_t>(info.entries)),
                Value(static_cast<int64_t>(info.file_bytes)),
                Value(static_cast<int64_t>(info.paged_slots)),
                Value(static_cast<int64_t>(info.frozen_slots))});
        }
      });

  // KPI time-series: one row per retained sampler tick, the six-KPI vector
  // derived from real counters (per-interval deltas; mem is a level).
  Schema history_schema({{"seq", ValueType::kInt},
                         {"ts_us", ValueType::kDouble},
                         {"cpu", ValueType::kDouble},
                         {"lock_wait", ValueType::kDouble},
                         {"io_wait", ValueType::kDouble},
                         {"mem", ValueType::kDouble},
                         {"scan_rows", ValueType::kDouble},
                         {"latency", ValueType::kDouble}});
  (void)catalog_.RegisterSystemView(
      "aidb_metrics_history", std::move(history_schema), [this](const VF& emit) {
        for (const auto& s : kpi_history_.Snapshot()) {
          emit({Value(static_cast<int64_t>(s.seq)), Value(s.ts_us),
                Value(s.kpis[monitor::kKpiCpu]),
                Value(s.kpis[monitor::kKpiLockWait]),
                Value(s.kpis[monitor::kKpiIoWait]),
                Value(s.kpis[monitor::kKpiMem]),
                Value(s.kpis[monitor::kKpiScanRows]),
                Value(s.kpis[monitor::kKpiLatency])});
        }
      });

  // End-to-end request spans (service admission → executor → commit → WAL
  // flush), one coherent parent/child tree per trace_id.
  Schema spans_schema({{"trace_id", ValueType::kInt},
                       {"span_id", ValueType::kInt},
                       {"parent_id", ValueType::kInt},
                       {"name", ValueType::kString},
                       {"session", ValueType::kInt},
                       {"start_us", ValueType::kDouble},
                       {"dur_us", ValueType::kDouble},
                       {"value", ValueType::kDouble},
                       {"detail", ValueType::kString}});
  (void)catalog_.RegisterSystemView(
      "aidb_spans", std::move(spans_schema), [this](const VF& emit) {
        for (const auto& s : spans_.Snapshot()) {
          emit({Value(static_cast<int64_t>(s.trace_id)),
                Value(static_cast<int64_t>(s.span_id)),
                Value(static_cast<int64_t>(s.parent_id)), Value(s.name),
                Value(static_cast<int64_t>(s.session_id)), Value(s.start_us),
                Value(s.dur_us), Value(s.value), Value(s.detail)});
        }
      });

  // Live anomaly → root-cause diagnoses from the incident pipeline. KPI
  // columns carry the squashed robust z-scores the diagnoser saw.
  Schema incidents_schema({{"seq", ValueType::kInt},
                           {"ts_us", ValueType::kDouble},
                           {"cause", ValueType::kString},
                           {"diagnoser", ValueType::kString},
                           {"trigger_kpi", ValueType::kString},
                           {"trigger_z", ValueType::kDouble},
                           {"cpu", ValueType::kDouble},
                           {"lock_wait", ValueType::kDouble},
                           {"io_wait", ValueType::kDouble},
                           {"mem", ValueType::kDouble},
                           {"scan_rows", ValueType::kDouble},
                           {"latency", ValueType::kDouble}});
  (void)catalog_.RegisterSystemView(
      "aidb_incidents", std::move(incidents_schema), [this](const VF& emit) {
        for (const auto& i : incidents_.Snapshot()) {
          emit({Value(static_cast<int64_t>(i.sample_seq)), Value(i.ts_us),
                Value(std::string(monitor::RootCauseName(i.cause))),
                Value(i.diagnoser),
                Value(std::string(monitor::KpiName(i.trigger_kpi))),
                Value(i.trigger_z), Value(i.kpis[monitor::kKpiCpu]),
                Value(i.kpis[monitor::kKpiLockWait]),
                Value(i.kpis[monitor::kKpiIoWait]),
                Value(i.kpis[monitor::kKpiMem]),
                Value(i.kpis[monitor::kKpiScanRows]),
                Value(i.kpis[monitor::kKpiLatency])});
        }
      });
}

Status Database::RefreshReferencedSystemViews(const sql::Statement& stmt) {
  if (stmt.kind() != sql::StatementKind::kSelect) return Status::OK();
  const auto& s = static_cast<const sql::SelectStatement&>(stmt);
  auto refresh = [this](const std::string& table) -> Status {
    if (!catalog_.IsSystemView(table)) return Status::OK();
    return catalog_.RefreshSystemView(table);
  };
  for (const auto& ref : s.from) AIDB_RETURN_NOT_OK(refresh(ref.table));
  for (const auto& j : s.joins) AIDB_RETURN_NOT_OK(refresh(j.table.table));
  return Status::OK();
}

std::string Database::LastTraceJson() const {
  return has_trace_ ? exec::TraceToJson(last_trace_) : std::string();
}

std::string Database::SpansJson() const {
  std::string out;
  for (const auto& s : spans_.Snapshot()) {
    out += monitor::SpanToJson(s);
    out += '\n';
  }
  return out;
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::ostringstream os;
  if (!message.empty()) os << message << "\n";
  if (!columns.empty()) {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i) os << " | ";
      os << columns[i];
    }
    os << "\n";
    for (size_t r = 0; r < rows.size() && r < max_rows; ++r) {
      for (size_t c = 0; c < rows[r].size(); ++c) {
        if (c) os << " | ";
        os << rows[r][c].ToString();
      }
      os << "\n";
    }
    if (rows.size() > max_rows) {
      os << "... (" << rows.size() << " rows total)\n";
    }
  }
  return os.str();
}

void Database::SetDop(size_t dop) {
  std::lock_guard<std::mutex> lock(options_mu_);
  if (dop <= 1) {
    planner_options_.dop = 1;
    planner_options_.exec_pool = nullptr;
    return;
  }
  dop = std::min<size_t>(dop, 64);
  // Grow-only: a pool sized for the largest dop seen serves smaller settings
  // too (workers beyond dop simply never get tasks).
  if (!exec_pool_ || exec_pool_->num_threads() < dop) {
    // Statements admitted with the old pool (snapshot settings, cached
    // plans) may still be running on it: retire, never destroy.
    if (exec_pool_) retired_pools_.push_back(std::move(exec_pool_));
    exec_pool_ = std::make_unique<ThreadPool>(dop);
    exec_pool_->set_metrics(&metrics_);
  }
  planner_options_.dop = dop;
  planner_options_.exec_pool = exec_pool_.get();
}

uint64_t Database::TableEpoch(const std::string& table) const {
  std::lock_guard<std::mutex> lock(epochs_mu_);
  auto it = table_epochs_.find(table);
  return it == table_epochs_.end() ? 0 : it->second;
}

void Database::BumpTableEpoch(const std::string& table) {
  std::lock_guard<std::mutex> lock(epochs_mu_);
  ++table_epochs_[table];
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                 const DurabilityOptions& opts) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::Internal("open: mkdir " + dir + ": " + ec.message());

  auto db = std::unique_ptr<Database>(new Database());
  AIDB_ASSIGN_OR_RETURN(db->recovery_stats_,
                        storage::RecoverDatabase(dir, &db->catalog_, &db->models_));
  storage::WalWriter::Options wopts;
  wopts.flush_interval = opts.wal_flush_interval;
  wopts.sync = opts.sync;
  wopts.fault = opts.fault;
  wopts.metrics = &db->metrics_;
  wopts.spans = &db->spans_;
  AIDB_ASSIGN_OR_RETURN(db->wal_,
                        storage::WalWriter::Open(dir + "/wal.log",
                                                 db->recovery_stats_.next_lsn, wopts));
  db->dir_ = dir;
  db->durability_opts_ = opts;
  db->tm_.SeedNextTxnId(db->recovery_stats_.next_txn_id);
  if (opts.lsm) AIDB_RETURN_NOT_OK(db->EnableLsmStorage());
  return db;
}

Status Database::EnableLsmStorage() {
  lsm_engine_ = std::make_unique<storage::LsmEngine>(
      dir_ + "/lsm", durability_opts_.lsm_design, &tm_,
      durability_opts_.fault, &metrics_);
  catalog_.SetTableHooks(
      [this](const std::string& name, Table* t) {
        lsm_engine_->AttachTable(name, t);
      },
      [this](const std::string& name, Table* t) {
        lsm_engine_->DetachTable(name, t);
      });
  // Recovery already rebuilt the catalog (hooks were not set yet). Adoption
  // only considers *frozen* slots, and freezing happens at vacuum — so run
  // one pass now (no transactions are open, the watermark covers every
  // recovered row) before attaching, or the manifest's runs could never
  // byte-match anything.
  const uint64_t wm = tm_.WatermarkTs();
  for (const std::string& name : catalog_.TableNames()) {
    auto t = catalog_.GetTable(name);
    if (t.ok()) t.ValueOrDie()->Vacuum(wm, [this](Version* v) { tm_.Retire(v); });
  }
  // Attach every table, re-adopting the manifest's runs where they
  // byte-match the recovered frozen rows, then drop whatever no table
  // references.
  for (const std::string& name : catalog_.TableNames()) {
    auto t = catalog_.GetTable(name);
    if (t.ok()) lsm_engine_->AttachTable(name, t.ValueOrDie());
  }
  return lsm_engine_->GarbageCollect();
}

void Database::MaybeMaintainStorage() {
  if (!lsm_engine_ || !lsm_engine_->NeedsMaintenance()) return;
  // Inline when crash injection is armed (the matrix counts fault points in
  // statement order, so flush/compaction points must fire deterministically)
  // or when no executor pool exists. The caller already holds the
  // checkpoint fence shared — do NOT re-acquire it here.
  if (durability_opts_.fault != nullptr || !exec_pool_) {
    // Post-commit path: a simulated crash sets the injector's crashed flag,
    // which gates every later statement; the status itself has no addressee.
    Status ignored = lsm_engine_->Maintain();
    (void)ignored;
    return;
  }
  bool expected = false;
  if (!storage_maint_inflight_.compare_exchange_strong(expected, true)) return;
  exec_pool_->Submit([this] {
    // Off the commit path: take the fence shared so a checkpoint never
    // captures its cut while runs and manifest move underneath it.
    std::shared_lock<std::shared_mutex> fence(checkpoint_fence_);
    Status ignored = lsm_engine_->Maintain();
    (void)ignored;
    storage_maint_inflight_.store(false, std::memory_order_release);
  });
}

Status Database::FlushColdStorage(bool force) {
  if (!lsm_engine_) {
    return Status::InvalidArgument("database has no LSM storage engine");
  }
  if (crashed()) return Status::Aborted("database crashed (simulated fault)");
  // Shared fence: a checkpoint must not capture its cut while runs and the
  // manifest move underneath it (same protocol as the pooled maintenance
  // task).
  std::shared_lock<std::shared_mutex> fence(checkpoint_fence_);
  const uint64_t wm = tm_.WatermarkTs();
  for (const std::string& name : catalog_.TableNames()) {
    auto t = catalog_.GetTable(name);
    if (!t.ok()) continue;
    t.ValueOrDie()->Vacuum(wm, [this](Version* v) { tm_.Retire(v); });
  }
  tm_.FreeRetired();
  if (!force) return lsm_engine_->Maintain();
  for (const auto& info : lsm_engine_->TableInfos()) {
    AIDB_RETURN_NOT_OK(lsm_engine_->FlushTable(info.table));
  }
  return Status::OK();
}

Status Database::FlushWal() {
  if (!wal_) return Status::InvalidArgument("database is not durable");
  return wal_->Flush();
}

Status Database::Checkpoint() {
  if (!wal_) return Status::InvalidArgument("database is not durable");
  if (wal_->crashed()) return Status::Aborted("database crashed");
  // Exclusive fence: no statement is appending WAL ops or committing while
  // the snapshot captures its cut (statements hold the fence shared).
  std::unique_lock<std::shared_mutex> fence(checkpoint_fence_);
  std::lock_guard<std::mutex> cp_lock(checkpoint_mu_);
  // Defer while any transaction holds unstamped writes: the snapshot walks
  // latest-committed state, so a fuzzy checkpoint taken mid-transaction
  // would drop the transaction's ops (LSN <= checkpoint) while keeping its
  // later commit record — replaying the commit as a no-op and losing writes.
  if (tm_.HasActiveWriters()) return wal_->Flush();
  // Protocol: (1) make the WAL durable, (2) write + rename the snapshot,
  // (3) truncate the WAL. A crash between (2) and (3) is safe because
  // recovery skips WAL records with LSN <= the snapshot's checkpoint LSN.
  AIDB_RETURN_NOT_OK(wal_->Flush());
  storage::SnapshotMeta meta;
  meta.checkpoint_lsn = wal_->last_lsn();
  meta.next_txn_id = tm_.next_txn_id();
  AIDB_RETURN_NOT_OK(storage::Snapshot::Write(dir_, meta, catalog_, models_,
                                              durability_opts_.fault)
                         .status());
  AIDB_RETURN_NOT_OK(wal_->ResetAfterCheckpoint());
  storage::Snapshot::RemoveOld(dir_, 2);
  records_since_checkpoint_ = 0;
  ++checkpoints_written_;
  return Status::OK();
}

void Database::SetWalFlushInterval(size_t records) {
  durability_opts_.wal_flush_interval = records == 0 ? 1 : records;
  if (wal_) wal_->set_flush_interval(durability_opts_.wal_flush_interval);
}

DurabilityStats Database::durability_stats() const {
  DurabilityStats s;
  if (wal_) {
    s.wal = wal_->stats();
    s.unflushed_records = wal_->unflushed_records();
  }
  s.checkpoints_written = checkpoints_written_;
  s.recovery = recovery_stats_;
  return s;
}

Status Database::LogTxn(
    txn::TxnId stmt_txn,
    std::vector<std::pair<storage::WalRecordType, std::string>> records) {
  if (!wal_) return Status::OK();
  // Each statement logs under one transaction id even on this non-MVCC path
  // (DDL, model training): per-id grouping keeps recovery replay exact when
  // records from concurrent sessions interleave. The statement's wrapper
  // transaction id is reused while it has no MVCC writes of its own — if it
  // does (DDL inside an explicit transaction after DML), the commit record
  // appended here must not resolve those still-uncommitted ops, so a fresh
  // id is allocated instead.
  const txn::TxnId t =
      (stmt_txn != txn::kInvalidTxnId && tm_.UndoSize(stmt_txn) == 0)
          ? stmt_txn
          : tm_.AllocateTxnId();
  tm_.PinId(t);  // the id now appears in the WAL; never recycle it
  for (auto& [type, payload] : records) {
    AIDB_RETURN_NOT_OK(
        wal_->Append(storage::WalRecordType::kTxnOp,
                     storage::EncodeTxnOp({t, type, std::move(payload)}))
            .status());
  }
  AIDB_RETURN_NOT_OK(wal_->Append(storage::WalRecordType::kCommit,
                                  storage::EncodeCommit(t))
                         .status());
  records_since_checkpoint_.fetch_add(records.size() + 1,
                                      std::memory_order_relaxed);
  // No checkpoint trigger here (the statement holds the checkpoint fence
  // shared); ExecuteWithTxn checkpoints after releasing it.
  return Status::OK();
}

Result<QueryResult> Database::Execute(const std::string& sql) {
  return Execute(sql, SnapshotSettings());
}

Result<QueryResult> Database::Execute(const std::string& sql,
                                      const ExecSettings& settings) {
  Timer timer;
  if (crashed()) return Status::Aborted("database crashed; reopen to recover");

  // Trace identity for the end-to-end spans: adopt the service-minted id
  // from the settings, or — for a bare Execute outside any request — mint a
  // fresh trace so standalone statements still yield a coherent tree. The
  // guard restores the thread's previous context on every return path.
  struct TraceCtxGuard {
    monitor::SpanCollector::Context saved = monitor::SpanCollector::GetContext();
    ~TraceCtxGuard() { monitor::SpanCollector::SetContext(saved); }
  } trace_guard;
  if (spans_.enabled()) {
    monitor::SpanCollector::Context ctx = trace_guard.saved;
    if (settings.trace_id != 0) {
      ctx.trace_id = settings.trace_id;
      ctx.parent_span = settings.parent_span;
      ctx.session_id = settings.session_id;
    } else if (ctx.trace_id == 0) {
      ctx.trace_id = spans_.NextId();
      ctx.parent_span = 0;
      ctx.session_id = settings.session_id;
    }
    monitor::SpanCollector::SetContext(ctx);
  }
  monitor::SpanScope exec_span(&spans_, "execute");

  std::unique_ptr<sql::Statement> stmt;
  {
    monitor::SpanScope parse_span(&spans_, "parse");
    AIDB_ASSIGN_OR_RETURN(stmt, sql::Parser::Parse(sql));
  }
  if (exec_span.active()) exec_span.set_detail(StatementKindName(*stmt));

  StmtPlanInfo plan_info;
  AIDB_RETURN_NOT_OK(RefreshReferencedSystemViews(*stmt));

  // Direct cacheable SELECTs key on the normalized statement text (EXECUTE
  // builds its key from the template body instead, inside its branch).
  std::string direct_key;
  const std::string* direct_key_ptr = nullptr;
  if (stmt->kind() == sql::StatementKind::kSelect &&
      CacheableSelect(static_cast<const sql::SelectStatement&>(*stmt))) {
    Result<std::string> normalized = sql::NormalizeSql(sql);
    if (normalized.ok()) {
      direct_key = PlanCacheKey(normalized.ValueOrDie(), {}, settings.planner);
      direct_key_ptr = &direct_key;
    }
  }

  QueryResult result;
  Status status =
      ExecuteWithTxn(*stmt, settings, &plan_info, direct_key_ptr, &result);
  double latency_us = timer.ElapsedMicros();
  result.elapsed_ms = deterministic_timing_ ? 0.0 : timer.ElapsedMillis();
  result.plan_cache_hit = plan_info.plan_cache_hit;

  // Engine-wide telemetry: every statement is metered and logged, including
  // failures (the monitors train on error rates too).
  std::string kind = StatementKindName(*stmt);
  metrics_.GetCounter("exec.queries")->Add();
  metrics_.GetCounter("exec.stmt." + kind)->Add();
  if (!status.ok()) metrics_.GetCounter("exec.errors")->Add();
  metrics_.GetHistogram("exec.query_latency_us")->Observe(latency_us);
  if (stmt->kind() == sql::StatementKind::kSelect) {
    metrics_.GetCounter("exec.select_rows")->Add(result.rows.size());
  }

  monitor::QueryLogEntry entry;
  entry.sql = sql;
  entry.kind = std::move(kind);
  entry.ok = status.ok();
  if (!status.ok()) entry.error = status.ToString();
  entry.rows_returned = result.rows.size();
  entry.affected_rows = result.affected_rows;
  entry.work = result.operator_work;
  entry.latency_us = deterministic_timing_ ? 0.0 : latency_us;
  entry.ts_us = deterministic_timing_ ? 0.0 : uptime_.ElapsedMicros();
  entry.plan_digest = plan_info.plan_digest;
  entry.num_operators = plan_info.num_operators;
  entry.num_joins = plan_info.num_joins;
  entry.dop = static_cast<uint32_t>(settings.planner.dop);
  entry.session_id = settings.session_id;
  query_log_.Append(std::move(entry));

  if (exec_span.active()) {
    exec_span.set_value(static_cast<double>(result.operator_work));
  }
  if (!status.ok()) return status;
  return result;
}

bool Database::CacheableSelect(const sql::SelectStatement& stmt) const {
  if (stmt.explain || stmt.explain_analyze) return false;
  for (const auto& ref : stmt.from) {
    if (catalog_.IsSystemView(ref.table)) return false;
  }
  for (const auto& j : stmt.joins) {
    if (catalog_.IsSystemView(j.table.table)) return false;
  }
  for (const auto& item : stmt.items) {
    if (ExprHasPredict(item.expr.get())) return false;
  }
  for (const auto& j : stmt.joins) {
    if (ExprHasPredict(j.condition.get())) return false;
  }
  if (ExprHasPredict(stmt.where.get())) return false;
  for (const auto& g : stmt.group_by) {
    if (ExprHasPredict(g.get())) return false;
  }
  if (ExprHasPredict(stmt.having.get())) return false;
  return true;
}

bool Database::PlanStillValid(const server::CachedPlan& entry) const {
  if (entry.used_feedback &&
      entry.feedback_epoch != catalog_.feedback().epoch()) {
    return false;
  }
  for (const auto& [table, epoch] : entry.deps) {
    if (TableEpoch(table) != epoch) return false;
  }
  return true;
}

Status Database::LogTxnOps(
    txn::TxnId t,
    std::vector<std::pair<storage::WalRecordType, std::string>> records) {
  if (!wal_) return Status::OK();
  for (auto& [type, payload] : records) {
    AIDB_RETURN_NOT_OK(
        wal_->Append(storage::WalRecordType::kTxnOp,
                     storage::EncodeTxnOp({t, type, std::move(payload)}))
            .status());
  }
  tm_.NoteOpsLogged(t);
  records_since_checkpoint_.fetch_add(records.size(),
                                      std::memory_order_relaxed);
  // No checkpoint trigger here: a checkpoint between a transaction's ops and
  // its commit record would strand them. FinishCommit checks after closing.
  return Status::OK();
}

Status Database::FinishCommit(txn::TxnId t, QueryResult* result) {
  monitor::SpanScope commit_span(&spans_, "commit");
  if (commit_span.active()) {
    commit_span.set_value(static_cast<double>(tm_.UndoSize(t)));
  }
  if (tm_.UndoSize(t) == 0) {
    // Read-only (or every write already rolled back statement-level): no
    // commit timestamp, no WAL record.
    tm_.Forget(t);
    return Status::OK();
  }
  std::function<Status(uint64_t)> hook;
  if (durable()) {
    // Runs under the commit lock, so WAL commit order == commit-ts order.
    hook = [this, t](uint64_t) -> Status {
      AIDB_RETURN_NOT_OK(wal_->Append(storage::WalRecordType::kCommit,
                                      storage::EncodeCommit(t))
                             .status());
      records_since_checkpoint_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    };
  }
  uint64_t cts = 0;
  AIDB_ASSIGN_OR_RETURN(cts, tm_.Commit(t, hook));
  if (result != nullptr) result->commit_ts = cts;
  MaybeVacuum();
  // No checkpoint here: the caller still holds the checkpoint fence shared.
  // ExecuteWithTxn checkpoints after releasing it.
  return Status::OK();
}

void Database::AbortTxn(txn::TxnId t) {
  // Only transactions with unresolved kTxnOp records need an abort record;
  // ids whose writes never reached the WAL just vanish (and are recycled by
  // Forget, so failed statements consume no id).
  const bool logged = durable() && tm_.OpsLogged(t);
  UnwindWrites(tm_.TakeUndoAll(t));
  if (logged) {
    // Best effort: if the abort record cannot be appended, recovery discards
    // the transaction's unresolved ops anyway (same outcome, later).
    Status ignored = wal_->Append(storage::WalRecordType::kTxnAbort,
                                  storage::EncodeTxnAbort(t))
                         .status();
    (void)ignored;
    records_since_checkpoint_.fetch_add(1, std::memory_order_relaxed);
  }
  tm_.NoteAbort();
  tm_.Forget(t);
}

void Database::UnwindWrites(std::vector<txn::TxnWrite> writes) {
  for (const txn::TxnWrite& w : writes) {
    // Index unwind first, while both versions are still linked.
    switch (w.kind) {
      case txn::TxnWrite::Kind::kInsert:
        // Drop the row's hash entries (OnDelete touches hash indexes only;
        // the B+-tree entry goes stale and is filtered by visibility).
        catalog_.OnDelete(w.table_name, w.row, w.version->data);
        break;
      case txn::TxnWrite::Kind::kUpdate: {
        const aidb::Version* older =
            w.version->older.load(std::memory_order_acquire);
        if (older != nullptr) {
          IndexUpdate(w.table_name, w.row, w.version->data, older->data,
                      /*add_btree=*/false);
        }
        break;
      }
      case txn::TxnWrite::Kind::kDelete:
        RestoreHashEntries(w.table_name, w.row, w.version->data);
        break;
    }
    w.table->UndoWrite(w, [this](Version* v) { tm_.Retire(v); });
  }
}

void Database::IndexUpdate(const std::string& table, RowId id,
                           const Tuple& from, const Tuple& to,
                           bool add_btree) {
  auto table_res = catalog_.GetTable(table);
  if (!table_res.ok()) return;
  const Schema& schema = table_res.ValueOrDie()->schema();
  for (IndexInfo* idx : catalog_.IndexesOn(table)) {
    int col = schema.IndexOf(idx->column);
    if (col < 0) continue;
    const Value& ov = from[static_cast<size_t>(col)];
    const Value& nv = to[static_cast<size_t>(col)];
    if (!ov.is_null() && !nv.is_null() && ov == nv) continue;
    std::unique_lock<std::shared_mutex> latch(idx->latch);
    if (idx->is_btree) {
      if (add_btree && !nv.is_null()) {
        idx->btree->Insert(Catalog::BtreeKey(nv), id);
      }
    } else {
      if (!ov.is_null()) idx->hash->Erase(ov, id);
      if (!nv.is_null()) idx->hash->Insert(nv, id);
    }
  }
}

void Database::RestoreHashEntries(const std::string& table, RowId id,
                                  const Tuple& row) {
  auto table_res = catalog_.GetTable(table);
  if (!table_res.ok()) return;
  const Schema& schema = table_res.ValueOrDie()->schema();
  for (IndexInfo* idx : catalog_.IndexesOn(table)) {
    if (idx->is_btree) continue;
    int col = schema.IndexOf(idx->column);
    if (col < 0) continue;
    const Value& v = row[static_cast<size_t>(col)];
    if (v.is_null()) continue;
    std::unique_lock<std::shared_mutex> latch(idx->latch);
    idx->hash->Insert(v, id);
  }
}

void Database::MaybeVacuum() {
  if (commits_since_vacuum_.fetch_add(1, std::memory_order_relaxed) + 1 <
      64) {
    return;
  }
  commits_since_vacuum_.store(0, std::memory_order_relaxed);
  const uint64_t wm = tm_.WatermarkTs();
  metrics_.GetGauge("mvcc.watermark_ts")->Set(static_cast<int64_t>(wm));
  for (const std::string& name : catalog_.TableNames()) {
    auto t = catalog_.GetTable(name);
    if (!t.ok()) continue;
    t.ValueOrDie()->Vacuum(wm, [this](Version* v) { tm_.Retire(v); });
  }
  tm_.FreeRetired();
  // Same cadence for the storage engine: vacuum just froze slots, which is
  // what makes them flushable.
  MaybeMaintainStorage();
}

Status Database::MaybeAutoCheckpoint() {
  if (!wal_ || durability_opts_.checkpoint_every_n_records == 0) {
    return Status::OK();
  }
  if (records_since_checkpoint_.load(std::memory_order_relaxed) <
      durability_opts_.checkpoint_every_n_records) {
    return Status::OK();
  }
  return Checkpoint();
}

Status Database::ExecuteWithTxn(const sql::Statement& stmt,
                                const ExecSettings& settings,
                                StmtPlanInfo* info,
                                const std::string* direct_select_key,
                                QueryResult* result) {
  Status st =
      ExecuteWithTxnFenced(stmt, settings, info, direct_select_key, result);
  if (!st.ok()) return st;
  // Checkpoint outside the fence: the statement above held it shared, and
  // Checkpoint needs it exclusive (no statement may append ops or commit
  // while the snapshot captures a consistent cut).
  return MaybeAutoCheckpoint();
}

bool Database::ReadOnlyStatement(const sql::Statement& stmt,
                                 const ExecSettings& settings) const {
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect:  // includes EXPLAIN / EXPLAIN ANALYZE
    case sql::StatementKind::kShowModels:
      return true;
    case sql::StatementKind::kExecute: {
      // Templates can be DML: only an EXECUTE whose bound body is a SELECT is
      // read-only. A missing template qualifies too — it fails name lookup
      // before touching any state, on the same code path either way.
      const auto& s = static_cast<const sql::ExecuteStatement&>(stmt);
      const server::PreparedStore* store =
          settings.prepared ? settings.prepared : &default_prepared_;
      auto tmpl = store->Get(s.name);
      if (!tmpl.ok()) return true;
      return tmpl.ValueOrDie()->body->kind() == sql::StatementKind::kSelect;
    }
    default:
      return false;
  }
}

Status Database::ExecuteWithTxnFenced(const sql::Statement& stmt,
                                      const ExecSettings& settings,
                                      StmtPlanInfo* info,
                                      const std::string* direct_select_key,
                                      QueryResult* result) {
  // Statements run concurrently (the service serializes only DDL-class
  // work); the fence gives Checkpoint a point where no statement is mid-way
  // through its WAL ops or its commit.
  std::shared_lock<std::shared_mutex> fence(checkpoint_fence_);
  std::atomic<uint64_t>* slot =
      settings.txn_slot != nullptr ? settings.txn_slot : &default_txn_;
  switch (stmt.kind()) {
    case sql::StatementKind::kBegin: {
      txn::TxnId open = slot->load(std::memory_order_acquire);
      if (open != 0 && tm_.IsActive(open)) {
        return Status::InvalidArgument("transaction already in progress");
      }
      // A leftover id of a transaction doomed by concurrent DDL is replaced.
      slot->store(tm_.Begin(), std::memory_order_release);
      result->message = "BEGIN";
      return Status::OK();
    }
    case sql::StatementKind::kCommit: {
      txn::TxnId open = slot->exchange(0, std::memory_order_acq_rel);
      if (open == 0) {  // no transaction in progress: a benign no-op
        result->message = "COMMIT";
        return Status::OK();
      }
      if (!tm_.IsActive(open)) {
        return Status::Aborted(
            "current transaction was rolled back by concurrent DDL");
      }
      Status st = FinishCommit(open, result);
      if (!st.ok()) {
        if (tm_.IsActive(open)) AbortTxn(open);
        return st;
      }
      result->message = "COMMIT";
      return Status::OK();
    }
    case sql::StatementKind::kRollback: {
      txn::TxnId open = slot->exchange(0, std::memory_order_acq_rel);
      if (open != 0 && tm_.IsActive(open)) AbortTxn(open);
      result->message = "ROLLBACK";
      return Status::OK();
    }
    default:
      break;
  }

  ExecSettings eff = settings;
  txn::TxnId open = slot->load(std::memory_order_acquire);
  bool autocommit = true;
  if (open != 0) {
    if (!tm_.IsActive(open)) {
      slot->store(0, std::memory_order_release);
      return Status::Aborted(
          "current transaction was rolled back by concurrent DDL");
    }
    eff.txn = open;
    autocommit = false;
  } else {
    if (ReadOnlyStatement(stmt, settings)) {
      // Autocommit read: nothing to commit, no undo, no WAL — skip the
      // Begin/Forget round trips through the transaction registry and pin a
      // latest-committed snapshot through the lock-free epoch slots instead.
      // The pin watermark-protects the snapshot and serial-protects the
      // version-chain walks for exactly the statement's execution window.
      txn::ReadPin pin(&tm_);
      eff.txn = txn::kInvalidTxnId;
      eff.snapshot = pin.snapshot();
      return ExecuteStatement(stmt, eff, info, direct_select_key, result);
    }
    // Every other statement runs inside a transaction: the registration pins
    // the snapshot against vacuum for the whole chain-walking window, and DML
    // commits through the same path as explicit transactions.
    eff.txn = tm_.Begin();
  }
  eff.snapshot = tm_.SnapshotFor(eff.txn);
  const size_t mark = autocommit ? 0 : tm_.UndoSize(eff.txn);

  Status st = ExecuteStatement(stmt, eff, info, direct_select_key, result);

  if (autocommit) {
    if (st.ok()) st = FinishCommit(eff.txn, result);
    if (!st.ok() && tm_.IsActive(eff.txn)) AbortTxn(eff.txn);
  } else if (!st.ok()) {
    if (st.code() == StatusCode::kAborted) {
      // Write-write conflict or a failed WAL append: the transaction cannot
      // proceed consistently — whole-transaction abort.
      if (tm_.IsActive(eff.txn)) AbortTxn(eff.txn);
      slot->store(0, std::memory_order_release);
    } else {
      // Statement-level rollback: this statement's writes unwind, the
      // transaction stays open.
      UnwindWrites(tm_.TakeUndoFrom(eff.txn, mark));
    }
  }
  return st;
}

Status Database::ExecuteStatement(const sql::Statement& stmt_ref,
                                  const ExecSettings& settings,
                                  StmtPlanInfo* info,
                                  const std::string* direct_select_key,
                                  QueryResult* result_out) {
  QueryResult& result = *result_out;
  const sql::Statement* stmt = &stmt_ref;
  // System views are read-only projections of engine state: a write (or an
  // index) against one would be silently wiped by the next refresh.
  auto reject_system_view = [&](const std::string& table) -> Status {
    if (catalog_.IsSystemView(table)) {
      return Status::InvalidArgument("system view " + table + " is read-only");
    }
    return Status::OK();
  };
  switch (stmt->kind()) {
    case sql::StatementKind::kSelect: {
      AIDB_ASSIGN_OR_RETURN(
          result, ExecuteSelect(static_cast<const sql::SelectStatement&>(*stmt),
                                settings, info, direct_select_key));
      break;
    }
    case sql::StatementKind::kCreateTable: {
      auto& s = static_cast<const sql::CreateTableStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(catalog_.CreateTable(s.table, s.schema).status());
      BumpTableEpoch(s.table);
      AIDB_RETURN_NOT_OK(LogTxn(settings.txn, {{storage::WalRecordType::kCreateTable,
                                  storage::EncodeCreateTable({s.table, s.schema})}}));
      result.message = "CREATE TABLE " + s.table;
      break;
    }
    case sql::StatementKind::kDropTable: {
      auto& s = static_cast<const sql::DropTableStatement&>(*stmt);
      if (auto dropped = catalog_.GetTable(s.table); dropped.ok()) {
        // DDL wins over open transactions: writers holding uncommitted
        // versions in this table are rolled back before the drop frees the
        // storage their undo entries reference.
        for (txn::TxnId doomed :
             tm_.TxnsTouching(dropped.ValueOrDie()->uid())) {
          AbortTxn(doomed);
        }
        // Release the dropped table's column mirrors (uid keying already
        // makes stale reuse impossible; this is purely a memory release).
        column_cache_.Evict(dropped.ValueOrDie()->uid());
      }
      AIDB_RETURN_NOT_OK(catalog_.DropTable(s.table));
      BumpTableEpoch(s.table);
      AIDB_RETURN_NOT_OK(LogTxn(settings.txn, {{storage::WalRecordType::kDropTable,
                                  storage::EncodeDropTable(s.table)}}));
      result.message = "DROP TABLE " + s.table;
      break;
    }
    case sql::StatementKind::kCreateIndex: {
      auto& s = static_cast<const sql::CreateIndexStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(reject_system_view(s.table));
      if (auto t = catalog_.GetTable(s.table); t.ok()) {
        // The backfill walks latest-committed rows; a transaction's
        // uncommitted writes would be missing from the index after its
        // commit. DDL wins: such writers are rolled back first.
        for (txn::TxnId doomed : tm_.TxnsTouching(t.ValueOrDie()->uid())) {
          AbortTxn(doomed);
        }
      }
      AIDB_RETURN_NOT_OK(
          catalog_.CreateIndex(s.index, s.table, s.column, s.is_btree).status());
      BumpTableEpoch(s.table);
      AIDB_RETURN_NOT_OK(LogTxn(
          settings.txn,
          {{storage::WalRecordType::kCreateIndex,
            storage::EncodeCreateIndex({s.index, s.table, s.column, s.is_btree})}}));
      result.message = "CREATE INDEX " + s.index;
      break;
    }
    case sql::StatementKind::kDropIndex: {
      auto& s = static_cast<const sql::DropIndexStatement&>(*stmt);
      // Resolve the owning table before the drop: cached plans scanning it
      // (via this index or not) must be invalidated.
      std::string owner;
      for (const IndexInfo* idx : catalog_.AllIndexes()) {
        if (idx->name == s.index) {
          owner = idx->table;
          break;
        }
      }
      AIDB_RETURN_NOT_OK(catalog_.DropIndex(s.index));
      if (!owner.empty()) BumpTableEpoch(owner);
      AIDB_RETURN_NOT_OK(LogTxn(settings.txn, {{storage::WalRecordType::kDropIndex,
                                  storage::EncodeDropIndex(s.index)}}));
      result.message = "DROP INDEX " + s.index;
      break;
    }
    case sql::StatementKind::kInsert: {
      auto& s = static_cast<const sql::InsertStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(reject_system_view(s.table));
      Table* table = nullptr;
      AIDB_ASSIGN_OR_RETURN(table, catalog_.GetTable(s.table));
      // Statement atomicity: validate every row before touching the table so
      // a bad later row cannot leave a half-applied INSERT (the transaction
      // wrapper would unwind it, but failing fast keeps the undo log clean).
      for (const auto& row : s.rows) AIDB_RETURN_NOT_OK(table->ValidateRow(row));
      storage::InsertPayload wal_rows;
      for (const auto& row : s.rows) {
        // Fresh slots need no row lock: no other transaction can see them,
        // and a concurrent writer cannot target an id it cannot see.
        txn::TxnWrite undo;
        RowId id = 0;
        AIDB_ASSIGN_OR_RETURN(id, table->InsertTxn(row, settings.txn, &undo));
        tm_.RecordWrite(settings.txn, undo);
        catalog_.OnInsert(s.table, id, row);
        if (wal_rows.rows.empty()) wal_rows.first_row_id = id;
        if (durable()) wal_rows.rows.push_back(row);
      }
      if (durable() && !s.rows.empty()) {
        wal_rows.table = s.table;
        AIDB_RETURN_NOT_OK(
            LogTxnOps(settings.txn, {{storage::WalRecordType::kInsert,
                                      storage::EncodeInsert(wal_rows)}}));
      }
      result.affected_rows = s.rows.size();
      result.message = "INSERT " + std::to_string(s.rows.size());
      break;
    }
    case sql::StatementKind::kUpdate: {
      auto& s = static_cast<const sql::UpdateStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(reject_system_view(s.table));
      Table* table = nullptr;
      AIDB_ASSIGN_OR_RETURN(table, catalog_.GetTable(s.table));
      // Bind against the table schema.
      std::vector<exec::OutputCol> schema;
      for (const auto& col : table->schema().columns())
        schema.push_back({s.table, col.name, col.type});
      std::optional<exec::BoundExpr> where;
      if (s.where) {
        exec::BoundExpr b;
        AIDB_ASSIGN_OR_RETURN(b, exec::BoundExpr::Bind(*s.where, schema, &models_));
        where = std::move(b);
      }
      struct Assign {
        size_t column;
        exec::BoundExpr expr;
      };
      std::vector<Assign> assigns;
      for (const auto& [col, e] : s.assignments) {
        int idx = table->schema().IndexOf(col);
        if (idx < 0) return Status::NotFound("column " + col);
        exec::BoundExpr b;
        AIDB_ASSIGN_OR_RETURN(b, exec::BoundExpr::Bind(*e, schema, &models_));
        assigns.push_back({static_cast<size_t>(idx), std::move(b)});
      }
      struct Change {
        RowId id;
        Tuple old_row;
        Tuple new_row;
      };
      std::vector<Change> changes;
      // All WHERE/SET expressions evaluate before any row is touched, so an
      // evaluation error aborts the statement with nothing applied. The scan
      // runs under the statement snapshot: it sees this transaction's own
      // earlier writes and nothing uncommitted from anyone else.
      Status eval_err;
      table->ForEachVisible(settings.snapshot, [&](RowId id, const Tuple& row) {
        if (!eval_err.ok()) return;
        if (where) {
          Result<bool> keep = where->EvalBool(row);
          if (!keep.ok()) {
            eval_err = keep.status();
            return;
          }
          if (!keep.ValueOrDie()) return;
        }
        Tuple updated_row = row;
        for (const auto& a : assigns) {
          Result<Value> v = a.expr.Eval(row);
          if (!v.ok()) {
            eval_err = v.status();
            return;
          }
          updated_row[a.column] = std::move(v).ValueOrDie();
        }
        changes.push_back({id, row, std::move(updated_row)});
      });
      AIDB_RETURN_NOT_OK(eval_err);
      for (const Change& c : changes) {
        // No-wait first-committer-wins gate, then the timestamp-check ground
        // truth inside UpdateTxn.
        if (!tm_.TryRowLock(settings.txn,
                            txn::RowLockKey(table->uid(), c.id))) {
          tm_.NoteConflict();
          return Status::Aborted("write-write conflict on " + s.table +
                                 " row " + std::to_string(c.id) +
                                 " (row lock held by concurrent transaction)");
        }
        txn::TxnWrite undo;
        Status st = table->UpdateTxn(c.id, c.new_row, settings.snapshot, &undo);
        if (st.code() == StatusCode::kAborted) tm_.NoteConflict();
        AIDB_RETURN_NOT_OK(st);
        tm_.RecordWrite(settings.txn, undo);
        IndexUpdate(s.table, c.id, c.old_row, c.new_row, /*add_btree=*/true);
      }
      if (durable() && !changes.empty()) {
        std::vector<std::pair<RowId, Tuple>> after_images;
        after_images.reserve(changes.size());
        for (Change& c : changes) {
          after_images.emplace_back(c.id, std::move(c.new_row));
        }
        AIDB_RETURN_NOT_OK(LogTxnOps(
            settings.txn,
            {{storage::WalRecordType::kUpdate,
              storage::EncodeUpdate({s.table, after_images})}}));
      }
      result.affected_rows = changes.size();
      result.message = "UPDATE " + std::to_string(changes.size());
      break;
    }
    case sql::StatementKind::kDelete: {
      auto& s = static_cast<const sql::DeleteStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(reject_system_view(s.table));
      Table* table = nullptr;
      AIDB_ASSIGN_OR_RETURN(table, catalog_.GetTable(s.table));
      std::vector<exec::OutputCol> schema;
      for (const auto& col : table->schema().columns())
        schema.push_back({s.table, col.name, col.type});
      std::optional<exec::BoundExpr> where;
      if (s.where) {
        exec::BoundExpr b;
        AIDB_ASSIGN_OR_RETURN(b, exec::BoundExpr::Bind(*s.where, schema, &models_));
        where = std::move(b);
      }
      std::vector<std::pair<RowId, Tuple>> victims;
      Status eval_err;
      table->ForEachVisible(settings.snapshot, [&](RowId id, const Tuple& row) {
        if (!eval_err.ok()) return;
        if (where) {
          Result<bool> keep = where->EvalBool(row);
          if (!keep.ok()) {
            eval_err = keep.status();
            return;
          }
          if (!keep.ValueOrDie()) return;
        }
        victims.emplace_back(id, row);
      });
      AIDB_RETURN_NOT_OK(eval_err);
      for (auto& [id, row] : victims) {
        if (!tm_.TryRowLock(settings.txn, txn::RowLockKey(table->uid(), id))) {
          tm_.NoteConflict();
          return Status::Aborted("write-write conflict on " + s.table +
                                 " row " + std::to_string(id) +
                                 " (row lock held by concurrent transaction)");
        }
        txn::TxnWrite undo;
        Status st = table->DeleteTxn(id, settings.snapshot, &undo);
        if (st.code() == StatusCode::kAborted) tm_.NoteConflict();
        AIDB_RETURN_NOT_OK(st);
        tm_.RecordWrite(settings.txn, undo);
        // Hash entries drop now (queries never consult them through MVCC
        // reads); rollback restores them from the still-linked version.
        catalog_.OnDelete(s.table, id, row);
      }
      if (durable() && !victims.empty()) {
        storage::DeletePayload p;
        p.table = s.table;
        for (const auto& [id, row] : victims) p.rows.push_back(id);
        AIDB_RETURN_NOT_OK(
            LogTxnOps(settings.txn, {{storage::WalRecordType::kDelete,
                                      storage::EncodeDelete(p)}}));
      }
      result.affected_rows = victims.size();
      result.message = "DELETE " + std::to_string(victims.size());
      break;
    }
    case sql::StatementKind::kAnalyze: {
      auto& s = static_cast<const sql::AnalyzeStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(catalog_.Analyze(s.table));
      // New statistics change plan choice; strand cached plans for the table.
      BumpTableEpoch(s.table);
      result.message = "ANALYZE " + s.table;
      break;
    }
    case sql::StatementKind::kCreateModel: {
      auto& s = static_cast<const sql::CreateModelStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(models_.Train(catalog_, s));
      AIDB_RETURN_NOT_OK(
          LogTxn(settings.txn, {{storage::WalRecordType::kCreateModel,
                   storage::EncodeCreateModel(
                       {s.model, s.model_type, s.target, s.table, s.features})}}));
      const db4ai::ModelInfo* info = nullptr;
      AIDB_ASSIGN_OR_RETURN(info, models_.GetInfo(s.model));
      result.message = "CREATE MODEL " + s.model + " v" +
                       std::to_string(info->version) + " (rows=" +
                       std::to_string(info->train_rows) + ")";
      break;
    }
    case sql::StatementKind::kShowModels: {
      result.columns = {"name", "type", "table", "target", "version", "rows"};
      for (const auto& m : models_.ListModels()) {
        result.rows.push_back({Value(m.name), Value(m.type), Value(m.table),
                               Value(m.target),
                               Value(static_cast<int64_t>(m.version)),
                               Value(static_cast<int64_t>(m.train_rows))});
      }
      break;
    }
    case sql::StatementKind::kPrepare: {
      auto& s = static_cast<const sql::PrepareStatement&>(*stmt);
      server::PreparedStore* store =
          settings.prepared ? settings.prepared : &default_prepared_;
      std::shared_ptr<const sql::PrepareStatement> tmpl(
          static_cast<sql::PrepareStatement*>(s.Clone().release()));
      AIDB_RETURN_NOT_OK(store->Put(std::move(tmpl)));
      result.message = "PREPARE " + s.name;
      break;
    }
    case sql::StatementKind::kDeallocate: {
      auto& s = static_cast<const sql::DeallocateStatement&>(*stmt);
      server::PreparedStore* store =
          settings.prepared ? settings.prepared : &default_prepared_;
      AIDB_RETURN_NOT_OK(store->Remove(s.name));
      result.message = "DEALLOCATE " + s.name;
      break;
    }
    case sql::StatementKind::kExecute: {
      auto& s = static_cast<const sql::ExecuteStatement&>(*stmt);
      server::PreparedStore* store =
          settings.prepared ? settings.prepared : &default_prepared_;
      std::shared_ptr<const sql::PrepareStatement> tmpl;
      AIDB_ASSIGN_OR_RETURN(tmpl, store->Get(s.name));
      if (static_cast<int>(s.args.size()) < tmpl->num_params) {
        return Status::InvalidArgument(
            "EXECUTE " + s.name + " needs " + std::to_string(tmpl->num_params) +
            " argument(s), got " + std::to_string(s.args.size()));
      }
      // The EXECUTE statement itself references no tables; the body does.
      AIDB_RETURN_NOT_OK(RefreshReferencedSystemViews(*tmpl->body));
      // Instantiate the template: clone (templates are shared and immutable)
      // and splice the literal args over the $N placeholders.
      std::unique_ptr<sql::Statement> bound = tmpl->body->Clone();
      AIDB_RETURN_NOT_OK(sql::BindParams(bound.get(), s.args));
      if (bound->kind() == sql::StatementKind::kSelect) {
        const auto& sel = static_cast<const sql::SelectStatement&>(*bound);
        std::string key;
        const std::string* key_ptr = nullptr;
        if (CacheableSelect(sel)) {
          // body_text is already the canonical token rendering, so hit and
          // miss paths key identically without re-lexing.
          key = PlanCacheKey(tmpl->body_text, s.args, settings.planner);
          key_ptr = &key;
        }
        AIDB_ASSIGN_OR_RETURN(result,
                              ExecuteSelect(sel, settings, info, key_ptr));
      } else {
        // Non-SELECT template (INSERT/UPDATE/DELETE/...): dispatch the bound
        // statement through the normal switch. EXECUTE returns the inner
        // result unchanged so prepared and direct paths digest identically.
        AIDB_RETURN_NOT_OK(
            ExecuteStatement(*bound, settings, info, nullptr, &result));
      }
      break;
    }
    case sql::StatementKind::kBegin:
    case sql::StatementKind::kCommit:
    case sql::StatementKind::kRollback:
      // Handled by ExecuteWithTxn before dispatch (and PREPARE rejects
      // transaction-control bodies, so EXECUTE cannot reach here either).
      return Status::Internal(
          "transaction control reached the statement dispatcher");
  }
  return Status::OK();
}

Result<QueryResult> Database::ExecuteSelect(const sql::SelectStatement& stmt,
                                            const ExecSettings& settings,
                                            StmtPlanInfo* info,
                                            const std::string* cache_key) {
  // Fast path: check out a previously built plan. Validity (DDL epochs,
  // feedback generation) is re-checked at acquire time; a stale entry is
  // simply dropped — the fresh plan built below re-enters the cache.
  if (cache_key != nullptr) {
    std::optional<server::CachedPlan> cached = plan_cache_.Acquire(*cache_key);
    if (cached.has_value() && PlanStillValid(*cached)) {
      {
        monitor::SpanScope plan_span(&spans_, "plan");
        plan_span.set_detail("cache_hit");
      }
      metrics_.GetCounter("plan_cache.hit")->Add();
      info->plan_cache_hit = true;
      info->plan_digest = exec::PlanDigest(*cached->plan.root);
      info->num_operators = exec::CountOperators(*cached->plan.root);
      info->num_joins = exec::CountJoins(*cached->plan.root);
      QueryResult result;
      Status run = RunSelectPlan(cached->plan, stmt, settings, &result);
      // Check the plan back in even after a runtime error: Open() resets all
      // operator state, and evaluation errors are data-dependent, not
      // plan-dependent. The per-statement cancel pointer and snapshot must
      // not outlive the statement, though.
      cached->plan.root->SetCancel(nullptr);
      cached->plan.root->SetSnapshot(txn::Snapshot{});
      plan_cache_.Release(std::move(*cached));
      AIDB_RETURN_NOT_OK(run);
      return result;
    }
    metrics_.GetCounter("plan_cache.miss")->Add();
  }

  exec::PhysicalPlan plan;
  {
    monitor::SpanScope plan_span(&spans_, "plan");
    if (plan_span.active() && cache_key != nullptr) {
      plan_span.set_detail("cache_miss");
    }
    AIDB_ASSIGN_OR_RETURN(plan, planner_.Plan(stmt, settings.planner));
  }

  info->plan_digest = exec::PlanDigest(*plan.root);
  info->num_operators = exec::CountOperators(*plan.root);
  info->num_joins = exec::CountJoins(*plan.root);

  QueryResult result;
  auto join_order_line = [&]() -> std::string {
    if (!plan.join_plan) return "";
    return "join order: " + plan.join_plan->ToString(plan.graph) +
           " (est_cost=" + std::to_string(plan.join_plan->cost) + ")\n";
  };
  // EXPLAIN output is real result rows (column "plan", one line per row) so
  // it composes with the normal result pipeline; `message` keeps carrying the
  // full text as the back-compat accessor.
  auto emit_plan_rows = [&](std::string text) {
    result.columns.assign(1, "plan");
    result.rows.clear();
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      result.rows.push_back({Value(text.substr(start, end - start))});
      start = end + 1;
    }
    result.message = std::move(text);
  };

  if (stmt.explain && !stmt.explain_analyze) {
    emit_plan_rows(plan.root->Describe() + join_order_line());
    return result;
  }

  AIDB_RETURN_NOT_OK(RunSelectPlan(plan, stmt, settings, &result));

  if (stmt.explain_analyze) {
    emit_plan_rows(exec::RenderTraceText(last_trace_) + join_order_line());
  }

  if (cache_key != nullptr) {
    server::CachedPlan entry;
    entry.key = *cache_key;
    // The graph's predicate/condition pointers alias the statement AST,
    // which dies with this call; scrub them before the plan outlives it.
    // (Execution never reads them — they are planner-time annotations.)
    for (auto& rel : plan.graph.rels) rel.local_predicates.clear();
    for (auto& edge : plan.graph.edges) edge.condition = nullptr;
    for (const auto& rel : plan.graph.rels) {
      entry.deps.emplace_back(rel.table, TableEpoch(rel.table));
    }
    if (plan.graph.rels.empty()) {
      // Single-table plans may skip graph construction; fall back to the
      // statement's table references.
      for (const auto& ref : stmt.from) {
        entry.deps.emplace_back(ref.table, TableEpoch(ref.table));
      }
      for (const auto& j : stmt.joins) {
        entry.deps.emplace_back(j.table.table, TableEpoch(j.table.table));
      }
    }
    entry.used_feedback = settings.planner.use_card_feedback;
    entry.feedback_epoch = catalog_.feedback().epoch();
    plan.root->SetCancel(nullptr);
    plan.root->SetSnapshot(txn::Snapshot{});
    entry.plan = std::move(plan);
    plan_cache_.Release(std::move(entry));
  }
  return result;
}

Status Database::RunSelectPlan(exec::PhysicalPlan& plan,
                               const sql::SelectStatement& stmt,
                               const ExecSettings& settings,
                               QueryResult* result) {
  for (const auto& col : plan.root->output()) {
    result->columns.push_back(col.table.empty() ? col.name
                                                : col.table + "." + col.name);
  }

  // Always set (not just when true): a cached plan carries whatever tracing
  // flag its previous run left behind.
  bool traced = tracing_ || stmt.explain_analyze;
  plan.root->SetTracing(traced);
  plan.root->SetCancel(settings.cancel);
  plan.root->SetSnapshot(settings.snapshot);

  plan.root->Open();
  Tuple row;
  Status cancelled = Status::OK();
  while (plan.root->Next(&row)) {
    result->rows.push_back(std::move(row));
    // Operators poll the flag at morsel/scan granularity; this drain-side
    // check covers plans whose operators finished Open() before the flag
    // flipped but still have many buffered rows to emit.
    if ((result->rows.size() & 255) == 0 && settings.cancel != nullptr &&
        settings.cancel->load(std::memory_order_relaxed)) {
      cancelled = Status::Cancelled("query cancelled while emitting rows");
      break;
    }
  }
  plan.root->Close();
  AIDB_RETURN_NOT_OK(cancelled);
  // Next() ends the stream on a runtime evaluation error (type error,
  // overflow); surface it instead of returning a silently truncated result.
  AIDB_RETURN_NOT_OK(plan.root->FirstError());
  result->operator_work = plan.root->TotalWork();
  total_work_.fetch_add(result->operator_work, std::memory_order_relaxed);

  // Close the loop: record estimated-vs-true scan cardinalities into the
  // catalog's feedback store. LIMIT plans are skipped — their early exit
  // truncates the actual counts.
  if (stmt.limit < 0) {
    std::function<void(const exec::Operator&)> record =
        [&](const exec::Operator& op) {
          if (!op.feedback_table().empty() && op.est_rows() >= 0) {
            catalog_.feedback().Record(op.feedback_table(), op.est_rows(),
                                       static_cast<double>(op.rows_produced()));
          }
          for (const auto& c : op.children()) record(*c);
        };
    record(*plan.root);
  }

  if (traced) {
    last_trace_ = exec::BuildTrace(*plan.root, deterministic_timing_);
    has_trace_ = true;
    if (spans_.enabled() &&
        monitor::SpanCollector::GetContext().trace_id != 0) {
      RecordOperatorSpans(&spans_, last_trace_,
                          monitor::SpanCollector::GetContext().parent_span);
    }
  }
  return Status::OK();
}

}  // namespace aidb
