#include "exec/database.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "common/timer.h"
#include "sql/parser.h"
#include "storage/snapshot.h"

namespace aidb {

std::string QueryResult::ToString(size_t max_rows) const {
  std::ostringstream os;
  if (!message.empty()) os << message << "\n";
  if (!columns.empty()) {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i) os << " | ";
      os << columns[i];
    }
    os << "\n";
    for (size_t r = 0; r < rows.size() && r < max_rows; ++r) {
      for (size_t c = 0; c < rows[r].size(); ++c) {
        if (c) os << " | ";
        os << rows[r][c].ToString();
      }
      os << "\n";
    }
    if (rows.size() > max_rows) {
      os << "... (" << rows.size() << " rows total)\n";
    }
  }
  return os.str();
}

void Database::SetDop(size_t dop) {
  if (dop <= 1) {
    planner_options_.dop = 1;
    planner_options_.exec_pool = nullptr;
    return;
  }
  dop = std::min<size_t>(dop, 64);
  // Grow-only: a pool sized for the largest dop seen serves smaller settings
  // too (workers beyond dop simply never get tasks).
  if (!exec_pool_ || exec_pool_->num_threads() < dop) {
    exec_pool_ = std::make_unique<ThreadPool>(dop);
  }
  planner_options_.dop = dop;
  planner_options_.exec_pool = exec_pool_.get();
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                 const DurabilityOptions& opts) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::Internal("open: mkdir " + dir + ": " + ec.message());

  auto db = std::unique_ptr<Database>(new Database());
  AIDB_ASSIGN_OR_RETURN(db->recovery_stats_,
                        storage::RecoverDatabase(dir, &db->catalog_, &db->models_));
  storage::WalWriter::Options wopts;
  wopts.flush_interval = opts.wal_flush_interval;
  wopts.sync = opts.sync;
  wopts.fault = opts.fault;
  AIDB_ASSIGN_OR_RETURN(db->wal_,
                        storage::WalWriter::Open(dir + "/wal.log",
                                                 db->recovery_stats_.next_lsn, wopts));
  db->dir_ = dir;
  db->durability_opts_ = opts;
  db->next_txn_id_ = db->recovery_stats_.next_txn_id;
  return db;
}

Status Database::FlushWal() {
  if (!wal_) return Status::InvalidArgument("database is not durable");
  return wal_->Flush();
}

Status Database::Checkpoint() {
  if (!wal_) return Status::InvalidArgument("database is not durable");
  if (wal_->crashed()) return Status::Aborted("database crashed");
  // Protocol: (1) make the WAL durable, (2) write + rename the snapshot,
  // (3) truncate the WAL. A crash between (2) and (3) is safe because
  // recovery skips WAL records with LSN <= the snapshot's checkpoint LSN.
  AIDB_RETURN_NOT_OK(wal_->Flush());
  storage::SnapshotMeta meta;
  meta.checkpoint_lsn = wal_->last_lsn();
  meta.next_txn_id = next_txn_id_;
  AIDB_RETURN_NOT_OK(storage::Snapshot::Write(dir_, meta, catalog_, models_,
                                              durability_opts_.fault)
                         .status());
  AIDB_RETURN_NOT_OK(wal_->ResetAfterCheckpoint());
  storage::Snapshot::RemoveOld(dir_, 2);
  records_since_checkpoint_ = 0;
  ++checkpoints_written_;
  return Status::OK();
}

void Database::SetWalFlushInterval(size_t records) {
  durability_opts_.wal_flush_interval = records == 0 ? 1 : records;
  if (wal_) wal_->set_flush_interval(durability_opts_.wal_flush_interval);
}

DurabilityStats Database::durability_stats() const {
  DurabilityStats s;
  if (wal_) {
    s.wal = wal_->stats();
    s.unflushed_records = wal_->unflushed_records();
  }
  s.checkpoints_written = checkpoints_written_;
  s.recovery = recovery_stats_;
  return s;
}

Status Database::LogTxn(
    std::vector<std::pair<storage::WalRecordType, std::string>> records) {
  if (!wal_) return Status::OK();
  for (auto& [type, payload] : records)
    AIDB_RETURN_NOT_OK(wal_->Append(type, std::move(payload)).status());
  AIDB_RETURN_NOT_OK(
      wal_->Append(storage::WalRecordType::kCommit,
                   storage::EncodeCommit(next_txn_id_++))
          .status());
  records_since_checkpoint_ += records.size() + 1;
  if (durability_opts_.checkpoint_every_n_records > 0 &&
      records_since_checkpoint_ >= durability_opts_.checkpoint_every_n_records) {
    return Checkpoint();
  }
  return Status::OK();
}

Result<QueryResult> Database::Execute(const std::string& sql) {
  Timer timer;
  if (crashed()) return Status::Aborted("database crashed; reopen to recover");
  std::unique_ptr<sql::Statement> stmt;
  AIDB_ASSIGN_OR_RETURN(stmt, sql::Parser::Parse(sql));

  QueryResult result;
  switch (stmt->kind()) {
    case sql::StatementKind::kSelect: {
      AIDB_ASSIGN_OR_RETURN(
          result, ExecuteSelect(static_cast<const sql::SelectStatement&>(*stmt)));
      break;
    }
    case sql::StatementKind::kCreateTable: {
      auto& s = static_cast<const sql::CreateTableStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(catalog_.CreateTable(s.table, s.schema).status());
      AIDB_RETURN_NOT_OK(LogTxn({{storage::WalRecordType::kCreateTable,
                                  storage::EncodeCreateTable({s.table, s.schema})}}));
      result.message = "CREATE TABLE " + s.table;
      break;
    }
    case sql::StatementKind::kDropTable: {
      auto& s = static_cast<const sql::DropTableStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(catalog_.DropTable(s.table));
      AIDB_RETURN_NOT_OK(LogTxn({{storage::WalRecordType::kDropTable,
                                  storage::EncodeDropTable(s.table)}}));
      result.message = "DROP TABLE " + s.table;
      break;
    }
    case sql::StatementKind::kCreateIndex: {
      auto& s = static_cast<const sql::CreateIndexStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(
          catalog_.CreateIndex(s.index, s.table, s.column, s.is_btree).status());
      AIDB_RETURN_NOT_OK(LogTxn(
          {{storage::WalRecordType::kCreateIndex,
            storage::EncodeCreateIndex({s.index, s.table, s.column, s.is_btree})}}));
      result.message = "CREATE INDEX " + s.index;
      break;
    }
    case sql::StatementKind::kDropIndex: {
      auto& s = static_cast<const sql::DropIndexStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(catalog_.DropIndex(s.index));
      AIDB_RETURN_NOT_OK(LogTxn({{storage::WalRecordType::kDropIndex,
                                  storage::EncodeDropIndex(s.index)}}));
      result.message = "DROP INDEX " + s.index;
      break;
    }
    case sql::StatementKind::kInsert: {
      auto& s = static_cast<const sql::InsertStatement&>(*stmt);
      Table* table = nullptr;
      AIDB_ASSIGN_OR_RETURN(table, catalog_.GetTable(s.table));
      // Statement atomicity: validate every row before touching the table so
      // a bad later row cannot leave a half-applied INSERT (which recovery
      // would silently roll back, diverging from the in-memory state).
      for (const auto& row : s.rows) AIDB_RETURN_NOT_OK(table->ValidateRow(row));
      storage::InsertPayload wal_rows;
      for (const auto& row : s.rows) {
        RowId id = 0;
        AIDB_ASSIGN_OR_RETURN(id, table->Insert(row));
        catalog_.OnInsert(s.table, id, row);
        if (wal_rows.rows.empty()) wal_rows.first_row_id = id;
        if (durable()) wal_rows.rows.push_back(row);
      }
      if (durable()) {
        wal_rows.table = s.table;
        AIDB_RETURN_NOT_OK(LogTxn({{storage::WalRecordType::kInsert,
                                    storage::EncodeInsert(wal_rows)}}));
      }
      result.affected_rows = s.rows.size();
      result.message = "INSERT " + std::to_string(s.rows.size());
      break;
    }
    case sql::StatementKind::kUpdate: {
      auto& s = static_cast<const sql::UpdateStatement&>(*stmt);
      Table* table = nullptr;
      AIDB_ASSIGN_OR_RETURN(table, catalog_.GetTable(s.table));
      // Bind against the table schema.
      std::vector<exec::OutputCol> schema;
      for (const auto& col : table->schema().columns())
        schema.push_back({s.table, col.name, col.type});
      std::optional<exec::BoundExpr> where;
      if (s.where) {
        exec::BoundExpr b;
        AIDB_ASSIGN_OR_RETURN(b, exec::BoundExpr::Bind(*s.where, schema, &models_));
        where = std::move(b);
      }
      struct Assign {
        size_t column;
        exec::BoundExpr expr;
      };
      std::vector<Assign> assigns;
      for (const auto& [col, e] : s.assignments) {
        int idx = table->schema().IndexOf(col);
        if (idx < 0) return Status::NotFound("column " + col);
        exec::BoundExpr b;
        AIDB_ASSIGN_OR_RETURN(b, exec::BoundExpr::Bind(*e, schema, &models_));
        assigns.push_back({static_cast<size_t>(idx), std::move(b)});
      }
      size_t updated = 0;
      std::vector<std::pair<RowId, Tuple>> changes;
      // All WHERE/SET expressions evaluate before any row is touched, so an
      // evaluation error aborts the statement with nothing applied.
      Status eval_err;
      table->ForEach([&](RowId id, const Tuple& row) {
        if (!eval_err.ok()) return;
        if (where) {
          Result<bool> keep = where->EvalBool(row);
          if (!keep.ok()) {
            eval_err = keep.status();
            return;
          }
          if (!keep.ValueOrDie()) return;
        }
        Tuple updated_row = row;
        for (const auto& a : assigns) {
          Result<Value> v = a.expr.Eval(row);
          if (!v.ok()) {
            eval_err = v.status();
            return;
          }
          updated_row[a.column] = std::move(v).ValueOrDie();
        }
        changes.emplace_back(id, std::move(updated_row));
      });
      AIDB_RETURN_NOT_OK(eval_err);
      // WAL after-images encoded before the apply loop consumes the tuples.
      std::string wal_payload;
      if (durable() && !changes.empty())
        wal_payload = storage::EncodeUpdate({s.table, changes});
      for (auto& [id, row] : changes) {
        AIDB_RETURN_NOT_OK(table->Update(id, std::move(row)));
        ++updated;
      }
      if (durable() && updated > 0) {
        AIDB_RETURN_NOT_OK(LogTxn(
            {{storage::WalRecordType::kUpdate, std::move(wal_payload)}}));
      }
      result.affected_rows = updated;
      result.message = "UPDATE " + std::to_string(updated);
      break;
    }
    case sql::StatementKind::kDelete: {
      auto& s = static_cast<const sql::DeleteStatement&>(*stmt);
      Table* table = nullptr;
      AIDB_ASSIGN_OR_RETURN(table, catalog_.GetTable(s.table));
      std::vector<exec::OutputCol> schema;
      for (const auto& col : table->schema().columns())
        schema.push_back({s.table, col.name, col.type});
      std::optional<exec::BoundExpr> where;
      if (s.where) {
        exec::BoundExpr b;
        AIDB_ASSIGN_OR_RETURN(b, exec::BoundExpr::Bind(*s.where, schema, &models_));
        where = std::move(b);
      }
      std::vector<std::pair<RowId, Tuple>> victims;
      Status eval_err;
      table->ForEach([&](RowId id, const Tuple& row) {
        if (!eval_err.ok()) return;
        if (where) {
          Result<bool> keep = where->EvalBool(row);
          if (!keep.ok()) {
            eval_err = keep.status();
            return;
          }
          if (!keep.ValueOrDie()) return;
        }
        victims.emplace_back(id, row);
      });
      AIDB_RETURN_NOT_OK(eval_err);
      for (auto& [id, row] : victims) {
        AIDB_RETURN_NOT_OK(table->Delete(id));
        catalog_.OnDelete(s.table, id, row);
      }
      if (durable() && !victims.empty()) {
        storage::DeletePayload p;
        p.table = s.table;
        for (const auto& [id, row] : victims) p.rows.push_back(id);
        AIDB_RETURN_NOT_OK(
            LogTxn({{storage::WalRecordType::kDelete, storage::EncodeDelete(p)}}));
      }
      result.affected_rows = victims.size();
      result.message = "DELETE " + std::to_string(victims.size());
      break;
    }
    case sql::StatementKind::kAnalyze: {
      auto& s = static_cast<const sql::AnalyzeStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(catalog_.Analyze(s.table));
      result.message = "ANALYZE " + s.table;
      break;
    }
    case sql::StatementKind::kCreateModel: {
      auto& s = static_cast<const sql::CreateModelStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(models_.Train(catalog_, s));
      AIDB_RETURN_NOT_OK(
          LogTxn({{storage::WalRecordType::kCreateModel,
                   storage::EncodeCreateModel(
                       {s.model, s.model_type, s.target, s.table, s.features})}}));
      const db4ai::ModelInfo* info = nullptr;
      AIDB_ASSIGN_OR_RETURN(info, models_.GetInfo(s.model));
      result.message = "CREATE MODEL " + s.model + " v" +
                       std::to_string(info->version) + " (rows=" +
                       std::to_string(info->train_rows) + ")";
      break;
    }
    case sql::StatementKind::kShowModels: {
      result.columns = {"name", "type", "table", "target", "version", "rows"};
      for (const auto& m : models_.ListModels()) {
        result.rows.push_back({Value(m.name), Value(m.type), Value(m.table),
                               Value(m.target),
                               Value(static_cast<int64_t>(m.version)),
                               Value(static_cast<int64_t>(m.train_rows))});
      }
      break;
    }
  }
  result.elapsed_ms = timer.ElapsedMillis();
  return result;
}

Result<QueryResult> Database::ExecuteSelect(const sql::SelectStatement& stmt) {
  exec::PhysicalPlan plan;
  AIDB_ASSIGN_OR_RETURN(plan, planner_.Plan(stmt, planner_options_));

  QueryResult result;
  for (const auto& col : plan.root->output()) {
    result.columns.push_back(col.table.empty() ? col.name
                                               : col.table + "." + col.name);
  }
  if (stmt.explain) {
    result.message = plan.root->Describe();
    if (plan.join_plan) {
      result.message += "join order: " + plan.join_plan->ToString(plan.graph) +
                        " (est_cost=" + std::to_string(plan.join_plan->cost) + ")\n";
    }
    return result;
  }

  plan.root->Open();
  Tuple row;
  while (plan.root->Next(&row)) result.rows.push_back(row);
  plan.root->Close();
  // Next() ends the stream on a runtime evaluation error (type error,
  // overflow); surface it instead of returning a silently truncated result.
  AIDB_RETURN_NOT_OK(plan.root->FirstError());
  result.operator_work = plan.root->TotalWork();
  total_work_ += result.operator_work;
  return result;
}

}  // namespace aidb
