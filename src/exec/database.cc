#include "exec/database.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <sstream>

#include "common/timer.h"
#include "sql/parser.h"
#include "storage/snapshot.h"

namespace aidb {

namespace {

/// Query-log `kind` strings (lowercase statement class).
std::string StatementKindName(const sql::Statement& stmt) {
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect: {
      const auto& s = static_cast<const sql::SelectStatement&>(stmt);
      if (s.explain_analyze) return "explain_analyze";
      if (s.explain) return "explain";
      return "select";
    }
    case sql::StatementKind::kCreateTable: return "create_table";
    case sql::StatementKind::kDropTable: return "drop_table";
    case sql::StatementKind::kCreateIndex: return "create_index";
    case sql::StatementKind::kDropIndex: return "drop_index";
    case sql::StatementKind::kInsert: return "insert";
    case sql::StatementKind::kUpdate: return "update";
    case sql::StatementKind::kDelete: return "delete";
    case sql::StatementKind::kAnalyze: return "analyze";
    case sql::StatementKind::kCreateModel: return "create_model";
    case sql::StatementKind::kShowModels: return "show_models";
  }
  return "unknown";
}

std::string HexDigest(uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

}  // namespace

Database::Database() : planner_(&catalog_, &models_) {
  RegisterSystemViews();
  models_.set_metrics(&metrics_);
}

void Database::RegisterSystemViews() {
  using VF = std::function<void(Tuple)>;

  Schema metrics_schema({{"name", ValueType::kString},
                         {"kind", ValueType::kString},
                         {"value", ValueType::kDouble}});
  (void)catalog_.RegisterSystemView(
      "aidb_metrics", std::move(metrics_schema), [this](const VF& emit) {
        for (const auto& m : metrics_.Snapshot()) {
          emit({Value(m.name), Value(m.kind), Value(m.value)});
        }
      });

  Schema log_schema({{"id", ValueType::kInt},
                     {"sql", ValueType::kString},
                     {"kind", ValueType::kString},
                     {"status", ValueType::kString},
                     {"rows", ValueType::kInt},
                     {"affected", ValueType::kInt},
                     {"work", ValueType::kInt},
                     {"latency_us", ValueType::kInt},
                     {"operators", ValueType::kInt},
                     {"joins", ValueType::kInt},
                     {"plan_digest", ValueType::kString},
                     {"dop", ValueType::kInt}});
  (void)catalog_.RegisterSystemView(
      "aidb_query_log", std::move(log_schema), [this](const VF& emit) {
        for (const auto& e : query_log_.Entries()) {
          emit({Value(static_cast<int64_t>(e.id)), Value(e.sql), Value(e.kind),
                Value(e.ok ? std::string("ok") : e.error),
                Value(static_cast<int64_t>(e.rows_returned)),
                Value(static_cast<int64_t>(e.affected_rows)),
                Value(static_cast<int64_t>(e.work)),
                Value(static_cast<int64_t>(e.latency_us)),
                Value(static_cast<int64_t>(e.num_operators)),
                Value(static_cast<int64_t>(e.num_joins)),
                Value(HexDigest(e.plan_digest)),
                Value(static_cast<int64_t>(e.dop))});
        }
      });

  Schema trace_schema({{"node", ValueType::kInt},
                       {"parent", ValueType::kInt},
                       {"depth", ValueType::kInt},
                       {"operator", ValueType::kString},
                       {"est_rows", ValueType::kDouble},
                       {"rows", ValueType::kInt},
                       {"batches", ValueType::kInt},
                       {"time_us", ValueType::kDouble},
                       {"workers", ValueType::kString}});
  (void)catalog_.RegisterSystemView(
      "aidb_trace", std::move(trace_schema), [this](const VF& emit) {
        if (!has_trace_) return;
        for (const auto& r : exec::FlattenTrace(last_trace_)) {
          emit({Value(r.node), Value(r.parent), Value(r.depth), Value(r.op),
                Value(r.est_rows), Value(r.rows), Value(r.batches),
                Value(r.time_us), Value(r.workers)});
        }
      });
}

Status Database::RefreshReferencedSystemViews(const sql::Statement& stmt) {
  if (stmt.kind() != sql::StatementKind::kSelect) return Status::OK();
  const auto& s = static_cast<const sql::SelectStatement&>(stmt);
  auto refresh = [this](const std::string& table) -> Status {
    if (!catalog_.IsSystemView(table)) return Status::OK();
    return catalog_.RefreshSystemView(table);
  };
  for (const auto& ref : s.from) AIDB_RETURN_NOT_OK(refresh(ref.table));
  for (const auto& j : s.joins) AIDB_RETURN_NOT_OK(refresh(j.table.table));
  return Status::OK();
}

std::string Database::LastTraceJson() const {
  return has_trace_ ? exec::TraceToJson(last_trace_) : std::string();
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::ostringstream os;
  if (!message.empty()) os << message << "\n";
  if (!columns.empty()) {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i) os << " | ";
      os << columns[i];
    }
    os << "\n";
    for (size_t r = 0; r < rows.size() && r < max_rows; ++r) {
      for (size_t c = 0; c < rows[r].size(); ++c) {
        if (c) os << " | ";
        os << rows[r][c].ToString();
      }
      os << "\n";
    }
    if (rows.size() > max_rows) {
      os << "... (" << rows.size() << " rows total)\n";
    }
  }
  return os.str();
}

void Database::SetDop(size_t dop) {
  if (dop <= 1) {
    planner_options_.dop = 1;
    planner_options_.exec_pool = nullptr;
    return;
  }
  dop = std::min<size_t>(dop, 64);
  // Grow-only: a pool sized for the largest dop seen serves smaller settings
  // too (workers beyond dop simply never get tasks).
  if (!exec_pool_ || exec_pool_->num_threads() < dop) {
    exec_pool_ = std::make_unique<ThreadPool>(dop);
    exec_pool_->set_metrics(&metrics_);
  }
  planner_options_.dop = dop;
  planner_options_.exec_pool = exec_pool_.get();
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                 const DurabilityOptions& opts) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::Internal("open: mkdir " + dir + ": " + ec.message());

  auto db = std::unique_ptr<Database>(new Database());
  AIDB_ASSIGN_OR_RETURN(db->recovery_stats_,
                        storage::RecoverDatabase(dir, &db->catalog_, &db->models_));
  storage::WalWriter::Options wopts;
  wopts.flush_interval = opts.wal_flush_interval;
  wopts.sync = opts.sync;
  wopts.fault = opts.fault;
  wopts.metrics = &db->metrics_;
  AIDB_ASSIGN_OR_RETURN(db->wal_,
                        storage::WalWriter::Open(dir + "/wal.log",
                                                 db->recovery_stats_.next_lsn, wopts));
  db->dir_ = dir;
  db->durability_opts_ = opts;
  db->next_txn_id_ = db->recovery_stats_.next_txn_id;
  return db;
}

Status Database::FlushWal() {
  if (!wal_) return Status::InvalidArgument("database is not durable");
  return wal_->Flush();
}

Status Database::Checkpoint() {
  if (!wal_) return Status::InvalidArgument("database is not durable");
  if (wal_->crashed()) return Status::Aborted("database crashed");
  // Protocol: (1) make the WAL durable, (2) write + rename the snapshot,
  // (3) truncate the WAL. A crash between (2) and (3) is safe because
  // recovery skips WAL records with LSN <= the snapshot's checkpoint LSN.
  AIDB_RETURN_NOT_OK(wal_->Flush());
  storage::SnapshotMeta meta;
  meta.checkpoint_lsn = wal_->last_lsn();
  meta.next_txn_id = next_txn_id_;
  AIDB_RETURN_NOT_OK(storage::Snapshot::Write(dir_, meta, catalog_, models_,
                                              durability_opts_.fault)
                         .status());
  AIDB_RETURN_NOT_OK(wal_->ResetAfterCheckpoint());
  storage::Snapshot::RemoveOld(dir_, 2);
  records_since_checkpoint_ = 0;
  ++checkpoints_written_;
  return Status::OK();
}

void Database::SetWalFlushInterval(size_t records) {
  durability_opts_.wal_flush_interval = records == 0 ? 1 : records;
  if (wal_) wal_->set_flush_interval(durability_opts_.wal_flush_interval);
}

DurabilityStats Database::durability_stats() const {
  DurabilityStats s;
  if (wal_) {
    s.wal = wal_->stats();
    s.unflushed_records = wal_->unflushed_records();
  }
  s.checkpoints_written = checkpoints_written_;
  s.recovery = recovery_stats_;
  return s;
}

Status Database::LogTxn(
    std::vector<std::pair<storage::WalRecordType, std::string>> records) {
  if (!wal_) return Status::OK();
  for (auto& [type, payload] : records)
    AIDB_RETURN_NOT_OK(wal_->Append(type, std::move(payload)).status());
  AIDB_RETURN_NOT_OK(
      wal_->Append(storage::WalRecordType::kCommit,
                   storage::EncodeCommit(next_txn_id_++))
          .status());
  records_since_checkpoint_ += records.size() + 1;
  if (durability_opts_.checkpoint_every_n_records > 0 &&
      records_since_checkpoint_ >= durability_opts_.checkpoint_every_n_records) {
    return Checkpoint();
  }
  return Status::OK();
}

Result<QueryResult> Database::Execute(const std::string& sql) {
  Timer timer;
  if (crashed()) return Status::Aborted("database crashed; reopen to recover");
  std::unique_ptr<sql::Statement> stmt;
  AIDB_ASSIGN_OR_RETURN(stmt, sql::Parser::Parse(sql));

  last_plan_info_ = {};
  AIDB_RETURN_NOT_OK(RefreshReferencedSystemViews(*stmt));

  QueryResult result;
  Status status = ExecuteStatement(*stmt, &result);
  double latency_us = timer.ElapsedMicros();
  result.elapsed_ms = deterministic_timing_ ? 0.0 : timer.ElapsedMillis();

  // Engine-wide telemetry: every statement is metered and logged, including
  // failures (the monitors train on error rates too).
  std::string kind = StatementKindName(*stmt);
  metrics_.GetCounter("exec.queries")->Add();
  metrics_.GetCounter("exec.stmt." + kind)->Add();
  if (!status.ok()) metrics_.GetCounter("exec.errors")->Add();
  metrics_.GetHistogram("exec.query_latency_us")->Observe(latency_us);
  if (stmt->kind() == sql::StatementKind::kSelect) {
    metrics_.GetCounter("exec.select_rows")->Add(result.rows.size());
  }

  monitor::QueryLogEntry entry;
  entry.sql = sql;
  entry.kind = std::move(kind);
  entry.ok = status.ok();
  if (!status.ok()) entry.error = status.ToString();
  entry.rows_returned = result.rows.size();
  entry.affected_rows = result.affected_rows;
  entry.work = result.operator_work;
  entry.latency_us = deterministic_timing_ ? 0.0 : latency_us;
  entry.ts_us = deterministic_timing_ ? 0.0 : uptime_.ElapsedMicros();
  entry.plan_digest = last_plan_info_.plan_digest;
  entry.num_operators = last_plan_info_.num_operators;
  entry.num_joins = last_plan_info_.num_joins;
  entry.dop = static_cast<uint32_t>(planner_options_.dop);
  query_log_.Append(std::move(entry));

  if (!status.ok()) return status;
  return result;
}

Status Database::ExecuteStatement(const sql::Statement& stmt_ref,
                                  QueryResult* result_out) {
  QueryResult& result = *result_out;
  const sql::Statement* stmt = &stmt_ref;
  // System views are read-only projections of engine state: a write (or an
  // index) against one would be silently wiped by the next refresh.
  auto reject_system_view = [&](const std::string& table) -> Status {
    if (catalog_.IsSystemView(table)) {
      return Status::InvalidArgument("system view " + table + " is read-only");
    }
    return Status::OK();
  };
  switch (stmt->kind()) {
    case sql::StatementKind::kSelect: {
      AIDB_ASSIGN_OR_RETURN(
          result, ExecuteSelect(static_cast<const sql::SelectStatement&>(*stmt)));
      break;
    }
    case sql::StatementKind::kCreateTable: {
      auto& s = static_cast<const sql::CreateTableStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(catalog_.CreateTable(s.table, s.schema).status());
      AIDB_RETURN_NOT_OK(LogTxn({{storage::WalRecordType::kCreateTable,
                                  storage::EncodeCreateTable({s.table, s.schema})}}));
      result.message = "CREATE TABLE " + s.table;
      break;
    }
    case sql::StatementKind::kDropTable: {
      auto& s = static_cast<const sql::DropTableStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(catalog_.DropTable(s.table));
      AIDB_RETURN_NOT_OK(LogTxn({{storage::WalRecordType::kDropTable,
                                  storage::EncodeDropTable(s.table)}}));
      result.message = "DROP TABLE " + s.table;
      break;
    }
    case sql::StatementKind::kCreateIndex: {
      auto& s = static_cast<const sql::CreateIndexStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(reject_system_view(s.table));
      AIDB_RETURN_NOT_OK(
          catalog_.CreateIndex(s.index, s.table, s.column, s.is_btree).status());
      AIDB_RETURN_NOT_OK(LogTxn(
          {{storage::WalRecordType::kCreateIndex,
            storage::EncodeCreateIndex({s.index, s.table, s.column, s.is_btree})}}));
      result.message = "CREATE INDEX " + s.index;
      break;
    }
    case sql::StatementKind::kDropIndex: {
      auto& s = static_cast<const sql::DropIndexStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(catalog_.DropIndex(s.index));
      AIDB_RETURN_NOT_OK(LogTxn({{storage::WalRecordType::kDropIndex,
                                  storage::EncodeDropIndex(s.index)}}));
      result.message = "DROP INDEX " + s.index;
      break;
    }
    case sql::StatementKind::kInsert: {
      auto& s = static_cast<const sql::InsertStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(reject_system_view(s.table));
      Table* table = nullptr;
      AIDB_ASSIGN_OR_RETURN(table, catalog_.GetTable(s.table));
      // Statement atomicity: validate every row before touching the table so
      // a bad later row cannot leave a half-applied INSERT (which recovery
      // would silently roll back, diverging from the in-memory state).
      for (const auto& row : s.rows) AIDB_RETURN_NOT_OK(table->ValidateRow(row));
      storage::InsertPayload wal_rows;
      for (const auto& row : s.rows) {
        RowId id = 0;
        AIDB_ASSIGN_OR_RETURN(id, table->Insert(row));
        catalog_.OnInsert(s.table, id, row);
        if (wal_rows.rows.empty()) wal_rows.first_row_id = id;
        if (durable()) wal_rows.rows.push_back(row);
      }
      if (durable()) {
        wal_rows.table = s.table;
        AIDB_RETURN_NOT_OK(LogTxn({{storage::WalRecordType::kInsert,
                                    storage::EncodeInsert(wal_rows)}}));
      }
      result.affected_rows = s.rows.size();
      result.message = "INSERT " + std::to_string(s.rows.size());
      break;
    }
    case sql::StatementKind::kUpdate: {
      auto& s = static_cast<const sql::UpdateStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(reject_system_view(s.table));
      Table* table = nullptr;
      AIDB_ASSIGN_OR_RETURN(table, catalog_.GetTable(s.table));
      // Bind against the table schema.
      std::vector<exec::OutputCol> schema;
      for (const auto& col : table->schema().columns())
        schema.push_back({s.table, col.name, col.type});
      std::optional<exec::BoundExpr> where;
      if (s.where) {
        exec::BoundExpr b;
        AIDB_ASSIGN_OR_RETURN(b, exec::BoundExpr::Bind(*s.where, schema, &models_));
        where = std::move(b);
      }
      struct Assign {
        size_t column;
        exec::BoundExpr expr;
      };
      std::vector<Assign> assigns;
      for (const auto& [col, e] : s.assignments) {
        int idx = table->schema().IndexOf(col);
        if (idx < 0) return Status::NotFound("column " + col);
        exec::BoundExpr b;
        AIDB_ASSIGN_OR_RETURN(b, exec::BoundExpr::Bind(*e, schema, &models_));
        assigns.push_back({static_cast<size_t>(idx), std::move(b)});
      }
      size_t updated = 0;
      std::vector<std::pair<RowId, Tuple>> changes;
      // All WHERE/SET expressions evaluate before any row is touched, so an
      // evaluation error aborts the statement with nothing applied.
      Status eval_err;
      table->ForEach([&](RowId id, const Tuple& row) {
        if (!eval_err.ok()) return;
        if (where) {
          Result<bool> keep = where->EvalBool(row);
          if (!keep.ok()) {
            eval_err = keep.status();
            return;
          }
          if (!keep.ValueOrDie()) return;
        }
        Tuple updated_row = row;
        for (const auto& a : assigns) {
          Result<Value> v = a.expr.Eval(row);
          if (!v.ok()) {
            eval_err = v.status();
            return;
          }
          updated_row[a.column] = std::move(v).ValueOrDie();
        }
        changes.emplace_back(id, std::move(updated_row));
      });
      AIDB_RETURN_NOT_OK(eval_err);
      // WAL after-images encoded before the apply loop consumes the tuples.
      std::string wal_payload;
      if (durable() && !changes.empty())
        wal_payload = storage::EncodeUpdate({s.table, changes});
      for (auto& [id, row] : changes) {
        AIDB_RETURN_NOT_OK(table->Update(id, std::move(row)));
        ++updated;
      }
      if (durable() && updated > 0) {
        AIDB_RETURN_NOT_OK(LogTxn(
            {{storage::WalRecordType::kUpdate, std::move(wal_payload)}}));
      }
      result.affected_rows = updated;
      result.message = "UPDATE " + std::to_string(updated);
      break;
    }
    case sql::StatementKind::kDelete: {
      auto& s = static_cast<const sql::DeleteStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(reject_system_view(s.table));
      Table* table = nullptr;
      AIDB_ASSIGN_OR_RETURN(table, catalog_.GetTable(s.table));
      std::vector<exec::OutputCol> schema;
      for (const auto& col : table->schema().columns())
        schema.push_back({s.table, col.name, col.type});
      std::optional<exec::BoundExpr> where;
      if (s.where) {
        exec::BoundExpr b;
        AIDB_ASSIGN_OR_RETURN(b, exec::BoundExpr::Bind(*s.where, schema, &models_));
        where = std::move(b);
      }
      std::vector<std::pair<RowId, Tuple>> victims;
      Status eval_err;
      table->ForEach([&](RowId id, const Tuple& row) {
        if (!eval_err.ok()) return;
        if (where) {
          Result<bool> keep = where->EvalBool(row);
          if (!keep.ok()) {
            eval_err = keep.status();
            return;
          }
          if (!keep.ValueOrDie()) return;
        }
        victims.emplace_back(id, row);
      });
      AIDB_RETURN_NOT_OK(eval_err);
      for (auto& [id, row] : victims) {
        AIDB_RETURN_NOT_OK(table->Delete(id));
        catalog_.OnDelete(s.table, id, row);
      }
      if (durable() && !victims.empty()) {
        storage::DeletePayload p;
        p.table = s.table;
        for (const auto& [id, row] : victims) p.rows.push_back(id);
        AIDB_RETURN_NOT_OK(
            LogTxn({{storage::WalRecordType::kDelete, storage::EncodeDelete(p)}}));
      }
      result.affected_rows = victims.size();
      result.message = "DELETE " + std::to_string(victims.size());
      break;
    }
    case sql::StatementKind::kAnalyze: {
      auto& s = static_cast<const sql::AnalyzeStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(catalog_.Analyze(s.table));
      result.message = "ANALYZE " + s.table;
      break;
    }
    case sql::StatementKind::kCreateModel: {
      auto& s = static_cast<const sql::CreateModelStatement&>(*stmt);
      AIDB_RETURN_NOT_OK(models_.Train(catalog_, s));
      AIDB_RETURN_NOT_OK(
          LogTxn({{storage::WalRecordType::kCreateModel,
                   storage::EncodeCreateModel(
                       {s.model, s.model_type, s.target, s.table, s.features})}}));
      const db4ai::ModelInfo* info = nullptr;
      AIDB_ASSIGN_OR_RETURN(info, models_.GetInfo(s.model));
      result.message = "CREATE MODEL " + s.model + " v" +
                       std::to_string(info->version) + " (rows=" +
                       std::to_string(info->train_rows) + ")";
      break;
    }
    case sql::StatementKind::kShowModels: {
      result.columns = {"name", "type", "table", "target", "version", "rows"};
      for (const auto& m : models_.ListModels()) {
        result.rows.push_back({Value(m.name), Value(m.type), Value(m.table),
                               Value(m.target),
                               Value(static_cast<int64_t>(m.version)),
                               Value(static_cast<int64_t>(m.train_rows))});
      }
      break;
    }
  }
  return Status::OK();
}

Result<QueryResult> Database::ExecuteSelect(const sql::SelectStatement& stmt) {
  exec::PhysicalPlan plan;
  AIDB_ASSIGN_OR_RETURN(plan, planner_.Plan(stmt, planner_options_));

  last_plan_info_.plan_digest = exec::PlanDigest(*plan.root);
  last_plan_info_.num_operators = exec::CountOperators(*plan.root);
  last_plan_info_.num_joins = exec::CountJoins(*plan.root);

  QueryResult result;
  auto join_order_line = [&]() -> std::string {
    if (!plan.join_plan) return "";
    return "join order: " + plan.join_plan->ToString(plan.graph) +
           " (est_cost=" + std::to_string(plan.join_plan->cost) + ")\n";
  };
  // EXPLAIN output is real result rows (column "plan", one line per row) so
  // it composes with the normal result pipeline; `message` keeps carrying the
  // full text as the back-compat accessor.
  auto emit_plan_rows = [&](std::string text) {
    result.columns.assign(1, "plan");
    result.rows.clear();
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      result.rows.push_back({Value(text.substr(start, end - start))});
      start = end + 1;
    }
    result.message = std::move(text);
  };

  if (stmt.explain && !stmt.explain_analyze) {
    emit_plan_rows(plan.root->Describe() + join_order_line());
    return result;
  }

  for (const auto& col : plan.root->output()) {
    result.columns.push_back(col.table.empty() ? col.name
                                               : col.table + "." + col.name);
  }

  bool traced = tracing_ || stmt.explain_analyze;
  if (traced) plan.root->SetTracing(true);

  plan.root->Open();
  Tuple row;
  while (plan.root->Next(&row)) result.rows.push_back(row);
  plan.root->Close();
  // Next() ends the stream on a runtime evaluation error (type error,
  // overflow); surface it instead of returning a silently truncated result.
  AIDB_RETURN_NOT_OK(plan.root->FirstError());
  result.operator_work = plan.root->TotalWork();
  total_work_.fetch_add(result.operator_work, std::memory_order_relaxed);

  // Close the loop: record estimated-vs-true scan cardinalities into the
  // catalog's feedback store. LIMIT plans are skipped — their early exit
  // truncates the actual counts.
  if (stmt.limit < 0) {
    std::function<void(const exec::Operator&)> record =
        [&](const exec::Operator& op) {
          if (!op.feedback_table().empty() && op.est_rows() >= 0) {
            catalog_.feedback().Record(op.feedback_table(), op.est_rows(),
                                       static_cast<double>(op.rows_produced()));
          }
          for (const auto& c : op.children()) record(*c);
        };
    record(*plan.root);
  }

  if (traced) {
    last_trace_ = exec::BuildTrace(*plan.root, deterministic_timing_);
    has_trace_ = true;
  }

  if (stmt.explain_analyze) {
    emit_plan_rows(exec::RenderTraceText(last_trace_) + join_order_line());
  }
  return result;
}

}  // namespace aidb
