#include "exec/planner.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <set>

#include "exec/parallel.h"
#include "exec/vec/vec_ops.h"

namespace aidb::exec {

namespace {

/// True when the options ask for (and can support) parallel execution.
bool ParallelEnabled(const PlannerOptions& opts) {
  return opts.dop > 1 && opts.exec_pool != nullptr;
}

/// Wraps `child` in the engine-appropriate filter. The scalar expression
/// always binds first so bind-time errors carry the row engine's canonical
/// text whichever engine runs; the vectorized filter keeps the scalar twin
/// for exact runtime error Statuses.
Result<std::unique_ptr<Operator>> MakeFilter(std::unique_ptr<Operator> child,
                                             const sql::Expr& pred,
                                             std::string text,
                                             const ModelResolver* models,
                                             bool vectorized) {
  BoundExpr bound;
  AIDB_ASSIGN_OR_RETURN(bound, BoundExpr::Bind(pred, child->output(), models));
  if (vectorized) {
    VecExpr vec;
    AIDB_ASSIGN_OR_RETURN(vec, VecExpr::Bind(pred, child->output(), models));
    return std::unique_ptr<Operator>(std::make_unique<VecFilterOp>(
        std::move(child), std::move(vec), std::move(bound), std::move(text)));
  }
  return std::unique_ptr<Operator>(std::make_unique<FilterOp>(
      std::move(child), std::move(bound), std::move(text)));
}

/// Annotates the top of a scan chain: the planner's estimated output rows
/// (surfaced by EXPLAIN ANALYZE) and the base table whose feedback entry the
/// operator's true row count updates after execution.
void AnnotateScanChain(Operator* top, const RelationInfo& rel) {
  top->set_est_rows(rel.EffectiveRows());
  top->set_feedback_table(rel.table);
}

}  // namespace

void SplitConjuncts(const sql::Expr* expr, std::vector<const sql::Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == sql::Expr::Kind::kBinary && expr->op == sql::OpType::kAnd) {
    SplitConjuncts(expr->lhs.get(), out);
    SplitConjuncts(expr->rhs.get(), out);
    return;
  }
  out->push_back(expr);
}

Result<std::vector<Planner::RelBinding>> Planner::BindRelations(
    const sql::SelectStatement& stmt) const {
  std::vector<RelBinding> rels;
  auto add = [&](const sql::TableRef& ref) -> Status {
    RelBinding b;
    b.table = ref.table;
    b.name = ref.EffectiveName();
    for (const auto& other : rels) {
      if (other.name == b.name) {
        return Status::InvalidArgument("duplicate relation name '" + b.name + "'");
      }
    }
    AIDB_ASSIGN_OR_RETURN(b.ptr, catalog_->GetTable(ref.table));
    rels.push_back(std::move(b));
    return Status::OK();
  };
  for (const auto& ref : stmt.from) AIDB_RETURN_NOT_OK(add(ref));
  for (const auto& j : stmt.joins) AIDB_RETURN_NOT_OK(add(j.table));
  if (rels.empty()) return Status::InvalidArgument("query references no tables");
  if (rels.size() > 20) return Status::InvalidArgument("too many relations (max 20)");
  return rels;
}

Result<uint64_t> Planner::ReferencedRelations(
    const sql::Expr& expr, const std::vector<RelBinding>& rels) const {
  uint64_t mask = 0;
  Status err = Status::OK();
  std::function<void(const sql::Expr&)> walk = [&](const sql::Expr& e) {
    if (!err.ok()) return;
    if (e.kind == sql::Expr::Kind::kColumnRef) {
      int found = -1;
      for (size_t i = 0; i < rels.size(); ++i) {
        if (!e.table.empty()) {
          if (rels[i].name == e.table &&
              rels[i].ptr->schema().IndexOf(e.column) >= 0) {
            found = static_cast<int>(i);
            break;
          }
        } else if (rels[i].ptr->schema().IndexOf(e.column) >= 0) {
          if (found >= 0) {
            err = Status::InvalidArgument("ambiguous column '" + e.column + "'");
            return;
          }
          found = static_cast<int>(i);
        }
      }
      if (found < 0) {
        err = Status::NotFound("column '" + e.column + "' not found");
        return;
      }
      mask |= 1ULL << found;
    }
    if (e.lhs) walk(*e.lhs);
    if (e.rhs) walk(*e.rhs);
    for (const auto& a : e.args) walk(*a);
  };
  walk(expr);
  if (!err.ok()) return err;
  return mask;
}

Result<QueryGraph> Planner::BuildGraph(const sql::SelectStatement& stmt,
                                       const CardinalityEstimator& est,
                                       std::vector<const sql::Expr*>* residual) const {
  std::vector<RelBinding> rels;
  AIDB_ASSIGN_OR_RETURN(rels, BindRelations(stmt));

  QueryGraph graph;
  for (const auto& r : rels) {
    RelationInfo info;
    info.table = r.table;
    info.name = r.name;
    info.base_rows = static_cast<double>(r.ptr->NumRows());
    graph.rels.push_back(std::move(info));
  }

  std::vector<const sql::Expr*> conjuncts;
  SplitConjuncts(stmt.where.get(), &conjuncts);
  for (const auto& j : stmt.joins) SplitConjuncts(j.condition.get(), &conjuncts);

  for (const sql::Expr* c : conjuncts) {
    uint64_t mask = 0;
    AIDB_ASSIGN_OR_RETURN(mask, ReferencedRelations(*c, rels));
    int popcount = __builtin_popcountll(mask);
    if (popcount <= 1) {
      size_t rel = popcount == 1 ? static_cast<size_t>(__builtin_ctzll(mask)) : 0;
      graph.rels[rel].local_predicates.push_back(c);
      continue;
    }
    // Two-relation equi-join: col = col.
    bool is_equi = popcount == 2 && c->kind == sql::Expr::Kind::kBinary &&
                   c->op == sql::OpType::kEq &&
                   c->lhs->kind == sql::Expr::Kind::kColumnRef &&
                   c->rhs->kind == sql::Expr::Kind::kColumnRef;
    if (is_equi) {
      uint64_t lmask = 0, rmask = 0;
      AIDB_ASSIGN_OR_RETURN(lmask, ReferencedRelations(*c->lhs, rels));
      AIDB_ASSIGN_OR_RETURN(rmask, ReferencedRelations(*c->rhs, rels));
      if (lmask != rmask && __builtin_popcountll(lmask) == 1 &&
          __builtin_popcountll(rmask) == 1) {
        JoinEdgeInfo edge;
        edge.left_rel = static_cast<size_t>(__builtin_ctzll(lmask));
        edge.right_rel = static_cast<size_t>(__builtin_ctzll(rmask));
        edge.left_column = c->lhs->column;
        edge.right_column = c->rhs->column;
        edge.condition = c;
        edge.selectivity =
            est.JoinSelectivity(graph.rels[edge.left_rel].table, edge.left_column,
                                graph.rels[edge.right_rel].table, edge.right_column);
        graph.edges.push_back(std::move(edge));
        continue;
      }
    }
    if (residual) residual->push_back(c);
  }
  // Joint local selectivity per relation (one estimator call per relation so
  // correlation-aware estimators see all conjuncts together).
  for (auto& rel : graph.rels) {
    if (!rel.local_predicates.empty()) {
      rel.local_selectivity =
          est.ConjunctionSelectivity(rel.table, rel.local_predicates);
    }
  }
  return graph;
}

Result<std::unique_ptr<Operator>> Planner::BuildScan(
    const RelationInfo& rel, const PlannerOptions& opts) const {
  const Table* table = nullptr;
  AIDB_ASSIGN_OR_RETURN(table, catalog_->GetTable(rel.table));

  // Try an index scan: find a local predicate `col op literal` over an
  // indexed column whose estimated selectivity clears the threshold.
  const sql::Expr* index_pred = nullptr;
  const BTree* index = nullptr;
  std::shared_mutex* index_latch = nullptr;
  int index_col = -1;
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
  if (opts.use_indexes) {
    for (const sql::Expr* p : rel.local_predicates) {
      if (p->kind != sql::Expr::Kind::kBinary) continue;
      if (p->lhs->kind != sql::Expr::Kind::kColumnRef ||
          p->rhs->kind != sql::Expr::Kind::kLiteral)
        continue;
      if (p->rhs->literal.is_null()) continue;
      IndexInfo* info = catalog_->FindIndex(rel.table, p->lhs->column);
      if (info == nullptr || !info->is_btree) continue;
      int64_t v = static_cast<int64_t>(p->rhs->literal.AsFeature());
      int64_t plo = lo, phi = hi;
      switch (p->op) {
        case sql::OpType::kEq: plo = phi = v; break;
        case sql::OpType::kLt: phi = v - 1; break;
        case sql::OpType::kLe: phi = v; break;
        case sql::OpType::kGt: plo = v + 1; break;
        case sql::OpType::kGe: plo = v; break;
        default: continue;
      }
      index_pred = p;
      index = info->btree.get();
      index_latch = &info->latch;
      index_col = table->schema().IndexOf(p->lhs->column);
      lo = plo;
      hi = phi;
      break;
    }
  }

  // Vectorized scan: replaces SeqScan+FilterOp (and the row-based gather)
  // whenever no index was chosen — index scans are already sub-linear, so
  // they stay row-at-a-time. Local predicates fuse into the scan as paired
  // vectorized/scalar expressions.
  if (index == nullptr && opts.vectorized) {
    std::vector<OutputCol> schema;
    for (const auto& col : table->schema().columns()) {
      schema.push_back({rel.name, col.name, col.type});
    }
    std::vector<VecExpr> filters;
    std::vector<BoundExpr> scalar_filters;
    std::vector<std::string> filter_texts;
    for (const sql::Expr* p : rel.local_predicates) {
      BoundExpr bound;
      AIDB_ASSIGN_OR_RETURN(bound, BoundExpr::Bind(*p, schema, models_));
      VecExpr vec;
      AIDB_ASSIGN_OR_RETURN(vec, VecExpr::Bind(*p, schema, models_));
      scalar_filters.push_back(std::move(bound));
      filters.push_back(std::move(vec));
      filter_texts.push_back(p->ToString());
    }
    std::unique_ptr<Operator> scan;
    if (ParallelEnabled(opts) &&
        rel.base_rows >= static_cast<double>(opts.parallel_threshold_rows)) {
      scan = std::make_unique<VecParallelScanOp>(
          table, rel.name, std::move(filters), std::move(scalar_filters),
          std::move(filter_texts), rel.used_columns, opts.column_cache,
          ParallelContext{opts.exec_pool, opts.dop});
    } else {
      scan = std::make_unique<VecScanOp>(
          table, rel.name, std::move(filters), std::move(scalar_filters),
          std::move(filter_texts), rel.used_columns, opts.column_cache);
    }
    AnnotateScanChain(scan.get(), rel);
    return scan;
  }

  // Morsel-parallel scan: only without a chosen index (index scans are
  // already sub-linear) and only when the base cardinality — as tracked by
  // the catalog — is large enough that morsel dispatch pays for itself.
  // Every local predicate is fused into the scan workers.
  if (index == nullptr && ParallelEnabled(opts) &&
      rel.base_rows >= static_cast<double>(opts.parallel_threshold_rows)) {
    std::vector<OutputCol> schema;
    for (const auto& col : table->schema().columns()) {
      schema.push_back({rel.name, col.name, col.type});
    }
    std::vector<BoundExpr> filters;
    std::vector<std::string> filter_texts;
    for (const sql::Expr* p : rel.local_predicates) {
      BoundExpr bound;
      AIDB_ASSIGN_OR_RETURN(bound, BoundExpr::Bind(*p, schema, models_));
      filters.push_back(std::move(bound));
      filter_texts.push_back(p->ToString());
    }
    ParallelContext ctx{opts.exec_pool, opts.dop};
    auto pscan = std::make_unique<ParallelScanOp>(
        table, rel.name, std::move(filters), std::move(filter_texts), ctx);
    AnnotateScanChain(pscan.get(), rel);
    return std::unique_ptr<Operator>(std::move(pscan));
  }

  std::unique_ptr<Operator> scan;
  if (index != nullptr) {
    scan = std::make_unique<IndexScanOp>(table, index, index_latch, rel.name,
                                         index_col, lo, hi);
  } else {
    scan = std::make_unique<SeqScanOp>(table, rel.name);
  }

  // Apply every local predicate not fully covered by the index range.
  for (const sql::Expr* p : rel.local_predicates) {
    if (p == index_pred) continue;
    BoundExpr bound;
    AIDB_ASSIGN_OR_RETURN(bound, BoundExpr::Bind(*p, scan->output(), models_));
    scan = std::make_unique<FilterOp>(std::move(scan), std::move(bound),
                                      p->ToString());
  }
  AnnotateScanChain(scan.get(), rel);
  return scan;
}

Result<std::unique_ptr<Operator>> Planner::BuildJoinTree(
    const JoinPlan& plan, const QueryGraph& graph, const PlannerOptions& opts) const {
  if (plan.IsLeaf()) {
    return BuildScan(graph.rels[static_cast<size_t>(plan.rel)], opts);
  }
  std::unique_ptr<Operator> left, right;
  AIDB_ASSIGN_OR_RETURN(left, BuildJoinTree(*plan.left, graph, opts));
  AIDB_ASSIGN_OR_RETURN(right, BuildJoinTree(*plan.right, graph, opts));

  // Collect edges crossing this cut.
  std::vector<const JoinEdgeInfo*> crossing;
  for (const auto& e : graph.edges) {
    uint64_t l = 1ULL << e.left_rel, r = 1ULL << e.right_rel;
    if (((plan.left->mask & l) && (plan.right->mask & r)) ||
        ((plan.left->mask & r) && (plan.right->mask & l))) {
      crossing.push_back(&e);
    }
  }

  std::unique_ptr<Operator> join;
  size_t used_edge = crossing.size();  // index of edge consumed by hash join
  if (!crossing.empty()) {
    // Hash join on the first crossing edge.
    const JoinEdgeInfo& e = *crossing[0];
    used_edge = 0;
    // Resolve key positions in left/right outputs.
    auto key_of = [&](const Operator& op, size_t rel_idx,
                      const std::string& column) -> int {
      const std::string& rel_name = graph.rels[rel_idx].name;
      for (size_t i = 0; i < op.output().size(); ++i) {
        if (op.output()[i].table == rel_name && op.output()[i].name == column)
          return static_cast<int>(i);
      }
      return -1;
    };
    bool left_has_l = (plan.left->mask >> e.left_rel) & 1;
    size_t l_rel = left_has_l ? e.left_rel : e.right_rel;
    size_t r_rel = left_has_l ? e.right_rel : e.left_rel;
    const std::string& l_col = left_has_l ? e.left_column : e.right_column;
    const std::string& r_col = left_has_l ? e.right_column : e.left_column;
    int lk = key_of(*left, l_rel, l_col);
    int rk = key_of(*right, r_rel, r_col);
    if (lk < 0 || rk < 0) {
      return Status::Internal("join key resolution failed");
    }
    if (opts.vectorized) {
      join = std::make_unique<VecHashJoinOp>(std::move(left), std::move(right),
                                             static_cast<size_t>(lk),
                                             static_cast<size_t>(rk));
    } else if (ParallelEnabled(opts)) {
      join = std::make_unique<ParallelHashJoinOp>(
          std::move(left), std::move(right), static_cast<size_t>(lk),
          static_cast<size_t>(rk), ParallelContext{opts.exec_pool, opts.dop});
    } else {
      join = std::make_unique<HashJoinOp>(std::move(left), std::move(right),
                                          static_cast<size_t>(lk),
                                          static_cast<size_t>(rk));
    }
  } else {
    join = std::make_unique<NestedLoopJoinOp>(std::move(left), std::move(right),
                                              std::nullopt);
  }
  join->set_est_rows(plan.rows);

  // Remaining crossing conditions become filters above the join.
  for (size_t i = 0; i < crossing.size(); ++i) {
    if (i == used_edge) continue;
    AIDB_ASSIGN_OR_RETURN(
        join, MakeFilter(std::move(join), *crossing[i]->condition,
                         crossing[i]->condition->ToString(), models_,
                         opts.vectorized));
  }
  return join;
}

namespace {

/// Collects aggregate sub-expressions in a select item.
void CollectAggregates(const sql::Expr* e, std::vector<const sql::Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == sql::Expr::Kind::kAggregate) {
    out->push_back(e);
    return;
  }
  CollectAggregates(e->lhs.get(), out);
  CollectAggregates(e->rhs.get(), out);
  for (const auto& a : e->args) CollectAggregates(a.get(), out);
}

std::string ItemName(const sql::SelectItem& item, size_t idx) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr) {
    if (item.expr->kind == sql::Expr::Kind::kColumnRef) return item.expr->column;
    return item.expr->ToString();
  }
  return "col" + std::to_string(idx);
}

}  // namespace

Result<PhysicalPlan> Planner::Plan(const sql::SelectStatement& stmt,
                                   const PlannerOptions& opts) {
  HistogramEstimator default_est(catalog_);
  const CardinalityEstimator& est =
      opts.estimator != nullptr ? *opts.estimator : default_est;

  PhysicalPlan result;
  std::vector<const sql::Expr*> residual;
  AIDB_ASSIGN_OR_RETURN(result.graph, BuildGraph(stmt, est, &residual));

  // Execution feedback: scale each relation's estimate by the EWMA
  // actual/estimated correction learned from prior runs of scans over the
  // same base table. Applied after BuildGraph so advisors that reason on the
  // uncorrected graph keep the estimator's raw numbers.
  if (opts.use_card_feedback) {
    const CardinalityFeedback& fb = catalog_->feedback();
    for (auto& rel : result.graph.rels) {
      rel.local_selectivity *= fb.Correction(rel.table);
    }
  }

  // Column pruning for vectorized scans: mark, per relation, every column the
  // statement can possibly read (see RelationInfo::used_columns for the
  // safety argument). Unqualified names mark every relation that has the
  // column — over-approximate, never wrong.
  if (opts.vectorized) {
    bool star = false;
    for (const auto& item : stmt.items) star = star || item.is_star;
    std::vector<const sql::Expr*> roots;
    for (const auto& item : stmt.items) {
      if (item.expr) roots.push_back(item.expr.get());
    }
    if (stmt.where) roots.push_back(stmt.where.get());
    for (const auto& j : stmt.joins) {
      if (j.condition) roots.push_back(j.condition.get());
    }
    for (const auto& g : stmt.group_by) roots.push_back(g.get());
    if (stmt.having) roots.push_back(stmt.having.get());
    for (auto& rel : result.graph.rels) {
      const Table* table = nullptr;
      AIDB_ASSIGN_OR_RETURN(table, catalog_->GetTable(rel.table));
      const auto& cols = table->schema().columns();
      rel.used_columns.assign(cols.size(), star ? uint8_t{1} : uint8_t{0});
      if (star) continue;
      auto mark = [&](const std::string& tbl, const std::string& col) {
        if (!tbl.empty() && tbl != rel.name) return;
        for (size_t c = 0; c < cols.size(); ++c) {
          if (cols[c].name == col) rel.used_columns[c] = 1;
        }
      };
      std::function<void(const sql::Expr*)> walk = [&](const sql::Expr* e) {
        if (e == nullptr) return;
        if (e->kind == sql::Expr::Kind::kColumnRef) mark(e->table, e->column);
        walk(e->lhs.get());
        walk(e->rhs.get());
        for (const auto& a : e->args) walk(a.get());
      };
      for (const sql::Expr* e : roots) walk(e);
      // ORDER BY keys are raw [table.]column names.
      for (const auto& key : stmt.order_by) {
        std::string tbl, col = key.column;
        auto dot = col.find('.');
        if (dot != std::string::npos) {
          tbl = col.substr(0, dot);
          col = col.substr(dot + 1);
        }
        mark(tbl, col);
      }
    }
  }

  JoinCostModel cost_model(&result.graph);
  std::unique_ptr<Operator> root;
  if (result.graph.rels.size() == 1) {
    AIDB_ASSIGN_OR_RETURN(root, BuildScan(result.graph.rels[0], opts));
  } else {
    DpJoinEnumerator default_enum;
    JoinOrderEnumerator& enumerator =
        opts.enumerator != nullptr ? *opts.enumerator : default_enum;
    result.join_plan = enumerator.Enumerate(cost_model);
    if (!result.join_plan) return Status::Internal("join enumeration failed");
    AIDB_ASSIGN_OR_RETURN(root,
                          BuildJoinTree(*result.join_plan, result.graph, opts));
  }

  // Order/projection/limit operators preserve or cap cardinality; propagate
  // the child estimate so EXPLAIN ANALYZE shows est vs actual at every level
  // that has a meaningful estimate.
  auto inherit_est = [](Operator* op) {
    if (!op->children().empty() && op->children()[0]->est_rows() >= 0) {
      op->set_est_rows(op->children()[0]->est_rows());
    }
  };

  // Residual multi-relation predicates.
  for (const sql::Expr* p : residual) {
    AIDB_ASSIGN_OR_RETURN(root, MakeFilter(std::move(root), *p, p->ToString(),
                                           models_, opts.vectorized));
  }

  // Aggregation.
  std::vector<const sql::Expr*> aggs;
  for (const auto& item : stmt.items) CollectAggregates(item.expr.get(), &aggs);
  bool has_group = !stmt.group_by.empty() || !aggs.empty();

  // Resolves [table.]col names in an operator output.
  auto find_output_col = [](const Operator& op, const std::string& qualified) {
    std::string table, col = qualified;
    auto dot = col.find('.');
    if (dot != std::string::npos) {
      table = col.substr(0, dot);
      col = col.substr(dot + 1);
    }
    for (size_t i = 0; i < op.output().size(); ++i) {
      if (op.output()[i].name == col &&
          (table.empty() || op.output()[i].table == table)) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };

  // ORDER BY columns that the projection will drop must be sorted below the
  // projection (projection is order-preserving). DISTINCT forbids this path:
  // deduplication would destroy the order, so keys must come from the
  // select list (the SQL-standard restriction).
  bool sorted_pre_projection = false;
  if (!stmt.order_by.empty() && !has_group && !stmt.distinct) {
    std::vector<SortKey> keys;
    bool all_resolved = true;
    for (const auto& key : stmt.order_by) {
      int idx = find_output_col(*root, key.column);
      if (idx < 0) {
        all_resolved = false;
        break;
      }
      keys.push_back({static_cast<size_t>(idx), key.desc});
    }
    if (all_resolved) {
      root = std::make_unique<SortOp>(std::move(root), std::move(keys));
      inherit_est(root.get());
      sorted_pre_projection = true;
    }
  }

  if (has_group) {
    std::vector<BoundExpr> keys;
    std::vector<VecExpr> vec_keys;  // twins of keys, vectorized engine only
    std::vector<OutputCol> key_cols;
    for (const auto& g : stmt.group_by) {
      BoundExpr bound;
      AIDB_ASSIGN_OR_RETURN(bound, BoundExpr::Bind(*g, root->output(), models_));
      if (opts.vectorized) {
        VecExpr vec;
        AIDB_ASSIGN_OR_RETURN(vec, VecExpr::Bind(*g, root->output(), models_));
        vec_keys.push_back(std::move(vec));
      }
      std::string name = g->kind == sql::Expr::Kind::kColumnRef ? g->column
                                                                : g->ToString();
      std::string table = g->kind == sql::Expr::Kind::kColumnRef ? g->table : "";
      keys.push_back(std::move(bound));
      key_cols.push_back({table, name, ValueType::kDouble});
    }
    std::vector<AggSpec> specs;
    std::vector<VecExpr> vec_args;  // slot i twins specs[i].arg (or placeholder)
    for (const sql::Expr* a : aggs) {
      AggSpec spec;
      spec.func = a->agg;
      spec.out_name = a->ToString();
      VecExpr varg;
      if (a->lhs) {
        BoundExpr bound;
        AIDB_ASSIGN_OR_RETURN(bound, BoundExpr::Bind(*a->lhs, root->output(), models_));
        spec.arg = std::move(bound);
        if (opts.vectorized) {
          AIDB_ASSIGN_OR_RETURN(varg, VecExpr::Bind(*a->lhs, root->output(), models_));
        }
      }
      specs.push_back(std::move(spec));
      vec_args.push_back(std::move(varg));
    }
    // HAVING aggregates must also feed the aggregate operator.
    if (stmt.having) CollectAggregates(stmt.having.get(), &aggs);
    for (size_t a = specs.size(); a < aggs.size(); ++a) {
      AggSpec spec;
      spec.func = aggs[a]->agg;
      spec.out_name = aggs[a]->ToString();
      VecExpr varg;
      if (aggs[a]->lhs) {
        BoundExpr bound;
        AIDB_ASSIGN_OR_RETURN(bound,
                              BoundExpr::Bind(*aggs[a]->lhs, root->output(), models_));
        spec.arg = std::move(bound);
        if (opts.vectorized) {
          AIDB_ASSIGN_OR_RETURN(varg,
                                VecExpr::Bind(*aggs[a]->lhs, root->output(), models_));
        }
      }
      bool duplicate = false;
      for (const auto& existing : specs) {
        if (existing.out_name == spec.out_name) duplicate = true;
      }
      if (!duplicate) {
        specs.push_back(std::move(spec));
        vec_args.push_back(std::move(varg));
      }
    }

    // When the input is exactly a gather (single parallel-scanned relation),
    // aggregate inside the workers instead: take over the morsel source and
    // let each worker fold its morsels into a partial group map. A vectorized
    // plan never hits this — its scans are not GatherOps.
    auto* gather = dynamic_cast<GatherOp*>(root.get());
    if (opts.vectorized) {
      root = std::make_unique<VecHashAggregateOp>(
          std::move(root), std::move(vec_keys), std::move(keys),
          std::move(key_cols), std::move(specs), std::move(vec_args));
    } else if (gather != nullptr && ParallelEnabled(opts)) {
      ParallelContext ctx = gather->ctx();
      root = std::make_unique<ParallelHashAggregateOp>(
          gather->TakeSource(), std::move(keys), std::move(key_cols),
          std::move(specs), ctx);
    } else {
      root = std::make_unique<HashAggregateOp>(
          std::move(root), std::move(keys), std::move(key_cols), std::move(specs));
    }

    // Replaces aggregate nodes with refs to the aggregate output columns.
    std::function<void(std::unique_ptr<sql::Expr>&)> replace =
        [&replace](std::unique_ptr<sql::Expr>& e) {
          if (!e) return;
          if (e->kind == sql::Expr::Kind::kAggregate) {
            e = sql::Expr::MakeColumn("", e->ToString());
            return;
          }
          replace(e->lhs);
          replace(e->rhs);
          for (auto& a : e->args) replace(a);
        };

    // HAVING filters groups before the projection.
    if (stmt.having) {
      std::unique_ptr<sql::Expr> rewritten = stmt.having->Clone();
      replace(rewritten);
      AIDB_ASSIGN_OR_RETURN(
          root, MakeFilter(std::move(root), *rewritten,
                           "HAVING " + stmt.having->ToString(), models_,
                           opts.vectorized));
    }

    // Rewrite select items over the aggregate output.
    std::vector<BoundExpr> proj;
    std::vector<VecExpr> vec_proj;
    std::vector<OutputCol> proj_cols;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const auto& item = stmt.items[i];
      if (item.is_star) {
        return Status::InvalidArgument("* not allowed with GROUP BY/aggregates");
      }
      std::unique_ptr<sql::Expr> rewritten = item.expr->Clone();
      replace(rewritten);
      BoundExpr bound;
      AIDB_ASSIGN_OR_RETURN(bound, BoundExpr::Bind(*rewritten, root->output(), models_));
      if (opts.vectorized) {
        VecExpr vec;
        AIDB_ASSIGN_OR_RETURN(vec, VecExpr::Bind(*rewritten, root->output(), models_));
        vec_proj.push_back(std::move(vec));
      }
      proj.push_back(std::move(bound));
      // Bare column refs keep their table qualifier so ORDER BY t.c resolves.
      std::string table = item.alias.empty() &&
                                  item.expr->kind == sql::Expr::Kind::kColumnRef
                              ? item.expr->table
                              : "";
      proj_cols.push_back({table, ItemName(item, i), ValueType::kDouble});
    }
    if (opts.vectorized) {
      root = std::make_unique<VecProjectOp>(std::move(root), std::move(vec_proj),
                                            std::move(proj), std::move(proj_cols));
    } else {
      root = std::make_unique<ProjectOp>(std::move(root), std::move(proj),
                                         std::move(proj_cols));
    }
  } else {
    // Plain projection (skipped entirely for a bare SELECT *).
    bool all_star = stmt.items.size() == 1 && stmt.items[0].is_star;
    if (!all_star) {
      std::vector<BoundExpr> proj;
      std::vector<VecExpr> vec_proj;
      std::vector<OutputCol> proj_cols;
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        const auto& item = stmt.items[i];
        if (item.is_star) {
          for (size_t c = 0; c < root->output().size(); ++c) {
            sql::Expr col;
            col.kind = sql::Expr::Kind::kColumnRef;
            col.table = root->output()[c].table;
            col.column = root->output()[c].name;
            BoundExpr bound;
            AIDB_ASSIGN_OR_RETURN(bound, BoundExpr::Bind(col, root->output(), models_));
            if (opts.vectorized) {
              VecExpr vec;
              AIDB_ASSIGN_OR_RETURN(vec, VecExpr::Bind(col, root->output(), models_));
              vec_proj.push_back(std::move(vec));
            }
            proj.push_back(std::move(bound));
            proj_cols.push_back(root->output()[c]);
          }
          continue;
        }
        BoundExpr bound;
        AIDB_ASSIGN_OR_RETURN(bound,
                              BoundExpr::Bind(*item.expr, root->output(), models_));
        if (opts.vectorized) {
          VecExpr vec;
          AIDB_ASSIGN_OR_RETURN(vec,
                                VecExpr::Bind(*item.expr, root->output(), models_));
          vec_proj.push_back(std::move(vec));
        }
        ValueType type = ValueType::kDouble;
        std::string table;
        if (item.expr->kind == sql::Expr::Kind::kColumnRef) {
          int ci = bound.AsColumnIndex();
          if (ci >= 0) type = root->output()[static_cast<size_t>(ci)].type;
          if (item.alias.empty()) table = item.expr->table;
        }
        proj.push_back(std::move(bound));
        proj_cols.push_back({table, ItemName(item, i), type});
      }
      if (opts.vectorized) {
        root = std::make_unique<VecProjectOp>(std::move(root),
                                              std::move(vec_proj),
                                              std::move(proj),
                                              std::move(proj_cols));
      } else {
        root = std::make_unique<ProjectOp>(std::move(root), std::move(proj),
                                           std::move(proj_cols));
      }
      inherit_est(root.get());
    }
  }

  // DISTINCT deduplicates the projected rows.
  if (stmt.distinct) {
    root = std::make_unique<DistinctOp>(std::move(root));
  }

  // ORDER BY (post-projection path: aliases, aggregate outputs, DISTINCT).
  if (!stmt.order_by.empty() && !sorted_pre_projection) {
    std::vector<SortKey> keys;
    for (const auto& key : stmt.order_by) {
      int idx = find_output_col(*root, key.column);
      if (idx < 0) {
        return Status::NotFound("ORDER BY column '" + key.column + "'");
      }
      keys.push_back({static_cast<size_t>(idx), key.desc});
    }
    root = std::make_unique<SortOp>(std::move(root), std::move(keys));
    inherit_est(root.get());
  }

  if (stmt.limit >= 0) {
    root = std::make_unique<LimitOp>(std::move(root),
                                     static_cast<size_t>(stmt.limit));
    double child_est = root->children()[0]->est_rows();
    if (child_est >= 0) {
      root->set_est_rows(
          std::min(child_est, static_cast<double>(stmt.limit)));
    }
  }

  result.root = std::move(root);
  return result;
}

}  // namespace aidb::exec
