#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"

namespace aidb::exec {

/// \brief Accumulator for one group: running SUM/MIN/MAX/COUNT per aggregate
/// column, from which every AggFunc finalizes.
///
/// Shared by the serial HashAggregateOp and the partitioned parallel
/// aggregation so their SQL semantics (NULL skipping, empty-group rules)
/// cannot drift apart. All members are mergeable, which is what makes
/// per-worker partial aggregation correct.
struct GroupState {
  Tuple key_values;
  std::vector<double> sums;
  std::vector<double> mins;
  std::vector<double> maxs;
  std::vector<size_t> counts;

  void Init(Tuple key, size_t num_aggs) {
    key_values = std::move(key);
    sums.assign(num_aggs, 0.0);
    mins.assign(num_aggs, 0.0);
    maxs.assign(num_aggs, 0.0);
    counts.assign(num_aggs, 0);
  }

  /// Folds one already-evaluated (non-NULL) argument into aggregate slot i.
  /// The vectorized aggregate evaluates arguments column-wise and calls this
  /// directly; Accumulate routes through it so the fold arithmetic has one
  /// definition.
  void FoldOne(size_t i, double v) {
    if (counts[i] == 0) {
      mins[i] = v;
      maxs[i] = v;
    } else {
      mins[i] = std::min(mins[i], v);
      maxs[i] = std::max(maxs[i], v);
    }
    sums[i] += v;
    ++counts[i];
  }

  /// Folds one input row into the running state (NULL arguments skipped, per
  /// SQL aggregate semantics). Fails if an aggregate argument fails to
  /// evaluate; the group state is then unusable.
  Status Accumulate(const std::vector<AggSpec>& aggs, const Tuple& row) {
    for (size_t i = 0; i < aggs.size(); ++i) {
      double v = 0.0;
      if (aggs[i].arg) {
        Value val;
        AIDB_ASSIGN_OR_RETURN(val, aggs[i].arg->Eval(row));
        if (val.is_null()) continue;
        v = val.AsFeature();
      }
      FoldOne(i, v);
    }
    return Status::OK();
  }

  /// Folds another partial state for the same group into this one.
  void Merge(const GroupState& other) {
    for (size_t i = 0; i < counts.size(); ++i) {
      if (other.counts[i] == 0) continue;
      if (counts[i] == 0) {
        mins[i] = other.mins[i];
        maxs[i] = other.maxs[i];
      } else {
        mins[i] = std::min(mins[i], other.mins[i]);
        maxs[i] = std::max(maxs[i], other.maxs[i]);
      }
      sums[i] += other.sums[i];
      counts[i] += other.counts[i];
    }
  }

  /// The output row: group keys followed by finalized aggregates.
  Tuple Finalize(const std::vector<AggSpec>& aggs) const {
    Tuple out = key_values;
    for (size_t i = 0; i < aggs.size(); ++i) {
      switch (aggs[i].func) {
        case sql::AggFunc::kCount:
          out.push_back(Value(static_cast<int64_t>(counts[i])));
          break;
        case sql::AggFunc::kSum:
          out.push_back(counts[i] ? Value(sums[i]) : Value::Null());
          break;
        case sql::AggFunc::kAvg:
          out.push_back(counts[i]
                            ? Value(sums[i] / static_cast<double>(counts[i]))
                            : Value::Null());
          break;
        case sql::AggFunc::kMin:
          out.push_back(counts[i] ? Value(mins[i]) : Value::Null());
          break;
        case sql::AggFunc::kMax:
          out.push_back(counts[i] ? Value(maxs[i]) : Value::Null());
          break;
        case sql::AggFunc::kNone:
          out.push_back(Value::Null());
          break;
      }
    }
    return out;
  }
};

/// \brief Hash-bucketed map from group key to GroupState; buckets chain on
/// the full key comparison so hash collisions stay correct.
class GroupMap {
 public:
  /// Evaluates the key expressions over `row` and folds the row into its
  /// group's state. Fails on a key or aggregate-argument evaluation error.
  Status Accumulate(const std::vector<BoundExpr>& keys,
                    const std::vector<AggSpec>& aggs, const Tuple& row) {
    Tuple key;
    key.reserve(keys.size());
    uint64_t h = 1469598103934665603ULL;
    for (const auto& k : keys) {
      Value v;
      AIDB_ASSIGN_OR_RETURN(v, k.Eval(row));
      key.push_back(std::move(v));
      h = (h ^ key.back().Hash()) * 1099511628211ULL;
    }
    return FindOrCreate(h, std::move(key), aggs.size())->Accumulate(aggs, row);
  }

  /// Folds a sibling worker's partial map into this one.
  void Merge(GroupMap&& other) {
    for (auto& [h, chain] : other.buckets_) {
      for (auto& state : chain) {
        GroupState* mine = Find(h, state.key_values);
        if (mine != nullptr) {
          mine->Merge(state);
        } else {
          buckets_[h].push_back(std::move(state));
          ++num_groups_;
        }
      }
    }
    other.buckets_.clear();
    other.num_groups_ = 0;
  }

  size_t num_groups() const { return num_groups_; }

  /// Bucket lookup with a precomputed key and hash, for callers that evaluate
  /// keys themselves (the vectorized aggregate materializes keys column-wise
  /// and folds rows directly). `h` must be the same FNV-1a fold over the key
  /// values' Hash() that Accumulate computes, or serial and vectorized
  /// executions would bucket — and thus order — groups differently.
  GroupState* GetOrCreate(uint64_t h, Tuple key, size_t num_aggs) {
    return FindOrCreate(h, std::move(key), num_aggs);
  }

  /// Invokes fn(state) for every group.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [h, chain] : buckets_) {
      for (const auto& state : chain) fn(state);
    }
  }

 private:
  GroupState* Find(uint64_t h, const Tuple& key) {
    auto it = buckets_.find(h);
    if (it == buckets_.end()) return nullptr;
    for (auto& state : it->second) {
      bool same = state.key_values.size() == key.size();
      for (size_t i = 0; same && i < key.size(); ++i) {
        if (state.key_values[i].Compare(key[i]) != 0) same = false;
      }
      if (same) return &state;
    }
    return nullptr;
  }

  GroupState* FindOrCreate(uint64_t h, Tuple key, size_t num_aggs) {
    GroupState* found = Find(h, key);
    if (found != nullptr) return found;
    auto& chain = buckets_[h];
    chain.push_back(GroupState{});
    chain.back().Init(std::move(key), num_aggs);
    ++num_groups_;
    return &chain.back();
  }

  std::unordered_map<uint64_t, std::vector<GroupState>> buckets_;
  size_t num_groups_ = 0;
};

}  // namespace aidb::exec
