#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/timer.h"
#include "exec/expr.h"
#include "storage/btree.h"
#include "storage/hash_index.h"
#include "storage/table.h"

namespace aidb::exec {

/// \brief Volcano-style physical operator.
///
/// Open -> Next* -> Close. Every operator tracks rows produced so the learned
/// optimizer and the performance-prediction monitor can harvest true
/// cardinalities and per-operator work after execution.
///
/// The public Open/Next/Close entry points are thin non-virtual wrappers
/// around the OpenImpl/NextImpl/CloseImpl virtuals: with tracing enabled
/// (EXPLAIN ANALYZE, or Database::EnableTracing) they additionally accumulate
/// per-operator wall time and call counts; with tracing off the wrapper is a
/// single predictable branch, keeping the instrumentation off the hot path.
class Operator {
 public:
  virtual ~Operator() = default;

  void Open() {
    // Plans are reused across executions (plan cache, EXECUTE): every run
    // must start from a clean slate or counters/errors from the previous
    // execution leak into this one.
    rows_produced_ = 0;
    next_calls_ = 0;
    elapsed_us_ = 0.0;
    error_ = Status::OK();
    worker_rows_.clear();
    if (!tracing_) {
      OpenImpl();
      return;
    }
    Timer t;
    OpenImpl();
    elapsed_us_ += t.ElapsedMicros();
  }

  /// Produces the next row into *out. Returns false at end of stream.
  bool Next(Tuple* out) {
    if (!tracing_) return NextImpl(out);
    Timer t;
    bool more = NextImpl(out);
    elapsed_us_ += t.ElapsedMicros();
    ++next_calls_;
    return more;
  }

  void Close() {
    if (!tracing_) {
      CloseImpl();
      return;
    }
    Timer t;
    CloseImpl();
    elapsed_us_ += t.ElapsedMicros();
  }

  const std::vector<OutputCol>& output() const { return output_; }
  const std::vector<std::unique_ptr<Operator>>& children() const {
    return children_;
  }
  virtual std::string Name() const = 0;
  /// Multi-line plan rendering for EXPLAIN. `with_rows` appends the live
  /// rows_produced counters (the pre-telemetry rendering; plan digests use
  /// the bare shape).
  std::string Describe(int indent = 0, bool with_rows = true) const;

  /// Enables/disables per-call timing on this operator and all children.
  void SetTracing(bool on) {
    tracing_ = on;
    for (auto& c : children_) c->SetTracing(on);
  }
  bool tracing() const { return tracing_; }

  /// Installs (or clears, with nullptr) a cancellation flag on this operator
  /// and all children. Injected at execution time — never baked into cached
  /// plans — so one physical plan can serve many statements, each with its
  /// own flag. Operators poll it at morsel/row-batch boundaries and end the
  /// stream with Status::Cancelled.
  void SetCancel(const std::atomic<bool>* cancel) {
    cancel_ = cancel;
    for (auto& c : children_) c->SetCancel(cancel);
  }

  /// Installs the statement's MVCC snapshot on this operator and all
  /// children. Injected per execution exactly like the cancel flag (and reset
  /// to the default latest-committed snapshot when a plan is checked back
  /// into the cache): scans filter version chains through it, so one cached
  /// physical plan serves statements from any transaction. Virtual because
  /// the exchange operators own MorselSources that sit outside the child
  /// list and need the snapshot forwarded.
  virtual void SetSnapshot(const txn::Snapshot& snap) {
    snap_ = snap;
    for (auto& c : children_) c->SetSnapshot(snap);
  }
  const txn::Snapshot& snapshot() const { return snap_; }

  size_t rows_produced() const { return rows_produced_; }
  /// Next() invocations while traced (volcano batches; morsel counts for the
  /// exchange operators live in worker_rows()).
  uint64_t next_calls() const { return next_calls_; }
  /// Inclusive wall time (this operator and its children) while traced.
  double elapsed_us() const { return elapsed_us_; }

  /// Planner-estimated output cardinality; negative when unknown.
  double est_rows() const { return est_rows_; }
  void set_est_rows(double rows) { est_rows_ = rows; }

  /// Base relation this operator's rows_produced gives true cardinality for
  /// (set by the planner on the top of each scan chain); empty otherwise.
  /// The estimated-vs-actual feedback loop reads this after execution.
  const std::string& feedback_table() const { return feedback_table_; }
  void set_feedback_table(std::string table) { feedback_table_ = std::move(table); }

  /// Rows handled per worker for exchange operators (empty on serial ones).
  /// For Gather/ParallelScan this is rows gathered — the per-worker counts sum
  /// to rows_produced; for ParallelHashAggregate it is input rows folded.
  const std::vector<uint64_t>& worker_rows() const { return worker_rows_; }

  /// Total rows produced by this operator and all children (work proxy).
  size_t TotalWork() const;

  /// First runtime error hit by this operator or any child. Next() ends the
  /// stream (returns false) when evaluation fails, so the executor must check
  /// this after draining a plan; a non-OK status invalidates the rows seen.
  Status FirstError() const;

 protected:
  virtual void OpenImpl() = 0;
  virtual bool NextImpl(Tuple* out) = 0;
  virtual void CloseImpl() {}

  /// Records a runtime error (first one wins) and ends the stream.
  bool Fail(Status s) {
    if (error_.ok()) error_ = std::move(s);
    return false;
  }

  /// True when the statement's cancellation flag is set.
  bool IsCancelled() const {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }

  std::vector<OutputCol> output_;
  std::vector<std::unique_ptr<Operator>> children_;
  size_t rows_produced_ = 0;
  Status error_;
  bool tracing_ = false;
  uint64_t next_calls_ = 0;
  double elapsed_us_ = 0.0;
  double est_rows_ = -1.0;
  std::string feedback_table_;
  std::vector<uint64_t> worker_rows_;
  const std::atomic<bool>* cancel_ = nullptr;  ///< not owned; per statement
  /// Statement snapshot; default-constructed = latest committed, which
  /// reproduces pre-MVCC behavior for plans run outside any transaction.
  txn::Snapshot snap_;

  friend class PlanVisitor;
};

/// Full-table scan.
class SeqScanOp : public Operator {
 public:
  SeqScanOp(const Table* table, std::string effective_name);
  std::string Name() const override { return "SeqScan(" + label_ + ")"; }

 protected:
  void OpenImpl() override { cursor_ = 0; }
  bool NextImpl(Tuple* out) override;

 private:
  const Table* table_;
  std::string label_;
  RowId cursor_ = 0;
};

/// B+tree range scan: key in [lo, hi]. B+tree entries are never removed
/// eagerly (deletes are lazy, and version chains keep superseded keys
/// reachable for older snapshots), so the scan re-checks both visibility and
/// the key range against the tuple its snapshot actually sees — stale
/// entries degrade to wasted probes, never wrong rows.
class IndexScanOp : public Operator {
 public:
  /// `latch` (nullable) is the owning IndexInfo's content latch: the probe
  /// takes it shared because DML statements mutate the tree concurrently.
  IndexScanOp(const Table* table, const BTree* index, std::shared_mutex* latch,
              std::string effective_name, int key_col, int64_t lo, int64_t hi);
  std::string Name() const override;

 protected:
  void OpenImpl() override;
  bool NextImpl(Tuple* out) override;

 private:
  const Table* table_;
  const BTree* index_;
  std::shared_mutex* latch_;
  std::string label_;
  int key_col_;
  int64_t lo_, hi_;
  std::vector<RowId> matches_;
  size_t cursor_ = 0;
};

/// Predicate filter.
class FilterOp : public Operator {
 public:
  FilterOp(std::unique_ptr<Operator> child, BoundExpr predicate,
           std::string predicate_text);
  std::string Name() const override { return "Filter(" + text_ + ")"; }

 protected:
  void OpenImpl() override { children_[0]->Open(); }
  bool NextImpl(Tuple* out) override;
  void CloseImpl() override { children_[0]->Close(); }

 private:
  BoundExpr predicate_;
  std::string text_;
};

/// Computes a new row from expressions over the child row.
class ProjectOp : public Operator {
 public:
  ProjectOp(std::unique_ptr<Operator> child, std::vector<BoundExpr> exprs,
            std::vector<OutputCol> out_schema);
  std::string Name() const override { return "Project"; }

 protected:
  void OpenImpl() override { children_[0]->Open(); }
  bool NextImpl(Tuple* out) override;
  void CloseImpl() override { children_[0]->Close(); }

 private:
  std::vector<BoundExpr> exprs_;
};

/// Tuple-nested-loop join with optional residual predicate (bound over the
/// concatenated schema). Inner side is materialized once.
class NestedLoopJoinOp : public Operator {
 public:
  NestedLoopJoinOp(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
                   std::optional<BoundExpr> condition);
  std::string Name() const override { return "NestedLoopJoin"; }

 protected:
  void OpenImpl() override;
  bool NextImpl(Tuple* out) override;
  void CloseImpl() override;

 private:
  std::optional<BoundExpr> condition_;
  std::vector<Tuple> inner_rows_;
  Tuple outer_row_;
  bool outer_valid_ = false;
  size_t inner_cursor_ = 0;
};

/// Join-key hash used by every hash-join variant: numeric values that
/// compare equal hash equal across INT/DOUBLE.
uint64_t JoinKeyHash(const Value& v);

/// Hash join on a single equi-key per side; build side is the right child.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
             size_t left_key, size_t right_key);
  std::string Name() const override { return "HashJoin"; }

 protected:
  void OpenImpl() override;
  bool NextImpl(Tuple* out) override;
  void CloseImpl() override;

 private:
  size_t left_key_, right_key_;
  std::unordered_map<uint64_t, std::vector<Tuple>> build_;
  Tuple probe_row_;
  const std::vector<Tuple>* matches_ = nullptr;
  size_t match_cursor_ = 0;
};

/// Aggregate spec for HashAggregateOp.
struct AggSpec {
  sql::AggFunc func = sql::AggFunc::kCount;
  std::optional<BoundExpr> arg;  ///< empty for COUNT(*)
  std::string out_name;
};

/// Hash aggregation: GROUP BY key exprs, computing aggregate columns.
/// Output rows are [group keys..., aggregates...].
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(std::unique_ptr<Operator> child, std::vector<BoundExpr> keys,
                  std::vector<OutputCol> key_cols, std::vector<AggSpec> aggs);
  std::string Name() const override { return "HashAggregate"; }

 protected:
  void OpenImpl() override;
  bool NextImpl(Tuple* out) override;

 private:
  std::vector<BoundExpr> keys_;
  std::vector<AggSpec> aggs_;
  std::vector<Tuple> results_;
  size_t cursor_ = 0;
};

/// One sort key: column index + direction.
struct SortKey {
  size_t column;
  bool desc = false;
};

/// Full in-memory sort on one or more columns.
class SortOp : public Operator {
 public:
  SortOp(std::unique_ptr<Operator> child, std::vector<SortKey> keys);
  /// Single-key convenience.
  SortOp(std::unique_ptr<Operator> child, size_t column, bool desc)
      : SortOp(std::move(child), std::vector<SortKey>{{column, desc}}) {}
  std::string Name() const override {
    return "Sort(" + std::to_string(keys_.size()) + " keys)";
  }

 protected:
  void OpenImpl() override;
  bool NextImpl(Tuple* out) override;

 private:
  std::vector<SortKey> keys_;
  std::vector<Tuple> rows_;
  size_t cursor_ = 0;
};

/// Removes duplicate rows (hash-based, preserves first-seen order).
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(std::unique_ptr<Operator> child);
  std::string Name() const override { return "Distinct"; }

 protected:
  void OpenImpl() override {
    children_[0]->Open();
    seen_.clear();
  }
  bool NextImpl(Tuple* out) override;
  void CloseImpl() override {
    children_[0]->Close();
    seen_.clear();
  }

 private:
  std::unordered_set<std::string> seen_;
};

/// LIMIT n.
class LimitOp : public Operator {
 public:
  LimitOp(std::unique_ptr<Operator> child, size_t limit);
  std::string Name() const override { return "Limit(" + std::to_string(limit_) + ")"; }

 protected:
  void OpenImpl() override {
    children_[0]->Open();
    seen_ = 0;
  }
  bool NextImpl(Tuple* out) override;
  void CloseImpl() override { children_[0]->Close(); }

 private:
  size_t limit_;
  size_t seen_ = 0;
};

/// In-memory materialized rows as a scan source (used for views and tests).
class ValuesOp : public Operator {
 public:
  ValuesOp(std::vector<Tuple> rows, std::vector<OutputCol> schema);
  std::string Name() const override { return "Values"; }

 protected:
  void OpenImpl() override { cursor_ = 0; }
  bool NextImpl(Tuple* out) override;

 private:
  std::vector<Tuple> rows_;
  size_t cursor_ = 0;
};

}  // namespace aidb::exec
