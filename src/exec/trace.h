#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace aidb::exec {

/// \brief One operator's execution record, harvested after a traced run.
///
/// The tree mirrors the physical plan; rows/batches are always real (they are
/// plain volcano counters), time_us is wall clock and is zeroed when the
/// Database runs in deterministic-timing mode so traces never perturb the
/// differential oracle.
struct TraceNode {
  std::string op;             ///< Operator::Name()
  double est_rows = -1.0;     ///< planner estimate; negative = unknown
  uint64_t rows = 0;          ///< actual rows produced
  uint64_t batches = 0;       ///< Next() calls observed while traced
  double time_us = 0.0;       ///< inclusive wall time (0 in deterministic mode)
  std::vector<uint64_t> worker_rows;  ///< per-worker split for exchange ops
  std::vector<TraceNode> children;
};

/// Harvests a trace tree from an executed (or at least opened) plan.
/// `deterministic` zeroes every time_us field.
TraceNode BuildTrace(const Operator& root, bool deterministic);

/// EXPLAIN ANALYZE rendering: one line per operator,
/// `Name (est=... rows=... batches=... time=...us [workers=a+b+...])`.
/// Lines end with '\n'; indentation is two spaces per depth level.
std::string RenderTraceText(const TraceNode& node, int indent = 0);

/// JSON span export: nested objects with op/est_rows/rows/batches/time_us/
/// worker_rows/children, suitable for external span viewers.
std::string TraceToJson(const TraceNode& node);

/// Row shape served by the `aidb_trace` system view.
struct FlatTraceRow {
  int64_t node = 0;    ///< pre-order index
  int64_t parent = -1; ///< pre-order index of parent, -1 for the root
  int64_t depth = 0;
  std::string op;
  double est_rows = -1.0;
  int64_t rows = 0;
  int64_t batches = 0;
  double time_us = 0.0;
  std::string workers;  ///< "a+b+c" per-worker rows, "" for serial operators
};

/// Pre-order flattening of a trace tree (node ids are pre-order positions).
std::vector<FlatTraceRow> FlattenTrace(const TraceNode& root);

/// FNV-1a digest over the plan *shape* (operator names + depths, pre-order).
/// Stable across runs because operator names carry no runtime counters.
uint64_t PlanDigest(const Operator& root);

/// Operators in the plan tree.
uint32_t CountOperators(const Operator& root);

/// Join operators (NestedLoop/Hash/ParallelHash) in the plan tree.
uint32_t CountJoins(const Operator& root);

}  // namespace aidb::exec
