#pragma once

#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "exec/operator.h"
#include "optimizer/cardinality.h"
#include "optimizer/query_graph.h"
#include "sql/ast.h"

namespace aidb {
class ThreadPool;
}

namespace aidb::exec {

class ColumnCache;

/// Pluggable optimizer strategy. Null members fall back to the classical
/// defaults (histogram estimator + Selinger DP). Learned components swap in
/// here — this is how AI4DB techniques integrate with the engine.
struct PlannerOptions {
  CardinalityEstimator* estimator = nullptr;
  JoinOrderEnumerator* enumerator = nullptr;
  bool use_indexes = true;
  /// Max selectivity at which an index scan is preferred over a seq scan.
  double index_selectivity_threshold = 0.25;

  /// Applies the catalog's estimated-vs-actual scan corrections
  /// (Catalog::feedback(), fed by executed queries) on top of the estimator.
  /// Off by default so the classical estimators stay reproducible.
  bool use_card_feedback = false;

  /// Morsel-driven parallelism (the `dop` session knob): with dop > 1 and a
  /// pool, the planner emits ParallelScan / ParallelHashJoin /
  /// ParallelHashAggregate variants — but only where the base-table
  /// cardinality clears `parallel_threshold_rows`, since morsel dispatch
  /// overhead swamps the win on small inputs.
  size_t dop = 1;
  ThreadPool* exec_pool = nullptr;
  size_t parallel_threshold_rows = 8192;

  /// Batch-at-a-time execution (the `vectorized` session knob): scans,
  /// filters, projections, hash joins and hash aggregations are emitted as
  /// their Vec* variants, moving ~1K-row column batches instead of tuples.
  /// Index scans and the order-sensitive operators (Sort, Distinct, Limit,
  /// nested-loop join) stay row-at-a-time; the batch operators drain into
  /// them transparently. Off by default so the row engine remains the oracle
  /// the vectorized engine is differentially tested against.
  bool vectorized = false;

  /// Slot-major column mirrors for vectorized scans (see ColumnCache).
  /// Owned by the Database; null disables mirroring, and the scans fall
  /// back to row-major tuple extraction — semantics are identical either
  /// way, mirroring is purely a bandwidth optimization.
  ColumnCache* column_cache = nullptr;
};

/// Output of planning: the executable tree plus the optimizer artifacts, so
/// learned components can harvest estimated-vs-true cardinalities.
struct PhysicalPlan {
  std::unique_ptr<Operator> root;
  QueryGraph graph;
  std::unique_ptr<JoinPlan> join_plan;  ///< null for single-relation queries
};

/// \brief Translates a bound SELECT statement into a physical operator tree.
class Planner {
 public:
  Planner(const Catalog* catalog, const ModelResolver* models)
      : catalog_(catalog), models_(models) {}

  Result<PhysicalPlan> Plan(const sql::SelectStatement& stmt,
                            const PlannerOptions& opts = {});

  /// Builds just the query graph (relations, local selectivities, join
  /// edges). Exposed for the advisors and the learned optimizer, which
  /// reason about queries at this level.
  Result<QueryGraph> BuildGraph(const sql::SelectStatement& stmt,
                                const CardinalityEstimator& est,
                                std::vector<const sql::Expr*>* residual) const;

 private:
  struct RelBinding {
    std::string table;  ///< catalog name
    std::string name;   ///< effective name
    const Table* ptr = nullptr;
  };

  Result<std::vector<RelBinding>> BindRelations(
      const sql::SelectStatement& stmt) const;

  /// Which relations (by index) an expression references; resolves
  /// unqualified columns against all bound relations.
  Result<uint64_t> ReferencedRelations(const sql::Expr& expr,
                                       const std::vector<RelBinding>& rels) const;

  Result<std::unique_ptr<Operator>> BuildScan(const RelationInfo& rel,
                                              const PlannerOptions& opts) const;
  Result<std::unique_ptr<Operator>> BuildJoinTree(
      const JoinPlan& plan, const QueryGraph& graph,
      const PlannerOptions& opts) const;

  const Catalog* catalog_;
  const ModelResolver* models_;
};

/// Splits an expression into top-level AND conjuncts.
void SplitConjuncts(const sql::Expr* expr, std::vector<const sql::Expr*>* out);

}  // namespace aidb::exec
