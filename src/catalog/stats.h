#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/value.h"

namespace aidb {

/// \brief Equi-depth histogram over a numeric column.
///
/// This is the classical cardinality-estimation substrate: per-column
/// selectivity with the attribute-value-independence assumption. The learned
/// estimator (E6) competes against exactly this.
class Histogram {
 public:
  /// Builds `num_buckets` equi-depth buckets from (unsorted) values.
  static Histogram Build(std::vector<double> values, size_t num_buckets = 32);

  /// Estimated selectivity of `col op literal`.
  double EstimateLt(double x) const;   ///< P(col <  x)
  double EstimateLe(double x) const;   ///< P(col <= x)
  double EstimateGt(double x) const { return 1.0 - EstimateLe(x); }
  double EstimateGe(double x) const { return 1.0 - EstimateLt(x); }
  double EstimateEq(double x) const;
  /// P(lo <= col <= hi).
  double EstimateRange(double lo, double hi) const;

  size_t num_rows() const { return num_rows_; }
  double min() const { return bounds_.empty() ? 0 : bounds_.front(); }
  double max() const { return bounds_.empty() ? 0 : bounds_.back(); }
  size_t distinct_estimate() const { return distinct_; }

 private:
  // bounds_[i]..bounds_[i+1] delimit bucket i; each bucket holds
  // counts_[i] rows and distinct_per_bucket_[i] distinct values.
  std::vector<double> bounds_;
  std::vector<size_t> counts_;
  std::vector<size_t> distinct_per_bucket_;
  size_t num_rows_ = 0;
  size_t distinct_ = 0;
};

/// Statistics for one column.
struct ColumnStats {
  Histogram histogram;
  size_t num_nulls = 0;
};

}  // namespace aidb
