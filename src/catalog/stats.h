#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/value.h"

namespace aidb {

/// \brief Equi-depth histogram over a numeric column.
///
/// This is the classical cardinality-estimation substrate: per-column
/// selectivity with the attribute-value-independence assumption. The learned
/// estimator (E6) competes against exactly this.
class Histogram {
 public:
  /// Builds `num_buckets` equi-depth buckets from (unsorted) values.
  static Histogram Build(std::vector<double> values, size_t num_buckets = 32);

  /// Estimated selectivity of `col op literal`.
  double EstimateLt(double x) const;   ///< P(col <  x)
  double EstimateLe(double x) const;   ///< P(col <= x)
  double EstimateGt(double x) const { return 1.0 - EstimateLe(x); }
  double EstimateGe(double x) const { return 1.0 - EstimateLt(x); }
  double EstimateEq(double x) const;
  /// P(lo <= col <= hi).
  double EstimateRange(double lo, double hi) const;

  size_t num_rows() const { return num_rows_; }
  double min() const { return bounds_.empty() ? 0 : bounds_.front(); }
  double max() const { return bounds_.empty() ? 0 : bounds_.back(); }
  size_t distinct_estimate() const { return distinct_; }

 private:
  // bounds_[i]..bounds_[i+1] delimit bucket i; each bucket holds
  // counts_[i] rows and distinct_per_bucket_[i] distinct values.
  std::vector<double> bounds_;
  std::vector<size_t> counts_;
  std::vector<size_t> distinct_per_bucket_;
  size_t num_rows_ = 0;
  size_t distinct_ = 0;
};

/// Statistics for one column.
struct ColumnStats {
  Histogram histogram;
  size_t num_nulls = 0;
};

/// \brief Estimated-vs-actual cardinality feedback, keyed by base table.
///
/// After every executed SELECT the engine records, per scanned relation, the
/// planner's estimated output rows against the true rows the scan chain
/// produced. The correction factor is an EWMA of actual/estimated ratios and
/// is consumed by the planner when `PlannerOptions::use_card_feedback` is on,
/// closing the loop the AI4DB monitoring stack observes through
/// `aidb_query_log`. Thread-safe (recording happens on executor threads).
class CardinalityFeedback {
 public:
  struct Entry {
    uint64_t samples = 0;
    double correction = 1.0;  ///< EWMA of (actual+1)/(estimated+1), clamped
    double last_est = 0.0;
    double last_actual = 0.0;
    double correction_at_epoch = 1.0;  ///< value when epoch_ last advanced
  };

  /// Folds one (estimated, actual) observation into the table's correction.
  void Record(const std::string& table, double estimated, double actual);

  /// Multiplicative correction for the table's scan estimates (1.0 when no
  /// feedback has been recorded).
  double Correction(const std::string& table) const;

  /// All (table, entry) pairs sorted by table name.
  std::vector<std::pair<std::string, Entry>> Entries() const;

  size_t size() const;

  /// Monotonic generation counter, bumped when any table's correction drifts
  /// more than 2x away from where it stood at the last bump. Plans cached
  /// while feedback was on embed corrections; the plan cache compares its
  /// recorded epoch against this to decide whether a cached plan is stale.
  /// Small drifts deliberately do NOT bump it — invalidating the cache on
  /// every EWMA tick would make feedback and caching mutually exclusive.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace aidb
