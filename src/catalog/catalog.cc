#include "catalog/catalog.h"

#include <algorithm>

namespace aidb {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name)) return Status::AlreadyExists("table " + name);
  if (system_views_.count(name)) {
    return Status::AlreadyExists("system view " + name);
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* ptr = table.get();
  tables_[name] = std::move(table);
  if (on_create_table_) on_create_table_(name, ptr);
  return ptr;
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it != tables_.end()) return it->second.get();
  auto vit = system_views_.find(name);
  if (vit != system_views_.end()) return vit->second.table.get();
  return Status::NotFound("table " + name);
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  // Hook fires while the Table* is still alive so the storage engine can
  // detach its cold tier before the version chains are freed.
  if (on_drop_table_) on_drop_table_(name, it->second.get());
  tables_.erase(it);
  // Drop dependent indexes.
  for (auto it = indexes_.begin(); it != indexes_.end();) {
    if (it->second->table == name) {
      it = indexes_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (auto& [n, t] : tables_) names.push_back(n);
  std::sort(names.begin(), names.end());
  return names;
}

Result<IndexInfo*> Catalog::CreateIndex(const std::string& index_name,
                                        const std::string& table,
                                        const std::string& column, bool btree) {
  if (indexes_.count(index_name)) return Status::AlreadyExists("index " + index_name);
  Table* t = nullptr;
  AIDB_ASSIGN_OR_RETURN(t, GetTable(table));
  int col = t->schema().IndexOf(column);
  if (col < 0) return Status::NotFound("column " + column + " in " + table);
  ValueType type = t->schema().column(static_cast<size_t>(col)).type;
  if (btree && type == ValueType::kString) {
    return Status::InvalidArgument("btree indexes require numeric columns");
  }

  auto info = std::make_unique<IndexInfo>();
  info->name = index_name;
  info->table = table;
  info->column = column;
  info->is_btree = btree;
  if (btree) {
    info->btree = std::make_unique<BTree>();
  } else {
    info->hash = std::make_unique<HashIndex>();
  }
  // Backfill.
  t->ForEach([&](RowId id, const Tuple& row) {
    const Value& v = row[static_cast<size_t>(col)];
    if (v.is_null()) return;
    if (btree) {
      info->btree->Insert(BtreeKey(v), id);
    } else {
      info->hash->Insert(v, id);
    }
  });
  IndexInfo* ptr = info.get();
  indexes_[index_name] = std::move(info);
  return ptr;
}

Status Catalog::DropIndex(const std::string& index_name) {
  if (!indexes_.erase(index_name)) return Status::NotFound("index " + index_name);
  return Status::OK();
}

IndexInfo* Catalog::FindIndex(const std::string& table,
                              const std::string& column) const {
  IndexInfo* best = nullptr;
  for (auto& [n, info] : indexes_) {
    if (info->table == table && info->column == column) {
      if (info->is_btree) return info.get();  // range-capable preferred
      best = info.get();
    }
  }
  return best;
}

std::vector<IndexInfo*> Catalog::IndexesOn(const std::string& table) const {
  std::vector<IndexInfo*> out;
  for (auto& [n, info] : indexes_)
    if (info->table == table) out.push_back(info.get());
  std::sort(out.begin(), out.end(),
            [](IndexInfo* a, IndexInfo* b) { return a->name < b->name; });
  return out;
}

std::vector<const IndexInfo*> Catalog::AllIndexes() const {
  std::vector<const IndexInfo*> out;
  for (const auto& [n, info] : indexes_) out.push_back(info.get());
  std::sort(out.begin(), out.end(), [](const IndexInfo* a, const IndexInfo* b) {
    return a->name < b->name;
  });
  return out;
}

Status Catalog::Analyze(const std::string& table) {
  Table* t = nullptr;
  AIDB_ASSIGN_OR_RETURN(t, GetTable(table));
  for (size_t c = 0; c < t->schema().NumColumns(); ++c) {
    std::vector<double> values;
    size_t nulls = 0;
    t->ForEach([&](RowId, const Tuple& row) {
      if (row[c].is_null()) {
        ++nulls;
      } else {
        values.push_back(row[c].AsFeature());
      }
    });
    ColumnStats cs;
    cs.histogram = Histogram::Build(std::move(values));
    cs.num_nulls = nulls;
    stats_[table + "." + t->schema().column(c).name] = std::move(cs);
  }
  return Status::OK();
}

const ColumnStats* Catalog::GetStats(const std::string& table,
                                     const std::string& column) const {
  auto it = stats_.find(table + "." + column);
  return it == stats_.end() ? nullptr : &it->second;
}

Status Catalog::RegisterSystemView(const std::string& name, Schema schema,
                                   SystemViewProvider provider) {
  if (tables_.count(name) || system_views_.count(name)) {
    return Status::AlreadyExists("table " + name);
  }
  SystemView sv;
  sv.table = std::make_unique<Table>(name, std::move(schema));
  sv.provider = std::move(provider);
  system_views_[name] = std::move(sv);
  return Status::OK();
}

bool Catalog::IsSystemView(const std::string& name) const {
  return system_views_.count(name) > 0;
}

Status Catalog::UnregisterSystemView(const std::string& name) {
  auto it = system_views_.find(name);
  if (it == system_views_.end()) return Status::NotFound("system view " + name);
  system_views_.erase(it);
  return Status::OK();
}

Status Catalog::RefreshSystemView(const std::string& name) {
  auto it = system_views_.find(name);
  if (it == system_views_.end()) return Status::NotFound("system view " + name);
  SystemView& sv = it->second;
  // Rebuild from scratch: a fresh Table keeps the slot range dense (deleting
  // rows in place would grow tombstones without bound across refreshes).
  Schema schema = sv.table->schema();
  sv.table = std::make_unique<Table>(name, std::move(schema));
  Status err;
  sv.provider([&](Tuple row) {
    if (!err.ok()) return;
    err = sv.table->Insert(std::move(row)).status();
  });
  return err;
}

std::vector<std::string> Catalog::SystemViewNames() const {
  std::vector<std::string> names;
  names.reserve(system_views_.size());
  for (const auto& [n, v] : system_views_) names.push_back(n);
  std::sort(names.begin(), names.end());
  return names;
}

void Catalog::OnInsert(const std::string& table, RowId id, const Tuple& row) {
  for (auto& [n, info] : indexes_) {
    if (info->table != table) continue;
    auto table_res = GetTable(table);
    if (!table_res.ok()) continue;
    int col = table_res.ValueOrDie()->schema().IndexOf(info->column);
    if (col < 0) continue;
    const Value& v = row[static_cast<size_t>(col)];
    if (v.is_null()) continue;
    std::unique_lock<std::shared_mutex> latch(info->latch);
    if (info->is_btree) {
      info->btree->Insert(BtreeKey(v), id);
    } else {
      info->hash->Insert(v, id);
    }
  }
}

void Catalog::OnDelete(const std::string& table, RowId id, const Tuple& row) {
  for (auto& [n, info] : indexes_) {
    if (info->table != table || info->is_btree) continue;
    // B+tree deletions are handled lazily: the executor re-checks liveness.
    auto table_res = GetTable(table);
    if (!table_res.ok()) continue;
    int col = table_res.ValueOrDie()->schema().IndexOf(info->column);
    if (col < 0) continue;
    const Value& v = row[static_cast<size_t>(col)];
    if (v.is_null()) continue;
    std::unique_lock<std::shared_mutex> latch(info->latch);
    info->hash->Erase(v, id);
  }
}

}  // namespace aidb
