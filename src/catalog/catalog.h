#pragma once

#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/stats.h"
#include "common/result.h"
#include "storage/btree.h"
#include "storage/hash_index.h"
#include "storage/table.h"

namespace aidb {

/// A secondary index registered on a table column.
struct IndexInfo {
  std::string name;
  std::string table;
  std::string column;
  /// B+tree supports ranges; hash supports equality only.
  bool is_btree = true;
  std::unique_ptr<BTree> btree;
  std::unique_ptr<HashIndex> hash;
  /// Content latch: DML statements run concurrently with index scans (the
  /// service only serializes DDL), and neither BTree nor HashIndex is
  /// internally synchronized. Writers (OnInsert/OnDelete/IndexUpdate) take
  /// it exclusive; index probes take it shared. The table's version chains
  /// need no such latch — only the index structures do.
  mutable std::shared_mutex latch;
};

/// \brief System catalog: tables, indexes, and per-column statistics.
///
/// The single registry the binder, optimizer, advisors and DB4AI layer all
/// consult. Owns table and index storage.
class Catalog {
 public:
  Result<Table*> CreateTable(const std::string& name, Schema schema);
  Result<Table*> GetTable(const std::string& name) const;
  Status DropTable(const std::string& name);
  std::vector<std::string> TableNames() const;

  /// Storage-engine attach/detach hooks: `on_create` fires after a real user
  /// table is inserted into the catalog, `on_drop` just before one is erased
  /// (its Table* is still valid during the call). System views never fire
  /// them — they live outside tables_ and outside the storage engine.
  using TableHook = std::function<void(const std::string&, Table*)>;
  void SetTableHooks(TableHook on_create, TableHook on_drop) {
    on_create_table_ = std::move(on_create);
    on_drop_table_ = std::move(on_drop);
  }

  /// Builds a secondary index over an existing INT or DOUBLE column and
  /// backfills it from current rows. DOUBLEs are keyed by their integer cast
  /// in the B+tree (documented engine restriction).
  Result<IndexInfo*> CreateIndex(const std::string& index_name,
                                 const std::string& table,
                                 const std::string& column, bool btree = true);
  Status DropIndex(const std::string& index_name);
  /// The index on (table, column) if one exists; range-capable preferred.
  IndexInfo* FindIndex(const std::string& table, const std::string& column) const;
  std::vector<IndexInfo*> IndexesOn(const std::string& table) const;
  size_t NumIndexes() const { return indexes_.size(); }
  /// Every index, sorted by name — the deterministic enumeration the
  /// durability snapshot and state digest rely on.
  std::vector<const IndexInfo*> AllIndexes() const;

  /// Recomputes histograms and distinct counts for every column of `table`
  /// (ANALYZE). String columns get feature-hash histograms.
  Status Analyze(const std::string& table);
  /// Stats for table.column; nullptr when ANALYZE has not run.
  const ColumnStats* GetStats(const std::string& table,
                              const std::string& column) const;

  /// Keeps indexes in sync after a row insert (call from the executor).
  void OnInsert(const std::string& table, RowId id, const Tuple& row);
  void OnDelete(const std::string& table, RowId id, const Tuple& row);

  // --- System views ----------------------------------------------------------
  //
  // Read-only virtual tables (aidb_metrics, aidb_query_log, aidb_trace, ...)
  // served through the normal scan path. They live OUTSIDE tables_ on
  // purpose: TableNames()/snapshots/state digests never see them, so views
  // whose contents depend on wall clock or execution history can never leak
  // into the durability format or the differential oracle's digests.

  /// Emits the view's current rows through `emit` (called on refresh).
  using SystemViewProvider = std::function<void(const std::function<void(Tuple)>&)>;

  /// Registers a virtual table. The provider is invoked by RefreshSystemView
  /// to rebuild the backing rows; GetTable() resolves the name like a real
  /// table (CreateTable rejects names already taken by a view).
  Status RegisterSystemView(const std::string& name, Schema schema,
                            SystemViewProvider provider);
  bool IsSystemView(const std::string& name) const;
  /// Rebuilds the view's materialized rows from its provider. Call once per
  /// statement before planning so the backing Table* stays stable while the
  /// plan executes.
  Status RefreshSystemView(const std::string& name);
  /// Removes a registered view (NotFound when absent). Needed by components
  /// with a narrower lifetime than the catalog, e.g. a server::Service that
  /// registers aidb_sessions and must tear it down before it is destroyed.
  Status UnregisterSystemView(const std::string& name);
  /// Registered view names, sorted.
  std::vector<std::string> SystemViewNames() const;

  /// Estimated-vs-actual scan cardinality feedback (see CardinalityFeedback).
  CardinalityFeedback& feedback() { return feedback_; }
  const CardinalityFeedback& feedback() const { return feedback_; }

  /// Key transform every B+-tree index uses (shared with the transactional
  /// index-maintenance paths in Database).
  static int64_t BtreeKey(const Value& v) {
    return v.type() == ValueType::kInt ? v.AsInt()
                                       : static_cast<int64_t>(v.AsDouble());
  }

 private:

  struct SystemView {
    std::unique_ptr<Table> table;  ///< materialization cache
    SystemViewProvider provider;
  };

  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, std::unique_ptr<IndexInfo>> indexes_;
  std::unordered_map<std::string, ColumnStats> stats_;  // "table.column"
  std::unordered_map<std::string, SystemView> system_views_;
  CardinalityFeedback feedback_;
  TableHook on_create_table_;
  TableHook on_drop_table_;
};

}  // namespace aidb
