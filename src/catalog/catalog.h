#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/stats.h"
#include "common/result.h"
#include "storage/btree.h"
#include "storage/hash_index.h"
#include "storage/table.h"

namespace aidb {

/// A secondary index registered on a table column.
struct IndexInfo {
  std::string name;
  std::string table;
  std::string column;
  /// B+tree supports ranges; hash supports equality only.
  bool is_btree = true;
  std::unique_ptr<BTree> btree;
  std::unique_ptr<HashIndex> hash;
};

/// \brief System catalog: tables, indexes, and per-column statistics.
///
/// The single registry the binder, optimizer, advisors and DB4AI layer all
/// consult. Owns table and index storage.
class Catalog {
 public:
  Result<Table*> CreateTable(const std::string& name, Schema schema);
  Result<Table*> GetTable(const std::string& name) const;
  Status DropTable(const std::string& name);
  std::vector<std::string> TableNames() const;

  /// Builds a secondary index over an existing INT or DOUBLE column and
  /// backfills it from current rows. DOUBLEs are keyed by their integer cast
  /// in the B+tree (documented engine restriction).
  Result<IndexInfo*> CreateIndex(const std::string& index_name,
                                 const std::string& table,
                                 const std::string& column, bool btree = true);
  Status DropIndex(const std::string& index_name);
  /// The index on (table, column) if one exists; range-capable preferred.
  IndexInfo* FindIndex(const std::string& table, const std::string& column) const;
  std::vector<IndexInfo*> IndexesOn(const std::string& table) const;
  size_t NumIndexes() const { return indexes_.size(); }
  /// Every index, sorted by name — the deterministic enumeration the
  /// durability snapshot and state digest rely on.
  std::vector<const IndexInfo*> AllIndexes() const;

  /// Recomputes histograms and distinct counts for every column of `table`
  /// (ANALYZE). String columns get feature-hash histograms.
  Status Analyze(const std::string& table);
  /// Stats for table.column; nullptr when ANALYZE has not run.
  const ColumnStats* GetStats(const std::string& table,
                              const std::string& column) const;

  /// Keeps indexes in sync after a row insert (call from the executor).
  void OnInsert(const std::string& table, RowId id, const Tuple& row);
  void OnDelete(const std::string& table, RowId id, const Tuple& row);

 private:
  static int64_t BtreeKey(const Value& v) {
    return v.type() == ValueType::kInt ? v.AsInt()
                                       : static_cast<int64_t>(v.AsDouble());
  }

  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, std::unique_ptr<IndexInfo>> indexes_;
  std::unordered_map<std::string, ColumnStats> stats_;  // "table.column"
};

}  // namespace aidb
