#include "catalog/stats.h"

#include <algorithm>
#include <cmath>

namespace aidb {

Histogram Histogram::Build(std::vector<double> values, size_t num_buckets) {
  Histogram h;
  h.num_rows_ = values.size();
  if (values.empty()) return h;
  std::sort(values.begin(), values.end());
  h.distinct_ = 1;
  for (size_t i = 1; i < values.size(); ++i)
    if (values[i] != values[i - 1]) ++h.distinct_;

  num_buckets = std::min(num_buckets, values.size());
  h.bounds_.push_back(values.front());
  size_t start = 0;
  for (size_t b = 0; b < num_buckets; ++b) {
    size_t end = (b + 1) * values.size() / num_buckets;
    if (end <= start) continue;
    size_t distinct = 1;
    for (size_t i = start + 1; i < end; ++i)
      if (values[i] != values[i - 1]) ++distinct;
    h.counts_.push_back(end - start);
    h.distinct_per_bucket_.push_back(distinct);
    h.bounds_.push_back(values[end - 1]);
    start = end;
  }
  return h;
}

double Histogram::EstimateLt(double x) const {
  if (num_rows_ == 0 || counts_.empty()) return 0.0;
  if (x <= bounds_.front()) return 0.0;
  if (x > bounds_.back()) return 1.0;
  double acc = 0.0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    double lo = bounds_[b], hi = bounds_[b + 1];
    if (x > hi) {
      acc += static_cast<double>(counts_[b]);
    } else {
      double frac = hi > lo ? (x - lo) / (hi - lo) : 0.0;
      acc += frac * static_cast<double>(counts_[b]);
      break;
    }
  }
  return acc / static_cast<double>(num_rows_);
}

double Histogram::EstimateLe(double x) const { return EstimateLt(x) + EstimateEq(x); }

double Histogram::EstimateEq(double x) const {
  if (num_rows_ == 0 || counts_.empty()) return 0.0;
  if (x < bounds_.front() || x > bounds_.back()) return 0.0;
  // A hot value can span several equi-depth buckets (each containing only
  // that value), so accumulate the per-bucket uniform estimate over every
  // bucket whose range covers x.
  double acc = 0.0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    double lo = bounds_[b], hi = bounds_[b + 1];
    if (x < lo) break;
    if (x > hi) continue;
    double d = std::max<size_t>(1, distinct_per_bucket_[b]);
    acc += static_cast<double>(counts_[b]) / d;
  }
  return acc / static_cast<double>(num_rows_);
}

double Histogram::EstimateRange(double lo, double hi) const {
  if (hi < lo) return 0.0;
  double p = EstimateLe(hi) - EstimateLt(lo);
  return std::clamp(p, 0.0, 1.0);
}


void CardinalityFeedback::Record(const std::string& table, double estimated,
                                 double actual) {
  if (estimated < 0.0 || actual < 0.0) return;
  // +1 smoothing keeps empty-table observations finite; the clamp bounds the
  // damage a single wild misestimate (or a LIMIT-truncated scan) can do.
  double ratio = std::clamp((actual + 1.0) / (estimated + 1.0), 0.01, 100.0);
  constexpr double kAlpha = 0.3;
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = map_[table];
  if (e.samples == 0) {
    e.correction = ratio;
    e.correction_at_epoch = ratio;
  } else {
    e.correction = (1.0 - kAlpha) * e.correction + kAlpha * ratio;
  }
  ++e.samples;
  e.last_est = estimated;
  e.last_actual = actual;
  // Advance the generation only on 2x drift from the last bump point: cached
  // plans embed the correction that was current when they were built, and the
  // plan cache invalidates on epoch changes.
  double drift = e.correction / e.correction_at_epoch;
  if (drift > 2.0 || drift < 0.5) {
    e.correction_at_epoch = e.correction;
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
}

double CardinalityFeedback::Correction(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(table);
  return it == map_.end() ? 1.0 : it->second.correction;
}

std::vector<std::pair<std::string, CardinalityFeedback::Entry>>
CardinalityFeedback::Entries() const {
  std::vector<std::pair<std::string, Entry>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.assign(map_.begin(), map_.end());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

size_t CardinalityFeedback::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace aidb
