#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/database.h"
#include "ml/mlp.h"
#include "optimizer/cardinality.h"

namespace aidb::learned {

/// Per-column range extracted from a predicate conjunction.
struct ColumnRange {
  double lo = -1.0;  ///< normalized to [0,1] over the column domain; -1: open
  double hi = 2.0;   ///< 2: open
  bool has_eq = false;
};

/// \brief Sun&Li-style learned cardinality estimator: an MLP regressed on
/// query featurizations (per-column range bounds), trained from true
/// cardinalities obtained by executing sampled predicates.
///
/// Captures cross-column correlation the histogram + AVI baseline cannot;
/// plugs into the planner through the CardinalityEstimator interface.
class LearnedCardinalityEstimator : public CardinalityEstimator {
 public:
  struct Options {
    size_t training_queries = 1500;
    size_t max_conjuncts = 3;
    ml::MlpOptions mlp;       ///< defaults tuned in .cc
    uint64_t seed = 42;

    Options();
  };

  LearnedCardinalityEstimator(const Catalog* catalog, const Options& opts)
      : catalog_(catalog), opts_(opts), fallback_(catalog) {}

  /// Trains a per-table model on `columns` of `table` by sampling random
  /// range/equality conjunctions and counting true matches.
  Status Train(const std::string& table, const std::vector<std::string>& columns);

  double PredicateSelectivity(const std::string& table,
                              const sql::Expr& pred) const override;
  double ConjunctionSelectivity(
      const std::string& table,
      const std::vector<const sql::Expr*>& conjuncts) const override;
  double JoinSelectivity(const std::string& table_a, const std::string& col_a,
                         const std::string& table_b,
                         const std::string& col_b) const override {
    return fallback_.JoinSelectivity(table_a, col_a, table_b, col_b);
  }
  std::string name() const override { return "learned_mlp"; }

  /// Number of model parameters for the trained table (0 if untrained).
  size_t ModelParameters(const std::string& table) const;

 private:
  struct TableModel {
    std::vector<std::string> columns;
    std::vector<double> col_min, col_max;
    std::unique_ptr<ml::Mlp> net;
  };

  /// Extracts per-column ranges from conjuncts; returns false when any
  /// conjunct is not a col-op-literal over a known column (fallback path).
  bool ExtractRanges(const TableModel& model,
                     const std::vector<const sql::Expr*>& conjuncts,
                     std::vector<ColumnRange>* ranges) const;
  static std::vector<double> Featurize(const std::vector<ColumnRange>& ranges);

  const Catalog* catalog_;
  Options opts_;
  HistogramEstimator fallback_;
  std::map<std::string, TableModel> models_;
};

}  // namespace aidb::learned
