#include "learned/cardinality/learned_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace aidb::learned {

LearnedCardinalityEstimator::Options::Options() {
  mlp.hidden = {64, 64};
  mlp.epochs = 200;
  mlp.learning_rate = 2e-3;
  mlp.batch_size = 64;
}

namespace {
constexpr double kLogFloor = -20.0;  ///< log2 selectivity floor (~1e-6)

double ClampSel(double sel) { return std::clamp(sel, 1e-6, 1.0); }
}  // namespace

std::vector<double> LearnedCardinalityEstimator::Featurize(
    const std::vector<ColumnRange>& ranges) {
  std::vector<double> f;
  f.reserve(ranges.size() * 3);
  for (const auto& r : ranges) {
    f.push_back(std::clamp(r.lo, -1.0, 2.0));
    f.push_back(std::clamp(r.hi, -1.0, 2.0));
    f.push_back(r.has_eq ? 1.0 : 0.0);
  }
  return f;
}

Status LearnedCardinalityEstimator::Train(const std::string& table,
                                          const std::vector<std::string>& columns) {
  const Table* t = nullptr;
  AIDB_ASSIGN_OR_RETURN(t, catalog_->GetTable(table));
  if (t->NumRows() == 0) return Status::InvalidArgument("empty table " + table);

  TableModel model;
  model.columns = columns;
  std::vector<int> col_idx;
  for (const auto& c : columns) {
    int i = t->schema().IndexOf(c);
    if (i < 0) return Status::NotFound("column " + c);
    col_idx.push_back(i);
  }

  // Column domains.
  model.col_min.assign(columns.size(), 1e300);
  model.col_max.assign(columns.size(), -1e300);
  t->ForEach([&](RowId, const Tuple& row) {
    for (size_t j = 0; j < col_idx.size(); ++j) {
      double v = row[static_cast<size_t>(col_idx[j])].AsFeature();
      model.col_min[j] = std::min(model.col_min[j], v);
      model.col_max[j] = std::max(model.col_max[j], v);
    }
  });
  for (size_t j = 0; j < columns.size(); ++j) {
    if (model.col_max[j] <= model.col_min[j]) model.col_max[j] = model.col_min[j] + 1;
  }

  // Sample random conjunctions and count true matches.
  Rng rng(opts_.seed);
  size_t d = columns.size();
  ml::Dataset data;
  data.x = ml::Matrix(opts_.training_queries, d * 3);
  data.y.reserve(opts_.training_queries);
  double n = static_cast<double>(t->NumRows());

  for (size_t q = 0; q < opts_.training_queries; ++q) {
    std::vector<ColumnRange> ranges(d);
    size_t num_preds = 1 + rng.Uniform(opts_.max_conjuncts);
    for (size_t p = 0; p < num_preds; ++p) {
      size_t j = rng.Uniform(d);
      switch (rng.Uniform(3)) {
        case 0: {  // equality
          double v = rng.NextDouble();
          ranges[j].lo = ranges[j].hi = v;
          ranges[j].has_eq = true;
          break;
        }
        case 1: ranges[j].lo = std::max(0.0, rng.NextDouble()); if (ranges[j].hi > 1.0) ranges[j].hi = 1.0; break;
        default: ranges[j].hi = std::min(1.0, rng.NextDouble()); if (ranges[j].lo < 0.0) ranges[j].lo = 0.0; break;
      }
    }
    // Normalize open bounds for counting.
    size_t matches = 0;
    t->ForEach([&](RowId, const Tuple& row) {
      for (size_t j = 0; j < d; ++j) {
        const ColumnRange& r = ranges[j];
        if (r.lo <= -0.5 && r.hi >= 1.5 && !r.has_eq) continue;  // open
        double v = row[static_cast<size_t>(col_idx[j])].AsFeature();
        double norm = (v - model.col_min[j]) / (model.col_max[j] - model.col_min[j]);
        if (r.has_eq) {
          // Equality on normalized grid: match within half a grid cell of the
          // drawn value, snapped to actual domain values during sampling —
          // approximate by a tight band.
          if (std::fabs(norm - r.lo) > 0.5 / 100.0) return;
        } else {
          if (r.lo > -0.5 && norm < r.lo) return;
          if (r.hi < 1.5 && norm > r.hi) return;
        }
      }
      ++matches;
    });
    // Floor empty results at half a row: keeps the regression target in a
    // learnable range instead of an extreme constant.
    double sel = std::max(static_cast<double>(matches), 0.5) / n;
    auto feat = Featurize(ranges);
    for (size_t c = 0; c < feat.size(); ++c) data.x.At(q, c) = feat[c];
    data.y.push_back(std::log2(sel));
  }

  model.net = std::make_unique<ml::Mlp>(d * 3, 1, opts_.mlp);
  model.net->Fit(data);
  models_[table] = std::move(model);
  return Status::OK();
}

bool LearnedCardinalityEstimator::ExtractRanges(
    const TableModel& model, const std::vector<const sql::Expr*>& conjuncts,
    std::vector<ColumnRange>* ranges) const {
  ranges->assign(model.columns.size(), ColumnRange{});
  for (const sql::Expr* c : conjuncts) {
    if (c->kind != sql::Expr::Kind::kBinary) return false;
    const sql::Expr* col = nullptr;
    const sql::Expr* lit = nullptr;
    sql::OpType op = c->op;
    if (c->lhs->kind == sql::Expr::Kind::kColumnRef &&
        c->rhs->kind == sql::Expr::Kind::kLiteral) {
      col = c->lhs.get();
      lit = c->rhs.get();
    } else if (c->rhs->kind == sql::Expr::Kind::kColumnRef &&
               c->lhs->kind == sql::Expr::Kind::kLiteral) {
      col = c->rhs.get();
      lit = c->lhs.get();
      switch (op) {  // flip
        case sql::OpType::kLt: op = sql::OpType::kGt; break;
        case sql::OpType::kLe: op = sql::OpType::kGe; break;
        case sql::OpType::kGt: op = sql::OpType::kLt; break;
        case sql::OpType::kGe: op = sql::OpType::kLe; break;
        default: break;
      }
    } else {
      return false;
    }
    if (lit->literal.is_null()) return false;
    int j = -1;
    for (size_t k = 0; k < model.columns.size(); ++k) {
      if (model.columns[k] == col->column) {
        j = static_cast<int>(k);
        break;
      }
    }
    if (j < 0) return false;
    double v = lit->literal.AsFeature();
    double norm = (v - model.col_min[j]) / (model.col_max[j] - model.col_min[j]);
    ColumnRange& r = (*ranges)[static_cast<size_t>(j)];
    switch (op) {
      case sql::OpType::kEq:
        r.lo = r.hi = norm;
        r.has_eq = true;
        break;
      case sql::OpType::kLt:
      case sql::OpType::kLe:
        r.hi = std::min(r.hi > 1.5 ? 1.0 : r.hi, norm);
        if (r.lo < -0.5) r.lo = 0.0;
        break;
      case sql::OpType::kGt:
      case sql::OpType::kGe:
        r.lo = std::max(r.lo < -0.5 ? 0.0 : r.lo, norm);
        if (r.hi > 1.5) r.hi = 1.0;
        break;
      default:
        return false;
    }
  }
  return true;
}

double LearnedCardinalityEstimator::ConjunctionSelectivity(
    const std::string& table, const std::vector<const sql::Expr*>& conjuncts) const {
  auto it = models_.find(table);
  if (it != models_.end()) {
    std::vector<ColumnRange> ranges;
    if (ExtractRanges(it->second, conjuncts, &ranges)) {
      double log_sel = it->second.net->Predict1(Featurize(ranges));
      return ClampSel(std::exp2(std::max(log_sel, kLogFloor)));
    }
  }
  return fallback_.ConjunctionSelectivity(table, conjuncts);
}

double LearnedCardinalityEstimator::PredicateSelectivity(
    const std::string& table, const sql::Expr& pred) const {
  std::vector<const sql::Expr*> one{&pred};
  return ConjunctionSelectivity(table, one);
}

size_t LearnedCardinalityEstimator::ModelParameters(const std::string& table) const {
  auto it = models_.find(table);
  return it == models_.end() ? 0 : it->second.net->NumParameters();
}

}  // namespace aidb::learned
