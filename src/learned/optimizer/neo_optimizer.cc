#include "learned/optimizer/neo_optimizer.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace aidb::learned {

NeoOptimizer::Options::Options() {
  mlp.hidden = {64, 32};
  mlp.epochs = 120;
  mlp.learning_rate = 2e-3;
  mlp.batch_size = 16;
}

NeoOptimizer::NeoOptimizer(Database* db, const Options& opts)
    : db_(db), opts_(opts) {}

std::vector<double> NeoOptimizer::FeaturizePlan(const JoinPlan& plan,
                                                const QueryGraph& graph) const {
  // Per-relation: (normalized leaf depth, log10 effective rows); global:
  // (#rels, tree height, log10 est root rows, log10 est total intermediate).
  std::vector<double> depth(opts_.max_rels, 0.0);
  std::vector<double> rows(opts_.max_rels, 0.0);
  size_t height = 0;
  double total_intermediate = 0.0;

  std::function<void(const JoinPlan&, size_t)> walk = [&](const JoinPlan& p,
                                                          size_t d) {
    height = std::max(height, d);
    if (p.IsLeaf()) {
      size_t r = static_cast<size_t>(p.rel);
      if (r < opts_.max_rels) {
        depth[r] = static_cast<double>(d);
        rows[r] = std::log10(std::max(1.0, p.rows));
      }
      return;
    }
    total_intermediate += p.rows;
    walk(*p.left, d + 1);
    walk(*p.right, d + 1);
  };
  walk(plan, 0);

  std::vector<double> f;
  f.reserve(2 * opts_.max_rels + 4);
  double hnorm = std::max<size_t>(height, 1);
  for (size_t r = 0; r < opts_.max_rels; ++r) {
    f.push_back(depth[r] / hnorm);
    f.push_back(rows[r]);
  }
  f.push_back(static_cast<double>(graph.rels.size()) / opts_.max_rels);
  f.push_back(static_cast<double>(height) / opts_.max_rels);
  f.push_back(std::log10(std::max(1.0, plan.rows)));
  f.push_back(std::log10(std::max(1.0, total_intermediate)));
  return f;
}

Result<NeoOptimizer::QueryOutcome> NeoOptimizer::ExecuteWithPlan(
    const sql::SelectStatement& stmt, const JoinPlan& plan,
    const QueryGraph& graph, const std::string& source) {
  FixedPlanEnumerator fixed(&plan);
  exec::PlannerOptions popts = db_->mutable_planner_options();
  popts.enumerator = &fixed;
  exec::PhysicalPlan phys;
  AIDB_ASSIGN_OR_RETURN(phys, db_->planner().Plan(stmt, popts));

  phys.root->Open();
  Tuple row;
  size_t rows = 0;
  while (phys.root->Next(&row)) ++rows;
  phys.root->Close();

  QueryOutcome out;
  out.executed_work = static_cast<double>(phys.root->TotalWork());
  out.chosen_source = source;
  out.result_rows = rows;

  // Learn from the observation.
  features_.push_back(FeaturizePlan(plan, graph));
  targets_.push_back(std::log2(std::max(1.0, out.executed_work)));
  return out;
}

void NeoOptimizer::MaybeRetrain() {
  if (features_.empty()) return;
  if (value_net_ != nullptr && features_.size() - trained_at_ < opts_.retrain_interval)
    return;
  size_t d = features_[0].size();
  ml::Dataset data;
  data.x = ml::Matrix(features_.size(), d);
  for (size_t i = 0; i < features_.size(); ++i)
    for (size_t c = 0; c < d; ++c) data.x.At(i, c) = features_[i][c];
  data.y = targets_;
  ml::MlpOptions mopts = opts_.mlp;
  mopts.seed = opts_.seed;
  value_net_ = std::make_unique<ml::Mlp>(d, 1, mopts);
  value_net_->Fit(data);
  trained_at_ = features_.size();
}

Result<NeoOptimizer::QueryOutcome> NeoOptimizer::OptimizeAndExecute(
    const sql::SelectStatement& stmt) {
  ++queries_seen_;

  // Build the query graph with the engine's (histogram) estimator.
  HistogramEstimator est(&db_->catalog());
  QueryGraph graph;
  AIDB_ASSIGN_OR_RETURN(graph,
                        db_->planner().BuildGraph(stmt, est, nullptr));
  JoinCostModel model(&graph);

  if (graph.rels.size() <= 1) {
    // Nothing to optimize: single-relation query.
    DpJoinEnumerator dp;
    auto leaf = graph.rels.empty() ? nullptr : model.MakeLeaf(0);
    if (!leaf) return Status::InvalidArgument("no relations");
    return ExecuteWithPlan(stmt, *leaf, graph, "single");
  }

  // Candidate plans.
  struct Candidate {
    std::unique_ptr<JoinPlan> plan;
    std::string source;
  };
  std::vector<Candidate> candidates;
  DpJoinEnumerator dp;
  GreedyJoinEnumerator greedy;
  candidates.push_back({dp.Enumerate(model), "dp"});
  candidates.push_back({greedy.Enumerate(model), "greedy"});
  for (size_t k = 0; k < opts_.random_candidates; ++k) {
    RandomJoinEnumerator rnd(opts_.seed + queries_seen_ * 131 + k);
    candidates.push_back({rnd.Enumerate(model), "random" + std::to_string(k)});
  }

  size_t pick = 0;  // bootstrap: trust the classical optimizer
  if (queries_seen_ > opts_.warmup_queries) {
    MaybeRetrain();
    if (value_net_ != nullptr) {
      double best = 1e300;
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (!candidates[i].plan) continue;
        double pred = value_net_->Predict1(
            FeaturizePlan(*candidates[i].plan, graph));
        if (pred < best) {
          best = pred;
          pick = i;
        }
      }
    }
  }
  if (!candidates[pick].plan) pick = 0;

  auto outcome = ExecuteWithPlan(stmt, *candidates[pick].plan, graph,
                                 candidates[pick].source);
  if (outcome.ok() && value_net_ != nullptr) {
    QueryOutcome& o = outcome.ValueOrDie();
    o.predicted_work =
        std::exp2(value_net_->Predict1(FeaturizePlan(*candidates[pick].plan, graph)));
  }
  return outcome;
}

}  // namespace aidb::learned
