#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/database.h"
#include "learned/joinorder/learned_joinorder.h"
#include "ml/mlp.h"

namespace aidb::learned {

/// \brief Neo-lite: an end-to-end learned optimizer.
///
/// A value network predicts the *executed* cost of a physical join plan from
/// its structural featurization. It bootstraps from the classical
/// optimizer's plans (as Neo bootstraps from PostgreSQL), then for each new
/// query scores a candidate set (classical DP, greedy, random explorations)
/// and executes the predicted-best plan. True executed work feeds back into
/// the network, so the optimizer learns around cardinality-estimation errors
/// — the survey's headline claim for end-to-end learned optimizers.
class NeoOptimizer {
 public:
  struct Options {
    size_t max_rels = 12;          ///< featurization capacity
    size_t random_candidates = 6;  ///< exploration plans per query
    size_t warmup_queries = 8;     ///< pure-bootstrap phase length
    size_t retrain_interval = 8;   ///< queries between value-net refits
    ml::MlpOptions mlp;
    uint64_t seed = 42;

    Options();
  };

  NeoOptimizer(Database* db, const Options& opts);

  /// Result of optimizing + executing one query.
  struct QueryOutcome {
    double executed_work = 0.0;     ///< true operator work of the chosen plan
    double predicted_work = 0.0;
    std::string chosen_source;      ///< "dp" | "greedy" | "random<k>"
    size_t result_rows = 0;
  };

  /// Optimizes `stmt` with the value network (or bootstrap policy during
  /// warmup), executes the chosen plan, learns from the observed work.
  Result<QueryOutcome> OptimizeAndExecute(const sql::SelectStatement& stmt);

  size_t experience_size() const { return features_.size(); }

 private:
  std::vector<double> FeaturizePlan(const JoinPlan& plan, const QueryGraph& graph) const;
  void MaybeRetrain();
  /// Executes stmt with a forced join plan; returns the measured work.
  Result<QueryOutcome> ExecuteWithPlan(const sql::SelectStatement& stmt,
                                       const JoinPlan& plan,
                                       const QueryGraph& graph,
                                       const std::string& source);

  Database* db_;
  Options opts_;
  std::unique_ptr<ml::Mlp> value_net_;
  std::vector<std::vector<double>> features_;
  std::vector<double> targets_;  ///< log2(executed work)
  size_t queries_seen_ = 0;
  size_t trained_at_ = 0;
};

}  // namespace aidb::learned
