#pragma once

#include <cstdint>
#include <string>

#include "optimizer/query_graph.h"

namespace aidb::learned {

/// \brief SkinnerDB-flavored MCTS join enumerator: UCT search over the
/// sequence of pairwise join actions, rewarded by the inverse of plan cost.
/// Polynomial per-iteration work regardless of relation count — the survey's
/// answer to DP's exponential blowup on large join graphs.
class MctsJoinEnumerator : public JoinOrderEnumerator {
 public:
  struct Options {
    size_t iterations = 800;
    double exploration = 1.0;
    uint64_t seed = 42;
  };
  MctsJoinEnumerator() : MctsJoinEnumerator(Options()) {}
  explicit MctsJoinEnumerator(const Options& opts) : opts_(opts) {}

  std::unique_ptr<JoinPlan> Enumerate(const JoinCostModel& model) override;
  std::string name() const override { return "mcts_skinner"; }

 private:
  Options opts_;
};

/// \brief ReJOIN-style RL join enumerator: Q-learning over (set-of-joined-
/// subtrees) states with join-pair actions; episodes replay the same query,
/// reward is the negative normalized plan cost. The learned policy is then
/// extracted greedily.
class RlJoinEnumerator : public JoinOrderEnumerator {
 public:
  struct Options {
    size_t episodes = 400;
    uint64_t seed = 42;
  };
  RlJoinEnumerator() : RlJoinEnumerator(Options()) {}
  explicit RlJoinEnumerator(const Options& opts) : opts_(opts) {}

  std::unique_ptr<JoinPlan> Enumerate(const JoinCostModel& model) override;
  std::string name() const override { return "rl_rejoin"; }

 private:
  Options opts_;
};

/// Replays a fixed join plan through the enumerator interface; used by the
/// Neo-lite end-to-end optimizer to execute a specific candidate plan.
class FixedPlanEnumerator : public JoinOrderEnumerator {
 public:
  explicit FixedPlanEnumerator(const JoinPlan* plan) : plan_(plan) {}
  std::unique_ptr<JoinPlan> Enumerate(const JoinCostModel& model) override;
  std::string name() const override { return "fixed"; }

 private:
  const JoinPlan* plan_;
};

/// Uniformly random valid (connected-first) join order; Neo-lite's
/// exploration candidates come from here.
class RandomJoinEnumerator : public JoinOrderEnumerator {
 public:
  explicit RandomJoinEnumerator(uint64_t seed) : seed_(seed) {}
  std::unique_ptr<JoinPlan> Enumerate(const JoinCostModel& model) override;
  std::string name() const override { return "random"; }
  void Reseed(uint64_t seed) { seed_ = seed; }

 private:
  uint64_t seed_;
};

}  // namespace aidb::learned
