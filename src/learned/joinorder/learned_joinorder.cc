#include "learned/joinorder/learned_joinorder.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/rng.h"
#include "ml/mcts.h"
#include "ml/qlearning.h"

namespace aidb::learned {

namespace {

/// Forest of partial join trees; the shared state machinery for the MCTS and
/// RL enumerators. Actions join two parts (connected pairs preferred).
struct Forest {
  std::vector<std::unique_ptr<JoinPlan>> parts;

  static Forest Leaves(const JoinCostModel& model) {
    Forest f;
    for (size_t i = 0; i < model.graph().rels.size(); ++i)
      f.parts.push_back(model.MakeLeaf(i));
    return f;
  }

  Forest CloneShallow(const JoinCostModel&) const {
    Forest f;
    for (const auto& p : parts) f.parts.push_back(Clone(*p));
    return f;
  }

  static std::unique_ptr<JoinPlan> Clone(const JoinPlan& p) {
    auto out = std::make_unique<JoinPlan>();
    out->rel = p.rel;
    out->mask = p.mask;
    out->rows = p.rows;
    out->cost = p.cost;
    if (p.left) out->left = Clone(*p.left);
    if (p.right) out->right = Clone(*p.right);
    return out;
  }

  /// Valid actions: pairs (i < j), connected pairs only unless none exist.
  std::vector<std::pair<size_t, size_t>> Actions(const JoinCostModel& model) const {
    std::vector<std::pair<size_t, size_t>> connected, any;
    for (size_t i = 0; i < parts.size(); ++i) {
      for (size_t j = i + 1; j < parts.size(); ++j) {
        any.emplace_back(i, j);
        if (model.Connected(parts[i]->mask, parts[j]->mask)) connected.emplace_back(i, j);
      }
    }
    return connected.empty() ? any : connected;
  }

  void Join(const JoinCostModel& model, size_t i, size_t j) {
    auto joined = model.MakeJoin(std::move(parts[i]), std::move(parts[j]));
    parts.erase(parts.begin() + static_cast<long>(j));
    parts.erase(parts.begin() + static_cast<long>(i));
    parts.push_back(std::move(joined));
  }

  /// Canonical state key: sorted masks of the current parts.
  uint64_t Key() const {
    std::vector<uint64_t> masks;
    for (const auto& p : parts) masks.push_back(p->mask);
    std::sort(masks.begin(), masks.end());
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (uint64_t m : masks) h = ml::HashCombine(h, m);
    return h;
  }
};

/// MCTS environment over forests. States are indices into a growing arena.
class JoinEnv : public ml::MctsEnv {
 public:
  explicit JoinEnv(const JoinCostModel* model) : model_(model) {
    arena_.push_back(Forest::Leaves(*model));
    // Normalizer: greedy plan cost (reward 0.5 at greedy parity).
    GreedyJoinEnumerator greedy;
    auto g = greedy.Enumerate(*model);
    norm_cost_ = g ? std::max(g->cost, 1.0) : 1.0;
  }

  State Root() const override { return 0; }

  std::vector<int> Actions(State s) override {
    const Forest& f = arena_[s];
    if (f.parts.size() <= 1) return {};
    auto pairs = f.Actions(*model_);
    std::vector<int> out;
    out.reserve(pairs.size());
    size_t n = model_->graph().rels.size() + 1;
    for (auto& [i, j] : pairs) out.push_back(static_cast<int>(i * n + j));
    return out;
  }

  State Step(State s, int action) override {
    size_t n = model_->graph().rels.size() + 1;
    size_t i = static_cast<size_t>(action) / n;
    size_t j = static_cast<size_t>(action) % n;
    Forest next = arena_[s].CloneShallow(*model_);
    next.Join(*model_, i, j);
    arena_.push_back(std::move(next));
    return arena_.size() - 1;
  }

  double TerminalReward(State s) override {
    const Forest& f = arena_[s];
    if (f.parts.size() != 1) return 0.0;
    double cost = f.parts[0]->cost;
    // Monotone map: cost == norm -> 0.5; lower cost -> closer to 1.
    return norm_cost_ / (norm_cost_ + cost);
  }

  const Forest& At(State s) const { return arena_[s]; }

 private:
  const JoinCostModel* model_;
  std::vector<Forest> arena_;
  double norm_cost_;
};

}  // namespace

std::unique_ptr<JoinPlan> MctsJoinEnumerator::Enumerate(const JoinCostModel& model) {
  size_t n = model.graph().rels.size();
  if (n == 0) return nullptr;
  if (n == 1) return model.MakeLeaf(0);

  JoinEnv env(&model);
  ml::Mcts::Options mopts;
  mopts.iterations = opts_.iterations;
  mopts.exploration = opts_.exploration;
  mopts.seed = opts_.seed;
  ml::Mcts mcts(&env, mopts);
  std::vector<int> actions = mcts.Search();

  Forest f = Forest::Leaves(model);
  size_t stride = n + 1;
  for (int a : actions) {
    size_t i = static_cast<size_t>(a) / stride;
    size_t j = static_cast<size_t>(a) % stride;
    if (i >= f.parts.size() || j >= f.parts.size() || i >= j) break;
    f.Join(model, i, j);
  }
  // Fall back to greedy completion if the action replay was truncated.
  while (f.parts.size() > 1) {
    auto pairs = f.Actions(model);
    size_t bi = 0, bj = 0;
    double best = std::numeric_limits<double>::max();
    for (auto& [i, j] : pairs) {
      double rows = model.JoinRows(f.parts[i]->mask, f.parts[j]->mask,
                                   f.parts[i]->rows, f.parts[j]->rows);
      if (rows < best) {
        best = rows;
        bi = i;
        bj = j;
      }
    }
    f.Join(model, bi, bj);
  }
  return std::move(f.parts[0]);
}

std::unique_ptr<JoinPlan> RlJoinEnumerator::Enumerate(const JoinCostModel& model) {
  size_t n = model.graph().rels.size();
  if (n == 0) return nullptr;
  if (n == 1) return model.MakeLeaf(0);

  size_t stride = n + 1;
  size_t num_actions = stride * stride;
  ml::QLearner::Options qopts;
  qopts.epsilon = 0.5;
  qopts.epsilon_decay = 0.99;
  qopts.alpha = 0.3;
  qopts.gamma = 1.0;
  qopts.seed = opts_.seed;
  ml::QLearner q(num_actions, qopts);

  GreedyJoinEnumerator greedy;
  auto gplan = greedy.Enumerate(model);
  double norm = gplan ? std::max(gplan->cost, 1.0) : 1.0;

  std::unique_ptr<JoinPlan> best = std::move(gplan);

  for (size_t ep = 0; ep < opts_.episodes; ++ep) {
    Forest f = Forest::Leaves(model);
    std::vector<std::pair<uint64_t, size_t>> trajectory;
    while (f.parts.size() > 1) {
      uint64_t state = f.Key();
      auto pairs = f.Actions(model);
      // Epsilon-greedy restricted to valid actions.
      size_t chosen = 0;
      double best_q = -1e300;
      bool explore = (ep * 2654435761u + trajectory.size()) % 100 <
                     static_cast<size_t>(q.epsilon() * 100);
      if (explore) {
        chosen = (ep * 40503 + trajectory.size() * 9973) % pairs.size();
      } else {
        for (size_t k = 0; k < pairs.size(); ++k) {
          size_t a = pairs[k].first * stride + pairs[k].second;
          double qv = q.Q(state, a);
          if (qv > best_q) {
            best_q = qv;
            chosen = k;
          }
        }
      }
      auto [i, j] = pairs[chosen];
      trajectory.emplace_back(state, i * stride + j);
      f.Join(model, i, j);
    }
    double cost = f.parts[0]->cost;
    double reward = norm / (norm + cost);
    for (size_t k = trajectory.size(); k-- > 0;) {
      uint64_t next = k + 1 < trajectory.size() ? trajectory[k + 1].first : 0;
      q.Update(trajectory[k].first, trajectory[k].second,
               k + 1 == trajectory.size() ? reward : 0.0, next,
               k + 1 == trajectory.size());
    }
    q.EndEpisode();
    if (!best || cost < best->cost) best = std::move(f.parts[0]);
  }
  return best;
}

std::unique_ptr<JoinPlan> FixedPlanEnumerator::Enumerate(const JoinCostModel& model) {
  // Recompute rows/costs under the model so annotations are consistent.
  std::function<std::unique_ptr<JoinPlan>(const JoinPlan&)> rebuild =
      [&](const JoinPlan& p) -> std::unique_ptr<JoinPlan> {
    if (p.IsLeaf()) return model.MakeLeaf(static_cast<size_t>(p.rel));
    return model.MakeJoin(rebuild(*p.left), rebuild(*p.right));
  };
  return rebuild(*plan_);
}

std::unique_ptr<JoinPlan> RandomJoinEnumerator::Enumerate(const JoinCostModel& model) {
  size_t n = model.graph().rels.size();
  if (n == 0) return nullptr;
  Rng rng(seed_);
  Forest f = Forest::Leaves(model);
  while (f.parts.size() > 1) {
    auto pairs = f.Actions(model);
    auto [i, j] = pairs[rng.Uniform(pairs.size())];
    f.Join(model, i, j);
  }
  return std::move(f.parts[0]);
}

}  // namespace aidb::learned
