#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace aidb::design {

/// \brief Two-stage Recursive Model Index (Kraska et al.): a root linear
/// model routes each key to one of `num_leaf_models` second-stage linear
/// models; each leaf model predicts a position with a recorded max error, and
/// lookup binary-searches only the error window.
///
/// Read-only (build once over sorted keys) — the original learned-index
/// setting. Compare against BTree::BulkLoad (E9).
class RmiIndex {
 public:
  explicit RmiIndex(size_t num_leaf_models = 1024)
      : num_leaf_models_(num_leaf_models) {}

  /// Builds from strictly sorted keys (duplicates allowed).
  void Build(std::vector<int64_t> sorted_keys);

  /// Position of `key` in the key array, or nullopt.
  std::optional<size_t> Lookup(int64_t key) const;
  bool Contains(int64_t key) const { return Lookup(key).has_value(); }

  /// Positions in [lo, hi] as a (first, last) index range (empty if none).
  std::pair<size_t, size_t> RangeBounds(int64_t lo, int64_t hi) const;

  size_t size() const { return keys_.size(); }
  /// Model + key storage overhead excluding the key array itself (for a fair
  /// size comparison with a B+tree's internal nodes).
  size_t ModelBytes() const;
  size_t max_error() const { return max_error_; }
  double avg_error() const { return avg_error_; }
  const std::vector<int64_t>& keys() const { return keys_; }

 private:
  struct LinearModel {
    double slope = 0.0;
    double intercept = 0.0;
    size_t error = 0;  ///< max |predicted - true| within this model

    size_t Predict(int64_t key, size_t n) const;
  };

  size_t LeafFor(int64_t key) const;
  /// Position search within [lo, hi] (inclusive), classic last-mile search.
  std::optional<size_t> SearchWindow(int64_t key, size_t lo, size_t hi) const;

  size_t num_leaf_models_;
  std::vector<int64_t> keys_;
  LinearModel root_;
  std::vector<LinearModel> leaves_;
  std::vector<std::pair<size_t, size_t>> leaf_ranges_;  ///< [start, end) per leaf
  size_t max_error_ = 0;
  double avg_error_ = 0.0;
};

}  // namespace aidb::design
