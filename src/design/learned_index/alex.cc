#include "design/learned_index/alex.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace aidb::design {

size_t AlexIndex::Segment::PredictSlot(int64_t key) const {
  double pos = slope * static_cast<double>(key) + intercept;
  if (pos < 0) return 0;
  if (pos >= static_cast<double>(slots.size())) {
    return slots.empty() ? 0 : slots.size() - 1;
  }
  return static_cast<size_t>(pos);
}

size_t AlexIndex::SegmentFor(int64_t key) const {
  // Last segment whose min_key <= key.
  size_t lo = 0, hi = segments_.size();
  while (hi - lo > 1) {
    size_t mid = (lo + hi) / 2;
    if (segments_[mid].min_key <= key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<std::pair<int64_t, uint64_t>> AlexIndex::Drain(const Segment& seg) {
  std::vector<std::pair<int64_t, uint64_t>> out;
  out.reserve(seg.num_keys);
  for (const Slot& s : seg.slots) {
    if (s.occupied) out.emplace_back(s.key, s.value);
  }
  return out;  // slots are kept key-ordered, so this is sorted
}

void AlexIndex::RetrainSegment(Segment* seg) {
  auto entries = Drain(*seg);
  size_t n = entries.size();
  size_t capacity =
      std::max<size_t>(8, static_cast<size_t>(std::ceil(n / opts_.fill_factor)));
  seg->slots.assign(capacity, Slot{});
  seg->num_keys = n;
  if (n == 0) {
    seg->slope = 0;
    seg->intercept = 0;
    return;
  }
  // Fit model key -> equally spaced slot.
  double mean_x = 0, mean_y = 0;
  for (size_t i = 0; i < n; ++i) {
    mean_x += static_cast<double>(entries[i].first);
    mean_y += static_cast<double>(i) * capacity / n;
  }
  mean_x /= n;
  mean_y /= n;
  double sxy = 0, sxx = 0;
  for (size_t i = 0; i < n; ++i) {
    double dx = static_cast<double>(entries[i].first) - mean_x;
    sxy += dx * (static_cast<double>(i) * capacity / n - mean_y);
    sxx += dx * dx;
  }
  seg->slope = sxx > 0 ? sxy / sxx : 0.0;
  seg->intercept = mean_y - seg->slope * mean_x;

  // Model-based placement preserving order: walk entries, place each at
  // max(predicted, last+1).
  size_t last = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t want = seg->PredictSlot(entries[i].first);
    size_t slot = std::max(want, i == 0 ? size_t{0} : last + 1);
    slot = std::min(slot, capacity - (n - i));  // leave room for the rest
    seg->slots[slot] = {entries[i].first, entries[i].second, true};
    last = slot;
  }
}

void AlexIndex::SplitSegment(size_t index) {
  auto entries = Drain(segments_[index]);
  size_t half = entries.size() / 2;
  Segment right;
  right.min_key = entries[half].first;

  Segment& left = segments_[index];
  std::vector<std::pair<int64_t, uint64_t>> left_entries(entries.begin(),
                                                         entries.begin() + half);
  std::vector<std::pair<int64_t, uint64_t>> right_entries(entries.begin() + half,
                                                          entries.end());
  // Rebuild both sides.
  left.slots.clear();
  left.num_keys = 0;
  for (auto& [k, v] : left_entries) {
    left.slots.push_back({k, v, true});
  }
  left.num_keys = left_entries.size();
  RetrainSegment(&left);

  right.num_keys = 0;
  for (auto& [k, v] : right_entries) right.slots.push_back({k, v, true});
  right.num_keys = right_entries.size();
  RetrainSegment(&right);

  segments_.insert(segments_.begin() + static_cast<long>(index) + 1,
                   std::move(right));
}

namespace {

/// Nearest occupied slot at or before i (-1 if none).
template <typename Slots>
long PrevOcc(const Slots& slots, long i) {
  while (i >= 0 && !slots[static_cast<size_t>(i)].occupied) --i;
  return i;
}

/// Nearest occupied slot at or after i (-1 if none).
template <typename Slots>
long NextOcc(const Slots& slots, size_t i) {
  size_t n = slots.size();
  while (i < n && !slots[i].occupied) ++i;
  return i < n ? static_cast<long>(i) : -1;
}

/// Nearest gap at or after i (-1 if none).
template <typename Slots>
long NextGap(const Slots& slots, size_t i) {
  size_t n = slots.size();
  while (i < n && slots[i].occupied) ++i;
  return i < n ? static_cast<long>(i) : -1;
}

/// Nearest gap at or before i (-1 if none).
template <typename Slots>
long PrevGap(const Slots& slots, long i) {
  while (i >= 0 && slots[static_cast<size_t>(i)].occupied) --i;
  return i;
}

}  // namespace

void AlexIndex::Insert(int64_t key, uint64_t value) {
  if (segments_.empty()) {
    Segment seg;
    seg.min_key = key;
    segments_.push_back(std::move(seg));
    RetrainSegment(&segments_[0]);
  }
  size_t si = SegmentFor(key);
  Segment& seg = segments_[si];
  if (key < seg.min_key) seg.min_key = key;

  size_t n = seg.slots.size();
  if (seg.num_keys >= n) {  // full: grow and retry
    RetrainSegment(&seg);
    Insert(key, value);
    return;
  }

  // Converge to the ordered position: every occupied slot before `pos` holds
  // a smaller key, every occupied slot at/after holds a larger one. The
  // order invariant spans gaps, so bracket with nearest-occupied scans.
  size_t pos = std::min(seg.PredictSlot(key), n);
  for (;;) {
    long p = PrevOcc(seg.slots, static_cast<long>(pos) - 1);
    if (p >= 0 && seg.slots[static_cast<size_t>(p)].key >= key) {
      if (seg.slots[static_cast<size_t>(p)].key == key) {
        seg.slots[static_cast<size_t>(p)].value = value;  // upsert
        return;
      }
      pos = static_cast<size_t>(p);
      continue;
    }
    long q = NextOcc(seg.slots, pos);
    if (q >= 0 && seg.slots[static_cast<size_t>(q)].key <= key) {
      if (seg.slots[static_cast<size_t>(q)].key == key) {
        seg.slots[static_cast<size_t>(q)].value = value;
        return;
      }
      pos = static_cast<size_t>(q) + 1;
      continue;
    }
    break;
  }

  if (pos < n && !seg.slots[pos].occupied) {
    seg.slots[pos] = {key, value, true};
  } else {
    // pos is occupied (by the next-larger key) or == n: shift toward the
    // nearest gap. Shifting copies slots verbatim, preserving order.
    long gap_right = pos < n ? NextGap(seg.slots, pos) : -1;
    if (gap_right >= 0) {
      for (size_t i = static_cast<size_t>(gap_right); i > pos; --i) {
        seg.slots[i] = seg.slots[i - 1];
        ++total_shifts_;
      }
      seg.slots[pos] = {key, value, true};
    } else {
      long gap_left = PrevGap(seg.slots, static_cast<long>(pos) - 1);
      // num_keys < n guarantees some gap exists.
      for (size_t i = static_cast<size_t>(gap_left); i + 1 < pos; ++i) {
        seg.slots[i] = seg.slots[i + 1];
        ++total_shifts_;
      }
      seg.slots[pos - 1] = {key, value, true};
    }
  }
  ++seg.num_keys;
  ++size_;

  // Retrain only when fill gets well past the target fill factor; the
  // retrain re-establishes fill_factor, leaving headroom before the next
  // retrain (otherwise every insert would retrain).
  if (seg.num_keys > opts_.max_segment_keys) {
    SplitSegment(si);
  } else if (static_cast<double>(seg.num_keys) >
             0.9 * static_cast<double>(seg.slots.size())) {
    RetrainSegment(&seg);
  }
}

std::optional<uint64_t> AlexIndex::Find(int64_t key) const {
  if (segments_.empty()) return std::nullopt;
  const Segment& seg = segments_[SegmentFor(key)];
  if (seg.slots.empty()) return std::nullopt;
  size_t n = seg.slots.size();
  size_t pos = std::min(seg.PredictSlot(key), n);
  // Same convergence walk as Insert; equality is detected at the brackets.
  for (;;) {
    long p = PrevOcc(seg.slots, static_cast<long>(pos) - 1);
    if (p >= 0 && seg.slots[static_cast<size_t>(p)].key >= key) {
      if (seg.slots[static_cast<size_t>(p)].key == key) {
        return seg.slots[static_cast<size_t>(p)].value;
      }
      pos = static_cast<size_t>(p);
      continue;
    }
    long q = NextOcc(seg.slots, pos);
    if (q >= 0 && seg.slots[static_cast<size_t>(q)].key <= key) {
      if (seg.slots[static_cast<size_t>(q)].key == key) {
        return seg.slots[static_cast<size_t>(q)].value;
      }
      pos = static_cast<size_t>(q) + 1;
      continue;
    }
    return std::nullopt;
  }
}

void AlexIndex::BulkLoad(const std::vector<std::pair<int64_t, uint64_t>>& sorted) {
  segments_.clear();
  size_ = 0;
  for (size_t start = 0; start < sorted.size(); start += opts_.max_segment_keys / 2) {
    size_t end = std::min(start + opts_.max_segment_keys / 2, sorted.size());
    Segment seg;
    seg.min_key = start == 0 ? std::numeric_limits<int64_t>::min()
                             : sorted[start].first;
    for (size_t i = start; i < end; ++i) {
      seg.slots.push_back({sorted[i].first, sorted[i].second, true});
    }
    seg.num_keys = end - start;
    RetrainSegment(&seg);
    segments_.push_back(std::move(seg));
  }
  size_ = sorted.size();
}

size_t AlexIndex::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& seg : segments_) {
    bytes += sizeof(Segment) + seg.slots.capacity() * sizeof(Slot);
  }
  return bytes;
}

}  // namespace aidb::design
