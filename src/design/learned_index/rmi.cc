#include "design/learned_index/rmi.h"

#include <algorithm>
#include <cmath>

namespace aidb::design {

namespace {

/// Least-squares fit of position = slope * key + intercept over
/// keys[start, end).
void FitLinear(const std::vector<int64_t>& keys, size_t start, size_t end,
               double* slope, double* intercept) {
  size_t n = end - start;
  if (n == 0) {
    *slope = 0;
    *intercept = 0;
    return;
  }
  if (n == 1) {
    *slope = 0;
    *intercept = static_cast<double>(start);
    return;
  }
  double mean_x = 0, mean_y = 0;
  for (size_t i = start; i < end; ++i) {
    mean_x += static_cast<double>(keys[i]);
    mean_y += static_cast<double>(i);
  }
  mean_x /= n;
  mean_y /= n;
  double sxy = 0, sxx = 0;
  for (size_t i = start; i < end; ++i) {
    double dx = static_cast<double>(keys[i]) - mean_x;
    sxy += dx * (static_cast<double>(i) - mean_y);
    sxx += dx * dx;
  }
  *slope = sxx > 0 ? sxy / sxx : 0.0;
  *intercept = mean_y - *slope * mean_x;
}

}  // namespace

size_t RmiIndex::LinearModel::Predict(int64_t key, size_t n) const {
  double pos = slope * static_cast<double>(key) + intercept;
  if (pos < 0) return 0;
  if (pos >= static_cast<double>(n)) return n == 0 ? 0 : n - 1;
  return static_cast<size_t>(pos);
}

void RmiIndex::Build(std::vector<int64_t> sorted_keys) {
  keys_ = std::move(sorted_keys);
  size_t n = keys_.size();
  leaves_.assign(num_leaf_models_, LinearModel{});
  leaf_ranges_.assign(num_leaf_models_, {0, 0});
  max_error_ = 0;
  avg_error_ = 0.0;
  if (n == 0) return;

  // Root model maps key -> leaf id (scaled position).
  double slope, intercept;
  FitLinear(keys_, 0, n, &slope, &intercept);
  double scale = static_cast<double>(num_leaf_models_) / static_cast<double>(n);
  root_.slope = slope * scale;
  root_.intercept = intercept * scale;

  // Partition keys by root-predicted leaf (monotone, so contiguous ranges).
  std::vector<size_t> leaf_of(n);
  for (size_t i = 0; i < n; ++i) leaf_of[i] = LeafFor(keys_[i]);
  // Enforce monotonicity (root model is linear, so it already is).
  size_t start = 0;
  for (size_t leaf = 0; leaf < num_leaf_models_; ++leaf) {
    size_t end = start;
    while (end < n && leaf_of[end] == leaf) ++end;
    leaf_ranges_[leaf] = {start, end};
    FitLinear(keys_, start, end, &leaves_[leaf].slope, &leaves_[leaf].intercept);
    // Record max error over this leaf's keys.
    size_t err = 0;
    for (size_t i = start; i < end; ++i) {
      size_t pred = leaves_[leaf].Predict(keys_[i], n);
      size_t diff = pred > i ? pred - i : i - pred;
      err = std::max(err, diff);
    }
    leaves_[leaf].error = err;
    start = end;
  }
  // Aggregate stats.
  double total_err = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const LinearModel& m = leaves_[leaf_of[i]];
    size_t pred = m.Predict(keys_[i], n);
    size_t diff = pred > i ? pred - i : i - pred;
    total_err += static_cast<double>(diff);
    max_error_ = std::max(max_error_, diff);
  }
  avg_error_ = total_err / static_cast<double>(n);
}

size_t RmiIndex::LeafFor(int64_t key) const {
  double pos = root_.slope * static_cast<double>(key) + root_.intercept;
  if (pos < 0) return 0;
  if (pos >= static_cast<double>(num_leaf_models_)) return num_leaf_models_ - 1;
  return static_cast<size_t>(pos);
}

std::optional<size_t> RmiIndex::SearchWindow(int64_t key, size_t lo,
                                             size_t hi) const {
  auto begin = keys_.begin() + static_cast<long>(lo);
  auto end = keys_.begin() + static_cast<long>(std::min(hi + 1, keys_.size()));
  auto it = std::lower_bound(begin, end, key);
  if (it != end && *it == key) {
    return static_cast<size_t>(it - keys_.begin());
  }
  return std::nullopt;
}

std::optional<size_t> RmiIndex::Lookup(int64_t key) const {
  if (keys_.empty()) return std::nullopt;
  const LinearModel& m = leaves_[LeafFor(key)];
  size_t pred = m.Predict(key, keys_.size());
  size_t lo = pred > m.error ? pred - m.error : 0;
  size_t hi = std::min(pred + m.error, keys_.size() - 1);
  // Guard: the key may fall just outside the leaf's own range when the root
  // misroutes boundary keys; widen by one slot each side.
  if (lo > 0) --lo;
  if (hi + 1 < keys_.size()) ++hi;
  return SearchWindow(key, lo, hi);
}

std::pair<size_t, size_t> RmiIndex::RangeBounds(int64_t lo, int64_t hi) const {
  auto first = std::lower_bound(keys_.begin(), keys_.end(), lo);
  auto last = std::upper_bound(keys_.begin(), keys_.end(), hi);
  return {static_cast<size_t>(first - keys_.begin()),
          static_cast<size_t>(last - keys_.begin())};
}

size_t RmiIndex::ModelBytes() const {
  return sizeof(LinearModel) * (1 + leaves_.size()) +
         sizeof(std::pair<size_t, size_t>) * leaf_ranges_.size();
}

}  // namespace aidb::design
