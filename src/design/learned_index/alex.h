#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace aidb::design {

/// \brief ALEX-lite: an updatable learned index (Ding et al.).
///
/// Keys live in model-ordered segments; each segment holds a gapped array
/// sized at 1/`fill_factor` of its keys and a linear model predicting slots.
/// Inserts go to the model-predicted slot (shifting to the nearest gap);
/// a segment splits and retrains when it exceeds its fill bound. This keeps
/// the learned-index lookup advantage under updates — the extension the
/// survey highlights beyond the original read-only learned index.
class AlexIndex {
 public:
  struct Options {
    size_t max_segment_keys = 4096;
    double fill_factor = 0.7;  ///< keys / slots after retrain
  };

  AlexIndex() : AlexIndex(Options()) {}
  explicit AlexIndex(const Options& opts) : opts_(opts) {}

  void Insert(int64_t key, uint64_t value);
  std::optional<uint64_t> Find(int64_t key) const;
  bool Contains(int64_t key) const { return Find(key).has_value(); }

  /// Bulk construction from sorted (key, value) pairs.
  void BulkLoad(const std::vector<std::pair<int64_t, uint64_t>>& sorted);

  size_t size() const { return size_; }
  size_t num_segments() const { return segments_.size(); }
  size_t MemoryBytes() const;
  /// Total slot shifts performed by inserts (cost-of-updates metric).
  uint64_t total_shifts() const { return total_shifts_; }

 private:
  struct Slot {
    int64_t key = 0;
    uint64_t value = 0;
    bool occupied = false;
  };

  struct Segment {
    int64_t min_key = 0;     ///< routing boundary
    double slope = 0.0;
    double intercept = 0.0;  ///< model: slot = slope*key + intercept
    std::vector<Slot> slots;
    size_t num_keys = 0;

    size_t PredictSlot(int64_t key) const;
  };

  size_t SegmentFor(int64_t key) const;
  void RetrainSegment(Segment* seg);
  void SplitSegment(size_t index);
  static std::vector<std::pair<int64_t, uint64_t>> Drain(const Segment& seg);

  Options opts_;
  std::vector<Segment> segments_;  ///< sorted by min_key
  size_t size_ = 0;
  uint64_t total_shifts_ = 0;
};

}  // namespace aidb::design
