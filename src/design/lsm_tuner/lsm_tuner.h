#pragma once

#include <string>

#include "storage/lsm.h"

namespace aidb::design {

/// Workload description for LSM design tuning.
struct LsmWorkload {
  size_t num_writes = 100000;
  size_t num_point_reads = 100000;
  size_t key_space = 100000;
  /// Fraction of reads that hit existing keys (misses are where blooms pay).
  double read_hit_fraction = 0.5;

  double WriteFraction() const {
    size_t total = num_writes + num_point_reads;
    return total ? static_cast<double>(num_writes) / total : 0.0;
  }
};

/// \brief Analytic LSM cost model over the design continuum (Idreos et al.:
/// "design continuums and the path toward self-designing key-value stores").
///
/// Standard amortized I/O algebra: leveling rewrites each entry ~T/2 times
/// per level; tiering once per level; point reads probe one run per level
/// (leveling) or T runs (tiering), discounted by the bloom false-positive
/// rate for misses.
class LsmCostModel {
 public:
  double WriteCost(const LsmOptions& opts, const LsmWorkload& w) const;
  double ReadCost(const LsmOptions& opts, const LsmWorkload& w) const;
  double MemoryCost(const LsmOptions& opts, const LsmWorkload& w) const;
  /// Weighted total the tuner minimizes.
  double TotalCost(const LsmOptions& opts, const LsmWorkload& w) const {
    return WriteCost(opts, w) + ReadCost(opts, w) + 0.1 * MemoryCost(opts, w);
  }

  double NumLevels(const LsmOptions& opts, const LsmWorkload& w) const;
  static double BloomFalsePositiveRate(size_t bits_per_key);
};

/// \brief Self-designing tuner: hill-climbs the discrete design space
/// (memtable budget, size ratio, bloom bits, leveling/tiering) along the
/// cost model's steepest-descent direction — the paper's "tweak different
/// knobs in one direction until reaching the cost boundary" procedure.
class LsmDesignTuner {
 public:
  struct Result {
    LsmOptions options;
    double model_cost = 0.0;
    size_t steps = 0;
  };

  Result Tune(const LsmWorkload& workload, const LsmOptions& start = {}) const;

  /// The shipped one-size-fits-all configuration (baseline for E10).
  static LsmOptions DefaultDesign() { return LsmOptions{}; }
};

}  // namespace aidb::design
