#include "design/lsm_tuner/lsm_tuner.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace aidb::design {

double LsmCostModel::BloomFalsePositiveRate(size_t bits_per_key) {
  if (bits_per_key == 0) return 1.0;
  return std::pow(0.6185, static_cast<double>(bits_per_key));
}

double LsmCostModel::NumLevels(const LsmOptions& opts, const LsmWorkload& w) const {
  double n = std::max<double>(1.0, static_cast<double>(w.key_space));
  double m = std::max<double>(1.0, static_cast<double>(opts.memtable_capacity));
  double t = std::max<double>(2.0, static_cast<double>(opts.size_ratio));
  return std::max(1.0, std::ceil(std::log(n / m) / std::log(t)));
}

double LsmCostModel::WriteCost(const LsmOptions& opts, const LsmWorkload& w) const {
  double levels = NumLevels(opts, w);
  double t = static_cast<double>(opts.size_ratio);
  // Per-entry amortized rewrites; total scaled by write volume.
  double per_entry = opts.leveling ? (t / 2.0) * levels : levels;
  return per_entry * static_cast<double>(w.num_writes) * 1e-3;
}

double LsmCostModel::ReadCost(const LsmOptions& opts, const LsmWorkload& w) const {
  double levels = NumLevels(opts, w);
  double t = static_cast<double>(opts.size_ratio);
  double runs = opts.leveling ? levels : levels * t;
  double fpr = BloomFalsePositiveRate(opts.bloom_bits_per_key);
  // A hit probes ~half the runs plus the hit run; a miss probes only
  // bloom-passing runs.
  double hit_cost = 0.5 * runs + 1.0;
  double miss_cost = runs * fpr + 0.1;  // bloom checks are cheap but not free
  double reads = static_cast<double>(w.num_point_reads);
  return (w.read_hit_fraction * hit_cost +
          (1.0 - w.read_hit_fraction) * miss_cost) *
         reads * 1e-3;
}

double LsmCostModel::MemoryCost(const LsmOptions& opts, const LsmWorkload& w) const {
  double bloom_bits = static_cast<double>(opts.bloom_bits_per_key) *
                      static_cast<double>(w.key_space);
  double memtable = static_cast<double>(opts.memtable_capacity) * 64.0;  // bytes
  return (bloom_bits / 8.0 + memtable) * 1e-5;
}

LsmDesignTuner::Result LsmDesignTuner::Tune(const LsmWorkload& workload,
                                            const LsmOptions& start) const {
  LsmCostModel model;
  // Discrete design lattice per knob.
  const std::vector<size_t> memtables{512, 1024, 2048, 4096, 8192, 16384};
  const std::vector<size_t> ratios{2, 3, 4, 6, 8, 10, 16};
  const std::vector<size_t> blooms{0, 2, 4, 6, 8, 10, 12, 16};

  Result r;
  r.options = start;
  r.model_cost = model.TotalCost(r.options, workload);

  // Steepest-descent over one-knob moves until no move improves (the
  // design-continuum "gradient" walk). The lattice is small enough that this
  // converges in a handful of steps.
  bool improved = true;
  while (improved) {
    improved = false;
    LsmOptions best = r.options;
    double best_cost = r.model_cost;
    auto consider = [&](LsmOptions cand) {
      double c = model.TotalCost(cand, workload);
      if (c < best_cost) {
        best_cost = c;
        best = cand;
      }
    };
    auto neighbors = [&](const std::vector<size_t>& lattice, size_t cur,
                         auto setter) {
      for (size_t i = 0; i < lattice.size(); ++i) {
        if (lattice[i] == cur) {
          if (i > 0) consider(setter(lattice[i - 1]));
          if (i + 1 < lattice.size()) consider(setter(lattice[i + 1]));
          return;
        }
      }
      consider(setter(lattice[lattice.size() / 2]));  // snap onto the lattice
    };
    neighbors(memtables, r.options.memtable_capacity, [&](size_t v) {
      LsmOptions o = r.options;
      o.memtable_capacity = v;
      return o;
    });
    neighbors(ratios, r.options.size_ratio, [&](size_t v) {
      LsmOptions o = r.options;
      o.size_ratio = v;
      return o;
    });
    neighbors(blooms, r.options.bloom_bits_per_key, [&](size_t v) {
      LsmOptions o = r.options;
      o.bloom_bits_per_key = v;
      return o;
    });
    {
      LsmOptions o = r.options;
      o.leveling = !o.leveling;
      consider(o);
    }
    if (best_cost < r.model_cost - 1e-12) {
      r.options = best;
      r.model_cost = best_cost;
      improved = true;
      ++r.steps;
    }
  }
  return r;
}

}  // namespace aidb::design
