#pragma once

#include <deque>
#include <string>
#include <vector>

#include "ml/linear.h"
#include "txn/simulator.h"

namespace aidb::design {

/// \brief Sheng-style learned transaction scheduler: a logistic conflict
/// predictor, trained online from dispatch outcomes, scores each queued
/// transaction's abort probability against the currently running set; the
/// scheduler admits the front-most transaction predicted safe (bounded
/// lookahead so nothing starves).
class LearnedTxnScheduler : public txn::TxnScheduler {
 public:
  struct Options {
    size_t lookahead = 12;        ///< queue prefix scanned per decision
    double conflict_threshold = 0.5;
    /// When even the least-risky candidate exceeds this probability, idle
    /// the slot instead of burning an abort (the oracle's behaviour).
    double idle_threshold = 0.85;
    size_t retrain_interval = 64; ///< outcomes between refits
    size_t max_examples = 4000;
    uint64_t seed = 42;
  };
  LearnedTxnScheduler() : LearnedTxnScheduler(Options()) {}
  explicit LearnedTxnScheduler(const Options& opts) : opts_(opts) {}

  int PickNext(const std::deque<txn::TxnSpec>& queue,
               const std::vector<txn::TxnSpec>& running,
               const txn::LockManager& locks) override;
  void OnOutcome(const txn::TxnSpec& txn, const std::vector<txn::TxnSpec>& running,
                 bool aborted) override;
  std::string name() const override { return "learned_conflict"; }

  size_t examples_seen() const { return examples_seen_; }

 private:
  /// Features of dispatching `txn` against `running`: write-write overlap,
  /// read-write overlap, running count, txn size/duration, hot-key mass.
  static std::vector<double> Featurize(const txn::TxnSpec& txn,
                                       const std::vector<txn::TxnSpec>& running);

  void MaybeRetrain();

  Options opts_;
  ml::LogisticRegression model_;
  bool model_ready_ = false;
  std::vector<std::vector<double>> xs_;
  std::vector<double> ys_;
  size_t examples_seen_ = 0;
  size_t trained_at_ = 0;
};

/// Oracle-style baseline: dispatches the first queued txn whose locks would
/// all be granted right now (perfect conflict knowledge — the upper bound
/// the learned scheduler approaches).
class OracleTxnScheduler : public txn::TxnScheduler {
 public:
  explicit OracleTxnScheduler(size_t lookahead = 12) : lookahead_(lookahead) {}
  int PickNext(const std::deque<txn::TxnSpec>& queue,
               const std::vector<txn::TxnSpec>& running,
               const txn::LockManager& locks) override;
  std::string name() const override { return "oracle"; }

 private:
  size_t lookahead_;
};

}  // namespace aidb::design
