#include "design/txn_sched/learned_scheduler.h"

#include <algorithm>
#include <unordered_set>

namespace aidb::design {

std::vector<double> LearnedTxnScheduler::Featurize(
    const txn::TxnSpec& txn, const std::vector<txn::TxnSpec>& running) {
  std::unordered_set<txn::KeyId> running_writes, running_reads;
  for (const auto& r : running) {
    for (const auto& [key, mode] : r.accesses) {
      if (mode == txn::LockMode::kExclusive) {
        running_writes.insert(key);
      } else {
        running_reads.insert(key);
      }
    }
  }
  double ww = 0, wr = 0, rw = 0;
  for (const auto& [key, mode] : txn.accesses) {
    bool is_write = mode == txn::LockMode::kExclusive;
    if (is_write && running_writes.count(key)) ++ww;
    if (is_write && running_reads.count(key)) ++wr;
    if (!is_write && running_writes.count(key)) ++rw;
  }
  return {ww,
          wr,
          rw,
          static_cast<double>(running.size()),
          static_cast<double>(txn.accesses.size()),
          txn.duration};
}

int LearnedTxnScheduler::PickNext(const std::deque<txn::TxnSpec>& queue,
                                  const std::vector<txn::TxnSpec>& running,
                                  const txn::LockManager& /*locks*/) {
  if (queue.empty()) return -1;
  if (!model_ready_) return 0;  // FIFO until the predictor has data
  size_t horizon = std::min(queue.size(), opts_.lookahead);
  int best = -1;
  double best_p = 2.0;
  for (size_t i = 0; i < horizon; ++i) {
    auto f = Featurize(queue[i], running);
    double p = model_.PredictProba(f.data(), f.size());
    if (p < opts_.conflict_threshold) return static_cast<int>(i);  // first safe
    if (p < best_p) {
      best_p = p;
      best = static_cast<int>(i);
    }
  }
  // Nothing predicted safe: admit the least-risky unless even that looks
  // doomed, in which case idle — a completion will free locks. Never idle an
  // empty system (nothing would ever complete).
  if (best_p >= opts_.idle_threshold && !running.empty()) return -1;
  return best;
}

void LearnedTxnScheduler::OnOutcome(const txn::TxnSpec& txn,
                                    const std::vector<txn::TxnSpec>& running,
                                    bool aborted) {
  xs_.push_back(Featurize(txn, running));
  ys_.push_back(aborted ? 1.0 : 0.0);
  if (xs_.size() > opts_.max_examples) {
    xs_.erase(xs_.begin(), xs_.begin() + static_cast<long>(xs_.size() / 4));
    ys_.erase(ys_.begin(), ys_.begin() + static_cast<long>(ys_.size() / 4));
  }
  ++examples_seen_;
  MaybeRetrain();
}

void LearnedTxnScheduler::MaybeRetrain() {
  if (examples_seen_ - trained_at_ < opts_.retrain_interval) return;
  if (xs_.size() < 32) return;
  // Need both classes represented.
  bool has_pos = false, has_neg = false;
  for (double y : ys_) (y > 0.5 ? has_pos : has_neg) = true;
  if (!has_pos || !has_neg) return;

  ml::Dataset data;
  data.x = ml::Matrix(xs_.size(), xs_[0].size());
  for (size_t i = 0; i < xs_.size(); ++i)
    for (size_t c = 0; c < xs_[i].size(); ++c) data.x.At(i, c) = xs_[i][c];
  data.y = ys_;
  ml::SgdOptions sopts;
  sopts.epochs = 40;
  sopts.learning_rate = 0.1;
  sopts.seed = opts_.seed;
  model_.Fit(data, sopts);
  model_ready_ = true;
  trained_at_ = examples_seen_;
}

int OracleTxnScheduler::PickNext(const std::deque<txn::TxnSpec>& queue,
                                 const std::vector<txn::TxnSpec>& /*running*/,
                                 const txn::LockManager& locks) {
  if (queue.empty()) return -1;
  size_t horizon = std::min(queue.size(), lookahead_);
  for (size_t i = 0; i < horizon; ++i) {
    if (locks.WouldGrantAll(queue[i].id, queue[i].accesses)) {
      return static_cast<int>(i);
    }
  }
  return -1;  // nothing admissible: idle the slot (aborts cost work)
}

}  // namespace aidb::design
