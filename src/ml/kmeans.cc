#include "ml/kmeans.h"

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace aidb::ml {

namespace {
double Sq(double x) { return x * x; }

double Dist2(const double* a, const double* b, size_t d) {
  double s = 0.0;
  for (size_t i = 0; i < d; ++i) s += Sq(a[i] - b[i]);
  return s;
}
}  // namespace

std::vector<size_t> KMeans::Fit(const Matrix& x) {
  size_t n = x.rows(), d = x.cols();
  size_t k = std::min(opts_.k, n);
  Rng rng(opts_.seed);
  centroids_ = Matrix(k, d);
  if (n == 0 || k == 0) return {};

  // k-means++ seeding.
  std::vector<size_t> chosen;
  chosen.push_back(rng.Uniform(n));
  std::vector<double> dist(n, std::numeric_limits<double>::max());
  while (chosen.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      dist[i] = std::min(dist[i], Dist2(x.RowPtr(i), x.RowPtr(chosen.back()), d));
      total += dist[i];
    }
    double pick = rng.NextDouble() * total;
    size_t next = 0;
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += dist[i];
      if (acc >= pick) {
        next = i;
        break;
      }
    }
    chosen.push_back(next);
  }
  for (size_t c = 0; c < k; ++c)
    for (size_t j = 0; j < d; ++j) centroids_.At(c, j) = x.At(chosen[c], j);

  std::vector<size_t> assign(n, 0);
  for (size_t iter = 0; iter < opts_.max_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      size_t best = Assign(x.RowPtr(i));
      if (best != assign[i]) {
        assign[i] = best;
        changed = true;
      }
    }
    Matrix sums(k, d);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      ++counts[assign[i]];
      for (size_t j = 0; j < d; ++j) sums.At(assign[i], j) += x.At(i, j);
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep empty-cluster centroid in place
      for (size_t j = 0; j < d; ++j)
        centroids_.At(c, j) = sums.At(c, j) / static_cast<double>(counts[c]);
    }
    if (!changed) break;
  }
  inertia_ = 0.0;
  for (size_t i = 0; i < n; ++i)
    inertia_ += Dist2(x.RowPtr(i), centroids_.RowPtr(assign[i]), d);
  return assign;
}

size_t KMeans::Assign(const double* row) const {
  size_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (size_t c = 0; c < centroids_.rows(); ++c) {
    double dd = Dist2(row, centroids_.RowPtr(c), centroids_.cols());
    if (dd < best_d) {
      best_d = dd;
      best = c;
    }
  }
  return best;
}

double KMeans::DistanceToCentroid(const double* row, size_t cluster) const {
  return Dist2(row, centroids_.RowPtr(cluster), centroids_.cols());
}

}  // namespace aidb::ml
