#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace aidb::ml {

/// \brief Tabular Q-learning over hashed opaque state keys.
///
/// The RL workhorse behind the CDBTune-style knob tuner, the MDP index
/// advisor, the RL view/partition advisors and the RL join-order enumerator.
/// States are caller-provided 64-bit keys (hash of whatever features the
/// component uses); actions are dense indices [0, num_actions).
class QLearner {
 public:
  struct Options {
    double alpha = 0.2;     ///< learning rate
    double gamma = 0.95;    ///< discount
    double epsilon = 0.2;   ///< exploration rate
    double epsilon_decay = 1.0;  ///< multiplied in after each episode
    double min_epsilon = 0.01;
    uint64_t seed = 42;
  };

  QLearner(size_t num_actions, const Options& opts)
      : opts_(opts), eps_(opts.epsilon), num_actions_(num_actions), rng_(opts.seed) {}

  /// Epsilon-greedy action for `state`.
  size_t SelectAction(uint64_t state);
  /// Greedy (exploit-only) action.
  size_t BestAction(uint64_t state) const;
  double BestValue(uint64_t state) const;

  /// Q(s,a) += alpha * (r + gamma * max_a' Q(s',a') - Q(s,a)).
  /// Pass `terminal=true` to drop the bootstrap term.
  void Update(uint64_t state, size_t action, double reward, uint64_t next_state,
              bool terminal = false);

  /// Decays epsilon (call at episode end).
  void EndEpisode();

  double Q(uint64_t state, size_t action) const;
  size_t num_states() const { return table_.size(); }
  double epsilon() const { return eps_; }

 private:
  Options opts_;
  double eps_;
  size_t num_actions_;
  Rng rng_;
  std::unordered_map<uint64_t, std::vector<double>> table_;
};

/// FNV-1a hash combiner for building state keys from feature integers.
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace aidb::ml
