#pragma once

#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/matrix.h"

namespace aidb::ml {

/// Optimizer hyperparameters shared by the linear models.
struct SgdOptions {
  double learning_rate = 0.01;
  size_t epochs = 100;
  size_t batch_size = 32;
  double l2 = 0.0;       ///< ridge penalty
  uint64_t seed = 42;
};

/// \brief Ordinary least squares / ridge regression, trained by minibatch
/// SGD (or the normal equations for small feature counts).
class LinearRegression {
 public:
  /// Fits with minibatch SGD.
  void Fit(const Dataset& data, const SgdOptions& opts = {});
  /// Fits exactly via the normal equations with ridge regularizer `l2`.
  /// Suitable for d up to a few hundred.
  void FitClosedForm(const Dataset& data, double l2 = 1e-6);

  double Predict(const double* row, size_t d) const;
  std::vector<double> Predict(const Matrix& x) const;

  const std::vector<double>& weights() const { return w_; }
  double bias() const { return b_; }

  /// Restores a fitted state from serialized parameters (durability layer).
  void SetParams(std::vector<double> w, double b) {
    w_ = std::move(w);
    b_ = b;
  }

 private:
  std::vector<double> w_;
  double b_ = 0.0;
};

/// \brief Binary logistic regression trained by minibatch SGD.
class LogisticRegression {
 public:
  void Fit(const Dataset& data, const SgdOptions& opts = {});

  /// Probability of the positive class.
  double PredictProba(const double* row, size_t d) const;
  std::vector<double> PredictProba(const Matrix& x) const;
  /// Hard label at threshold 0.5.
  std::vector<double> Predict(const Matrix& x) const;

  const std::vector<double>& weights() const { return w_; }
  double bias() const { return b_; }

  /// Restores a fitted state from serialized parameters (durability layer).
  void SetParams(std::vector<double> w, double b) {
    w_ = std::move(w);
    b_ = b;
  }

 private:
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace aidb::ml
