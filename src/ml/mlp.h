#pragma once

#include <cstdint>
#include <vector>

#include "ml/dataset.h"
#include "ml/matrix.h"

namespace aidb::ml {

/// Configuration for MlpRegressor / MlpClassifier.
struct MlpOptions {
  std::vector<size_t> hidden = {32, 32};  ///< hidden layer widths
  double learning_rate = 1e-3;            ///< Adam step size
  size_t epochs = 60;
  size_t batch_size = 32;
  double l2 = 0.0;
  uint64_t seed = 42;
};

/// \brief Multi-layer perceptron (ReLU hidden layers) trained with Adam.
///
/// The workhorse model for learned cardinality/cost estimation, Neo-lite
/// value networks, partition-benefit estimation and QTune-style query-aware
/// tuning. Supports a configurable number of output units; regression uses
/// identity output + MSE, classification uses sigmoid/softmax handled by the
/// wrapper functions below.
class Mlp {
 public:
  Mlp(size_t input_dim, size_t output_dim, const MlpOptions& opts);

  /// One Adam minibatch update on (x, y); y is batch x output_dim.
  /// Returns the batch loss (MSE).
  double TrainBatch(const Matrix& x, const Matrix& y);

  /// Trains on a full dataset (targets taken from data.y as a single output)
  /// for opts.epochs. Returns final epoch mean loss.
  double Fit(const Dataset& data);

  /// Forward pass; returns batch x output_dim predictions.
  Matrix Forward(const Matrix& x) const;

  /// Scalar convenience for single-output networks.
  double Predict1(const std::vector<double>& row) const;
  std::vector<double> Predict(const Matrix& x) const;

  size_t input_dim() const { return input_dim_; }
  size_t output_dim() const { return output_dim_; }
  const MlpOptions& options() const { return opts_; }
  /// Total number of parameters (for model-size reporting).
  size_t NumParameters() const;

  /// Flattens every layer's weights then biases, layer by layer — the
  /// serialization surface the durability snapshot stores. Adam moments are
  /// deliberately excluded: a restored network predicts identically but
  /// would restart optimizer state if trained further.
  std::vector<double> GetParameters() const;
  /// Inverse of GetParameters; `flat` must hold exactly NumParameters()
  /// values for this architecture.
  bool SetParameters(const std::vector<double>& flat);

 private:
  struct Layer {
    Matrix w;       // in x out
    Matrix b;       // 1 x out
    Matrix mw, vw;  // Adam moments for w
    Matrix mb, vb;  // Adam moments for b
  };

  Matrix ForwardInternal(const Matrix& x, std::vector<Matrix>* activations) const;

  size_t input_dim_;
  size_t output_dim_;
  MlpOptions opts_;
  std::vector<Layer> layers_;
  size_t adam_t_ = 0;
};

}  // namespace aidb::ml
