#pragma once

#include <cstdint>
#include <vector>

#include "ml/matrix.h"

namespace aidb::ml {

/// \brief Lloyd's k-means with k-means++ seeding.
///
/// Used by the root-cause diagnosis monitor (iSQUAD-style KPI clustering).
class KMeans {
 public:
  struct Options {
    size_t k = 4;
    size_t max_iters = 100;
    uint64_t seed = 42;
  };

  explicit KMeans(const Options& opts) : opts_(opts) {}

  /// Clusters rows of x; returns per-row cluster assignment.
  std::vector<size_t> Fit(const Matrix& x);

  /// Nearest centroid for a new point.
  size_t Assign(const double* row) const;
  /// Squared L2 distance to that centroid.
  double DistanceToCentroid(const double* row, size_t cluster) const;

  const Matrix& centroids() const { return centroids_; }
  /// Sum of squared distances of training points to their centroids.
  double inertia() const { return inertia_; }

 private:
  Options opts_;
  Matrix centroids_;
  double inertia_ = 0.0;
};

}  // namespace aidb::ml
