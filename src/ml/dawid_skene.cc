#include "ml/dawid_skene.h"

#include <algorithm>
#include <cmath>

namespace aidb::ml {

std::vector<size_t> TruthInference::MajorityVote(
    const std::vector<CrowdLabel>& labels) const {
  std::vector<std::vector<size_t>> votes(num_items_,
                                         std::vector<size_t>(num_classes_, 0));
  for (const auto& l : labels) ++votes[l.item][l.label];
  std::vector<size_t> out(num_items_, 0);
  for (size_t i = 0; i < num_items_; ++i) {
    out[i] = static_cast<size_t>(
        std::max_element(votes[i].begin(), votes[i].end()) - votes[i].begin());
  }
  return out;
}

std::vector<size_t> TruthInference::DawidSkene(
    const std::vector<CrowdLabel>& labels, size_t iterations) const {
  // Soft item-class posterior, initialized from vote fractions.
  std::vector<std::vector<double>> post(num_items_,
                                        std::vector<double>(num_classes_, 0.0));
  {
    std::vector<size_t> counts(num_items_, 0);
    for (const auto& l : labels) {
      post[l.item][l.label] += 1.0;
      ++counts[l.item];
    }
    for (size_t i = 0; i < num_items_; ++i) {
      if (counts[i] == 0) {
        for (auto& p : post[i]) p = 1.0 / static_cast<double>(num_classes_);
      } else {
        for (auto& p : post[i]) p /= static_cast<double>(counts[i]);
      }
    }
  }

  // confusion[w][true_class][observed] with Laplace smoothing.
  std::vector<std::vector<std::vector<double>>> confusion(
      num_workers_, std::vector<std::vector<double>>(
                        num_classes_, std::vector<double>(num_classes_, 0.0)));
  std::vector<double> prior(num_classes_, 0.0);

  for (size_t it = 0; it < iterations; ++it) {
    // M step: class prior + worker confusion matrices from posteriors.
    std::fill(prior.begin(), prior.end(), 1e-9);
    for (auto& w : confusion)
      for (auto& row : w) std::fill(row.begin(), row.end(), 1e-2);  // smoothing
    for (size_t i = 0; i < num_items_; ++i)
      for (size_t c = 0; c < num_classes_; ++c) prior[c] += post[i][c];
    double psum = 0.0;
    for (double p : prior) psum += p;
    for (double& p : prior) p /= psum;

    for (const auto& l : labels)
      for (size_t c = 0; c < num_classes_; ++c)
        confusion[l.worker][c][l.label] += post[l.item][c];
    for (auto& w : confusion) {
      for (auto& row : w) {
        double s = 0.0;
        for (double v : row) s += v;
        for (double& v : row) v /= s;
      }
    }

    // E step: recompute posteriors in log space.
    for (auto& p : post)
      for (size_t c = 0; c < num_classes_; ++c) p[c] = std::log(prior[c]);
    for (const auto& l : labels)
      for (size_t c = 0; c < num_classes_; ++c)
        post[l.item][c] += std::log(confusion[l.worker][c][l.label]);
    for (auto& p : post) {
      double mx = *std::max_element(p.begin(), p.end());
      double s = 0.0;
      for (double& v : p) {
        v = std::exp(v - mx);
        s += v;
      }
      for (double& v : p) v /= s;
    }
  }

  worker_accuracy_.assign(num_workers_, 0.0);
  for (size_t w = 0; w < num_workers_; ++w) {
    double acc = 0.0;
    for (size_t c = 0; c < num_classes_; ++c) acc += confusion[w][c][c];
    worker_accuracy_[w] = acc / static_cast<double>(num_classes_);
  }

  std::vector<size_t> out(num_items_, 0);
  for (size_t i = 0; i < num_items_; ++i)
    out[i] = static_cast<size_t>(
        std::max_element(post[i].begin(), post[i].end()) - post[i].begin());
  return out;
}

}  // namespace aidb::ml
