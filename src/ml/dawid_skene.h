#pragma once

#include <cstddef>
#include <vector>

namespace aidb::ml {

/// One crowdsourced label: worker `worker` labeled item `item` as `label`.
struct CrowdLabel {
  size_t item;
  size_t worker;
  size_t label;
};

/// \brief Truth inference over crowdsourced labels.
///
/// Implements simple majority vote and Dawid–Skene EM (per-worker confusion
/// matrices), the classic pairing the survey's data-labeling section cites.
class TruthInference {
 public:
  TruthInference(size_t num_items, size_t num_workers, size_t num_classes)
      : num_items_(num_items), num_workers_(num_workers), num_classes_(num_classes) {}

  /// Per-item majority vote (ties broken toward the smaller class id).
  std::vector<size_t> MajorityVote(const std::vector<CrowdLabel>& labels) const;

  /// Dawid–Skene EM; `iterations` rounds starting from majority vote.
  std::vector<size_t> DawidSkene(const std::vector<CrowdLabel>& labels,
                                 size_t iterations = 20) const;

  /// Estimated per-worker accuracy after a DawidSkene run (diagonal mass of
  /// the confusion matrix, averaged over classes). Valid after DawidSkene.
  const std::vector<double>& worker_accuracy() const { return worker_accuracy_; }

 private:
  size_t num_items_;
  size_t num_workers_;
  size_t num_classes_;
  mutable std::vector<double> worker_accuracy_;
};

}  // namespace aidb::ml
