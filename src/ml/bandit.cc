#include "ml/bandit.h"

#include <cmath>
#include <limits>

namespace aidb::ml {

Bandit::Bandit(size_t num_arms, const Options& opts)
    : opts_(opts),
      rng_(opts.seed),
      counts_(num_arms, 0),
      sums_(num_arms, 0.0),
      alpha_(num_arms, 1.0),
      beta_(num_arms, 1.0) {}

std::vector<double> Bandit::ScoreArms() {
  size_t n = counts_.size();
  std::vector<double> scores(n, 0.0);
  switch (opts_.policy) {
    case Policy::kEpsilonGreedy: {
      for (size_t a = 0; a < n; ++a) {
        scores[a] = rng_.NextDouble() < opts_.epsilon ? rng_.NextDouble()
                                                      : MeanReward(a);
      }
      break;
    }
    case Policy::kUcb1: {
      double lt = std::log(static_cast<double>(total_) + 1.0);
      for (size_t a = 0; a < n; ++a) {
        if (counts_[a] == 0) {
          scores[a] = std::numeric_limits<double>::max();  // play once first
        } else {
          scores[a] = MeanReward(a) +
                      std::sqrt(2.0 * lt / static_cast<double>(counts_[a]));
        }
      }
      break;
    }
    case Policy::kThompson: {
      // Beta(alpha, beta) posterior draw per arm via two gamma draws.
      auto gamma_draw = [this](double shape) {
        if (shape < 1.0) {
          double u = rng_.NextDouble();
          return GammaMT(shape + 1.0) * std::pow(u, 1.0 / shape);
        }
        return GammaMT(shape);
      };
      for (size_t a = 0; a < n; ++a) {
        double x = gamma_draw(alpha_[a]);
        double y = gamma_draw(beta_[a]);
        scores[a] = x / (x + y);
      }
      break;
    }
  }
  return scores;
}

size_t Bandit::SelectArm() {
  auto scores = ScoreArms();
  size_t best = 0;
  for (size_t a = 1; a < scores.size(); ++a)
    if (scores[a] > scores[best]) best = a;
  return best;
}

double Bandit::GammaMT(double shape) {
  // Marsaglia–Tsang squeeze method, shape >= 1.
  double d = shape - 1.0 / 3.0;
  double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = rng_.Gaussian();
    double v = 1.0 + c * x;
    if (v <= 0) continue;
    v = v * v * v;
    double u = rng_.NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

void Bandit::Update(size_t arm, double reward) {
  ++counts_[arm];
  sums_[arm] += reward;
  ++total_;
  alpha_[arm] += reward;
  beta_[arm] += 1.0 - reward;
}

}  // namespace aidb::ml
